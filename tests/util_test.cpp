// Unit tests for the util module.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"
#include "util/memory_meter.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace dsched::util {
namespace {

TEST(ErrorTest, CheckMacroThrowsLogicErrorWithContext) {
  try {
    DSCHED_CHECK_MSG(1 == 2, "the universe broke");
    FAIL() << "expected LogicError";
  } catch (const LogicError& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("the universe broke"),
              std::string::npos);
  }
}

TEST(ErrorTest, CheckPassesSilently) {
  EXPECT_NO_THROW(DSCHED_CHECK(2 + 2 == 4));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.NextU64() == b.NextU64()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.NextBelow(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialMeanRoughlyMatches) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(3.0);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(RngTest, LogNormalMedianRoughlyMatches) {
  Rng rng(13);
  std::vector<double> vals;
  const int n = 20001;
  vals.reserve(n);
  for (int i = 0; i < n; ++i) {
    vals.push_back(rng.NextLogNormal(std::log(2.0), 1.0));
  }
  std::nth_element(vals.begin(), vals.begin() + n / 2, vals.end());
  EXPECT_NEAR(vals[n / 2], 2.0, 0.15);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.Shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(21);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (parent.NextU64() == child.NextU64()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.Count(), 4u);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_NEAR(s.Variance(), 1.25, 1e-12);
  EXPECT_DOUBLE_EQ(s.Sum(), 10.0);
}

TEST(SummaryTest, MergeEqualsBulk) {
  Summary a;
  Summary b;
  Summary all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), all.Count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.Min(), all.Min());
  EXPECT_DOUBLE_EQ(a.Max(), all.Max());
}

TEST(SummaryTest, EmptyThrowsOnMoments) {
  const Summary s;
  EXPECT_THROW((void)s.Mean(), LogicError);
  EXPECT_THROW((void)s.Min(), LogicError);
}

TEST(HistogramTest, BucketsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) {
    h.Add(i % 10 + 0.5);
  }
  EXPECT_EQ(h.TotalCount(), 100u);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.BucketCount(b), 10u);
  }
  EXPECT_NEAR(h.Quantile(0.5), 5.0, 1.0);
  EXPECT_EQ(h.Underflow(), 0u);
  EXPECT_EQ(h.Overflow(), 0u);
}

TEST(HistogramTest, OutOfRangeCounts) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-1);
  h.Add(2);
  EXPECT_EQ(h.Underflow(), 1u);
  EXPECT_EQ(h.Overflow(), 1u);
}

TEST(StringsTest, TrimAndSplit) {
  EXPECT_EQ(Trim("  hi \t"), "hi");
  EXPECT_EQ(Trim(""), "");
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  const auto words = SplitWhitespace("  foo  bar\tbaz ");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[2], "baz");
}

TEST(StringsTest, ParseNumbers) {
  EXPECT_EQ(ParseU64("42", "test"), 42u);
  EXPECT_THROW((void)ParseU64("4x", "test"), ParseError);
  EXPECT_THROW((void)ParseU64("", "test"), ParseError);
  EXPECT_DOUBLE_EQ(ParseDouble("2.5", "test"), 2.5);
  EXPECT_THROW((void)ParseDouble("abc", "test"), ParseError);
}

TEST(StringsTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(21.69), "21.69 s");
  EXPECT_EQ(FormatSeconds(0.000159), "159.000 us");
  EXPECT_EQ(FormatSeconds(0.042), "42.000 ms");
}

TEST(FlagsTest, ParsesAllKinds) {
  FlagSet flags("prog");
  auto n = flags.Int("n", 5, "count");
  auto rate = flags.Double("rate", 1.5, "rate");
  auto name = flags.String("name", "x", "name");
  auto fast = flags.Bool("fast", false, "speed");
  const char* argv[] = {"prog", "--n=7", "--rate", "2.5", "--fast",
                        "--name=yo", "positional"};
  ASSERT_TRUE(flags.Parse(7, argv));
  EXPECT_EQ(*n, 7);
  EXPECT_DOUBLE_EQ(*rate, 2.5);
  EXPECT_EQ(*name, "yo");
  EXPECT_TRUE(*fast);
  ASSERT_EQ(flags.Positional().size(), 1u);
  EXPECT_EQ(flags.Positional()[0], "positional");
}

TEST(FlagsTest, UnknownFlagThrows) {
  FlagSet flags("prog");
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_THROW(flags.Parse(2, argv), ParseError);
}

TEST(FlagsTest, MissingValueThrows) {
  FlagSet flags("prog");
  flags.Int("n", 1, "n");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(flags.Parse(2, argv), ParseError);
}

TEST(TableTest, RendersAligned) {
  TextTable t("Title");
  t.SetHeader({"col", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "2"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("| long-name "), std::string::npos);
}

TEST(TableTest, RowLongerThanHeaderThrows) {
  TextTable t;
  t.SetHeader({"one"});
  EXPECT_THROW(t.AddRow({"a", "b"}), LogicError);
}

TEST(MemoryMeterTest, TracksPeak) {
  MemoryMeter m;
  m.Allocate(100);
  m.Allocate(50);
  m.Release(120);
  EXPECT_EQ(m.CurrentBytes(), 30u);
  EXPECT_EQ(m.PeakBytes(), 150u);
  m.Release(1000);  // clamps
  EXPECT_EQ(m.CurrentBytes(), 0u);
}

TEST(MemoryMeterTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.50 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(TimerTest, StopwatchAccumulates) {
  Stopwatch watch;
  watch.Add(0.5);
  watch.Add(0.25);
  EXPECT_DOUBLE_EQ(watch.TotalSeconds(), 0.75);
  EXPECT_EQ(watch.Laps(), 2u);
  watch.Reset();
  EXPECT_DOUBLE_EQ(watch.TotalSeconds(), 0.0);
}

TEST(TimerTest, WallTimerMovesForward) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + 1;
  }
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
}

TEST(LoggingTest, SinkCapturesAboveThreshold) {
  std::vector<std::string> captured;
  SetLogSink([&captured](LogLevel, const std::string& msg) {
    captured.push_back(msg);
  });
  SetLogLevel(LogLevel::kInfo);
  DSCHED_LOG(Info) << "hello " << 42;
  DSCHED_LOG(Debug) << "hidden";
  ResetLogSink();
  SetLogLevel(LogLevel::kWarning);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "hello 42");
}

}  // namespace
}  // namespace dsched::util
