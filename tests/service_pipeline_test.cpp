// Tests for epoch-pipelined sessions (DESIGN.md §12): K > 1 update
// cascades in flight per session, fenced per dependency level by the
// session's StratumFrontier.
//
// The load-bearing guarantee: a session running K overlapped epochs ends
// with a store byte-equal to a serial replay of the same batches, its
// futures resolve in dense epoch order, every admitted epoch survives
// Close(), and queries quiesce the pipeline instead of racing it.  The
// whole file runs under TSan in CI (service_ prefix), which is where the
// query-vs-pipeline and cascade-vs-cascade interleavings earn their keep.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "datalog/database.hpp"
#include "datalog/incremental.hpp"
#include "datalog/maintenance.hpp"
#include "service/engine_host.hpp"
#include "service/session.hpp"
#include "util/rng.hpp"
#include "wide_program_fixture.hpp"

namespace dsched::service {
namespace {

using dsched::testing::ExpectStoresEqual;
using dsched::testing::RandomUpdate;
using dsched::testing::kWideProgram;

/// Seeds a session with the same base instance WideFixture::Base builds.
void SeedLikeFixture(Session& session, util::Rng& rng, int nodes,
                     double edge_prob) {
  for (int i = 0; i < nodes; ++i) {
    session.Insert("n", {datalog::Value::Int(i)});
    if (rng.NextBool(0.3)) {
      session.Insert("mark", {datalog::Value::Int(i)});
    }
  }
  for (int i = 0; i < nodes; ++i) {
    for (int j = 0; j < nodes; ++j) {
      if (i != j && rng.NextBool(edge_prob)) {
        session.Insert("e", {datalog::Value::Int(i), datalog::Value::Int(j)});
      }
    }
  }
  session.Materialize();
}

/// Same seeding against a bare Database (the serial replay side).
void SeedDbLikeFixture(datalog::Database& db, util::Rng& rng, int nodes,
                       double edge_prob) {
  for (int i = 0; i < nodes; ++i) {
    db.Insert("n", {datalog::Value::Int(i)});
    if (rng.NextBool(0.3)) {
      db.Insert("mark", {datalog::Value::Int(i)});
    }
  }
  for (int i = 0; i < nodes; ++i) {
    for (int j = 0; j < nodes; ++j) {
      if (i != j && rng.NextBool(edge_prob)) {
        db.Insert("e", {datalog::Value::Int(i), datalog::Value::Int(j)});
      }
    }
  }
  db.Materialize();
}

/// Counting-plane equality: every tuple carries the same derivation count
/// in both stores (only meaningful after counting-strategy updates).
void ExpectCountsEqual(const datalog::Program& program,
                       const datalog::RelationStore& a,
                       const datalog::RelationStore& b, const char* what) {
  for (std::uint32_t pred = 0; pred < program.NumPredicates(); ++pred) {
    for (const datalog::Tuple& tuple : a.Of(pred).Tuples()) {
      EXPECT_EQ(a.Of(pred).CountOf(tuple), b.Of(pred).CountOf(tuple))
          << what << ": predicate " << program.predicate_names[pred];
    }
  }
}

TEST(ServicePipelineTest, DepthResolutionAndEligibilityClamping) {
  EngineHost host({.workers = 2, .default_pipeline_depth = 2});
  auto inherit = host.OpenSession(kWideProgram, {.name = "inh"});
  EXPECT_EQ(inherit->PipelineDepth(), 2u);  // host default
  auto deep = host.OpenSession(kWideProgram,
                               {.name = "deep", .pipeline_depth = 4});
  EXPECT_EQ(deep->PipelineDepth(), 4u);
  // Counting's whole-update state bracket cannot overlap epochs.
  auto counting = host.OpenSession(kWideProgram,
                                   {.name = "cnt",
                                    .maintenance_strategy = "counting",
                                    .pipeline_depth = 4});
  EXPECT_EQ(counting->PipelineDepth(), 1u);
  EXPECT_FALSE(
      datalog::StrategyPipelineEligible(datalog::MaintenanceStrategy::kCounting));
  EXPECT_TRUE(
      datalog::StrategyPipelineEligible(datalog::MaintenanceStrategy::kDRed));
  EXPECT_TRUE(datalog::StrategyPipelineEligible(
      datalog::MaintenanceStrategy::kBackwardForward));
  // The serial engine has no cascade to pipeline.
  auto serial = host.OpenSession(
      kWideProgram,
      {.name = "ser", .scheduler_spec = "serial", .pipeline_depth = 8});
  EXPECT_EQ(serial->PipelineDepth(), 1u);
  // Absurd depths clamp instead of spawning 10k threads.
  auto clamped = host.OpenSession(kWideProgram,
                                  {.name = "cl", .pipeline_depth = 10000});
  EXPECT_EQ(clamped->PipelineDepth(), 64u);
}

TEST(ServicePipelineTest, PipelinedStoreEqualsSerialReplayAllStrategies) {
  // The stress shape from the acceptance criteria: K = 3, ~40 randomized
  // batches, every strategy.  The pipelined store (and for counting, the
  // per-tuple count plane) must equal a serial replay of the same batches.
  constexpr int kBatches = 40;
  constexpr int kNodes = 10;
  EngineHost host({.workers = 4});
  for (const char* strategy : {"dred", "counting", "bf"}) {
    SCOPED_TRACE(strategy);
    auto session = host.OpenSession(kWideProgram,
                                    {.name = std::string("p-") + strategy,
                                     .maintenance_strategy = strategy,
                                     .pipeline_depth = 3});
    util::Rng seed_rng(4040);
    SeedLikeFixture(*session, seed_rng, kNodes, 0.15);

    datalog::Database replay(kWideProgram);
    util::Rng replay_rng(4040);
    SeedDbLikeFixture(replay, replay_rng, kNodes, 0.15);
    const datalog::MaintenanceStrategy parsed =
        datalog::ParseMaintenanceStrategy(strategy);

    util::Rng update_rng(5050);
    std::vector<datalog::UpdateRequest> batches;
    for (int b = 0; b < kBatches; ++b) {
      batches.push_back(
          RandomUpdate(session->Db().GetProgram(), update_rng, kNodes));
    }
    std::vector<std::future<UpdateOutcome>> futures;
    futures.reserve(batches.size());
    for (const datalog::UpdateRequest& batch : batches) {
      futures.push_back(session->Submit(batch));
      (void)replay.ApplyRequest(batch, parsed);
    }
    std::uint64_t expected_epoch = 1;
    for (auto& future : futures) {
      EXPECT_EQ(future.get().epoch, expected_epoch++);
    }
    session->Close();
    ExpectStoresEqual(session->Db().GetProgram(), replay.Store(),
                      session->Store(), strategy);
    if (parsed == datalog::MaintenanceStrategy::kCounting) {
      ExpectCountsEqual(session->Db().GetProgram(), replay.Store(),
                        session->Store(), "counting plane");
    }
  }
}

TEST(ServicePipelineTest, FuturesResolveInDenseEpochOrder) {
  EngineHost host({.workers = 4});
  auto session = host.OpenSession(kWideProgram,
                                  {.name = "dense", .pipeline_depth = 4});
  util::Rng seed_rng(17);
  SeedLikeFixture(*session, seed_rng, 10, 0.15);
  util::Rng update_rng(18);
  std::vector<std::future<UpdateOutcome>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(session->Submit(
        RandomUpdate(session->Db().GetProgram(), update_rng, 10)));
  }
  // Dense resolution: once the LAST future is ready, every earlier future
  // must already be ready — epoch N never resolves before epoch N-1.
  futures.back().wait();
  for (std::size_t i = 0; i + 1 < futures.size(); ++i) {
    EXPECT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "epoch " << (i + 1) << " unresolved after last epoch resolved";
  }
  std::uint64_t expected_epoch = 1;
  for (auto& future : futures) {
    EXPECT_EQ(future.get().epoch, expected_epoch++);
  }
  EXPECT_EQ(session->AppliedEpoch(), futures.size());
  session->Close();
}

TEST(ServicePipelineTest, CloseWithEpochsInFlightDrainsAndResolves) {
  // Close() while K epochs are mid-cascade: every admitted epoch must
  // finish and resolve its future — close drains, it never abandons.
  EngineHost host({.workers = 4});
  auto session = host.OpenSession(kWideProgram,
                                  {.name = "cif", .pipeline_depth = 4});
  util::Rng seed_rng(23);
  SeedLikeFixture(*session, seed_rng, 10, 0.2);
  util::Rng update_rng(24);
  std::vector<std::future<UpdateOutcome>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(session->Submit(
        RandomUpdate(session->Db().GetProgram(), update_rng, 10)));
  }
  session->Close();  // no drain first: epochs are still in flight
  std::uint64_t expected_epoch = 1;
  for (auto& future : futures) {
    UpdateOutcome outcome;
    EXPECT_NO_THROW(outcome = future.get());
    EXPECT_EQ(outcome.epoch, expected_epoch++);
  }
  EXPECT_EQ(session->AppliedEpoch(), 16u);
  EXPECT_THROW((void)session->Submit(datalog::UpdateRequest{}),
               util::LogicError);
}

TEST(ServicePipelineTest, QueriesQuiesceThePipeline) {
  // A querier thread hammers Query/Contains while a client pipelines 30
  // batches at K = 4.  Queries must always see a fully-applied dense
  // prefix (no torn mid-cascade state) — under TSan this is also the
  // query-vs-cascade data-race probe.
  EngineHost host({.workers = 4});
  auto session = host.OpenSession(kWideProgram,
                                  {.name = "qp", .pipeline_depth = 4});
  util::Rng seed_rng(31);
  SeedLikeFixture(*session, seed_rng, 10, 0.15);

  std::atomic<bool> done{false};
  std::thread querier([&] {
    while (!done.load(std::memory_order_acquire)) {
      // tc is maintained from e: every row must have both endpoints in n
      // whenever the pipeline is quiesced (n never changes here).
      const auto rows = session->Query("tc");
      for (const datalog::Tuple& row : rows) {
        ASSERT_EQ(row.size(), 2u);
      }
      (void)session->Contains("cold", {datalog::Value::Int(0)});
    }
  });

  datalog::Database replay(kWideProgram);
  util::Rng replay_rng(31);
  SeedDbLikeFixture(replay, replay_rng, 10, 0.15);
  util::Rng update_rng(32);
  std::vector<std::future<UpdateOutcome>> futures;
  for (int i = 0; i < 30; ++i) {
    const datalog::UpdateRequest batch =
        RandomUpdate(session->Db().GetProgram(), update_rng, 10);
    futures.push_back(session->Submit(batch));
    (void)replay.ApplyRequest(batch);
  }
  for (auto& future : futures) {
    (void)future.get();
  }
  done.store(true, std::memory_order_release);
  querier.join();
  // Post-resolution queries see exactly the replayed state.
  EXPECT_EQ(dsched::testing::Sorted(session->Query("summary")),
            dsched::testing::Sorted(replay.Query("summary")));
  session->Close();
  ExpectStoresEqual(session->Db().GetProgram(), replay.Store(),
                    session->Store(), "query-during-pipeline");
}

TEST(ServicePipelineTest, PipelineMetricsArePublished) {
  EngineHost host({.workers = 4});
  auto session = host.OpenSession(kWideProgram,
                                  {.name = "pm", .pipeline_depth = 4});
  util::Rng seed_rng(41);
  SeedLikeFixture(*session, seed_rng, 10, 0.2);
  util::Rng update_rng(42);
  std::vector<std::future<UpdateOutcome>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(session->Submit(
        RandomUpdate(session->Db().GetProgram(), update_rng, 10)));
  }
  session->Close();
  const obs::MetricsRegistry& metrics = host.Metrics();
  EXPECT_EQ(metrics.Value("session.pm.pipeline.depth"), 4u);
  EXPECT_GE(metrics.Value("session.pm.pipeline.inflight_high_water"), 1u);
  EXPECT_EQ(metrics.Value("session.pm.applied"), 20u);
  // Every epoch of a depth>1 session finalizes its frontier entry.
  EXPECT_GE(metrics.Value("session.pm.pipeline.finalizations"), 20u);
}

}  // namespace
}  // namespace dsched::service
