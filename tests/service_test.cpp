// Tests for the service layer: EngineHost / Session / UpdateQueue.
//
// The load-bearing guarantee (ISSUE 5 acceptance): N sessions submitting
// concurrent update batches on ONE shared pool produce stores equal to a
// serial per-session replay of the same batches.  Plus: epoch ordering,
// backpressure blocking at the queue bound, drain-on-close, and the
// host/session metric taxonomy.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "datalog/incremental.hpp"
#include "service/engine_host.hpp"
#include "service/session.hpp"
#include "service/update_queue.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "wide_program_fixture.hpp"

namespace dsched::service {
namespace {

using dsched::testing::ExpectStoresEqual;
using dsched::testing::RandomUpdate;
using dsched::testing::WideFixture;
using dsched::testing::kWideProgram;

/// Seeds a session with the same base instance WideFixture::Base builds.
void SeedLikeFixture(Session& session, util::Rng& rng, int nodes,
                     double edge_prob) {
  for (int i = 0; i < nodes; ++i) {
    session.Insert("n", {datalog::Value::Int(i)});
    if (rng.NextBool(0.3)) {
      session.Insert("mark", {datalog::Value::Int(i)});
    }
  }
  for (int i = 0; i < nodes; ++i) {
    for (int j = 0; j < nodes; ++j) {
      if (i != j && rng.NextBool(edge_prob)) {
        session.Insert(
            "e", {datalog::Value::Int(i), datalog::Value::Int(j)});
      }
    }
  }
  session.Materialize();
}

TEST(UpdateQueueTest, EpochsAreDenseAndOrdered) {
  UpdateQueue queue(8);
  std::promise<UpdateOutcome> p1;
  std::promise<UpdateOutcome> p2;
  EXPECT_EQ(queue.Push({}, std::move(p1)), 1u);
  EXPECT_EQ(queue.Push({}, std::move(p2)), 2u);
  EXPECT_EQ(queue.Depth(), 2u);
  EXPECT_EQ(queue.LastEpoch(), 2u);
  UpdateQueue::Job job;
  ASSERT_TRUE(queue.Pop(job));
  EXPECT_EQ(job.epoch, 1u);
  ASSERT_TRUE(queue.Pop(job));
  EXPECT_EQ(job.epoch, 2u);
  EXPECT_EQ(queue.HighWater(), 2u);
}

TEST(UpdateQueueTest, CloseDrainsThenStopsTheConsumer) {
  UpdateQueue queue(4);
  std::promise<UpdateOutcome> promise;
  (void)queue.Push({}, std::move(promise));
  queue.Close();
  EXPECT_THROW((void)queue.Push({}, std::promise<UpdateOutcome>{}),
               util::LogicError);
  UpdateQueue::Job job;
  EXPECT_TRUE(queue.Pop(job));  // queued-before-close still delivered
  EXPECT_FALSE(queue.Pop(job));  // then the exit signal
}

TEST(UpdateQueueTest, PushBlocksAtTheBoundUntilAPop) {
  UpdateQueue queue(1);
  (void)queue.Push({}, std::promise<UpdateOutcome>{});
  std::atomic<bool> second_accepted{false};
  std::thread producer([&] {
    (void)queue.Push({}, std::promise<UpdateOutcome>{});
    second_accepted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_accepted.load());  // blocked at the bound
  UpdateQueue::Job job;
  ASSERT_TRUE(queue.Pop(job));
  producer.join();
  EXPECT_TRUE(second_accepted.load());
  EXPECT_EQ(queue.BlockedPushes(), 1u);
}

TEST(ServiceTest, SingleSessionMatchesSerialReplay) {
  EngineHost host({.workers = 4});
  auto session = host.OpenSession(kWideProgram, {.name = "solo"});
  util::Rng seed_rng(777);
  SeedLikeFixture(*session, seed_rng, 10, 0.15);

  util::Rng replay_rng(777);
  WideFixture replay;
  replay.Base(replay_rng, 10, 0.15);
  datalog::IncrementalEngine engine(replay.program, replay.strat,
                                    replay.store);

  util::Rng update_rng(4242);
  for (int batch = 0; batch < 5; ++batch) {
    const datalog::UpdateRequest request =
        RandomUpdate(replay.program, update_rng, 10);
    const datalog::UpdateResult serial = engine.Apply(request);
    const UpdateOutcome outcome = session->Submit(request).get();
    EXPECT_EQ(outcome.epoch, static_cast<std::uint64_t>(batch + 1));
    EXPECT_EQ(outcome.update.total_inserted, serial.total_inserted);
    EXPECT_EQ(outcome.update.total_deleted, serial.total_deleted);
    EXPECT_GT(outcome.run.executed, 0u);
  }
  session->Close();
  ExpectStoresEqual(replay.program, replay.store, session->Store(),
                    "single-session");
}

TEST(ServiceTest, FourConcurrentSessionsEqualSerialPerSessionReplay) {
  // The acceptance-criteria shape: 4 sessions, each with its own program
  // instance and batch stream, submitting concurrently onto one shared
  // 4-worker pool.  Every session's final store must be byte-equal to a
  // serial replay of ITS batches on a private engine.
  constexpr int kSessions = 4;
  constexpr int kBatches = 12;
  EngineHost host({.workers = 4});

  std::vector<std::shared_ptr<Session>> sessions;
  std::vector<std::vector<datalog::UpdateRequest>> streams(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    // Rotate scheduler specs across sessions: heterogeneous tenants.
    const char* specs[] = {"hybrid", "levelbased", "signal", "logicblox"};
    sessions.push_back(host.OpenSession(
        kWideProgram,
        {.name = "t" + std::to_string(s), .scheduler_spec = specs[s % 4]}));
    util::Rng seed_rng(1000 + static_cast<std::uint64_t>(s));
    SeedLikeFixture(*sessions.back(), seed_rng, 9, 0.18);
    util::Rng update_rng(2000 + static_cast<std::uint64_t>(s));
    auto& stream = streams[static_cast<std::size_t>(s)];
    for (int b = 0; b < kBatches; ++b) {
      stream.push_back(
          RandomUpdate(sessions.back()->Db().GetProgram(), update_rng, 9));
    }
  }
  EXPECT_EQ(host.ActiveSessions(), static_cast<std::size_t>(kSessions));

  // Concurrent phase: one client thread per session, all submitting at
  // once; futures checked for dense epoch order.
  std::vector<std::thread> clients;
  for (int s = 0; s < kSessions; ++s) {
    clients.emplace_back([&, s] {
      std::vector<std::future<UpdateOutcome>> futures;
      for (const datalog::UpdateRequest& request :
           streams[static_cast<std::size_t>(s)]) {
        futures.push_back(sessions[static_cast<std::size_t>(s)]->Submit(
            request));
      }
      std::uint64_t expected_epoch = 1;
      for (auto& future : futures) {
        EXPECT_EQ(future.get().epoch, expected_epoch++);
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }

  // Serial replay phase: same seeds, same streams, private engines.
  for (int s = 0; s < kSessions; ++s) {
    util::Rng replay_rng(1000 + static_cast<std::uint64_t>(s));
    WideFixture replay;
    replay.Base(replay_rng, 9, 0.18);
    datalog::IncrementalEngine engine(replay.program, replay.strat,
                                      replay.store);
    for (const datalog::UpdateRequest& request :
         streams[static_cast<std::size_t>(s)]) {
      (void)engine.Apply(request);
    }
    ExpectStoresEqual(replay.program, replay.store,
                      sessions[static_cast<std::size_t>(s)]->Store(),
                      ("session " + std::to_string(s)).c_str());
  }

  for (auto& session : sessions) {
    session->Close();
  }
  EXPECT_EQ(host.ActiveSessions(), 0u);
  host.ExportMetrics();
  EXPECT_EQ(host.Metrics().Value("host.sessions_opened"),
            static_cast<std::uint64_t>(kSessions));
  EXPECT_EQ(host.Metrics().Value("session.t0.submit"),
            static_cast<std::uint64_t>(kBatches));
  EXPECT_EQ(host.Metrics().Value("session.t0.applied"),
            static_cast<std::uint64_t>(kBatches));
}

TEST(ServiceTest, BackpressureBlocksSubmitAtTheBound) {
  EngineHost host({.workers = 2});
  auto session =
      host.OpenSession(kWideProgram, {.name = "bp", .queue_capacity = 2});
  util::Rng seed_rng(5);
  SeedLikeFixture(*session, seed_rng, 8, 0.2);

  // Stall the apply thread: submit a batch whose apply takes a while by
  // filling the queue faster than 2-worker applies drain it, and verify
  // TrySubmit declines once the bound is hit while blocking Submit waits.
  std::vector<std::future<UpdateOutcome>> futures;
  util::Rng update_rng(6);
  std::size_t declined = 0;
  for (int i = 0; i < 50; ++i) {
    std::future<UpdateOutcome> future;
    if (session->TrySubmit(RandomUpdate(session->Db().GetProgram(),
                                        update_rng, 8),
                           &future)) {
      futures.push_back(std::move(future));
    } else {
      ++declined;
      EXPECT_LE(session->QueueDepth(), 2u);
    }
  }
  // Blocking submits after the burst must all be accepted, in order.
  for (int i = 0; i < 4; ++i) {
    futures.push_back(session->Submit(
        RandomUpdate(session->Db().GetProgram(), update_rng, 8)));
  }
  std::uint64_t last_epoch = 0;
  for (auto& future : futures) {
    const std::uint64_t epoch = future.get().epoch;
    EXPECT_GT(epoch, last_epoch);
    last_epoch = epoch;
  }
  EXPECT_EQ(last_epoch, futures.size());
  session->Close();
}

TEST(ServiceTest, CloseDrainsPendingBatches) {
  EngineHost host({.workers = 2});
  auto session = host.OpenSession(kWideProgram, {.name = "drain"});
  util::Rng seed_rng(9);
  SeedLikeFixture(*session, seed_rng, 8, 0.2);

  util::Rng update_rng(10);
  std::vector<std::future<UpdateOutcome>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(session->Submit(
        RandomUpdate(session->Db().GetProgram(), update_rng, 8)));
  }
  session->Close();  // must apply all 10, not discard
  for (auto& future : futures) {
    EXPECT_NO_THROW((void)future.get());
  }
  EXPECT_EQ(session->AppliedEpoch(), 10u);
  EXPECT_THROW((void)session->Submit(datalog::UpdateRequest{}),
               util::LogicError);
}

TEST(ServiceTest, DrainWaitsForAcceptedBatches) {
  EngineHost host({.workers = 2});
  auto session = host.OpenSession(kWideProgram, {.name = "dr2"});
  util::Rng seed_rng(11);
  SeedLikeFixture(*session, seed_rng, 8, 0.2);
  util::Rng update_rng(12);
  for (int i = 0; i < 6; ++i) {
    (void)session->Submit(
        RandomUpdate(session->Db().GetProgram(), update_rng, 8));
  }
  session->Drain();
  EXPECT_EQ(session->AppliedEpoch(), 6u);
  EXPECT_EQ(session->QueueDepth(), 0u);
}

TEST(ServiceTest, SerialSchedulerSessionBypassesThePool) {
  EngineHost host({.workers = 2});
  auto session = host.OpenSession(
      kWideProgram, {.name = "ser", .scheduler_spec = "serial"});
  util::Rng seed_rng(21);
  SeedLikeFixture(*session, seed_rng, 8, 0.2);

  util::Rng replay_rng(21);
  WideFixture replay;
  replay.Base(replay_rng, 8, 0.2);
  datalog::IncrementalEngine engine(replay.program, replay.strat,
                                    replay.store);
  util::Rng update_rng(22);
  for (int i = 0; i < 4; ++i) {
    const datalog::UpdateRequest request =
        RandomUpdate(replay.program, update_rng, 8);
    (void)engine.Apply(request);
    const UpdateOutcome outcome = session->Submit(request).get();
    EXPECT_EQ(outcome.run.executed, 0u);  // no executor involved
  }
  session->Close();
  ExpectStoresEqual(replay.program, replay.store, session->Store(), "serial");
}

TEST(ServiceTest, BadProgramsAndSpecsFailAtOpen) {
  EngineHost host({.workers = 1});
  EXPECT_THROW((void)host.OpenSession("p(X) :- q(X."), util::Error);
  EXPECT_THROW((void)host.OpenSession(kWideProgram,
                                      {.scheduler_spec = "oracle"}),
               util::InvalidArgument);
  // Unknown names are rejected at open with every valid value listed, so
  // a typo'd deployment config fails loudly and self-documents.
  try {
    (void)host.OpenSession(kWideProgram, {.scheduler_spec = "nonsense"});
    FAIL() << "unknown scheduler spec accepted";
  } catch (const util::Error& err) {
    const std::string message = err.what();
    EXPECT_NE(message.find("nonsense"), std::string::npos) << message;
    EXPECT_NE(message.find("serial"), std::string::npos) << message;
    EXPECT_NE(message.find("hybrid"), std::string::npos) << message;
  }
  try {
    (void)host.OpenSession(kWideProgram,
                           {.maintenance_strategy = "countingg"});
    FAIL() << "unknown maintenance strategy accepted";
  } catch (const util::Error& err) {
    const std::string message = err.what();
    EXPECT_NE(message.find("countingg"), std::string::npos) << message;
    EXPECT_NE(message.find("dred"), std::string::npos) << message;
    EXPECT_NE(message.find("counting"), std::string::npos) << message;
    EXPECT_NE(message.find("bf"), std::string::npos) << message;
  }
  EXPECT_EQ(host.ActiveSessions(), 0u);
}

TEST(ServiceTest, PerSessionStrategiesConvergeToTheSameStore) {
  EngineHost host({.workers = 2});
  auto dred = host.OpenSession(kWideProgram,
                               {.name = "m-dred",
                                .maintenance_strategy = "dred"});
  auto counting = host.OpenSession(kWideProgram,
                                   {.name = "m-count",
                                    .maintenance_strategy = "counting"});
  auto bf = host.OpenSession(kWideProgram,
                             {.name = "m-bf", .maintenance_strategy = "bf"});
  EXPECT_EQ(counting->Strategy(), datalog::MaintenanceStrategy::kCounting);
  EXPECT_EQ(bf->Strategy(), datalog::MaintenanceStrategy::kBackwardForward);
  for (Session* s : {dred.get(), counting.get(), bf.get()}) {
    util::Rng seed_rng(21);
    SeedLikeFixture(*s, seed_rng, 10, 0.15);
  }
  util::Rng update_rng(22);
  std::vector<datalog::UpdateRequest> batches;
  for (int b = 0; b < 6; ++b) {
    batches.push_back(RandomUpdate(dred->Db().GetProgram(), update_rng, 10));
  }
  for (Session* s : {dred.get(), counting.get(), bf.get()}) {
    for (const datalog::UpdateRequest& batch : batches) {
      (void)s->Submit(batch);
    }
    s->Close();
  }
  ExpectStoresEqual(dred->Db().GetProgram(), dred->Store(),
                    counting->Store(), "counting vs dred sessions");
  ExpectStoresEqual(dred->Db().GetProgram(), dred->Store(), bf->Store(),
                    "bf vs dred sessions");
  const obs::MetricsRegistry& metrics = host.Metrics();
  EXPECT_GT(metrics.Value("session.m-dred.maint.ops"), 0u);
  EXPECT_GT(metrics.Value("session.m-count.maint.recounts"), 0u);
  EXPECT_GT(metrics.Value("session.m-bf.maint.backward_probes"), 0u);
}

TEST(ServiceTest, SessionsMayOutliveTheHost) {
  std::shared_ptr<Session> survivor;
  {
    EngineHost host({.workers = 2});
    survivor = host.OpenSession(kWideProgram, {.name = "orphan"});
  }  // host handle gone; the shared core lives on through the session
  util::Rng seed_rng(31);
  SeedLikeFixture(*survivor, seed_rng, 8, 0.2);
  util::Rng update_rng(32);
  const UpdateOutcome outcome =
      survivor
          ->Submit(RandomUpdate(survivor->Db().GetProgram(), update_rng, 8))
          .get();
  EXPECT_EQ(outcome.epoch, 1u);
  survivor->Close();
}

TEST(ServiceTest, FindSessionLookupAfterCloseReturnsNull) {
  EngineHost host({.workers = 2});
  auto session = host.OpenSession(kWideProgram, {.name = "lookup"});
  const std::uint64_t id = session->Id();
  EXPECT_EQ(host.FindSession(id).get(), session.get());
  const auto ids = host.ActiveSessionIds();
  EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end());
  EXPECT_EQ(host.FindSession(id + 9999), nullptr);  // never assigned

  session->Close();
  EXPECT_EQ(host.FindSession(id), nullptr);  // closed -> miss, by contract

  // Dropping the last owner without Close also unregisters (dtor path).
  auto second = host.OpenSession(kWideProgram, {.name = "dropped"});
  const std::uint64_t second_id = second->Id();
  EXPECT_NE(host.FindSession(second_id), nullptr);
  second.reset();
  EXPECT_EQ(host.FindSession(second_id), nullptr);
}

TEST(ServiceTest, FindSessionRacesCloseCleanly) {
  // TSan story: a reader thread resolves FindSession while the owner
  // closes and drops the session.  The lookup must return either a live
  // (usable) session or null — never a torn pointer.
  EngineHost host({.workers = 2});
  for (int round = 0; round < 8; ++round) {
    auto session = host.OpenSession(kWideProgram, {.name = "race"});
    const std::uint64_t id = session->Id();
    std::thread finder([&host, id] {
      for (int i = 0; i < 64; ++i) {
        if (auto found = host.FindSession(id)) {
          // Holding the shared_ptr keeps the session alive even if the
          // owner closes concurrently; Name() must stay readable.
          EXPECT_FALSE(found->Name().empty());
        }
      }
    });
    session->Close();
    session.reset();
    finder.join();
    EXPECT_EQ(host.FindSession(id), nullptr);
  }
}

TEST(ServiceTest, MemoryCeilingHoldsUnderConcurrentBudgetedSessions) {
  // Two budgeted sessions with pipelined epochs hammer one shared pool
  // while unbudgeted twins replay the identical batches.  The contract
  // under test (ISSUE 9): the accounted ceiling is
  // max(memory_budget, largest single task utility) — absent a forced
  // over-budget solo dispatch the account peak never exceeds the budget —
  // and exhaustion surfaces as backpressure, never as a failed or
  // divergent update.
  constexpr std::uint64_t kBudget = 512;
  constexpr int kSessions = 2;
  constexpr int kBatches = 10;
  EngineHost host({.workers = 4});
  std::vector<std::shared_ptr<Session>> budgeted;
  std::vector<std::vector<datalog::UpdateRequest>> batches(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    budgeted.push_back(host.OpenSession(kWideProgram,
                                        {.name = "mb" + std::to_string(s),
                                         .pipeline_depth = 2,
                                         .memory_budget = kBudget}));
    util::Rng seed_rng(910 + static_cast<std::uint64_t>(s));
    SeedLikeFixture(*budgeted.back(), seed_rng, 10, 0.15);
    util::Rng update_rng(920 + static_cast<std::uint64_t>(s));
    for (int b = 0; b < kBatches; ++b) {
      batches[static_cast<std::size_t>(s)].push_back(
          RandomUpdate(budgeted.back()->Db().GetProgram(), update_rng, 10));
    }
  }
  std::vector<std::thread> drivers;
  for (int s = 0; s < kSessions; ++s) {
    drivers.emplace_back([&budgeted, &batches, s] {
      Session& session = *budgeted[static_cast<std::size_t>(s)];
      std::future<UpdateOutcome> last;
      for (const datalog::UpdateRequest& batch :
           batches[static_cast<std::size_t>(s)]) {
        last = session.Submit(batch);
      }
      EXPECT_EQ(last.get().epoch, static_cast<std::uint64_t>(kBatches));
    });
  }
  for (std::thread& t : drivers) {
    t.join();
  }
  for (auto& session : budgeted) {
    session->Close();
  }

  const obs::MetricsRegistry& metrics = host.Metrics();
  for (int s = 0; s < kSessions; ++s) {
    Session& session = *budgeted[static_cast<std::size_t>(s)];
    const std::string prefix = "session.mb" + std::to_string(s) + ".mem.";
    EXPECT_EQ(metrics.Value(prefix + "budget_bytes"), kBudget);
    EXPECT_GT(metrics.Value(prefix + "acquired_bytes"), 0u);
    EXPECT_EQ(session.Account().live.load(), 0u);  // all bytes released
    // The hard ceiling: only a lone oversized task may ever carry the
    // account past the budget, and then only by running solo.
    const std::uint64_t peak = session.Account().peak.load();
    if (metrics.Value(prefix + "forced") == 0) {
      EXPECT_LE(peak, kBudget) << "session mb" << s;
    }

    // Backpressure must not change results: an unbudgeted serial replay
    // of the same batches lands on the identical store.
    auto reference = host.OpenSession(
        kWideProgram, {.name = "ref" + std::to_string(s)});
    util::Rng seed_rng(910 + static_cast<std::uint64_t>(s));
    SeedLikeFixture(*reference, seed_rng, 10, 0.15);
    for (const datalog::UpdateRequest& batch :
         batches[static_cast<std::size_t>(s)]) {
      (void)reference->Submit(batch);
    }
    reference->Close();
    ExpectStoresEqual(reference->Db().GetProgram(), reference->Store(),
                      session.Store(),
                      ("budgeted session mb" + std::to_string(s) +
                       " vs unbudgeted replay")
                          .c_str());
  }
}

TEST(ServiceTest, QueriesSeeAppliedEpochs) {
  EngineHost host({.workers = 2});
  auto session = host.OpenSession(kWideProgram, {.name = "q"});
  for (int i = 0; i < 4; ++i) {
    session->Insert("n", {datalog::Value::Int(i)});
  }
  session->Insert("e", {datalog::Value::Int(0), datalog::Value::Int(1)});
  session->Materialize();
  EXPECT_TRUE(session->Contains(
      "tc", {datalog::Value::Int(0), datalog::Value::Int(1)}));

  auto update = session->MakeUpdate();
  update.Insert("e", {datalog::Value::Int(1), datalog::Value::Int(2)});
  (void)session->Submit(update).get();
  EXPECT_TRUE(session->Contains(
      "tc", {datalog::Value::Int(0), datalog::Value::Int(2)}));
  session->Close();
}

}  // namespace
}  // namespace dsched::service
