// Unit tests for the discrete-event engine, auditor, and meta scheduler.
#include <gtest/gtest.h>

#include "graph/digraph_builder.hpp"
#include "sched/level_based.hpp"
#include "sched/logicblox.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "sim/meta.hpp"
#include "trace/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsched::sim {
namespace {

using sched::LevelBasedScheduler;
using sched::LogicBloxScheduler;

trace::JobTrace TwoIndependent(double w1, double w2) {
  graph::DigraphBuilder b(2);
  std::vector<trace::TaskInfo> infos(2);
  infos[0].work = w1;
  infos[0].span = w1;
  infos[1].work = w2;
  infos[1].span = w2;
  return trace::JobTrace("two", std::move(b).Build(), infos, {0, 1});
}

TEST(EngineTest, SequentialOnOneProcessorSerializes) {
  const auto trace = TwoIndependent(2.0, 3.0);
  LevelBasedScheduler sched;
  const SimResult result = Simulate(
      trace, sched, {.processors = 1, .model = ExecutionModel::kSequential});
  EXPECT_DOUBLE_EQ(result.makespan, 5.0);
  EXPECT_EQ(result.tasks_executed, 2u);
}

TEST(EngineTest, SequentialOnTwoProcessorsOverlaps) {
  const auto trace = TwoIndependent(2.0, 3.0);
  LevelBasedScheduler sched;
  const SimResult result = Simulate(
      trace, sched, {.processors = 2, .model = ExecutionModel::kSequential});
  EXPECT_DOUBLE_EQ(result.makespan, 3.0);
}

TEST(EngineTest, UnitModelIgnoresWork) {
  const auto trace = TwoIndependent(2.0, 3.0);
  LevelBasedScheduler sched;
  const SimResult result = Simulate(
      trace, sched, {.processors = 2, .model = ExecutionModel::kUnitLength});
  EXPECT_DOUBLE_EQ(result.makespan, 1.0);
  EXPECT_DOUBLE_EQ(result.total_work, 2.0);
}

TEST(EngineTest, FullyParallelAbsorbsAllProcessors) {
  const auto trace = TwoIndependent(8.0, 8.0);
  LevelBasedScheduler sched;
  const SimResult result = Simulate(
      trace, sched,
      {.processors = 4, .model = ExecutionModel::kFullyParallel});
  // Each task runs alone at rate 4: 2 + 2.
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);
}

TEST(EngineTest, MoldableRespectsSpanFloor) {
  graph::DigraphBuilder b(1);
  std::vector<trace::TaskInfo> infos(1);
  infos[0].work = 8.0;
  infos[0].span = 4.0;  // parallelism cap 2
  const trace::JobTrace trace("one", std::move(b).Build(), infos, {0});
  LevelBasedScheduler sched;
  const SimResult result = Simulate(
      trace, sched, {.processors = 8, .model = ExecutionModel::kMoldable});
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);  // max(span, work/P)
}

TEST(EngineTest, ChainAccumulatesLatency) {
  const trace::JobTrace trace = trace::MakeChain(10);
  LevelBasedScheduler sched;
  const SimResult result = Simulate(
      trace, sched, {.processors = 4, .model = ExecutionModel::kSequential});
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);
}

TEST(EngineTest, ZeroWorkCollectorsAreInstant) {
  // chain of collectors between two tasks: no simulated time added.
  graph::DigraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  std::vector<trace::TaskInfo> infos(4);
  infos[1].kind = trace::NodeKind::kCollector;
  infos[1].work = 0.0;
  infos[1].span = 0.0;
  infos[2].kind = trace::NodeKind::kCollector;
  infos[2].work = 0.0;
  infos[2].span = 0.0;
  const trace::JobTrace trace("c", std::move(b).Build(), infos, {0});
  LevelBasedScheduler sched;
  const SimResult result = Simulate(
      trace, sched, {.processors = 1, .model = ExecutionModel::kSequential});
  EXPECT_DOUBLE_EQ(result.makespan, 2.0);  // two unit tasks only
  EXPECT_EQ(result.tasks_executed, 4u);
}

TEST(EngineTest, InactiveTasksNeverRun) {
  graph::DigraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  std::vector<trace::TaskInfo> infos(3);
  infos[0].output_changes = false;  // cascade dies at 0
  const trace::JobTrace trace("q", std::move(b).Build(), infos, {0});
  LevelBasedScheduler sched;
  const SimResult result = Simulate(
      trace, sched, {.processors = 2, .model = ExecutionModel::kSequential});
  EXPECT_EQ(result.tasks_executed, 1u);
  EXPECT_EQ(result.activations, 1u);
}

TEST(EngineTest, EmptyDirtySetFinishesImmediately) {
  graph::DigraphBuilder b(3);
  b.AddEdge(0, 1);
  std::vector<trace::TaskInfo> infos(3);
  const trace::JobTrace trace("e", std::move(b).Build(), infos, {});
  LevelBasedScheduler sched;
  const SimResult result = Simulate(
      trace, sched, {.processors = 2, .model = ExecutionModel::kSequential});
  EXPECT_EQ(result.tasks_executed, 0u);
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);
}

TEST(EngineTest, DeadlockedSchedulerDetected) {
  /// A scheduler that accepts activations but never offers work.
  class StuckScheduler : public sched::Scheduler {
   public:
    [[nodiscard]] std::string_view Name() const override { return "Stuck"; }
    void Prepare(const sched::SchedulerContext&) override {}
    void OnActivated(util::TaskId) override {}
    void OnStarted(util::TaskId) override {}
    void OnCompleted(util::TaskId, bool) override {}
    [[nodiscard]] util::TaskId PopReady() override {
      return util::kInvalidTask;
    }
    [[nodiscard]] sched::SchedulerOpCounts OpCounts() const override {
      return {};
    }
    [[nodiscard]] std::size_t MemoryBytes() const override { return 0; }
  };
  const trace::JobTrace trace = trace::MakeChain(2);
  StuckScheduler stuck;
  EXPECT_THROW(Simulate(trace, stuck, {.processors = 1}), util::LogicError);
}

TEST(EngineTest, MemoryBudgetAbortsAtPrepare) {
  // The interval index on the staircase blows any small budget at Prepare.
  const trace::JobTrace trace = trace::MakeIntervalAdversarial(64);
  LogicBloxScheduler lx;
  SimConfig config;
  config.processors = 2;
  config.memory_budget_bytes = 1024;
  const SimResult result = Simulate(trace, lx, config);
  EXPECT_TRUE(result.aborted_on_memory);
  EXPECT_EQ(result.tasks_executed, 0u);
}

TEST(EngineTest, SchedulerWallClockIsMeasured) {
  const trace::JobTrace trace = trace::MakeChain(50);
  LevelBasedScheduler sched;
  const SimResult result = Simulate(trace, sched, {.processors = 2});
  EXPECT_GT(result.sched_wall_seconds, 0.0);
  EXPECT_GE(result.prepare_wall_seconds, 0.0);
  EXPECT_GT(result.TotalSeconds(), result.makespan);
}

TEST(AuditTest, DetectsPrecedenceViolation) {
  const trace::JobTrace trace = trace::MakeChain(2);
  SimResult forged;
  forged.schedule = {{0, 0.0, 1.0}, {1, 0.5, 1.5}};  // 1 started before 0 ended
  const AuditResult audit = AuditSchedule(trace, forged);
  EXPECT_FALSE(audit.valid);
}

TEST(AuditTest, DetectsMissingAndExtraTasks) {
  const trace::JobTrace trace = trace::MakeChain(2);
  SimResult missing;
  missing.schedule = {{0, 0.0, 1.0}};
  EXPECT_FALSE(AuditSchedule(trace, missing).valid);

  graph::DigraphBuilder b(2);
  b.AddEdge(0, 1);
  std::vector<trace::TaskInfo> infos(2);
  infos[0].output_changes = false;
  const trace::JobTrace quiet("q", std::move(b).Build(), infos, {0});
  SimResult extra;
  extra.schedule = {{0, 0.0, 1.0}, {1, 1.0, 2.0}};  // 1 is not active
  EXPECT_FALSE(AuditSchedule(quiet, extra).valid);
}

TEST(AuditTest, DetectsDoubleExecution) {
  const trace::JobTrace trace = trace::MakeChain(1);
  SimResult doubled;
  doubled.schedule = {{0, 0.0, 1.0}, {0, 1.0, 2.0}};
  EXPECT_FALSE(AuditSchedule(trace, doubled).valid);
}

TEST(AuditTest, AcceptsInactiveAncestorOverlap) {
  // 0 -> 1 where 0 never activates: 1 dirty directly may start anytime.
  graph::DigraphBuilder b(2);
  b.AddEdge(0, 1);
  std::vector<trace::TaskInfo> infos(2);
  const trace::JobTrace trace("t", std::move(b).Build(), infos, {1});
  SimResult result;
  result.schedule = {{1, 0.0, 1.0}};
  EXPECT_TRUE(AuditSchedule(trace, result).valid);
}

TEST(MetaTest, PicksFasterHalfWithinBudget) {
  const trace::JobTrace trace = trace::MakeTightExample(12);
  MetaConfig config;
  config.processors = 8;
  config.model = ExecutionModel::kMoldable;
  config.memory_budget_bytes = 64u << 20;
  const MetaResult meta = RunMeta(
      trace, [] { return std::make_unique<LogicBloxScheduler>(); }, config);
  EXPECT_FALSE(meta.heuristic_aborted);
  // Theorem 10: makespan ≤ 2·min(T_A, T_B) — our construction reports the
  // min of the halves directly, so it is bounded by either half.
  EXPECT_LE(meta.makespan,
            std::min(meta.heuristic_half.makespan,
                     meta.level_based_half.makespan) + 1e-9);
  EXPECT_FALSE(meta.winner.empty());
}

TEST(MetaTest, AbortsHeuristicOverBudgetAndFallsBack) {
  const trace::JobTrace trace = trace::MakeIntervalAdversarial(64);
  MetaConfig config;
  config.processors = 4;
  config.model = ExecutionModel::kSequential;
  config.memory_budget_bytes = 4096;  // far below the quadratic index
  const MetaResult meta = RunMeta(
      trace, [] { return std::make_unique<LogicBloxScheduler>(); }, config);
  EXPECT_TRUE(meta.heuristic_aborted);
  EXPECT_EQ(meta.winner, "LevelBased");
  EXPECT_GT(meta.makespan, 0.0);
  // LevelBased inherited all processors after the abort.
  EXPECT_EQ(meta.level_based_half.tasks_executed, trace.NumNodes());
}

TEST(MetaTest, RequiresTwoProcessors) {
  const trace::JobTrace trace = trace::MakeChain(2);
  MetaConfig config;
  config.processors = 1;
  EXPECT_THROW(RunMeta(trace,
                       [] { return std::make_unique<LogicBloxScheduler>(); },
                       config),
               util::LogicError);
}

}  // namespace
}  // namespace dsched::sim
