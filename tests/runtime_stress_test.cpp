// Stress tests for the work-stealing pool + batched executor: random DAGs
// × every scheduler spec × 1..8 workers, asserting the precedence
// guarantee the whole model rests on (no task starts before all of its
// activated ancestors completed), and store equality between ApplyParallel
// and the serial incremental engine under the same sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "datalog/eval.hpp"
#include "datalog/incremental.hpp"
#include "datalog/parallel_update.hpp"
#include "datalog/parser.hpp"
#include "datalog/stratify.hpp"
#include "datalog/validate.hpp"
#include "runtime/executor.hpp"
#include "sched/factory.hpp"
#include "trace/cascade.hpp"
#include "runtime/task_router.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"
#include "wide_program_fixture.hpp"

namespace dsched::runtime {
namespace {

constexpr const char* kSpecs[] = {"levelbased", "levelbased:fifo",
                                  "levelbased:lpt", "lbl:3", "logicblox",
                                  "signal", "hybrid"};

/// active_ancestors[v] = the activated ancestors of v (restricted to the
/// cascade's active set), computed offline from the ground-truth cascade.
std::vector<std::vector<util::TaskId>> ActiveAncestors(
    const trace::JobTrace& trace, const trace::Cascade& cascade) {
  const graph::Dag& dag = trace.Graph();
  const std::size_t n = dag.NumNodes();
  // ancestors as bitsets over active nodes; n stays small in these tests.
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  // Process in topological order: node ids of MakeRandomDag are already
  // topological (edges only go u < v), but be generic: iterate until fixed
  // point is unnecessary — use a topological iteration via in-degree.
  std::vector<std::size_t> indegree(n, 0);
  for (util::TaskId u = 0; u < n; ++u) {
    for (const util::TaskId v : dag.OutNeighbors(u)) {
      ++indegree[v];
    }
  }
  std::vector<util::TaskId> order;
  order.reserve(n);
  for (util::TaskId u = 0; u < n; ++u) {
    if (indegree[u] == 0) {
      order.push_back(u);
    }
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    const util::TaskId u = order[head];
    for (const util::TaskId v : dag.OutNeighbors(u)) {
      for (std::size_t a = 0; a < n; ++a) {
        if (reach[u][a]) {
          reach[v][a] = true;
        }
      }
      reach[v][u] = true;
      if (--indegree[v] == 0) {
        order.push_back(v);
      }
    }
  }
  std::vector<std::vector<util::TaskId>> result(n);
  for (util::TaskId v = 0; v < n; ++v) {
    if (!cascade.active[v]) {
      continue;
    }
    for (std::size_t a = 0; a < n; ++a) {
      if (reach[v][a] && cascade.active[a]) {
        result[v].push_back(static_cast<util::TaskId>(a));
      }
    }
  }
  return result;
}

TEST(RuntimeStressTest, PrecedenceHoldsAcrossSchedulersAndWorkerCounts) {
  for (std::uint64_t seed : {11u, 23u, 47u}) {
    util::Rng rng(seed);
    const trace::JobTrace trace =
        trace::MakeRandomDag(70, 0.07, 0.2, 0.65, rng);
    const trace::Cascade cascade = trace::ComputeCascade(trace);
    const auto ancestors = ActiveAncestors(trace, cascade);
    for (const char* spec : kSpecs) {
      for (std::size_t workers = 1; workers <= 8; ++workers) {
        auto scheduler = sched::CreateScheduler(spec);
        std::vector<std::atomic<bool>> completed(trace.NumNodes());
        for (auto& flag : completed) {
          flag.store(false);
        }
        std::atomic<int> violations{0};
        const auto stats = Executor::Run(
            trace, *scheduler,
            [&](util::TaskId t) {
              for (const util::TaskId a : ancestors[t]) {
                if (!completed[a].load()) {
                  violations.fetch_add(1);
                }
              }
              completed[t].store(true);
              return trace.Info(t).output_changes;
            },
            {.workers = workers});
        EXPECT_EQ(violations.load(), 0)
            << spec << " workers=" << workers << " seed=" << seed;
        EXPECT_EQ(stats.executed, cascade.NumActive())
            << spec << " workers=" << workers << " seed=" << seed;
        EXPECT_EQ(stats.completion_pushes, stats.executed);
      }
    }
  }
}

TEST(RuntimeStressTest, BatchedDispatchKeepsStatsConsistent) {
  util::Rng rng(5);
  const trace::JobTrace trace = trace::MakeRandomDag(80, 0.06, 0.3, 0.7, rng);
  auto scheduler = sched::CreateScheduler("hybrid");
  const auto stats = Executor::Run(trace, *scheduler, Executor::TaskBody{}, {.workers = 4});
  EXPECT_EQ(stats.dispatched, stats.executed);
  EXPECT_GE(stats.dispatch_batches, 1u);
  EXPECT_LE(stats.dispatch_batches, stats.dispatched);
  std::uint64_t hist_total = 0;
  for (const std::uint64_t count : stats.batch_size_hist) {
    hist_total += count;
  }
  EXPECT_EQ(hist_total, stats.dispatch_batches);
  EXPECT_GE(stats.max_dispatch_batch, 1u);
  EXPECT_GE(stats.completion_drains, 1u);
  // Each drain handles >= 1 completion; batching means usually many.
  EXPECT_LE(stats.completion_drains, stats.executed);
}

// --- ApplyParallel vs the serial engine, across specs × worker counts ---

// Program + helpers shared with the parallel and service tests.
using dsched::testing::kWideProgram;
using dsched::testing::Sorted;

TEST(RuntimeStressTest, ParallelStoreEqualsSerialAcrossSweep) {
  using datalog::Tuple;
  using datalog::Value;
  for (const char* spec : kSpecs) {
    for (const std::size_t workers : {1u, 2u, 5u, 8u}) {
      datalog::Program seq_program = datalog::ParseProgram(kWideProgram);
      datalog::ValidateProgram(seq_program);
      const datalog::Stratification seq_strat = datalog::Stratify(seq_program);
      datalog::RelationStore seq_store(seq_program);
      datalog::Program par_program = datalog::ParseProgram(kWideProgram);
      datalog::ValidateProgram(par_program);
      const datalog::Stratification par_strat = datalog::Stratify(par_program);
      datalog::RelationStore par_store(par_program);

      util::Rng rng(1234);
      const auto e = seq_program.PredicateId("e");
      const auto n_pred = seq_program.PredicateId("n");
      const auto mark = seq_program.PredicateId("mark");
      for (int i = 0; i < 9; ++i) {
        seq_store.Of(n_pred).Insert({Value::Int(i)});
        par_store.Of(n_pred).Insert({Value::Int(i)});
        if (rng.NextBool(0.4)) {
          seq_store.Of(mark).Insert({Value::Int(i)});
          par_store.Of(mark).Insert({Value::Int(i)});
        }
      }
      for (int i = 0; i < 9; ++i) {
        for (int j = 0; j < 9; ++j) {
          if (i != j && rng.NextBool(0.18)) {
            seq_store.Of(e).Insert({Value::Int(i), Value::Int(j)});
            par_store.Of(e).Insert({Value::Int(i), Value::Int(j)});
          }
        }
      }
      datalog::EvaluateProgram(seq_program, seq_strat, seq_store);
      datalog::EvaluateProgram(par_program, par_strat, par_store);

      datalog::IncrementalEngine engine(seq_program, seq_strat, seq_store);
      util::Rng update_rng(999);
      for (int batch = 0; batch < 3; ++batch) {
        datalog::UpdateRequest request;
        for (int tries = 0; tries < 6; ++tries) {
          const int i = static_cast<int>(update_rng.NextBelow(9));
          const int j = static_cast<int>(update_rng.NextBelow(9));
          if (i == j) {
            continue;
          }
          if (update_rng.NextBool(0.5)) {
            request.insertions.emplace_back(e,
                                            Tuple{Value::Int(i), Value::Int(j)});
          } else {
            request.deletions.emplace_back(e,
                                           Tuple{Value::Int(i), Value::Int(j)});
          }
        }
        const int m = static_cast<int>(update_rng.NextBelow(9));
        if (update_rng.NextBool(0.5)) {
          request.insertions.emplace_back(mark, Tuple{Value::Int(m)});
        } else {
          request.deletions.emplace_back(mark, Tuple{Value::Int(m)});
        }

        (void)engine.Apply(request);
        datalog::ParallelUpdateOptions options;
        options.scheduler_spec = spec;
        options.workers = workers;
        (void)datalog::ApplyParallel(par_program, par_strat, par_store,
                                     request, options);
        for (std::uint32_t pred = 0; pred < seq_program.NumPredicates();
             ++pred) {
          EXPECT_EQ(Sorted(seq_store.Of(pred).Tuples()),
                    Sorted(par_store.Of(pred).Tuples()))
              << spec << " workers=" << workers << " batch=" << batch
              << " predicate " << seq_program.predicate_names[pred];
        }
      }
    }
  }
}

TEST(RuntimeStressTest, ParallelViaSharedRouterEqualsSerial) {
  // Same store-equality guarantee as the sweep above, but every parallel
  // update runs through ONE shared TaskRouter — the service-layer
  // configuration — instead of a per-call private pool.
  TaskRouter router({.workers = 4});
  for (const char* spec : kSpecs) {
    util::Rng rng(321);
    dsched::testing::WideFixture serial;
    serial.Base(rng, 9, 0.18);
    util::Rng rng2(321);
    dsched::testing::WideFixture routed;
    routed.Base(rng2, 9, 0.18);

    datalog::IncrementalEngine engine(serial.program, serial.strat,
                                      serial.store);
    util::Rng update_rng(654);
    for (int batch = 0; batch < 3; ++batch) {
      const datalog::UpdateRequest request =
          dsched::testing::RandomUpdate(serial.program, update_rng, 9);
      (void)engine.Apply(request);
      datalog::ParallelUpdateOptions options;
      options.scheduler_spec = spec;
      options.router = &router;
      const auto result = datalog::ApplyParallel(
          routed.program, routed.strat, routed.store, request, options);
      EXPECT_GT(result.run.executed, 0u) << spec << " batch=" << batch;
      dsched::testing::ExpectStoresEqual(serial.program, serial.store,
                                         routed.store, spec);
    }
  }
  EXPECT_EQ(router.OpenChannels(), 0u);
}

}  // namespace
}  // namespace dsched::runtime
