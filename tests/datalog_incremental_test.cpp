// Incremental maintenance tests: every update must leave the store exactly
// equal to a from-scratch evaluation of the updated base — insertions,
// deletions (DRed with rederivation), negation in both directions — plus
// the schedule-bridge extraction.
#include <gtest/gtest.h>

#include <algorithm>

#include "datalog/database.hpp"
#include "datalog/eval.hpp"
#include "datalog/incremental.hpp"
#include "datalog/parser.hpp"
#include "datalog/schedule_bridge.hpp"
#include "datalog/stratify.hpp"
#include "datalog/validate.hpp"
#include "graph/levels.hpp"
#include "sched/factory.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "trace/cascade.hpp"
#include "util/rng.hpp"

namespace dsched::datalog {
namespace {

std::vector<Tuple> Sorted(std::vector<Tuple> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Checks that `incremental` equals a from-scratch evaluation where the
/// base facts of `reference_base` are inserted into a fresh store.
void ExpectEqualsFromScratch(
    const Program& program, const Stratification& strat,
    const RelationStore& incremental,
    const std::vector<std::pair<std::uint32_t, Tuple>>& reference_base) {
  RelationStore fresh(program);
  for (const auto& [pred, tuple] : reference_base) {
    fresh.Of(pred).Insert(tuple);
  }
  EvaluateProgram(program, strat, fresh);
  for (std::uint32_t pred = 0; pred < program.NumPredicates(); ++pred) {
    EXPECT_EQ(Sorted(incremental.Of(pred).Tuples()),
              Sorted(fresh.Of(pred).Tuples()))
        << "predicate " << program.predicate_names[pred];
  }
}

TEST(IncrementalTest, InsertionExtendsClosure) {
  Database db(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
  )");
  db.Insert("e", {Value::Int(0), Value::Int(1)});
  db.Insert("e", {Value::Int(1), Value::Int(2)});
  db.Materialize();
  EXPECT_EQ(db.Query("tc").size(), 3u);

  auto update = db.MakeUpdate();
  update.Insert("e", {Value::Int(2), Value::Int(3)});
  const UpdateResult result = db.Apply(update);
  EXPECT_EQ(db.Query("tc").size(), 6u);
  EXPECT_TRUE(db.Contains("tc", {Value::Int(0), Value::Int(3)}));
  EXPECT_EQ(result.total_inserted, 4u);  // e tuple + 3 tc tuples
  EXPECT_EQ(result.total_deleted, 0u);
}

TEST(IncrementalTest, DeletionShrinksClosure) {
  Database db(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
  )");
  for (int i = 0; i < 4; ++i) {
    db.Insert("e", {Value::Int(i), Value::Int(i + 1)});
  }
  db.Materialize();
  EXPECT_EQ(db.Query("tc").size(), 10u);

  auto update = db.MakeUpdate();
  update.Delete("e", {Value::Int(2), Value::Int(3)});
  const UpdateResult result = db.Apply(update);
  // Chain splits: {0,1,2} and {3,4}: 3 + 1 pairs remain.
  EXPECT_EQ(db.Query("tc").size(), 4u);
  EXPECT_FALSE(db.Contains("tc", {Value::Int(0), Value::Int(3)}));
  EXPECT_TRUE(db.Contains("tc", {Value::Int(0), Value::Int(2)}));
  EXPECT_GT(result.total_deleted, 0u);
}

TEST(IncrementalTest, DeletionWithRederivation) {
  // Two parallel paths a->b: deleting one edge keeps tc(a, b) derivable.
  Database db(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
  )");
  db.Insert("e", {db.Sym("a"), db.Sym("b")});
  db.Insert("e", {db.Sym("a"), db.Sym("m")});
  db.Insert("e", {db.Sym("m"), db.Sym("b")});
  db.Materialize();

  auto update = db.MakeUpdate();
  update.Delete("e", {db.Sym("a"), db.Sym("b")});
  const UpdateResult result = db.Apply(update);
  EXPECT_TRUE(db.Contains("tc", {db.Sym("a"), db.Sym("b")}));  // rederived
  bool any_rederived = false;
  for (const auto& c : result.components) {
    any_rederived |= c.tuples_rederived > 0;
  }
  EXPECT_TRUE(any_rederived);
}

TEST(IncrementalTest, InsertionIntoNegatedPredicateDestroys) {
  Database db(R"(
    ok(X) :- cand(X), !bad(X).
  )");
  db.Insert("cand", {Value::Int(1)});
  db.Insert("cand", {Value::Int(2)});
  db.Materialize();
  EXPECT_EQ(db.Query("ok").size(), 2u);

  auto update = db.MakeUpdate();
  update.Insert("bad", {Value::Int(1)});
  db.Apply(update);
  EXPECT_EQ(db.Query("ok").size(), 1u);
  EXPECT_FALSE(db.Contains("ok", {Value::Int(1)}));
}

TEST(IncrementalTest, DeletionFromNegatedPredicateCreates) {
  Database db(R"(
    ok(X) :- cand(X), !bad(X).
  )");
  db.Insert("cand", {Value::Int(1)});
  db.Insert("bad", {Value::Int(1)});
  db.Materialize();
  EXPECT_TRUE(db.Query("ok").empty());

  auto update = db.MakeUpdate();
  update.Delete("bad", {Value::Int(1)});
  db.Apply(update);
  EXPECT_TRUE(db.Contains("ok", {Value::Int(1)}));
}

TEST(IncrementalTest, NegationCascadesThroughRecursion) {
  // Deleting an edge disconnects nodes; unreach must grow accordingly.
  Database db(R"(
    reach(X) :- start(X).
    reach(Y) :- reach(X), e(X, Y).
    unreach(X) :- node(X), !reach(X).
  )");
  for (int i = 0; i < 4; ++i) {
    db.Insert("node", {Value::Int(i)});
  }
  db.Insert("start", {Value::Int(0)});
  db.Insert("e", {Value::Int(0), Value::Int(1)});
  db.Insert("e", {Value::Int(1), Value::Int(2)});
  db.Insert("e", {Value::Int(2), Value::Int(3)});
  db.Materialize();
  EXPECT_EQ(db.Query("unreach").size(), 0u);

  auto update = db.MakeUpdate();
  update.Delete("e", {Value::Int(1), Value::Int(2)});
  db.Apply(update);
  EXPECT_EQ(db.Query("unreach").size(), 2u);  // 2 and 3
  EXPECT_TRUE(db.Contains("unreach", {Value::Int(3)}));
}

TEST(IncrementalTest, NoOpUpdateChangesNothing) {
  Database db(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
  )");
  db.Insert("e", {Value::Int(0), Value::Int(1)});
  db.Materialize();

  auto update = db.MakeUpdate();
  update.Insert("e", {Value::Int(0), Value::Int(1)});   // already present
  update.Delete("e", {Value::Int(7), Value::Int(8)});   // absent
  const UpdateResult result = db.Apply(update);
  EXPECT_EQ(result.total_inserted, 0u);
  EXPECT_EQ(result.total_deleted, 0u);
  for (const auto& c : result.components) {
    EXPECT_FALSE(c.output_changed);
  }
}

TEST(IncrementalTest, RandomizedEquivalenceWithFromScratch) {
  // The definitive property: random base + random update batches, compared
  // against a fresh evaluation after every batch.
  const char* program_text = R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    hasout(X) :- e(X, _).
    deadend(X) :- n(X), !hasout(X).
    far(X, Z) :- tc(X, Y), tc(Y, Z), X != Z.
  )";
  util::Rng rng(31415);
  for (int trial = 0; trial < 4; ++trial) {
    const Program program = ParseProgram(program_text);
    ValidateProgram(program);
    const Stratification strat = Stratify(program);
    RelationStore store(program);
    const auto e = program.PredicateId("e");
    const auto n_pred = program.PredicateId("n");

    // Base: n(0..9), random edges.
    std::vector<std::pair<std::uint32_t, Tuple>> base;
    for (int i = 0; i < 10; ++i) {
      base.emplace_back(n_pred, Tuple{Value::Int(i)});
    }
    std::set<std::pair<int, int>> edges;
    for (int i = 0; i < 10; ++i) {
      for (int j = 0; j < 10; ++j) {
        if (i != j && rng.NextBool(0.15)) {
          edges.emplace(i, j);
        }
      }
    }
    for (const auto& [i, j] : edges) {
      base.emplace_back(e, Tuple{Value::Int(i), Value::Int(j)});
    }
    for (const auto& [pred, tuple] : base) {
      store.Of(pred).Insert(tuple);
    }
    EvaluateProgram(program, strat, store);
    IncrementalEngine engine(program, strat, store);

    for (int batch = 0; batch < 5; ++batch) {
      UpdateRequest request;
      // Random deletions of existing edges and insertions of fresh ones.
      for (auto it = edges.begin(); it != edges.end();) {
        if (rng.NextBool(0.2)) {
          request.deletions.emplace_back(
              e, Tuple{Value::Int(it->first), Value::Int(it->second)});
          it = edges.erase(it);
        } else {
          ++it;
        }
      }
      for (int tries = 0; tries < 6; ++tries) {
        const int i = static_cast<int>(rng.NextBelow(10));
        const int j = static_cast<int>(rng.NextBelow(10));
        if (i != j && edges.emplace(i, j).second) {
          request.insertions.emplace_back(e,
                                          Tuple{Value::Int(i), Value::Int(j)});
        }
      }
      engine.Apply(request);

      std::vector<std::pair<std::uint32_t, Tuple>> current_base;
      for (int i = 0; i < 10; ++i) {
        current_base.emplace_back(n_pred, Tuple{Value::Int(i)});
      }
      for (const auto& [i, j] : edges) {
        current_base.emplace_back(e, Tuple{Value::Int(i), Value::Int(j)});
      }
      ExpectEqualsFromScratch(program, strat, store, current_base);
    }
  }
}

TEST(ScheduleBridgeTest, TraceMirrorsUpdateCascade) {
  Database db(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    pairs(X, Z) :- tc(X, Y), tc(Y, Z).
    quiet(X) :- other(X).
  )");
  db.Insert("e", {Value::Int(0), Value::Int(1)});
  db.Insert("other", {Value::Int(9)});
  db.Materialize();

  auto update = db.MakeUpdate();
  update.Insert("e", {Value::Int(1), Value::Int(2)});
  UpdateRequest request;
  request.insertions.emplace_back(db.GetProgram().PredicateId("e"),
                                  Tuple{Value::Int(1), Value::Int(2)});
  // Apply through the engine path the bridge expects.
  const UpdateResult result = db.Apply(update);

  const UpdateTrace bridge = BuildUpdateTrace(
      db.GetProgram(), db.GetStratification(), request, result, "t");
  const trace::JobTrace& trace = bridge.trace;
  // Nodes: one per predicate + one per rule component.
  EXPECT_EQ(trace.NumNodes(),
            db.GetProgram().NumPredicates() +
                3u /* tc, pairs, quiet components */);
  // Dirty: the 'e' collector (base predicate, no rules).
  ASSERT_EQ(trace.InitialDirty().size(), 1u);
  EXPECT_EQ(trace.InitialDirty()[0],
            bridge.predicate_node[db.GetProgram().PredicateId("e")]);

  // Cascade: e → tc-task → tc → pairs-task → pairs all activate; the
  // 'quiet' chain must stay inactive.
  const trace::Cascade cascade = trace::ComputeCascade(trace);
  const auto tc_pred = db.GetProgram().PredicateId("tc");
  const auto quiet_pred = db.GetProgram().PredicateId("quiet");
  EXPECT_TRUE(cascade.active[bridge.predicate_node[tc_pred]]);
  EXPECT_FALSE(cascade.active[bridge.predicate_node[quiet_pred]]);
  const auto quiet_comp =
      db.GetStratification().component_of[quiet_pred];
  EXPECT_FALSE(cascade.active[bridge.component_node[quiet_comp]]);

  // And the trace is schedulable end to end.
  auto scheduler = sched::CreateScheduler("hybrid");
  sim::SimConfig config;
  config.processors = 2;
  config.record_schedule = true;
  const sim::SimResult sim_result = Simulate(trace, *scheduler, config);
  EXPECT_TRUE(sim::AuditSchedule(trace, sim_result).valid);
  EXPECT_EQ(sim_result.tasks_executed, cascade.NumActive());
}

TEST(ScheduleBridgeTest, UnchangedComponentDoesNotPropagate) {
  // An update that touches e but yields no tc change (inserting an edge
  // that adds no new closure pair is impossible for tc, so use deletion of
  // an absent tuple... instead: update other, and verify only the quiet
  // chain activates).
  Database db(R"(
    tc(X, Y) :- e(X, Y).
    quiet(X) :- other(X).
  )");
  db.Insert("e", {Value::Int(0), Value::Int(1)});
  db.Insert("other", {Value::Int(1)});
  db.Materialize();

  auto update = db.MakeUpdate();
  update.Insert("other", {Value::Int(2)});
  UpdateRequest request;
  request.insertions.emplace_back(db.GetProgram().PredicateId("other"),
                                  Tuple{Value::Int(2)});
  const UpdateResult result = db.Apply(update);
  const UpdateTrace bridge = BuildUpdateTrace(
      db.GetProgram(), db.GetStratification(), request, result, "t");
  const trace::Cascade cascade = trace::ComputeCascade(bridge.trace);
  const auto tc_pred = db.GetProgram().PredicateId("tc");
  EXPECT_FALSE(cascade.active[bridge.predicate_node[tc_pred]]);
  const auto quiet_pred = db.GetProgram().PredicateId("quiet");
  EXPECT_TRUE(cascade.active[bridge.predicate_node[quiet_pred]]);
}

}  // namespace
}  // namespace dsched::datalog
