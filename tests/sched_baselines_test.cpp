// Unit tests for the LogicBlox, SignalPropagation, Oracle, and Hybrid
// schedulers plus the factory.
#include <gtest/gtest.h>

#include "graph/digraph_builder.hpp"
#include "sched/factory.hpp"
#include "sched/hybrid.hpp"
#include "sched/level_based.hpp"
#include "sched/logicblox.hpp"
#include "sched/oracle.hpp"
#include "sched/signal_propagation.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "trace/cascade.hpp"
#include "trace/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsched::sched {
namespace {

using sim::ExecutionModel;
using sim::SimConfig;
using sim::Simulate;

SimConfig Recorded(std::size_t processors,
                   ExecutionModel model = ExecutionModel::kSequential) {
  SimConfig config;
  config.processors = processors;
  config.model = model;
  config.record_schedule = true;
  return config;
}

void ExpectValidRun(const trace::JobTrace& trace, Scheduler& sched,
                    const SimConfig& config) {
  const sim::SimResult result = Simulate(trace, sched, config);
  const trace::Cascade cascade = trace::ComputeCascade(trace);
  EXPECT_EQ(result.tasks_executed, cascade.NumActive());
  const sim::AuditResult audit = sim::AuditSchedule(trace, result);
  EXPECT_TRUE(audit.valid)
      << std::string(sched.Name()) << ": "
      << (audit.violations.empty() ? "" : audit.violations.front());
}

TEST(LogicBloxTest, ChainByHand) {
  const trace::JobTrace trace = trace::MakeChain(3);
  LogicBloxScheduler sched;
  sched.Prepare({&trace, 1});
  sched.OnActivated(0);
  EXPECT_EQ(sched.PopReady(), 0u);
  sched.OnStarted(0);
  sched.OnActivated(1);
  // 0 is running and an ancestor of 1: a scan must reject 1.
  EXPECT_EQ(sched.PopReady(), util::kInvalidTask);
  EXPECT_GT(sched.OpCounts().ancestor_queries, 0u);
  sched.OnCompleted(0, true);
  EXPECT_EQ(sched.PopReady(), 1u);
}

TEST(LogicBloxTest, ReadyUnstartedTaskStillBlocksDescendants) {
  // Fork 0 -> {1, 2} with an extra edge 1 -> 2... build explicitly:
  // 0 -> 1, 0 -> 2, 1 -> 2.  After 0 completes, 1 is ready; 2 must wait
  // even though 1 has not started (ready-but-unstarted tasks block).
  graph::DigraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  std::vector<trace::TaskInfo> infos(3);
  const trace::JobTrace trace("t", std::move(b).Build(), infos, {0});
  LogicBloxScheduler sched;
  sched.Prepare({&trace, 2});
  sched.OnActivated(0);
  EXPECT_EQ(sched.PopReady(), 0u);
  sched.OnStarted(0);
  sched.OnActivated(1);
  sched.OnActivated(2);
  sched.OnCompleted(0, true);
  EXPECT_EQ(sched.PopReady(), 1u);  // 1 clears; 2 blocked behind pending 1
  EXPECT_EQ(sched.PopReady(), 1u);  // not yet started: offered again
  sched.OnStarted(1);
  EXPECT_EQ(sched.PopReady(), util::kInvalidTask);
  sched.OnCompleted(1, true);
  EXPECT_EQ(sched.PopReady(), 2u);
}

TEST(LogicBloxTest, PathologicalScanIsExpensive) {
  // Θ(fanout² · chain) ancestor queries on the adversarial instance, vs
  // O(n + L) for LevelBased.
  const trace::JobTrace trace = trace::MakePathologicalScan(30, 60);
  LogicBloxScheduler lx;
  LevelBasedScheduler lb;
  const auto lx_result = Simulate(trace, lx, Recorded(2));
  const auto lb_result = Simulate(trace, lb, Recorded(2));
  EXPECT_GT(lx_result.ops.ancestor_queries, 30u * 60u);
  EXPECT_LT(lb_result.ops.Total(), 4u * trace.NumNodes());
  EXPECT_DOUBLE_EQ(lx_result.makespan, lb_result.makespan);  // same schedule length
}

TEST(LogicBloxTest, AuditCleanOnRandomTraces) {
  util::Rng rng(41);
  for (int trial = 0; trial < 8; ++trial) {
    const trace::JobTrace trace =
        trace::MakeRandomDag(50, 0.08, 0.2, 0.7, rng);
    LogicBloxScheduler sched;
    ExpectValidRun(trace, sched, Recorded(3));
  }
}

TEST(SignalPropagationTest, MessageCountIsGraphSized) {
  // Even with a single active task, messages ≈ V + E (the paper's critique).
  util::Rng rng(43);
  trace::LayeredDagSpec spec;
  spec.level_widths = trace::MakeLevelWidths(800, 10, 100, rng);
  spec.extra_edges = 400;
  spec.initial_dirty = 1;
  spec.target_active = 5;
  spec.seed = 7;
  const trace::JobTrace trace = trace::GenerateLayered(spec);
  SignalPropagationScheduler sp;
  const auto result = Simulate(trace, sp, Recorded(2));
  EXPECT_GE(result.ops.messages, trace.NumEdges());
  // LevelBased on the same trace: orders of magnitude fewer ops.
  LevelBasedScheduler lb;
  const auto lb_result = Simulate(trace, lb, Recorded(2));
  EXPECT_LT(lb_result.ops.Total() * 10, result.ops.messages);
}

TEST(SignalPropagationTest, AuditCleanOnRandomTraces) {
  util::Rng rng(47);
  for (int trial = 0; trial < 8; ++trial) {
    const trace::JobTrace trace =
        trace::MakeRandomDag(50, 0.08, 0.2, 0.7, rng);
    SignalPropagationScheduler sched;
    ExpectValidRun(trace, sched, Recorded(3));
  }
}

TEST(OracleTest, LptOrderOnTightExample) {
  // The oracle realizes the Θ(M + L) optimal order of Figure 2.
  const std::size_t levels = 20;
  const trace::JobTrace trace = trace::MakeTightExample(levels);
  OracleScheduler oracle;
  LevelBasedScheduler lb;
  const SimConfig config{.processors = 32,
                         .model = ExecutionModel::kMoldable};
  const auto oracle_result = Simulate(trace, oracle, config);
  const auto lb_result = Simulate(trace, lb, config);
  // Opt ≈ 2L; LevelBased ≈ L²/2.
  EXPECT_LE(oracle_result.makespan, 2.5 * static_cast<double>(levels));
  EXPECT_GE(lb_result.makespan, 0.2 * static_cast<double>(levels * levels));
}

TEST(OracleTest, AuditCleanOnRandomTraces) {
  util::Rng rng(53);
  for (int trial = 0; trial < 8; ++trial) {
    const trace::JobTrace trace =
        trace::MakeRandomDag(40, 0.1, 0.25, 0.6, rng);
    OracleScheduler sched;
    ExpectValidRun(trace, sched, Recorded(3));
  }
}

TEST(HybridTest, NameComposesChildren) {
  HybridScheduler hybrid(std::make_unique<LevelBasedScheduler>(),
                         std::make_unique<LogicBloxScheduler>());
  EXPECT_EQ(hybrid.Name(), "Hybrid(LevelBased+LogicBlox)");
}

TEST(HybridTest, FastPathAvoidsHeuristicScans) {
  // On a wide shallow fork everything is frontier work: the LevelBased
  // side feeds the queue and the LogicBlox side never needs to scan.
  const trace::JobTrace trace = trace::MakeFork(200);
  HybridScheduler hybrid(std::make_unique<LevelBasedScheduler>(),
                         std::make_unique<LogicBloxScheduler>());
  const auto result = Simulate(trace, hybrid, Recorded(4));
  EXPECT_EQ(result.tasks_executed, 201u);
  EXPECT_EQ(result.ops.ancestor_queries, 0u);
}

TEST(HybridTest, HeuristicRescuesBlockedFrontier) {
  // Tight example: the LevelBased half is stuck at the frontier, but the
  // LogicBlox half identifies deeper ready work — the shared-queue win.
  const trace::JobTrace trace = trace::MakeTightExample(10);
  HybridScheduler hybrid(std::make_unique<LevelBasedScheduler>(),
                         std::make_unique<LogicBloxScheduler>());
  LevelBasedScheduler plain;
  const SimConfig config{.processors = 16,
                         .model = ExecutionModel::kMoldable};
  const auto hybrid_result = Simulate(trace, hybrid, config);
  const auto plain_result = Simulate(trace, plain, config);
  EXPECT_LT(hybrid_result.makespan, 0.6 * plain_result.makespan);
}

TEST(HybridTest, BackoffThrottlesFruitlessScans) {
  // Scan-pathological instance: every completion re-dirties the LogicBlox
  // side, but the scans stay fruitless until the chain drains.  The
  // hybrid's gate must collapse those O(n) scans to O(log n) — far fewer
  // ancestor queries than standalone LogicBlox — without changing the
  // schedule length.
  const trace::JobTrace trace = trace::MakePathologicalScan(80, 320);
  LogicBloxScheduler lx;
  HybridScheduler hybrid(std::make_unique<LevelBasedScheduler>(),
                         std::make_unique<LogicBloxScheduler>());
  const auto lx_result = Simulate(trace, lx, Recorded(8));
  const auto hybrid_result = Simulate(trace, hybrid, Recorded(8));
  EXPECT_DOUBLE_EQ(hybrid_result.makespan, lx_result.makespan);
  EXPECT_LT(hybrid_result.ops.ancestor_queries * 5,
            lx_result.ops.ancestor_queries);
  const sim::AuditResult audit = sim::AuditSchedule(trace, hybrid_result);
  EXPECT_TRUE(audit.valid);
}

TEST(HybridTest, CreditsKeepDeepDiscoveryImmediate) {
  // Tight example: new activations land past the blocked frontier, so the
  // fast path cannot place them.  The leftover activation credits must let
  // the heuristic find them right away — the hybrid tracks the oracle, not
  // plain LevelBased.
  const trace::JobTrace trace = trace::MakeTightExample(16);
  HybridScheduler hybrid(std::make_unique<LevelBasedScheduler>(),
                         std::make_unique<LogicBloxScheduler>());
  OracleScheduler oracle;
  const SimConfig config{.processors = 18,
                         .model = ExecutionModel::kMoldable};
  const auto hybrid_result = Simulate(trace, hybrid, config);
  const auto oracle_result = Simulate(trace, oracle, config);
  EXPECT_LE(hybrid_result.makespan, 1.5 * oracle_result.makespan);
}

TEST(HybridTest, AuditCleanOnRandomTraces) {
  util::Rng rng(59);
  for (int trial = 0; trial < 8; ++trial) {
    const trace::JobTrace trace =
        trace::MakeRandomDag(50, 0.08, 0.2, 0.7, rng);
    HybridScheduler sched(std::make_unique<LevelBasedScheduler>(),
                          std::make_unique<LogicBloxScheduler>());
    ExpectValidRun(trace, sched, Recorded(3));
  }
}

TEST(FactoryTest, CreatesEverySpec) {
  EXPECT_EQ(CreateScheduler("levelbased")->Name(), "LevelBased");
  EXPECT_EQ(CreateScheduler("LBL:7")->Name(), "LBL(k=7)");
  EXPECT_EQ(CreateScheduler("logicblox")->Name(), "LogicBlox");
  EXPECT_EQ(CreateScheduler("signal")->Name(), "SignalPropagation");
  EXPECT_EQ(CreateScheduler("oracle")->Name(), "Oracle");
  EXPECT_EQ(CreateScheduler("hybrid")->Name(), "Hybrid(LevelBased+LogicBlox)");
  EXPECT_EQ(CreateScheduler("hybrid:lbl:4")->Name(),
            "Hybrid(LevelBased+LBL(k=4))");
  EXPECT_THROW(CreateScheduler("nonsense"), util::ParseError);
  EXPECT_FALSE(KnownSchedulerSpecs().empty());
}

}  // namespace
}  // namespace dsched::sched
