// Determinism guarantees: every stochastic component is seeded, so repeated
// runs must agree bit-for-bit — the property that makes the synthetic
// replacements for the proprietary traces reproducible across machines, and
// simulated experiments replayable.
#include <gtest/gtest.h>

#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "trace/cascade.hpp"
#include "trace/generators.hpp"
#include "trace/table_traces.hpp"
#include "util/rng.hpp"

namespace dsched {
namespace {

TEST(DeterminismTest, TableTraceIsBitStable) {
  const trace::JobTrace a = trace::MakeTableTrace(5, 1.0, 123);
  const trace::JobTrace b = trace::MakeTableTrace(5, 1.0, 123);
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.InitialDirty(), b.InitialDirty());
  for (std::size_t v = 0; v < a.NumNodes(); ++v) {
    const auto id = static_cast<util::TaskId>(v);
    EXPECT_DOUBLE_EQ(a.Info(id).work, b.Info(id).work);
    EXPECT_EQ(a.Info(id).output_changes, b.Info(id).output_changes);
    const auto oa = a.Graph().OutNeighbors(id);
    const auto ob = b.Graph().OutNeighbors(id);
    ASSERT_EQ(oa.size(), ob.size());
    EXPECT_TRUE(std::equal(oa.begin(), oa.end(), ob.begin()));
  }
}

TEST(DeterminismTest, DifferentSeedsDifferentTraces) {
  const trace::JobTrace a = trace::MakeTableTrace(5, 1.0, 1);
  const trace::JobTrace b = trace::MakeTableTrace(5, 1.0, 2);
  // Same row statistics by construction...
  EXPECT_EQ(a.NumNodes(), b.NumNodes());
  // ...but different wiring and durations.
  bool any_difference = false;
  for (std::size_t v = 0; v < a.NumNodes() && !any_difference; ++v) {
    const auto id = static_cast<util::TaskId>(v);
    any_difference = a.Info(id).work != b.Info(id).work ||
                     a.Graph().OutDegree(id) != b.Graph().OutDegree(id);
  }
  EXPECT_TRUE(any_difference);
}

TEST(DeterminismTest, SimulationIsReplayable) {
  util::Rng rng(404);
  const trace::JobTrace jt = trace::MakeRandomDag(70, 0.06, 0.2, 0.7, rng);
  for (const char* spec :
       {"levelbased", "lbl:4", "logicblox", "hybrid", "signal", "oracle"}) {
    auto s1 = sched::CreateScheduler(spec);
    auto s2 = sched::CreateScheduler(spec);
    sim::SimConfig config;
    config.processors = 3;
    config.record_schedule = true;
    const auto r1 = sim::Simulate(jt, *s1, config);
    const auto r2 = sim::Simulate(jt, *s2, config);
    EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan) << spec;
    EXPECT_EQ(r1.ops.Total(), r2.ops.Total()) << spec;
    ASSERT_EQ(r1.schedule.size(), r2.schedule.size()) << spec;
    for (std::size_t i = 0; i < r1.schedule.size(); ++i) {
      EXPECT_EQ(r1.schedule[i].id, r2.schedule[i].id) << spec << " @" << i;
      EXPECT_DOUBLE_EQ(r1.schedule[i].start, r2.schedule[i].start);
    }
  }
}

TEST(DeterminismTest, CascadeIndependentOfSchedulerChoice) {
  // The active set is a property of the workload, not the policy: every
  // scheduler must report the same activation count on the same trace.
  util::Rng rng(505);
  const trace::JobTrace jt = trace::MakeRandomDag(60, 0.07, 0.25, 0.6, rng);
  const trace::Cascade cascade = trace::ComputeCascade(jt);
  for (const char* spec :
       {"levelbased", "lbl:6", "logicblox", "hybrid", "signal"}) {
    auto scheduler = sched::CreateScheduler(spec);
    const auto result = sim::Simulate(jt, *scheduler, {.processors = 4});
    EXPECT_EQ(result.activations, cascade.NumActive()) << spec;
    EXPECT_EQ(result.tasks_executed, cascade.NumActive()) << spec;
  }
}

}  // namespace
}  // namespace dsched
