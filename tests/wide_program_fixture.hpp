// Shared test fixture: the "wide" Datalog program used by the parallel,
// stress, and service tests.  One copy, three consumers — the program has
// genuinely parallel structure (several independent derived chains off
// shared bases, recursion, negation, and a final join), which is what makes
// scheduler/worker sweeps and multi-session interleaving meaningful.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "datalog/eval.hpp"
#include "datalog/incremental.hpp"
#include "datalog/parser.hpp"
#include "datalog/relation.hpp"
#include "datalog/stratify.hpp"
#include "datalog/validate.hpp"
#include "util/rng.hpp"

namespace dsched::testing {

constexpr const char* kWideProgram = R"(
  tc(X, Y) :- e(X, Y).
  tc(X, Z) :- tc(X, Y), e(Y, Z).
  rev(Y, X) :- e(X, Y).
  revtc(X, Y) :- rev(X, Y).
  revtc(X, Z) :- revtc(X, Y), rev(Y, Z).
  hasout(X) :- e(X, _).
  deadend(X) :- n(X), !hasout(X).
  hot(X) :- mark(X).
  hotpair(X, Y) :- hot(X), tc(X, Y).
  cold(X) :- n(X), !hot(X).
  summary(X, Y) :- hotpair(X, Y), revtc(Y, X).
)";

inline std::vector<datalog::Tuple> Sorted(std::vector<datalog::Tuple> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// EXPECT-asserts predicate-by-predicate tuple-set equality of two stores
/// over the same program.
inline void ExpectStoresEqual(const datalog::Program& program,
                              const datalog::RelationStore& a,
                              const datalog::RelationStore& b,
                              const char* what) {
  for (std::uint32_t pred = 0; pred < program.NumPredicates(); ++pred) {
    EXPECT_EQ(Sorted(a.Of(pred).Tuples()), Sorted(b.Of(pred).Tuples()))
        << what << ": predicate " << program.predicate_names[pred];
  }
}

/// A parsed+stratified kWideProgram with its own store, ready for Base().
struct WideFixture {
  datalog::Program program = datalog::ParseProgram(kWideProgram);
  datalog::Stratification strat;
  datalog::RelationStore store;

  WideFixture() {
    datalog::ValidateProgram(program);
    strat = datalog::Stratify(program);
    store = datalog::RelationStore(program);
  }

  /// Seeds n/mark/e with a random instance and evaluates to fixpoint.
  void Base(util::Rng& rng, int nodes, double edge_prob) {
    const auto e = program.PredicateId("e");
    const auto n = program.PredicateId("n");
    const auto mark = program.PredicateId("mark");
    for (int i = 0; i < nodes; ++i) {
      store.Of(n).Insert({datalog::Value::Int(i)});
      if (rng.NextBool(0.3)) {
        store.Of(mark).Insert({datalog::Value::Int(i)});
      }
    }
    for (int i = 0; i < nodes; ++i) {
      for (int j = 0; j < nodes; ++j) {
        if (i != j && rng.NextBool(edge_prob)) {
          store.Of(e).Insert({datalog::Value::Int(i), datalog::Value::Int(j)});
        }
      }
    }
    datalog::EvaluateProgram(program, strat, store);
  }
};

/// A small random e/mark churn batch against kWideProgram's base relations.
inline datalog::UpdateRequest RandomUpdate(const datalog::Program& program,
                                           util::Rng& rng, int nodes) {
  using datalog::Tuple;
  using datalog::Value;
  datalog::UpdateRequest request;
  const auto e = program.PredicateId("e");
  const auto mark = program.PredicateId("mark");
  for (int tries = 0; tries < 8; ++tries) {
    const int i =
        static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(nodes)));
    const int j =
        static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(nodes)));
    if (i == j) {
      continue;
    }
    if (rng.NextBool(0.5)) {
      request.insertions.emplace_back(e, Tuple{Value::Int(i), Value::Int(j)});
    } else {
      request.deletions.emplace_back(e, Tuple{Value::Int(i), Value::Int(j)});
    }
  }
  const int m =
      static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(nodes)));
  if (rng.NextBool(0.5)) {
    request.insertions.emplace_back(mark, Tuple{Value::Int(m)});
  } else {
    request.deletions.emplace_back(mark, Tuple{Value::Int(m)});
  }
  return request;
}

}  // namespace dsched::testing
