// Regression tests for the paper's headline qualitative claims, on
// scaled-down re-synthesized traces — if a scheduler change breaks one of
// the published shapes (who wins, in which regime), these fail long before
// anyone stares at bench output.
#include <gtest/gtest.h>

#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"
#include "trace/table_traces.hpp"

namespace dsched {
namespace {

sim::SimResult RunPolicy(const trace::JobTrace& jt, const char* spec) {
  auto scheduler = sched::CreateScheduler(spec);
  sim::SimConfig config;
  config.processors = 8;
  return sim::Simulate(jt, *scheduler, config);
}

TEST(PaperShapeTest, TableII_LookaheadClosesTheGap) {
  // Deep trace (#2 at 1/4 scale): LevelBased ≫ LBL(k), monotone-ish in k,
  // approaching LogicBlox.
  const trace::JobTrace jt = trace::MakeTableTrace(2, 0.25);
  const double lx = RunPolicy(jt, "logicblox").TotalSeconds();
  const double lb = RunPolicy(jt, "levelbased").TotalSeconds();
  const double lbl5 = RunPolicy(jt, "lbl:5").TotalSeconds();
  const double lbl20 = RunPolicy(jt, "lbl:20").TotalSeconds();
  EXPECT_GT(lb, 1.5 * lx);       // LevelBased pays for level draining
  EXPECT_LT(lbl5, 0.8 * lb);     // k = 5 already recovers a big chunk
  EXPECT_LT(lbl20, lbl5 * 1.02); // more lookahead never hurts much
  EXPECT_LT(lbl20, 1.6 * lx);    // k = 20 is in LogicBlox territory
}

TEST(PaperShapeTest, TableIII_LevelBasedWinsShallow) {
  // Shallow wide trace (#6 at 6% scale — the quadratic scan cost needs some
  // size to dominate): LevelBased beats LogicBlox outright, and the hybrid
  // beats LogicBlox.
  const trace::JobTrace jt = trace::MakeTableTrace(6, 0.06);
  const auto lx = RunPolicy(jt, "logicblox");
  const auto lb = RunPolicy(jt, "levelbased");
  const auto hybrid = RunPolicy(jt, "hybrid");
  EXPECT_LT(lb.TotalSeconds(), 0.65 * lx.TotalSeconds());
  EXPECT_LT(hybrid.sched_wall_seconds, lx.sched_wall_seconds);
  EXPECT_LT(hybrid.TotalSeconds(), lx.TotalSeconds());
}

TEST(PaperShapeTest, TableIII_HybridTracksLogicBloxOnDeepTraces) {
  // Deep trace (#8 at 1/2 scale): LogicBlox is the strong parent; the
  // hybrid must stay close to it (the paper: within a few percent).
  const trace::JobTrace jt = trace::MakeTableTrace(8, 0.5);
  const double lx = RunPolicy(jt, "logicblox").TotalSeconds();
  const double hybrid = RunPolicy(jt, "hybrid").TotalSeconds();
  EXPECT_LT(hybrid, 1.35 * lx);
}

TEST(PaperShapeTest, Theorem2_LevelBasedOpsAreLinear) {
  // O(n + L): double the active set, ops at most ~double (plus slack).
  const trace::JobTrace small = trace::MakeTableTrace(5, 0.5);
  const trace::JobTrace big = trace::MakeTableTrace(5, 1.0);
  const auto small_run = RunPolicy(small, "levelbased");
  const auto big_run = RunPolicy(big, "levelbased");
  const double ops_ratio = static_cast<double>(big_run.ops.Total()) /
                           static_cast<double>(small_run.ops.Total());
  const double active_ratio = static_cast<double>(big_run.activations) /
                              static_cast<double>(small_run.activations);
  EXPECT_LT(ops_ratio, 1.8 * active_ratio + 1.0);
}

TEST(PaperShapeTest, SectionIIC_LogicBloxOpsAreSuperlinear) {
  // The scan-adversarial family: doubling the instance multiplies the
  // LogicBlox query count by ~8 (Θ(F²·C) with F, C doubled).
  const auto small = trace::MakePathologicalScan(25, 100);
  const auto big = trace::MakePathologicalScan(50, 200);
  const auto small_run = RunPolicy(small, "logicblox");
  const auto big_run = RunPolicy(big, "logicblox");
  EXPECT_GT(static_cast<double>(big_run.ops.ancestor_queries),
            5.0 * static_cast<double>(small_run.ops.ancestor_queries));
}

TEST(PaperShapeTest, Theorem9_GapIsLinearInL) {
  const auto ratio_at = [&](std::size_t levels) {
    const trace::JobTrace jt = trace::MakeTightExample(levels);
    auto lb = sched::CreateScheduler("levelbased");
    auto opt = sched::CreateScheduler("oracle");
    sim::SimConfig config;
    config.processors = levels + 2;
    config.model = sim::ExecutionModel::kMoldable;
    return sim::Simulate(jt, *lb, config).makespan /
           sim::Simulate(jt, *opt, config).makespan;
  };
  const double r16 = ratio_at(16);
  const double r32 = ratio_at(32);
  EXPECT_GT(r32, 1.7 * r16);  // doubling L roughly doubles the gap
}

}  // namespace
}  // namespace dsched
