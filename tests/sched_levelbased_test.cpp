// Unit tests for the LevelBased and LBL(k) schedulers.
#include <gtest/gtest.h>

#include <set>

#include "graph/digraph_builder.hpp"

#include "sched/factory.hpp"
#include "sched/level_based.hpp"
#include "sched/lookahead.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"
#include "util/error.hpp"

namespace dsched::sched {
namespace {

using sim::ExecutionModel;
using sim::SimConfig;
using sim::Simulate;

/// Drives a scheduler by hand on a chain 0 -> 1 -> 2 (all active).
TEST(LevelBasedTest, ChainRespectsFrontier) {
  const trace::JobTrace trace = trace::MakeChain(3);
  LevelBasedScheduler sched;
  sched.Prepare({&trace, 1});

  sched.OnActivated(0);
  EXPECT_EQ(sched.PopReady(), 0u);
  sched.OnStarted(0);
  EXPECT_EQ(sched.PopReady(), util::kInvalidTask);  // nothing else active
  sched.OnActivated(1);
  // Task 1 is at level 1 > frontier 0 and task 0 still runs: must wait.
  EXPECT_EQ(sched.PopReady(), util::kInvalidTask);
  sched.OnCompleted(0, true);
  EXPECT_EQ(sched.PopReady(), 1u);
  sched.OnStarted(1);
  sched.OnActivated(2);
  sched.OnCompleted(1, true);
  EXPECT_EQ(sched.PopReady(), 2u);
  sched.OnStarted(2);
  sched.OnCompleted(2, true);
  EXPECT_EQ(sched.PopReady(), util::kInvalidTask);
  EXPECT_EQ(sched.OpCounts().pops, 3u);
}

TEST(LevelBasedTest, SameLevelTasksAllReady) {
  const trace::JobTrace trace = trace::MakeFork(4);  // root -> 4 leaves
  LevelBasedScheduler sched;
  sched.Prepare({&trace, 4});
  sched.OnActivated(0);
  const TaskId root = sched.PopReady();
  ASSERT_EQ(root, 0u);
  sched.OnStarted(0);
  for (TaskId leaf = 1; leaf <= 4; ++leaf) {
    sched.OnActivated(leaf);
  }
  sched.OnCompleted(0, true);
  // All four leaves are at the frontier now; all pop without completions.
  std::set<TaskId> popped;
  for (int i = 0; i < 4; ++i) {
    const TaskId t = sched.PopReady();
    ASSERT_NE(t, util::kInvalidTask);
    popped.insert(t);
    sched.OnStarted(t);
  }
  EXPECT_EQ(popped.size(), 4u);
}

TEST(LevelBasedTest, DoubleActivationRejected) {
  const trace::JobTrace trace = trace::MakeChain(2);
  LevelBasedScheduler sched;
  sched.Prepare({&trace, 1});
  sched.OnActivated(0);
  EXPECT_THROW(sched.OnActivated(0), util::LogicError);
}

TEST(LevelBasedTest, LifecycleViolationsRejected) {
  const trace::JobTrace trace = trace::MakeChain(2);
  LevelBasedScheduler sched;
  sched.Prepare({&trace, 1});
  EXPECT_THROW(sched.OnStarted(0), util::LogicError);     // not activated
  sched.OnActivated(0);
  EXPECT_THROW(sched.OnCompleted(0, true), util::LogicError);  // not started
}

TEST(LevelBasedTest, ExternalStartIsSkipped) {
  // A cooperating scheduler (hybrid) claims the frontier task; LevelBased
  // must not offer it again.
  const trace::JobTrace trace = trace::MakeFork(2);
  LevelBasedScheduler sched;
  sched.Prepare({&trace, 2});
  sched.OnActivated(0);
  sched.OnStarted(0);  // claimed externally without a pop
  EXPECT_EQ(sched.PopReady(), util::kInvalidTask);
  sched.OnActivated(1);
  sched.OnActivated(2);
  sched.OnCompleted(0, true);
  const TaskId a = sched.PopReady();
  sched.OnStarted(a);
  const TaskId b = sched.PopReady();
  sched.OnStarted(b);
  EXPECT_NE(a, b);
  EXPECT_EQ(sched.PopReady(), util::kInvalidTask);
}

TEST(LevelBasedTest, MemoryIsLinearInNodes) {
  // Theorem 2: O(V) precompute space.  Compare footprints at two sizes.
  const trace::JobTrace small = trace::MakeChain(1000);
  const trace::JobTrace big = trace::MakeChain(10000);
  LevelBasedScheduler s1;
  s1.Prepare({&small, 1});
  LevelBasedScheduler s2;
  s2.Prepare({&big, 1});
  const double ratio = static_cast<double>(s2.MemoryBytes()) /
                       static_cast<double>(s1.MemoryBytes());
  EXPECT_LT(ratio, 15.0);  // ~10x nodes → ~10x bytes, no quadratic blowup
}

TEST(LevelBasedTest, SchedulerOpsLinearInActivePlusLevels) {
  // O(n + L) runtime ops: on a chain, pops + level advances ≈ 2n.
  const std::size_t n = 500;
  const trace::JobTrace trace = trace::MakeChain(n);
  LevelBasedScheduler sched;
  const sim::SimResult result =
      Simulate(trace, sched, {.processors = 4, .model = ExecutionModel::kUnitLength});
  EXPECT_EQ(result.tasks_executed, n);
  EXPECT_LE(result.ops.Total(), 4 * n + 10);
}

TEST(LevelOrderTest, PoliciesPickWithinFrontierOnly) {
  // A fork with distinct spans: whatever the order, only frontier tasks may
  // pop, and each policy picks its characteristic task first.
  graph::DigraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  std::vector<trace::TaskInfo> infos(4);
  infos[1] = {trace::NodeKind::kTask, 5.0, 5.0, true};
  infos[2] = {trace::NodeKind::kTask, 9.0, 9.0, true};
  infos[3] = {trace::NodeKind::kTask, 1.0, 1.0, true};
  const trace::JobTrace trace("fork", std::move(b).Build(), infos, {0});

  const auto first_leaf = [&trace](LevelOrder order) {
    LevelBasedScheduler sched(order);
    sched.Prepare({&trace, 1});
    sched.OnActivated(0);
    const TaskId root = sched.PopReady();
    sched.OnStarted(root);
    sched.OnActivated(1);
    sched.OnActivated(2);
    sched.OnActivated(3);
    sched.OnCompleted(root, true);
    return sched.PopReady();
  };
  EXPECT_EQ(first_leaf(LevelOrder::kLifo), 3u);         // newest
  EXPECT_EQ(first_leaf(LevelOrder::kFifo), 1u);         // oldest
  EXPECT_EQ(first_leaf(LevelOrder::kLongestFirst), 2u);  // span 9
}

TEST(LevelOrderTest, LptTrimsSkewedLevels) {
  // One wide level with one long task among many short ones: LIFO pops the
  // newest activation first, which here reaches the long task (id 0) last;
  // LPT fronts it regardless of position.
  std::vector<trace::TaskInfo> infos(10);
  for (std::size_t i = 0; i < 10; ++i) {
    infos[i] = {trace::NodeKind::kTask, 1.0, 1.0, true};
  }
  infos[0] = {trace::NodeKind::kTask, 8.0, 8.0, true};
  std::vector<TaskId> dirty;  // all ten independent, dirty, level 0
  for (TaskId i = 0; i < 10; ++i) {
    dirty.push_back(i);
  }
  graph::DigraphBuilder b2(10);
  const trace::JobTrace skew("skew", std::move(b2).Build(), infos, dirty);

  const SimConfig config{.processors = 3, .model = ExecutionModel::kSequential};
  LevelBasedScheduler lifo(LevelOrder::kLifo);
  LevelBasedScheduler lpt(LevelOrder::kLongestFirst);
  const auto lifo_result = Simulate(skew, lifo, config);
  const auto lpt_result = Simulate(skew, lpt, config);
  // LPT: long task starts at t=0 → makespan 8.  LIFO: long task (id 0) is
  // popped last, starting at t=3 → makespan 11.
  EXPECT_DOUBLE_EQ(lpt_result.makespan, 8.0);
  EXPECT_GT(lifo_result.makespan, 10.0);
}

TEST(LevelOrderTest, FactoryParsesOrders) {
  EXPECT_EQ(CreateScheduler("levelbased:lpt")->Name(), "LevelBased(lpt)");
  EXPECT_EQ(CreateScheduler("levelbased:fifo")->Name(), "LevelBased(fifo)");
  EXPECT_EQ(CreateScheduler("levelbased:lifo")->Name(), "LevelBased");
  EXPECT_THROW(CreateScheduler("levelbased:zigzag"), util::ParseError);
}

TEST(LookaheadTest, JumpsPastBlockedFrontier) {
  // Chain j1..j4 with a long k-task per level (the Figure 2 gadget):
  // LBL(k>=1) overlaps the k tasks, LevelBased cannot.
  const trace::JobTrace trace = trace::MakeTightExample(8);
  LevelBasedScheduler plain;
  LookaheadScheduler ahead(8);
  const SimConfig config{.processors = 8, .model = ExecutionModel::kMoldable};
  const auto plain_result = Simulate(trace, plain, config);
  const auto ahead_result = Simulate(trace, ahead, config);
  // LevelBased: ≈ Σ (L-i+1) = Θ(L²); LBL ≈ optimal Θ(L).
  EXPECT_GT(plain_result.makespan, 1.8 * ahead_result.makespan);
  EXPECT_GT(ahead_result.ops.lookahead_visits, 0u);
}

TEST(LookaheadTest, DepthZeroNotAllowed) {
  EXPECT_THROW(LookaheadScheduler(0), util::LogicError);
}

TEST(LookaheadTest, NameCarriesK) {
  LookaheadScheduler sched(15);
  EXPECT_EQ(sched.Name(), "LBL(k=15)");
  EXPECT_EQ(sched.Lookahead(), 15u);
}

TEST(LookaheadTest, RespectsActiveAncestorsAcrossInactiveNodes) {
  // 0 -> 1 -> 3, 0 -> 2 -> 3 where node 2 is activated, node 1 is NOT
  // (its edge from 0 is quiet because 0's output changes activate both...).
  // Construct explicitly: diamond with all outputs changing; after 0 runs,
  // 1, 2 active; 3 becomes active only after a parent completes.  While 1
  // runs, LBL must not start 3 even though level-2 is within lookahead.
  graph::DigraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  std::vector<trace::TaskInfo> infos(4);
  const trace::JobTrace trace("diamond", std::move(b).Build(), infos, {0});

  LookaheadScheduler sched(5);
  sched.Prepare({&trace, 2});
  sched.OnActivated(0);
  EXPECT_EQ(sched.PopReady(), 0u);
  sched.OnStarted(0);
  sched.OnActivated(1);
  sched.OnActivated(2);
  sched.OnCompleted(0, true);
  const TaskId first = sched.PopReady();
  ASSERT_NE(first, util::kInvalidTask);
  sched.OnStarted(first);
  const TaskId second = sched.PopReady();
  ASSERT_NE(second, util::kInvalidTask);
  sched.OnStarted(second);
  // 1 and 2 both run; 3 activates via whichever completes first.
  sched.OnActivated(3);
  sched.OnCompleted(first, true);
  // Second parent still running: 3 must NOT be offered (active ancestor).
  EXPECT_EQ(sched.PopReady(), util::kInvalidTask);
  sched.OnCompleted(second, true);
  EXPECT_EQ(sched.PopReady(), 3u);
}

TEST(LookaheadTest, AuditCleanOnRandomTraces) {
  util::Rng rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    const trace::JobTrace trace =
        trace::MakeRandomDag(60, 0.06, 0.15, 0.8, rng);
    LookaheadScheduler sched(3);
    const sim::SimResult result = Simulate(
        trace, sched,
        {.processors = 3, .model = ExecutionModel::kSequential,
         .record_schedule = true});
    const sim::AuditResult audit = sim::AuditSchedule(trace, result);
    EXPECT_TRUE(audit.valid) << (audit.violations.empty()
                                     ? ""
                                     : audit.violations.front());
  }
}

}  // namespace
}  // namespace dsched::sched
