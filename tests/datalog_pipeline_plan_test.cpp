// Pipeline-plan tests: the per-component levels and fences of DESIGN.md
// §12, checked two ways — handcrafted shapes with fences derived by hand,
// and a randomized property sweep where BuildPipelinePlan must agree with
// an independent brute-force evaluation of the spec:
//
//   level(c)       = 1 + max level over components c's rule bodies read
//                    (0 with no external inputs), via fixpoint iteration
//                    instead of the production topological pass;
//   last_reader(m) = deepest component level whose rules read m, floored
//                    at the owner's level;
//   fence(c)       = 1 + max(level(c), max over members m of
//                    last_reader(m)).
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/parser.hpp"
#include "datalog/pipeline_plan.hpp"
#include "datalog/stratify.hpp"
#include "datalog/validate.hpp"
#include "util/rng.hpp"

namespace dsched::datalog {
namespace {

struct BrutePlan {
  std::vector<std::uint32_t> level;
  std::vector<std::uint32_t> last_reader;
  std::vector<std::uint32_t> fence;
  std::uint32_t num_levels = 0;
};

/// The spec, evaluated the slow way: fixpoint over raw rules, no reliance
/// on component_order being topological or component_rules being grouped.
BrutePlan BruteForce(const Program& program, const Stratification& strat) {
  const std::size_t num_comps = strat.NumComponents();
  const std::size_t num_preds = program.NumPredicates();
  BrutePlan brute;
  brute.level.assign(num_comps, 0);

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : program.rules) {
      const std::uint32_t c = strat.component_of[rule.head.predicate];
      for (const BodyElement& element : rule.body) {
        const auto* literal = std::get_if<Literal>(&element);
        if (literal == nullptr) {
          continue;
        }
        const std::uint32_t dep = strat.component_of[literal->atom.predicate];
        if (dep != c && brute.level[c] < brute.level[dep] + 1) {
          brute.level[c] = brute.level[dep] + 1;
          changed = true;
        }
      }
    }
  }
  for (std::size_t c = 0; c < num_comps; ++c) {
    brute.num_levels = std::max(brute.num_levels, brute.level[c] + 1);
  }

  brute.last_reader.assign(num_preds, 0);
  for (std::size_t p = 0; p < num_preds; ++p) {
    brute.last_reader[p] = brute.level[strat.component_of[p]];
  }
  for (const Rule& rule : program.rules) {
    const std::uint32_t reader = strat.component_of[rule.head.predicate];
    for (const BodyElement& element : rule.body) {
      if (const auto* literal = std::get_if<Literal>(&element)) {
        std::uint32_t& deepest = brute.last_reader[literal->atom.predicate];
        deepest = std::max(deepest, brute.level[reader]);
      }
    }
  }

  brute.fence.assign(num_comps, 0);
  for (std::uint32_t c = 0; c < num_comps; ++c) {
    std::uint32_t deepest = brute.level[c];
    for (const std::uint32_t m : strat.component_members[c]) {
      deepest = std::max(deepest, brute.last_reader[m]);
    }
    brute.fence[c] = deepest + 1;
  }
  return brute;
}

void ExpectPlansEqual(const Program& program, const Stratification& strat,
                      const std::string& context) {
  const PipelinePlan plan = BuildPipelinePlan(program, strat);
  const BrutePlan brute = BruteForce(program, strat);
  EXPECT_EQ(plan.component_level, brute.level) << context;
  EXPECT_EQ(plan.predicate_last_reader, brute.last_reader) << context;
  EXPECT_EQ(plan.component_fence, brute.fence) << context;
  EXPECT_EQ(plan.num_levels, brute.num_levels) << context;
}

PipelinePlan PlanOf(const std::string& text, Program* program_out = nullptr,
                    Stratification* strat_out = nullptr) {
  Program program = ParseProgram(text);
  ValidateProgram(program);
  Stratification strat = Stratify(program);
  PipelinePlan plan = BuildPipelinePlan(program, strat);
  if (program_out != nullptr) {
    *program_out = std::move(program);
  }
  if (strat_out != nullptr) {
    *strat_out = std::move(strat);
  }
  return plan;
}

TEST(PipelinePlan, ChainFencesByHand) {
  Program program;
  Stratification strat;
  const PipelinePlan plan =
      PlanOf("p1(X) :- p0(X).  p2(X) :- p1(X).", &program, &strat);
  const auto comp = [&](const char* name) {
    return strat.component_of[program.PredicateId(name)];
  };
  EXPECT_EQ(plan.num_levels, 3u);
  EXPECT_EQ(plan.component_level[comp("p0")], 0u);
  EXPECT_EQ(plan.component_level[comp("p1")], 1u);
  EXPECT_EQ(plan.component_level[comp("p2")], 2u);
  // p0 is read by the level-1 component, so epoch e+1 may touch it only
  // after epoch e finalized levels 0 and 1.
  EXPECT_EQ(plan.predicate_last_reader[program.PredicateId("p0")], 1u);
  EXPECT_EQ(plan.component_fence[comp("p0")], 2u);
  // Nobody reads p2; it fences on its own level.
  EXPECT_EQ(plan.predicate_last_reader[program.PredicateId("p2")], 2u);
  EXPECT_EQ(plan.component_fence[comp("p2")], 3u);
}

TEST(PipelinePlan, RecursiveComponentSharesOneLevel) {
  Program program;
  Stratification strat;
  const PipelinePlan plan = PlanOf(
      "tc(X, Y) :- e(X, Y).  tc(X, Z) :- tc(X, Y), e(Y, Z).", &program,
      &strat);
  const std::uint32_t tc = strat.component_of[program.PredicateId("tc")];
  EXPECT_EQ(plan.component_level[tc], 1u);
  // The recursive self-read stays inside the component and must not
  // inflate its level; the fence is level+1 because tc's only reader is
  // itself.
  EXPECT_EQ(plan.component_fence[tc], 2u);
}

TEST(PipelinePlan, HandShapesMatchBruteForce) {
  const char* shapes[] = {
      // Diamond with a shared source.
      "l(X) :- s(X).  r(X) :- s(X).  j(X) :- l(X), r(X).",
      // Negation is a dependency like any other.
      "alone(X) :- node(X), !linked(X).  linked(X) :- edge(X, Y).",
      // A deep reader pins a shallow predicate's fence.
      "a(X) :- base(X).  b(X) :- a(X).  c(X) :- b(X), base(X).",
  };
  for (const char* text : shapes) {
    Program program;
    Stratification strat;
    (void)PlanOf(text, &program, &strat);
    ExpectPlansEqual(program, strat, text);
  }
}

/// Random stratified programs: predicates p0..p{n-1}; rules only read
/// lower-numbered predicates (acyclic by construction) except for
/// deliberate two-predicate positive recursion pairs; negation targets
/// predicates at least two indices below the head so it can never land
/// inside a recursion pair's component.
std::string RandomProgram(util::Rng& rng) {
  const std::size_t preds = 4 + rng.NextBelow(9);        // 4..12
  const std::size_t bases = 1 + rng.NextBelow(3);        // 1..3 sources
  std::string text;
  std::size_t last_pair_end = 0;  // keep recursion pairs disjoint: two
                                  // adjacent pairs would merge into one
                                  // component and could trap a negation
                                  // inside it
  for (std::size_t i = bases; i < preds; ++i) {
    const std::size_t rules = 1 + rng.NextBelow(2);
    for (std::size_t r = 0; r < rules; ++r) {
      text += "p" + std::to_string(i) + "(X) :- ";
      const std::size_t body = 1 + rng.NextBelow(2);
      for (std::size_t b = 0; b < body; ++b) {
        const std::size_t dep = rng.NextBelow(i);
        if (b > 0) {
          text += ", ";
        }
        if (dep + 2 <= i && rng.NextBool(0.2)) {
          text += "!p" + std::to_string(dep) + "(X)";
          // Negation-only bodies are not range-restricted; anchor them.
          text += ", p" + std::to_string(rng.NextBelow(dep + 1)) + "(X)";
        } else {
          text += "p" + std::to_string(dep) + "(X)";
        }
      }
      text += ".\n";
    }
    if (i >= bases + 1 && i - 1 > last_pair_end && rng.NextBool(0.25)) {
      last_pair_end = i;
      // Positive mutual recursion with the previous predicate: a
      // two-member component.
      text += "p" + std::to_string(i) + "(X) :- p" + std::to_string(i - 1) +
              "(X).\n";
      text += "p" + std::to_string(i - 1) + "(X) :- p" + std::to_string(i) +
              "(X).\n";
    }
  }
  return text;
}

TEST(PipelinePlanProperty, MatchesBruteForceOnRandomPrograms) {
  util::Rng rng(0xfe4ce5u);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string text = RandomProgram(rng);
    Program program = ParseProgram(text);
    ValidateProgram(program);
    const Stratification strat = Stratify(program);
    ExpectPlansEqual(program, strat,
                     "trial " + std::to_string(trial) + ":\n" + text);
    if (HasFailure()) {
      break;
    }
  }
}

}  // namespace
}  // namespace dsched::datalog
