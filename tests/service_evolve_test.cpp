// Tests for live rule-set evolution through Session (DESIGN.md §15):
// EvolveAddRules/EvolveRemoveRule ride the session's epoch FIFO as
// exclusive epochs, compose with pipeline_depth K > 1, fail their own
// future (and nothing else) on a rejected change, and leave the store
// byte-equal to a serial replay of the same batch/evolve sequence.  The
// whole file runs under TSan in CI (service_ prefix): the evolve-vs-query
// and evolve-vs-submit interleavings are the snapshot-pinning data-race
// probe for the wire frontend's double-fetch fix.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "datalog/database.hpp"
#include "datalog/incremental.hpp"
#include "datalog/maintenance.hpp"
#include "service/engine_host.hpp"
#include "service/session.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "wide_program_fixture.hpp"

namespace dsched::service {
namespace {

using dsched::testing::ExpectStoresEqual;
using dsched::testing::RandomUpdate;
using dsched::testing::Sorted;
using dsched::testing::kWideProgram;

void Seed(Session& session, util::Rng& rng, int nodes, double edge_prob) {
  for (int i = 0; i < nodes; ++i) {
    session.Insert("n", {datalog::Value::Int(i)});
    if (rng.NextBool(0.3)) {
      session.Insert("mark", {datalog::Value::Int(i)});
    }
  }
  for (int i = 0; i < nodes; ++i) {
    for (int j = 0; j < nodes; ++j) {
      if (i != j && rng.NextBool(edge_prob)) {
        session.Insert("e", {datalog::Value::Int(i), datalog::Value::Int(j)});
      }
    }
  }
  session.Materialize();
}

void SeedDb(datalog::Database& db, util::Rng& rng, int nodes,
            double edge_prob) {
  for (int i = 0; i < nodes; ++i) {
    db.Insert("n", {datalog::Value::Int(i)});
    if (rng.NextBool(0.3)) {
      db.Insert("mark", {datalog::Value::Int(i)});
    }
  }
  for (int i = 0; i < nodes; ++i) {
    for (int j = 0; j < nodes; ++j) {
      if (i != j && rng.NextBool(edge_prob)) {
        db.Insert("e", {datalog::Value::Int(i), datalog::Value::Int(j)});
      }
    }
  }
  db.Materialize();
}

TEST(ServiceEvolveTest, EvolveRidesTheEpochFifoAndReportsStats) {
  EngineHost host({.workers = 2});
  auto session = host.OpenSession(kWideProgram, {.name = "ev"});
  util::Rng rng(61);
  Seed(*session, rng, 8, 0.2);
  EXPECT_EQ(session->ProgramVersion(), 1u);

  auto update = session->MakeUpdate();
  update.Insert("e", {datalog::Value::Int(100), datalog::Value::Int(101)});
  auto f1 = session->Submit(update);
  auto f2 = session->EvolveAddRules("far(X) :- tc(X, _), cold(X).");
  const UpdateOutcome batch = f1.get();
  EXPECT_FALSE(batch.rules_changed);
  const UpdateOutcome evolved = f2.get();
  EXPECT_TRUE(evolved.rules_changed);
  EXPECT_EQ(evolved.epoch, 2u);  // FIFO with the submit before it
  EXPECT_EQ(evolved.program_version, 2u);
  EXPECT_GT(evolved.evolve.cone_predicates, 0u);
  EXPECT_GT(evolved.evolve.reused_components, 0u);
  EXPECT_EQ(session->ProgramVersion(), 2u);
  // far(X) :- tc(X, _), cold(X): exactly the cold nodes with closure rows.
  std::vector<datalog::Tuple> expect_far;
  for (const datalog::Tuple& row : session->Query("cold")) {
    bool has_tc = false;
    for (const datalog::Tuple& tc : session->Query("tc")) {
      has_tc = has_tc || tc[0] == row[0];
    }
    if (has_tc) {
      expect_far.push_back(row);
    }
  }
  EXPECT_EQ(Sorted(session->Query("far")), Sorted(expect_far));

  const UpdateOutcome removed =
      session->EvolveRemoveRule("far(X) :- tc(X, _), cold(X).").get();
  EXPECT_TRUE(removed.rules_changed);
  EXPECT_EQ(removed.program_version, 3u);
  EXPECT_TRUE(session->Query("far").empty());
  session->Close();

  const obs::MetricsRegistry& metrics = host.Metrics();
  EXPECT_EQ(metrics.Value("session.ev.evolve.count"), 2u);
  EXPECT_EQ(metrics.Value("session.ev.evolve.version"), 3u);
  EXPECT_GE(metrics.Value("session.ev.evolve.cone_predicates"), 2u);
  EXPECT_GE(metrics.Value("session.ev.evolve.reused_components"), 2u);
}

TEST(ServiceEvolveTest, RejectedEvolveFailsItsFutureOnly) {
  EngineHost host({.workers = 2});
  auto session = host.OpenSession(kWideProgram, {.name = "rej"});
  util::Rng rng(62);
  Seed(*session, rng, 8, 0.2);

  auto bad = session->EvolveAddRules("p(Y) :- e(X, _).");  // unsafe head
  EXPECT_THROW((void)bad.get(), util::InvalidArgument);
  // Unstratifiable through the existing negation tower.
  auto cyclic = session->EvolveAddRules("hot(X) :- cold(X).");
  EXPECT_THROW((void)cyclic.get(), util::InvalidArgument);
  // Removing a rule the program never had.
  auto missing = session->EvolveRemoveRule("tc(X, Y) :- rev(X, Y).");
  EXPECT_THROW((void)missing.get(), util::InvalidArgument);

  // Version never moved, and the session is fully live.
  EXPECT_EQ(session->ProgramVersion(), 1u);
  auto update = session->MakeUpdate();
  update.Insert("e", {datalog::Value::Int(50), datalog::Value::Int(51)});
  EXPECT_EQ(session->Submit(update).get().epoch, 4u);
  EXPECT_TRUE(
      session->Contains("tc", {datalog::Value::Int(50),
                               datalog::Value::Int(51)}));
  session->Close();
}

TEST(ServiceEvolveTest, PipelinedEvolvesEqualSerialReplayAllStrategies) {
  // The acceptance shape: K > 1 with evolves interleaved among pipelined
  // submits, swept across every strategy.  Final store (and the evolved
  // program's new predicates) must equal a serial replay that applies the
  // same batches and the same rule changes at the same points.
  constexpr int kNodes = 10;
  const std::vector<std::string> kAdds = {
      "far(X) :- tc(X, _), cold(X).",
      "bridge(X, Y) :- hotpair(X, Y), deadend(Y).",
      "far(X) :- deadend(X).",
  };
  for (const char* strategy : {"dred", "counting", "bf"}) {
    SCOPED_TRACE(strategy);
    EngineHost host({.workers = 4});
    auto session = host.OpenSession(kWideProgram,
                                    {.name = std::string("pe-") + strategy,
                                     .maintenance_strategy = strategy,
                                     .pipeline_depth = 4});
    util::Rng seed_rng(7100);
    Seed(*session, seed_rng, kNodes, 0.15);
    datalog::Database replay(kWideProgram);
    util::Rng replay_rng(7100);
    SeedDb(replay, replay_rng, kNodes, 0.15);
    replay.SetDefaultStrategy(datalog::ParseMaintenanceStrategy(strategy));

    util::Rng update_rng(7200);
    std::vector<std::future<UpdateOutcome>> futures;
    std::size_t next_add = 0;
    // Pin ONE snapshot for batch building: evolves run concurrently and a
    // raw GetProgram() ref could be freed mid-read.  Predicate ids are
    // stable across versions, so batches built against the pin stay valid.
    const auto snap = session->Db().Snapshot();
    for (int b = 0; b < 30; ++b) {
      const datalog::UpdateRequest batch =
          RandomUpdate(snap->program, update_rng, kNodes);
      futures.push_back(session->Submit(batch));
      (void)replay.ApplyRequest(batch);
      if (b % 10 == 4 && next_add < kAdds.size()) {
        futures.push_back(session->EvolveAddRules(kAdds[next_add]));
        (void)replay.EvolveAddRules(kAdds[next_add]);
        ++next_add;
      }
      if (b == 24) {
        futures.push_back(session->EvolveRemoveRule(kAdds[0]));
        (void)replay.EvolveRemoveRule(kAdds[0]);
      }
    }
    std::uint64_t expected_epoch = 1;
    for (auto& future : futures) {
      EXPECT_EQ(future.get().epoch, expected_epoch++);
    }
    session->Close();
    EXPECT_EQ(session->ProgramVersion(), 5u);  // 3 adds + 1 remove
    ExpectStoresEqual(session->Db().GetProgram(), replay.Store(),
                      session->Store(), strategy);
  }
}

TEST(ServiceEvolveTest, EvolveRacesSubmitAndQueryCleanly) {
  // The TSan probe: reader threads hammer Query/Contains and a writer
  // pipelines batches while the main thread evolves the rule set several
  // times.  Readers pin snapshots; nothing tears, and the final store
  // equals a serial replay.
  constexpr int kNodes = 10;
  EngineHost host({.workers = 4});
  auto session = host.OpenSession(kWideProgram,
                                  {.name = "race", .pipeline_depth = 3});
  util::Rng seed_rng(9300);
  Seed(*session, seed_rng, kNodes, 0.15);
  datalog::Database replay(kWideProgram);
  util::Rng replay_rng(9300);
  SeedDb(replay, replay_rng, kNodes, 0.15);

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&session, &done] {
      while (!done.load(std::memory_order_acquire)) {
        for (const char* pred : {"tc", "summary", "cold"}) {
          const auto rows = session->Query(pred);
          (void)rows;
        }
        (void)session->Contains("hot", {datalog::Value::Int(1)});
        (void)session->ProgramVersion();
      }
    });
  }

  const std::vector<std::string> kAdds = {
      "far(X) :- tc(X, _), cold(X).",
      "bridge(X, Y) :- hotpair(X, Y), deadend(Y).",
  };
  util::Rng update_rng(9400);
  std::vector<std::future<UpdateOutcome>> futures;
  const auto snap = session->Db().Snapshot();  // evolves race GetProgram()
  for (int b = 0; b < 24; ++b) {
    const datalog::UpdateRequest batch =
        RandomUpdate(snap->program, update_rng, kNodes);
    futures.push_back(session->Submit(batch));
    (void)replay.ApplyRequest(batch);
    if (b == 7 || b == 15) {
      const std::string& rule = kAdds[b == 7 ? 0 : 1];
      futures.push_back(session->EvolveAddRules(rule));
      (void)replay.EvolveAddRules(rule);
    }
  }
  for (auto& future : futures) {
    (void)future.get();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) {
    reader.join();
  }
  session->Close();
  ExpectStoresEqual(session->Db().GetProgram(), replay.Store(),
                    session->Store(), "evolve-race");
  EXPECT_EQ(session->ProgramVersion(), 3u);
}

TEST(ServiceEvolveTest, CloseWithEvolveInFlightDrains) {
  EngineHost host({.workers = 2});
  auto session = host.OpenSession(kWideProgram,
                                  {.name = "cd", .pipeline_depth = 3});
  util::Rng rng(77);
  Seed(*session, rng, 8, 0.2);
  util::Rng update_rng(78);
  std::vector<std::future<UpdateOutcome>> futures;
  const auto snap = session->Db().Snapshot();  // evolve races GetProgram()
  for (int b = 0; b < 6; ++b) {
    futures.push_back(
        session->Submit(RandomUpdate(snap->program, update_rng, 8)));
  }
  futures.push_back(session->EvolveAddRules("far(X) :- deadend(X)."));
  for (int b = 0; b < 6; ++b) {
    futures.push_back(
        session->Submit(RandomUpdate(snap->program, update_rng, 8)));
  }
  session->Close();  // evolve + trailing batches still in the queue
  std::uint64_t expected_epoch = 1;
  for (auto& future : futures) {
    UpdateOutcome outcome;
    EXPECT_NO_THROW(outcome = future.get());
    EXPECT_EQ(outcome.epoch, expected_epoch++);
  }
  EXPECT_EQ(session->ProgramVersion(), 2u);
  EXPECT_EQ(Sorted(session->Query("far")),
            Sorted(session->Query("deadend")));
}

}  // namespace
}  // namespace dsched::service
