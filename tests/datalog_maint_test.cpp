// Maintenance-strategy tests (datalog/maintenance.hpp): DRed, Counting,
// and Backward/Forward must produce bit-identical stores on any update
// sequence — serial or parallel, any shard count, any scheduler — while
// the counting plane's count column stays exact under the lock-free
// publication protocol.  The concurrency cases run under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "datalog/database.hpp"
#include "datalog/delta_buffer.hpp"
#include "datalog/maintenance.hpp"
#include "datalog/parallel_update.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "wide_program_fixture.hpp"

namespace dsched::datalog {
namespace {

using dsched::testing::ExpectStoresEqual;
using dsched::testing::RandomUpdate;
using dsched::testing::Sorted;
using dsched::testing::WideFixture;

TEST(MaintStrategyTest, ParseRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(ParseMaintenanceStrategy("dred"), MaintenanceStrategy::kDRed);
  EXPECT_EQ(ParseMaintenanceStrategy("counting"),
            MaintenanceStrategy::kCounting);
  EXPECT_EQ(ParseMaintenanceStrategy("bf"),
            MaintenanceStrategy::kBackwardForward);
  for (const std::string& name : KnownMaintenanceStrategies()) {
    EXPECT_EQ(MaintenanceStrategyName(ParseMaintenanceStrategy(name)), name);
  }
  try {
    (void)ParseMaintenanceStrategy("drde");
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    const std::string what = e.what();
    // The rejection must name every valid value.
    EXPECT_NE(what.find("drde"), std::string::npos) << what;
    for (const std::string& name : KnownMaintenanceStrategies()) {
      EXPECT_NE(what.find(name), std::string::npos) << what;
    }
  }
}

// ---------------------------------------------------------------------------
// Equivalence: every strategy lands on the same store as DRed, batch after
// batch, on the wide program (recursion, negation, fan-out — counting
// falls back to DRed on the recursive components and runs live on the
// rest; B/F runs everywhere but aggregates).

TEST(MaintEquivalenceTest, SerialRandomizedInterleavedInsertDelete) {
  for (const std::uint64_t seed : {11u, 29u, 47u}) {
    WideFixture dred;
    WideFixture counting;
    WideFixture bf;
    {
      util::Rng rng(seed);
      dred.Base(rng, 14, 0.12);
    }
    {
      util::Rng rng(seed);
      counting.Base(rng, 14, 0.12);
    }
    {
      util::Rng rng(seed);
      bf.Base(rng, 14, 0.12);
    }
    MaintenanceState counting_state;
    MaintenanceState bf_state;
    util::Rng update_rng(seed * 977 + 1);
    for (int batch = 0; batch < 24; ++batch) {
      const UpdateRequest request =
          RandomUpdate(dred.program, update_rng, 14);
      const GroupedBaseChanges base(dred.program, request);
      (void)PropagateUpdateWithStrategy(dred.program, dred.strat, dred.store,
                                        base, MaintenanceStrategy::kDRed);
      (void)PropagateUpdateWithStrategy(
          counting.program, counting.strat, counting.store, base,
          MaintenanceStrategy::kCounting, &counting_state);
      (void)PropagateUpdateWithStrategy(bf.program, bf.strat, bf.store, base,
                                        MaintenanceStrategy::kBackwardForward,
                                        &bf_state);
      ExpectStoresEqual(dred.program, dred.store, counting.store,
                        "counting vs dred");
      ExpectStoresEqual(dred.program, dred.store, bf.store, "bf vs dred");
      if (::testing::Test::HasFailure()) {
        FAIL() << "diverged at seed " << seed << " batch " << batch;
      }
    }
  }
}

TEST(MaintEquivalenceTest, ParallelAcrossShardCountsAndSchedulers) {
  const std::uint64_t seed = 321;
  // Serial DRed is the reference.
  WideFixture reference;
  {
    util::Rng rng(seed);
    reference.Base(rng, 12, 0.15);
  }
  std::vector<UpdateRequest> batches;
  {
    util::Rng rng(seed + 7);
    for (int i = 0; i < 10; ++i) {
      batches.push_back(RandomUpdate(reference.program, rng, 12));
    }
  }
  for (const UpdateRequest& request : batches) {
    const GroupedBaseChanges base(reference.program, request);
    (void)PropagateUpdateWithStrategy(reference.program, reference.strat,
                                      reference.store, base,
                                      MaintenanceStrategy::kDRed);
  }

  for (const MaintenanceStrategy strategy :
       {MaintenanceStrategy::kCounting, MaintenanceStrategy::kBackwardForward}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      for (const char* scheduler : {"hybrid", "levelbased"}) {
        WideFixture fixture;
        fixture.store = RelationStore(fixture.program, shards);
        {
          util::Rng rng(seed);
          fixture.Base(rng, 12, 0.15);
        }
        MaintenanceState state;
        for (const UpdateRequest& request : batches) {
          ParallelUpdateOptions options;
          options.scheduler_spec = scheduler;
          options.workers = 4;
          options.strategy = strategy;
          options.maint_state = &state;
          (void)ApplyParallel(fixture.program, fixture.strat, fixture.store,
                              request, options);
        }
        ExpectStoresEqual(
            reference.program, reference.store, fixture.store,
            (std::string(MaintenanceStrategyName(strategy)) + "/" + scheduler +
             "/" + std::to_string(shards) + " shards")
                .c_str());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Strategy-specific behaviour.

constexpr const char* kRedundantProgram = R"(
  mid(X) :- base1(X).
  mid(X) :- base2(X).
  out(X) :- mid(X).
)";

TEST(MaintCountingTest, RedundantSupportDeletionAvoidsOverdeletion) {
  Database dred(kRedundantProgram);
  Database counting(kRedundantProgram);
  counting.SetDefaultStrategy(MaintenanceStrategy::kCounting);
  for (Database* db : {&dred, &counting}) {
    for (std::int64_t i = 0; i < 32; ++i) {
      db->Insert("base1", {Value::Int(i)});
      db->Insert("base2", {Value::Int(i)});
    }
    db->Materialize();
  }
  // Deleting base1 leaves every mid/out tuple supported by base2: DRed
  // overdeletes and rederives the whole chain; counting decrements.
  auto make_update = [](Database& db) {
    Database::Update update = db.MakeUpdate();
    for (std::int64_t i = 0; i < 32; ++i) {
      update.Delete("base1", {Value::Int(i)});
    }
    return update;
  };
  const UpdateResult dred_result = dred.Apply(make_update(dred));
  const UpdateResult counting_result = counting.Apply(make_update(counting));

  EXPECT_EQ(Sorted(dred.Query("mid")), Sorted(counting.Query("mid")));
  EXPECT_EQ(Sorted(dred.Query("out")), Sorted(counting.Query("out")));
  EXPECT_EQ(counting.Query("mid").size(), 32u);

  std::size_t avoided = 0;
  std::size_t recounts = 0;
  for (const ComponentUpdateStats& c : counting_result.components) {
    avoided += c.maint_avoided;
    recounts += c.maint_recounts;
  }
  EXPECT_EQ(avoided, 32u);  // every mid tuple kept its other support
  EXPECT_GT(recounts, 0u);
  // DRed erased+rederived mid AND cascaded into out; counting stopped at
  // the decrement (no net delta, downstream never activated).
  EXPECT_GT(dred_result.total_maint_ops, 2 * counting_result.total_maint_ops);
}

constexpr const char* kCycleProgram = R"(
  tc(X, Y) :- e(X, Y).
  tc(X, Z) :- tc(X, Y), e(Y, Z).
)";

TEST(MaintBackwardForwardTest, CyclicDerivationsResolvedByProbes) {
  // A cycle plus a chord: deleting the chord must not kill tuples whose
  // remaining derivations are cyclic-but-grounded, and B/F must prove the
  // genuinely dead ones dead through the in-stack protocol.
  Database dred(kCycleProgram);
  Database bf(kCycleProgram);
  bf.SetDefaultStrategy(MaintenanceStrategy::kBackwardForward);
  for (Database* db : {&dred, &bf}) {
    for (const auto& [a, b] : std::vector<std::pair<int, int>>{
             {0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}, {1, 4}}) {
      db->Insert("e", {Value::Int(a), Value::Int(b)});
    }
    db->Materialize();
  }
  auto make_update = [](Database& db) {
    Database::Update update = db.MakeUpdate();
    update.Delete("e", {Value::Int(2), Value::Int(0)});  // break the cycle
    update.Delete("e", {Value::Int(0), Value::Int(3)});
    return update;
  };
  const UpdateResult dred_result = dred.Apply(make_update(dred));
  const UpdateResult bf_result = bf.Apply(make_update(bf));
  EXPECT_EQ(Sorted(dred.Query("tc")), Sorted(bf.Query("tc")));
  EXPECT_EQ(dred_result.total_deleted, bf_result.total_deleted);
  std::size_t probes = 0;
  for (const ComponentUpdateStats& c : bf_result.components) {
    probes += c.maint_backward_probes;
  }
  EXPECT_GT(probes, 0u);
}

TEST(MaintCountingTest, StaleCountsReinitializedAfterForeignUpdate) {
  // A DRed update in between invalidates the counting state (version
  // fingerprint); the next counting apply must re-initialize and stay
  // exact rather than trusting stale counts.
  Database reference(kRedundantProgram);
  Database mixed(kRedundantProgram);
  mixed.SetDefaultStrategy(MaintenanceStrategy::kCounting);
  for (Database* db : {&reference, &mixed}) {
    for (std::int64_t i = 0; i < 8; ++i) {
      db->Insert("base1", {Value::Int(i)});
      if (i % 2 == 0) {
        db->Insert("base2", {Value::Int(i)});
      }
    }
    db->Materialize();
  }
  auto batch1 = [](Database& db) {
    return db.MakeUpdate().Delete("base2", {Value::Int(0)});
  };
  auto batch2 = [](Database& db) {
    return db.MakeUpdate()
        .Insert("base2", {Value::Int(5)})
        .Delete("base1", {Value::Int(2)});
  };
  auto batch3 = [](Database& db) {
    return db.MakeUpdate().Delete("base1", {Value::Int(4)});
  };
  (void)reference.Apply(batch1(reference));
  (void)reference.Apply(batch2(reference));
  (void)reference.Apply(batch3(reference));

  (void)mixed.Apply(batch1(mixed));  // counting
  (void)mixed.ApplyRequest(batch2(mixed).Request(),
                           MaintenanceStrategy::kDRed);  // foreign update
  (void)mixed.Apply(batch3(mixed));  // counting again, counts stale
  for (const char* pred : {"base1", "base2", "mid", "out"}) {
    EXPECT_EQ(Sorted(reference.Query(pred)), Sorted(mixed.Query(pred)))
        << pred;
  }
}

// ---------------------------------------------------------------------------
// The counting plane itself: per-shard count column + kOpAdjust
// publication.  Count must hit zero exactly when the tuple dies, even
// with many concurrent publishers adjusting the same rows.

TEST(MaintCountingPlaneTest, CountCrossesZeroExactlyAtTupleDeath) {
  Relation r(1, 4);
  const Tuple t{Value::Int(7)};
  EXPECT_EQ(r.CountOf(t), 0u);
  EXPECT_EQ(r.AdjustCount(t, 3), Relation::kBorn);
  EXPECT_EQ(r.CountOf(t), 3u);
  EXPECT_EQ(r.AdjustCount(t, -1), Relation::kChanged);
  EXPECT_EQ(r.CountOf(t), 2u);
  EXPECT_TRUE(r.Contains(t));
  EXPECT_EQ(r.AdjustCount(t, -2), Relation::kDied);
  EXPECT_FALSE(r.Contains(t));
  EXPECT_EQ(r.CountOf(t), 0u);
  // Adjusting an absent tuple downward is a no-op, not a birth.
  EXPECT_EQ(r.AdjustCount(t, -1), Relation::kNoChange);
  EXPECT_FALSE(r.Contains(t));
  // Plain Insert gives a fresh row count 1.
  EXPECT_TRUE(r.Insert(t));
  EXPECT_EQ(r.CountOf(t), 1u);
}

TEST(MaintCountingPlaneTest, ConcurrentAdjustPublishersKillEachRowOnce) {
  constexpr std::size_t kWriters = 4;
  constexpr std::int64_t kRows = 512;

  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    Relation shared(1, shards);
    for (std::int64_t i = 0; i < kRows; ++i) {
      const Tuple t{Value::Int(i)};
      shared.Insert(t);
      // Even rows get exactly kWriters support, odd rows twice that: one
      // decrement per writer kills every even row and no odd row.
      shared.AdjustCount(
          t, static_cast<std::int32_t>((i % 2 == 0 ? 1 : 2) * kWriters) - 1);
    }
    std::atomic<std::size_t> deaths{0};
    std::atomic<std::size_t> births{0};
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (std::size_t w = 0; w < kWriters; ++w) {
      writers.emplace_back([&shared, &deaths, &births, w] {
        ShardedWriteBuffer buffer(shared);
        for (std::int64_t i = 0; i < kRows; ++i) {
          buffer.StageAdjust(Tuple{Value::Int(i)}, -1);
        }
        // Each writer also births one private row via the same protocol.
        buffer.StageAdjust(Tuple{Value::Int(kRows + static_cast<std::int64_t>(w))},
                           2);
        std::size_t my_deaths = 0;
        std::size_t my_births = 0;
        buffer.FlushCodes([&my_deaths, &my_births](std::uint8_t, RowView,
                                                   std::uint8_t code) {
          my_deaths += code == Relation::kDied ? 1 : 0;
          my_births += code == Relation::kBorn ? 1 : 0;
        });
        deaths.fetch_add(my_deaths, std::memory_order_relaxed);
        births.fetch_add(my_births, std::memory_order_relaxed);
      });
    }
    for (std::thread& writer : writers) {
      writer.join();
    }
    shared.Quiesce();
    EXPECT_FALSE(shared.HasPending());
    // Every even row died exactly once, whoever's decrement landed last.
    EXPECT_EQ(deaths.load(), static_cast<std::size_t>(kRows) / 2);
    EXPECT_EQ(births.load(), kWriters);
    for (std::int64_t i = 0; i < kRows; ++i) {
      const Tuple t{Value::Int(i)};
      if (i % 2 == 0) {
        EXPECT_FALSE(shared.Contains(t)) << i;
        EXPECT_EQ(shared.CountOf(t), 0u) << i;
      } else {
        EXPECT_TRUE(shared.Contains(t)) << i;
        EXPECT_EQ(shared.CountOf(t), kWriters) << i;
      }
    }
    for (std::size_t w = 0; w < kWriters; ++w) {
      EXPECT_EQ(
          shared.CountOf(Tuple{Value::Int(kRows + static_cast<std::int64_t>(w))}),
          2u);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule-set evolution vs rebuild: a random interleaving of rule additions,
// rule removals, and base updates must leave every strategy's store equal
// to a from-scratch Database over the final rule set + base facts — the
// evolution acceptance bar, swept per strategy so the scoped counting
// invalidation (stale cone, sealed remainder) is exercised between seals.

TEST(MaintEvolveTest, RandomizedEvolveMatchesRebuildAcrossStrategies) {
  const char* kBaseProgram = R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    side(X) :- tag(X).
  )";
  const std::vector<std::string> kPool = {
      "side2(X) :- side(X).",
      "out(X) :- tc(X, _), tag(X).",
      "sym(Y, X) :- tc(X, Y).",
      "hub(X) :- e(X, X).",
      "side(X) :- hub(X).",
  };
  constexpr int kNodes = 10;

  for (const MaintenanceStrategy strategy :
       {MaintenanceStrategy::kDRed, MaintenanceStrategy::kCounting,
        MaintenanceStrategy::kBackwardForward}) {
    for (const std::uint64_t seed : {5u, 19u, 83u}) {
      util::Rng rng(seed * 131 + static_cast<std::uint64_t>(strategy));
      Database db(kBaseProgram);
      db.SetDefaultStrategy(strategy);

      // Base facts tracked alongside the database so the rebuild reference
      // can be constructed at any point.
      std::vector<std::vector<bool>> e_fact(
          kNodes, std::vector<bool>(kNodes, false));
      std::vector<bool> tag_fact(kNodes, false);
      for (std::size_t a = 0; a < kNodes; ++a) {
        for (std::size_t b = 0; b < kNodes; ++b) {
          if (rng.NextBool(0.2)) {
            e_fact[a][b] = true;
            db.Insert("e", {Value::Int(static_cast<std::int64_t>(a)),
                            Value::Int(static_cast<std::int64_t>(b))});
          }
        }
        if (rng.NextBool(0.3)) {
          tag_fact[a] = true;
          db.Insert("tag", {Value::Int(static_cast<std::int64_t>(a))});
        }
      }
      db.Materialize();

      std::vector<std::string> active;  // pool rules currently in force
      std::uint64_t last_version = db.ProgramVersion();

      const auto rebuild_and_compare = [&](int step) {
        std::string text = kBaseProgram;
        for (const std::string& rule : active) {
          text += "\n" + rule;
        }
        Database fresh(text);
        for (std::size_t a = 0; a < kNodes; ++a) {
          for (std::size_t b = 0; b < kNodes; ++b) {
            if (e_fact[a][b]) {
              fresh.Insert("e", {Value::Int(static_cast<std::int64_t>(a)),
                                 Value::Int(static_cast<std::int64_t>(b))});
            }
          }
          if (tag_fact[a]) {
            fresh.Insert("tag", {Value::Int(static_cast<std::int64_t>(a))});
          }
        }
        fresh.Materialize();
        // Compare every predicate the EVOLVED database ever knew; ones the
        // rebuild never heard of (rule removed again) must be empty.
        const auto snap = db.Snapshot();
        for (const std::string& name : snap->program.predicate_names) {
          std::vector<Tuple> fresh_rows;
          try {
            fresh_rows = fresh.Query(name);
          } catch (const util::InvalidArgument&) {
          }
          EXPECT_EQ(Sorted(db.Query(name)), Sorted(fresh_rows))
              << MaintenanceStrategyName(strategy) << " seed " << seed
              << " step " << step << " predicate " << name;
        }
      };

      for (int step = 0; step < 16; ++step) {
        const std::uint64_t action = rng.NextBelow(4);
        if (action == 0 && active.size() < kPool.size()) {
          // Add the next pool rule not yet active (order preserves the
          // hub-before-side dependency being introduced both ways).
          std::vector<std::string> unused;
          for (const std::string& rule : kPool) {
            if (std::find(active.begin(), active.end(), rule) ==
                active.end()) {
              unused.push_back(rule);
            }
          }
          const std::string& rule =
              unused[rng.NextBelow(unused.size())];
          const Database::EvolveResult result = db.EvolveAddRules(rule);
          EXPECT_GT(result.program_version, last_version);
          last_version = result.program_version;
          active.push_back(rule);
          rebuild_and_compare(step);
        } else if (action == 1 && !active.empty()) {
          const std::size_t victim = rng.NextBelow(active.size());
          const Database::EvolveResult result =
              db.EvolveRemoveRule(active[victim]);
          EXPECT_GT(result.program_version, last_version);
          last_version = result.program_version;
          active.erase(active.begin() +
                       static_cast<std::ptrdiff_t>(victim));
          rebuild_and_compare(step);
        } else {
          // A base update through the strategy under test (between evolves
          // this reseals counting state over the post-evolution counts).
          Database::Update update = db.MakeUpdate();
          // Distinct cells per batch: one tuple in both the insert and the
          // delete list of a single request is outside the contract.
          std::vector<std::size_t> flipped;
          for (int flips = 0; flips < 4; ++flips) {
            const std::size_t a = rng.NextBelow(kNodes);
            const std::size_t b = rng.NextBelow(kNodes);
            if (std::find(flipped.begin(), flipped.end(), a * kNodes + b) !=
                flipped.end()) {
              continue;
            }
            flipped.push_back(a * kNodes + b);
            const Tuple row{Value::Int(static_cast<std::int64_t>(a)),
                            Value::Int(static_cast<std::int64_t>(b))};
            if (e_fact[a][b]) {
              update.Delete("e", row);
            } else {
              update.Insert("e", row);
            }
            e_fact[a][b] = !e_fact[a][b];
          }
          const std::size_t t = rng.NextBelow(kNodes);
          const Tuple trow{Value::Int(static_cast<std::int64_t>(t))};
          if (tag_fact[t]) {
            update.Delete("tag", trow);
          } else {
            update.Insert("tag", trow);
          }
          tag_fact[t] = !tag_fact[t];
          (void)db.Apply(update);
        }
        if (::testing::Test::HasFailure()) {
          FAIL() << "diverged: strategy "
                 << MaintenanceStrategyName(strategy) << " seed " << seed
                 << " step " << step;
        }
      }
      rebuild_and_compare(99);
    }
  }
}

}  // namespace
}  // namespace dsched::datalog
