// Parameterized property suite: every scheduler, on randomized workloads,
// across execution models and processor counts.
//
// Properties checked per run:
//  P1 (validity)      — the audited schedule respects activated-ancestor
//                       precedence and runs exactly the active set once;
//  P2 (completeness)  — every scheduler executes the same task set (the
//                       offline cascade), so policies differ only in order;
//  P3 (Lemma 3/5)     — LevelBased makespan ≤ w/P + L for unit-length and
//                       fully-parallelizable tasks;
//  P4 (work bound)    — no schedule beats w/P (conservation) and busy time
//                       equals total executed work.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "graph/levels.hpp"
#include "sched/factory.hpp"
#include "sched/level_based.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "trace/cascade.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace dsched::sched {
namespace {

using sim::ExecutionModel;
using sim::SimConfig;
using sim::Simulate;

struct Param {
  const char* scheduler;
  ExecutionModel model;
  std::size_t processors;
};

std::string ParamName(const testing::TestParamInfo<Param>& info) {
  std::string name = info.param.scheduler;
  for (char& c : name) {
    if (c == ':') {
      c = '_';
    }
  }
  name += "_";
  name += sim::ExecutionModelName(info.param.model);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  name += "_p" + std::to_string(info.param.processors);
  return name;
}

class SchedulerPropertyTest : public testing::TestWithParam<Param> {};

TEST_P(SchedulerPropertyTest, ValidCompleteAndWorkConserving) {
  const Param& param = GetParam();
  util::Rng rng(0xabcde + param.processors);
  for (int trial = 0; trial < 6; ++trial) {
    const double edge_prob = 0.02 + 0.03 * trial;
    const double dirty_prob = trial % 2 == 0 ? 0.1 : 0.3;
    const double change_prob = 0.4 + 0.1 * trial;
    trace::DurationModel durations;
    durations.median_seconds = 0.5;
    durations.sequential_fraction = 0.6;
    const trace::JobTrace trace = trace::MakeRandomDag(
        45, edge_prob, dirty_prob, change_prob, rng, durations);
    const trace::Cascade cascade = trace::ComputeCascade(trace);

    auto scheduler = CreateScheduler(param.scheduler);
    SimConfig config;
    config.processors = param.processors;
    config.model = param.model;
    config.record_schedule = true;
    const sim::SimResult result = Simulate(trace, *scheduler, config);

    // P2: exactly the cascade executed.
    EXPECT_EQ(result.tasks_executed, cascade.NumActive())
        << param.scheduler << " trial " << trial;
    // P1: audited validity.
    const sim::AuditResult audit = sim::AuditSchedule(trace, result);
    EXPECT_TRUE(audit.valid)
        << param.scheduler << " trial " << trial << ": "
        << (audit.violations.empty() ? "" : audit.violations.front());
    // P4: processor-time conservation.
    EXPECT_NEAR(result.busy_processor_seconds, result.total_work,
                1e-6 + result.total_work * 1e-9);
    EXPECT_GE(result.makespan * static_cast<double>(param.processors),
              result.total_work - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerPropertyTest,
    testing::Values(
        Param{"levelbased", ExecutionModel::kUnitLength, 1},
        Param{"levelbased", ExecutionModel::kUnitLength, 4},
        Param{"levelbased", ExecutionModel::kSequential, 2},
        Param{"levelbased", ExecutionModel::kFullyParallel, 4},
        Param{"levelbased", ExecutionModel::kMoldable, 3},
        Param{"lbl:2", ExecutionModel::kUnitLength, 2},
        Param{"lbl:2", ExecutionModel::kSequential, 4},
        Param{"lbl:8", ExecutionModel::kMoldable, 4},
        Param{"logicblox", ExecutionModel::kUnitLength, 2},
        Param{"logicblox", ExecutionModel::kSequential, 4},
        Param{"logicblox", ExecutionModel::kMoldable, 3},
        Param{"signal", ExecutionModel::kUnitLength, 4},
        Param{"signal", ExecutionModel::kSequential, 2},
        Param{"oracle", ExecutionModel::kSequential, 4},
        Param{"oracle", ExecutionModel::kMoldable, 2},
        Param{"hybrid", ExecutionModel::kUnitLength, 2},
        Param{"hybrid", ExecutionModel::kSequential, 4},
        Param{"hybrid", ExecutionModel::kMoldable, 3},
        Param{"hybrid:lbl:3", ExecutionModel::kSequential, 4},
        Param{"hybrid:signal", ExecutionModel::kUnitLength, 2}),
    ParamName);

/// Lemma 3 / Lemma 5: LevelBased makespan ≤ w/P + L (unit-length and
/// fully-parallelizable tasks), across a processor sweep.
class LevelBasedBoundTest
    : public testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(LevelBasedBoundTest, MakespanWithinLemmaBound) {
  const std::size_t processors = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  util::Rng rng(static_cast<std::uint64_t>(seed) * 7717);

  trace::DurationModel durations;
  durations.median_seconds = 1.0;
  durations.sigma = 1.0;
  const trace::JobTrace trace =
      trace::MakeRandomDag(80, 0.04, 0.25, 0.7, rng, durations);
  const trace::Cascade cascade = trace::ComputeCascade(trace);
  const graph::LevelMap levels(trace.Graph());
  const double big_l = static_cast<double>(levels.NumLevels());

  for (const ExecutionModel model :
       {ExecutionModel::kUnitLength, ExecutionModel::kFullyParallel}) {
    LevelBasedScheduler sched;
    SimConfig config;
    config.processors = processors;
    config.model = model;
    const sim::SimResult result = Simulate(trace, sched, config);
    const double w = result.total_work;
    EXPECT_LE(result.makespan,
              w / static_cast<double>(processors) + big_l + 1e-6)
        << "model=" << sim::ExecutionModelName(model)
        << " P=" << processors << " active=" << cascade.NumActive();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LevelBasedBoundTest,
    testing::Combine(testing::Values<std::size_t>(1, 2, 4, 8, 16),
                     testing::Values(1, 2, 3, 4)),
    [](const testing::TestParamInfo<std::tuple<std::size_t, int>>& sweep_info) {
      return "p" + std::to_string(std::get<0>(sweep_info.param)) + "_seed" +
             std::to_string(std::get<1>(sweep_info.param));
    });

/// Lemma 7: for arbitrary (moldable) tasks the LevelBased makespan is at
/// most w/P + Σ_i S_i where S_i is the max task span at level i.
TEST(LevelBasedArbitraryBoundTest, SumOfLevelSpans) {
  util::Rng rng(6061);
  for (int trial = 0; trial < 6; ++trial) {
    trace::DurationModel durations;
    durations.median_seconds = 2.0;
    durations.sequential_fraction = 0.5;
    durations.parallel_span_factor = 0.3;
    const trace::JobTrace trace =
        trace::MakeRandomDag(60, 0.05, 0.3, 0.8, rng, durations);
    const trace::Cascade cascade = trace::ComputeCascade(trace);
    const graph::LevelMap levels(trace.Graph());

    // Σ_i S_i over active tasks (inactive tasks never run).
    std::vector<double> level_span(levels.NumLevels(), 0.0);
    for (const auto id : cascade.active_nodes) {
      level_span[levels.LevelOf(id)] =
          std::max(level_span[levels.LevelOf(id)], trace.Info(id).span);
    }
    double span_sum = 0.0;
    for (const double s : level_span) {
      span_sum += s;
    }

    const std::size_t processors = 4;
    LevelBasedScheduler sched;
    const sim::SimResult result = Simulate(
        trace, sched,
        {.processors = processors, .model = ExecutionModel::kMoldable});
    EXPECT_LE(result.makespan,
              result.total_work / static_cast<double>(processors) + span_sum +
                  1e-6);
  }
}

/// Theorem 9: the tight example realizes Θ(ML) vs Θ(M + L).
TEST(TightExampleTest, GapGrowsLinearlyWithL) {
  double previous_ratio = 0.0;
  for (const std::size_t levels : {8u, 16u, 32u}) {
    const trace::JobTrace trace = trace::MakeTightExample(levels);
    LevelBasedScheduler lb;
    auto oracle = CreateScheduler("oracle");
    const SimConfig config{.processors = levels + 2,
                           .model = ExecutionModel::kMoldable};
    const auto lb_result = Simulate(trace, lb, config);
    const auto opt_result = Simulate(trace, *oracle, config);
    const double ratio = lb_result.makespan / opt_result.makespan;
    EXPECT_GT(ratio, previous_ratio);  // gap grows with L
    previous_ratio = ratio;
  }
  EXPECT_GT(previous_ratio, 4.0);
}

}  // namespace
}  // namespace dsched::sched
