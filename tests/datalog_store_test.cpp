// Focused tests for the storage layer details the incremental engine leans
// on: copy semantics, append-only index extension, predicate extension, and
// the snapshot-free OldStateView.
#include <gtest/gtest.h>

#include <algorithm>

#include "datalog/incremental.hpp"
#include "datalog/parser.hpp"
#include "datalog/relation.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace dsched::datalog {
namespace {

Tuple T2(int a, int b) { return {Value::Int(a), Value::Int(b)}; }

TEST(RelationStoreCopyTest, CopyIsDeepAndCacheFresh) {
  const Program p = ParseProgram("e(a, b).");
  RelationStore store(p);
  const auto e = p.PredicateId("e");
  store.Of(e).Insert(T2(1, 2));
  // Warm the index cache.
  EXPECT_EQ(store.Lookup(e, {0}, {Value::Int(1)}).size(), 1u);

  RelationStore copy = store;
  copy.Of(e).Insert(T2(3, 4));
  EXPECT_EQ(copy.Of(e).Size(), 2u);
  EXPECT_EQ(store.Of(e).Size(), 1u);  // deep copy: original untouched
  // The copy's cache starts fresh and still answers correctly.
  EXPECT_EQ(copy.Lookup(e, {0}, {Value::Int(3)}).size(), 1u);
  EXPECT_EQ(store.Lookup(e, {0}, {Value::Int(3)}).size(), 0u);
}

TEST(RelationStoreCopyTest, AssignmentResetsCache) {
  const Program p = ParseProgram("e(a, b).");
  RelationStore a(p);
  RelationStore b(p);
  const auto e = p.PredicateId("e");
  a.Of(e).Insert(T2(1, 2));
  EXPECT_EQ(b.Lookup(e, {0}, {Value::Int(1)}).size(), 0u);  // warm b's cache
  b = a;
  EXPECT_EQ(b.Lookup(e, {0}, {Value::Int(1)}).size(), 1u);
}

TEST(RelationStoreTest, MetricsExportIsPrefixIsolated) {
  // Single-tenant regression for the service layer: two stores exporting
  // into ONE registry must not clobber each other.  The prefix parameter
  // (default "store.") is how sessions isolate — the host exports each
  // session's store under "session.<name>.store.".
  const Program p = ParseProgram("e(a, b).");
  RelationStore one(p);
  RelationStore two(p);
  const auto e = p.PredicateId("e");
  one.Of(e).Insert(T2(1, 2));
  two.Of(e).Insert(T2(1, 2));
  two.Of(e).Insert(T2(3, 4));
  obs::MetricsRegistry registry;
  one.ExportMetrics(registry, "session.a.store.");
  two.ExportMetrics(registry, "session.b.store.");
  EXPECT_EQ(registry.Value("session.a.store.rows"), 1u);
  EXPECT_EQ(registry.Value("session.b.store.rows"), 2u);
  // Re-export after divergence keeps the other prefix untouched.
  one.Of(e).Insert(T2(5, 6));
  one.ExportMetrics(registry, "session.a.store.");
  EXPECT_EQ(registry.Value("session.a.store.rows"), 2u);
  EXPECT_EQ(registry.Value("session.b.store.rows"), 2u);
}

TEST(RelationStoreTest, AppendOnlyIndexExtension) {
  const Program p = ParseProgram("e(a, b).");
  RelationStore store(p);
  const auto e = p.PredicateId("e");
  store.Of(e).Insert(T2(1, 10));
  EXPECT_EQ(store.Lookup(e, {0}, {Value::Int(1)}).size(), 1u);
  // Pure appends: the cached index must pick up new rows without losing the
  // old ones.
  store.Of(e).Insert(T2(1, 11));
  store.Of(e).Insert(T2(2, 20));
  EXPECT_EQ(store.Lookup(e, {0}, {Value::Int(1)}).size(), 2u);
  EXPECT_EQ(store.Lookup(e, {0}, {Value::Int(2)}).size(), 1u);
  // An erase invalidates row ids; the rebuilt index must be exact.
  store.Of(e).Erase(T2(1, 10));
  const auto rows = store.Lookup(e, {0}, {Value::Int(1)});
  ASSERT_EQ(rows.size(), 1u);
  const RowView survivor = store.RowAt(e, rows[0]);
  EXPECT_EQ(Tuple(survivor.begin(), survivor.end()), T2(1, 11));
}

TEST(RelationStoreTest, EraseEpochAdvancesOnlyOnErase) {
  Relation r(2);
  const auto epoch0 = r.EraseEpoch();
  r.Insert(T2(1, 2));
  EXPECT_EQ(r.EraseEpoch(), epoch0);
  r.Erase(T2(1, 2));
  EXPECT_GT(r.EraseEpoch(), epoch0);
}

TEST(RelationStoreTest, EnsurePredicatesExtends) {
  Program p = ParseProgram("e(a, b).");
  RelationStore store(p);
  EXPECT_EQ(store.NumRelations(), 1u);
  ExtendProgram(p, "f(X, Y, Z) :- e(X, Y), e(Y, Z).");
  store.EnsurePredicates(p);
  EXPECT_EQ(store.NumRelations(), 2u);
  EXPECT_EQ(store.Of(p.PredicateId("f")).Arity(), 3u);
  // Idempotent.
  store.EnsurePredicates(p);
  EXPECT_EQ(store.NumRelations(), 2u);
}

TEST(RelationEraseTest, SwapRemovalMovesOnlyTheLastRow) {
  // A single shard gives dense row ids, so the swap-removal contract can be
  // observed through Row() directly.
  Relation r(2, 1);
  r.Insert(T2(1, 1));
  r.Insert(T2(2, 2));
  r.Insert(T2(3, 3));
  r.Insert(T2(4, 4));
  // Erasing a middle row compacts by moving the LAST row into its slot;
  // every other row id is stable.
  ASSERT_TRUE(r.Erase(T2(2, 2)));
  EXPECT_EQ(r.Size(), 3u);
  const RowView row0 = r.Row(0);
  const RowView row1 = r.Row(1);
  EXPECT_EQ(Tuple(row0.begin(), row0.end()), T2(1, 1));
  EXPECT_EQ(Tuple(row1.begin(), row1.end()), T2(4, 4));  // moved from id 3
  // Membership survives the move for every remaining tuple.
  EXPECT_TRUE(r.Contains(T2(1, 1)));
  EXPECT_TRUE(r.Contains(T2(3, 3)));
  EXPECT_TRUE(r.Contains(T2(4, 4)));
  EXPECT_FALSE(r.Contains(T2(2, 2)));
}

TEST(RelationEraseTest, EraseLastRowIsPureTruncation) {
  Relation r(2, 1);
  r.Insert(T2(1, 1));
  r.Insert(T2(2, 2));
  ASSERT_TRUE(r.Erase(T2(2, 2)));
  const RowView row0 = r.Row(0);
  EXPECT_EQ(Tuple(row0.begin(), row0.end()), T2(1, 1));
  EXPECT_TRUE(r.Contains(T2(1, 1)));
}

TEST(RelationEraseTest, InterleavedInsertEraseMatchesReferenceSet) {
  // Deterministic mixed workload against a reference model: exercises
  // backward-shift deletion and slot repointing under collision pressure
  // (keys dense in [0, 64) force probe chains at small table sizes).
  Relation r(2);
  std::vector<Tuple> model;
  std::uint64_t rng = 0x1234567887654321ULL;
  const auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int step = 0; step < 4000; ++step) {
    const int a = static_cast<int>(next() % 64);
    const int b = static_cast<int>(next() % 8);
    const Tuple t = T2(a, b);
    const auto it = std::find(model.begin(), model.end(), t);
    if (next() % 3 != 0) {
      EXPECT_EQ(r.Insert(t), it == model.end());
      if (it == model.end()) {
        model.push_back(t);
      }
    } else {
      EXPECT_EQ(r.Erase(t), it != model.end());
      if (it != model.end()) {
        model.erase(it);
      }
    }
  }
  ASSERT_EQ(r.Size(), model.size());
  std::vector<Tuple> got = r.Tuples();
  std::sort(got.begin(), got.end());
  std::sort(model.begin(), model.end());
  EXPECT_EQ(got, model);
}

TEST(RelationEraseTest, EraseEpochGatesIndexRebuild) {
  // The EraseEpoch contract: pure appends keep the epoch (the cached index
  // may extend in place), any erase advances it (row ids shifted, caches
  // must rebuild).  Interleave the two and check the index stays exact.
  const Program p = ParseProgram("e(a, b).");
  RelationStore store(p);
  const auto e = p.PredicateId("e");
  const auto epoch0 = store.Of(e).EraseEpoch();
  for (int i = 0; i < 16; ++i) {
    store.Of(e).Insert(T2(i % 4, i));
  }
  EXPECT_EQ(store.Of(e).EraseEpoch(), epoch0);
  EXPECT_EQ(store.Lookup(e, {0}, {Value::Int(1)}).size(), 4u);

  store.Of(e).Erase(T2(1, 5));
  const auto epoch1 = store.Of(e).EraseEpoch();
  EXPECT_GT(epoch1, epoch0);
  EXPECT_EQ(store.Lookup(e, {0}, {Value::Int(1)}).size(), 3u);

  // Appends after the rebuild extend without another epoch bump, and row
  // ids handed back by the index must address the right arena rows.
  store.Of(e).Insert(T2(1, 99));
  EXPECT_EQ(store.Of(e).EraseEpoch(), epoch1);
  const auto rows = store.Lookup(e, {0}, {Value::Int(1)});
  EXPECT_EQ(rows.size(), 4u);
  for (const auto id : rows) {
    EXPECT_EQ(store.RowAt(e, id)[0], Value::Int(1));
  }
}

TEST(TupleHashTest, MixesAllWordsAcrossBucketRanges) {
  // Structured keys (sequential ints, grid pairs) must spread over both the
  // low and the high hash bits — the byte-extracted bucket histograms stay
  // near uniform.  A multiplicative word mixer passes easily; an xor/shift
  // identity-style hash concentrates sequential keys and fails.
  const auto check_spread = [](const std::vector<std::uint64_t>& hashes) {
    for (const int shift : {0, 56}) {
      std::vector<int> buckets(256, 0);
      for (const std::uint64_t h : hashes) {
        ++buckets[(h >> shift) & 0xff];
      }
      const double expected =
          static_cast<double>(hashes.size()) / 256.0;
      for (const int count : buckets) {
        EXPECT_LT(count, expected * 4.0)
            << "bucket overload at shift " << shift;
      }
    }
  };
  std::vector<std::uint64_t> seq;
  std::vector<std::uint64_t> grid;
  for (int i = 0; i < 4096; ++i) {
    seq.push_back(TupleHash{}(Tuple{Value::Int(i)}));
    grid.push_back(TupleHash{}(T2(i % 64, i / 64)));
  }
  check_spread(seq);
  check_spread(grid);

  // No 64-bit collisions on these small structured sets.
  for (auto* hs : {&seq, &grid}) {
    std::sort(hs->begin(), hs->end());
    EXPECT_EQ(std::adjacent_find(hs->begin(), hs->end()), hs->end());
  }

  // Arity participates: a tuple must not collide with its prefix.
  EXPECT_NE(TupleHash{}(Tuple{Value::Int(7)}),
            TupleHash{}(T2(7, 0)));
}

class OldStateViewTest : public testing::Test {
 protected:
  OldStateViewTest() : program_(ParseProgram("e(a, b). d(a, b).")) {
    store_ = RelationStore(program_);
    e_ = program_.PredicateId("e");
    net_.resize(program_.NumPredicates());
  }

  Program program_;
  RelationStore store_;
  std::uint32_t e_ = 0;
  std::vector<PredicateDelta> net_;
};

TEST_F(OldStateViewTest, ReflectsNetInsertionsAsAbsent) {
  store_.Of(e_).Insert(T2(1, 2));  // pre-existing
  store_.Of(e_).Insert(T2(3, 4));  // inserted by this update
  net_[e_].inserted.push_back(T2(3, 4));
  const OldStateView view(store_, net_, {e_});
  EXPECT_TRUE(view.ContainsTuple(e_, T2(1, 2)));
  EXPECT_FALSE(view.ContainsTuple(e_, T2(3, 4)));  // not in the old state
}

TEST_F(OldStateViewTest, ReflectsNetDeletionsAsPresent) {
  store_.Of(e_).Insert(T2(1, 2));
  net_[e_].deleted.push_back(T2(9, 9));  // deleted earlier in this update
  const OldStateView view(store_, net_, {e_});
  EXPECT_TRUE(view.ContainsTuple(e_, T2(9, 9)));
  EXPECT_FALSE(view.ContainsTuple(e_, T2(7, 7)));
}

TEST_F(OldStateViewTest, LookupMergesLiveAndExtras) {
  store_.Of(e_).Insert(T2(1, 2));
  store_.Of(e_).Insert(T2(1, 3));  // live, but inserted by the update
  net_[e_].inserted.push_back(T2(1, 3));
  net_[e_].deleted.push_back(T2(1, 4));  // old-only
  const OldStateView view(store_, net_, {e_});
  const auto ids = view.Lookup(e_, {0}, {Value::Int(1)});
  // Old state for key 1: (1,2) live + (1,4) extra; (1,3) filtered out.
  ASSERT_EQ(ids.size(), 2u);
  std::vector<Tuple> rows;
  for (const auto id : ids) {
    const RowView row = view.RowAt(e_, id);
    rows.emplace_back(row.begin(), row.end());
  }
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows[0], T2(1, 2));
  EXPECT_EQ(rows[1], T2(1, 4));
}

TEST_F(OldStateViewTest, AddDeletedExtraGrowsTheView) {
  store_.Of(e_).Insert(T2(1, 2));
  OldStateView view(store_, net_, {e_});
  // Simulate a phase erasing (1,2): live loses it, the view keeps it.
  view.AddDeletedExtra(e_, T2(1, 2));
  store_.Of(e_).Erase(T2(1, 2));
  EXPECT_TRUE(view.ContainsTuple(e_, T2(1, 2)));
  const auto ids = view.Lookup(e_, {0}, {Value::Int(1)});
  ASSERT_EQ(ids.size(), 1u);
  const RowView row = view.RowAt(e_, ids[0]);
  EXPECT_EQ(Tuple(row.begin(), row.end()), T2(1, 2));
}

TEST_F(OldStateViewTest, IrrelevantPredicatesAreNotSnapshotted) {
  const auto d = program_.PredicateId("d");
  store_.Of(d).Insert(T2(5, 5));
  net_[d].inserted.push_back(T2(5, 5));
  // View built WITHOUT d in the relevant set: d's delta is ignored (the
  // phase would never read it), so the live tuple shows through.
  const OldStateView view(store_, net_, {e_});
  EXPECT_TRUE(view.ContainsTuple(d, T2(5, 5)));
}

}  // namespace
}  // namespace dsched::datalog
