// Focused tests for the storage layer details the incremental engine leans
// on: copy semantics, append-only index extension, predicate extension, and
// the snapshot-free OldStateView.
#include <gtest/gtest.h>

#include <algorithm>

#include "datalog/incremental.hpp"
#include "datalog/parser.hpp"
#include "datalog/relation.hpp"
#include "util/error.hpp"

namespace dsched::datalog {
namespace {

Tuple T2(int a, int b) { return {Value::Int(a), Value::Int(b)}; }

TEST(RelationStoreCopyTest, CopyIsDeepAndCacheFresh) {
  const Program p = ParseProgram("e(a, b).");
  RelationStore store(p);
  const auto e = p.PredicateId("e");
  store.Of(e).Insert(T2(1, 2));
  // Warm the index cache.
  EXPECT_EQ(store.Lookup(e, {0}, {Value::Int(1)}).size(), 1u);

  RelationStore copy = store;
  copy.Of(e).Insert(T2(3, 4));
  EXPECT_EQ(copy.Of(e).Size(), 2u);
  EXPECT_EQ(store.Of(e).Size(), 1u);  // deep copy: original untouched
  // The copy's cache starts fresh and still answers correctly.
  EXPECT_EQ(copy.Lookup(e, {0}, {Value::Int(3)}).size(), 1u);
  EXPECT_EQ(store.Lookup(e, {0}, {Value::Int(3)}).size(), 0u);
}

TEST(RelationStoreCopyTest, AssignmentResetsCache) {
  const Program p = ParseProgram("e(a, b).");
  RelationStore a(p);
  RelationStore b(p);
  const auto e = p.PredicateId("e");
  a.Of(e).Insert(T2(1, 2));
  EXPECT_EQ(b.Lookup(e, {0}, {Value::Int(1)}).size(), 0u);  // warm b's cache
  b = a;
  EXPECT_EQ(b.Lookup(e, {0}, {Value::Int(1)}).size(), 1u);
}

TEST(RelationStoreTest, AppendOnlyIndexExtension) {
  const Program p = ParseProgram("e(a, b).");
  RelationStore store(p);
  const auto e = p.PredicateId("e");
  store.Of(e).Insert(T2(1, 10));
  EXPECT_EQ(store.Lookup(e, {0}, {Value::Int(1)}).size(), 1u);
  // Pure appends: the cached index must pick up new rows without losing the
  // old ones.
  store.Of(e).Insert(T2(1, 11));
  store.Of(e).Insert(T2(2, 20));
  EXPECT_EQ(store.Lookup(e, {0}, {Value::Int(1)}).size(), 2u);
  EXPECT_EQ(store.Lookup(e, {0}, {Value::Int(2)}).size(), 1u);
  // An erase invalidates row ids; the rebuilt index must be exact.
  store.Of(e).Erase(T2(1, 10));
  const auto rows = store.Lookup(e, {0}, {Value::Int(1)});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(store.Of(e).Rows()[rows[0]], T2(1, 11));
}

TEST(RelationStoreTest, EraseEpochAdvancesOnlyOnErase) {
  Relation r(2);
  const auto epoch0 = r.EraseEpoch();
  r.Insert(T2(1, 2));
  EXPECT_EQ(r.EraseEpoch(), epoch0);
  r.Erase(T2(1, 2));
  EXPECT_GT(r.EraseEpoch(), epoch0);
}

TEST(RelationStoreTest, EnsurePredicatesExtends) {
  Program p = ParseProgram("e(a, b).");
  RelationStore store(p);
  EXPECT_EQ(store.NumRelations(), 1u);
  ExtendProgram(p, "f(X, Y, Z) :- e(X, Y), e(Y, Z).");
  store.EnsurePredicates(p);
  EXPECT_EQ(store.NumRelations(), 2u);
  EXPECT_EQ(store.Of(p.PredicateId("f")).Arity(), 3u);
  // Idempotent.
  store.EnsurePredicates(p);
  EXPECT_EQ(store.NumRelations(), 2u);
}

class OldStateViewTest : public testing::Test {
 protected:
  OldStateViewTest() : program_(ParseProgram("e(a, b). d(a, b).")) {
    store_ = RelationStore(program_);
    e_ = program_.PredicateId("e");
    net_.resize(program_.NumPredicates());
  }

  Program program_;
  RelationStore store_;
  std::uint32_t e_ = 0;
  std::vector<PredicateDelta> net_;
};

TEST_F(OldStateViewTest, ReflectsNetInsertionsAsAbsent) {
  store_.Of(e_).Insert(T2(1, 2));  // pre-existing
  store_.Of(e_).Insert(T2(3, 4));  // inserted by this update
  net_[e_].inserted.push_back(T2(3, 4));
  const OldStateView view(store_, net_, {e_});
  EXPECT_TRUE(view.ContainsTuple(e_, T2(1, 2)));
  EXPECT_FALSE(view.ContainsTuple(e_, T2(3, 4)));  // not in the old state
}

TEST_F(OldStateViewTest, ReflectsNetDeletionsAsPresent) {
  store_.Of(e_).Insert(T2(1, 2));
  net_[e_].deleted.push_back(T2(9, 9));  // deleted earlier in this update
  const OldStateView view(store_, net_, {e_});
  EXPECT_TRUE(view.ContainsTuple(e_, T2(9, 9)));
  EXPECT_FALSE(view.ContainsTuple(e_, T2(7, 7)));
}

TEST_F(OldStateViewTest, LookupMergesLiveAndExtras) {
  store_.Of(e_).Insert(T2(1, 2));
  store_.Of(e_).Insert(T2(1, 3));  // live, but inserted by the update
  net_[e_].inserted.push_back(T2(1, 3));
  net_[e_].deleted.push_back(T2(1, 4));  // old-only
  const OldStateView view(store_, net_, {e_});
  const auto ids = view.Lookup(e_, {0}, {Value::Int(1)});
  // Old state for key 1: (1,2) live + (1,4) extra; (1,3) filtered out.
  ASSERT_EQ(ids.size(), 2u);
  std::vector<Tuple> rows;
  for (const auto id : ids) {
    rows.push_back(view.RowAt(e_, id));
  }
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows[0], T2(1, 2));
  EXPECT_EQ(rows[1], T2(1, 4));
}

TEST_F(OldStateViewTest, AddDeletedExtraGrowsTheView) {
  store_.Of(e_).Insert(T2(1, 2));
  OldStateView view(store_, net_, {e_});
  // Simulate a phase erasing (1,2): live loses it, the view keeps it.
  view.AddDeletedExtra(e_, T2(1, 2));
  store_.Of(e_).Erase(T2(1, 2));
  EXPECT_TRUE(view.ContainsTuple(e_, T2(1, 2)));
  const auto ids = view.Lookup(e_, {0}, {Value::Int(1)});
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(view.RowAt(e_, ids[0]), T2(1, 2));
}

TEST_F(OldStateViewTest, IrrelevantPredicatesAreNotSnapshotted) {
  const auto d = program_.PredicateId("d");
  store_.Of(d).Insert(T2(5, 5));
  net_[d].inserted.push_back(T2(5, 5));
  // View built WITHOUT d in the relevant set: d's delta is ignored (the
  // phase would never read it), so the live tuple shows through.
  const OldStateView view(store_, net_, {e_});
  EXPECT_TRUE(view.ContainsTuple(d, T2(5, 5)));
}

}  // namespace
}  // namespace dsched::datalog
