// Tests for the wire protocol and the networked frontend (src/net/).
//
// Codec: every message round-trips; truncated / oversized / garbage frames
// are rejected without crashing (the decoder is total).  Server: pipelined
// requests complete out of order (PONG overtakes a heavy SUBMIT_RESULT)
// while SUBMIT_RESULTs stay in epoch order; a client disconnecting
// mid-batch leaves a session that drains cleanly and stays queryable from
// a new connection; protocol errors answer with ERROR frames, not crashes.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "service/engine_host.hpp"
#include "service/session.hpp"
#include "util/error.hpp"

namespace dsched::net {
namespace {

constexpr const char* kChainProgram = R"(
  tc(X, Y) :- e(X, Y).
  tc(X, Z) :- tc(X, Y), e(Y, Z).
  lbl(X, L) :- has(X, L).
)";

WireOp Insert(std::string pred, WireTuple tuple) {
  return WireOp{false, std::move(pred), std::move(tuple)};
}
WireOp Delete(std::string pred, WireTuple tuple) {
  return WireOp{true, std::move(pred), std::move(tuple)};
}

// --- codec ---------------------------------------------------------------

TEST(WireCodecTest, OpenSessionRoundTrip) {
  OpenSessionRequest req;
  req.request_id = 7;
  req.program = kChainProgram;
  req.name = "wire";
  req.scheduler_spec = "hybrid";
  req.strategy = "dred";
  req.queue_capacity = 16;
  req.pipeline_depth = 4;
  const std::string frame = EncodeOpenSession(req);
  Frame parsed;
  ASSERT_EQ(ExtractFrame(frame, &parsed), FrameStatus::kFrame);
  EXPECT_EQ(parsed.opcode, Opcode::kOpenSession);
  EXPECT_EQ(parsed.frame_size, frame.size());
  OpenSessionRequest out;
  ASSERT_TRUE(DecodeOpenSession(parsed.payload, &out));
  EXPECT_EQ(out.request_id, 7u);
  EXPECT_EQ(out.program, kChainProgram);
  EXPECT_EQ(out.name, "wire");
  EXPECT_EQ(out.scheduler_spec, "hybrid");
  EXPECT_EQ(out.strategy, "dred");
  EXPECT_EQ(out.queue_capacity, 16u);
  EXPECT_EQ(out.pipeline_depth, 4u);
}

TEST(WireCodecTest, SubmitRoundTripMixedValues) {
  SubmitRequest req;
  req.request_id = 99;
  req.session_id = 3;
  req.ops.push_back(Insert("e", {WireValue::Int(1), WireValue::Int(-2)}));
  req.ops.push_back(Delete("e", {WireValue::Int(5), WireValue::Int(6)}));
  req.ops.push_back(
      Insert("has", {WireValue::Int(1), WireValue::Sym("hot")}));
  const std::string frame = EncodeSubmit(req);
  Frame parsed;
  ASSERT_EQ(ExtractFrame(frame, &parsed), FrameStatus::kFrame);
  SubmitRequest out;
  ASSERT_TRUE(DecodeSubmit(parsed.payload, &out));
  EXPECT_EQ(out.request_id, 99u);
  EXPECT_EQ(out.session_id, 3u);
  ASSERT_EQ(out.ops.size(), 3u);
  EXPECT_FALSE(out.ops[0].is_delete);
  EXPECT_TRUE(out.ops[1].is_delete);
  EXPECT_EQ(out.ops[0].predicate, "e");
  EXPECT_EQ(out.ops[0].tuple,
            (WireTuple{WireValue::Int(1), WireValue::Int(-2)}));
  EXPECT_EQ(out.ops[2].tuple,
            (WireTuple{WireValue::Int(1), WireValue::Sym("hot")}));
}

TEST(WireCodecTest, ResponsesRoundTrip) {
  {
    const std::string f =
        EncodeSessionOpened(SessionOpenedResponse{11, 42});
    Frame p;
    ASSERT_EQ(ExtractFrame(f, &p), FrameStatus::kFrame);
    SessionOpenedResponse out;
    ASSERT_TRUE(DecodeSessionOpened(p.payload, &out));
    EXPECT_EQ(out.request_id, 11u);
    EXPECT_EQ(out.session_id, 42u);
  }
  {
    const std::string f =
        EncodeSubmitResult(SubmitResultResponse{12, 9, 100, 3});
    Frame p;
    ASSERT_EQ(ExtractFrame(f, &p), FrameStatus::kFrame);
    SubmitResultResponse out;
    ASSERT_TRUE(DecodeSubmitResult(p.payload, &out));
    EXPECT_EQ(out.epoch, 9u);
    EXPECT_EQ(out.inserted, 100u);
    EXPECT_EQ(out.deleted, 3u);
  }
  {
    QueryResultResponse resp;
    resp.request_id = 13;
    resp.arity = 2;
    resp.rows.push_back({WireValue::Int(1), WireValue::Sym("a")});
    resp.rows.push_back({WireValue::Int(2), WireValue::Sym("b")});
    const std::string f = EncodeQueryResult(resp);
    Frame p;
    ASSERT_EQ(ExtractFrame(f, &p), FrameStatus::kFrame);
    QueryResultResponse out;
    ASSERT_TRUE(DecodeQueryResult(p.payload, &out));
    EXPECT_EQ(out.arity, 2u);
    ASSERT_EQ(out.rows.size(), 2u);
    EXPECT_EQ(out.rows[1],
              (WireTuple{WireValue::Int(2), WireValue::Sym("b")}));
  }
  {
    const std::string f = EncodeError(
        ErrorResponse{14, ErrorCode::kNoSession, "gone"});
    Frame p;
    ASSERT_EQ(ExtractFrame(f, &p), FrameStatus::kFrame);
    ErrorResponse out;
    ASSERT_TRUE(DecodeError(p.payload, &out));
    EXPECT_EQ(out.code, ErrorCode::kNoSession);
    EXPECT_EQ(out.message, "gone");
  }
}

TEST(WireCodecTest, EvolveMessagesRoundTrip) {
  {
    AddRulesRequest req;
    req.request_id = 21;
    req.session_id = 8;
    req.text = "side(X) :- tag(X).\nside2(X) :- side(X).";
    const std::string f = EncodeAddRules(req);
    Frame p;
    ASSERT_EQ(ExtractFrame(f, &p), FrameStatus::kFrame);
    EXPECT_EQ(p.opcode, Opcode::kAddRules);
    AddRulesRequest out;
    ASSERT_TRUE(DecodeAddRules(p.payload, &out));
    EXPECT_EQ(out.request_id, 21u);
    EXPECT_EQ(out.session_id, 8u);
    EXPECT_EQ(out.text, req.text);
  }
  {
    RemoveRuleRequest req;
    req.request_id = 22;
    req.session_id = 8;
    req.text = "tc(X, Z) :- tc(X, Y), e(Y, Z).";
    const std::string f = EncodeRemoveRule(req);
    Frame p;
    ASSERT_EQ(ExtractFrame(f, &p), FrameStatus::kFrame);
    EXPECT_EQ(p.opcode, Opcode::kRemoveRule);
    RemoveRuleRequest out;
    ASSERT_TRUE(DecodeRemoveRule(p.payload, &out));
    EXPECT_EQ(out.request_id, 22u);
    EXPECT_EQ(out.session_id, 8u);
    EXPECT_EQ(out.text, req.text);
  }
  {
    const std::string f =
        EncodeRulesChanged(RulesChangedResponse{23, 5, 3, 40, 7});
    Frame p;
    ASSERT_EQ(ExtractFrame(f, &p), FrameStatus::kFrame);
    EXPECT_EQ(p.opcode, Opcode::kRulesChanged);
    RulesChangedResponse out;
    ASSERT_TRUE(DecodeRulesChanged(p.payload, &out));
    EXPECT_EQ(out.request_id, 23u);
    EXPECT_EQ(out.epoch, 5u);
    EXPECT_EQ(out.program_version, 3u);
    EXPECT_EQ(out.inserted, 40u);
    EXPECT_EQ(out.deleted, 7u);
  }
  // The new error codes survive the decoder's range check.
  for (const ErrorCode code : {ErrorCode::kBadRules, ErrorCode::kIdleTimeout}) {
    const std::string f = EncodeError(ErrorResponse{24, code, "x"});
    Frame p;
    ASSERT_EQ(ExtractFrame(f, &p), FrameStatus::kFrame);
    ErrorResponse out;
    ASSERT_TRUE(DecodeError(p.payload, &out));
    EXPECT_EQ(out.code, code);
  }
}

TEST(WireCodecTest, PartialFramesNeedMore) {
  const std::string frame = EncodePing(PingRequest{1});
  for (std::size_t len = 0; len < frame.size(); ++len) {
    Frame parsed;
    EXPECT_EQ(ExtractFrame(std::string_view(frame).substr(0, len), &parsed),
              FrameStatus::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(WireCodecTest, BrokenFramingIsAnError) {
  // Zero length: can never carry an opcode.
  const std::string zero(4, '\0');
  Frame parsed;
  EXPECT_EQ(ExtractFrame(zero, &parsed), FrameStatus::kError);
  // Oversized declared length.
  WireWriter w;
  w.U32(static_cast<std::uint32_t>(kMaxFrameLength + 1));
  w.U8(static_cast<std::uint8_t>(Opcode::kPing));
  EXPECT_EQ(ExtractFrame(w.Bytes(), &parsed), FrameStatus::kError);
}

TEST(WireCodecTest, TruncatedPayloadsRejectedWithoutCrashing) {
  SubmitRequest req;
  req.request_id = 1;
  req.session_id = 2;
  req.ops.push_back(
      Insert("edge", {WireValue::Int(10), WireValue::Sym("name")}));
  const std::string frame = EncodeSubmit(req);
  Frame parsed;
  ASSERT_EQ(ExtractFrame(frame, &parsed), FrameStatus::kFrame);
  // Every strict prefix of the payload must decode false.
  for (std::size_t len = 0; len < parsed.payload.size(); ++len) {
    SubmitRequest out;
    EXPECT_FALSE(DecodeSubmit(parsed.payload.substr(0, len), &out))
        << "prefix length " << len;
  }
  // Trailing bytes are equally rejected (no silent padding).
  const std::string padded = std::string(parsed.payload) + "x";
  SubmitRequest out;
  EXPECT_FALSE(DecodeSubmit(padded, &out));
}

TEST(WireCodecTest, TruncatedEvolvePayloadsRejectedWithoutCrashing) {
  AddRulesRequest add;
  add.request_id = 1;
  add.session_id = 2;
  add.text = "out(X) :- tc(X, _).";
  RemoveRuleRequest remove;
  remove.request_id = 3;
  remove.session_id = 4;
  remove.text = "tc(X, Y) :- e(X, Y).";
  const RulesChangedResponse changed{5, 6, 7, 8, 9};
  for (const std::string& frame :
       {EncodeAddRules(add), EncodeRemoveRule(remove),
        EncodeRulesChanged(changed)}) {
    Frame parsed;
    ASSERT_EQ(ExtractFrame(frame, &parsed), FrameStatus::kFrame);
    for (std::size_t len = 0; len < parsed.payload.size(); ++len) {
      const std::string_view prefix = parsed.payload.substr(0, len);
      AddRulesRequest a;
      RemoveRuleRequest r;
      RulesChangedResponse c;
      switch (parsed.opcode) {
        case Opcode::kAddRules:
          EXPECT_FALSE(DecodeAddRules(prefix, &a)) << "prefix " << len;
          break;
        case Opcode::kRemoveRule:
          EXPECT_FALSE(DecodeRemoveRule(prefix, &r)) << "prefix " << len;
          break;
        default:
          EXPECT_FALSE(DecodeRulesChanged(prefix, &c)) << "prefix " << len;
          break;
      }
    }
    // Trailing bytes are equally rejected (no silent padding).
    const std::string padded = std::string(parsed.payload) + "x";
    AddRulesRequest a;
    RemoveRuleRequest r;
    RulesChangedResponse c;
    switch (parsed.opcode) {
      case Opcode::kAddRules:
        EXPECT_FALSE(DecodeAddRules(padded, &a));
        break;
      case Opcode::kRemoveRule:
        EXPECT_FALSE(DecodeRemoveRule(padded, &r));
        break;
      default:
        EXPECT_FALSE(DecodeRulesChanged(padded, &c));
        break;
    }
  }
}

TEST(WireCodecTest, GarbagePayloadsRejectedWithoutCrashing) {
  // Deterministic pseudo-garbage: hostile string lengths, op counts, tags.
  std::string garbage;
  std::uint32_t x = 0x9e3779b9u;
  for (int i = 0; i < 4096; ++i) {
    x = x * 1664525u + 1013904223u;
    garbage.push_back(static_cast<char>(x >> 24));
  }
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{9},
                          std::size_t{64}, garbage.size()}) {
    const std::string_view payload(garbage.data(), len);
    OpenSessionRequest open;
    SubmitRequest submit;
    QueryRequest query;
    CloseSessionRequest close;
    QueryResultResponse rows;
    ErrorResponse error;
    AddRulesRequest add;
    RemoveRuleRequest remove;
    RulesChangedResponse changed;
    EXPECT_FALSE(DecodeOpenSession(payload, &open));
    EXPECT_FALSE(DecodeSubmit(payload, &submit));
    EXPECT_FALSE(DecodeQuery(payload, &query));
    EXPECT_FALSE(DecodeCloseSession(payload, &close));
    EXPECT_FALSE(DecodeQueryResult(payload, &rows));
    EXPECT_FALSE(DecodeError(payload, &error));
    EXPECT_FALSE(DecodeAddRules(payload, &add));
    EXPECT_FALSE(DecodeRemoveRule(payload, &remove));
    EXPECT_FALSE(DecodeRulesChanged(payload, &changed));
  }
}

// --- server end to end ---------------------------------------------------

struct ServerFixture {
  service::EngineHost host{{.workers = 2}};
  ServiceServer server{host, {}};

  ServerFixture() { server.Start(); }

  ServiceClient Connect() {
    ServiceClient client;
    client.Connect("127.0.0.1", server.Port());
    return client;
  }
};

SubmitRequest ChainBatch(std::uint64_t request_id, std::uint64_t session_id,
                         int lo, int hi) {
  SubmitRequest req;
  req.request_id = request_id;
  req.session_id = session_id;
  for (int i = lo; i < hi; ++i) {
    req.ops.push_back(
        Insert("e", {WireValue::Int(i), WireValue::Int(i + 1)}));
  }
  return req;
}

TEST(ServiceServerTest, PingPong) {
  ServerFixture fx;
  ServiceClient client = fx.Connect();
  client.PingSync(123);
}

TEST(ServiceServerTest, OpenSubmitQueryClose) {
  ServerFixture fx;
  ServiceClient client = fx.Connect();
  OpenSessionRequest open;
  open.request_id = 1;
  open.program = kChainProgram;
  const std::uint64_t sid = client.OpenSessionSync(open);
  EXPECT_GT(sid, 0u);

  const SubmitResultResponse r1 =
      client.SubmitSync(ChainBatch(2, sid, 0, 4));
  EXPECT_EQ(r1.epoch, 1u);
  EXPECT_GT(r1.inserted, 4u);  // e rows plus the tc closure

  SubmitRequest with_sym;
  with_sym.request_id = 3;
  with_sym.session_id = sid;
  with_sym.ops.push_back(
      Insert("has", {WireValue::Int(0), WireValue::Sym("hot")}));
  const SubmitResultResponse r2 = client.SubmitSync(with_sym);
  EXPECT_EQ(r2.epoch, 2u);

  QueryRequest q;
  q.request_id = 4;
  q.session_id = sid;
  q.predicate = "tc";
  const QueryResultResponse tc = client.QuerySync(q);
  EXPECT_EQ(tc.arity, 2u);
  EXPECT_EQ(tc.rows.size(), 10u);  // closure of the 4-edge chain

  q.request_id = 5;
  q.predicate = "lbl";
  const QueryResultResponse lbl = client.QuerySync(q);
  ASSERT_EQ(lbl.rows.size(), 1u);
  EXPECT_EQ(lbl.rows[0],
            (WireTuple{WireValue::Int(0), WireValue::Sym("hot")}));

  client.CloseSessionSync(CloseSessionRequest{6, sid});
  // The id is gone: both the wire and FindSession agree.
  client.SendSubmit(ChainBatch(7, sid, 10, 12));
  ServiceClient::Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp, 5000));
  ASSERT_EQ(resp.opcode, Opcode::kError);
  EXPECT_EQ(resp.error.code, ErrorCode::kNoSession);
  EXPECT_EQ(fx.host.FindSession(sid), nullptr);
}

TEST(ServiceServerTest, PipelinedPongOvertakesHeavySubmit) {
  ServerFixture fx;
  ServiceClient client = fx.Connect();
  OpenSessionRequest open;
  open.request_id = 1;
  open.program = kChainProgram;
  const std::uint64_t sid = client.OpenSessionSync(open);
  // A 300-edge chain makes the tc cascade emit ~45k tuples — milliseconds
  // of work, far longer than the inline PONG turnaround.
  client.SendSubmit(ChainBatch(2, sid, 0, 300));
  client.SendPing(PingRequest{3});
  ServiceClient::Response first;
  ASSERT_TRUE(client.ReadResponse(&first, 30000));
  EXPECT_EQ(first.opcode, Opcode::kPong) << "PONG should overtake the "
                                            "in-flight SUBMIT_RESULT";
  ServiceClient::Response second;
  ASSERT_TRUE(client.ReadResponse(&second, 30000));
  ASSERT_EQ(second.opcode, Opcode::kSubmitResult);
  EXPECT_EQ(second.submit_result.epoch, 1u);
}

TEST(ServiceServerTest, PipelinedSubmitsResolveInEpochOrder) {
  ServerFixture fx;
  ServiceClient client = fx.Connect();
  OpenSessionRequest open;
  open.request_id = 1;
  open.program = kChainProgram;
  open.queue_capacity = 4;  // small bound: forces parking under the blast
  open.pipeline_depth = 4;
  const std::uint64_t sid = client.OpenSessionSync(open);
  constexpr int kBatches = 24;
  for (int b = 0; b < kBatches; ++b) {
    client.SendSubmit(
        ChainBatch(static_cast<std::uint64_t>(100 + b), sid, 20 * b,
                   20 * b + 8));
  }
  for (int b = 0; b < kBatches; ++b) {
    ServiceClient::Response resp;
    ASSERT_TRUE(client.ReadResponse(&resp, 60000)) << "batch " << b;
    ASSERT_EQ(resp.opcode, Opcode::kSubmitResult) << "batch " << b;
    // Request ids echo back in send order and epochs are dense: the
    // pipelined path kept per-connection FIFO through parking + retries.
    EXPECT_EQ(resp.submit_result.request_id,
              static_cast<std::uint64_t>(100 + b));
    EXPECT_EQ(resp.submit_result.epoch, static_cast<std::uint64_t>(b + 1));
  }
}

TEST(ServiceServerTest, DisconnectMidBatchDrainsSession) {
  ServerFixture fx;
  std::uint64_t sid = 0;
  {
    ServiceClient dropper = fx.Connect();
    OpenSessionRequest open;
    open.request_id = 1;
    open.program = kChainProgram;
    sid = dropper.OpenSessionSync(open);
    for (int b = 0; b < 5; ++b) {
      dropper.SendSubmit(
          ChainBatch(static_cast<std::uint64_t>(10 + b), sid, 10 * b,
                     10 * b + 6));
    }
    dropper.Close();  // vanish without reading a single SUBMIT_RESULT
  }
  // The session is server-global: it keeps draining and stays queryable
  // from a fresh connection.  30 edges across 5 batches.
  ServiceClient prober = fx.Connect();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::size_t rows = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    QueryRequest q;
    q.request_id = 2;
    q.session_id = sid;
    q.predicate = "e";
    rows = prober.QuerySync(q).rows.size();
    if (rows == 30u) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(rows, 30u);
  EXPECT_NE(fx.host.FindSession(sid), nullptr);
}

TEST(ServiceServerTest, StopBroadcastsShutdownBeforeClosing) {
  // An orderly Stop must not look like a crashed peer: every connected
  // client — idle or mid-conversation — receives a SHUTDOWN error frame
  // (request_id 0, connection-scoped) and only then EOF.
  ServerFixture fx;
  ServiceClient idle = fx.Connect();
  ServiceClient busy = fx.Connect();
  OpenSessionRequest open;
  open.request_id = 1;
  open.program = kChainProgram;
  const std::uint64_t sid = busy.OpenSessionSync(open);
  (void)busy.SubmitSync(ChainBatch(2, sid, 0, 4));  // proven mid-protocol

  fx.server.Stop();
  for (ServiceClient* client : {&idle, &busy}) {
    ServiceClient::Response resp;
    ASSERT_TRUE(client->ReadResponse(&resp, 5000))
        << "client saw bare EOF instead of the SHUTDOWN goodbye";
    ASSERT_EQ(resp.opcode, Opcode::kError);
    EXPECT_EQ(resp.error.code, ErrorCode::kShutdown);
    EXPECT_EQ(resp.error.request_id, 0u);
    // After the goodbye the connection is done: clean EOF, no more frames.
    EXPECT_FALSE(client->ReadResponse(&resp, 2000));
  }
}

TEST(ServiceServerTest, BadRequestsAnswerWithErrors) {
  ServerFixture fx;
  ServiceClient client = fx.Connect();
  OpenSessionRequest open;
  open.request_id = 1;
  open.program = kChainProgram;
  const std::uint64_t sid = client.OpenSessionSync(open);

  // Unknown session id.
  client.SendSubmit(ChainBatch(2, sid + 1000, 0, 2));
  ServiceClient::Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp, 5000));
  ASSERT_EQ(resp.opcode, Opcode::kError);
  EXPECT_EQ(resp.error.code, ErrorCode::kNoSession);

  // Unknown predicate.
  SubmitRequest bad_pred;
  bad_pred.request_id = 3;
  bad_pred.session_id = sid;
  bad_pred.ops.push_back(Insert("nope", {WireValue::Int(1)}));
  client.SendSubmit(bad_pred);
  ASSERT_TRUE(client.ReadResponse(&resp, 5000));
  ASSERT_EQ(resp.opcode, Opcode::kError);
  EXPECT_EQ(resp.error.code, ErrorCode::kBadRequest);

  // Arity mismatch.
  SubmitRequest bad_arity;
  bad_arity.request_id = 4;
  bad_arity.session_id = sid;
  bad_arity.ops.push_back(Insert("e", {WireValue::Int(1)}));
  client.SendSubmit(bad_arity);
  ASSERT_TRUE(client.ReadResponse(&resp, 5000));
  ASSERT_EQ(resp.opcode, Opcode::kError);
  EXPECT_EQ(resp.error.code, ErrorCode::kBadRequest);

  // Bad program.
  OpenSessionRequest bad_open;
  bad_open.request_id = 5;
  bad_open.program = "tc(X, :-";
  client.SendOpenSession(bad_open);
  ASSERT_TRUE(client.ReadResponse(&resp, 5000));
  ASSERT_EQ(resp.opcode, Opcode::kError);
  EXPECT_EQ(resp.error.code, ErrorCode::kBadProgram);

  // The session survived all of it.
  const SubmitResultResponse ok = client.SubmitSync(ChainBatch(6, sid, 0, 2));
  EXPECT_EQ(ok.epoch, 1u);
}

TEST(ServiceServerTest, UnknownOpcodeClosesConnection) {
  ServerFixture fx;
  ServiceClient client = fx.Connect();
  client.SendRaw(EncodeFrame(static_cast<Opcode>(0x7E), "junk"));
  ServiceClient::Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp, 5000));
  ASSERT_EQ(resp.opcode, Opcode::kError);
  EXPECT_EQ(resp.error.code, ErrorCode::kBadOpcode);
  // Server hangs up after the ERROR frame.
  EXPECT_FALSE(client.ReadResponse(&resp, 5000));
}

TEST(ServiceServerTest, HostileLengthPrefixClosesConnection) {
  ServerFixture fx;
  ServiceClient client = fx.Connect();
  WireWriter w;
  w.U32(0xFFFFFFFFu);  // 4 GiB frame, never
  w.U8(static_cast<std::uint8_t>(Opcode::kPing));
  client.SendRaw(w.Bytes());
  ServiceClient::Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp, 5000));
  ASSERT_EQ(resp.opcode, Opcode::kError);
  EXPECT_EQ(resp.error.code, ErrorCode::kBadFrame);
  EXPECT_FALSE(client.ReadResponse(&resp, 5000));
  // The server itself is fine.
  ServiceClient again = fx.Connect();
  again.PingSync(1);
}

TEST(ServiceServerTest, EvolveRulesOverTheWire) {
  ServerFixture fx;
  ServiceClient client = fx.Connect();
  OpenSessionRequest open;
  open.request_id = 1;
  open.program = kChainProgram;
  const std::uint64_t sid = client.OpenSessionSync(open);
  (void)client.SubmitSync(ChainBatch(2, sid, 0, 4));

  // ADD_RULES: a new predicate derived from the closure appears.
  AddRulesRequest add;
  add.request_id = 3;
  add.session_id = sid;
  add.text = "reach(Y) :- tc(0, Y).";
  const RulesChangedResponse added = client.AddRulesSync(add);
  EXPECT_EQ(added.request_id, 3u);
  EXPECT_EQ(added.program_version, 2u);
  EXPECT_EQ(added.inserted, 4u);  // tc(0,1..4)
  QueryRequest q;
  q.request_id = 4;
  q.session_id = sid;
  q.predicate = "reach";
  EXPECT_EQ(client.QuerySync(q).rows.size(), 4u);

  // REMOVE_RULE: the recursive rule goes; tc collapses to the edges.
  RemoveRuleRequest remove;
  remove.request_id = 5;
  remove.session_id = sid;
  remove.text = "tc(X, Z) :- tc(X, Y), e(Y, Z).";
  const RulesChangedResponse removed = client.RemoveRuleSync(remove);
  EXPECT_EQ(removed.program_version, 3u);
  EXPECT_GT(removed.deleted, 0u);
  q.request_id = 6;
  q.predicate = "tc";
  EXPECT_EQ(client.QuerySync(q).rows.size(), 4u);
  q.request_id = 7;
  q.predicate = "reach";
  EXPECT_EQ(client.QuerySync(q).rows.size(), 1u);  // just tc(0,1)

  // Bad rule text answers BAD_RULES and leaves the session fully alive.
  AddRulesRequest bad;
  bad.request_id = 8;
  bad.session_id = sid;
  bad.text = "p(Y) :- e(X, _).";  // unsafe head variable
  client.SendAddRules(bad);
  ServiceClient::Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp, 5000));
  ASSERT_EQ(resp.opcode, Opcode::kError);
  EXPECT_EQ(resp.error.code, ErrorCode::kBadRules);
  EXPECT_EQ(resp.error.request_id, 8u);

  // Unknown session id answers NO_SESSION.
  AddRulesRequest lost;
  lost.request_id = 9;
  lost.session_id = sid + 1000;
  lost.text = "x(X) :- e(X, _).";
  client.SendAddRules(lost);
  ASSERT_TRUE(client.ReadResponse(&resp, 5000));
  ASSERT_EQ(resp.opcode, Opcode::kError);
  EXPECT_EQ(resp.error.code, ErrorCode::kNoSession);

  // The session still takes updates under the evolved program.
  const SubmitResultResponse after = client.SubmitSync(ChainBatch(10, sid, 10, 12));
  EXPECT_GT(after.epoch, 0u);
}

TEST(ServiceServerTest, EvolveInterleavedWithPipelinedSubmits) {
  ServerFixture fx;
  ServiceClient client = fx.Connect();
  OpenSessionRequest open;
  open.request_id = 1;
  open.program = kChainProgram;
  open.pipeline_depth = 4;
  const std::uint64_t sid = client.OpenSessionSync(open);
  // Blast submits, an evolve mid-stream, more submits — all pipelined on
  // one connection.  The evolve is an exclusive epoch in FIFO order, so
  // responses keep arriving per-kind in send order.
  for (int b = 0; b < 6; ++b) {
    client.SendSubmit(ChainBatch(static_cast<std::uint64_t>(100 + b), sid,
                                 10 * b, 10 * b + 6));
  }
  AddRulesRequest add;
  add.request_id = 200;
  add.session_id = sid;
  add.text = "touched(X) :- e(X, _).";
  client.SendAddRules(add);
  for (int b = 6; b < 12; ++b) {
    client.SendSubmit(ChainBatch(static_cast<std::uint64_t>(100 + b), sid,
                                 10 * b, 10 * b + 6));
  }
  int submits_seen = 0;
  bool evolve_seen = false;
  std::uint64_t last_epoch = 0;
  for (int i = 0; i < 13; ++i) {
    ServiceClient::Response resp;
    ASSERT_TRUE(client.ReadResponse(&resp, 60000)) << "response " << i;
    if (resp.opcode == Opcode::kSubmitResult) {
      EXPECT_GT(resp.submit_result.epoch, last_epoch);
      last_epoch = resp.submit_result.epoch;
      ++submits_seen;
    } else {
      ASSERT_EQ(resp.opcode, Opcode::kRulesChanged);
      EXPECT_EQ(resp.rules_changed.request_id, 200u);
      EXPECT_EQ(resp.rules_changed.program_version, 2u);
      EXPECT_GT(resp.rules_changed.epoch, last_epoch);
      last_epoch = resp.rules_changed.epoch;
      evolve_seen = true;
    }
  }
  EXPECT_EQ(submits_seen, 12);
  EXPECT_TRUE(evolve_seen);
  QueryRequest q;
  q.request_id = 300;
  q.session_id = sid;
  q.predicate = "touched";
  EXPECT_EQ(client.QuerySync(q).rows.size(), 12u * 6u);
}

TEST(ServiceServerTest, IdleConnectionsReapedActiveOnesSpared) {
  service::EngineHost host{{.workers = 2}};
  ServerOptions options;
  options.idle_timeout_ms = 150;
  ServiceServer server{host, options};
  server.Start();

  ServiceClient idle;
  idle.Connect("127.0.0.1", server.Port());
  ServiceClient active;
  active.Connect("127.0.0.1", server.Port());

  // Keep one connection chatty well past the other's deadline.
  const auto start = std::chrono::steady_clock::now();
  ServiceClient::Response reaped;
  bool saw_reap = false;
  std::uint64_t next_ping = 1;
  while (std::chrono::steady_clock::now() - start <
         std::chrono::milliseconds(1200)) {
    active.PingSync(next_ping++);
    if (!saw_reap && idle.ReadResponse(&reaped, 50)) {
      saw_reap = true;
    }
  }
  ASSERT_TRUE(saw_reap) << "idle connection was never reaped";
  ASSERT_EQ(reaped.opcode, Opcode::kError);
  EXPECT_EQ(reaped.error.code, ErrorCode::kIdleTimeout);
  EXPECT_EQ(reaped.error.request_id, 0u);
  // After the goodbye: EOF, nothing else.
  EXPECT_FALSE(idle.ReadResponse(&reaped, 500));
  EXPECT_GE(host.Metrics().Value("net.idle_reaped"), 1u);
  // The chatty connection outlived many deadlines.
  active.PingSync(next_ping);
  server.Stop();
}

TEST(ServiceServerTest, SharedSessionAcrossConnections) {
  ServerFixture fx;
  ServiceClient opener = fx.Connect();
  OpenSessionRequest open;
  open.request_id = 1;
  open.program = kChainProgram;
  const std::uint64_t sid = opener.OpenSessionSync(open);

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&fx, sid, t] {
      ServiceClient client = fx.Connect();
      for (int b = 0; b < 6; ++b) {
        const SubmitResultResponse r = client.SubmitSync(ChainBatch(
            static_cast<std::uint64_t>(t * 100 + b), sid,
            1000 * t + 10 * b, 1000 * t + 10 * b + 4));
        EXPECT_GE(r.epoch, 1u);
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  QueryRequest q;
  q.request_id = 2;
  q.session_id = sid;
  q.predicate = "e";
  EXPECT_EQ(opener.QuerySync(q).rows.size(), 4u * 6u * 4u);
}

}  // namespace
}  // namespace dsched::net
