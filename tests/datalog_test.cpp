// Unit tests for the Datalog front end: values, lexer, parser, validation,
// stratification, and relation storage.
#include <gtest/gtest.h>

#include "datalog/ast.hpp"
#include "datalog/lexer.hpp"
#include "datalog/parser.hpp"
#include "datalog/relation.hpp"
#include "datalog/stratify.hpp"
#include "datalog/validate.hpp"
#include "datalog/value.hpp"
#include "util/error.hpp"

namespace dsched::datalog {
namespace {

TEST(ValueTest, IntRoundTrip) {
  const Value v = Value::Int(-12345);
  EXPECT_TRUE(v.IsInt());
  EXPECT_FALSE(v.IsSymbol());
  EXPECT_EQ(v.AsInt(), -12345);
  EXPECT_EQ(Value::Int(0).AsInt(), 0);
  EXPECT_EQ(Value::Int(Value::kMaxInt).AsInt(), Value::kMaxInt);
  EXPECT_EQ(Value::Int(Value::kMinInt).AsInt(), Value::kMinInt);
}

TEST(ValueTest, SymbolRoundTrip) {
  SymbolTable symbols;
  const auto id = symbols.Intern("hello");
  EXPECT_EQ(symbols.Intern("hello"), id);  // stable
  const Value v = Value::Symbol(id);
  EXPECT_TRUE(v.IsSymbol());
  EXPECT_EQ(v.AsSymbol(), id);
  EXPECT_EQ(v.ToString(symbols), "hello");
  EXPECT_THROW((void)v.AsInt(), util::LogicError);
}

TEST(ValueTest, IntAndSymbolNeverEqual) {
  EXPECT_FALSE(Value::Int(3) == Value::Symbol(3));
}

TEST(ValueTest, CmpSemantics) {
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, Value::Int(1), Value::Int(2)));
  EXPECT_FALSE(EvalCmp(CmpOp::kGe, Value::Int(1), Value::Int(2)));
  EXPECT_TRUE(EvalCmp(CmpOp::kNe, Value::Int(1), Value::Int(2)));
  EXPECT_TRUE(EvalCmp(CmpOp::kEq, Value::Symbol(4), Value::Symbol(4)));
  EXPECT_THROW((void)EvalCmp(CmpOp::kLt, Value::Symbol(0), Value::Int(1)),
               util::InvalidArgument);
}

TEST(LexerTest, TokenKinds) {
  const auto tokens = Tokenize("path(X, y1) :- e(X), N >= -3. % cmt\n!");
  std::vector<TokenKind> kinds;
  for (const auto& t : tokens) {
    kinds.push_back(t.kind);
  }
  const std::vector<TokenKind> expected{
      TokenKind::kIdentifier, TokenKind::kLParen, TokenKind::kVariable,
      TokenKind::kComma,      TokenKind::kIdentifier, TokenKind::kRParen,
      TokenKind::kImplies,    TokenKind::kIdentifier, TokenKind::kLParen,
      TokenKind::kVariable,   TokenKind::kRParen, TokenKind::kComma,
      TokenKind::kVariable,   TokenKind::kGe,     TokenKind::kNumber,
      TokenKind::kPeriod,     TokenKind::kBang,   TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, TracksLines) {
  const auto tokens = Tokenize("a(x).\nb(y).");
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[4].line, 1u);  // the '.' closing the first clause
  EXPECT_EQ(tokens[5].line, 2u);  // 'b' on the second line
}

TEST(LexerTest, StringsAndErrors) {
  const auto tokens = Tokenize("p(\"hello world\").");
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[2].text, "hello world");
  EXPECT_THROW(Tokenize("p(\"unterminated"), util::ParseError);
  EXPECT_THROW(Tokenize("p(@)"), util::ParseError);
  EXPECT_THROW(Tokenize("a : b"), util::ParseError);
}

TEST(ParserTest, FactsRulesNegationComparison) {
  const Program p = ParseProgram(R"(
    edge(a, b).
    edge(b, c).
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
    lonely(X) :- node(X), !path(X, X), X != b.
  )");
  ASSERT_EQ(p.rules.size(), 5u);
  EXPECT_TRUE(p.rules[0].IsFact());
  EXPECT_FALSE(p.rules[2].IsFact());
  const Rule& lonely = p.rules[4];
  ASSERT_EQ(lonely.body.size(), 3u);
  EXPECT_TRUE(std::get<Literal>(lonely.body[1]).negated);
  EXPECT_EQ(std::get<Comparison>(lonely.body[2]).op, CmpOp::kNe);
  EXPECT_EQ(p.predicate_names[p.PredicateId("path")], "path");
  EXPECT_EQ(p.predicate_arities[p.PredicateId("lonely")], 1u);
}

TEST(ParserTest, RoundTripsThroughRuleToString) {
  const Program p = ParseProgram("big(X) :- amount(X, V), V >= 100.");
  EXPECT_EQ(RuleToString(p.rules[0], p),
            "big(X) :- amount(X, V), V >= 100.");
}

TEST(ParserTest, AnonymousVariablesAreFresh) {
  const Program p = ParseProgram("lhs(X) :- pair(X, _), pair(_, X).");
  const Rule& rule = p.rules[0];
  const auto& a1 = std::get<Literal>(rule.body[0]).atom.args[1];
  const auto& a2 = std::get<Literal>(rule.body[1]).atom.args[0];
  EXPECT_NE(a1.var, a2.var);
}

TEST(ParserTest, ArityMismatchRejected) {
  EXPECT_THROW(ParseProgram("p(a). p(a, b)."), util::ParseError);
}

TEST(ParserTest, SyntaxErrorsRejected) {
  EXPECT_THROW(ParseProgram("p(a)"), util::ParseError);       // missing '.'
  EXPECT_THROW(ParseProgram("p(a,)."), util::ParseError);     // dangling comma
  EXPECT_THROW(ParseProgram(":- p(a)."), util::ParseError);   // no head
  EXPECT_THROW(ParseProgram("p(a) :- ."), util::ParseError);  // empty body
  EXPECT_THROW(ParseProgram("P(a)."), util::ParseError);      // var as pred
}

TEST(ValidateTest, SafeProgramPasses) {
  const Program p = ParseProgram(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
  )");
  EXPECT_NO_THROW(ValidateProgram(p));
}

TEST(ValidateTest, UnboundHeadVariableRejected) {
  const Program p = ParseProgram("p(X, Y) :- q(X).");
  EXPECT_THROW(ValidateProgram(p), util::InvalidArgument);
}

TEST(ValidateTest, UnboundNegationRejected) {
  const Program p = ParseProgram("p(X) :- q(X), !r(Y).");
  EXPECT_THROW(ValidateProgram(p), util::InvalidArgument);
}

TEST(ValidateTest, UnboundComparisonRejected) {
  const Program p = ParseProgram("p(X) :- q(X), Y > 3.");
  EXPECT_THROW(ValidateProgram(p), util::InvalidArgument);
}

TEST(ValidateTest, NonGroundFactRejected) {
  const Program p = ParseProgram("p(X).");
  EXPECT_THROW(ValidateProgram(p), util::InvalidArgument);
}

TEST(StratifyTest, TransitiveClosureOneRecursiveComponent) {
  const Program p = ParseProgram(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
  )");
  const Stratification s = Stratify(p);
  const auto e = p.PredicateId("e");
  const auto tc = p.PredicateId("tc");
  EXPECT_NE(s.component_of[e], s.component_of[tc]);
  EXPECT_TRUE(s.component_recursive[s.component_of[tc]]);
  EXPECT_FALSE(s.component_recursive[s.component_of[e]]);
  // e's component precedes tc's in the order.
  std::size_t pos_e = 0;
  std::size_t pos_tc = 0;
  for (std::size_t i = 0; i < s.component_order.size(); ++i) {
    if (s.component_order[i] == s.component_of[e]) {
      pos_e = i;
    }
    if (s.component_order[i] == s.component_of[tc]) {
      pos_tc = i;
    }
  }
  EXPECT_LT(pos_e, pos_tc);
}

TEST(StratifyTest, MutualRecursionSharesComponent) {
  const Program p = ParseProgram(R"(
    even(X) :- zero(X).
    even(Y) :- odd(X), succ(X, Y).
    odd(Y) :- even(X), succ(X, Y).
  )");
  const Stratification s = Stratify(p);
  EXPECT_EQ(s.component_of[p.PredicateId("even")],
            s.component_of[p.PredicateId("odd")]);
  EXPECT_TRUE(s.component_recursive[s.component_of[p.PredicateId("even")]]);
}

TEST(StratifyTest, NegationRaisesStratum) {
  const Program p = ParseProgram(R"(
    reach(X) :- start(X).
    reach(Y) :- reach(X), e(X, Y).
    unreached(X) :- node(X), !reach(X).
  )");
  const Stratification s = Stratify(p);
  const auto reach = s.component_of[p.PredicateId("reach")];
  const auto unreached = s.component_of[p.PredicateId("unreached")];
  EXPECT_GT(s.component_stratum[unreached], s.component_stratum[reach]);
}

TEST(StratifyTest, NegationThroughRecursionRejected) {
  const Program p = ParseProgram(R"(
    win(X) :- move(X, Y), !win(Y).
  )");
  EXPECT_THROW(Stratify(p), util::InvalidArgument);
}

TEST(RelationTest, InsertEraseContains) {
  Relation r(2);
  const Tuple t1{Value::Int(1), Value::Int(2)};
  const Tuple t2{Value::Int(3), Value::Int(4)};
  EXPECT_TRUE(r.Insert(t1));
  EXPECT_FALSE(r.Insert(t1));  // duplicate
  EXPECT_TRUE(r.Insert(t2));
  EXPECT_EQ(r.Size(), 2u);
  EXPECT_TRUE(r.Contains(t1));
  EXPECT_TRUE(r.Erase(t1));
  EXPECT_FALSE(r.Erase(t1));
  EXPECT_FALSE(r.Contains(t1));
  EXPECT_TRUE(r.Contains(t2));  // swap-removal kept t2 intact
  EXPECT_EQ(r.Size(), 1u);
}

TEST(RelationTest, VersionAdvancesOnChange) {
  Relation r(1);
  const auto v0 = r.Version();
  r.Insert({Value::Int(1)});
  EXPECT_GT(r.Version(), v0);
  const auto v1 = r.Version();
  r.Insert({Value::Int(1)});  // no-op
  EXPECT_EQ(r.Version(), v1);
}

TEST(RelationTest, ArityEnforced) {
  Relation r(2);
  EXPECT_THROW(r.Insert({Value::Int(1)}), util::LogicError);
}

TEST(RelationStoreTest, LookupFindsMatchingRows) {
  const Program p = ParseProgram("e(a, b). e(a, c). e(b, c).");
  RelationStore store(p);
  const auto e = p.PredicateId("e");
  const Value a = Value::Symbol(0);  // "a" interned first
  store.Of(e).Insert({a, Value::Symbol(1)});
  store.Of(e).Insert({a, Value::Symbol(2)});
  store.Of(e).Insert({Value::Symbol(1), Value::Symbol(2)});
  const auto rows = store.Lookup(e, {0}, {a});
  EXPECT_EQ(rows.size(), 2u);
  // Full-scan lookup: empty column set matches everything.
  EXPECT_EQ(store.Lookup(e, {}, {}).size(), 3u);
  // Index refreshes after mutation.
  store.Of(e).Insert({a, Value::Symbol(3)});
  EXPECT_EQ(store.Lookup(e, {0}, {a}).size(), 3u);
}

}  // namespace
}  // namespace dsched::datalog
