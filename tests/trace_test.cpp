// Unit tests for the trace module: model, cascade, I/O, generators.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/digraph_builder.hpp"
#include "graph/levels.hpp"
#include "trace/cascade.hpp"
#include "trace/generators.hpp"
#include "trace/job_trace.hpp"
#include "trace/table_traces.hpp"
#include "trace/trace_io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsched::trace {
namespace {

TEST(JobTraceTest, ValidatesInputs) {
  graph::DigraphBuilder b(2);
  b.AddEdge(0, 1);
  std::vector<TaskInfo> infos(2);
  EXPECT_NO_THROW(JobTrace("t", std::move(b).Build(), infos, {0}));

  graph::DigraphBuilder b2(2);
  b2.AddEdge(0, 1);
  std::vector<TaskInfo> wrong_count(1);
  EXPECT_THROW(JobTrace("t", std::move(b2).Build(), wrong_count, {}),
               util::LogicError);
}

TEST(JobTraceTest, RejectsSpanAboveWork) {
  graph::DigraphBuilder b(1);
  std::vector<TaskInfo> infos(1);
  infos[0].work = 1.0;
  infos[0].span = 2.0;
  EXPECT_THROW(JobTrace("t", std::move(b).Build(), infos, {}),
               util::LogicError);
}

TEST(JobTraceTest, DirtyDeduplicatedAndSorted) {
  graph::DigraphBuilder b(3);
  std::vector<TaskInfo> infos(3);
  const JobTrace trace("t", std::move(b).Build(), infos, {2, 0, 2});
  EXPECT_EQ(trace.InitialDirty(), (std::vector<TaskId>{0, 2}));
}

TEST(CascadeTest, ChainFullyActivates) {
  const JobTrace trace = MakeChain(5);
  const Cascade cascade = ComputeCascade(trace);
  EXPECT_EQ(cascade.NumActive(), 5u);
  EXPECT_EQ(cascade.activated_descendants, 4u);
  EXPECT_EQ(cascade.active_edges, 4u);
  EXPECT_DOUBLE_EQ(cascade.total_active_work, 5.0);
}

TEST(CascadeTest, ChangeBitsStopPropagation) {
  // 0 -> 1 -> 2; node 1 is activated but its output does not change, so 2
  // stays inactive — H is not the induced subgraph (paper Section II-A).
  graph::DigraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  std::vector<TaskInfo> infos(3);
  infos[1].output_changes = false;
  const JobTrace trace("t", std::move(b).Build(), infos, {0});
  const Cascade cascade = ComputeCascade(trace);
  EXPECT_TRUE(cascade.active[0]);
  EXPECT_TRUE(cascade.active[1]);
  EXPECT_FALSE(cascade.active[2]);
  EXPECT_EQ(cascade.active_edges, 1u);
  EXPECT_EQ(cascade.total_descendants, 2u);
}

TEST(CascadeTest, MultiParentActivation) {
  // 0 -> 2, 1 -> 2; only source 0 dirty and not changing: 2 inactive.
  graph::DigraphBuilder b(3);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  std::vector<TaskInfo> infos(3);
  infos[0].output_changes = false;
  const JobTrace trace("t", std::move(b).Build(), infos, {0});
  const Cascade cascade = ComputeCascade(trace);
  EXPECT_FALSE(cascade.active[2]);
  EXPECT_FALSE(cascade.active[1]);
  EXPECT_EQ(cascade.NumActive(), 1u);
}

TEST(CascadeTest, EmptyDirtySetMeansNothingActive) {
  const JobTrace trace("t", graph::Dag(), {}, {});
  const Cascade cascade = ComputeCascade(trace);
  EXPECT_EQ(cascade.NumActive(), 0u);
}

TEST(TraceIoTest, RoundTrip) {
  util::Rng rng(5);
  DurationModel durations;
  const JobTrace original =
      MakeRandomDag(40, 0.1, 0.2, 0.7, rng, durations);
  std::stringstream stream;
  WriteTrace(stream, original);
  const JobTrace loaded = ReadTrace(stream);
  EXPECT_EQ(loaded.NumNodes(), original.NumNodes());
  EXPECT_EQ(loaded.NumEdges(), original.NumEdges());
  EXPECT_EQ(loaded.InitialDirty(), original.InitialDirty());
  for (std::size_t v = 0; v < original.NumNodes(); ++v) {
    const TaskInfo& a = original.Info(static_cast<TaskId>(v));
    const TaskInfo& b = loaded.Info(static_cast<TaskId>(v));
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_DOUBLE_EQ(a.work, b.work);
    EXPECT_DOUBLE_EQ(a.span, b.span);
    EXPECT_EQ(a.output_changes, b.output_changes);
  }
}

TEST(TraceIoTest, RejectsMalformedInput) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return ReadTrace(in);
  };
  EXPECT_THROW(parse(""), util::ParseError);
  EXPECT_THROW(parse("wrong-magic v1\n"), util::ParseError);
  EXPECT_THROW(parse("dsched-trace v1\nedge 0 1\n"), util::ParseError);
  EXPECT_THROW(parse("dsched-trace v1\nnodes 2\nedge 0 5\n"),
               util::ParseError);
  EXPECT_THROW(parse("dsched-trace v1\nnodes 2\nnode 0 X 1 1 1\n"),
               util::ParseError);
  EXPECT_THROW(parse("dsched-trace v1\nnodes 2\nbogus 1\n"),
               util::ParseError);
}

TEST(TraceIoTest, CommentsAndDefaultsAccepted) {
  std::istringstream in(
      "dsched-trace v1\n"
      "# a comment\n"
      "name demo\n"
      "nodes 3\n"
      "node 1 C 0 0 0\n"
      "edge 0 1\n"
      "edge 1 2\n"
      "dirty 0\n");
  const JobTrace trace = ReadTrace(in);
  EXPECT_EQ(trace.Name(), "demo");
  EXPECT_EQ(trace.Info(0).kind, NodeKind::kTask);
  EXPECT_EQ(trace.Info(1).kind, NodeKind::kCollector);
  EXPECT_DOUBLE_EQ(trace.Info(0).work, 1.0);
}

TEST(GeneratorTest, TightExampleShape) {
  const std::size_t levels = 10;
  const JobTrace trace = MakeTightExample(levels);
  EXPECT_EQ(trace.NumNodes(), 2 * levels - 1);
  const graph::LevelMap level_map(trace.Graph());
  EXPECT_EQ(level_map.NumLevels(), levels);
  // k_i sits at the same level as j_i (both children of j_{i-1}).
  for (std::size_t i = 2; i <= levels; ++i) {
    const auto k = static_cast<TaskId>(levels + i - 2);
    EXPECT_EQ(level_map.LevelOf(k), i - 1);
    EXPECT_DOUBLE_EQ(trace.Info(k).work,
                     static_cast<double>(levels - i + 1));
    EXPECT_DOUBLE_EQ(trace.Info(k).span, trace.Info(k).work);
  }
  // Everything activates.
  const Cascade cascade = ComputeCascade(trace);
  EXPECT_EQ(cascade.NumActive(), trace.NumNodes());
}

TEST(GeneratorTest, PathologicalScanShape) {
  const JobTrace trace = MakePathologicalScan(20, 50);
  EXPECT_EQ(trace.NumNodes(), 1 + 20 + 50);
  const Cascade cascade = ComputeCascade(trace);
  EXPECT_EQ(cascade.NumActive(), trace.NumNodes());
  const graph::LevelMap levels(trace.Graph());
  // Leaves hang off the chain tail: level = chain length + 1.
  EXPECT_EQ(levels.NumLevels(), 22u);
}

TEST(GeneratorTest, ChainAndFork) {
  EXPECT_EQ(MakeChain(7).NumEdges(), 6u);
  EXPECT_EQ(MakeFork(7).NumEdges(), 7u);
  EXPECT_THROW(MakeChain(0), util::LogicError);
}

TEST(GeneratorTest, LevelWidthsPartition) {
  util::Rng rng(11);
  const auto widths = MakeLevelWidths(1000, 17, 100, rng);
  EXPECT_EQ(widths.size(), 17u);
  EXPECT_EQ(widths[0], 100u);
  std::size_t total = 0;
  for (const auto w : widths) {
    EXPECT_GE(w, 1u);
    total += w;
  }
  EXPECT_EQ(total, 1000u);
}

TEST(GeneratorTest, LayeredHitsExactStructure) {
  util::Rng rng(13);
  LayeredDagSpec spec;
  spec.name = "layered-test";
  spec.level_widths = MakeLevelWidths(2000, 25, 300, rng);
  spec.extra_edges = 1500;
  spec.initial_dirty = 10;
  spec.target_active = 200;
  spec.seed = 99;
  const JobTrace trace = GenerateLayered(spec);
  EXPECT_EQ(trace.NumNodes(), 2000u);
  // Spine + extra, exactly.
  EXPECT_EQ(trace.NumEdges(), (2000u - 300u) + 1500u);
  EXPECT_EQ(trace.InitialDirty().size(), 10u);
  const graph::LevelMap levels(trace.Graph());
  EXPECT_EQ(levels.NumLevels(), 25u);
  // Calibration: within 25% of the target.
  const Cascade cascade = ComputeCascade(trace);
  EXPECT_GT(cascade.activated_descendants, 150u);
  EXPECT_LT(cascade.activated_descendants, 260u);
}

TEST(GeneratorTest, LayeredIsDeterministic) {
  LayeredDagSpec spec;
  util::Rng rng(17);
  spec.level_widths = MakeLevelWidths(500, 10, 60, rng);
  spec.extra_edges = 200;
  spec.initial_dirty = 5;
  spec.target_active = 50;
  spec.seed = 4242;
  const JobTrace a = GenerateLayered(spec);
  const JobTrace b = GenerateLayered(spec);
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  const Cascade ca = ComputeCascade(a);
  const Cascade cb = ComputeCascade(b);
  EXPECT_EQ(ca.active_nodes, cb.active_nodes);
}

TEST(GeneratorTest, CalibrationMonotoneSearchHitsTargets) {
  // Calibration on a simple layered graph should land near very different
  // targets from the same topology.
  util::Rng rng(19);
  for (const std::size_t target : {30u, 150u, 400u}) {
    LayeredDagSpec spec;
    spec.level_widths = MakeLevelWidths(1200, 12, 200, rng);
    spec.extra_edges = 900;
    spec.initial_dirty = 40;
    spec.target_active = target;
    spec.seed = 1000 + target;
    const JobTrace trace = GenerateLayered(spec);
    const Cascade cascade = ComputeCascade(trace);
    const double achieved = static_cast<double>(cascade.activated_descendants);
    EXPECT_GT(achieved, 0.6 * static_cast<double>(target));
    EXPECT_LT(achieved, 1.6 * static_cast<double>(target));
  }
}

TEST(TableTracesTest, SpecsMatchPaperRows) {
  const auto& rows = PaperTable1();
  ASSERT_EQ(rows.size(), 11u);
  EXPECT_EQ(rows[0].nodes, 64910u);
  EXPECT_EQ(rows[0].edges, 101327u);
  EXPECT_EQ(rows[0].initial_tasks, 5u);
  EXPECT_EQ(rows[0].active_jobs, 532u);
  EXPECT_EQ(rows[0].levels, 171u);
  EXPECT_EQ(rows[5].nodes, 379500u);
  EXPECT_EQ(rows[10].levels, 5u);
  EXPECT_THROW((void)PaperTrace(0), util::LogicError);
  EXPECT_THROW((void)PaperTrace(12), util::LogicError);
}

TEST(TableTracesTest, ScaledTraceMatchesRowShape) {
  // Scale 1/20 of trace #5 (the smallest) keeps all columns proportional.
  const JobTrace trace = MakeTableTrace(5, 1.0);
  const AchievedRow row = MeasureRow(trace);
  const TableTraceSpec& spec = PaperTrace(5);
  EXPECT_EQ(row.nodes, spec.nodes);
  EXPECT_EQ(row.levels, spec.levels);
  EXPECT_EQ(row.initial_tasks, spec.initial_tasks);
  EXPECT_NEAR(static_cast<double>(row.edges),
              static_cast<double>(spec.edges),
              0.02 * static_cast<double>(spec.edges));
  EXPECT_NEAR(static_cast<double>(row.active_jobs),
              static_cast<double>(spec.active_jobs),
              0.35 * static_cast<double>(spec.active_jobs));
}

TEST(DurationModelTest, DrawRespectsBoundsAndSpan) {
  util::Rng rng(23);
  DurationModel model;
  model.median_seconds = 0.1;
  model.min_seconds = 0.01;
  model.max_seconds = 1.0;
  model.sequential_fraction = 0.5;
  model.parallel_span_factor = 0.2;
  for (int i = 0; i < 500; ++i) {
    const auto [work, span] = model.Draw(rng);
    EXPECT_GE(work, 0.01);
    EXPECT_LE(work, 1.0);
    EXPECT_LE(span, work + 1e-12);
    EXPECT_GT(span, 0.0);
  }
}

}  // namespace
}  // namespace dsched::trace
