// Tests for the parallel incremental-maintenance engine: the per-component
// DRed phases run as real task bodies on worker threads, ordered by the
// library's schedulers — the final store must be bit-identical to the
// sequential engine and to a from-scratch evaluation, for every scheduler
// and worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datalog/database.hpp"
#include "datalog/eval.hpp"
#include "datalog/parallel_update.hpp"
#include "datalog/parser.hpp"
#include "datalog/stratify.hpp"
#include "datalog/validate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "wide_program_fixture.hpp"

namespace dsched::datalog {
namespace {

// The program, fixture, and update generator live in the shared header —
// the stress and service tests drive the same shapes.
using dsched::testing::ExpectStoresEqual;
using dsched::testing::RandomUpdate;
using dsched::testing::Sorted;
using Fixture = dsched::testing::WideFixture;

TEST(ParallelUpdateTest, MatchesSequentialAcrossSchedulers) {
  for (const char* spec : {"hybrid", "levelbased", "lbl:4", "logicblox",
                           "signal"}) {
    util::Rng rng(777);
    Fixture sequential;
    sequential.Base(rng, 10, 0.15);
    util::Rng rng2(777);
    Fixture parallel;
    parallel.Base(rng2, 10, 0.15);

    IncrementalEngine engine(sequential.program, sequential.strat,
                             sequential.store);
    util::Rng update_rng(4242);
    for (int batch = 0; batch < 4; ++batch) {
      const UpdateRequest request =
          RandomUpdate(sequential.program, update_rng, 10);
      const UpdateResult seq_result = engine.Apply(request);
      ParallelUpdateOptions options;
      options.scheduler_spec = spec;
      options.workers = 3;
      const ParallelUpdateResult par_result = ApplyParallel(
          parallel.program, parallel.strat, parallel.store, request, options);
      ExpectStoresEqual(sequential.program, sequential.store, parallel.store,
                        spec);
      EXPECT_EQ(par_result.update.total_inserted, seq_result.total_inserted)
          << spec << " batch " << batch;
      EXPECT_EQ(par_result.update.total_deleted, seq_result.total_deleted)
          << spec << " batch " << batch;
    }
  }
}

TEST(ParallelUpdateTest, MatchesFromScratchAcrossWorkerCounts) {
  for (const std::size_t workers : {1u, 2u, 8u}) {
    util::Rng rng(991);
    Fixture parallel;
    parallel.Base(rng, 9, 0.18);

    std::set<std::pair<int, int>> edges;
    const auto e = parallel.program.PredicateId("e");
    for (const Tuple& t : parallel.store.Of(e).Tuples()) {
      edges.emplace(static_cast<int>(t[0].AsInt()),
                    static_cast<int>(t[1].AsInt()));
    }
    std::set<int> marks;
    const auto mark = parallel.program.PredicateId("mark");
    for (const Tuple& t : parallel.store.Of(mark).Tuples()) {
      marks.insert(static_cast<int>(t[0].AsInt()));
    }

    util::Rng update_rng(17);
    for (int batch = 0; batch < 3; ++batch) {
      const UpdateRequest request =
          RandomUpdate(parallel.program, update_rng, 9);
      ParallelUpdateOptions options;
      options.workers = workers;
      (void)ApplyParallel(parallel.program, parallel.strat, parallel.store,
                          request, options);
      // Track the reference base.
      for (const auto& [pred, tuple] : request.insertions) {
        if (pred == e) {
          edges.emplace(static_cast<int>(tuple[0].AsInt()),
                        static_cast<int>(tuple[1].AsInt()));
        } else if (pred == mark) {
          marks.insert(static_cast<int>(tuple[0].AsInt()));
        }
      }
      for (const auto& [pred, tuple] : request.deletions) {
        if (pred == e) {
          edges.erase({static_cast<int>(tuple[0].AsInt()),
                       static_cast<int>(tuple[1].AsInt())});
        } else if (pred == mark) {
          marks.erase(static_cast<int>(tuple[0].AsInt()));
        }
      }
      // From-scratch reference.
      RelationStore fresh(parallel.program);
      for (int i = 0; i < 9; ++i) {
        fresh.Of(parallel.program.PredicateId("n")).Insert({Value::Int(i)});
      }
      for (const auto& [i, j] : edges) {
        fresh.Of(e).Insert({Value::Int(i), Value::Int(j)});
      }
      for (const int m : marks) {
        fresh.Of(mark).Insert({Value::Int(m)});
      }
      EvaluateProgram(parallel.program, parallel.strat, fresh);
      ExpectStoresEqual(parallel.program, parallel.store, fresh,
                        "vs-from-scratch");
    }
  }
}

TEST(ParallelUpdateTest, ExecutesOnlyTouchedComponents) {
  Fixture fixture;
  util::Rng rng(55);
  fixture.Base(rng, 8, 0.2);
  // Touch only `mark`: the tc/revtc chains must stay untouched.
  UpdateRequest request;
  request.insertions.emplace_back(fixture.program.PredicateId("mark"),
                                  Tuple{Value::Int(7)});
  const ParallelUpdateResult result = ApplyParallel(
      fixture.program, fixture.strat, fixture.store, request, {});
  const auto tc_comp =
      fixture.strat.component_of[fixture.program.PredicateId("tc")];
  for (const ComponentUpdateStats& c : result.update.components) {
    if (c.component == tc_comp) {
      EXPECT_FALSE(c.input_changed);
    }
  }
  // Far fewer executor tasks than nodes in the DAG.
  EXPECT_LT(result.run.executed, result.trace.NumNodes());
  EXPECT_GT(result.run.executed, 0u);
}

TEST(ParallelUpdateTest, ReportsExecutorStats) {
  Fixture fixture;
  util::Rng rng(66);
  fixture.Base(rng, 8, 0.2);
  UpdateRequest request;
  request.insertions.emplace_back(fixture.program.PredicateId("e"),
                                  Tuple{Value::Int(0), Value::Int(7)});
  const ParallelUpdateResult result = ApplyParallel(
      fixture.program, fixture.strat, fixture.store, request, {});
  EXPECT_GT(result.run.executed, 0u);
  EXPECT_GT(result.run.wall_seconds, 0.0);
  EXPECT_EQ(result.update.components.size(), fixture.strat.NumComponents());
}

TEST(ParallelUpdateTest, OracleSpecRejected) {
  Fixture fixture;
  util::Rng rng(77);
  fixture.Base(rng, 5, 0.2);
  UpdateRequest request;
  request.insertions.emplace_back(fixture.program.PredicateId("mark"),
                                  Tuple{Value::Int(1)});
  ParallelUpdateOptions options;
  options.scheduler_spec = "oracle";
  EXPECT_THROW((void)ApplyParallel(fixture.program, fixture.strat,
                                   fixture.store, request, options),
               util::LogicError);
}

TEST(ParallelUpdateTest, DatabaseFacade) {
  Database db(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
  )");
  for (int i = 0; i + 1 < 8; ++i) {
    db.Insert("e", {Value::Int(i), Value::Int(i + 1)});
  }
  db.Materialize();
  auto update = db.MakeUpdate();
  update.Insert("e", {Value::Int(7), Value::Int(0)});  // close the cycle? no —
  // e(7,0) creates tc pairs but the DAG of *components* stays acyclic.
  const UpdateResult result = db.ApplyParallel(update);
  EXPECT_GT(result.total_inserted, 0u);
  EXPECT_TRUE(db.Contains("tc", {Value::Int(0), Value::Int(0)}));
}

}  // namespace
}  // namespace dsched::datalog
