// Unit tests for the memory-bounded meta-scheduler A' (DESIGN.md §14):
// the ceil(P/2) worker split, the zeta/2 kill rule on the heuristic
// lane's footprint (structures + running-task resource_utility), single
// dispatch across lanes, the P==1 liveness fallback, and the
// "meta(<heuristic>,<zeta_bytes>)" factory spec with its error texts.
#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/digraph_builder.hpp"
#include "sched/factory.hpp"
#include "sched/level_based.hpp"
#include "sched/logicblox.hpp"
#include "sched/meta.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "trace/cascade.hpp"
#include "trace/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsched::sched {
namespace {

/// A heuristic with a dial-a-size footprint that never offers work.  Lets
/// tests drive the kill rule and the liveness fallback deterministically,
/// independent of any real policy's index sizes.
class StubHeuristic : public Scheduler {
 public:
  explicit StubHeuristic(std::size_t bytes) : bytes_(bytes) {}
  [[nodiscard]] std::string_view Name() const override { return "Stub"; }
  void Prepare(const SchedulerContext& /*ctx*/) override {}
  void OnActivated(TaskId /*t*/) override {}
  void OnStarted(TaskId /*t*/) override {}
  void OnCompleted(TaskId /*t*/, bool /*output_changed*/) override {}
  [[nodiscard]] TaskId PopReady() override { return util::kInvalidTask; }
  [[nodiscard]] SchedulerOpCounts OpCounts() const override {
    SchedulerOpCounts counts;
    counts.queue_scans = 7;  // distinctive marker for the merge test
    return counts;
  }
  [[nodiscard]] std::size_t MemoryBytes() const override { return bytes_; }
  void SetBytes(std::size_t bytes) { bytes_ = bytes; }

 private:
  std::size_t bytes_;
};

/// One dirty root fanning into `leaves` children, each child holding
/// `utility` bytes of modelled live state while running.
trace::JobTrace MakeHoard(std::size_t leaves, std::uint64_t utility) {
  graph::DigraphBuilder b(leaves + 1);
  std::vector<trace::TaskInfo> infos(leaves + 1);
  for (TaskId leaf = 1; leaf <= leaves; ++leaf) {
    b.AddEdge(0, leaf);
    infos[leaf].resource_utility = utility;
  }
  return {"hoard", std::move(b).Build(), std::move(infos), {0}};
}

TEST(MetaSchedulerTest, NameAndWorkerSplit) {
  MetaScheduler meta(std::make_unique<LogicBloxScheduler>(), 1024);
  EXPECT_EQ(meta.Name(), "Meta(LogicBlox+LevelBased,zeta=1024)");
  EXPECT_EQ(meta.Zeta(), 1024u);
  const trace::JobTrace trace = trace::MakeChain(2);
  meta.Prepare({&trace, 5});
  EXPECT_EQ(meta.HeuristicLaneCap(), 3u);  // ceil(5/2)
  EXPECT_EQ(meta.LevelBasedLaneCap(), 2u);

  MetaScheduler even(std::make_unique<LogicBloxScheduler>(), 0);
  even.Prepare({&trace, 4});
  EXPECT_EQ(even.HeuristicLaneCap(), 2u);
  EXPECT_EQ(even.LevelBasedLaneCap(), 2u);

  MetaScheduler solo(std::make_unique<LogicBloxScheduler>(), 0);
  solo.Prepare({&trace, 1});
  EXPECT_EQ(solo.HeuristicLaneCap(), 1u);
  EXPECT_EQ(solo.LevelBasedLaneCap(), 0u);
}

TEST(MetaSchedulerTest, LaneCapsBoundConcurrentPopsWithoutDoubleDispatch) {
  // Fork with the root done: 16 ready leaves, P=4 (2 heuristic + 2
  // LevelBased).  Exactly 4 pops may succeed before a completion, and no
  // task may ever be popped twice.
  const trace::JobTrace trace = trace::MakeFork(16);
  MetaScheduler meta(std::make_unique<LogicBloxScheduler>(), 0);
  meta.Prepare({&trace, 4});
  meta.OnActivated(0);
  ASSERT_EQ(meta.PopReady(), 0u);
  meta.OnStarted(0);
  for (TaskId leaf = 1; leaf <= 16; ++leaf) {
    meta.OnActivated(leaf);
  }
  meta.OnCompleted(0, true);

  std::set<TaskId> popped{0};
  std::vector<TaskId> running;
  for (int i = 0; i < 4; ++i) {
    const TaskId t = meta.PopReady();
    ASSERT_NE(t, util::kInvalidTask);
    EXPECT_TRUE(popped.insert(t).second) << "task " << t << " popped twice";
    meta.OnStarted(t);
    running.push_back(t);
  }
  // Both lanes are at their worker shares now.
  EXPECT_EQ(meta.PopReady(), util::kInvalidTask);
  // A completion frees one slot — exactly one more pop succeeds.
  meta.OnCompleted(running.back(), true);
  running.pop_back();
  const TaskId next = meta.PopReady();
  ASSERT_NE(next, util::kInvalidTask);
  EXPECT_TRUE(popped.insert(next).second);
  meta.OnStarted(next);
  running.push_back(next);
  // Drain the rest; every leaf must be dispatched exactly once.
  while (true) {
    for (const TaskId t : running) {
      meta.OnCompleted(t, true);
    }
    running.clear();
    TaskId t = util::kInvalidTask;
    while ((t = meta.PopReady()) != util::kInvalidTask) {
      EXPECT_TRUE(popped.insert(t).second) << "task " << t << " popped twice";
      meta.OnStarted(t);
      running.push_back(t);
    }
    if (running.empty()) {
      break;
    }
  }
  EXPECT_EQ(popped.size(), 17u);
  EXPECT_FALSE(meta.HeuristicKilled());
  EXPECT_EQ(meta.Kills(), 0u);
}

TEST(MetaSchedulerTest, BatchPopRespectsCapsAndSingleDispatch) {
  const trace::JobTrace trace = trace::MakeFork(16);
  MetaScheduler meta(std::make_unique<LogicBloxScheduler>(), 0);
  meta.Prepare({&trace, 4});
  meta.OnActivated(0);
  std::vector<TaskId> batch;
  ASSERT_EQ(meta.PopReadyBatch(batch, 64), 1u);  // only the root is active
  ASSERT_EQ(batch.front(), 0u);
  for (TaskId leaf = 1; leaf <= 16; ++leaf) {
    meta.OnActivated(leaf);
  }
  meta.OnCompleted(0, true);

  std::set<TaskId> popped{0};
  batch.clear();
  // 16 ready leaves but only 4 worker slots: the batch must stop at the
  // combined lane caps even with a larger max.
  EXPECT_EQ(meta.PopReadyBatch(batch, 64), 4u);
  while (!batch.empty()) {
    for (const TaskId t : batch) {
      EXPECT_TRUE(popped.insert(t).second) << "task " << t << " popped twice";
    }
    for (const TaskId t : batch) {
      meta.OnCompleted(t, true);
    }
    batch.clear();
    meta.PopReadyBatch(batch, 64);
  }
  EXPECT_EQ(popped.size(), 17u);
}

TEST(MetaSchedulerTest, RunningUtilityTriggersKill) {
  // The footprint that crosses zeta/2 comes from the accounting plane —
  // the resource_utility of a running heuristic-lane task — not from the
  // heuristic's own index memory.
  const trace::JobTrace trace = MakeHoard(4, 1u << 20);
  LogicBloxScheduler probe;
  probe.Prepare({&trace, 2});
  const std::uint64_t index_bytes = probe.MemoryBytes();
  // zeta/2 sits half a MiB above the index size: Prepare survives, the
  // first 1 MiB heuristic-lane dispatch does not.
  const std::uint64_t zeta = 2 * (index_bytes + (1u << 19));
  MetaScheduler meta(std::make_unique<LogicBloxScheduler>(), zeta);
  meta.Prepare({&trace, 2});
  ASSERT_FALSE(meta.HeuristicKilled());

  meta.OnActivated(0);
  ASSERT_EQ(meta.PopReady(), 0u);  // LevelBased lane takes the root
  meta.OnStarted(0);
  for (TaskId leaf = 1; leaf <= 4; ++leaf) {
    meta.OnActivated(leaf);
  }
  meta.OnCompleted(0, true);

  std::set<TaskId> popped{0};
  const TaskId lb_leaf = meta.PopReady();  // LevelBased lane, cap 1
  ASSERT_NE(lb_leaf, util::kInvalidTask);
  popped.insert(lb_leaf);
  meta.OnStarted(lb_leaf);
  ASSERT_FALSE(meta.HeuristicKilled());
  // The heuristic lane's pop acquires 1 MiB of running utility and the
  // kill rule fires inside the same PopReady — but the popped task is
  // still returned and owned (no lost dispatch).
  const TaskId heur_leaf = meta.PopReady();
  ASSERT_NE(heur_leaf, util::kInvalidTask);
  popped.insert(heur_leaf);
  meta.OnStarted(heur_leaf);
  EXPECT_TRUE(meta.HeuristicKilled());
  EXPECT_EQ(meta.Kills(), 1u);
  EXPECT_GT(meta.HeuristicHighWaterBytes(), zeta / 2);
  // LevelBased inherits every worker.
  EXPECT_EQ(meta.LevelBasedLaneCap(), 2u);

  // The two remaining leaves drain through LevelBased; the task the dead
  // heuristic lane owned completes without incident.
  std::vector<TaskId> running{lb_leaf, heur_leaf};
  while (true) {
    for (const TaskId t : running) {
      meta.OnCompleted(t, true);
    }
    running.clear();
    TaskId t = util::kInvalidTask;
    while ((t = meta.PopReady()) != util::kInvalidTask) {
      EXPECT_TRUE(popped.insert(t).second) << "task " << t << " popped twice";
      meta.OnStarted(t);
      running.push_back(t);
    }
    if (running.empty()) {
      break;
    }
  }
  EXPECT_EQ(popped.size(), 5u);
  // The op-count snapshot taken at the kill keeps the heuristic's pops in
  // the merged totals: 5 successful pops happened across both lanes.
  EXPECT_EQ(meta.OpCounts().pops, 5u);
}

TEST(MetaSchedulerTest, StructureGrowthTriggersKillAndFreesMemory) {
  const trace::JobTrace trace = trace::MakeChain(4);
  auto stub = std::make_unique<StubHeuristic>(100);
  StubHeuristic* raw = stub.get();
  MetaScheduler meta(std::move(stub), 4096);  // kill threshold 2048
  meta.Prepare({&trace, 2});
  ASSERT_FALSE(meta.HeuristicKilled());

  meta.OnActivated(0);
  raw->SetBytes(10'000);  // the heuristic's structures balloon past zeta/2
  const std::size_t before = meta.MemoryBytes();
  const TaskId t = meta.PopReady();  // CheckKill runs on entry
  EXPECT_TRUE(meta.HeuristicKilled());
  // raw dangles from here on — the kill destroys the heuristic, which is
  // the point: the O(zeta) bound needs the memory actually freed.
  EXPECT_LT(meta.MemoryBytes() + 9'000, before);
  EXPECT_GE(meta.HeuristicHighWaterBytes(), 10'000u);
  // The snapshot preserves the dead lane's op counts.
  EXPECT_EQ(meta.OpCounts().queue_scans, 7u);
  // The chain still runs to completion on the LevelBased survivor.
  ASSERT_EQ(t, 0u);
  meta.OnStarted(t);
  meta.OnActivated(1);
  meta.OnCompleted(0, true);
  EXPECT_EQ(meta.PopReady(), 1u);
}

TEST(MetaSchedulerTest, ZetaZeroNeverKills) {
  const trace::JobTrace trace = trace::MakeChain(2);
  MetaScheduler meta(std::make_unique<StubHeuristic>(1u << 30), 0);
  meta.Prepare({&trace, 2});
  meta.OnActivated(0);
  (void)meta.PopReady();
  EXPECT_FALSE(meta.HeuristicKilled());
  EXPECT_EQ(meta.Kills(), 0u);
  EXPECT_GE(meta.HeuristicHighWaterBytes(), 1u << 30);  // still tracked
}

TEST(MetaSchedulerTest, PrepareTimeKillWhenPrecomputationBlowsZeta) {
  // zeta so small the heuristic's Prepare-time structures already exceed
  // zeta/2: the kill fires before the first pop and the run degenerates
  // to plain LevelBased on all P workers.
  const trace::JobTrace trace = trace::MakeChain(3);
  MetaScheduler meta(std::make_unique<LogicBloxScheduler>(), 2);
  meta.Prepare({&trace, 4});
  EXPECT_TRUE(meta.HeuristicKilled());
  EXPECT_EQ(meta.Kills(), 1u);
  EXPECT_EQ(meta.LevelBasedLaneCap(), 4u);
}

TEST(MetaSchedulerTest, LivenessFallbackWhenLevelBasedHasNoWorkers) {
  // P == 1 gives LevelBased zero workers and a never-popping heuristic the
  // single slot.  With nothing running anywhere, LevelBased must borrow
  // the idle capacity instead of deadlocking the engine.
  const trace::JobTrace trace = trace::MakeChain(2);
  MetaScheduler meta(std::make_unique<StubHeuristic>(0), 0);
  meta.Prepare({&trace, 1});
  ASSERT_EQ(meta.LevelBasedLaneCap(), 0u);
  meta.OnActivated(0);
  const TaskId t = meta.PopReady();
  ASSERT_EQ(t, 0u);
  meta.OnStarted(t);
  // The fallback only applies to a fully idle engine: with 0 running,
  // nothing else may be offered.
  EXPECT_EQ(meta.PopReady(), util::kInvalidTask);
  meta.OnActivated(1);
  meta.OnCompleted(0, true);
  EXPECT_EQ(meta.PopReady(), 1u);

  // Same fallback through the batch path.
  MetaScheduler batch_meta(std::make_unique<StubHeuristic>(0), 0);
  batch_meta.Prepare({&trace, 1});
  batch_meta.OnActivated(0);
  std::vector<TaskId> out;
  EXPECT_EQ(batch_meta.PopReadyBatch(out, 4), 1u);
  EXPECT_EQ(out.front(), 0u);
}

TEST(MetaSchedulerTest, AuditCleanOnRandomTraces) {
  // Full simulator runs across the kill spectrum: never-kill, kill at
  // Prepare, and a threshold the heuristic index may or may not cross.
  // Every schedule must be precedence-valid with each active task run
  // exactly once.
  util::Rng rng(61);
  const std::uint64_t zetas[] = {0, 64, 1u << 16};
  for (int trial = 0; trial < 6; ++trial) {
    const trace::JobTrace trace =
        trace::MakeRandomDag(50, 0.08, 0.2, 0.7, rng);
    for (const std::uint64_t zeta : zetas) {
      MetaScheduler meta(std::make_unique<LogicBloxScheduler>(), zeta);
      sim::SimConfig config;
      config.processors = 3;
      config.record_schedule = true;
      const sim::SimResult result = sim::Simulate(trace, meta, config);
      const trace::Cascade cascade = trace::ComputeCascade(trace);
      EXPECT_EQ(result.tasks_executed, cascade.NumActive());
      const sim::AuditResult audit = sim::AuditSchedule(trace, result);
      EXPECT_TRUE(audit.valid)
          << "zeta=" << zeta << ": "
          << (audit.violations.empty() ? "" : audit.violations.front());
    }
  }
}

TEST(MetaFactoryTest, ParsesMetaSpecs) {
  EXPECT_EQ(CreateScheduler("meta(logicblox,1024)")->Name(),
            "Meta(LogicBlox+LevelBased,zeta=1024)");
  // The heuristic slot takes any non-meta spec, colons included.
  EXPECT_EQ(CreateScheduler("meta(lbl:4,65536)")->Name(),
            "Meta(LBL(k=4)+LevelBased,zeta=65536)");
  EXPECT_EQ(CreateScheduler("meta(hybrid,2048)")->Name(),
            "Meta(Hybrid(LevelBased+LogicBlox)+LevelBased,zeta=2048)");
  EXPECT_EQ(CreateScheduler("META(LogicBlox,8)")->Name(),
            "Meta(LogicBlox+LevelBased,zeta=8)");  // case-insensitive
}

TEST(MetaFactoryTest, RejectsMalformedMetaSpecs) {
  EXPECT_THROW(CreateScheduler("meta(logicblox,1024"), util::ParseError);
  EXPECT_THROW(CreateScheduler("meta(logicblox)"), util::ParseError);
  EXPECT_THROW(CreateScheduler("meta(,1024)"), util::ParseError);
  EXPECT_THROW(CreateScheduler("meta(logicblox,)"), util::ParseError);
  EXPECT_THROW(CreateScheduler("meta(logicblox,notanumber)"),
               util::ParseError);
  EXPECT_THROW(CreateScheduler("meta(meta(logicblox,64),128)"),
               util::ParseError);
}

TEST(MetaFactoryTest, UnknownSpecErrorListsEveryKnownSpec) {
  // The error text is the discovery surface for CLI users: it must name
  // every valid form, meta(...) included, and stay in lockstep with
  // KnownSchedulerSpecs().
  std::string message;
  try {
    (void)CreateScheduler("bogus");
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& err) {
    message = err.what();
  }
  EXPECT_NE(message.find("bogus"), std::string::npos) << message;
  for (const std::string& spec : KnownSchedulerSpecs()) {
    EXPECT_NE(message.find(spec), std::string::npos)
        << "error text missing spec '" << spec << "': " << message;
  }
  EXPECT_NE(message.find("meta(<heuristic>,<zeta_bytes>)"),
            std::string::npos);
}

}  // namespace
}  // namespace dsched::sched
