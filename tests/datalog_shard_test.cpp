// Concurrency tests for the hash-sharded Relation and the lock-free delta
// publication protocol (relation.hpp, delta_buffer.hpp).  These run under
// TSan in CI; every cross-thread interaction here must be explainable by
// the protocol's release/acquire pairs alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "datalog/delta_buffer.hpp"
#include "datalog/parser.hpp"
#include "datalog/relation.hpp"
#include "obs/metrics.hpp"

namespace dsched::datalog {
namespace {

Tuple T2(std::int64_t a, std::int64_t b) {
  return {Value::Int(a), Value::Int(b)};
}

// Multiplicative scatter so tuples spread across shards and slots.
std::int64_t Scatter(std::uint64_t i) {
  return static_cast<std::int64_t>((i * 0x9e3779b97f4a7c15ULL) &
                                   0x7fffffffULL);
}

std::vector<Tuple> Sorted(const Relation& r) {
  std::vector<Tuple> tuples = r.Tuples();
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

TEST(ShardTest, ConcurrentPublishersMatchSerialStore) {
  // W writers with disjoint keyspaces, each staging inserts AND erases
  // through its own buffer, must converge to exactly the single-threaded
  // result.
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kPerWriter = 4000;

  Relation serial(2, 1);
  for (std::uint64_t w = 0; w < kWriters; ++w) {
    for (std::uint64_t i = 0; i < kPerWriter; ++i) {
      serial.Insert(T2(Scatter(w * kPerWriter + i), static_cast<std::int64_t>(w)));
    }
    for (std::uint64_t i = 0; i < kPerWriter; i += 3) {
      serial.Erase(T2(Scatter(w * kPerWriter + i), static_cast<std::int64_t>(w)));
    }
  }

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{16}}) {
    Relation shared(2, shards);
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (std::size_t w = 0; w < kWriters; ++w) {
      writers.emplace_back([&shared, w] {
        ShardedWriteBuffer buffer(shared);
        for (std::uint64_t i = 0; i < kPerWriter; ++i) {
          buffer.StageInsert(
              T2(Scatter(w * kPerWriter + i), static_cast<std::int64_t>(w)));
        }
        buffer.Flush();
        // Erases in a second batch: the protocol applies each shard's
        // chunks in publication order, so this writer's erases always see
        // its own inserts applied.
        for (std::uint64_t i = 0; i < kPerWriter; i += 3) {
          buffer.StageErase(
              T2(Scatter(w * kPerWriter + i), static_cast<std::int64_t>(w)));
        }
        buffer.Flush();
      });
    }
    for (std::thread& writer : writers) {
      writer.join();
    }
    shared.Quiesce();
    EXPECT_FALSE(shared.HasPending());
    EXPECT_EQ(Sorted(shared), Sorted(serial)) << shards << " shards";
    EXPECT_GE(shared.PublishedChunks(), kWriters);
    EXPECT_EQ(shared.PublishedRows(),
              kWriters * (kPerWriter + (kPerWriter + 2) / 3));
  }
}

TEST(ShardTest, SingleShardDegeneratesToDenseRowIds) {
  // shards=1 must behave exactly like the pre-shard store: row ids are
  // dense insertion indices and iteration is insertion order.
  Relation r(2, 1);
  EXPECT_EQ(r.NumShards(), 1u);
  EXPECT_EQ(r.ShardBits(), 0u);
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(r.Insert(T2(i, i * 2)));
  }
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(r.EncodeRowId(0, i), i);
    const RowView row = r.Row(i);
    EXPECT_EQ(row[0].AsInt(), static_cast<std::int64_t>(i));
  }
  std::uint32_t next = 0;
  r.ForEachRow([&next](std::uint32_t id, RowView) { EXPECT_EQ(id, next++); });
  EXPECT_EQ(next, 100u);
}

TEST(ShardTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(Relation(2, 3).NumShards(), 4u);
  EXPECT_EQ(Relation(2, 5).NumShards(), 8u);
  EXPECT_EQ(Relation(2, 16).NumShards(), 16u);
}

TEST(ShardTest, EraseInOneShardLeavesOtherShardsStable) {
  // The per-shard EraseEpoch contract: erasing only bumps the owning
  // shard's epoch, and every other shard's row ids keep resolving to the
  // same tuples (this is what lets cached indexes skip unchanged shards).
  Relation r(2, 4);
  std::vector<Tuple> tuples;
  for (std::uint64_t i = 0; i < 512; ++i) {
    tuples.push_back(T2(Scatter(i), static_cast<std::int64_t>(i)));
    r.Insert(tuples.back());
  }
  std::vector<std::uint64_t> epoch_before(r.NumShards());
  for (std::size_t s = 0; s < r.NumShards(); ++s) {
    epoch_before[s] = r.ShardEraseEpoch(s);
  }
  // Snapshot every row id -> tuple mapping.
  std::vector<std::pair<std::uint32_t, Tuple>> before;
  r.ForEachRow([&before](std::uint32_t id, RowView row) {
    before.emplace_back(id, Tuple(row.begin(), row.end()));
  });

  const Tuple victim = tuples[137];
  const std::size_t victim_shard = r.ShardOfTuple(RowView(victim));
  ASSERT_TRUE(r.Erase(victim));

  for (std::size_t s = 0; s < r.NumShards(); ++s) {
    if (s == victim_shard) {
      EXPECT_EQ(r.ShardEraseEpoch(s), epoch_before[s] + 1);
    } else {
      EXPECT_EQ(r.ShardEraseEpoch(s), epoch_before[s]);
    }
  }
  // Rows outside the victim's shard are untouched, id for id.
  for (const auto& [id, tuple] : before) {
    if ((id & (r.NumShards() - 1)) == victim_shard) {
      continue;
    }
    const RowView row = r.Row(id);
    EXPECT_EQ(Tuple(row.begin(), row.end()), tuple);
  }
}

TEST(ShardTest, SingleShardAppendKeepsIndexSkippingShards) {
  // Store-level view of the same contract: after an append that touches
  // one shard, re-preparing a cached index only rescans the changed shard
  // and counts a skip for each untouched one.
  const Program program = ParseProgram("p(X, Y) :- q(X, Y).");
  RelationStore store(program, 4);
  const std::uint32_t q = program.PredicateId("q");
  for (std::uint64_t i = 0; i < 256; ++i) {
    store.Of(q).Insert(T2(Scatter(i), static_cast<std::int64_t>(i)));
  }
  const std::vector<std::size_t> columns{0};
  (void)store.Prepare(q, columns);  // build

  obs::MetricsRegistry base_metrics;
  store.ExportMetrics(base_metrics);
  const std::uint64_t skips_before =
      base_metrics.Value("store.index_shard_skips");

  const Tuple extra = T2(Scatter(9999), 9999);
  ASSERT_TRUE(store.Of(q).Insert(extra));
  const auto prepared = store.Prepare(q, columns);  // extend, skip 3 shards

  obs::MetricsRegistry metrics;
  store.ExportMetrics(metrics);
  EXPECT_EQ(metrics.Value("store.index_shard_skips"),
            skips_before + store.Of(q).NumShards() - 1);

  const Tuple key{extra[0]};
  const auto rows = RelationStore::LookupPrepared(prepared, key);
  bool found = false;
  for (const std::uint32_t id : rows) {
    const RowView row = RelationStore::RowIn(prepared, id);
    found = found || Tuple(row.begin(), row.end()) == extra;
  }
  EXPECT_TRUE(found);
}

TEST(ShardTest, ConcurrentDuplicateInsertsAreFreshExactlyOnce) {
  // Every tuple is staged by ALL writers; across the whole run each tuple
  // must report took_effect (fresh) exactly once — the absorber applies
  // chunks serially per shard, so duplicates race but cannot double-count.
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kTuples = 2000;
  Relation shared(2, 8);
  std::atomic<std::uint64_t> fresh_total{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&shared, &fresh_total] {
      ShardedWriteBuffer buffer(shared);
      for (std::uint64_t i = 0; i < kTuples; ++i) {
        buffer.StageInsert(T2(Scatter(i), static_cast<std::int64_t>(i)));
      }
      std::uint64_t fresh = 0;
      buffer.Flush([&fresh](std::uint8_t op, RowView, bool took_effect) {
        EXPECT_EQ(op, Relation::kOpInsert);
        fresh += took_effect ? 1u : 0u;
      });
      fresh_total.fetch_add(fresh, std::memory_order_relaxed);
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  shared.Quiesce();
  EXPECT_EQ(shared.Size(), kTuples);
  EXPECT_EQ(fresh_total.load(), kTuples);
}

TEST(ShardTest, PublishersRaceAgainstADedicatedAbsorber) {
  // A third party may drain pending lists at any time; publishers must
  // coexist with it (WaitApplied assists rather than assuming ownership).
  constexpr std::size_t kWriters = 3;
  constexpr std::uint64_t kPerWriter = 3000;
  Relation shared(2, 4);
  std::atomic<bool> stop{false};
  std::thread absorber([&shared, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (std::size_t s = 0; s < shared.NumShards(); ++s) {
        shared.TryAbsorb(s);
      }
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&shared, w] {
      ShardedWriteBuffer buffer(shared);
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        buffer.StageInsert(
            T2(Scatter(w * kPerWriter + i), static_cast<std::int64_t>(w)));
        if (i % 512 == 511) {
          buffer.Flush();
        }
      }
      buffer.Flush();
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  stop.store(true, std::memory_order_relaxed);
  absorber.join();
  shared.Quiesce();
  EXPECT_EQ(shared.Size(), kWriters * kPerWriter);
}

}  // namespace
}  // namespace dsched::datalog
