// Contract tests for the observability layer (src/obs/): the event ring's
// keep-newest overflow, the disabled-session zero-side-effect guarantee,
// the Chrome trace_event export (round-tripped through a minimal JSON
// parser below), the MetricsRegistry concurrency contract (run this file
// under TSan — the CI tsan job does), and an end-to-end smoke through the
// simulator's instrumented scheduler pop paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "obs/event_ring.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace_session.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace dsched::obs {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON value + recursive-descent parser, just enough to round-trip
// the Chrome trace_event export.  Deliberately in-test: the repo has no JSON
// dependency, and the export must stay parseable by *any* conforming reader.

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      data = nullptr;

  [[nodiscard]] bool IsObject() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(data);
  }
  [[nodiscard]] const JsonObject& AsObject() const {
    return *std::get<std::shared_ptr<JsonObject>>(data);
  }
  [[nodiscard]] const JsonArray& AsArray() const {
    return *std::get<std::shared_ptr<JsonArray>>(data);
  }
  [[nodiscard]] const std::string& AsString() const {
    return std::get<std::string>(data);
  }
  [[nodiscard]] double AsNumber() const { return std::get<double>(data); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole input; sets `ok` false on any syntax error.
  JsonValue Parse(bool& ok) {
    ok = true;
    const JsonValue value = ParseValue(ok);
    SkipWs();
    if (pos_ != text_.size()) {
      ok = false;
    }
    return value;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue ParseValue(bool& ok) {
    SkipWs();
    if (pos_ >= text_.size()) {
      ok = false;
      return {};
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject(ok);
    }
    if (c == '[') {
      return ParseArray(ok);
    }
    if (c == '"') {
      JsonValue v;
      v.data = ParseString(ok);
      return v;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue{true};
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return JsonValue{false};
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{nullptr};
    }
    return ParseNumber(ok);
  }

  JsonValue ParseObject(bool& ok) {
    auto object = std::make_shared<JsonObject>();
    Consume('{');
    SkipWs();
    if (!Consume('}')) {
      do {
        SkipWs();
        const std::string key = ParseString(ok);
        if (!ok || !Consume(':')) {
          ok = false;
          return {};
        }
        (*object)[key] = ParseValue(ok);
        if (!ok) {
          return {};
        }
      } while (Consume(','));
      if (!Consume('}')) {
        ok = false;
      }
    }
    JsonValue v;
    v.data = object;
    return v;
  }

  JsonValue ParseArray(bool& ok) {
    auto array = std::make_shared<JsonArray>();
    Consume('[');
    SkipWs();
    if (!Consume(']')) {
      do {
        array->push_back(ParseValue(ok));
        if (!ok) {
          return {};
        }
      } while (Consume(','));
      if (!Consume(']')) {
        ok = false;
      }
    }
    JsonValue v;
    v.data = array;
    return v;
  }

  std::string ParseString(bool& ok) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      ok = false;
      return {};
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char escaped = text_[pos_++];
        switch (escaped) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u':
            // The export only emits \u00XX for control bytes; skip the
            // four hex digits and substitute a placeholder.
            pos_ += 4;
            c = '?';
            break;
          default: c = escaped; break;
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) {
      ok = false;
      return {};
    }
    ++pos_;  // closing quote
    return out;
  }

  JsonValue ParseNumber(bool& ok) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      ok = false;
      return {};
    }
    JsonValue v;
    v.data = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

TEST(EventRingTest, OverflowKeepsNewest) {
  EventRing ring(8);
  ASSERT_EQ(ring.Capacity(), 8u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    Event e;
    e.begin_ticks = i;
    e.end_ticks = i + 1;
    e.category = Category::kExecDispatch;
    ring.Push(e);
  }
  EXPECT_EQ(ring.Pushed(), 20u);
  EXPECT_EQ(ring.Dropped(), 12u);
  const std::vector<Event> kept = ring.Snapshot();
  ASSERT_EQ(kept.size(), 8u);
  // Oldest-first drain of exactly the newest 8 pushes (12..19).
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].begin_ticks, 12 + i);
  }
}

TEST(EventRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(1).Capacity(), 8u);   // minimum
  EXPECT_EQ(EventRing(9).Capacity(), 16u);  // next power of two
  EXPECT_EQ(EventRing(64).Capacity(), 64u);
}

TEST(TraceSessionTest, DisabledScopesAreSideEffectFree) {
  ASSERT_EQ(TraceSession::Current(), nullptr)
      << "another test left a session installed";
  {
    OBS_SCOPE(Category::kJoinProbe);
    OBS_COUNTER(Category::kJoinEmit, 17);
  }
  // A session installed *afterwards* must observe nothing.
  TraceSession session;
  session.Install();
  {
    OBS_SCOPE(Category::kJoinProbe);
  }
  session.Uninstall();
  {
    // Recorded-after-uninstall must not land either.
    OBS_SCOPE(Category::kJoinProbe);
    OBS_COUNTER(Category::kJoinEmit, 4);
  }
  const AccumSnapshot snapshot = session.Snapshot();
  EXPECT_EQ(TotalsOf(snapshot, Category::kJoinProbe).count, 1u);
  EXPECT_EQ(TotalsOf(snapshot, Category::kJoinEmit).value, 0u);
}

TEST(TraceSessionTest, CounterDeltaIsNotEvaluatedWhenDisabled) {
  ASSERT_EQ(TraceSession::Current(), nullptr);
  int evaluations = 0;
  OBS_COUNTER(Category::kJoinEmit, [&] {
    ++evaluations;
    return 1;
  }());
  EXPECT_EQ(evaluations, 0);
}

TEST(TraceSessionTest, AccumulatorsStayExactUnderRingOverflow) {
  TraceSession::Options options;
  options.ring_capacity = 8;
  TraceSession session(options);
  session.Install();
  constexpr std::uint64_t kScopes = 1000;
  for (std::uint64_t i = 0; i < kScopes; ++i) {
    OBS_SCOPE(Category::kSchedPopLevelBased);
  }
  session.Uninstall();
  EXPECT_GT(session.DroppedEvents(), 0u);
  const AccumSnapshot snapshot = session.Snapshot();
  // The ring dropped most events, but the totals never do.
  EXPECT_EQ(TotalsOf(snapshot, Category::kSchedPopLevelBased).count, kScopes);
}

TEST(TraceSessionTest, SnapshotDeltaIsolatesARun) {
  TraceSession session;
  session.Install();
  { OBS_SCOPE(Category::kExecDispatch); }
  const AccumSnapshot before = session.Snapshot();
  { OBS_SCOPE(Category::kExecDispatch); }
  { OBS_SCOPE(Category::kExecDispatch); }
  const AccumSnapshot delta = SnapshotDelta(before, session.Snapshot());
  session.Uninstall();
  EXPECT_EQ(TotalsOf(delta, Category::kExecDispatch).count, 2u);
}

TEST(TraceSessionTest, ChromeJsonRoundTrips) {
  TraceSession session;
  session.Install();
  { OBS_SCOPE(Category::kJoinPlan); }
  { OBS_SCOPE(Category::kJoinProbe); }
  OBS_COUNTER(Category::kJoinEmit, 42);
  session.Marker("unit \"test\" marker\n");  // exercise string escaping
  session.Uninstall();

  const std::string json = session.ToChromeJson();
  bool ok = false;
  JsonParser parser(json);
  const JsonValue root = parser.Parse(ok);
  ASSERT_TRUE(ok) << "export is not valid JSON:\n" << json;
  ASSERT_TRUE(root.IsObject());
  const JsonObject& top = root.AsObject();
  ASSERT_TRUE(top.count("displayTimeUnit"));
  EXPECT_EQ(top.at("displayTimeUnit").AsString(), "ms");
  ASSERT_TRUE(top.count("traceEvents"));

  bool saw_scope = false;
  bool saw_counter = false;
  bool saw_marker = false;
  bool saw_thread_name = false;
  for (const JsonValue& event : top.at("traceEvents").AsArray()) {
    ASSERT_TRUE(event.IsObject());
    const JsonObject& fields = event.AsObject();
    ASSERT_TRUE(fields.count("ph"));
    ASSERT_TRUE(fields.count("name"));
    ASSERT_TRUE(fields.count("pid"));
    ASSERT_TRUE(fields.count("tid"));
    const std::string ph = fields.at("ph").AsString();
    const std::string name = fields.at("name").AsString();
    if (ph == "X") {
      saw_scope = true;
      ASSERT_TRUE(fields.count("dur"));
      ASSERT_TRUE(fields.count("ts"));
      EXPECT_GE(fields.at("dur").AsNumber(), 0.0);
      EXPECT_TRUE(name == CategoryName(Category::kJoinPlan) ||
                  name == CategoryName(Category::kJoinProbe))
          << name;
    } else if (ph == "C") {
      saw_counter = true;
      EXPECT_EQ(name, CategoryName(Category::kJoinEmit));
    } else if (ph == "i") {
      saw_marker = true;
      EXPECT_EQ(name, "unit \"test\" marker\n");
    } else if (ph == "M") {
      saw_thread_name = true;
      EXPECT_EQ(name, "thread_name");
    }
  }
  EXPECT_TRUE(saw_scope);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_marker);
  EXPECT_TRUE(saw_thread_name);
}

TEST(TraceSessionTest, MultiThreadedRecordingIsRaceFree) {
  TraceSession session;
  session.Install();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        OBS_SCOPE(Category::kPoolSteal);
        OBS_COUNTER(Category::kJoinEmit, 1);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  session.Uninstall();
  const AccumSnapshot snapshot = session.Snapshot();
  EXPECT_EQ(TotalsOf(snapshot, Category::kPoolSteal).count,
            kThreads * kPerThread);
  EXPECT_EQ(TotalsOf(snapshot, Category::kJoinEmit).value,
            kThreads * kPerThread);
}

TEST(TraceSessionTest, PersistentWorkerThreadsCrossSessionGenerations) {
  // Single-tenant regression: the service host's pool threads live for the
  // whole process while trace sessions come and go.  A worker's cached
  // thread-buffer pointer must never leak across sessions — events a
  // long-lived thread records under a later session belong to that session
  // alone, and the destroyed earlier session's buffer must never be
  // touched again (the generation check in BufferForThisThread; a
  // violation is a use-after-free under the ASan CI job).
  ASSERT_EQ(TraceSession::Current(), nullptr);
  constexpr int kWorkers = 2;
  constexpr int kEventsPerRound = 5;
  std::atomic<int> round{0};
  std::atomic<int> acks{0};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&round, &acks] {
      int seen = 0;
      while (true) {
        const int r = round.load(std::memory_order_acquire);
        if (r < 0) {
          return;
        }
        if (r == seen) {
          std::this_thread::yield();
          continue;
        }
        for (int i = 0; i < kEventsPerRound; ++i) {
          OBS_SCOPE(Category::kPoolSteal);
        }
        seen = r;
        acks.fetch_add(1, std::memory_order_acq_rel);
      }
    });
  }
  const auto run_round = [&round, &acks](int r) {
    round.store(r, std::memory_order_release);
    while (acks.load(std::memory_order_acquire) < kWorkers * r) {
      std::this_thread::yield();
    }
  };

  AccumSnapshot first_totals;
  {
    TraceSession first;
    first.Install();
    run_round(1);
    first.Uninstall();
    first_totals = first.Snapshot();
  }  // first's thread buffers are freed here; the workers' caches go stale
  {
    TraceSession second;
    second.Install();
    run_round(2);  // same threads — must re-register, not reuse stale buffers
    second.Uninstall();
    const AccumSnapshot second_totals = second.Snapshot();
    EXPECT_EQ(TotalsOf(second_totals, Category::kPoolSteal).count,
              static_cast<std::uint64_t>(kWorkers * kEventsPerRound));
  }
  EXPECT_EQ(TotalsOf(first_totals, Category::kPoolSteal).count,
            static_cast<std::uint64_t>(kWorkers * kEventsPerRound));
  round.store(-1, std::memory_order_release);
  for (std::thread& worker : workers) {
    worker.join();
  }
}

TEST(MetricsRegistryTest, BasicOperations) {
  MetricsRegistry registry;
  registry.Add("a.count", 3);
  registry.Add("a.count", 4);
  registry.Set("b.gauge", 10);
  registry.Set("b.gauge", 7);
  registry.Max("c.high_water", 5);
  registry.Max("c.high_water", 9);
  registry.Max("c.high_water", 2);
  EXPECT_EQ(registry.Value("a.count"), 7u);
  EXPECT_EQ(registry.Value("b.gauge"), 7u);
  EXPECT_EQ(registry.Value("c.high_water"), 9u);
  EXPECT_EQ(registry.Value("never.touched"), 0u);
}

TEST(MetricsRegistryTest, JsonIsSortedAndParseable) {
  MetricsRegistry registry;
  registry.Set("z.last", 1);
  registry.Set("a.first", 2);
  registry.Set("m.middle", 3);
  const std::string json = registry.ToJson();
  bool ok = false;
  JsonParser parser(json);
  const JsonValue root = parser.Parse(ok);
  ASSERT_TRUE(ok) << json;
  ASSERT_TRUE(root.IsObject());
  EXPECT_EQ(root.AsObject().at("a.first").AsNumber(), 2.0);
  EXPECT_EQ(root.AsObject().at("z.last").AsNumber(), 1.0);
  // Sorted emission order.
  EXPECT_LT(json.find("a.first"), json.find("m.middle"));
  EXPECT_LT(json.find("m.middle"), json.find("z.last"));
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        registry.Add("shared.adds", 1);
        registry.Max("shared.max",
                     static_cast<std::uint64_t>(t) * kPerThread + i);
        registry.Add("thread." + std::to_string(t) + ".own", 1);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.Value("shared.adds"), kThreads * kPerThread);
  EXPECT_EQ(registry.Value("shared.max"), kThreads * kPerThread - 1);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.Value("thread." + std::to_string(t) + ".own"),
              kPerThread);
  }
}

/// End-to-end: a simulated run under a session populates the scheduler pop
/// categories, and SimResult::ExportMetrics lands in the registry.
TEST(ObsIntegrationTest, SimulatedRunRecordsSchedulerScopes) {
  util::Rng rng(3);
  trace::LayeredDagSpec spec;
  spec.name = "obs-smoke";
  spec.level_widths = trace::MakeLevelWidths(200, 8, 25, rng);
  spec.extra_edges = 100;
  spec.initial_dirty = 4;
  spec.target_active = 60;
  spec.durations.median_seconds = 1e-4;
  spec.seed = 11;
  const trace::JobTrace jt = trace::GenerateLayered(spec);

  TraceSession session;
  session.Install();
  auto scheduler = sched::CreateScheduler("levelbased");
  sim::SimConfig config;
  config.processors = 4;
  const sim::SimResult result = sim::Simulate(jt, *scheduler, config);
  session.Uninstall();

  const AccumSnapshot snapshot = session.Snapshot();
  EXPECT_GT(TotalsOf(snapshot, Category::kSchedPopLevelBased).count, 0u);
  EXPECT_EQ(TotalsOf(snapshot, Category::kSchedPopLogicBlox).count, 0u);

  MetricsRegistry registry;
  result.ExportMetrics(registry, "sim.levelbased.");
  EXPECT_EQ(registry.Value("sim.levelbased.tasks_executed"),
            result.tasks_executed);
  EXPECT_GT(registry.Value("sim.levelbased.ops.pops"), 0u);
}

}  // namespace
}  // namespace dsched::obs
