// Tests for stratified aggregation: parsing, validation, stratification,
// evaluation goldens, incremental maintenance (recompute-diff), and the
// parallel engine.
#include <gtest/gtest.h>

#include <algorithm>

#include "datalog/database.hpp"
#include "datalog/eval.hpp"
#include "datalog/parser.hpp"
#include "datalog/stratify.hpp"
#include "datalog/validate.hpp"
#include "util/error.hpp"

namespace dsched::datalog {
namespace {

TEST(AggregateParseTest, AllOperators) {
  const Program p = ParseProgram(R"(
    c(X; count()) :- e(X, _).
    s(X; sum(V)) :- w(X, V).
    lo(; min(V)) :- w(_, V).
    hi(; max(V)) :- w(_, V).
  )");
  ASSERT_EQ(p.rules.size(), 4u);
  EXPECT_EQ(p.rules[0].aggregate->op, AggOp::kCount);
  EXPECT_EQ(p.rules[1].aggregate->op, AggOp::kSum);
  EXPECT_EQ(p.rules[2].aggregate->op, AggOp::kMin);
  EXPECT_EQ(p.rules[3].aggregate->op, AggOp::kMax);
  // Head arity = group-bys + 1 (the result column).
  EXPECT_EQ(p.predicate_arities[p.PredicateId("c")], 2u);
  EXPECT_EQ(p.predicate_arities[p.PredicateId("lo")], 1u);
  EXPECT_EQ(RuleToString(p.rules[1], p), "s(X; sum(V)) :- w(X, V).");
}

TEST(AggregateParseTest, Rejections) {
  EXPECT_THROW(ParseProgram("t(X; avg(V)) :- w(X, V)."), util::ParseError);
  EXPECT_THROW(ParseProgram("t(X; sum(_)) :- w(X, V)."), util::ParseError);
  EXPECT_THROW(ParseProgram("t(X; sum(3)) :- w(X, V)."), util::ParseError);
  EXPECT_THROW(ParseProgram("t(X; count())."), util::ParseError);  // no body
}

TEST(AggregateValidateTest, UnboundAggregateVarRejected) {
  const Program p = ParseProgram("t(X; sum(V)) :- e(X, _), !w(X, V).");
  EXPECT_THROW(ValidateProgram(p), util::InvalidArgument);
}

TEST(AggregateValidateTest, MixedDefinitionsRejected) {
  const Program p = ParseProgram(R"(
    t(X; count()) :- e(X, _).
    t(X, Y) :- other(X, Y).
  )");
  EXPECT_THROW(ValidateProgram(p), util::InvalidArgument);
}

TEST(AggregateStratifyTest, AggregateRaisesStratum) {
  const Program p = ParseProgram(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    reach(X; count()) :- tc(X, _).
  )");
  const Stratification s = Stratify(p);
  EXPECT_GT(s.component_stratum[s.component_of[p.PredicateId("reach")]],
            s.component_stratum[s.component_of[p.PredicateId("tc")]]);
}

TEST(AggregateStratifyTest, RecursionThroughAggregateRejected) {
  const Program p = ParseProgram(R"(
    t(X; count()) :- t(X, _), e(X, _).
  )");
  EXPECT_THROW(Stratify(p), util::InvalidArgument);
}

TEST(AggregateEvalTest, CountAndGrouping) {
  Database db("outdeg(X; count()) :- e(X, _).");
  db.Insert("e", {Value::Int(1), Value::Int(2)});
  db.Insert("e", {Value::Int(1), Value::Int(3)});
  db.Insert("e", {Value::Int(2), Value::Int(3)});
  db.Materialize();
  EXPECT_EQ(db.Query("outdeg").size(), 2u);
  EXPECT_TRUE(db.Contains("outdeg", {Value::Int(1), Value::Int(2)}));
  EXPECT_TRUE(db.Contains("outdeg", {Value::Int(2), Value::Int(1)}));
}

TEST(AggregateEvalTest, SumMinMax) {
  Database db(R"(
    total(C; sum(V)) :- stock(_, C, V).
    cheapest(C; min(V)) :- stock(_, C, V).
    dearest(C; max(V)) :- stock(_, C, V).
  )");
  db.Insert("stock", {db.Sym("p1"), db.Sym("food"), Value::Int(10)});
  db.Insert("stock", {db.Sym("p2"), db.Sym("food"), Value::Int(-3)});
  db.Insert("stock", {db.Sym("p3"), db.Sym("tools"), Value::Int(7)});
  db.Materialize();
  EXPECT_TRUE(db.Contains("total", {db.Sym("food"), Value::Int(7)}));
  EXPECT_TRUE(db.Contains("total", {db.Sym("tools"), Value::Int(7)}));
  EXPECT_TRUE(db.Contains("cheapest", {db.Sym("food"), Value::Int(-3)}));
  EXPECT_TRUE(db.Contains("dearest", {db.Sym("food"), Value::Int(10)}));
}

TEST(AggregateEvalTest, DistinctBindingSemantics) {
  // Two products share the same stock value in one category; the sum must
  // count both (distinct complete bindings, not distinct values).
  Database db("total(C; sum(V)) :- stock(P, C, V).");
  db.Insert("stock", {db.Sym("p1"), db.Sym("c"), Value::Int(5)});
  db.Insert("stock", {db.Sym("p2"), db.Sym("c"), Value::Int(5)});
  db.Materialize();
  EXPECT_TRUE(db.Contains("total", {db.Sym("c"), Value::Int(10)}));
}

TEST(AggregateEvalTest, GlobalGroup) {
  Database db("everything(; count()) :- item(_).");
  for (int i = 0; i < 7; ++i) {
    db.Insert("item", {Value::Int(i)});
  }
  db.Materialize();
  ASSERT_EQ(db.Query("everything").size(), 1u);
  EXPECT_TRUE(db.Contains("everything", {Value::Int(7)}));
}

TEST(AggregateEvalTest, EmptyBodyGroupsProduceNothing) {
  Database db("t(X; count()) :- e(X, _).");
  db.Materialize();
  EXPECT_TRUE(db.Query("t").empty());
}

TEST(AggregateEvalTest, SumOverSymbolThrows) {
  Database db("t(; sum(V)) :- w(V).");
  db.Insert("w", {db.Sym("oops")});
  EXPECT_THROW(db.Materialize(), util::InvalidArgument);
}

TEST(AggregateEvalTest, AggregateOverDerivedRelation) {
  Database db(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    reachable(X; count()) :- tc(X, _).
  )");
  for (int i = 0; i + 1 < 5; ++i) {
    db.Insert("e", {Value::Int(i), Value::Int(i + 1)});
  }
  db.Materialize();
  EXPECT_TRUE(db.Contains("reachable", {Value::Int(0), Value::Int(4)}));
  EXPECT_TRUE(db.Contains("reachable", {Value::Int(3), Value::Int(1)}));
}

TEST(AggregateIncrementalTest, SumTracksInsertsAndDeletes) {
  Database db("total(C; sum(V)) :- stock(_, C, V).");
  db.Insert("stock", {db.Sym("p1"), db.Sym("c"), Value::Int(10)});
  db.Insert("stock", {db.Sym("p2"), db.Sym("c"), Value::Int(20)});
  db.Materialize();
  EXPECT_TRUE(db.Contains("total", {db.Sym("c"), Value::Int(30)}));

  auto up1 = db.MakeUpdate();
  up1.Insert("stock", {db.Sym("p3"), db.Sym("c"), Value::Int(5)});
  const UpdateResult r1 = db.Apply(up1);
  EXPECT_TRUE(db.Contains("total", {db.Sym("c"), Value::Int(35)}));
  EXPECT_FALSE(db.Contains("total", {db.Sym("c"), Value::Int(30)}));
  EXPECT_GT(r1.total_deleted, 0u);  // the stale group value left

  auto up2 = db.MakeUpdate();
  up2.Delete("stock", {db.Sym("p1"), db.Sym("c"), Value::Int(10)});
  db.Apply(up2);
  EXPECT_TRUE(db.Contains("total", {db.Sym("c"), Value::Int(25)}));

  // Emptying the group removes its row entirely.
  auto up3 = db.MakeUpdate();
  up3.Delete("stock", {db.Sym("p2"), db.Sym("c"), Value::Int(20)});
  up3.Delete("stock", {db.Sym("p3"), db.Sym("c"), Value::Int(5)});
  db.Apply(up3);
  EXPECT_TRUE(db.Query("total").empty());
}

TEST(AggregateIncrementalTest, DownstreamOfAggregatePropagates) {
  Database db(R"(
    total(C; sum(V)) :- stock(_, C, V).
    overstocked(C) :- total(C, T), T > 100.
  )");
  db.Insert("stock", {db.Sym("p"), db.Sym("c"), Value::Int(60)});
  db.Materialize();
  EXPECT_TRUE(db.Query("overstocked").empty());

  auto up = db.MakeUpdate();
  up.Insert("stock", {db.Sym("q"), db.Sym("c"), Value::Int(50)});
  db.Apply(up);
  EXPECT_TRUE(db.Contains("overstocked", {db.Sym("c")}));

  auto down = db.MakeUpdate();
  down.Delete("stock", {db.Sym("q"), db.Sym("c"), Value::Int(50)});
  db.Apply(down);
  EXPECT_TRUE(db.Query("overstocked").empty());
}

TEST(AggregateIncrementalTest, UntouchedGroupsStay) {
  Database db("total(C; sum(V)) :- stock(_, C, V).");
  db.Insert("stock", {db.Sym("p"), db.Sym("a"), Value::Int(1)});
  db.Insert("stock", {db.Sym("q"), db.Sym("b"), Value::Int(2)});
  db.Materialize();
  auto up = db.MakeUpdate();
  up.Insert("stock", {db.Sym("r"), db.Sym("a"), Value::Int(10)});
  const UpdateResult result = db.Apply(up);
  EXPECT_TRUE(db.Contains("total", {db.Sym("a"), Value::Int(11)}));
  EXPECT_TRUE(db.Contains("total", {db.Sym("b"), Value::Int(2)}));
  // Only group "a" changed: one delete (stale 1) + one insert (11), plus
  // the base insert.
  EXPECT_EQ(result.total_deleted, 1u);
  EXPECT_EQ(result.total_inserted, 2u);
}

TEST(AggregateIncrementalTest, ParallelMatchesSequential) {
  const auto build = [] {
    auto db = std::make_unique<Database>(R"(
      total(C; sum(V)) :- stock(_, C, V).
      n(C; count()) :- stock(_, C, _).
      overstocked(C) :- total(C, T), T > 10.
    )");
    db->Insert("stock", {db->Sym("p"), db->Sym("a"), Value::Int(6)});
    db->Insert("stock", {db->Sym("q"), db->Sym("a"), Value::Int(6)});
    db->Insert("stock", {db->Sym("r"), db->Sym("b"), Value::Int(3)});
    db->Materialize();
    return db;
  };
  auto sequential = build();
  auto parallel = build();
  for (int round = 0; round < 3; ++round) {
    auto up_seq = sequential->MakeUpdate();
    auto up_par = parallel->MakeUpdate();
    const Tuple ins{sequential->Sym("x" + std::to_string(round)),
                    sequential->Sym("b"), Value::Int(4 + round)};
    up_seq.Insert("stock", ins);
    up_par.Insert("stock", ins);
    sequential->Apply(up_seq);
    parallel->ApplyParallel(up_par);
    for (const char* pred : {"total", "n", "overstocked"}) {
      auto a = sequential->Query(pred);
      auto b = parallel->Query(pred);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b) << pred << " round " << round;
    }
  }
}

TEST(AggregateEvalTest, NaiveMatchesSemiNaiveWithAggregates) {
  const char* text = R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    fan(X; count()) :- tc(X, _).
    widest(; max(N)) :- fan(_, N).
  )";
  const Program program = ParseProgram(text);
  ValidateProgram(program);
  const Stratification strat = Stratify(program);
  RelationStore semi(program);
  RelationStore naive(program);
  for (int i = 0; i < 6; ++i) {
    for (const int j : {i + 1, (i * 3 + 1) % 6}) {
      if (i != j) {
        semi.Of(program.PredicateId("e")).Insert({Value::Int(i), Value::Int(j)});
        naive.Of(program.PredicateId("e"))
            .Insert({Value::Int(i), Value::Int(j)});
      }
    }
  }
  EvaluateProgram(program, strat, semi);
  EvaluateProgramNaive(program, strat, naive);
  for (std::uint32_t pred = 0; pred < program.NumPredicates(); ++pred) {
    std::vector<Tuple> a = semi.Of(pred).Tuples();
    std::vector<Tuple> b = naive.Of(pred).Tuples();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << program.predicate_names[pred];
  }
}

}  // namespace
}  // namespace dsched::datalog
