// Tests for the thread pool and the real multithreaded executor.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/executor.hpp"
#include "runtime/task_router.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/factory.hpp"
#include "sched/level_based.hpp"
#include "trace/cascade.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace dsched::runtime {
namespace {

TEST(ThreadPoolTest, RunsAllJobs) {
  std::atomic<int> counter{0};
  ThreadPool pool(4, [&counter](util::TaskId, std::size_t) { counter.fetch_add(1); });
  for (util::TaskId i = 0; i < 100; ++i) {
    pool.Submit(i);
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  const ThreadPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.submitted, 100u);
  EXPECT_EQ(stats.executed, 100u);
}

TEST(ThreadPoolTest, WaitBlocksUntilDrained) {
  std::atomic<int> done{0};
  ThreadPool pool(2, [&done](util::TaskId, std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    done.fetch_add(1);
  });
  for (util::TaskId i = 0; i < 8; ++i) {
    pool.Submit(i);
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(3, [&done](util::TaskId, std::size_t) { done.fetch_add(1); });
    for (util::TaskId i = 0; i < 20; ++i) {
      pool.Submit(i);
    }
    pool.Wait();
  }
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPoolTest, SubmitBatchRunsEveryItemExactlyOnce) {
  std::vector<std::atomic<int>> seen(500);
  ThreadPool pool(4, [&seen](ThreadPool::WorkItem t, std::size_t) { seen[t].fetch_add(1); });
  std::vector<ThreadPool::WorkItem> batch(500);
  for (ThreadPool::WorkItem i = 0; i < 500; ++i) {
    batch[i] = i;
  }
  pool.SubmitBatch(batch);
  pool.Wait();
  for (const auto& count : seen) {
    EXPECT_EQ(count.load(), 1);
  }
  EXPECT_EQ(pool.Stats().executed, 500u);
}

TEST(ThreadPoolTest, ReusableAcrossWaits) {
  std::atomic<int> done{0};
  ThreadPool pool(2, [&done](util::TaskId, std::size_t) { done.fetch_add(1); });
  for (int round = 0; round < 5; ++round) {
    std::vector<ThreadPool::WorkItem> batch = {0, 1, 2, 3};
    pool.SubmitBatch(batch);
    pool.Wait();
    EXPECT_EQ(done.load(), (round + 1) * 4);
  }
}

TEST(ThreadPoolTest, StealsRebalanceSkewedBatches) {
  // One long item pins a worker; the stealing path must let the other
  // workers drain the rest of its chunk.  With chunked batch submit on 2
  // workers, one deque holds ~half the items; the blocked owner forces
  // every one of them to be stolen.
  std::atomic<int> done{0};
  ThreadPool pool(2, [&done](ThreadPool::WorkItem t, std::size_t) {
    if (t == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    done.fetch_add(1);
  });
  std::vector<ThreadPool::WorkItem> batch(64);
  for (ThreadPool::WorkItem i = 0; i < 64; ++i) {
    batch[i] = i;
  }
  pool.SubmitBatch(batch);
  pool.Wait();
  EXPECT_EQ(done.load(), 64);
  EXPECT_EQ(pool.Stats().executed, 64u);
}

TEST(TaskRouterTest, ChannelsRouteToTheirOwnBodies) {
  TaskRouter router({.workers = 4, .max_channels = 8});
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  auto ca = router.OpenChannel(
      [&a](util::TaskId, std::size_t) { a.fetch_add(1); });
  auto cb = router.OpenChannel(
      [&b](util::TaskId, std::size_t) { b.fetch_add(1); });
  std::vector<util::TaskId> tasks(100);
  for (util::TaskId i = 0; i < 100; ++i) {
    tasks[i] = i;
  }
  ca.SubmitBatch(tasks);
  cb.SubmitBatch(std::span<const util::TaskId>(tasks).subspan(0, 40));
  while (a.load() < 100 || b.load() < 40) {
    std::this_thread::yield();
  }
  ca.Close();
  cb.Close();
  EXPECT_EQ(a.load(), 100);
  EXPECT_EQ(b.load(), 40);
  EXPECT_EQ(router.OpenChannels(), 0u);
}

TEST(TaskRouterTest, SlotsRecycleAfterClose) {
  TaskRouter router({.workers = 2, .max_channels = 2});
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> ran{0};
    auto c1 = router.OpenChannel(
        [&ran](util::TaskId, std::size_t) { ran.fetch_add(1); });
    auto c2 = router.OpenChannel(
        [&ran](util::TaskId, std::size_t) { ran.fetch_add(1); });
    EXPECT_THROW(router.OpenChannel([](util::TaskId, std::size_t) {}),
                 util::InvalidArgument);
    const std::vector<util::TaskId> tasks = {0, 1, 2, 3};
    c1.SubmitBatch(tasks);
    c2.SubmitBatch(tasks);
    while (ran.load() < 8) {
      std::this_thread::yield();
    }
    c1.Close();
    c2.Close();
  }
  EXPECT_EQ(router.OpenChannels(), 0u);
}

TEST(TaskRouterTest, ConcurrentCoordinatorsInterleaveOnOnePool) {
  // Four coordinator threads each run their own submit/close cycles against
  // one shared 4-worker pool; every channel's count must be exact.
  TaskRouter router({.workers = 4, .max_channels = 16});
  std::vector<std::thread> coordinators;
  std::array<std::atomic<int>, 4> counts{};
  for (int s = 0; s < 4; ++s) {
    coordinators.emplace_back([&router, &counts, s] {
      for (int round = 0; round < 20; ++round) {
        std::atomic<int> ran{0};
        auto channel = router.OpenChannel(
            [&](util::TaskId, std::size_t) { ran.fetch_add(1); });
        std::vector<util::TaskId> tasks(50);
        for (util::TaskId i = 0; i < 50; ++i) {
          tasks[i] = i;
        }
        channel.SubmitBatch(tasks);
        while (ran.load() < 50) {
          std::this_thread::yield();
        }
        channel.Close();
        counts[static_cast<std::size_t>(s)].fetch_add(ran.load());
      }
    });
  }
  for (std::thread& t : coordinators) {
    t.join();
  }
  for (const auto& count : counts) {
    EXPECT_EQ(count.load(), 20 * 50);
  }
  EXPECT_EQ(router.PoolStats().executed, 4u * 20u * 50u);
}

TEST(ExecutorTest, RunOnSharedRouterMatchesPrivatePool) {
  util::Rng rng(99);
  const trace::JobTrace trace = trace::MakeRandomDag(60, 0.06, 0.2, 0.7, rng);
  const trace::Cascade cascade = trace::ComputeCascade(trace);
  TaskRouter router({.workers = 4});
  for (const char* spec : {"levelbased", "hybrid", "signal"}) {
    auto scheduler = sched::CreateScheduler(spec);
    std::atomic<int> executed{0};
    const auto stats = Executor::RunOn(
        router, trace, *scheduler,
        [&](util::TaskId t, std::size_t) {
          executed.fetch_add(1);
          return trace.Info(t).output_changes;
        },
        {});
    EXPECT_EQ(stats.executed, cascade.NumActive()) << spec;
    EXPECT_EQ(executed.load(), static_cast<int>(cascade.NumActive())) << spec;
  }
  EXPECT_EQ(router.OpenChannels(), 0u);
}

TEST(ExecutorTest, ConcurrentRunOnCascadesStayIsolated) {
  // Two cascades with different bodies run simultaneously on one router;
  // each must execute exactly its own active set.
  TaskRouter router({.workers = 4});
  std::vector<std::thread> runners;
  std::array<std::size_t, 3> executed{};
  for (std::size_t s = 0; s < 3; ++s) {
    runners.emplace_back([&router, &executed, s] {
      util::Rng rng(100 + static_cast<std::uint64_t>(s));
      const trace::JobTrace trace =
          trace::MakeRandomDag(50, 0.07, 0.25, 0.75, rng);
      const trace::Cascade cascade = trace::ComputeCascade(trace);
      auto scheduler = sched::CreateScheduler("hybrid");
      std::atomic<std::size_t> count{0};
      const auto stats = Executor::RunOn(
          router, trace, *scheduler,
          [&](util::TaskId t, std::size_t) {
            count.fetch_add(1);
            return trace.Info(t).output_changes;
          },
          {});
      EXPECT_EQ(stats.executed, cascade.NumActive());
      EXPECT_EQ(count.load(), cascade.NumActive());
      executed[s] = stats.executed;
    });
  }
  for (std::thread& t : runners) {
    t.join();
  }
  EXPECT_EQ(router.OpenChannels(), 0u);
  std::size_t total = 0;
  for (const std::size_t e : executed) {
    total += e;
  }
  EXPECT_EQ(router.PoolStats().executed, total);
}

TEST(ExecutorTest, RunsExactlyTheCascade) {
  util::Rng rng(77);
  const trace::JobTrace trace = trace::MakeRandomDag(60, 0.06, 0.2, 0.7, rng);
  const trace::Cascade cascade = trace::ComputeCascade(trace);
  sched::LevelBasedScheduler scheduler;
  std::atomic<int> executed{0};
  const auto stats = Executor::Run(
      trace, scheduler,
      [&](util::TaskId t) {
        executed.fetch_add(1);
        return trace.Info(t).output_changes;
      },
      {.workers = 4});
  EXPECT_EQ(stats.executed, cascade.NumActive());
  EXPECT_EQ(executed.load(), static_cast<int>(cascade.NumActive()));
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST(ExecutorTest, NullBodyUsesTraceBits) {
  const trace::JobTrace trace = trace::MakeChain(20);
  sched::LevelBasedScheduler scheduler;
  const auto stats = Executor::Run(trace, scheduler, Executor::TaskBody{}, {.workers = 2});
  EXPECT_EQ(stats.executed, 20u);
  EXPECT_EQ(stats.activations, 20u);
}

TEST(ExecutorTest, DynamicOutputChangesControlActivation) {
  // The body decides at runtime: cut the cascade at node 2 of a chain.
  const trace::JobTrace trace = trace::MakeChain(10);
  sched::LevelBasedScheduler scheduler;
  const auto stats = Executor::Run(
      trace, scheduler, [](util::TaskId t) { return t < 2; }, {.workers = 2});
  EXPECT_EQ(stats.executed, 3u);  // 0, 1, 2 (2 runs but stops the cascade)
}

TEST(ExecutorTest, ParallelismActuallyOverlaps) {
  // 8 independent 20ms tasks on 4 workers should take well under 160ms.
  const trace::JobTrace trace = trace::MakeFork(8);
  auto scheduler = sched::CreateScheduler("hybrid");
  const auto stats = Executor::Run(
      trace, *scheduler,
      [](util::TaskId) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return true;
      },
      {.workers = 4});
  EXPECT_EQ(stats.executed, 9u);
  EXPECT_LT(stats.wall_seconds, 0.140);  // ~3 waves of 20ms + slack
}

/// Fork whose `leaves` children each hold `utility` accounted bytes while
/// running (the root is free); all outputs change, so everything runs.
trace::JobTrace MakeUtilityFork(std::size_t leaves, std::uint64_t utility) {
  trace::JobTrace plain = trace::MakeFork(leaves);
  std::vector<trace::TaskInfo> infos = plain.Tasks();
  for (std::size_t leaf = 1; leaf <= leaves; ++leaf) {
    infos[leaf].resource_utility = utility;
  }
  return {plain.Name(), plain.Graph(), std::move(infos),
          plain.InitialDirty()};
}

TEST(ExecutorTest, AccountingTracksUtilityTotalsAndPeak) {
  // No budget: the plane only counts.  Acquired bytes are exact (every
  // dispatched task's utility, once); the peak is bracketed by the largest
  // single task and the sum.
  const trace::JobTrace trace = MakeUtilityFork(8, 1024);
  sched::LevelBasedScheduler scheduler;
  const auto stats =
      Executor::Run(trace, scheduler, Executor::TaskBody{}, {.workers = 4});
  EXPECT_EQ(stats.executed, 9u);
  EXPECT_EQ(stats.mem_acquired_bytes, 8u * 1024u);
  EXPECT_GE(stats.mem_peak_bytes, 1024u);
  EXPECT_LE(stats.mem_peak_bytes, 8u * 1024u);
  EXPECT_EQ(stats.mem_deferred, 0u);
  EXPECT_EQ(stats.mem_budget_stalls, 0u);
  EXPECT_EQ(stats.mem_forced, 0u);
}

TEST(ExecutorTest, BudgetGateNeverExceedsCeiling) {
  // 16 ready 1 KiB tasks against a 2 KiB ceiling: at most two may hold
  // bytes at once, everything still completes (backpressure, not
  // failure), and at least one dispatch must have been parked.
  const trace::JobTrace trace = MakeUtilityFork(16, 1024);
  sched::LevelBasedScheduler scheduler;
  const auto stats = Executor::Run(trace, scheduler, Executor::TaskBody{},
                                   {.workers = 4, .memory_budget = 2048});
  EXPECT_EQ(stats.executed, 17u);
  EXPECT_LE(stats.mem_peak_bytes, 2048u);
  EXPECT_GE(stats.mem_deferred, 1u);
  EXPECT_EQ(stats.mem_forced, 0u);
  EXPECT_EQ(stats.mem_acquired_bytes, 16u * 1024u);
}

TEST(ExecutorTest, OversizedTaskRunsSoloViaEscapeHatch) {
  // Each task is eight times the whole budget.  The escape hatch runs
  // them one at a time from an idle account — the run completes, every
  // oversized dispatch is counted, and the ceiling becomes the largest
  // single utility instead of a deadlock.
  const trace::JobTrace trace = MakeUtilityFork(3, 8192);
  sched::LevelBasedScheduler scheduler;
  const auto stats = Executor::Run(trace, scheduler, Executor::TaskBody{},
                                   {.workers = 4, .memory_budget = 1024});
  EXPECT_EQ(stats.executed, 4u);
  EXPECT_EQ(stats.mem_forced, 3u);
  // Solo means solo: the oversized tasks never overlap, so the peak is
  // exactly one of them.
  EXPECT_EQ(stats.mem_peak_bytes, 8192u);
}

TEST(ExecutorTest, SharedAccountBoundsConcurrentCascadesJointly) {
  // Two coordinator threads run utility-laden cascades against ONE
  // account with one joint ceiling — the service-session arrangement.
  // The account's peak must respect the ceiling even though acquisitions
  // race across threads.
  TaskRouter router({.workers = 4});
  ResourceAccount account;
  constexpr std::uint64_t kBudget = 4096;
  std::vector<std::thread> runners;
  std::array<Executor::RunStats, 2> stats{};
  for (std::size_t s = 0; s < 2; ++s) {
    runners.emplace_back([&router, &account, &stats, s] {
      const trace::JobTrace trace = MakeUtilityFork(12, 512);
      auto scheduler = sched::CreateScheduler("levelbased");
      stats[s] = Executor::RunOn(router, trace, *scheduler,
                                 Executor::WorkerTaskBody{},
                                 {.memory_budget = kBudget,
                                  .account = &account});
    });
  }
  for (std::thread& t : runners) {
    t.join();
  }
  EXPECT_LE(account.peak.load(), kBudget);
  EXPECT_EQ(account.live.load(), 0u);  // everything released
  for (const auto& run : stats) {
    EXPECT_EQ(run.executed, 13u);
    EXPECT_EQ(run.mem_acquired_bytes, 12u * 512u);
    // Each run's observed peak includes the sibling's bytes but still
    // respects the joint ceiling.
    EXPECT_LE(run.mem_peak_bytes, kBudget);
  }
}

TEST(ExecutorTest, EveryFactorySchedulerDrivesTheExecutor) {
  util::Rng rng(88);
  const trace::JobTrace trace = trace::MakeRandomDag(40, 0.08, 0.25, 0.8, rng);
  const trace::Cascade cascade = trace::ComputeCascade(trace);
  for (const char* spec :
       {"levelbased", "lbl:3", "logicblox", "signal", "hybrid", "oracle"}) {
    auto scheduler = sched::CreateScheduler(spec);
    const auto stats =
        Executor::Run(trace, *scheduler, Executor::TaskBody{}, {.workers = 3});
    EXPECT_EQ(stats.executed, cascade.NumActive()) << spec;
  }
}

}  // namespace
}  // namespace dsched::runtime
