// Tests for the thread pool and the real multithreaded executor.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/executor.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/factory.hpp"
#include "sched/level_based.hpp"
#include "trace/cascade.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace dsched::runtime {
namespace {

TEST(ThreadPoolTest, RunsAllJobs) {
  std::atomic<int> counter{0};
  ThreadPool pool(4, [&counter](util::TaskId, std::size_t) { counter.fetch_add(1); });
  for (util::TaskId i = 0; i < 100; ++i) {
    pool.Submit(i);
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  const ThreadPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.submitted, 100u);
  EXPECT_EQ(stats.executed, 100u);
}

TEST(ThreadPoolTest, WaitBlocksUntilDrained) {
  std::atomic<int> done{0};
  ThreadPool pool(2, [&done](util::TaskId, std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    done.fetch_add(1);
  });
  for (util::TaskId i = 0; i < 8; ++i) {
    pool.Submit(i);
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(3, [&done](util::TaskId, std::size_t) { done.fetch_add(1); });
    for (util::TaskId i = 0; i < 20; ++i) {
      pool.Submit(i);
    }
    pool.Wait();
  }
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPoolTest, SubmitBatchRunsEveryItemExactlyOnce) {
  std::vector<std::atomic<int>> seen(500);
  ThreadPool pool(4, [&seen](util::TaskId t, std::size_t) { seen[t].fetch_add(1); });
  std::vector<util::TaskId> batch(500);
  for (util::TaskId i = 0; i < 500; ++i) {
    batch[i] = i;
  }
  pool.SubmitBatch(batch);
  pool.Wait();
  for (const auto& count : seen) {
    EXPECT_EQ(count.load(), 1);
  }
  EXPECT_EQ(pool.Stats().executed, 500u);
}

TEST(ThreadPoolTest, ReusableAcrossWaits) {
  std::atomic<int> done{0};
  ThreadPool pool(2, [&done](util::TaskId, std::size_t) { done.fetch_add(1); });
  for (int round = 0; round < 5; ++round) {
    std::vector<util::TaskId> batch = {0, 1, 2, 3};
    pool.SubmitBatch(batch);
    pool.Wait();
    EXPECT_EQ(done.load(), (round + 1) * 4);
  }
}

TEST(ThreadPoolTest, StealsRebalanceSkewedBatches) {
  // One long item pins a worker; the stealing path must let the other
  // workers drain the rest of its chunk.  With chunked batch submit on 2
  // workers, one deque holds ~half the items; the blocked owner forces
  // every one of them to be stolen.
  std::atomic<int> done{0};
  ThreadPool pool(2, [&done](util::TaskId t, std::size_t) {
    if (t == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    done.fetch_add(1);
  });
  std::vector<util::TaskId> batch(64);
  for (util::TaskId i = 0; i < 64; ++i) {
    batch[i] = i;
  }
  pool.SubmitBatch(batch);
  pool.Wait();
  EXPECT_EQ(done.load(), 64);
  EXPECT_EQ(pool.Stats().executed, 64u);
}

TEST(ExecutorTest, RunsExactlyTheCascade) {
  util::Rng rng(77);
  const trace::JobTrace trace = trace::MakeRandomDag(60, 0.06, 0.2, 0.7, rng);
  const trace::Cascade cascade = trace::ComputeCascade(trace);
  sched::LevelBasedScheduler scheduler;
  std::atomic<int> executed{0};
  const auto stats = Executor::Run(
      trace, scheduler,
      [&](util::TaskId t) {
        executed.fetch_add(1);
        return trace.Info(t).output_changes;
      },
      {.workers = 4});
  EXPECT_EQ(stats.executed, cascade.NumActive());
  EXPECT_EQ(executed.load(), static_cast<int>(cascade.NumActive()));
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST(ExecutorTest, NullBodyUsesTraceBits) {
  const trace::JobTrace trace = trace::MakeChain(20);
  sched::LevelBasedScheduler scheduler;
  const auto stats = Executor::Run(trace, scheduler, Executor::TaskBody{}, {.workers = 2});
  EXPECT_EQ(stats.executed, 20u);
  EXPECT_EQ(stats.activations, 20u);
}

TEST(ExecutorTest, DynamicOutputChangesControlActivation) {
  // The body decides at runtime: cut the cascade at node 2 of a chain.
  const trace::JobTrace trace = trace::MakeChain(10);
  sched::LevelBasedScheduler scheduler;
  const auto stats = Executor::Run(
      trace, scheduler, [](util::TaskId t) { return t < 2; }, {.workers = 2});
  EXPECT_EQ(stats.executed, 3u);  // 0, 1, 2 (2 runs but stops the cascade)
}

TEST(ExecutorTest, ParallelismActuallyOverlaps) {
  // 8 independent 20ms tasks on 4 workers should take well under 160ms.
  const trace::JobTrace trace = trace::MakeFork(8);
  auto scheduler = sched::CreateScheduler("hybrid");
  const auto stats = Executor::Run(
      trace, *scheduler,
      [](util::TaskId) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return true;
      },
      {.workers = 4});
  EXPECT_EQ(stats.executed, 9u);
  EXPECT_LT(stats.wall_seconds, 0.140);  // ~3 waves of 20ms + slack
}

TEST(ExecutorTest, EveryFactorySchedulerDrivesTheExecutor) {
  util::Rng rng(88);
  const trace::JobTrace trace = trace::MakeRandomDag(40, 0.08, 0.25, 0.8, rng);
  const trace::Cascade cascade = trace::ComputeCascade(trace);
  for (const char* spec :
       {"levelbased", "lbl:3", "logicblox", "signal", "hybrid", "oracle"}) {
    auto scheduler = sched::CreateScheduler(spec);
    const auto stats =
        Executor::Run(trace, *scheduler, Executor::TaskBody{}, {.workers = 3});
    EXPECT_EQ(stats.executed, cascade.NumActive()) << spec;
  }
}

}  // namespace
}  // namespace dsched::runtime
