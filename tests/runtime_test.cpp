// Tests for the thread pool and the real multithreaded executor.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/executor.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/factory.hpp"
#include "sched/level_based.hpp"
#include "trace/cascade.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace dsched::runtime {
namespace {

TEST(ThreadPoolTest, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(done.load(), 20);
}

TEST(ExecutorTest, RunsExactlyTheCascade) {
  util::Rng rng(77);
  const trace::JobTrace trace = trace::MakeRandomDag(60, 0.06, 0.2, 0.7, rng);
  const trace::Cascade cascade = trace::ComputeCascade(trace);
  sched::LevelBasedScheduler scheduler;
  std::atomic<int> executed{0};
  const auto stats = Executor::Run(
      trace, scheduler,
      [&](util::TaskId t) {
        executed.fetch_add(1);
        return trace.Info(t).output_changes;
      },
      {.workers = 4});
  EXPECT_EQ(stats.executed, cascade.NumActive());
  EXPECT_EQ(executed.load(), static_cast<int>(cascade.NumActive()));
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST(ExecutorTest, NullBodyUsesTraceBits) {
  const trace::JobTrace trace = trace::MakeChain(20);
  sched::LevelBasedScheduler scheduler;
  const auto stats = Executor::Run(trace, scheduler, nullptr, {.workers = 2});
  EXPECT_EQ(stats.executed, 20u);
  EXPECT_EQ(stats.activations, 20u);
}

TEST(ExecutorTest, DynamicOutputChangesControlActivation) {
  // The body decides at runtime: cut the cascade at node 2 of a chain.
  const trace::JobTrace trace = trace::MakeChain(10);
  sched::LevelBasedScheduler scheduler;
  const auto stats = Executor::Run(
      trace, scheduler, [](util::TaskId t) { return t < 2; }, {.workers = 2});
  EXPECT_EQ(stats.executed, 3u);  // 0, 1, 2 (2 runs but stops the cascade)
}

TEST(ExecutorTest, ParallelismActuallyOverlaps) {
  // 8 independent 20ms tasks on 4 workers should take well under 160ms.
  const trace::JobTrace trace = trace::MakeFork(8);
  auto scheduler = sched::CreateScheduler("hybrid");
  const auto stats = Executor::Run(
      trace, *scheduler,
      [](util::TaskId) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return true;
      },
      {.workers = 4});
  EXPECT_EQ(stats.executed, 9u);
  EXPECT_LT(stats.wall_seconds, 0.140);  // ~3 waves of 20ms + slack
}

TEST(ExecutorTest, EveryFactorySchedulerDrivesTheExecutor) {
  util::Rng rng(88);
  const trace::JobTrace trace = trace::MakeRandomDag(40, 0.08, 0.25, 0.8, rng);
  const trace::Cascade cascade = trace::ComputeCascade(trace);
  for (const char* spec :
       {"levelbased", "lbl:3", "logicblox", "signal", "hybrid", "oracle"}) {
    auto scheduler = sched::CreateScheduler(spec);
    const auto stats =
        Executor::Run(trace, *scheduler, nullptr, {.workers = 3});
    EXPECT_EQ(stats.executed, cascade.NumActive()) << spec;
  }
}

}  // namespace
}  // namespace dsched::runtime
