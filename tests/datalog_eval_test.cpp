// Evaluation tests: golden programs, semi-naive ≡ naive, builtins,
// negation, and the Database facade.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datalog/database.hpp"
#include "datalog/eval.hpp"
#include "datalog/parser.hpp"
#include "datalog/stratify.hpp"
#include "datalog/validate.hpp"
#include "util/rng.hpp"

namespace dsched::datalog {
namespace {

/// Sorted copy for set comparison.
std::vector<Tuple> Sorted(std::vector<Tuple> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// All tuples of every predicate, as one comparable snapshot.
std::vector<std::vector<Tuple>> Snapshot(const Program& p,
                                         const RelationStore& store) {
  std::vector<std::vector<Tuple>> out;
  for (std::uint32_t pred = 0; pred < p.NumPredicates(); ++pred) {
    out.push_back(Sorted(store.Of(pred).Tuples()));
  }
  return out;
}

TEST(EvalTest, TransitiveClosureOnChain) {
  Database db(R"(
    tc(X, Y) :- edge(X, Y).
    tc(X, Z) :- tc(X, Y), edge(Y, Z).
  )");
  const int n = 10;
  for (int i = 0; i + 1 < n; ++i) {
    db.Insert("edge", {Value::Int(i), Value::Int(i + 1)});
  }
  db.Materialize();
  EXPECT_EQ(db.Query("tc").size(), static_cast<std::size_t>(n * (n - 1) / 2));
  EXPECT_TRUE(db.Contains("tc", {Value::Int(0), Value::Int(9)}));
  EXPECT_FALSE(db.Contains("tc", {Value::Int(5), Value::Int(2)}));
}

TEST(EvalTest, FactsInProgramText) {
  Database db(R"(
    edge(a, b).
    edge(b, c).
    tc(X, Y) :- edge(X, Y).
    tc(X, Z) :- tc(X, Y), edge(Y, Z).
  )");
  db.Materialize();
  EXPECT_EQ(db.Query("tc").size(), 3u);
  EXPECT_TRUE(db.Contains("tc", {db.Sym("a"), db.Sym("c")}));
}

TEST(EvalTest, SameGeneration) {
  // Classic same-generation: sg(X, Y) if X and Y are equally deep cousins.
  Database db(R"(
    sg(X, Y) :- person(X), person(Y), X = Y.
    sg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).
  )");
  // Tree: r -> a, b;  a -> c;  b -> d.
  for (const char* who : {"r", "a", "b", "c", "d"}) {
    db.Insert("person", {db.Sym(who)});
  }
  db.Insert("parent", {db.Sym("a"), db.Sym("r")});
  db.Insert("parent", {db.Sym("b"), db.Sym("r")});
  db.Insert("parent", {db.Sym("c"), db.Sym("a")});
  db.Insert("parent", {db.Sym("d"), db.Sym("b")});
  db.Materialize();
  EXPECT_TRUE(db.Contains("sg", {db.Sym("a"), db.Sym("b")}));
  EXPECT_TRUE(db.Contains("sg", {db.Sym("c"), db.Sym("d")}));
  EXPECT_FALSE(db.Contains("sg", {db.Sym("a"), db.Sym("d")}));
}

TEST(EvalTest, NegationUnreachable) {
  Database db(R"(
    reach(X) :- start(X).
    reach(Y) :- reach(X), edge(X, Y).
    unreach(X) :- node(X), !reach(X).
  )");
  for (int i = 0; i < 6; ++i) {
    db.Insert("node", {Value::Int(i)});
  }
  db.Insert("start", {Value::Int(0)});
  db.Insert("edge", {Value::Int(0), Value::Int(1)});
  db.Insert("edge", {Value::Int(1), Value::Int(2)});
  db.Insert("edge", {Value::Int(4), Value::Int(5)});
  db.Materialize();
  EXPECT_EQ(db.Query("reach").size(), 3u);  // 0, 1, 2
  EXPECT_EQ(db.Query("unreach").size(), 3u);  // 3, 4, 5
  EXPECT_TRUE(db.Contains("unreach", {Value::Int(4)}));
}

TEST(EvalTest, ComparisonBuiltins) {
  Database db(R"(
    big(X) :- amount(X, V), V >= 100.
    tiny(X) :- amount(X, V), V < 10, V != 5.
  )");
  db.Insert("amount", {db.Sym("a"), Value::Int(250)});
  db.Insert("amount", {db.Sym("b"), Value::Int(50)});
  db.Insert("amount", {db.Sym("c"), Value::Int(5)});
  db.Insert("amount", {db.Sym("d"), Value::Int(3)});
  db.Materialize();
  EXPECT_EQ(db.Query("big").size(), 1u);
  EXPECT_EQ(db.Query("tiny").size(), 1u);
  EXPECT_TRUE(db.Contains("tiny", {db.Sym("d")}));
}

TEST(EvalTest, RepeatedVariablesInLiteral) {
  Database db("loop(X) :- edge(X, X).");
  db.Insert("edge", {Value::Int(1), Value::Int(2)});
  db.Insert("edge", {Value::Int(3), Value::Int(3)});
  db.Materialize();
  EXPECT_EQ(db.Query("loop").size(), 1u);
  EXPECT_TRUE(db.Contains("loop", {Value::Int(3)}));
}

TEST(EvalTest, MutualRecursionEvenOdd) {
  Database db(R"(
    even(X) :- zero(X).
    even(Y) :- odd(X), succ(X, Y).
    odd(Y) :- even(X), succ(X, Y).
  )");
  db.Insert("zero", {Value::Int(0)});
  for (int i = 0; i < 10; ++i) {
    db.Insert("succ", {Value::Int(i), Value::Int(i + 1)});
  }
  db.Materialize();
  EXPECT_EQ(db.Query("even").size(), 6u);  // 0, 2, 4, 6, 8, 10
  EXPECT_EQ(db.Query("odd").size(), 5u);
  EXPECT_TRUE(db.Contains("even", {Value::Int(10)}));
  EXPECT_TRUE(db.Contains("odd", {Value::Int(7)}));
}

TEST(EvalTest, SemiNaiveMatchesNaiveOnRandomPrograms) {
  // Random edge relations through a fixed rule mix, checked at several
  // densities: the two evaluators must produce identical stores.
  util::Rng rng(2718);
  const char* program_text = R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    sym(X, Y) :- e(X, Y).
    sym(Y, X) :- sym(X, Y).
    deadend(X) :- n(X), !hasout(X).
    hasout(X) :- e(X, _).
    self(X) :- tc(X, X).
  )";
  for (int trial = 0; trial < 5; ++trial) {
    const Program program = ParseProgram(program_text);
    ValidateProgram(program);
    const Stratification strat = Stratify(program);
    RelationStore semi(program);
    RelationStore naive(program);
    const int n = 12;
    for (int i = 0; i < n; ++i) {
      semi.Of(program.PredicateId("n")).Insert({Value::Int(i)});
      naive.Of(program.PredicateId("n")).Insert({Value::Int(i)});
    }
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j && rng.NextBool(0.12)) {
          semi.Of(program.PredicateId("e"))
              .Insert({Value::Int(i), Value::Int(j)});
          naive.Of(program.PredicateId("e"))
              .Insert({Value::Int(i), Value::Int(j)});
        }
      }
    }
    EvaluateProgram(program, strat, semi);
    EvaluateProgramNaive(program, strat, naive);
    EXPECT_EQ(Snapshot(program, semi), Snapshot(program, naive))
        << "trial " << trial;
  }
}

TEST(EvalTest, StatsArePopulated) {
  const Program program = ParseProgram(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
  )");
  const Stratification strat = Stratify(program);
  RelationStore store(program);
  for (int i = 0; i < 20; ++i) {
    store.Of(program.PredicateId("e")).Insert({Value::Int(i), Value::Int(i + 1)});
  }
  const EvalStats stats = EvaluateProgram(program, strat, store);
  EXPECT_GT(stats.rule_applications, 0u);
  EXPECT_GT(stats.tuples_inserted, 0u);
  EXPECT_GT(stats.rounds, 5u);  // chain depth forces many rounds
  EXPECT_EQ(stats.tuples_inserted, store.Of(program.PredicateId("tc")).Size());
}

TEST(DatabaseTest, InsertAfterMaterializeRejected) {
  Database db("p(X) :- q(X).");
  db.Insert("q", {Value::Int(1)});
  db.Materialize();
  EXPECT_THROW(db.Insert("q", {Value::Int(2)}), util::LogicError);
}

TEST(DatabaseTest, ArityMismatchOnInsert) {
  Database db("p(X) :- q(X).");
  EXPECT_THROW(db.Insert("q", {Value::Int(1), Value::Int(2)}),
               util::InvalidArgument);
}

TEST(DatabaseTest, UnknownPredicateThrows) {
  Database db("p(X) :- q(X).");
  EXPECT_THROW(db.Insert("zzz", {Value::Int(1)}), util::InvalidArgument);
  EXPECT_THROW(db.Query("zzz"), util::InvalidArgument);
}

}  // namespace
}  // namespace dsched::datalog
