// Unit and property tests for the interval-list transitive-closure index.
#include <gtest/gtest.h>

#include "graph/digraph_builder.hpp"
#include "graph/reachability.hpp"
#include "interval/interval_index.hpp"
#include "interval/interval_set.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace dsched::interval {
namespace {

TEST(IntervalSetTest, InsertAndContains) {
  IntervalSet set;
  set.Insert(5, 10);
  EXPECT_TRUE(set.Contains(5));
  EXPECT_TRUE(set.Contains(10));
  EXPECT_FALSE(set.Contains(4));
  EXPECT_FALSE(set.Contains(11));
  EXPECT_EQ(set.Size(), 1u);
  EXPECT_EQ(set.Cardinality(), 6u);
}

TEST(IntervalSetTest, CoalescesOverlapsAndAdjacency) {
  IntervalSet set;
  set.Insert(1, 3);
  set.Insert(7, 9);
  EXPECT_EQ(set.Size(), 2u);
  set.Insert(4, 6);  // bridges both (adjacent on each side)
  EXPECT_EQ(set.Size(), 1u);
  EXPECT_EQ(set.Intervals()[0], (Interval{1, 9}));
}

TEST(IntervalSetTest, DisjointStaysDisjoint) {
  IntervalSet set;
  set.Insert(10, 12);
  set.Insert(0, 2);
  set.Insert(20, 22);
  EXPECT_EQ(set.Size(), 3u);
  EXPECT_EQ(set.ToString(), "[0,2] [10,12] [20,22]");
}

TEST(IntervalSetTest, MergeCoalesces) {
  IntervalSet a;
  a.Insert(0, 4);
  a.Insert(10, 14);
  IntervalSet b;
  b.Insert(5, 9);
  b.Insert(20, 21);
  a.Merge(b);
  EXPECT_EQ(a.Size(), 2u);
  EXPECT_TRUE(a.Contains(7));
  EXPECT_TRUE(a.Contains(20));
  EXPECT_FALSE(a.Contains(15));
}

TEST(IntervalSetTest, MergeIntoEmpty) {
  IntervalSet a;
  IntervalSet b;
  b.Insert(3, 5);
  a.Merge(b);
  EXPECT_EQ(a.Size(), 1u);
  a.Merge(IntervalSet{});
  EXPECT_EQ(a.Size(), 1u);
}

TEST(IntervalSetTest, ProbeCounterAdvances) {
  IntervalSet set;
  for (std::uint32_t i = 0; i < 20; ++i) {
    set.Insert(i * 3, i * 3 + 1);
  }
  std::uint64_t probes = 0;
  (void)set.Contains(30, &probes);
  EXPECT_GT(probes, 0u);
  EXPECT_LE(probes, 6u);  // log2(20) ≈ 4.3
}

TEST(IntervalSetTest, RandomizedAgainstReferenceSet) {
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    IntervalSet set;
    std::vector<bool> reference(200, false);
    for (int op = 0; op < 40; ++op) {
      const auto lo = static_cast<std::uint32_t>(rng.NextBelow(190));
      const auto hi = lo + static_cast<std::uint32_t>(rng.NextBelow(10));
      set.Insert(lo, hi);
      for (std::uint32_t x = lo; x <= hi; ++x) {
        reference[x] = true;
      }
    }
    for (std::uint32_t x = 0; x < 200; ++x) {
      EXPECT_EQ(set.Contains(x), reference[x]) << "x=" << x;
    }
    // Coalescing invariant: intervals are sorted, disjoint, non-adjacent.
    for (std::size_t i = 1; i < set.Intervals().size(); ++i) {
      EXPECT_GT(set.Intervals()[i].lo, set.Intervals()[i - 1].hi + 1);
    }
  }
}

TEST(IntervalIndexTest, DiamondReachability) {
  graph::DigraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  const graph::Dag dag = std::move(b).Build();
  const IntervalIndex index(dag);
  EXPECT_TRUE(index.Reaches(0, 3));
  EXPECT_TRUE(index.Reaches(0, 0));  // reflexive
  EXPECT_TRUE(index.IsAncestor(1, 3));
  EXPECT_FALSE(index.Reaches(1, 2));
  EXPECT_FALSE(index.Reaches(3, 0));
}

TEST(IntervalIndexTest, MatchesBruteForceOnRandomDags) {
  util::Rng rng(123);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 10 + rng.NextBelow(50);
    graph::DigraphBuilder b(n);
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) {
        if (rng.NextBool(0.08)) {
          b.AddEdge(static_cast<util::TaskId>(u),
                    static_cast<util::TaskId>(v));
        }
      }
    }
    const graph::Dag dag = std::move(b).Build();
    const IntervalIndex index(dag);
    const graph::ReachabilityMatrix matrix(dag);
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = 0; v < n; ++v) {
        EXPECT_EQ(index.Reaches(static_cast<util::TaskId>(u),
                                static_cast<util::TaskId>(v)),
                  matrix.Reaches(static_cast<util::TaskId>(u),
                                 static_cast<util::TaskId>(v)))
            << "trial " << trial << ": " << u << " -> " << v;
      }
    }
  }
}

TEST(IntervalIndexTest, ChainIsCompact) {
  // A chain's descendant sets are contiguous: one interval per node.
  graph::DigraphBuilder b(100);
  for (util::TaskId i = 0; i + 1 < 100; ++i) {
    b.AddEdge(i, i + 1);
  }
  const IntervalIndex index(std::move(b).Build());
  EXPECT_EQ(index.TotalIntervals(), 100u);
}

TEST(IntervalIndexTest, StaircaseFragmentsQuadratically) {
  // The adversarial staircase forces Θ(m²) intervals (see generators.hpp).
  const std::size_t m = 64;
  const auto trace = trace::MakeIntervalAdversarial(m);
  const IntervalIndex index(trace.Graph());
  // Σ_{i=1..m} i singleton intervals for sources + m for sinks.
  const std::uint64_t expected_min = m * (m + 1) / 2;
  EXPECT_GE(index.TotalIntervals(), expected_min);
  // And memory reflects it.
  EXPECT_GE(index.MemoryBytes(), expected_min * sizeof(Interval));
}

TEST(IntervalIndexTest, EmptyGraph) {
  const graph::Dag dag;
  const IntervalIndex index(dag);
  EXPECT_EQ(index.NumNodes(), 0u);
  EXPECT_EQ(index.TotalIntervals(), 0u);
}

TEST(IntervalIndexTest, ProbeCountingWorks) {
  graph::DigraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  const IntervalIndex index(std::move(b).Build());
  std::uint64_t probes = 0;
  (void)index.Reaches(0, 2, &probes);
  EXPECT_GT(probes, 0u);
}

}  // namespace
}  // namespace dsched::interval
