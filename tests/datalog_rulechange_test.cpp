// Tests for incremental rule changes (Database::AddRules / RemoveRule):
// after any change the store must equal a from-scratch evaluation of the
// new program over the same base facts.
#include <gtest/gtest.h>

#include <algorithm>

#include "datalog/database.hpp"
#include "datalog/eval.hpp"
#include "datalog/parser.hpp"
#include "datalog/stratify.hpp"
#include "datalog/validate.hpp"
#include "util/error.hpp"

namespace dsched::datalog {
namespace {

std::vector<Tuple> Sorted(std::vector<Tuple> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(RuleChangeTest, AddRuleDerivesIncrementally) {
  Database db(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
  )");
  for (int i = 0; i + 1 < 5; ++i) {
    db.Insert("e", {Value::Int(i), Value::Int(i + 1)});
  }
  db.Materialize();
  EXPECT_EQ(db.Query("tc").size(), 10u);

  // Add symmetric closure on top — a brand-new predicate.
  const UpdateResult result = db.AddRules(R"(
    sym(X, Y) :- tc(X, Y).
    sym(Y, X) :- tc(X, Y).
  )");
  EXPECT_EQ(db.Query("sym").size(), 20u);
  EXPECT_EQ(result.total_inserted, 20u);
  EXPECT_TRUE(db.Contains("sym", {Value::Int(4), Value::Int(0)}));
}

TEST(RuleChangeTest, AddRecursiveRuleReachesFixpoint) {
  Database db("hop(X, Y) :- e(X, Y).");
  for (int i = 0; i + 1 < 6; ++i) {
    db.Insert("e", {Value::Int(i), Value::Int(i + 1)});
  }
  db.Materialize();
  EXPECT_EQ(db.Query("hop").size(), 5u);
  // Make hop transitive — recursion through the NEW rule must run to
  // fixpoint, not stop after one application.
  db.AddRules("hop(X, Z) :- hop(X, Y), hop(Y, Z).");
  EXPECT_EQ(db.Query("hop").size(), 15u);
  EXPECT_TRUE(db.Contains("hop", {Value::Int(0), Value::Int(5)}));
}

TEST(RuleChangeTest, AddRuleCascadesThroughNegation) {
  Database db(R"(
    covered(X) :- blanket(X).
    exposed(X) :- thing(X), !covered(X).
    tarpish(X) :- tarp(X).
  )");
  db.Insert("thing", {Value::Int(1)});
  db.Insert("thing", {Value::Int(2)});
  db.Insert("blanket", {Value::Int(1)});
  db.Insert("tarp", {Value::Int(2)});
  db.Materialize();
  EXPECT_TRUE(db.Contains("exposed", {Value::Int(2)}));

  // New rule inserts into the negated predicate: exposed(2) must retract.
  db.AddRules("covered(X) :- tarp(X).");
  EXPECT_FALSE(db.Contains("exposed", {Value::Int(2)}));
  EXPECT_TRUE(db.Query("exposed").empty());
}

TEST(RuleChangeTest, AddAggregateRule) {
  Database db("pair(X, Y) :- e(X, Y).");
  db.Insert("e", {Value::Int(1), Value::Int(2)});
  db.Insert("e", {Value::Int(1), Value::Int(3)});
  db.Materialize();
  db.AddRules("fan(X; count()) :- pair(X, _).");
  EXPECT_TRUE(db.Contains("fan", {Value::Int(1), Value::Int(2)}));
}

TEST(RuleChangeTest, AddRulesFailureLeavesDatabaseIntact) {
  Database db("p(X) :- q(X).");
  db.Insert("q", {Value::Int(1)});
  db.Materialize();
  // Unsafe rule: rejected, nothing changes.
  EXPECT_THROW(db.AddRules("p(Y) :- q(X)."), util::InvalidArgument);
  // Unstratifiable: rejected, nothing changes.
  EXPECT_THROW(db.AddRules("q(X) :- p(X), !p(X)."), util::InvalidArgument);
  EXPECT_EQ(db.GetProgram().rules.size(), 1u);
  EXPECT_EQ(db.Query("p").size(), 1u);
}

TEST(RuleChangeTest, RemoveRuleRetractsDerivations) {
  Database db(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
  )");
  for (int i = 0; i + 1 < 5; ++i) {
    db.Insert("e", {Value::Int(i), Value::Int(i + 1)});
  }
  db.Materialize();
  EXPECT_EQ(db.Query("tc").size(), 10u);

  // Drop the transitive rule: only direct edges remain.
  const UpdateResult result =
      db.RemoveRule("tc(X, Z) :- tc(X, Y), e(Y, Z).");
  EXPECT_EQ(db.Query("tc").size(), 4u);
  EXPECT_EQ(result.total_deleted, 6u);
  EXPECT_EQ(db.GetProgram().rules.size(), 1u);
}

TEST(RuleChangeTest, RemoveRuleRederivesSharedSupport) {
  Database db(R"(
    p(X) :- a(X).
    p(X) :- b(X).
  )");
  db.Insert("a", {Value::Int(1)});
  db.Insert("b", {Value::Int(1)});
  db.Insert("b", {Value::Int(2)});
  db.Materialize();
  db.RemoveRule("p(X) :- a(X).");
  // p(1) survives via the b-rule; nothing else lost except a-only support.
  EXPECT_TRUE(db.Contains("p", {Value::Int(1)}));
  EXPECT_TRUE(db.Contains("p", {Value::Int(2)}));
  EXPECT_EQ(db.Query("p").size(), 2u);
}

TEST(RuleChangeTest, RemoveRuleCreatesThroughNegation) {
  Database db(R"(
    covered(X) :- blanket(X).
    exposed(X) :- thing(X), !covered(X).
  )");
  db.Insert("thing", {Value::Int(1)});
  db.Insert("blanket", {Value::Int(1)});
  db.Materialize();
  EXPECT_TRUE(db.Query("exposed").empty());
  db.RemoveRule("covered(X) :- blanket(X).");
  EXPECT_TRUE(db.Contains("exposed", {Value::Int(1)}));
}

TEST(RuleChangeTest, RemoveFactClause) {
  Database db(R"(
    e(a, b).
    tc(X, Y) :- e(X, Y).
  )");
  db.Materialize();
  EXPECT_EQ(db.Query("tc").size(), 1u);
  db.RemoveRule("e(a, b).");
  EXPECT_TRUE(db.Query("e").empty());
  EXPECT_TRUE(db.Query("tc").empty());
}

TEST(RuleChangeTest, RemoveUnknownRuleThrows) {
  Database db("p(X) :- q(X).");
  db.Insert("q", {Value::Int(1)});
  db.Materialize();
  EXPECT_THROW(db.RemoveRule("p(X) :- missingpred(X)."), util::ParseError);
  EXPECT_THROW(db.RemoveRule("q(X) :- p(X)."), util::InvalidArgument);
}

TEST(RuleChangeTest, EquivalentToFromScratchAfterMixedChanges) {
  const char* base_program = R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    hasout(X) :- e(X, _).
    deadend(X) :- n(X), !hasout(X).
  )";
  Database db(base_program);
  for (int i = 0; i < 6; ++i) {
    db.Insert("n", {Value::Int(i)});
  }
  for (const auto& [i, j] :
       std::vector<std::pair<int, int>>{{0, 1}, {1, 2}, {3, 4}, {4, 5}}) {
    db.Insert("e", {Value::Int(i), Value::Int(j)});
  }
  db.Materialize();

  db.AddRules("far(X, Z) :- tc(X, Y), tc(Y, Z).");
  db.RemoveRule("tc(X, Z) :- tc(X, Y), e(Y, Z).");
  db.AddRules("island(X; count()) :- deadend(X).");

  // From-scratch reference over the final program text.
  Database fresh(R"(
    tc(X, Y) :- e(X, Y).
    hasout(X) :- e(X, _).
    deadend(X) :- n(X), !hasout(X).
    far(X, Z) :- tc(X, Y), tc(Y, Z).
    island(X; count()) :- deadend(X).
  )");
  for (int i = 0; i < 6; ++i) {
    fresh.Insert("n", {Value::Int(i)});
  }
  for (const auto& [i, j] :
       std::vector<std::pair<int, int>>{{0, 1}, {1, 2}, {3, 4}, {4, 5}}) {
    fresh.Insert("e", {Value::Int(i), Value::Int(j)});
  }
  fresh.Materialize();

  for (const char* pred : {"tc", "hasout", "deadend", "far", "island"}) {
    EXPECT_EQ(Sorted(db.Query(pred)), Sorted(fresh.Query(pred))) << pred;
  }
}

TEST(RuleChangeTest, BaseUpdatesKeepWorkingAfterRuleChanges) {
  Database db("p(X) :- q(X).");
  db.Insert("q", {Value::Int(1)});
  db.Materialize();
  db.AddRules("r(X) :- p(X).");
  auto update = db.MakeUpdate();
  update.Insert("q", {Value::Int(2)});
  db.Apply(update);
  EXPECT_TRUE(db.Contains("r", {Value::Int(2)}));
}

TEST(RuleChangeTest, ProgramVersionAdvancesPerChange) {
  Database db(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
  )");
  db.Insert("e", {Value::Int(1), Value::Int(2)});
  db.Materialize();
  EXPECT_EQ(db.ProgramVersion(), 1u);
  const Database::EvolveResult added = db.EvolveAddRules("out(X) :- e(X, _).");
  EXPECT_EQ(added.program_version, 2u);
  EXPECT_EQ(db.ProgramVersion(), 2u);
  const Database::EvolveResult removed = db.EvolveRemoveRule(
      "tc(X, Z) :- tc(X, Y), e(Y, Z).");
  EXPECT_EQ(removed.program_version, 3u);
  EXPECT_EQ(db.ProgramVersion(), 3u);
  // A REJECTED change must not burn a version.
  EXPECT_THROW(db.EvolveAddRules("p(Y) :- e(X, _)."), util::InvalidArgument);
  EXPECT_EQ(db.ProgramVersion(), 3u);
}

TEST(RuleChangeTest, SmallConeReusesComponentsOutsideIt) {
  // Two independent towers: the tc tower and the side chain.  Changing the
  // side chain must not re-stratify (or maintain) the tc tower.
  Database db(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    tcc(X; count()) :- tc(X, _).
    side(X) :- tag(X).
    side2(X) :- side(X).
  )");
  for (int i = 0; i + 1 < 8; ++i) {
    db.Insert("e", {Value::Int(i), Value::Int(i + 1)});
  }
  db.Insert("tag", {Value::Int(7)});
  db.Materialize();

  const Database::EvolveResult result =
      db.EvolveAddRules("side3(X) :- tag(X), side(X).");
  // Cone = {side3} only: side/side2 have no edge FROM side3, and the tc
  // tower is untouched entirely.
  EXPECT_EQ(result.stats.cone_predicates, 1u);
  EXPECT_EQ(result.stats.cone_components, 1u);
  EXPECT_GE(result.stats.reused_components, 6u);  // e, tc, tcc, tag, side, side2
  EXPECT_TRUE(db.Contains("side3", {Value::Int(7)}));
  EXPECT_EQ(db.Query("tc").size(), 28u);
}

TEST(RuleChangeTest, RestratifyMatchesFullStratify) {
  // The incremental re-stratification must induce the same component
  // partition, per-predicate strata, and recursion flags as a from-scratch
  // Stratify of the final program — component NUMBERING may differ.
  const char* old_text = R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    hasout(X) :- e(X, _).
    deadend(X) :- n(X), !hasout(X).
    side(X) :- tag(X).
  )";
  Program old_program = ParseProgram(old_text);
  ValidateProgram(old_program);
  const Stratification old_strat = Stratify(old_program);

  Program next = old_program;
  ExtendProgram(next, R"(
    reach(X) :- side(X).
    reach(Y) :- reach(X), e(X, Y).
    side(X) :- reach(X), deadend(X).
  )");
  ValidateProgram(next);
  std::vector<std::uint32_t> changed_heads;
  for (std::size_t r = old_program.rules.size(); r < next.rules.size(); ++r) {
    changed_heads.push_back(next.rules[r].head.predicate);
  }
  std::vector<bool> affected;
  RestratifyStats stats;
  const Stratification incremental = RestratifyAffected(
      next, old_strat, old_program.NumPredicates(), changed_heads, &affected,
      &stats);
  const Stratification scratch = Stratify(next);

  ASSERT_EQ(incremental.component_of.size(), scratch.component_of.size());
  // Same partition: predicates share an incremental component iff they
  // share a scratch component.
  const std::size_t n = next.NumPredicates();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      EXPECT_EQ(incremental.component_of[a] == incremental.component_of[b],
                scratch.component_of[a] == scratch.component_of[b])
          << "predicates " << a << " and " << b;
    }
  }
  for (std::size_t p = 0; p < n; ++p) {
    EXPECT_EQ(incremental.component_stratum[incremental.component_of[p]],
              scratch.component_stratum[scratch.component_of[p]])
        << "stratum of predicate " << p;
    EXPECT_EQ(incremental.component_recursive[incremental.component_of[p]],
              scratch.component_recursive[scratch.component_of[p]])
        << "recursion flag of predicate " << p;
  }
  // The new side -> reach -> side cycle merges them into one recursive
  // component; side was an OLD predicate whose derivations change, so the
  // cone must have swallowed the whole new SCC.
  const std::uint32_t side = next.PredicateId("side");
  const std::uint32_t reach = next.PredicateId("reach");
  EXPECT_EQ(incremental.component_of[side], incremental.component_of[reach]);
  EXPECT_TRUE(affected[side]);
  EXPECT_TRUE(affected[reach]);
  EXPECT_GT(stats.reused_components, 0u);
}

TEST(RuleChangeTest, EvolveKeepsCountingStrategyExact) {
  // counting keeps per-derivation counts keyed to the RULE SET; an evolve
  // must invalidate exactly the cone so later counting updates stay exact.
  Database db(R"(
    p(X) :- a(X).
    p(X) :- b(X).
    q(X) :- p(X).
    side(X) :- tag(X).
  )");
  db.SetDefaultStrategy(MaintenanceStrategy::kCounting);
  db.Insert("a", {Value::Int(1)});
  db.Insert("b", {Value::Int(1)});
  db.Insert("b", {Value::Int(2)});
  db.Insert("tag", {Value::Int(9)});
  db.Materialize();
  {
    auto update = db.MakeUpdate();
    update.Insert("a", {Value::Int(3)});
    db.Apply(update);  // seals the counting plane
  }
  db.EvolveAddRules("p(X) :- tag(X).");
  // Deleting b(1) is a pure decrement on p(1) (still held by the a-rule);
  // deleting tag(9) must kill p(9) exactly once despite the rule being
  // newer than the seal.
  {
    auto update = db.MakeUpdate();
    update.Delete("b", {Value::Int(1)});
    update.Delete("tag", {Value::Int(9)});
    db.Apply(update);
  }
  EXPECT_TRUE(db.Contains("p", {Value::Int(1)}));
  EXPECT_FALSE(db.Contains("p", {Value::Int(9)}));
  EXPECT_FALSE(db.Contains("q", {Value::Int(9)}));
  EXPECT_EQ(db.Query("p").size(), 3u);  // 1, 2, 3
}

}  // namespace
}  // namespace dsched::datalog
