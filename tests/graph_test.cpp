// Unit tests for the graph module.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/critical_path.hpp"
#include "graph/dag.hpp"
#include "graph/digraph_builder.hpp"
#include "graph/dot_export.hpp"
#include "graph/levels.hpp"
#include "graph/reachability.hpp"
#include "graph/stats.hpp"
#include "graph/topo.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsched::graph {
namespace {

/// Diamond: 0 -> {1, 2} -> 3.
Dag Diamond() {
  DigraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  return std::move(b).Build();
}

/// Random DAG with edges only u -> v for u < v.
Dag RandomDag(std::size_t n, double p, util::Rng& rng) {
  DigraphBuilder b(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (rng.NextBool(p)) {
        b.AddEdge(static_cast<TaskId>(u), static_cast<TaskId>(v));
      }
    }
  }
  return std::move(b).Build();
}

TEST(BuilderTest, EmptyGraph) {
  DigraphBuilder b(0);
  const Dag dag = std::move(b).Build();
  EXPECT_EQ(dag.NumNodes(), 0u);
  EXPECT_EQ(dag.NumEdges(), 0u);
}

TEST(BuilderTest, AdjacencyBothDirections) {
  const Dag dag = Diamond();
  EXPECT_EQ(dag.NumNodes(), 4u);
  EXPECT_EQ(dag.NumEdges(), 4u);
  const auto out0 = dag.OutNeighbors(0);
  EXPECT_EQ(std::vector<TaskId>(out0.begin(), out0.end()),
            (std::vector<TaskId>{1, 2}));
  const auto in3 = dag.InNeighbors(3);
  EXPECT_EQ(std::vector<TaskId>(in3.begin(), in3.end()),
            (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(dag.OutDegree(3), 0u);
  EXPECT_EQ(dag.InDegree(0), 0u);
}

TEST(BuilderTest, SourcesAndSinks) {
  const Dag dag = Diamond();
  EXPECT_EQ(dag.Sources(), std::vector<TaskId>{0});
  EXPECT_EQ(dag.Sinks(), std::vector<TaskId>{3});
}

TEST(BuilderTest, DeduplicatesParallelEdges) {
  DigraphBuilder b(2);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  const Dag dag = std::move(b).Build();
  EXPECT_EQ(dag.NumEdges(), 1u);
}

TEST(BuilderTest, RejectsSelfLoop) {
  DigraphBuilder b(2);
  EXPECT_THROW(b.AddEdge(1, 1), util::InvalidArgument);
}

TEST(BuilderTest, RejectsCycle) {
  DigraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  EXPECT_THROW(std::move(b).Build(), util::InvalidArgument);
}

TEST(BuilderTest, AddNodesExtends) {
  DigraphBuilder b(1);
  const TaskId first = b.AddNodes(3);
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(b.NumNodes(), 4u);
  EXPECT_EQ(b.AddNode(), 4u);
}

TEST(TopoTest, RespectsEdges) {
  util::Rng rng(5);
  const Dag dag = RandomDag(60, 0.1, rng);
  const auto rank = TopologicalRank(dag);
  for (std::size_t u = 0; u < dag.NumNodes(); ++u) {
    for (const TaskId v : dag.OutNeighbors(static_cast<TaskId>(u))) {
      EXPECT_LT(rank[u], rank[v]);
    }
  }
}

TEST(TopoTest, DeterministicOrder) {
  const Dag dag = Diamond();
  EXPECT_EQ(TopologicalOrder(dag), (std::vector<TaskId>{0, 1, 2, 3}));
}

TEST(LevelsTest, DiamondLevels) {
  const LevelMap levels(Diamond());
  EXPECT_EQ(levels.LevelOf(0), 0u);
  EXPECT_EQ(levels.LevelOf(1), 1u);
  EXPECT_EQ(levels.LevelOf(2), 1u);
  EXPECT_EQ(levels.LevelOf(3), 2u);
  EXPECT_EQ(levels.NumLevels(), 3u);
  EXPECT_EQ(levels.LevelWidth(1), 2u);
}

TEST(LevelsTest, LongestPathNotShortest) {
  // 0 -> 3 directly and 0 -> 1 -> 2 -> 3: level(3) is the longest, 3.
  DigraphBuilder b(4);
  b.AddEdge(0, 3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  const LevelMap levels(std::move(b).Build());
  EXPECT_EQ(levels.LevelOf(3), 3u);
}

TEST(LevelsTest, LevelsStrictlyIncreaseAlongEdges) {
  util::Rng rng(6);
  const Dag dag = RandomDag(80, 0.07, rng);
  const auto levels = ComputeLevels(dag);
  for (std::size_t u = 0; u < dag.NumNodes(); ++u) {
    for (const TaskId v : dag.OutNeighbors(static_cast<TaskId>(u))) {
      EXPECT_LT(levels[u], levels[v]);
    }
  }
}

TEST(LevelsTest, GroupedIndexIsConsistent) {
  util::Rng rng(7);
  const Dag dag = RandomDag(50, 0.1, rng);
  const LevelMap levels(dag);
  std::size_t total = 0;
  for (Level l = 0; l < levels.NumLevels(); ++l) {
    for (const TaskId v : levels.NodesAtLevel(l)) {
      EXPECT_EQ(levels.LevelOf(v), l);
      ++total;
    }
  }
  EXPECT_EQ(total, dag.NumNodes());
}

TEST(ReachabilityTest, BfsMatchesMatrix) {
  util::Rng rng(8);
  const Dag dag = RandomDag(40, 0.08, rng);
  const ReachabilityMatrix matrix(dag);
  for (std::size_t u = 0; u < dag.NumNodes(); ++u) {
    for (std::size_t v = 0; v < dag.NumNodes(); ++v) {
      EXPECT_EQ(IsReachable(dag, static_cast<TaskId>(u), static_cast<TaskId>(v)),
                matrix.Reaches(static_cast<TaskId>(u), static_cast<TaskId>(v)))
          << u << " -> " << v;
    }
  }
}

TEST(ReachabilityTest, AncestorsAndDescendantsAreDual) {
  util::Rng rng(9);
  const Dag dag = RandomDag(35, 0.1, rng);
  for (std::size_t u = 0; u < dag.NumNodes(); ++u) {
    for (const TaskId d : Descendants(dag, static_cast<TaskId>(u))) {
      const auto anc = Ancestors(dag, d);
      EXPECT_TRUE(std::binary_search(anc.begin(), anc.end(),
                                     static_cast<TaskId>(u)));
    }
  }
}

TEST(ReachabilityTest, DescendantCountMatchesList) {
  util::Rng rng(10);
  const Dag dag = RandomDag(30, 0.12, rng);
  const ReachabilityMatrix matrix(dag);
  for (std::size_t u = 0; u < dag.NumNodes(); ++u) {
    EXPECT_EQ(matrix.DescendantCount(static_cast<TaskId>(u)),
              Descendants(dag, static_cast<TaskId>(u)).size());
  }
}

TEST(ReachabilityTest, DescendantsOfSetUnions) {
  const Dag dag = Diamond();
  const auto desc = DescendantsOfSet(dag, {1, 2});
  EXPECT_EQ(desc, std::vector<TaskId>{3});
}

TEST(CriticalPathTest, WeightedDiamond) {
  const Dag dag = Diamond();
  const std::vector<double> weights{1.0, 5.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(CriticalPathWeight(dag, weights), 7.0);  // 0-1-3
  EXPECT_EQ(CriticalPathNodes(dag, weights), (std::vector<TaskId>{0, 1, 3}));
}

TEST(CriticalPathTest, EmptyGraphIsZero) {
  const Dag dag;
  EXPECT_DOUBLE_EQ(CriticalPathWeight(dag, {}), 0.0);
  EXPECT_TRUE(CriticalPathNodes(dag, {}).empty());
}

TEST(StatsTest, DiamondStats) {
  const GraphStats stats = ComputeGraphStats(Diamond());
  EXPECT_EQ(stats.nodes, 4u);
  EXPECT_EQ(stats.edges, 4u);
  EXPECT_EQ(stats.sources, 1u);
  EXPECT_EQ(stats.sinks, 1u);
  EXPECT_EQ(stats.levels, 3u);
  EXPECT_EQ(stats.max_level_width, 2u);
  EXPECT_DOUBLE_EQ(stats.out_degree.Mean(), 1.0);
}

TEST(DotTest, ContainsNodesEdgesAndHighlights) {
  DotOptions options;
  options.highlighted = {1};
  options.emphasized = {0};
  options.labels = {"src", "left", "right", "sink"};
  const std::string dot = ToDot(Diamond(), options);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=orange"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
  EXPECT_NE(dot.find("label=\"sink\""), std::string::npos);
}

TEST(DotTest, MaxNodesExcerpts) {
  DotOptions options;
  options.max_nodes = 2;
  const std::string dot = ToDot(Diamond(), options);
  EXPECT_EQ(dot.find("n3"), std::string::npos);
}

TEST(DagTest, OutOfRangeAccessThrows) {
  const Dag dag = Diamond();
  EXPECT_THROW((void)dag.OutNeighbors(99), util::LogicError);
}

}  // namespace
}  // namespace dsched::graph
