// Reproduces Table I: characteristics of the eleven workload traces.
//
// The originals are proprietary; we synthesize each trace from its
// published row (see DESIGN.md §2) and print the paper's target next to
// what our generator achieves.  Node, edge, initial-task, and level counts
// are matched exactly by construction; the activation-cascade size is
// carved to the target with overshoot bounded by one node's out-degree.
#include <cstdio>

#include "bench_common.hpp"
#include "trace/table_traces.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsched;
  util::FlagSet flags("table1_workloads");
  const auto scale = flags.Double("scale", 1.0, "trace size multiplier (0,1]");
  const auto seed = flags.Int("seed", 20200518, "generator seed");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  util::TextTable table(
      "Table I — workload traces from LogicBlox, re-synthesized "
      "(paper target / ours, scale=" + std::to_string(*scale) + ")");
  table.SetHeader({"Job trace", "No. nodes", "No. edges", "No. initial tasks",
                   "No. active jobs", "No. levels"});

  for (const trace::TableTraceSpec& spec : trace::PaperTable1()) {
    const trace::JobTrace jt = trace::MakeTableTrace(
        spec.index, *scale, static_cast<std::uint64_t>(*seed));
    const trace::AchievedRow row = trace::MeasureRow(jt);
    const auto cell = [](std::size_t paper, std::size_t ours) {
      return std::to_string(paper) + " / " + std::to_string(ours);
    };
    table.AddRow({"#" + std::to_string(spec.index),
                  cell(spec.nodes, row.nodes), cell(spec.edges, row.edges),
                  cell(spec.initial_tasks, row.initial_tasks),
                  cell(spec.active_jobs, row.active_jobs),
                  cell(spec.levels, row.levels)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "note: at scale < 1 the paper columns stay unscaled; levels are always "
      "preserved because they drive the LevelBased behaviour.\n");
  return 0;
}
