// Reproduces Figure 1: the anatomy of job trace #1's computation DAG.
//
// The paper narrates: 64,910 predicate nodes, 101,327 edges, 20,134
// activatable task nodes (the rest collect inputs/outputs), 5 initial
// tasks whose update activates 532 of 1,680 reachable descendants.  This
// harness prints the same anatomy for our re-synthesized trace and writes
// a Graphviz excerpt with the active cascade highlighted.
#include <cstdio>
#include <fstream>

#include "graph/dot_export.hpp"
#include "graph/stats.hpp"
#include "trace/cascade.hpp"
#include "trace/table_traces.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace dsched;
  util::FlagSet flags("fig1_dag_anatomy");
  const auto scale = flags.Double("scale", 1.0, "trace size multiplier (0,1]");
  const auto seed = flags.Int("seed", 20200518, "generator seed");
  const auto dot_path =
      flags.String("dot", "fig1_excerpt.dot", "Graphviz excerpt output path");
  const auto dot_nodes =
      flags.Int("dot_nodes", 400, "node-id cutoff for the DOT excerpt");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const trace::JobTrace jt = trace::MakeTableTrace(
      1, *scale, static_cast<std::uint64_t>(*seed));
  const graph::GraphStats stats = graph::ComputeGraphStats(jt.Graph());
  const trace::Cascade cascade = trace::ComputeCascade(jt);

  std::printf("Figure 1 — anatomy of job trace #1 (paper -> ours)\n");
  std::printf("  nodes:                 64910 -> %zu\n", stats.nodes);
  std::printf("  edges:                 101327 -> %zu\n", stats.edges);
  std::printf("  activatable tasks:     20134 -> %zu\n", jt.NumTaskNodes());
  std::printf("  initial dirty tasks:   5 -> %zu\n", jt.InitialDirty().size());
  std::printf("  total descendants:     1680 -> %zu\n",
              cascade.total_descendants);
  std::printf("  activated descendants: 532 -> %zu\n",
              cascade.activated_descendants);
  std::printf("  levels:                171 -> %zu\n", stats.levels);
  std::printf("  DAG shape: %s\n", stats.ToString().c_str());
  std::printf(
      "  => most descendants need no recomputation; the scheduling problem "
      "is discovering which %zu of %zu do, and in what order.\n",
      cascade.activated_descendants, cascade.total_descendants);

  std::ofstream dot(*dot_path);
  if (dot) {
    graph::DotOptions options;
    options.graph_name = "jobtrace1_excerpt";
    options.max_nodes = static_cast<std::size_t>(*dot_nodes);
    options.highlighted = cascade.active_nodes;
    options.emphasized = jt.InitialDirty();
    graph::WriteDot(dot, jt.Graph(), options);
    std::printf("  wrote DOT excerpt (first %lld node ids) to %s\n",
                static_cast<long long>(*dot_nodes), dot_path->c_str());
  }
  return 0;
}
