// End-to-end executor dispatch-throughput benchmark.
//
// Measures tasks/sec and the sched_wall_seconds share of wall time for the
// batched work-stealing executor across wide / deep / diamond DAGs, all
// real scheduler policies, and 1..8 workers — against a faithful copy of
// the PRE-CHANGE executor (single-mutex FIFO pool, one PopReady per lock
// acquisition, per-task completion notify) kept below under
// namespace legacy.  Emits BENCH_executor.json so future PRs can track the
// trajectory.
//
// Usage: micro_executor [--out=BENCH_executor.json] [--scale=1.0]
//                       [--trace=out.json] [--adaptive=0|1]
//
// --adaptive=0 pins the batched engine's dispatch window to the fixed
// max(16, 2 * workers) heuristic (the pre-controller behaviour);
// --adaptive=1 (default) runs the duty-cycle controller
// (runtime/executor.hpp Options::adaptive_window).  Run both and diff the
// JSONs for an A/B of the controller — the window_adjusts / final_window
// columns show what it decided.
#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "graph/digraph_builder.hpp"
#include "runtime/executor.hpp"
#include "sched/factory.hpp"
#include "trace/generators.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace dsched::bench {

/// Burns roughly `iters` iterations of fake task work on the calling
/// worker.  A non-null task grain makes the overhead *share* of wall time
/// meaningful: with null bodies both engines' wall is pure overhead and
/// the ratio is dominated by single-core preemption noise.
inline void SpinWork(std::size_t iters) {
  volatile std::size_t sink = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    sink = sink + 1;
  }
}

namespace legacy {

// --- The pre-change pool: one FIFO, one mutex, one cv, std::function jobs.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers) {
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shutting_down_ = true;
    }
    work_available_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }
  void Submit(std::function<void()> job) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(job));
    }
    work_available_.notify_one();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    all_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_available_.wait(
            lock, [this] { return shutting_down_ || !queue_.empty(); });
        if (queue_.empty()) {
          return;
        }
        job = std::move(queue_.front());
        queue_.pop_front();
        ++in_flight_;
      }
      job();
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        --in_flight_;
        if (queue_.empty() && in_flight_ == 0) {
          all_idle_.notify_all();
        }
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

struct RunStats {
  std::size_t executed = 0;
  double wall_seconds = 0.0;
  double sched_wall_seconds = 0.0;
  double dispatch_wall_seconds = 0.0;
};

// --- The pre-change executor: every PopReady/OnStarted/OnCompleted under
// one coordinator mutex, one task dispatched per lock acquisition, one
// lock+notify per completion.
inline RunStats Run(const trace::JobTrace& trace, sched::Scheduler& scheduler,
                    std::size_t workers, std::size_t spin_iters) {
  const graph::Dag& dag = trace.Graph();
  RunStats stats;
  util::WallTimer wall;
  util::Stopwatch sched_watch;
  util::Stopwatch dispatch_watch;

  scheduler.Prepare({&trace, workers});

  std::mutex mutex;
  std::condition_variable completions_arrived;
  std::deque<std::pair<util::TaskId, bool>> completions;
  std::vector<bool> activated(dag.NumNodes(), false);
  std::size_t activated_count = 0;
  std::size_t completed_count = 0;
  std::size_t inflight = 0;

  const auto activate = [&](util::TaskId t) {
    if (!activated[t]) {
      activated[t] = true;
      ++activated_count;
      const util::StopwatchGuard guard(sched_watch);
      scheduler.OnActivated(t);
    }
  };
  {
    const std::lock_guard<std::mutex> lock(mutex);
    for (const util::TaskId t : trace.InitialDirty()) {
      activate(t);
    }
  }

  ThreadPool pool(workers);
  std::unique_lock<std::mutex> lock(mutex);
  for (;;) {
    {
      const util::StopwatchGuard dispatch_guard(dispatch_watch);
      while (inflight < workers) {
        util::TaskId t = util::kInvalidTask;
        {
          const util::StopwatchGuard guard(sched_watch);
          t = scheduler.PopReady();
        }
        if (t == util::kInvalidTask) {
          break;
        }
        {
          const util::StopwatchGuard guard(sched_watch);
          scheduler.OnStarted(t);
        }
        ++inflight;
        pool.Submit([&, t] {
          if (spin_iters > 0) {
            SpinWork(spin_iters);
          }
          const bool changed = trace.Info(t).output_changes;
          {
            const std::lock_guard<std::mutex> inner(mutex);
            completions.emplace_back(t, changed);
          }
          completions_arrived.notify_one();
        });
      }
    }

    if (inflight == 0 && completions.empty()) {
      DSCHED_CHECK_MSG(completed_count >= activated_count,
                       "legacy executor deadlock");
      break;
    }

    completions_arrived.wait(lock, [&] { return !completions.empty(); });
    const util::StopwatchGuard drain_guard(dispatch_watch);
    while (!completions.empty()) {
      const auto [t, changed] = completions.front();
      completions.pop_front();
      --inflight;
      ++completed_count;
      ++stats.executed;
      if (changed) {
        for (const util::TaskId child : dag.OutNeighbors(t)) {
          activate(child);
        }
      }
      const util::StopwatchGuard guard(sched_watch);
      scheduler.OnCompleted(t, changed);
    }
  }
  lock.unlock();
  pool.Wait();

  stats.wall_seconds = wall.ElapsedSeconds();
  stats.sched_wall_seconds = sched_watch.TotalSeconds();
  stats.dispatch_wall_seconds = dispatch_watch.TotalSeconds();
  return stats;
}

}  // namespace legacy

/// A column of `diamonds` stacked diamonds, each 1 -> width -> 1.
trace::JobTrace MakeDiamonds(std::size_t diamonds, std::size_t width) {
  const std::size_t nodes = diamonds * (width + 1) + 1;
  graph::DigraphBuilder builder(nodes);
  util::TaskId head = 0;
  util::TaskId next = 1;
  for (std::size_t d = 0; d < diamonds; ++d) {
    const util::TaskId first_mid = next;
    for (std::size_t w = 0; w < width; ++w) {
      builder.AddEdge(head, next++);
    }
    const util::TaskId join = next++;
    for (std::size_t w = 0; w < width; ++w) {
      builder.AddEdge(first_mid + static_cast<util::TaskId>(w), join);
    }
    head = join;
  }
  std::vector<trace::TaskInfo> infos(nodes);
  return trace::JobTrace("diamond", std::move(builder).Build(),
                         std::move(infos), {0});
}

struct Row {
  std::string workload;
  std::string scheduler;
  std::size_t workers = 0;
  std::string engine;
  /// "null" = zero-work bodies (pure dispatch throughput); "spin" = ~1us
  /// of fake work per task (meaningful overhead shares).
  std::string body;
  std::size_t tasks = 0;
  double wall_seconds = 0.0;
  double tasks_per_sec = 0.0;
  double sched_wall_seconds = 0.0;
  double sched_share = 0.0;
  /// Coordinator time on the serialized dispatch path (scheduler calls +
  /// submits + completion bookkeeping, excluding blocked waits).
  double dispatch_wall_seconds = 0.0;
  /// (dispatch_wall_seconds - sched_wall_seconds) / wall_seconds: the
  /// engine's own dispatch overhead with scheduler-policy time factored
  /// out.  This is the number the batched executor is built to shrink.
  double overhead_share = 0.0;
  std::uint64_t dispatch_batches = 0;
  double avg_batch = 0.0;
  std::uint64_t max_batch = 0;
  std::uint64_t completion_drains = 0;
  std::uint64_t steals = 0;
  std::uint64_t sleeps = 0;
  std::uint64_t wakeups = 0;
  /// Duty-cycle controller activity (batched engine only; zero when the
  /// window is pinned with --adaptive=0).
  std::uint64_t window_adjusts = 0;
  std::uint64_t final_window = 0;
};

Row Measure(const trace::JobTrace& trace, const std::string& workload,
            const std::string& spec, std::size_t workers, bool batched,
            std::size_t spin_iters, bool adaptive) {
  Row row;
  row.workload = workload;
  row.scheduler = spec;
  row.workers = workers;
  row.engine = batched ? "batched" : "legacy";
  row.body = spin_iters > 0 ? "spin" : "null";
  auto scheduler = sched::CreateScheduler(spec);
  if (batched) {
    runtime::Executor::TaskBody body;
    if (spin_iters > 0) {
      body = [&trace, spin_iters](util::TaskId t) {
        SpinWork(spin_iters);
        return trace.Info(t).output_changes;
      };
    }
    const auto stats = runtime::Executor::Run(
        trace, *scheduler, body,
        {.workers = workers, .adaptive_window = adaptive});
    row.tasks = stats.executed;
    row.wall_seconds = stats.wall_seconds;
    row.sched_wall_seconds = stats.sched_wall_seconds;
    row.dispatch_wall_seconds = stats.dispatch_wall_seconds;
    row.dispatch_batches = stats.dispatch_batches;
    row.avg_batch = stats.AvgDispatchBatch();
    row.max_batch = stats.max_dispatch_batch;
    row.completion_drains = stats.completion_drains;
    row.steals = stats.pool_steals;
    row.sleeps = stats.pool_sleeps;
    row.wakeups = stats.pool_wakeups;
    row.window_adjusts = stats.window_adjusts;
    row.final_window = stats.final_dispatch_window;
  } else {
    const auto stats = legacy::Run(trace, *scheduler, workers, spin_iters);
    row.tasks = stats.executed;
    row.wall_seconds = stats.wall_seconds;
    row.sched_wall_seconds = stats.sched_wall_seconds;
    row.dispatch_wall_seconds = stats.dispatch_wall_seconds;
  }
  row.tasks_per_sec = row.wall_seconds > 0.0
                          ? static_cast<double>(row.tasks) / row.wall_seconds
                          : 0.0;
  row.sched_share =
      row.wall_seconds > 0.0 ? row.sched_wall_seconds / row.wall_seconds : 0.0;
  row.overhead_share =
      row.wall_seconds > 0.0
          ? std::max(0.0, row.dispatch_wall_seconds - row.sched_wall_seconds) /
                row.wall_seconds
          : 0.0;
  return row;
}

void AppendRowJson(std::string& out, const Row& row, bool last) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"workload\": \"%s\", \"scheduler\": \"%s\", \"workers\": %zu, "
      "\"engine\": \"%s\", \"body\": \"%s\", \"tasks\": %zu, "
      "\"wall_seconds\": %.6f, "
      "\"tasks_per_sec\": %.1f, \"sched_wall_seconds\": %.6f, "
      "\"sched_share\": %.4f, \"dispatch_wall_seconds\": %.6f, "
      "\"overhead_share\": %.4f, \"dispatch_batches\": %llu, "
      "\"avg_batch\": %.2f, \"max_batch\": %llu, \"completion_drains\": %llu, "
      "\"steals\": %llu, \"sleeps\": %llu, \"wakeups\": %llu, "
      "\"window_adjusts\": %llu, \"final_window\": %llu}%s\n",
      row.workload.c_str(), row.scheduler.c_str(), row.workers,
      row.engine.c_str(), row.body.c_str(), row.tasks, row.wall_seconds,
      row.tasks_per_sec,
      row.sched_wall_seconds, row.sched_share, row.dispatch_wall_seconds,
      row.overhead_share,
      static_cast<unsigned long long>(row.dispatch_batches), row.avg_batch,
      static_cast<unsigned long long>(row.max_batch),
      static_cast<unsigned long long>(row.completion_drains),
      static_cast<unsigned long long>(row.steals),
      static_cast<unsigned long long>(row.sleeps),
      static_cast<unsigned long long>(row.wakeups),
      static_cast<unsigned long long>(row.window_adjusts),
      static_cast<unsigned long long>(row.final_window), last ? "" : ",");
  out += buf;
}

}  // namespace dsched::bench

int main(int argc, char** argv) {
  using namespace dsched;
  bench::MicroBenchArgs args;
  args.out = "BENCH_executor.json";
  if (!bench::ParseMicroBenchArgs(argc, argv, &args)) {
    return 2;
  }
  // A/B switch for the adaptive dispatch-window controller (defaults on,
  // matching the engine default); ParseMicroBenchArgs skips unknown flags.
  bool adaptive = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--adaptive=0") {
      adaptive = false;
    } else if (arg == "--adaptive=1") {
      adaptive = true;
    } else if (arg.rfind("--adaptive", 0) == 0) {
      std::fprintf(stderr, "bad flag: %s (want --adaptive=0|1)\n",
                   arg.c_str());
      return 2;
    }
  }
  const std::string& out_path = args.out;
  const double scale = args.scale;
  const auto scaled = [scale](std::size_t n) {
    return static_cast<std::size_t>(static_cast<double>(n) * scale);
  };
  const auto session = bench::MaybeStartTrace(args.trace);

  // The three DAG shapes of the dispatch hot path: wide (one giant level —
  // maximal batch opportunity), deep (one task per level — minimal batch
  // opportunity, pure per-level overhead), diamond (alternating widths).
  struct Workload {
    const char* name;
    trace::JobTrace trace;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"wide", trace::MakeFork(scaled(30000))});
  workloads.push_back({"deep", trace::MakeChain(scaled(12000))});
  workloads.push_back({"diamond", bench::MakeDiamonds(scaled(1500), 8)});

  const std::vector<std::string> specs = {"levelbased", "lbl:8", "logicblox",
                                          "signal", "hybrid"};
  const std::vector<std::size_t> worker_counts = {1, 2, 4, 8};

  // ~1us of fake work per task for the "spin" body variant (wide DAG
  // only): gives the overhead share a meaningful denominator.
  constexpr std::size_t kSpinIters = 2000;

  std::vector<bench::Row> rows;
  for (const Workload& workload : workloads) {
    const bool is_wide = std::string(workload.name) == "wide";
    const std::vector<std::size_t> bodies =
        is_wide ? std::vector<std::size_t>{0, kSpinIters}
                : std::vector<std::size_t>{0};
    for (const std::string& spec : specs) {
      for (const std::size_t workers : worker_counts) {
        for (const std::size_t spin : bodies) {
          for (const bool batched : {false, true}) {
            rows.push_back(bench::Measure(workload.trace, workload.name, spec,
                                          workers, batched, spin, adaptive));
            const bench::Row& r = rows.back();
            std::printf(
                "%-8s %-10s P=%zu %-7s %-4s : %9.0f tasks/s  sched %5.1f%%  "
                "overhead %5.1f%%  batches %llu (avg %.1f)\n",
                r.workload.c_str(), r.scheduler.c_str(), r.workers,
                r.engine.c_str(), r.body.c_str(), r.tasks_per_sec,
                100.0 * r.sched_share, 100.0 * r.overhead_share,
                static_cast<unsigned long long>(r.dispatch_batches),
                r.avg_batch);
          }
        }
      }
    }
  }

  // Headline: batched vs legacy tasks/sec on the wide DAG at 8 workers
  // (null bodies: pure dispatch throughput), plus the overhead-share
  // criterion — on the spin-body wide rows, the batched engine's dispatch
  // overhead share of wall must be below the legacy engine's at EVERY
  // worker count.
  std::string summary;
  for (const std::string& spec : specs) {
    double legacy_tps = 0.0;
    double batched_tps = 0.0;
    bool share_drops_everywhere = true;
    for (const std::size_t workers : worker_counts) {
      double legacy_share = 0.0;
      double batched_share = 0.0;
      for (const bench::Row& r : rows) {
        if (r.workload == "wide" && r.scheduler == spec &&
            r.workers == workers) {
          if (r.body == "spin") {
            (r.engine == "batched" ? batched_share : legacy_share) =
                r.overhead_share;
          } else if (workers == 8) {
            (r.engine == "batched" ? batched_tps : legacy_tps) =
                r.tasks_per_sec;
          }
        }
      }
      if (batched_share >= legacy_share) {
        share_drops_everywhere = false;
      }
      std::printf("overhead wide(spin) P=%zu %-10s : legacy %5.1f%% -> "
                  "batched %5.1f%%\n",
                  workers, spec.c_str(), 100.0 * legacy_share,
                  100.0 * batched_share);
    }
    char buf[240];
    std::snprintf(buf, sizeof(buf),
                  "    \"wide_8workers_speedup_%s\": %.2f,\n"
                  "    \"wide_overhead_share_drops_at_every_count_%s\": %s,\n",
                  spec.c_str(),
                  legacy_tps > 0.0 ? batched_tps / legacy_tps : 0.0,
                  spec.c_str(), share_drops_everywhere ? "true" : "false");
    summary += buf;
    std::printf("speedup wide P=8 %-10s : %.2fx  (overhead share drops at "
                "every count: %s)\n",
                spec.c_str(),
                legacy_tps > 0.0 ? batched_tps / legacy_tps : 0.0,
                share_drops_everywhere ? "yes" : "no");
  }
  if (!summary.empty()) {
    summary.erase(summary.size() - 2, 1);  // drop the trailing comma
  }

  std::string json = "{\n";
  json += "  \"bench\": \"micro_executor\",\n";
  json += "  \"hw_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"scale\": " + std::to_string(scale) + ",\n";
  json += std::string("  \"adaptive_window\": ") +
          (adaptive ? "true" : "false") + ",\n";
  json += "  \"summary\": {\n" + summary + "  },\n";
  json += "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    bench::AppendRowJson(json, rows[i], i + 1 == rows.size());
  }
  json += "  ]\n}\n";

  if (!bench::WriteBenchFile(out_path, json)) {
    return 1;
  }
  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows.size());

  obs::MetricsRegistry metrics;
  for (const bench::Row& r : rows) {
    if (r.workload == "wide" && r.workers == 8 && r.body == "null") {
      const std::string key =
          "micro_executor.wide.p8." + r.engine + "." + r.scheduler + ".";
      metrics.Set(key + "tasks_per_sec",
                  static_cast<std::uint64_t>(r.tasks_per_sec));
      metrics.Set(key + "sched_overhead_ns",
                  static_cast<std::uint64_t>(r.sched_wall_seconds * 1e9));
      metrics.Set(key + "steals", r.steals);
    }
  }
  bench::PrintMetrics(metrics);
  bench::FinishTrace(session.get(), args.trace);
  return 0;
}
