// Micro-benchmarks: end-to-end simulation throughput per scheduler, and
// the per-decision cost of the scheduling fast paths.
//
// Two modes:
//  * default — the google-benchmark suite (all BM_* below; pass the usual
//    --benchmark_* flags through);
//  * trace mode — `micro_sched --trace=out.json [--tiny] [--out=BENCH_sched.json]`
//    runs every policy once over the layered workload under a TraceSession
//    and emits the Chrome trace JSON, the per-category summary, a METRICS
//    line, and the BENCH_sched.json scheduler-overhead baseline.  --tiny
//    shrinks the workload for CI smoke runs (the trace-validate job).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace {

using dsched::sim::SimConfig;
using dsched::sim::Simulate;
using dsched::trace::JobTrace;

JobTrace MidsizeTrace(std::size_t nodes, std::size_t levels,
                      double active_fraction) {
  dsched::util::Rng rng(99);
  dsched::trace::LayeredDagSpec spec;
  spec.name = "micro";
  spec.level_widths =
      dsched::trace::MakeLevelWidths(nodes, levels, nodes / 8, rng);
  spec.extra_edges = nodes / 2;
  spec.initial_dirty = std::max<std::size_t>(1, nodes / 100);
  spec.target_active =
      static_cast<std::size_t>(static_cast<double>(nodes) * active_fraction);
  spec.collector_fraction = 0.5;
  spec.durations.median_seconds = 1e-4;
  spec.seed = 7;
  return dsched::trace::GenerateLayered(spec);
}

void RunScheduler(benchmark::State& state, const char* spec,
                  const JobTrace& trace) {
  std::size_t executed = 0;
  for (auto _ : state) {
    auto scheduler = dsched::sched::CreateScheduler(spec);
    SimConfig config;
    config.processors = 8;
    const auto result = Simulate(trace, *scheduler, config);
    executed = result.tasks_executed;
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(executed));
  state.counters["active_tasks"] = static_cast<double>(executed);
}

const JobTrace& DeepTrace() {
  static const JobTrace trace = MidsizeTrace(20000, 120, 0.08);
  return trace;
}
const JobTrace& ShallowTrace() {
  static const JobTrace trace = MidsizeTrace(20000, 6, 0.5);
  return trace;
}

void BM_SimulateDeep_LevelBased(benchmark::State& state) {
  RunScheduler(state, "levelbased", DeepTrace());
}
void BM_SimulateDeep_LBL10(benchmark::State& state) {
  RunScheduler(state, "lbl:10", DeepTrace());
}
void BM_SimulateDeep_LogicBlox(benchmark::State& state) {
  RunScheduler(state, "logicblox", DeepTrace());
}
void BM_SimulateDeep_Hybrid(benchmark::State& state) {
  RunScheduler(state, "hybrid", DeepTrace());
}
void BM_SimulateDeep_Signal(benchmark::State& state) {
  RunScheduler(state, "signal", DeepTrace());
}
void BM_SimulateShallow_LevelBased(benchmark::State& state) {
  RunScheduler(state, "levelbased", ShallowTrace());
}
void BM_SimulateShallow_LogicBlox(benchmark::State& state) {
  RunScheduler(state, "logicblox", ShallowTrace());
}
void BM_SimulateShallow_Hybrid(benchmark::State& state) {
  RunScheduler(state, "hybrid", ShallowTrace());
}

BENCHMARK(BM_SimulateDeep_LevelBased)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateDeep_LBL10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateDeep_LogicBlox)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateDeep_Hybrid)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateDeep_Signal)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateShallow_LevelBased)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateShallow_LogicBlox)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateShallow_Hybrid)->Unit(benchmark::kMillisecond);

void BM_LevelPrecompute(benchmark::State& state) {
  const JobTrace& trace = DeepTrace();
  for (auto _ : state) {
    auto scheduler = dsched::sched::CreateScheduler("levelbased");
    scheduler->Prepare({&trace, 8});
    benchmark::DoNotOptimize(scheduler->MemoryBytes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.NumNodes()));
}
BENCHMARK(BM_LevelPrecompute)->Unit(benchmark::kMillisecond);

void BM_IntervalPrecompute(benchmark::State& state) {
  const JobTrace& trace = DeepTrace();
  for (auto _ : state) {
    auto scheduler = dsched::sched::CreateScheduler("logicblox");
    scheduler->Prepare({&trace, 8});
    benchmark::DoNotOptimize(scheduler->MemoryBytes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.NumNodes()));
}
BENCHMARK(BM_IntervalPrecompute)->Unit(benchmark::kMillisecond);

/// Trace mode: one simulated run per policy under an installed
/// TraceSession.  Writes `trace_path` (Chrome JSON) and `out_path`
/// (BENCH_sched.json), prints the METRICS line and category summary.
int RunTraceMode(const std::string& trace_path, const std::string& out_path,
                 bool tiny) {
  using namespace dsched;
  const JobTrace trace =
      tiny ? MidsizeTrace(400, 12, 0.4) : MidsizeTrace(20000, 120, 0.08);
  const std::vector<std::string> specs = {"levelbased", "lbl:10", "logicblox",
                                          "signal", "hybrid"};

  const auto session = bench::MaybeStartTrace(
      trace_path.empty() ? std::string("micro_sched_trace.json") : trace_path);
  obs::MetricsRegistry metrics;

  struct Entry {
    std::string spec;
    sim::SimResult result;
    double traced_overhead_ns = 0.0;
  };
  std::vector<Entry> entries;
  for (const std::string& spec : specs) {
    session->Marker("run " + spec);
    const obs::AccumSnapshot before = session->Snapshot();
    Entry entry;
    entry.spec = spec;
    entry.result = bench::RunSpec(trace, spec);
    const obs::AccumSnapshot delta =
        obs::SnapshotDelta(before, session->Snapshot());
    entry.traced_overhead_ns = session->DurationNs(
        obs::TotalsOf(delta, bench::SchedPopCategory(spec)).ticks);
    entry.result.ExportMetrics(metrics, "sched." + spec + ".");
    metrics.Set("sched." + spec + ".trace_sched_overhead_ns",
                static_cast<std::uint64_t>(entry.traced_overhead_ns));
    std::printf("%-12s makespan %s  overhead %s (traced %s)  pops %llu\n",
                spec.c_str(),
                bench::Seconds(entry.result.makespan).c_str(),
                bench::Seconds(entry.result.sched_wall_seconds).c_str(),
                bench::Seconds(entry.traced_overhead_ns / 1e9).c_str(),
                static_cast<unsigned long long>(entry.result.ops.pops));
    entries.push_back(std::move(entry));
  }

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_sched\",\n  \"tiny\": %s,\n",
                 tiny ? "true" : "false");
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const Entry& e = entries[i];
      std::fprintf(
          f,
          "    {\"scheduler\": \"%s\", \"makespan_us\": %.1f, "
          "\"sched_overhead_ns\": %.0f, \"traced_overhead_ns\": %.0f, "
          "\"pops\": %llu, \"ops_total\": %llu}%s\n",
          e.spec.c_str(), e.result.makespan * 1e6,
          e.result.sched_wall_seconds * 1e9, e.traced_overhead_ns,
          static_cast<unsigned long long>(e.result.ops.pops),
          static_cast<unsigned long long>(e.result.ops.Total()),
          i + 1 < entries.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }

  bench::PrintMetrics(metrics);
  bench::FinishTrace(session.get(),
                     trace_path.empty() ? "micro_sched_trace.json"
                                        : trace_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off the trace-mode flags; everything else passes through to
  // google-benchmark untouched.
  std::string trace_path;
  std::string out_path;
  bool tiny = false;
  bool trace_mode = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
      trace_mode = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
      trace_mode = true;
    } else if (arg == "--tiny") {
      tiny = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (trace_mode) {
    return RunTraceMode(trace_path, out_path, tiny);
  }
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
