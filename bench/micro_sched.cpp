// Micro-benchmarks: end-to-end simulation throughput per scheduler, and
// the per-decision cost of the scheduling fast paths.
#include <benchmark/benchmark.h>

#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace {

using dsched::sim::SimConfig;
using dsched::sim::Simulate;
using dsched::trace::JobTrace;

JobTrace MidsizeTrace(std::size_t nodes, std::size_t levels,
                      double active_fraction) {
  dsched::util::Rng rng(99);
  dsched::trace::LayeredDagSpec spec;
  spec.name = "micro";
  spec.level_widths =
      dsched::trace::MakeLevelWidths(nodes, levels, nodes / 8, rng);
  spec.extra_edges = nodes / 2;
  spec.initial_dirty = std::max<std::size_t>(1, nodes / 100);
  spec.target_active =
      static_cast<std::size_t>(static_cast<double>(nodes) * active_fraction);
  spec.collector_fraction = 0.5;
  spec.durations.median_seconds = 1e-4;
  spec.seed = 7;
  return dsched::trace::GenerateLayered(spec);
}

void RunScheduler(benchmark::State& state, const char* spec,
                  const JobTrace& trace) {
  std::size_t executed = 0;
  for (auto _ : state) {
    auto scheduler = dsched::sched::CreateScheduler(spec);
    SimConfig config;
    config.processors = 8;
    const auto result = Simulate(trace, *scheduler, config);
    executed = result.tasks_executed;
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(executed));
  state.counters["active_tasks"] = static_cast<double>(executed);
}

const JobTrace& DeepTrace() {
  static const JobTrace trace = MidsizeTrace(20000, 120, 0.08);
  return trace;
}
const JobTrace& ShallowTrace() {
  static const JobTrace trace = MidsizeTrace(20000, 6, 0.5);
  return trace;
}

void BM_SimulateDeep_LevelBased(benchmark::State& state) {
  RunScheduler(state, "levelbased", DeepTrace());
}
void BM_SimulateDeep_LBL10(benchmark::State& state) {
  RunScheduler(state, "lbl:10", DeepTrace());
}
void BM_SimulateDeep_LogicBlox(benchmark::State& state) {
  RunScheduler(state, "logicblox", DeepTrace());
}
void BM_SimulateDeep_Hybrid(benchmark::State& state) {
  RunScheduler(state, "hybrid", DeepTrace());
}
void BM_SimulateDeep_Signal(benchmark::State& state) {
  RunScheduler(state, "signal", DeepTrace());
}
void BM_SimulateShallow_LevelBased(benchmark::State& state) {
  RunScheduler(state, "levelbased", ShallowTrace());
}
void BM_SimulateShallow_LogicBlox(benchmark::State& state) {
  RunScheduler(state, "logicblox", ShallowTrace());
}
void BM_SimulateShallow_Hybrid(benchmark::State& state) {
  RunScheduler(state, "hybrid", ShallowTrace());
}

BENCHMARK(BM_SimulateDeep_LevelBased)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateDeep_LBL10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateDeep_LogicBlox)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateDeep_Hybrid)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateDeep_Signal)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateShallow_LevelBased)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateShallow_LogicBlox)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateShallow_Hybrid)->Unit(benchmark::kMillisecond);

void BM_LevelPrecompute(benchmark::State& state) {
  const JobTrace& trace = DeepTrace();
  for (auto _ : state) {
    auto scheduler = dsched::sched::CreateScheduler("levelbased");
    scheduler->Prepare({&trace, 8});
    benchmark::DoNotOptimize(scheduler->MemoryBytes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.NumNodes()));
}
BENCHMARK(BM_LevelPrecompute)->Unit(benchmark::kMillisecond);

void BM_IntervalPrecompute(benchmark::State& state) {
  const JobTrace& trace = DeepTrace();
  for (auto _ : state) {
    auto scheduler = dsched::sched::CreateScheduler("logicblox");
    scheduler->Prepare({&trace, 8});
    benchmark::DoNotOptimize(scheduler->MemoryBytes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.NumNodes()));
}
BENCHMARK(BM_IntervalPrecompute)->Unit(benchmark::kMillisecond);

}  // namespace
