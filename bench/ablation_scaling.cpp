// Ablation: the asymptotic separations behind Theorem 2 and Section II-C,
// measured rather than asserted.
//
//  (a) Scheduler decision cost: LevelBased O(n + L) vs LogicBlox (queue
//      scans × ancestor queries) vs brute-force signal propagation
//      O(V + E), on a growing shallow workload where n ≈ V.
//  (b) Index space: the interval-list store is O(V²) on the staircase
//      adversary while LevelBased precomputation stays O(V).
#include <cstdio>

#include "bench_common.hpp"
#include "interval/interval_index.hpp"
#include "sched/level_based.hpp"
#include "trace/generators.hpp"
#include "util/flags.hpp"
#include "util/memory_meter.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsched;
  util::FlagSet flags("ablation_scaling");
  const auto max_nodes = flags.Int("max_nodes", 32000, "largest graph in (a)");
  const auto max_stairs = flags.Int("max_stairs", 2048, "largest staircase in (b)");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  {
    util::TextTable table(
        "(a) Runtime scheduling cost on a shallow all-active workload "
        "(ops = modelled operations)");
    table.SetHeader({"nodes", "LB ops", "LB wall", "LX ops", "LX wall",
                     "Signal msgs", "Signal wall"});
    util::Rng rng(4242);
    for (std::size_t n = 4000; n <= static_cast<std::size_t>(*max_nodes);
         n *= 2) {
      trace::LayeredDagSpec spec;
      spec.name = "ablation";
      spec.level_widths = trace::MakeLevelWidths(n, 8, n / 2, rng);
      spec.extra_edges = n / 2;
      spec.initial_dirty = n / 2;
      spec.target_active = n / 2;  // activate roughly everything downstream
      spec.collector_fraction = 0.0;
      spec.durations.median_seconds = 1e-5;
      spec.seed = 1000 + n;
      const trace::JobTrace jt = trace::GenerateLayered(spec);
      const auto lb = bench::RunSpec(jt, "levelbased");
      const auto lx = bench::RunSpec(jt, "logicblox");
      const auto sp = bench::RunSpec(jt, "signal");
      table.AddRow({std::to_string(n), std::to_string(lb.ops.Total()),
                    bench::Seconds(lb.sched_wall_seconds),
                    std::to_string(lx.ops.Total()),
                    bench::Seconds(lx.sched_wall_seconds),
                    std::to_string(sp.ops.messages),
                    bench::Seconds(sp.sched_wall_seconds)});
    }
    std::printf("%s", table.ToString().c_str());
    std::printf(
        "shape check: LB ops grow linearly; LX ops superlinearly (scan x "
        "query); signal messages track V + E regardless of activity.\n\n");
  }

  {
    util::TextTable table(
        "(b) Precomputation space: interval lists vs LevelBased levels "
        "(staircase adversary, V = 2m)");
    table.SetHeader({"m", "interval count", "interval bytes", "LB bytes",
                     "bytes ratio"});
    for (std::size_t m = 256; m <= static_cast<std::size_t>(*max_stairs);
         m *= 2) {
      const trace::JobTrace jt = trace::MakeIntervalAdversarial(m);
      const interval::IntervalIndex index(jt.Graph());
      sched::LevelBasedScheduler lb;
      lb.Prepare({&jt, 8});
      const double ratio = static_cast<double>(index.MemoryBytes()) /
                           static_cast<double>(lb.MemoryBytes());
      table.AddRow({std::to_string(m), std::to_string(index.TotalIntervals()),
                    util::FormatBytes(index.MemoryBytes()),
                    util::FormatBytes(lb.MemoryBytes()),
                    std::to_string(ratio)});
    }
    std::printf("%s", table.ToString().c_str());
    std::printf(
        "shape check: interval count ~ m²/2 (quadratic); LevelBased state "
        "linear; the bytes ratio doubles with each doubling of m.\n");
  }
  return 0;
}
