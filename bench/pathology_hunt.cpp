// Reproduces the Section VI anecdote: a synthetic instance on which the
// hybrid scheduler beat the production LogicBlox scheduler by ~100x,
// exposing a real inefficiency ("their scheduler was performing unnecessary
// work to find ready-to-run tasks").
//
// Our instance (trace/generators.hpp MakePathologicalScan): one dirty
// source fans out to F leaves and to a C-long sequential chain whose tail
// also feeds every leaf.  All leaves activate immediately but stay unready
// until the chain drains, so each chain completion triggers a full rescan
// of the F-sized active queue with ancestor queries — Θ(F²·C) probes.  The
// LevelBased side of the hybrid identifies the same ready tasks in O(1).
#include <cstdio>

#include "bench_common.hpp"
#include "trace/generators.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsched;
  util::FlagSet flags("pathology_hunt");
  const auto max_size = flags.Int("max_size", 1600, "largest fanout in sweep");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  util::TextTable table(
      "Scheduler pathology hunt — scan-adversarial instance, P = 8");
  table.SetHeader({"chain x fanout", "LX overhead", "LX queries",
                   "LB overhead", "Hybrid overhead", "LX/Hybrid overhead"});

  for (std::size_t f = 200; f <= static_cast<std::size_t>(*max_size); f *= 2) {
    const std::size_t chain = f / 4;
    const trace::JobTrace jt = trace::MakePathologicalScan(chain, f);
    const auto lx = bench::RunSpec(jt, "logicblox");
    const auto lb = bench::RunSpec(jt, "levelbased");
    const auto hybrid = bench::RunSpec(jt, "hybrid");
    const double speedup =
        lx.sched_wall_seconds / std::max(hybrid.sched_wall_seconds, 1e-9);
    table.AddRow({std::to_string(chain) + " x " + std::to_string(f),
                  bench::Seconds(lx.sched_wall_seconds),
                  std::to_string(lx.ops.ancestor_queries),
                  bench::Seconds(lb.sched_wall_seconds),
                  bench::Seconds(hybrid.sched_wall_seconds),
                  std::to_string(speedup) + "x"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "shape check: LogicBlox pays one full quadratic scan per chain step "
      "(Θ(F²·C) queries) while the hybrid's gate collapses that to "
      "O(log C) scans, so the overhead gap grows ~C/log C without bound — "
      "run with --max_size=3200 or larger to push it past the 100x of the "
      "paper's anecdote.\n");
  return 0;
}
