// Maintenance-strategy benchmark: DRed vs Counting vs Backward/Forward on
// the same update streams, sweeping insert/delete mix and worker count over
// two shapes that bracket the design space:
//
//   fanout — wide fan-out with fully redundant support:
//            mid(X) :- b1(X).  mid(X) :- b2(X).  d1..d4(X) :- mid(X).
//            Deleting b1 rows never changes mid (b2 still supports it), so
//            DRed's overdelete/rederive round-trip is pure waste — the
//            shape the counting plane exists for.
//   tc     — transitive closure of a random digraph with a giant SCC.
//            Counting is ineligible (recursive component, falls back to
//            DRed by design); Backward/Forward probes the affected cone
//            read-only and only erases proven deaths.
//
// Each (shape, mix) pre-generates one deterministic update stream and
// replays it under every strategy × worker count.  Final stores must agree:
// the harness cross-checks an order-independent checksum per cell, so the
// bench doubles as an equivalence stress.  `maint_ops` is the uniform
// deletion-pipeline effort metric every strategy reports
// (ComponentUpdateStats::maint_ops); the deletion-heavy summary ratios are
// self-gated at >= 2x, the tentpole's acceptance bar.
//
// NOTE on determinism: serial maint_ops are exactly reproducible and CI
// gates them exactly.  Parallel B/F re-probe counts depend on physical row
// order (scheduling-dependent), so w4 op counts are only banded.
//
// Usage: micro_maint [--out=BENCH_maint.json] [--scale=1.0] [--trace=out.json]
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_common.hpp"
#include "datalog/database.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace dsched::bench {

using datalog::Database;
using datalog::MaintenanceStrategy;
using datalog::ParseMaintenanceStrategy;
using datalog::RowView;
using datalog::Tuple;
using datalog::UpdateResult;
using datalog::Value;

constexpr const char* kFanoutProgram = R"(
  mid(X) :- b1(X).
  mid(X) :- b2(X).
  d1(X) :- mid(X).
  d2(X) :- mid(X).
  d3(X) :- mid(X).
  d4(X) :- mid(X).
)";

constexpr const char* kTcProgram = R"(
  tc(X, Y) :- e(X, Y).
  tc(X, Z) :- tc(X, Y), e(Y, Z).
)";

/// One pre-generated base change, replayed identically under every cell.
struct Op {
  bool insert = false;
  std::int64_t a = 0;
  std::int64_t b = 0;  ///< unused for arity-1 shapes
};

struct Workload {
  std::string name;
  const char* program = nullptr;
  const char* change_pred = nullptr;  ///< the predicate the stream mutates
  std::size_t arity = 1;
  std::vector<std::pair<const char*, Tuple>> base;
  std::vector<std::vector<Op>> batches;
};

Tuple Row1(std::int64_t a) { return {Value::Int(a)}; }
Tuple Row2(std::int64_t a, std::int64_t b) {
  return {Value::Int(a), Value::Int(b)};
}

/// fanout_<mix>: N fully-redundant keys, a stream of `del_frac` deletes of
/// live b1 rows and fresh-key b1 inserts for the rest.
Workload MakeFanout(const std::string& mix, double del_frac, double scale) {
  Workload w;
  w.name = "fanout_" + mix;
  w.program = kFanoutProgram;
  w.change_pred = "b1";
  const auto n = static_cast<std::int64_t>(4000.0 * scale);
  for (std::int64_t i = 0; i < n; ++i) {
    w.base.emplace_back("b1", Row1(i));
    w.base.emplace_back("b2", Row1(i));
  }
  util::Rng rng(0xfa40u);
  std::vector<std::int64_t> live;
  live.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    live.push_back(i);
  }
  std::int64_t next = n;
  const std::size_t ops_per_batch = static_cast<std::size_t>(160.0 * scale);
  for (std::size_t b = 0; b < 16; ++b) {
    std::vector<Op> batch;
    for (std::size_t i = 0; i < ops_per_batch; ++i) {
      if (rng.NextBool(del_frac) && !live.empty()) {
        const std::size_t idx =
            static_cast<std::size_t>(rng.NextBelow(live.size()));
        batch.push_back({.insert = false, .a = live[idx]});
        live[idx] = live.back();
        live.pop_back();
      } else {
        batch.push_back({.insert = true, .a = next});
        live.push_back(next++);
      }
    }
    w.batches.push_back(std::move(batch));
  }
  return w;
}

/// tc_<mix>: random digraph dense enough for a giant SCC (heavy path
/// redundancy), a stream of live-edge deletes and fresh-pair inserts.
Workload MakeTc(const std::string& mix, double del_frac, double scale) {
  Workload w;
  w.name = "tc_" + mix;
  w.program = kTcProgram;
  w.change_pred = "e";
  w.arity = 2;
  const auto v =
      static_cast<std::int64_t>(96.0 * std::sqrt(scale));
  util::Rng rng(0x7c17u);
  const auto key = [v](std::int64_t a, std::int64_t b) { return a * v + b; };
  std::unordered_set<std::int64_t> present;
  std::vector<std::pair<std::int64_t, std::int64_t>> live;
  for (std::int64_t i = 0; i < v; ++i) {
    for (std::int64_t j = 0; j < v; ++j) {
      if (i != j && rng.NextBool(0.08)) {
        w.base.emplace_back("e", Row2(i, j));
        present.insert(key(i, j));
        live.emplace_back(i, j);
      }
    }
  }
  for (std::size_t b = 0; b < 16; ++b) {
    std::vector<Op> batch;
    for (std::size_t i = 0; i < 12; ++i) {
      if (rng.NextBool(del_frac) && !live.empty()) {
        const std::size_t idx =
            static_cast<std::size_t>(rng.NextBelow(live.size()));
        const auto [a, bb] = live[idx];
        batch.push_back({.insert = false, .a = a, .b = bb});
        present.erase(key(a, bb));
        live[idx] = live.back();
        live.pop_back();
      } else {
        for (int tries = 0; tries < 32; ++tries) {
          const auto a = static_cast<std::int64_t>(rng.NextBelow(
              static_cast<std::uint64_t>(v)));
          const auto bb = static_cast<std::int64_t>(rng.NextBelow(
              static_cast<std::uint64_t>(v)));
          if (a == bb || present.contains(key(a, bb))) {
            continue;
          }
          batch.push_back({.insert = true, .a = a, .b = bb});
          present.insert(key(a, bb));
          live.emplace_back(a, bb);
          break;
        }
      }
    }
    w.batches.push_back(std::move(batch));
  }
  return w;
}

/// Order-independent content fingerprint over the whole store.
std::uint64_t Checksum(const Database& db) {
  std::uint64_t sum = 0;
  const datalog::RelationStore& store = db.Store();
  for (std::size_t p = 0; p < store.NumRelations(); ++p) {
    const auto pred = static_cast<std::uint32_t>(p);
    store.Of(pred).ForEachRow([&sum, pred](std::uint32_t, RowView row) {
      std::uint64_t h = pred + 1;
      for (const Value& v : row) {
        h = h * 0x100000001b3ULL + v.Bits();
      }
      sum += h;
    });
  }
  return sum;
}

struct Cell {
  std::string workload;
  std::string strategy;
  std::size_t workers = 1;  ///< 1 = serial ApplyRequest, else parallel
  std::uint64_t op_count = 0;
  std::uint64_t maint_ops = 0;
  std::uint64_t maint_avoided = 0;
  std::uint64_t checksum = 0;
  double seconds = 0.0;
};

Cell RunCell(const Workload& w, const std::string& strategy_name,
             std::size_t workers) {
  Cell cell;
  cell.workload = w.name;
  cell.strategy = strategy_name;
  cell.workers = workers;
  const MaintenanceStrategy strategy =
      ParseMaintenanceStrategy(strategy_name);

  Database db(w.program);
  for (const auto& [pred, tuple] : w.base) {
    db.Insert(pred, tuple);
  }
  db.Materialize();

  util::WallTimer timer;
  for (const std::vector<Op>& batch : w.batches) {
    Database::Update update = db.MakeUpdate();
    for (const Op& op : batch) {
      const Tuple row = w.arity == 1 ? Row1(op.a) : Row2(op.a, op.b);
      if (op.insert) {
        update.Insert(w.change_pred, row);
      } else {
        update.Delete(w.change_pred, row);
      }
      ++cell.op_count;
    }
    UpdateResult result;
    if (workers <= 1) {
      result = db.ApplyRequest(update.Request(), strategy);
    } else {
      result = db.ApplyRequestParallel(update.Request(),
                                       {.scheduler_spec = "hybrid",
                                        .workers = workers,
                                        .strategy = strategy})
                   .update;
    }
    cell.maint_ops += result.total_maint_ops;
    for (const datalog::ComponentUpdateStats& c : result.components) {
      cell.maint_avoided += c.maint_avoided;
    }
  }
  cell.seconds = timer.ElapsedSeconds();
  cell.checksum = Checksum(db);
  return cell;
}

void Report(const Cell& c) {
  std::printf("%-14s %-9s w%zu  %7llu ops  %9llu maint_ops  %8llu avoided  "
              "%10s\n",
              c.workload.c_str(), c.strategy.c_str(), c.workers,
              static_cast<unsigned long long>(c.op_count),
              static_cast<unsigned long long>(c.maint_ops),
              static_cast<unsigned long long>(c.maint_avoided),
              util::FormatSeconds(c.seconds).c_str());
}

}  // namespace dsched::bench

int main(int argc, char** argv) {
  using namespace dsched;
  using namespace dsched::bench;
  MicroBenchArgs args;
  args.out = "BENCH_maint.json";
  if (!ParseMicroBenchArgs(argc, argv, &args)) {
    return 2;
  }
  const auto session = MaybeStartTrace(args.trace);

  std::vector<Workload> workloads;
  for (const auto& [mix, del_frac] :
       {std::pair<const char*, double>{"del90", 0.9},
        {"mix50", 0.5},
        {"ins90", 0.1}}) {
    workloads.push_back(MakeFanout(mix, del_frac, args.scale));
    workloads.push_back(MakeTc(mix, del_frac, args.scale));
  }

  const char* strategies[] = {"dred", "counting", "bf"};
  const std::size_t worker_counts[] = {1, 4};
  std::vector<Cell> cells;
  int failures = 0;
  for (const Workload& w : workloads) {
    std::uint64_t expected_checksum = 0;
    for (const char* strategy : strategies) {
      for (const std::size_t workers : worker_counts) {
        Cell cell = RunCell(w, strategy, workers);
        Report(cell);
        if (expected_checksum == 0) {
          expected_checksum = cell.checksum;
        } else if (cell.checksum != expected_checksum) {
          std::fprintf(stderr,
                       "FAIL %s %s w%zu: checksum %llu != %llu — strategies "
                       "diverged\n",
                       w.name.c_str(), strategy, workers,
                       static_cast<unsigned long long>(cell.checksum),
                       static_cast<unsigned long long>(expected_checksum));
          ++failures;
        }
        cells.push_back(std::move(cell));
      }
    }
  }

  // --- Summary ratios (serial cells; parallel op counts are
  // scheduling-order sensitive for B/F).
  const auto ops_of = [&cells](const std::string& workload,
                               const std::string& strategy) -> double {
    for (const Cell& c : cells) {
      if (c.workload == workload && c.strategy == strategy &&
          c.workers == 1) {
        return static_cast<double>(c.maint_ops);
      }
    }
    return 0.0;
  };
  struct Ratio {
    std::string key;
    double value = 0.0;
    double gate = 0.0;  ///< self-gate: fail below this (0 = ungated)
  };
  std::vector<Ratio> ratios;
  for (const Workload& w : workloads) {
    const double dred = ops_of(w.name, "dred");
    for (const char* other : {"counting", "bf"}) {
      const double ops = ops_of(w.name, other);
      Ratio r;
      r.key = w.name + "_dred_vs_" + other;
      r.value = ops > 0.0 ? dred / ops : 0.0;
      // The tentpole's acceptance bar: >= 2x fewer maintenance ops than
      // DRed on the deletion-heavy sweep, for every strategy on the shape
      // it targets.  Counting on tc falls back to DRed (recursive) and is
      // reported but not gated.
      const bool counting_on_tc =
          std::string(other) == "counting" && w.name.rfind("tc_", 0) == 0;
      if (w.name.find("_del90") != std::string::npos && !counting_on_tc) {
        r.gate = 2.0;
      }
      ratios.push_back(std::move(r));
    }
  }
  for (const Ratio& r : ratios) {
    std::printf("%-28s %6.2fx%s\n", r.key.c_str(), r.value,
                r.gate > 0.0 && r.value < r.gate ? "  (BELOW GATE)" : "");
    if (r.gate > 0.0 && r.value < r.gate) {
      std::fprintf(stderr, "FAIL %s: %.2fx below the %.1fx gate\n",
                   r.key.c_str(), r.value, r.gate);
      ++failures;
    }
  }
  if (failures > 0) {
    return 1;
  }

  std::string json = "{\n  \"bench\": \"micro_maint\",\n  \"scale\": " +
                     std::to_string(args.scale) + ",\n  \"summary\": {\n";
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    char line[128];
    std::snprintf(line, sizeof line, "    \"%s\": %.2f%s\n",
                  ratios[i].key.c_str(), ratios[i].value,
                  i + 1 < ratios.size() ? "," : "");
    json += line;
  }
  json += "  },\n  \"results\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    char line[256];
    std::snprintf(
        line, sizeof line,
        "    {\"workload\": \"%s\", \"strategy\": \"%s\", \"workers\": %zu, "
        "\"op_count\": %llu, \"maint_ops\": %llu, \"maint_avoided\": %llu, "
        "\"checksum\": %llu, \"seconds\": %.6f}%s\n",
        c.workload.c_str(), c.strategy.c_str(), c.workers,
        static_cast<unsigned long long>(c.op_count),
        static_cast<unsigned long long>(c.maint_ops),
        static_cast<unsigned long long>(c.maint_avoided),
        static_cast<unsigned long long>(c.checksum), c.seconds,
        i + 1 < cells.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";
  if (!WriteBenchFile(args.out, json)) {
    return 1;
  }
  std::printf("wrote %s\n", args.out.c_str());

  obs::MetricsRegistry metrics;
  for (const Cell& c : cells) {
    const std::string key = "micro_maint." + c.workload + "." + c.strategy +
                            ".w" + std::to_string(c.workers) + ".";
    metrics.Set(key + "maint_ops", c.maint_ops);
    metrics.Set(key + "maint_avoided", c.maint_avoided);
    metrics.Set(key + "checksum", c.checksum);
    metrics.Set(key + "seconds_ns",
                static_cast<std::uint64_t>(c.seconds * 1e9));
  }
  for (const Ratio& r : ratios) {
    metrics.Set("micro_maint." + r.key + "_x100",
                static_cast<std::uint64_t>(r.value * 100.0));
  }
  PrintMetrics(metrics);
  FinishTrace(session.get(), args.trace);
  return 0;
}
