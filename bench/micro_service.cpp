// Networked-service load generator: N ServiceClient connections drive an
// open-loop arrival schedule of SUBMIT batches against a live ServiceServer
// (src/net/), in two session modes:
//
//   exclusive — every connection opens its own session (the multi-tenant
//               shape: N programs, one shared pool).
//   shared    — one session, all N connections submit to it (the hot-key
//               shape: per-connection FIFO composes into one epoch order,
//               pipeline_depth 4).
//
// Open loop means latency is measured from each batch's SCHEDULED send
// time, not its actual send — falling behind the arrival rate shows up as
// queueing delay in p99/p999 instead of silently stretching the axis.
// Each cell records p50/p99/p999 UpdateOutcome latency and sustained
// batches/sec into BENCH_service.json (the seventh perf-gate baseline).
//
// Correctness is gated, not assumed: per connection, keys live in a
// disjoint block and deletes only target keys that same connection
// inserted batches earlier, so the final store is independent of how the
// server interleaves connections.  After the run the whole store is read
// back OVER THE WIRE (QUERY per predicate) and checksummed against an
// in-process serial Database replay of the same op stream — any mismatch
// HARD-FAILS the binary (exit 1).  The acceptance cells drive 64
// concurrent connections.
//
// Usage: micro_service [--out=BENCH_service.json] [--scale=1.0]
//                      [--trace=out.json] [--smoke]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "datalog/database.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/engine_host.hpp"
#include "service/session.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace dsched::bench {

using datalog::Database;
using datalog::RowView;
using datalog::Value;
using net::ServiceClient;
using net::ServiceServer;

/// Three derivation levels off one base: every batch cascades through four
/// predicates, enough maintenance work to be a real update without making
/// the cascade (rather than the wire) the bottleneck.
constexpr const char* kServiceProgram = R"(
  d1(X) :- base(X).
  d2(X) :- d1(X).
  d3(X) :- d2(X).
)";

/// One base change; keys are per-connection disjoint and never reused.
struct GenOp {
  bool insert = false;
  std::int64_t key = 0;
};

/// Connection `conn`'s batch `b` (size S): batch 0 seeds S fresh keys;
/// later batches mint S-1 fresh keys and delete one key seeded at least
/// ~S batches earlier — per-connection FIFO (which the server guarantees)
/// makes every delete land after its insert.
std::vector<GenOp> BatchOps(int conn, int b, int batch_size) {
  const std::int64_t base =
      (static_cast<std::int64_t>(conn) + 1) * 1'000'000;
  std::vector<GenOp> ops;
  if (b == 0) {
    for (int i = 0; i < batch_size; ++i) {
      ops.push_back({true, base + i});
    }
    return ops;
  }
  const std::int64_t fresh0 =
      base + batch_size +
      static_cast<std::int64_t>(b - 1) * (batch_size - 1);
  for (int i = 0; i < batch_size - 1; ++i) {
    ops.push_back({true, fresh0 + i});
  }
  ops.push_back({false, base + (b - 1)});
  return ops;
}

/// micro_pipeline's order-independent store fingerprint, recomputed here
/// from WIRE rows so the cross-check covers the whole net path.
std::uint64_t HashRow(std::uint32_t pred, const net::WireTuple& row) {
  std::uint64_t h = pred + 1;
  for (const net::WireValue& v : row) {
    h = h * 0x100000001b3ULL + Value::Int(v.int_value).Bits();
  }
  return h;
}

std::uint64_t StoreChecksum(const datalog::RelationStore& store) {
  std::uint64_t sum = 0;
  for (std::size_t p = 0; p < store.NumRelations(); ++p) {
    const auto pred = static_cast<std::uint32_t>(p);
    store.Of(pred).ForEachRow([&sum, pred](std::uint32_t, RowView row) {
      std::uint64_t h = pred + 1;
      for (const Value& v : row) {
        h = h * 0x100000001b3ULL + v.Bits();
      }
      sum += h;
    });
  }
  return sum;
}

std::uint64_t StoreRows(const datalog::RelationStore& store) {
  std::uint64_t rows = 0;
  for (std::size_t p = 0; p < store.NumRelations(); ++p) {
    rows += store.Of(static_cast<std::uint32_t>(p)).Size();
  }
  return rows;
}

struct CellSpec {
  const char* mode = "exclusive";  ///< "exclusive" | "shared"
  int connections = 8;
  int rate = 100;  ///< target batches/sec per connection (open loop)
};

struct ConnResult {
  std::uint64_t session_id = 0;
  std::vector<double> lat_us;
  bool ok = false;
  std::string error;
};

void HandleResponse(const ServiceClient::Response& resp,
                    const std::unordered_map<std::uint64_t, double>& sched,
                    double now_s, int* received, ConnResult* out) {
  if (resp.opcode == net::Opcode::kSubmitResult) {
    const auto it = sched.find(resp.submit_result.request_id);
    if (it != sched.end()) {
      out->lat_us.push_back((now_s - it->second) * 1e6);
    }
    ++*received;
    return;
  }
  if (resp.opcode == net::Opcode::kError) {
    out->ok = false;
    out->error = "server error: " + resp.error.message;
  }
}

void RunConnection(std::uint16_t port, bool exclusive,
                   std::uint64_t shared_sid, int conn, int batches,
                   int batch_size, int rate, ConnResult* out) {
  try {
    ServiceClient client;
    client.Connect("127.0.0.1", port);
    std::uint64_t sid = shared_sid;
    if (exclusive) {
      net::OpenSessionRequest open;
      open.request_id = 1;
      open.program = kServiceProgram;
      open.queue_capacity = 32;
      sid = client.OpenSessionSync(open);
    }
    out->session_id = sid;
    out->ok = true;

    std::unordered_map<std::uint64_t, double> sched;
    sched.reserve(static_cast<std::size_t>(batches));
    const auto t0 = std::chrono::steady_clock::now();
    const auto now_s = [&t0] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };
    int received = 0;
    for (int b = 0; b < batches && out->ok; ++b) {
      const double target = static_cast<double>(b) / rate;
      // Drain responses while pacing toward the scheduled send time.
      while (out->ok) {
        const double wait_s = target - now_s();
        if (wait_s <= 0.0) {
          break;
        }
        ServiceClient::Response resp;
        if (client.ReadResponse(&resp,
                                std::max(1, static_cast<int>(wait_s * 1e3)))) {
          HandleResponse(resp, sched, now_s(), &received, out);
        }
      }
      net::SubmitRequest req;
      req.request_id = static_cast<std::uint64_t>(1000 + b);
      req.session_id = sid;
      for (const GenOp& op : BatchOps(conn, b, batch_size)) {
        req.ops.push_back(net::WireOp{
            !op.insert, "base", {net::WireValue::Int(op.key)}});
      }
      sched[req.request_id] = target;  // open-loop latency origin
      client.SendSubmit(req);
      ServiceClient::Response resp;
      while (out->ok && client.ReadResponse(&resp, 0)) {
        HandleResponse(resp, sched, now_s(), &received, out);
      }
    }
    while (out->ok && received < batches) {
      ServiceClient::Response resp;
      if (!client.ReadResponse(&resp, 60000)) {
        out->ok = false;
        out->error = "timed out (or disconnected) draining responses";
        break;
      }
      HandleResponse(resp, sched, now_s(), &received, out);
    }
    // Leave the session open: the main thread reads it back for the
    // checksum cross-check.
  } catch (const std::exception& e) {
    out->ok = false;
    out->error = e.what();
  }
}

struct Cell {
  std::string mode;
  int connections = 0;
  int rate = 0;
  int batch = 0;
  std::uint64_t batches = 0;
  std::uint64_t rows = 0;
  std::uint64_t checksum = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double batches_per_sec = 0.0;
  double seconds = 0.0;
  std::uint64_t backpressure_stalls = 0;
};

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

Cell RunCell(const CellSpec& spec, int batches, int batch_size) {
  Cell cell;
  cell.mode = spec.mode;
  cell.connections = spec.connections;
  cell.rate = spec.rate;
  cell.batch = batch_size;
  cell.batches =
      static_cast<std::uint64_t>(spec.connections) *
      static_cast<std::uint64_t>(batches);
  const bool exclusive = cell.mode == "exclusive";

  service::EngineHost host({.workers = 2});
  ServiceServer server(host, {});
  server.Start();
  ServiceClient main_client;
  main_client.Connect("127.0.0.1", server.Port());
  std::uint64_t shared_sid = 0;
  if (!exclusive) {
    net::OpenSessionRequest open;
    open.request_id = 1;
    open.program = kServiceProgram;
    open.queue_capacity = 64;
    open.pipeline_depth = 4;
    shared_sid = main_client.OpenSessionSync(open);
  }

  std::vector<ConnResult> results(
      static_cast<std::size_t>(spec.connections));
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  util::WallTimer timer;
  for (int c = 0; c < spec.connections; ++c) {
    threads.emplace_back(RunConnection, server.Port(), exclusive, shared_sid,
                         c, batches, batch_size, spec.rate,
                         &results[static_cast<std::size_t>(c)]);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  cell.seconds = timer.ElapsedSeconds();
  cell.batches_per_sec =
      cell.seconds > 0.0
          ? static_cast<double>(cell.batches) / cell.seconds
          : 0.0;
  for (const ConnResult& r : results) {
    if (!r.ok) {
      std::fprintf(stderr, "FAIL [%s c%d]: connection failed: %s\n",
                   spec.mode, spec.connections, r.error.c_str());
      std::exit(1);
    }
  }

  std::vector<double> lat;
  for (const ConnResult& r : results) {
    lat.insert(lat.end(), r.lat_us.begin(), r.lat_us.end());
  }
  std::sort(lat.begin(), lat.end());
  cell.p50_us = Percentile(lat, 0.50);
  cell.p99_us = Percentile(lat, 0.99);
  cell.p999_us = Percentile(lat, 0.999);

  // --- the cross-check: read the final stores back over the wire and
  // compare against an in-process serial replay.  Exact or die.
  const Database name_db(kServiceProgram);  // predicate name/id oracle
  const datalog::Program& program = name_db.GetProgram();
  std::vector<std::uint64_t> sids;
  if (exclusive) {
    for (const ConnResult& r : results) {
      sids.push_back(r.session_id);
    }
  } else {
    sids.push_back(shared_sid);
  }
  std::uint64_t wire_checksum = 0;
  std::uint64_t wire_rows = 0;
  std::uint64_t next_request = 100;
  for (const std::uint64_t sid : sids) {
    for (std::uint32_t p = 0; p < program.NumPredicates(); ++p) {
      net::QueryRequest q;
      q.request_id = next_request++;
      q.session_id = sid;
      q.predicate = program.predicate_names[p];
      const net::QueryResultResponse rows = main_client.QuerySync(q);
      for (const net::WireTuple& row : rows.rows) {
        wire_checksum += HashRow(p, row);
        ++wire_rows;
      }
    }
  }
  std::uint64_t replay_checksum = 0;
  std::uint64_t replay_rows = 0;
  const auto replay_conns = [&](int lo, int hi) {
    Database db(kServiceProgram);
    db.Materialize();
    const std::uint32_t pred = db.GetProgram().PredicateId("base");
    for (int c = lo; c < hi; ++c) {
      for (int b = 0; b < batches; ++b) {
        datalog::UpdateRequest request;
        for (const GenOp& op : BatchOps(c, b, batch_size)) {
          auto& side = op.insert ? request.insertions : request.deletions;
          side.emplace_back(pred, datalog::Tuple{Value::Int(op.key)});
        }
        (void)db.ApplyRequest(request);
      }
    }
    replay_checksum += StoreChecksum(db.Store());
    replay_rows += StoreRows(db.Store());
  };
  if (exclusive) {
    for (int c = 0; c < spec.connections; ++c) {
      replay_conns(c, c + 1);  // one store per session, summed like sids
    }
  } else {
    replay_conns(0, spec.connections);
  }
  if (wire_checksum != replay_checksum || wire_rows != replay_rows) {
    std::fprintf(stderr,
                 "FAIL [%s c%d]: wire store (rows=%llu checksum=%016llx) != "
                 "serial replay (rows=%llu checksum=%016llx)\n",
                 spec.mode, spec.connections,
                 static_cast<unsigned long long>(wire_rows),
                 static_cast<unsigned long long>(wire_checksum),
                 static_cast<unsigned long long>(replay_rows),
                 static_cast<unsigned long long>(replay_checksum));
    std::exit(1);
  }
  cell.rows = wire_rows;
  cell.checksum = wire_checksum;
  cell.backpressure_stalls =
      host.Metrics().Value("net.backpressure_stalls");
  server.Stop();
  return cell;
}

void Report(const Cell& c) {
  std::printf("%-9s conns=%-3d rate=%-4d b%-3d %5llu batches  %8.1f b/s  "
              "p50 %8.0fus  p99 %8.0fus  p999 %8.0fus  %6llu parked  %s\n",
              c.mode.c_str(), c.connections, c.rate, c.batch,
              static_cast<unsigned long long>(c.batches), c.batches_per_sec,
              c.p50_us, c.p99_us, c.p999_us,
              static_cast<unsigned long long>(c.backpressure_stalls),
              util::FormatSeconds(c.seconds).c_str());
}

int Main(int argc, char** argv) {
  MicroBenchArgs args;
  args.out = "BENCH_service.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    }
  }
  if (!ParseMicroBenchArgs(argc, argv, &args)) {
    return 2;
  }
  auto trace = MaybeStartTrace(args.trace);

  const int batch_size = 8;
  const int batches =
      smoke ? 6
            : std::max(4, static_cast<int>(25.0 * args.scale + 0.5));
  std::vector<CellSpec> cells;
  if (smoke) {
    cells = {{"exclusive", 4, 200}, {"shared", 4, 200}};
  } else {
    cells = {{"exclusive", 8, 100},
             {"shared", 8, 100},
             {"exclusive", 64, 100},
             {"shared", 64, 100}};
  }

  std::printf("micro_service: open-loop wire load, %d batches x %d ops per "
              "connection%s\n\n",
              batches, batch_size, smoke ? " (smoke)" : "");
  std::vector<Cell> done;
  for (const CellSpec& spec : cells) {
    done.push_back(RunCell(spec, batches, batch_size));
    Report(done.back());
  }

  FinishTrace(trace.get(), args.trace);
  if (smoke) {
    std::printf("\nsmoke OK: all checksums matched the serial replay\n");
    return 0;
  }

  std::string json;
  char line[512];
  std::snprintf(line, sizeof line,
                "{\n  \"bench\": \"service\",\n  \"scale\": %.2f,\n"
                "  \"hw_concurrency\": %u,\n  \"results\": [\n",
                args.scale, std::thread::hardware_concurrency());
  json += line;
  for (std::size_t i = 0; i < done.size(); ++i) {
    const Cell& c = done[i];
    std::snprintf(
        line, sizeof line,
        "    {\"mode\": \"%s\", \"connections\": %d, \"rate\": %d, "
        "\"batch\": %d, \"batches\": %llu, \"rows\": %llu, "
        "\"checksum\": %llu,\n     \"p50_us\": %.1f, \"p99_us\": %.1f, "
        "\"p999_us\": %.1f, \"batches_per_sec\": %.2f, "
        "\"seconds\": %.6f, \"backpressure_stalls\": %llu}%s\n",
        c.mode.c_str(), c.connections, c.rate, c.batch,
        static_cast<unsigned long long>(c.batches),
        static_cast<unsigned long long>(c.rows),
        static_cast<unsigned long long>(c.checksum), c.p50_us, c.p99_us,
        c.p999_us, c.batches_per_sec, c.seconds,
        static_cast<unsigned long long>(c.backpressure_stalls),
        i + 1 < done.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";
  if (!WriteBenchFile(args.out, json)) {
    return 1;
  }
  std::printf("\nwrote %s\n", args.out.c_str());
  return 0;
}

}  // namespace dsched::bench

int main(int argc, char** argv) { return dsched::bench::Main(argc, argv); }
