// Rule-set evolution benchmark: EvolveAddRules/EvolveRemoveRule against a
// from-scratch rebuild of the final rule set, for every maintenance
// strategy, over two cone shapes that bracket the tentpole's claim:
//
//   small — a two-hop side chain (side/side2 over tag) bolted onto a heavy
//           transitive-closure tower.  Adding side3 or removing the side2
//           rule perturbs one predicate; the tower's strata are untouched
//           and the evolution must not pay for them.  This is the shape the
//           affected-cone scoping exists for and the cells self-gate the
//           acceptance bar: rebuild_ops >= 2x evolve_ops.
//   large — a reach + d1..d3 delta chain where the evolved rule feeds all
//           of tc into reach, so the cone covers most of the derived store.
//           Reported (the ratio naturally collapses toward 1x) but not
//           gated: when everything is affected, affected-only is honest
//           about doing everything.
//
// Each cell evolves a materialized database once, then builds a second
// database from scratch with the final rule set and the same base facts.
// The two stores must agree on an order-independent checksum — the bench
// doubles as an evolve-vs-rebuild equivalence stress — and that checksum,
// the op counts, the cone size and the published program version are all
// deterministic, so CI gates them exactly.
//
//   evolve_ops  — the evolution cascade's total effort: maintenance probes
//                 plus rows inserted/deleted (UpdateResult totals).
//   rebuild_ops — EvalStats::tuples_inserted of the from-scratch
//                 Materialize() of the final program.
//
// Every cell first applies one small base update under its strategy so the
// counting cells evolve against a SEALED counting plane (the scoped
// invalidation path, not first-touch initialization).
//
// Usage: micro_evolve [--out=BENCH_evolve.json] [--scale=1.0] [--trace=out.json]
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "datalog/database.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace dsched::bench {

using datalog::Database;
using datalog::MaintenanceStrategy;
using datalog::ParseMaintenanceStrategy;
using datalog::RowView;
using datalog::Tuple;
using datalog::Value;

// The removable side2 rule is last so its predicate is the LAST one
// interned: the rebuild program (which never mentions side2) assigns the
// same ids to every other predicate and the checksums stay comparable.
constexpr const char* kSmallBase = R"(
  tc(X, Y) :- e(X, Y).
  tc(X, Z) :- tc(X, Y), e(Y, Z).
  side(X) :- tag(X).
  side2(X) :- side(X).
)";
constexpr const char* kSmallAddRule = "side3(X) :- tag(X), side(X).";
constexpr const char* kSmallRemoveRule = "side2(X) :- side(X).";

constexpr const char* kLargeBase = R"(
  tc(X, Y) :- e(X, Y).
  tc(X, Z) :- tc(X, Y), e(Y, Z).
  reach(X, Y) :- e(X, Y), e(Y, X).
  d1(X, Y) :- reach(X, Y).
  d2(X, Y) :- d1(X, Y).
  d3(X, Y) :- d2(X, Y).
)";
// Feeds all of tc into reach: the cone is {reach, d1, d2, d3} and the
// evolution legitimately rewrites most of the derived store.
constexpr const char* kLargeRule = "reach(X, Y) :- tc(X, Y).";

struct Shape {
  std::string cone;          ///< "small" | "large"
  std::string kind;          ///< "add" | "remove"
  std::string start_text;    ///< program the database is built with
  std::string final_text;    ///< program the rebuild database is built with
  std::string evolve_clause; ///< rule text handed to the evolve call
};

Shape MakeShape(const std::string& cone, const std::string& kind) {
  Shape s;
  s.cone = cone;
  s.kind = kind;
  const bool small = cone == "small";
  const std::string base = small ? kSmallBase : kLargeBase;
  const std::string rule = small ? (kind == "add" ? kSmallAddRule
                                                  : kSmallRemoveRule)
                                 : kLargeRule;
  s.evolve_clause = rule;
  if (kind == "add") {
    s.start_text = base;
    s.final_text = base + ("\n  " + rule + "\n");
  } else {
    // Small removal drops the trailing side2 rule from the base text;
    // large removal starts from base + the reach rule and drops it again.
    if (small) {
      s.start_text = base;
      const std::size_t at = s.start_text.rfind("side2");
      s.final_text = s.start_text.substr(0, at - 2);  // "  side2..." line
    } else {
      s.start_text = base + ("\n  " + rule + "\n");
      s.final_text = base;
    }
  }
  return s;
}

Tuple Row1(std::int64_t a) { return {Value::Int(a)}; }
Tuple Row2(std::int64_t a, std::int64_t b) {
  return {Value::Int(a), Value::Int(b)};
}

/// Deterministic shared base facts: a random digraph on `v` nodes dense
/// enough for long tc chains, plus `t` tag values for the side chain.
struct BaseFacts {
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  std::int64_t tags = 0;
};

BaseFacts MakeBase(double scale) {
  BaseFacts base;
  const auto v = static_cast<std::int64_t>(24.0 * std::sqrt(scale));
  base.tags = static_cast<std::int64_t>(64.0 * scale);
  util::Rng rng(0xe701u);
  for (std::int64_t i = 0; i < v; ++i) {
    for (std::int64_t j = 0; j < v; ++j) {
      if (i != j && rng.NextBool(0.12)) {
        base.edges.emplace_back(i, j);
      }
    }
  }
  return base;
}

/// The small programs take the side chain's tag facts; the large ones only
/// know `e`.
void InsertBase(Database& db, const BaseFacts& base, bool with_tags) {
  for (const auto& [a, b] : base.edges) {
    db.Insert("e", Row2(a, b));
  }
  if (with_tags) {
    for (std::int64_t i = 0; i < base.tags; ++i) {
      db.Insert("tag", Row1(i));
    }
  }
}

/// The warm-up row: a fresh tag for the small shapes, an isolated fresh
/// edge (no contact with the random digraph) for the large ones.
std::pair<const char*, Tuple> WarmFact(const std::string& cone,
                                       const BaseFacts& base) {
  if (cone == "small") {
    return {"tag", Row1(base.tags)};
  }
  return {"e", Row2(9999, 10000)};
}

/// Order-independent content fingerprint over the whole store (the
/// micro_maint fingerprint; empty relations contribute nothing, so the
/// evolved database's retired side2 relation doesn't skew the compare).
std::uint64_t Checksum(const Database& db) {
  std::uint64_t sum = 0;
  const datalog::RelationStore& store = db.Store();
  for (std::size_t p = 0; p < store.NumRelations(); ++p) {
    const auto pred = static_cast<std::uint32_t>(p);
    store.Of(pred).ForEachRow([&sum, pred](std::uint32_t, RowView row) {
      std::uint64_t h = pred + 1;
      for (const Value& v : row) {
        h = h * 0x100000001b3ULL + v.Bits();
      }
      sum += h;
    });
  }
  return sum;
}

struct Cell {
  std::string kind;
  std::string cone;
  std::string strategy;
  std::uint64_t cone_preds = 0;
  std::uint64_t reused_components = 0;
  std::uint64_t evolve_ops = 0;
  std::uint64_t rebuild_ops = 0;
  std::uint64_t program_version = 0;
  std::uint64_t evolve_checksum = 0;
  std::uint64_t rebuild_checksum = 0;
  double seconds = 0.0;  ///< the evolve call only
};

Cell RunCell(const Shape& shape, const BaseFacts& base,
             const std::string& strategy_name) {
  Cell cell;
  cell.kind = shape.kind;
  cell.cone = shape.cone;
  cell.strategy = strategy_name;
  const MaintenanceStrategy strategy =
      ParseMaintenanceStrategy(strategy_name);

  const bool small = shape.cone == "small";
  Database db(shape.start_text);
  db.SetDefaultStrategy(strategy);
  InsertBase(db, base, small);
  db.Materialize();

  // One warm-up base update under the cell's strategy: counting cells now
  // evolve against a sealed counting plane (scoped invalidation, not
  // first-touch reinit).  The extra row joins the rebuild base too.
  const auto [warm_pred, warm_row] = WarmFact(shape.cone, base);
  Database::Update warm = db.MakeUpdate();
  warm.Insert(warm_pred, warm_row);
  db.Apply(warm);

  util::WallTimer timer;
  const Database::EvolveResult result =
      shape.kind == "add" ? db.EvolveAddRules(shape.evolve_clause)
                          : db.EvolveRemoveRule(shape.evolve_clause);
  cell.seconds = timer.ElapsedSeconds();
  cell.cone_preds = result.stats.cone_predicates;
  cell.reused_components = result.stats.reused_components;
  cell.evolve_ops = static_cast<std::uint64_t>(
      result.update.total_maint_ops + result.update.total_inserted +
      result.update.total_deleted);
  cell.program_version = result.program_version;
  cell.evolve_checksum = Checksum(db);

  Database rebuild(shape.final_text);
  rebuild.SetDefaultStrategy(strategy);
  InsertBase(rebuild, base, small);
  rebuild.Insert(warm_pred, warm_row);
  cell.rebuild_ops = rebuild.Materialize().tuples_inserted;
  cell.rebuild_checksum = Checksum(rebuild);
  return cell;
}

void Report(const Cell& c) {
  const double ratio = c.evolve_ops > 0
                           ? static_cast<double>(c.rebuild_ops) /
                                 static_cast<double>(c.evolve_ops)
                           : 0.0;
  std::printf("%-6s %-5s %-9s  cone %3llu preds  reused %3llu  "
              "%7llu evolve_ops  %7llu rebuild_ops  %6.2fx  %10s\n",
              c.kind.c_str(), c.cone.c_str(), c.strategy.c_str(),
              static_cast<unsigned long long>(c.cone_preds),
              static_cast<unsigned long long>(c.reused_components),
              static_cast<unsigned long long>(c.evolve_ops),
              static_cast<unsigned long long>(c.rebuild_ops), ratio,
              util::FormatSeconds(c.seconds).c_str());
}

}  // namespace dsched::bench

int main(int argc, char** argv) {
  using namespace dsched;
  using namespace dsched::bench;
  MicroBenchArgs args;
  args.out = "BENCH_evolve.json";
  if (!ParseMicroBenchArgs(argc, argv, &args)) {
    return 2;
  }
  const auto session = MaybeStartTrace(args.trace);

  const BaseFacts base = MakeBase(args.scale);
  std::vector<Shape> shapes;
  for (const char* cone : {"small", "large"}) {
    for (const char* kind : {"add", "remove"}) {
      shapes.push_back(MakeShape(cone, kind));
    }
  }

  const char* strategies[] = {"dred", "counting", "bf"};
  std::vector<Cell> cells;
  int failures = 0;
  for (const Shape& shape : shapes) {
    for (const char* strategy : strategies) {
      Cell cell = RunCell(shape, base, strategy);
      Report(cell);
      if (cell.evolve_checksum != cell.rebuild_checksum) {
        std::fprintf(stderr,
                     "FAIL %s/%s %s: evolved checksum %llu != rebuild %llu "
                     "— evolution diverged from from-scratch\n",
                     cell.kind.c_str(), cell.cone.c_str(), strategy,
                     static_cast<unsigned long long>(cell.evolve_checksum),
                     static_cast<unsigned long long>(cell.rebuild_checksum));
        ++failures;
      }
      cells.push_back(std::move(cell));
    }
  }

  // --- Summary ratios.  Small-cone cells self-gate the tentpole's
  // acceptance bar: affected-only maintenance must beat a full
  // re-materialization by >= 2x.  Large-cone ratios are reported only —
  // the cone covers the store, so parity is the honest outcome.
  struct Ratio {
    std::string key;
    double value = 0.0;
    double gate = 0.0;  ///< self-gate: fail below this (0 = ungated)
  };
  std::vector<Ratio> ratios;
  for (const Cell& c : cells) {
    Ratio r;
    r.key = c.kind + "_" + c.cone + "_" + c.strategy + "_ratio";
    r.value = c.evolve_ops > 0 ? static_cast<double>(c.rebuild_ops) /
                                     static_cast<double>(c.evolve_ops)
                               : 0.0;
    if (c.cone == "small") {
      r.gate = 2.0;
    }
    ratios.push_back(std::move(r));
  }
  for (const Ratio& r : ratios) {
    std::printf("%-28s %7.2fx%s\n", r.key.c_str(), r.value,
                r.gate > 0.0 && r.value < r.gate ? "  (BELOW GATE)" : "");
    if (r.gate > 0.0 && r.value < r.gate) {
      std::fprintf(stderr, "FAIL %s: %.2fx below the %.1fx gate\n",
                   r.key.c_str(), r.value, r.gate);
      ++failures;
    }
  }
  if (failures > 0) {
    return 1;
  }

  std::string json = "{\n  \"bench\": \"micro_evolve\",\n  \"scale\": " +
                     std::to_string(args.scale) + ",\n  \"summary\": {\n";
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    char line[128];
    std::snprintf(line, sizeof line, "    \"%s\": %.2f%s\n",
                  ratios[i].key.c_str(), ratios[i].value,
                  i + 1 < ratios.size() ? "," : "");
    json += line;
  }
  json += "  },\n  \"results\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    char line[320];
    std::snprintf(
        line, sizeof line,
        "    {\"kind\": \"%s\", \"cone\": \"%s\", \"strategy\": \"%s\", "
        "\"cone_preds\": %llu, \"reused_components\": %llu, "
        "\"evolve_ops\": %llu, \"rebuild_ops\": %llu, "
        "\"program_version\": %llu, \"checksum\": %llu, "
        "\"seconds\": %.6f}%s\n",
        c.kind.c_str(), c.cone.c_str(), c.strategy.c_str(),
        static_cast<unsigned long long>(c.cone_preds),
        static_cast<unsigned long long>(c.reused_components),
        static_cast<unsigned long long>(c.evolve_ops),
        static_cast<unsigned long long>(c.rebuild_ops),
        static_cast<unsigned long long>(c.program_version),
        static_cast<unsigned long long>(c.evolve_checksum), c.seconds,
        i + 1 < cells.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";
  if (!WriteBenchFile(args.out, json)) {
    return 1;
  }
  std::printf("wrote %s\n", args.out.c_str());

  obs::MetricsRegistry metrics;
  for (const Cell& c : cells) {
    const std::string key =
        "micro_evolve." + c.kind + "_" + c.cone + "." + c.strategy + ".";
    metrics.Set(key + "cone_preds", c.cone_preds);
    metrics.Set(key + "evolve_ops", c.evolve_ops);
    metrics.Set(key + "rebuild_ops", c.rebuild_ops);
    metrics.Set(key + "checksum", c.evolve_checksum);
    metrics.Set(key + "seconds_ns",
                static_cast<std::uint64_t>(c.seconds * 1e9));
  }
  for (const Ratio& r : ratios) {
    metrics.Set("micro_evolve." + r.key + "_x100",
                static_cast<std::uint64_t>(r.value * 100.0));
  }
  PrintMetrics(metrics);
  FinishTrace(session.get(), args.trace);
  return 0;
}
