// Epoch-pipelining benchmark: one session, K update cascades in flight
// (service/session.hpp, DESIGN.md §12), sweeping K x batch size x
// maintenance strategy over two shapes that bracket the pipelining
// headroom:
//
//   fanout — 4 independent derivation chains of depth 6 off one base.
//            Every update touches all 24 single-rule components, so a
//            K=1 session pays 6 dependency levels of latency per epoch
//            while K>1 overlaps epoch e+1's level-1 phases with epoch
//            e's deeper levels — the shape pipelining exists for.
//   chain  — transitive closure (one recursive component at level 1).
//            The fence serializes same-component writes across epochs,
//            so pipelining is bounded here by design; the cells document
//            that bound instead of pretending it away.  (Trimmed sweep:
//            K in {1,4}, dred only — strategy COST on a decaying SCC is
//            micro_maint's axis, and bf's per-tuple rederivation probes
//            there are orders of magnitude slower than the pipelining
//            effect this bench measures.)
//
// Every cell replays the SAME pre-generated op stream (chunked into the
// cell's batch size) and must end with the store checksum of a serial
// Database replay — the bench doubles as an order-independence stress and
// HARD-FAILS on any mismatch, at every K.  Stream ops never reuse a key,
// so chunking cannot change the net effect.
//
// Timings and the k4_vs_k1_* ratios are machine-dependent (CI ignores
// them; see tools/check_bench.py).  The >= 1.5x fanout acceptance bar is
// self-gated IN the binary only when hardware_concurrency >= 4 — a
// 1-core runner cannot overlap anything and records ~1.0x honestly.
// Counting sessions clamp to effective K = 1 (StrategyPipelineEligible);
// their cells pin that clamp rather than skipping the strategy.
//
// Usage: micro_pipeline [--out=BENCH_pipeline.json] [--scale=1.0]
//                       [--trace=out.json]
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "datalog/database.hpp"
#include "service/engine_host.hpp"
#include "service/session.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace dsched::bench {

using datalog::Database;
using datalog::RowView;
using datalog::Tuple;
using datalog::Value;

constexpr const char* kFanoutProgram = R"(
  a1(X) :- base(X).  b1(X) :- base(X).  c1(X) :- base(X).  d1(X) :- base(X).
  a2(X) :- a1(X).    b2(X) :- b1(X).    c2(X) :- c1(X).    d2(X) :- d1(X).
  a3(X) :- a2(X).    b3(X) :- b2(X).    c3(X) :- c2(X).    d3(X) :- d2(X).
  a4(X) :- a3(X).    b4(X) :- b3(X).    c4(X) :- c3(X).    d4(X) :- d3(X).
  a5(X) :- a4(X).    b5(X) :- b4(X).    c5(X) :- c4(X).    d5(X) :- d4(X).
  a6(X) :- a5(X).    b6(X) :- b5(X).    c6(X) :- c5(X).    d6(X) :- d5(X).
)";

constexpr const char* kChainProgram = R"(
  tc(X, Y) :- e(X, Y).
  tc(X, Z) :- tc(X, Y), e(Y, Z).
)";

/// One pre-generated base change.  Keys are NEVER reused across the
/// stream (deletes target distinct seed keys, inserts mint fresh ones),
/// so any batching of the stream nets out to the same final store.
struct Op {
  bool insert = false;
  std::int64_t a = 0;
  std::int64_t b = 0;  ///< unused for arity-1 shapes
};

struct Workload {
  std::string name;
  const char* program = nullptr;
  const char* change_pred = nullptr;
  std::size_t arity = 1;
  std::vector<std::pair<const char*, Tuple>> base;
  std::vector<Op> ops;  ///< flat stream; cells chunk by their batch size
};

Tuple Row1(std::int64_t a) { return {Value::Int(a)}; }
Tuple Row2(std::int64_t a, std::int64_t b) {
  return {Value::Int(a), Value::Int(b)};
}

Workload MakeFanout(double scale, std::size_t total_ops) {
  Workload w;
  w.name = "fanout";
  w.program = kFanoutProgram;
  w.change_pred = "base";
  const auto n = static_cast<std::int64_t>(2000.0 * scale);
  for (std::int64_t i = 0; i < n; ++i) {
    w.base.emplace_back("base", Row1(i));
  }
  util::Rng rng(0x9199u);
  std::int64_t next_del = 0;  // seed keys, each deleted at most once
  std::int64_t next_ins = n;  // fresh keys
  for (std::size_t i = 0; i < total_ops; ++i) {
    if (rng.NextBool(0.3) && next_del < n) {
      w.ops.push_back({.insert = false, .a = next_del++});
    } else {
      w.ops.push_back({.insert = true, .a = next_ins++});
    }
  }
  return w;
}

Workload MakeChain(double scale, std::size_t total_ops) {
  Workload w;
  w.name = "chain";
  w.program = kChainProgram;
  w.change_pred = "e";
  w.arity = 2;
  const auto v = static_cast<std::int64_t>(72.0 * scale);
  util::Rng rng(0xc4a1u);
  std::vector<std::pair<std::int64_t, std::int64_t>> seed_edges;
  for (std::int64_t i = 0; i < v; ++i) {
    for (std::int64_t j = 0; j < v; ++j) {
      if (i != j && rng.NextBool(0.06)) {
        w.base.emplace_back("e", Row2(i, j));
        seed_edges.emplace_back(i, j);
      }
    }
  }
  std::size_t next_del = 0;
  std::int64_t next_fresh = v;  // fresh node ids -> guaranteed-new edges
  for (std::size_t i = 0; i < total_ops; ++i) {
    if (rng.NextBool(0.3) && next_del < seed_edges.size()) {
      const auto [a, b] = seed_edges[next_del++];
      w.ops.push_back({.insert = false, .a = a, .b = b});
    } else {
      const auto from = static_cast<std::int64_t>(
          rng.NextBelow(static_cast<std::uint64_t>(v)));
      w.ops.push_back({.insert = true, .a = from, .b = next_fresh++});
    }
  }
  return w;
}

/// Order-independent content fingerprint over a whole store.
std::uint64_t Checksum(const datalog::RelationStore& store) {
  std::uint64_t sum = 0;
  for (std::size_t p = 0; p < store.NumRelations(); ++p) {
    const auto pred = static_cast<std::uint32_t>(p);
    store.Of(pred).ForEachRow([&sum, pred](std::uint32_t, RowView row) {
      std::uint64_t h = pred + 1;
      for (const Value& v : row) {
        h = h * 0x100000001b3ULL + v.Bits();
      }
      sum += h;
    });
  }
  return sum;
}

std::uint64_t RowsTotal(const datalog::RelationStore& store) {
  std::uint64_t rows = 0;
  for (std::size_t p = 0; p < store.NumRelations(); ++p) {
    rows += store.Of(static_cast<std::uint32_t>(p)).Size();
  }
  return rows;
}

datalog::UpdateRequest ChunkToRequest(const Database& db, const Workload& w,
                                      std::size_t begin, std::size_t end) {
  datalog::UpdateRequest request;
  const std::uint32_t pred = db.GetProgram().PredicateId(w.change_pred);
  for (std::size_t i = begin; i < end; ++i) {
    const Op& op = w.ops[i];
    Tuple row = w.arity == 1 ? Row1(op.a) : Row2(op.a, op.b);
    if (op.insert) {
      request.insertions.emplace_back(pred, std::move(row));
    } else {
      request.deletions.emplace_back(pred, std::move(row));
    }
  }
  return request;
}

struct Cell {
  std::string workload;
  std::string strategy;
  std::size_t k = 1;
  std::size_t effective_k = 1;
  std::size_t batch = 0;
  std::uint64_t batches = 0;
  std::uint64_t checksum = 0;
  std::uint64_t rows = 0;
  std::uint64_t stalls = 0;
  double seconds = 0.0;
  double batches_per_sec = 0.0;
};

Cell RunCell(const Workload& w, const char* strategy, std::size_t k,
             std::size_t batch_size) {
  Cell cell;
  cell.workload = w.name;
  cell.strategy = strategy;
  cell.k = k;
  cell.batch = batch_size;

  service::EngineHost host({.workers = 4});
  auto session = host.OpenSession(w.program,
                                  {.name = "bench",
                                   .maintenance_strategy = strategy,
                                   .queue_capacity = 512,
                                   .pipeline_depth = k});
  cell.effective_k = session->PipelineDepth();
  for (const auto& [pred, tuple] : w.base) {
    session->Insert(pred, tuple);
  }
  session->Materialize();

  // The timed region: submit every batch, then drain the pipeline.  The
  // submit side never blocks (queue bound > batch count), so the clock
  // measures apply throughput, overlapped or not.
  std::vector<datalog::UpdateRequest> requests;
  for (std::size_t begin = 0; begin < w.ops.size(); begin += batch_size) {
    requests.push_back(ChunkToRequest(
        session->Db(), w, begin, std::min(begin + batch_size, w.ops.size())));
  }
  cell.batches = requests.size();
  util::WallTimer timer;
  std::vector<std::future<service::UpdateOutcome>> futures;
  futures.reserve(requests.size());
  for (datalog::UpdateRequest& request : requests) {
    futures.push_back(session->Submit(std::move(request)));
  }
  for (auto& future : futures) {
    (void)future.get();
  }
  cell.seconds = timer.ElapsedSeconds();
  cell.batches_per_sec =
      cell.seconds > 0.0 ? static_cast<double>(cell.batches) / cell.seconds
                         : 0.0;
  session->Close();
  cell.checksum = Checksum(session->Store());
  cell.rows = RowsTotal(session->Store());
  cell.stalls = host.Metrics().Value("session.bench.pipeline.stalls");
  return cell;
}

/// The reference result: a plain serial Database replay of the stream.
std::uint64_t SerialChecksum(const Workload& w) {
  Database db(w.program);
  for (const auto& [pred, tuple] : w.base) {
    db.Insert(pred, tuple);
  }
  db.Materialize();
  constexpr std::size_t kReplayBatch = 64;
  for (std::size_t begin = 0; begin < w.ops.size(); begin += kReplayBatch) {
    (void)db.ApplyRequest(ChunkToRequest(
        db, w, begin, std::min(begin + kReplayBatch, w.ops.size())));
  }
  return Checksum(db.Store());
}

void Report(const Cell& c) {
  std::printf("%-7s %-9s k%zu(eff %zu) b%-4zu %4llu batches  %8.1f b/s  "
              "%6llu stalls  %10s\n",
              c.workload.c_str(), c.strategy.c_str(), c.k, c.effective_k,
              c.batch, static_cast<unsigned long long>(c.batches),
              c.batches_per_sec, static_cast<unsigned long long>(c.stalls),
              util::FormatSeconds(c.seconds).c_str());
}

}  // namespace dsched::bench

int main(int argc, char** argv) {
  using namespace dsched;
  using namespace dsched::bench;
  MicroBenchArgs args;
  args.out = "BENCH_pipeline.json";
  if (!ParseMicroBenchArgs(argc, argv, &args)) {
    return 2;
  }
  const auto session = MaybeStartTrace(args.trace);
  const unsigned hw = std::thread::hardware_concurrency();

  const Workload fanout = MakeFanout(args.scale,
                                     static_cast<std::size_t>(1280 * args.scale));
  const Workload chain = MakeChain(1.0,  // graph size fixed; scale != 1
                                   // distorts SCC density nonlinearly
                                   static_cast<std::size_t>(192 * args.scale));

  int failures = 0;
  std::vector<Cell> cells;
  const auto sweep = [&](const Workload& w,
                         std::initializer_list<const char*> strategies,
                         std::initializer_list<std::size_t> ks,
                         std::initializer_list<std::size_t> batches) {
    const std::uint64_t expected = SerialChecksum(w);
    for (const char* strategy : strategies) {
      for (const std::size_t batch : batches) {
        for (const std::size_t k : ks) {
          Cell cell = RunCell(w, strategy, k, batch);
          Report(cell);
          if (cell.checksum != expected) {
            std::fprintf(stderr,
                         "FAIL %s %s k%zu b%zu: checksum %llu != serial %llu "
                         "— pipelined replay diverged\n",
                         w.name.c_str(), strategy, k, batch,
                         static_cast<unsigned long long>(cell.checksum),
                         static_cast<unsigned long long>(expected));
            ++failures;
          }
          cells.push_back(std::move(cell));
        }
      }
    }
  };
  sweep(fanout, {"dred", "counting", "bf"}, {1, 2, 4, 8}, {16, 128});
  sweep(chain, {"dred"}, {1, 4}, {16});

  // --- summary: K=4 vs K=1 throughput per (workload, batch, strategy).
  const auto bps_of = [&cells](const std::string& workload,
                               const std::string& strategy, std::size_t k,
                               std::size_t batch) -> double {
    for (const Cell& c : cells) {
      if (c.workload == workload && c.strategy == strategy && c.k == k &&
          c.batch == batch) {
        return c.batches_per_sec;
      }
    }
    return 0.0;
  };
  struct Ratio {
    std::string key;
    double value = 0.0;
  };
  std::vector<Ratio> ratios;
  for (const Cell& c : cells) {
    if (c.k != 4) {
      continue;
    }
    const double base = bps_of(c.workload, c.strategy, 1, c.batch);
    ratios.push_back({"k4_vs_k1_" + c.workload + "_b" +
                          std::to_string(c.batch) + "_" + c.strategy,
                      base > 0.0 ? c.batches_per_sec / base : 0.0});
  }
  for (const Ratio& r : ratios) {
    std::printf("%-34s %6.2fx\n", r.key.c_str(), r.value);
  }

  // --- self-gate (acceptance bar): on a machine that can actually
  // overlap (>= 4 cores), fanout at K=4 must beat K=1 by >= 1.5x for each
  // eligible strategy at its best batch size.  A 1-core runner records
  // ~1.0x and is exempt — the ratios are data there, not a gate.
  if (hw >= 4) {
    for (const char* strategy : {"dred", "bf"}) {
      double best = 0.0;
      for (const std::size_t batch : {std::size_t{16}, std::size_t{128}}) {
        double ratio = bps_of("fanout", strategy, 4, batch) /
                       std::max(bps_of("fanout", strategy, 1, batch), 1e-12);
        best = std::max(best, ratio);
      }
      if (best < 1.5) {
        std::fprintf(stderr,
                     "FAIL fanout %s: best K4/K1 throughput %.2fx below the "
                     "1.5x pipelining bar (hw_concurrency=%u)\n",
                     strategy, best, hw);
        ++failures;
      }
    }
  } else {
    std::printf("note: hw_concurrency=%u < 4 — K-scaling self-gate skipped "
                "(ratios recorded, not judged)\n",
                hw);
  }
  if (failures > 0) {
    return 1;
  }

  std::string json = "{\n  \"bench\": \"micro_pipeline\",\n  \"scale\": " +
                     std::to_string(args.scale) +
                     ",\n  \"hw_concurrency\": " + std::to_string(hw) +
                     ",\n  \"summary\": {\n";
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    char line[128];
    std::snprintf(line, sizeof line, "    \"%s\": %.2f%s\n",
                  ratios[i].key.c_str(), ratios[i].value,
                  i + 1 < ratios.size() ? "," : "");
    json += line;
  }
  json += "  },\n  \"results\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    char line[320];
    std::snprintf(
        line, sizeof line,
        "    {\"workload\": \"%s\", \"strategy\": \"%s\", \"k\": %zu, "
        "\"effective_k\": %zu, \"batch\": %zu, \"batches\": %llu, "
        "\"rows\": %llu, \"checksum\": %llu, \"stalls\": %llu, "
        "\"batches_per_sec\": %.2f, \"seconds\": %.6f}%s\n",
        c.workload.c_str(), c.strategy.c_str(), c.k, c.effective_k, c.batch,
        static_cast<unsigned long long>(c.batches),
        static_cast<unsigned long long>(c.rows),
        static_cast<unsigned long long>(c.checksum),
        static_cast<unsigned long long>(c.stalls), c.batches_per_sec,
        c.seconds, i + 1 < cells.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";
  if (!WriteBenchFile(args.out, json)) {
    return 1;
  }
  std::printf("wrote %s\n", args.out.c_str());

  obs::MetricsRegistry metrics;
  for (const Cell& c : cells) {
    const std::string key = "micro_pipeline." + c.workload + "." +
                            c.strategy + ".k" + std::to_string(c.k) + ".b" +
                            std::to_string(c.batch) + ".";
    metrics.Set(key + "checksum", c.checksum);
    metrics.Set(key + "rows", c.rows);
    metrics.Set(key + "stalls", c.stalls);
    metrics.Set(key + "seconds_ns",
                static_cast<std::uint64_t>(c.seconds * 1e9));
  }
  for (const Ratio& r : ratios) {
    metrics.Set("micro_pipeline." + r.key + "_x100",
                static_cast<std::uint64_t>(r.value * 100.0));
  }
  PrintMetrics(metrics);
  FinishTrace(session.get(), args.trace);
  return 0;
}
