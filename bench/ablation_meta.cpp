// Ablation: the Theorem 10 meta scheduler A′ under a memory-budget sweep.
//
// On a benign workload A (LogicBlox) stays within budget and the meta
// makespan is min of the halves; on the staircase adversary the interval
// index blows any reasonable ζ/2, A is aborted, and LevelBased finishes
// with all processors — memory stays O(ζ) and the makespan bound 2·T_LB
// holds, exactly as the theorem promises.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "sched/logicblox.hpp"
#include "sim/meta.hpp"
#include "trace/generators.hpp"
#include "trace/table_traces.hpp"
#include "util/flags.hpp"
#include "util/memory_meter.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsched;
  util::FlagSet flags("ablation_meta");
  const auto procs = flags.Int("procs", 8, "processors for the meta run");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  const auto make_lx = [] {
    return std::unique_ptr<sched::Scheduler>(
        std::make_unique<sched::LogicBloxScheduler>());
  };

  util::TextTable table("Theorem 10 meta scheduler — memory budget sweep");
  table.SetHeader({"workload", "budget ζ", "A aborted?", "winner",
                   "meta makespan", "T_A(P/2)", "T_LB"});

  const auto run_case = [&](const char* label, const trace::JobTrace& jt,
                            std::size_t budget) {
    sim::MetaConfig config;
    config.processors = static_cast<std::size_t>(*procs);
    config.model = sim::ExecutionModel::kSequential;
    config.memory_budget_bytes = budget;
    const sim::MetaResult meta = sim::RunMeta(jt, make_lx, config);
    table.AddRow({label, util::FormatBytes(budget),
                  meta.heuristic_aborted ? "yes" : "no", meta.winner,
                  bench::Seconds(meta.makespan),
                  meta.heuristic_aborted
                      ? "(aborted)"
                      : bench::Seconds(meta.heuristic_half.makespan),
                  bench::Seconds(meta.level_based_half.makespan)});
  };

  // Benign deep trace: the index is compact, any sane budget passes.
  const trace::JobTrace benign = trace::MakeTableTrace(5, 1.0);
  for (const std::size_t mib : {64u, 4u, 1u}) {
    run_case("jobtrace#5", benign, mib << 20);
  }
  // Staircase adversary: the index wants Θ(V²) bytes.
  const trace::JobTrace staircase = trace::MakeIntervalAdversarial(1024);
  for (const std::size_t budget :
       {std::size_t{64} << 20, std::size_t{8} << 20, std::size_t{1} << 20}) {
    run_case("staircase(m=1024)", staircase, budget);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "shape check: the benign trace never aborts; the staircase aborts "
      "once ζ/2 drops below its quadratic index and the LevelBased half "
      "takes over with all processors.\n");
  return 0;
}
