// Reproduces Figure 2 / Theorem 9: the tight-example family on which plain
// LevelBased is Θ(ML) while the optimal order is Θ(M + L).
//
// The instance: unit chain j_1 → … → j_L; each j_{i-1} also feeds a task
// k_i with work = span = L - i + 1 (no internal parallelism).  LevelBased
// drains every level before the next, so each long k-task serializes;
// the clairvoyant LPT order overlaps all of them.  We sweep L and print
// the makespans and the growing ratio — plus LBL(k) and the hybrid, which
// rescue the pathology exactly as Section V promises.
#include <cstdio>

#include "bench_common.hpp"
#include "trace/generators.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsched;
  util::FlagSet flags("fig2_tight_example");
  const auto max_levels = flags.Int("max_levels", 128, "largest L in the sweep");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  util::TextTable table(
      "Figure 2 / Theorem 9 — tight example, moldable tasks, P = L + 2");
  table.SetHeader({"L", "LevelBased", "Oracle(≈OPT)", "LBL(k=L)",
                   "Hybrid", "LB/OPT ratio", "Θ(ML)/Θ(M+L) ref"});

  for (std::size_t levels = 8;
       levels <= static_cast<std::size_t>(*max_levels); levels *= 2) {
    const trace::JobTrace jt = trace::MakeTightExample(levels);
    const std::size_t procs = levels + 2;
    const auto model = sim::ExecutionModel::kMoldable;
    const auto lb = bench::RunSpec(jt, "levelbased", procs, model);
    const auto opt = bench::RunSpec(jt, "oracle", procs, model);
    const auto lbl = bench::RunSpec(
        jt, "lbl:" + std::to_string(levels), procs, model);
    const auto hybrid = bench::RunSpec(jt, "hybrid", procs, model);
    const double big_l = static_cast<double>(levels);
    table.AddRow({std::to_string(levels),
                  bench::Seconds(lb.makespan), bench::Seconds(opt.makespan),
                  bench::Seconds(lbl.makespan),
                  bench::Seconds(hybrid.makespan),
                  std::to_string(lb.makespan / opt.makespan),
                  std::to_string(big_l * big_l / (2.0 * (2.0 * big_l)))});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "shape check: LB/OPT grows linearly in L (the Θ(ML) vs Θ(M+L) gap); "
      "LBL and the hybrid stay within a small constant of the oracle.\n");
  return 0;
}
