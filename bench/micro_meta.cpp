// Memory-bounded meta-scheduler benchmark: Theorem 10 / Corollary 11 in
// the simulator AND in the live engine (sched/meta.hpp, DESIGN.md §14).
//
// Simulator cells — the theorem's own construction (sim/meta.hpp):
//   jobtrace#5 — benign layered trace; A (LogicBlox) stays within every
//                budget, the meta makespan is min of the halves.
//   staircase  — the Θ(m²) interval-index adversary; once ζ/2 drops below
//                the quadratic index A is aborted and LevelBased finishes
//                with all processors.
//   hoard      — a fan-out of tasks each holding 64 KiB of live state
//                (TaskInfo::resource_utility): the kill is triggered by the
//                RUNNING tasks' accounted memory, not the scheduler index —
//                the half of the footprint this PR's accounting plane adds.
// Every cell HARD-GATES the theorem's bounds: makespan ≤ 2·min(T_A, T_LB)
// (≤ 2·T_LB after an abort), the heuristic half's sampled peak ≤ ζ/2
// whenever it survives, and the joint peak ≤ ζ whenever ζ honours the
// Ω(V)-style precondition (here: ζ ≥ 2× the LevelBased reference peak).
//
// Live cells — the in-engine MetaScheduler driving real update cascades
// through a service session, checksum-checked against a serial Database
// replay (the same order-independence contract as micro_pipeline):
//   meta/benign      — "meta(logicblox,64MiB)": A is never killed.
//   meta/adversarial — "meta(logicblox,64)": ζ/2 = 32 bytes is below any
//                      heuristic's Prepare-time index, so EVERY cascade
//                      kills the heuristic lane (meta.kills == batches) and
//                      the frontier migrates to LevelBased — the store must
//                      still be checksum-identical to the serial replay.
//   budget cells     — SessionOptions::memory_budget ceilings on hybrid and
//                      meta sessions: the accounted peak must respect
//                      max(budget, one oversized task) and the store must
//                      match the serial replay.
//
// Timings are machine-dependent (CI ignores them); kills, checksums, rows
// and the sim-side makespans/peaks are deterministic and gated against
// BENCH_meta.json (tools/check_bench.py, ci.yml perf-gate).
//
// Usage: micro_meta [--out=BENCH_meta.json] [--scale=1.0] [--trace=out.json]
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "datalog/database.hpp"
#include "graph/digraph_builder.hpp"
#include "obs/trace_session.hpp"
#include "sched/logicblox.hpp"
#include "service/engine_host.hpp"
#include "service/session.hpp"
#include "sim/meta.hpp"
#include "trace/generators.hpp"
#include "trace/table_traces.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace dsched::bench {

using datalog::Database;
using datalog::RowView;
using datalog::Tuple;
using datalog::Value;

constexpr std::size_t kProcessors = 8;

// --- simulator side ---------------------------------------------------

/// A fan-out whose memory pressure is live task state, not scheduler
/// index: one dirty root feeding `width` unit tasks, each holding
/// `utility_bytes` while running.  A half running w workers holds
/// w·utility_bytes of accounted state the moment its admission round
/// fills, so ζ/2 < (P/2)·utility_bytes kills A deterministically.
trace::JobTrace MakeHoard(std::size_t width, std::uint64_t utility_bytes) {
  graph::DigraphBuilder builder(1 + width);
  for (std::size_t i = 0; i < width; ++i) {
    builder.AddEdge(0, static_cast<util::TaskId>(1 + i));
  }
  std::vector<trace::TaskInfo> infos(1 + width);
  infos[0].work = 0.01;
  infos[0].span = 0.01;
  for (std::size_t i = 0; i < width; ++i) {
    infos[1 + i].work = 1.0;
    infos[1 + i].span = 1.0;
    infos[1 + i].resource_utility = utility_bytes;
  }
  return trace::JobTrace("hoard", std::move(builder).Build(), std::move(infos),
                         {0});
}

struct SimCell {
  std::string workload;
  std::uint64_t zeta = 0;
  bool aborted = false;
  std::string winner;
  double makespan = 0.0;
  double t_heuristic = 0.0;   ///< T_A: LogicBlox on all P, no budget
  double t_level_based = 0.0; ///< T_LB: LevelBased on all P, no budget
  double bound_ratio = 0.0;   ///< makespan / theorem bound (gate: ≤ 1)
  std::uint64_t peak_memory = 0;       ///< joint footprint of the halves
  std::uint64_t heuristic_peak = 0;    ///< A's half (≤ ζ/2 unless aborted)
  std::uint64_t level_based_peak = 0;
};

SimCell RunSimCell(const trace::JobTrace& jt, std::uint64_t zeta,
                   const sim::SimResult& ref_a, const sim::SimResult& ref_lb,
                   int* failures) {
  SimCell cell;
  cell.workload = jt.Name();
  cell.zeta = zeta;
  cell.t_heuristic = ref_a.makespan;
  cell.t_level_based = ref_lb.makespan;

  sim::MetaConfig config;
  config.processors = kProcessors;
  config.model = sim::ExecutionModel::kSequential;
  config.memory_budget_bytes = zeta;
  const sim::MetaResult meta = sim::RunMeta(
      jt,
      [] {
        return std::unique_ptr<sched::Scheduler>(
            std::make_unique<sched::LogicBloxScheduler>());
      },
      config);
  cell.aborted = meta.heuristic_aborted;
  cell.winner = meta.winner;
  cell.makespan = meta.makespan;
  cell.peak_memory = meta.peak_memory_bytes;
  cell.heuristic_peak = meta.heuristic_half.peak_memory_bytes;
  cell.level_based_peak = meta.level_based_half.peak_memory_bytes;

  // Theorem 10: makespan ≤ 2·min(T_A, T_LB); after an abort the A term
  // drops and the guarantee degrades to ≤ 2·T_LB.
  const double bound = cell.aborted
                           ? 2.0 * ref_lb.makespan
                           : 2.0 * std::min(ref_a.makespan, ref_lb.makespan);
  cell.bound_ratio = bound > 0.0 ? cell.makespan / bound : 0.0;
  if (cell.bound_ratio > 1.0 + 1e-9) {
    std::fprintf(stderr,
                 "FAIL sim %s zeta=%llu: makespan %.4f exceeds the Theorem-10 "
                 "bound %.4f (ratio %.3f)\n",
                 cell.workload.c_str(), static_cast<unsigned long long>(zeta),
                 cell.makespan, bound, cell.bound_ratio);
    ++*failures;
  }
  // A surviving half never sampled a footprint above ζ/2 — that IS the
  // kill rule; gate the plumbing end to end.
  if (!cell.aborted && cell.heuristic_peak > zeta / 2) {
    std::fprintf(stderr,
                 "FAIL sim %s zeta=%llu: surviving heuristic half peaked at "
                 "%llu bytes > zeta/2 = %llu\n",
                 cell.workload.c_str(), static_cast<unsigned long long>(zeta),
                 static_cast<unsigned long long>(cell.heuristic_peak),
                 static_cast<unsigned long long>(zeta / 2));
    ++*failures;
  }
  if (cell.aborted && cell.winner != ref_lb.scheduler_name) {
    std::fprintf(stderr, "FAIL sim %s zeta=%llu: aborted but winner is %s\n",
                 cell.workload.c_str(), static_cast<unsigned long long>(zeta),
                 cell.winner.c_str());
    ++*failures;
  }
  // Corollary 11's O(ζ) memory needs ζ = Ω(V); with ζ at least twice the
  // LevelBased reference footprint the surviving footprint must stay under
  // ζ.  An aborted half's recorded peak is its detection sample (the sim
  // only sees the over-budget index after Prepare builds it in one step);
  // the kill frees that memory, so the post-abort footprint is the
  // LevelBased half alone.
  if (zeta >= 2 * ref_lb.peak_memory_bytes) {
    const std::uint64_t surviving =
        cell.aborted ? cell.level_based_peak : cell.peak_memory;
    if (surviving > zeta) {
      std::fprintf(
          stderr, "FAIL sim %s zeta=%llu: peak %llu bytes exceeds zeta\n",
          cell.workload.c_str(), static_cast<unsigned long long>(zeta),
          static_cast<unsigned long long>(surviving));
      ++*failures;
    }
  }
  return cell;
}

// --- live side --------------------------------------------------------

constexpr const char* kFanoutProgram = R"(
  a1(X) :- base(X).  b1(X) :- base(X).  c1(X) :- base(X).  d1(X) :- base(X).
  a2(X) :- a1(X).    b2(X) :- b1(X).    c2(X) :- c1(X).    d2(X) :- d1(X).
  a3(X) :- a2(X).    b3(X) :- b2(X).    c3(X) :- c2(X).    d3(X) :- d2(X).
)";

/// One pre-generated base change; keys are never reused (deletes target
/// distinct seed keys, inserts mint fresh ones) so any batching nets out
/// to the same final store.
struct Op {
  bool insert = false;
  std::int64_t key = 0;
};

struct Workload {
  std::vector<std::int64_t> base;
  std::vector<Op> ops;
};

Workload MakeLiveWorkload(double scale, std::size_t total_ops) {
  Workload w;
  const auto n = static_cast<std::int64_t>(1500.0 * scale);
  for (std::int64_t i = 0; i < n; ++i) {
    w.base.push_back(i);
  }
  util::Rng rng(0x3e7au);
  std::int64_t next_del = 0;
  std::int64_t next_ins = n;
  for (std::size_t i = 0; i < total_ops; ++i) {
    if (rng.NextBool(0.3) && next_del < n) {
      w.ops.push_back({.insert = false, .key = next_del++});
    } else {
      w.ops.push_back({.insert = true, .key = next_ins++});
    }
  }
  return w;
}

std::uint64_t Checksum(const datalog::RelationStore& store) {
  std::uint64_t sum = 0;
  for (std::size_t p = 0; p < store.NumRelations(); ++p) {
    const auto pred = static_cast<std::uint32_t>(p);
    store.Of(pred).ForEachRow([&sum, pred](std::uint32_t, RowView row) {
      std::uint64_t h = pred + 1;
      for (const Value& v : row) {
        h = h * 0x100000001b3ULL + v.Bits();
      }
      sum += h;
    });
  }
  return sum;
}

std::uint64_t RowsTotal(const datalog::RelationStore& store) {
  std::uint64_t rows = 0;
  for (std::size_t p = 0; p < store.NumRelations(); ++p) {
    rows += store.Of(static_cast<std::uint32_t>(p)).Size();
  }
  return rows;
}

datalog::UpdateRequest ChunkToRequest(const Database& db, const Workload& w,
                                      std::size_t begin, std::size_t end) {
  datalog::UpdateRequest request;
  const std::uint32_t pred = db.GetProgram().PredicateId("base");
  for (std::size_t i = begin; i < end; ++i) {
    const Op& op = w.ops[i];
    Tuple row = {Value::Int(op.key)};
    if (op.insert) {
      request.insertions.emplace_back(pred, std::move(row));
    } else {
      request.deletions.emplace_back(pred, std::move(row));
    }
  }
  return request;
}

std::uint64_t SerialChecksum(const Workload& w, std::size_t batch_size) {
  Database db(kFanoutProgram);
  for (const std::int64_t key : w.base) {
    db.Insert("base", {Value::Int(key)});
  }
  db.Materialize();
  for (std::size_t begin = 0; begin < w.ops.size(); begin += batch_size) {
    (void)db.ApplyRequest(ChunkToRequest(
        db, w, begin, std::min(begin + batch_size, w.ops.size())));
  }
  return Checksum(db.Store());
}

struct LiveCell {
  std::string name;       ///< cell label (identity in the results list)
  std::string scheduler;  ///< session scheduler spec
  std::uint64_t budget = 0;  ///< SessionOptions::memory_budget
  std::size_t k = 1;
  std::uint64_t batches = 0;
  std::uint64_t kills = 0;  ///< meta.kill firings across all cascades
  std::uint64_t checksum = 0;
  std::uint64_t rows = 0;
  std::uint64_t mem_peak = 0;
  std::uint64_t mem_acquired = 0;
  std::uint64_t mem_deferred = 0;
  std::uint64_t mem_stalls = 0;
  std::uint64_t mem_forced = 0;
  double seconds = 0.0;
};

LiveCell RunLiveCell(const Workload& w, const std::string& label,
                     const std::string& spec, std::uint64_t budget,
                     std::size_t k, std::size_t batch_size,
                     obs::TraceSession& trace_session) {
  LiveCell cell;
  cell.name = label;
  cell.scheduler = spec;
  cell.budget = budget;
  cell.k = k;

  const obs::AccumSnapshot before = trace_session.Snapshot();
  service::EngineHost host({.workers = 4});
  auto session = host.OpenSession(kFanoutProgram, {.name = "bench",
                                                  .scheduler_spec = spec,
                                                  .queue_capacity = 256,
                                                  .pipeline_depth = k,
                                                  .memory_budget = budget});
  for (const std::int64_t key : w.base) {
    session->Insert("base", {Value::Int(key)});
  }
  session->Materialize();

  util::WallTimer timer;
  std::vector<std::future<service::UpdateOutcome>> futures;
  for (std::size_t begin = 0; begin < w.ops.size(); begin += batch_size) {
    futures.push_back(session->Submit(ChunkToRequest(
        session->Db(), w, begin, std::min(begin + batch_size, w.ops.size()))));
    ++cell.batches;
  }
  for (auto& future : futures) {
    (void)future.get();
  }
  cell.seconds = timer.ElapsedSeconds();
  session->Close();

  cell.checksum = Checksum(session->Store());
  cell.rows = RowsTotal(session->Store());
  const auto& metrics = host.Metrics();
  cell.mem_peak = metrics.Value("session.bench.mem.peak_bytes");
  cell.mem_acquired = metrics.Value("session.bench.mem.acquired_bytes");
  cell.mem_deferred = metrics.Value("session.bench.mem.deferred");
  cell.mem_stalls = metrics.Value("session.bench.mem.budget_stalls");
  cell.mem_forced = metrics.Value("session.bench.mem.forced");
  const obs::AccumSnapshot after = trace_session.Snapshot();
  cell.kills =
      obs::SnapshotDelta(before, after)[static_cast<std::size_t>(
                                            obs::Category::kMetaKill)]
          .value;
  return cell;
}

}  // namespace dsched::bench

int main(int argc, char** argv) {
  using namespace dsched;
  using namespace dsched::bench;
  MicroBenchArgs args;
  args.out = "BENCH_meta.json";
  if (!ParseMicroBenchArgs(argc, argv, &args)) {
    return 2;
  }
  // One session for the whole run: per-cell snapshot deltas count the
  // meta.kill firings, and --trace gets the full Chrome export.
  obs::TraceSession trace_session;
  trace_session.Install();

  int failures = 0;

  // --- simulator cells ------------------------------------------------
  struct SimCase {
    trace::JobTrace jt;
    std::vector<std::uint64_t> zetas;
  };
  std::vector<SimCase> sim_cases;
  sim_cases.push_back({trace::MakeTableTrace(5, 1.0),
                       {std::uint64_t{64} << 20, std::uint64_t{1} << 20}});
  sim_cases.push_back({trace::MakeIntervalAdversarial(1024),
                       {std::uint64_t{256} << 20, std::uint64_t{1} << 20}});
  sim_cases.push_back({MakeHoard(32, std::uint64_t{64} << 10),
                       {std::uint64_t{64} << 20, std::uint64_t{256} << 10}});

  std::vector<SimCell> sim_cells;
  for (const SimCase& c : sim_cases) {
    const sim::SimResult ref_a = RunSpec(c.jt, "logicblox", kProcessors);
    const sim::SimResult ref_lb = RunSpec(c.jt, "levelbased", kProcessors);
    for (const std::uint64_t zeta : c.zetas) {
      SimCell cell = RunSimCell(c.jt, zeta, ref_a, ref_lb, &failures);
      std::printf(
          "sim  %-18s zeta=%-10llu %-7s winner=%-28s makespan %8.3f  "
          "bound-ratio %.3f  peak %llu B (A half %llu B)\n",
          cell.workload.c_str(), static_cast<unsigned long long>(cell.zeta),
          cell.aborted ? "ABORT" : "ok", cell.winner.c_str(), cell.makespan,
          cell.bound_ratio, static_cast<unsigned long long>(cell.peak_memory),
          static_cast<unsigned long long>(cell.heuristic_peak));
      sim_cells.push_back(std::move(cell));
    }
  }
  // The sweep must exercise both arms of the kill rule.
  {
    int aborted = 0;
    for (const SimCell& c : sim_cells) {
      aborted += c.aborted ? 1 : 0;
    }
    if (aborted == 0 || aborted == static_cast<int>(sim_cells.size())) {
      std::fprintf(stderr,
                   "FAIL sim sweep: %d/%zu cells aborted — need both benign "
                   "and adversarial coverage\n",
                   aborted, sim_cells.size());
      ++failures;
    }
  }

  // --- live cells -----------------------------------------------------
  constexpr std::size_t kBatch = 64;
  const Workload live = MakeLiveWorkload(
      args.scale, static_cast<std::size_t>(768 * args.scale));
  const std::uint64_t expected = SerialChecksum(live, kBatch);

  struct LiveCase {
    const char* label;
    const char* spec;
    std::uint64_t budget;
    std::size_t k;
  };
  // "meta(logicblox,64)" is the adversarial cell: ζ/2 = 32 bytes is below
  // any heuristic's Prepare-time index footprint, so each cascade kills
  // its heuristic lane immediately and finishes on LevelBased alone —
  // kills == batches, deterministically.
  const LiveCase live_cases[] = {
      {"meta_benign", "meta(logicblox,67108864)", 0, 1},
      {"meta_adversarial", "meta(logicblox,64)", 0, 1},
      {"hybrid_budget", "hybrid", 4096, 2},
      {"meta_budget", "meta(logicblox,67108864)", 4096, 1},
  };
  std::vector<LiveCell> live_cells;
  for (const LiveCase& c : live_cases) {
    LiveCell cell = RunLiveCell(live, c.label, c.spec, c.budget, c.k, kBatch,
                                trace_session);
    std::printf(
        "live %-16s %-26s budget=%-6llu k%zu  %llu batches  %llu kills  "
        "peak %llu B  deferred %llu  %s\n",
        cell.name.c_str(), cell.scheduler.c_str(),
        static_cast<unsigned long long>(cell.budget), cell.k,
        static_cast<unsigned long long>(cell.batches),
        static_cast<unsigned long long>(cell.kills),
        static_cast<unsigned long long>(cell.mem_peak),
        static_cast<unsigned long long>(cell.mem_deferred),
        util::FormatSeconds(cell.seconds).c_str());
    if (cell.checksum != expected) {
      std::fprintf(stderr,
                   "FAIL live %s: checksum %llu != serial %llu — cascade "
                   "diverged from the serial replay\n",
                   cell.name.c_str(),
                   static_cast<unsigned long long>(cell.checksum),
                   static_cast<unsigned long long>(expected));
      ++failures;
    }
    if (cell.name == "meta_adversarial" && cell.kills < 1) {
      std::fprintf(stderr,
                   "FAIL live %s: expected >= 1 meta.kill firing, saw %llu\n",
                   cell.name.c_str(),
                   static_cast<unsigned long long>(cell.kills));
      ++failures;
    }
    if (cell.name == "meta_benign" && cell.kills != 0) {
      std::fprintf(stderr,
                   "FAIL live %s: benign budget killed the heuristic %llu "
                   "time(s)\n",
                   cell.name.c_str(),
                   static_cast<unsigned long long>(cell.kills));
      ++failures;
    }
    // The ceiling contract: accounted peak stays under the budget unless
    // a single oversized task forced the documented escape hatch.
    if (cell.budget != 0 && cell.mem_forced == 0 &&
        cell.mem_peak > cell.budget) {
      std::fprintf(stderr,
                   "FAIL live %s: accounted peak %llu bytes exceeds the "
                   "%llu-byte session budget without a forced dispatch\n",
                   cell.name.c_str(),
                   static_cast<unsigned long long>(cell.mem_peak),
                   static_cast<unsigned long long>(cell.budget));
      ++failures;
    }
    live_cells.push_back(std::move(cell));
  }
  if (failures > 0) {
    return 1;
  }

  // --- emission ---------------------------------------------------------
  std::string json = "{\n  \"bench\": \"micro_meta\",\n  \"scale\": " +
                     std::to_string(args.scale) + ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < sim_cells.size(); ++i) {
    const SimCell& c = sim_cells[i];
    char line[512];
    std::snprintf(
        line, sizeof line,
        "    {\"mode\": \"sim\", \"workload\": \"%s\", \"zeta\": %llu, "
        "\"aborted\": %s, \"winner\": \"%s\", \"makespan\": %.6f, "
        "\"t_heuristic\": %.6f, \"t_level_based\": %.6f, "
        "\"bound_ratio\": %.4f, \"peak_memory_bytes\": %llu, "
        "\"heuristic_peak_bytes\": %llu, \"level_based_peak_bytes\": %llu},\n",
        c.workload.c_str(), static_cast<unsigned long long>(c.zeta),
        c.aborted ? "true" : "false", c.winner.c_str(), c.makespan,
        c.t_heuristic, c.t_level_based, c.bound_ratio,
        static_cast<unsigned long long>(c.peak_memory),
        static_cast<unsigned long long>(c.heuristic_peak),
        static_cast<unsigned long long>(c.level_based_peak));
    json += line;
  }
  for (std::size_t i = 0; i < live_cells.size(); ++i) {
    const LiveCell& c = live_cells[i];
    char line[512];
    std::snprintf(
        line, sizeof line,
        "    {\"mode\": \"live\", \"name\": \"%s\", \"scheduler\": \"%s\", "
        "\"budget\": %llu, \"k\": %zu, \"batches\": %llu, \"kills\": %llu, "
        "\"checksum\": %llu, \"rows\": %llu, \"mem_peak_bytes\": %llu, "
        "\"mem_deferred\": %llu, \"mem_budget_stalls\": %llu, "
        "\"mem_forced\": %llu, \"seconds\": %.6f}%s\n",
        c.name.c_str(), c.scheduler.c_str(),
        static_cast<unsigned long long>(c.budget), c.k,
        static_cast<unsigned long long>(c.batches),
        static_cast<unsigned long long>(c.kills),
        static_cast<unsigned long long>(c.checksum),
        static_cast<unsigned long long>(c.rows),
        static_cast<unsigned long long>(c.mem_peak),
        static_cast<unsigned long long>(c.mem_deferred),
        static_cast<unsigned long long>(c.mem_stalls),
        static_cast<unsigned long long>(c.mem_forced), c.seconds,
        i + 1 < live_cells.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";
  if (!WriteBenchFile(args.out, json)) {
    return 1;
  }
  std::printf("wrote %s\n", args.out.c_str());

  obs::MetricsRegistry metrics;
  for (const SimCell& c : sim_cells) {
    const std::string key =
        "micro_meta.sim." + c.workload + ".z" + std::to_string(c.zeta) + ".";
    metrics.Set(key + "aborted", c.aborted ? 1 : 0);
    metrics.Set(key + "makespan_us",
                static_cast<std::uint64_t>(c.makespan * 1e6));
    metrics.Set(key + "bound_ratio_x1000",
                static_cast<std::uint64_t>(c.bound_ratio * 1000.0));
    metrics.Set(key + "peak_memory_bytes", c.peak_memory);
  }
  for (const LiveCell& c : live_cells) {
    const std::string key = "micro_meta.live." + c.name + ".";
    metrics.Set(key + "kills", c.kills);
    metrics.Set(key + "checksum", c.checksum);
    metrics.Set(key + "rows", c.rows);
    metrics.Set(key + "mem_peak_bytes", c.mem_peak);
    metrics.Set(key + "mem_deferred", c.mem_deferred);
    metrics.Set(key + "seconds_ns", static_cast<std::uint64_t>(c.seconds * 1e9));
  }
  PrintMetrics(metrics);

  trace_session.Uninstall();
  if (!args.trace.empty()) {
    if (!trace_session.WriteChromeJson(args.trace)) {
      std::fprintf(stderr, "failed to write trace to %s\n", args.trace.c_str());
      return 1;
    }
    std::printf("\ntrace written to %s\n%s", args.trace.c_str(),
                trace_session.SummaryText().c_str());
  }
  return 0;
}
