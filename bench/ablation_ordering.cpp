// Ablation: intra-level pick order of the LevelBased scheduler.
//
// The paper's algorithm "removes and processes any task from level ℓ" —
// the pick order is a free design choice.  When a level is wider than P
// and task lengths are skewed, classic list-scheduling intuition applies:
// longest-first (LPT) trims the level's completion tail, while LIFO/FIFO
// can strand a long task last.  This bench sweeps duration skew on wide
// shallow workloads and reports the makespan of each order.
#include <cstdio>

#include "bench_common.hpp"
#include "trace/generators.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsched;
  util::FlagSet flags("ablation_ordering");
  const auto nodes = flags.Int("nodes", 6000, "workload size");
  const auto procs = flags.Int("procs", 8, "simulated processors");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  util::TextTable table(
      "Intra-level pick order (LevelBased), wide levels, P = " +
      std::to_string(*procs));
  table.SetHeader({"duration sigma", "LIFO", "FIFO", "LPT",
                   "LPT vs LIFO"});

  for (const double sigma : {0.3, 0.8, 1.3, 1.8}) {
    util::Rng rng(static_cast<std::uint64_t>(sigma * 1000));
    trace::LayeredDagSpec spec;
    spec.name = "ordering";
    spec.level_widths = trace::MakeLevelWidths(
        static_cast<std::size_t>(*nodes), 12,
        static_cast<std::size_t>(*nodes) / 4, rng);
    spec.extra_edges = static_cast<std::size_t>(*nodes) / 2;
    spec.initial_dirty = static_cast<std::size_t>(*nodes) / 8;
    spec.target_active = static_cast<std::size_t>(*nodes) / 2;
    spec.collector_fraction = 0.0;
    spec.durations.median_seconds = 0.1;
    spec.durations.sigma = sigma;
    spec.seed = 42;
    const trace::JobTrace jt = trace::GenerateLayered(spec);

    const auto lifo = bench::RunSpec(jt, "levelbased:lifo",
                                     static_cast<std::size_t>(*procs));
    const auto fifo = bench::RunSpec(jt, "levelbased:fifo",
                                     static_cast<std::size_t>(*procs));
    const auto lpt = bench::RunSpec(jt, "levelbased:lpt",
                                    static_cast<std::size_t>(*procs));
    char gain[32];
    std::snprintf(gain, sizeof(gain), "%.1f%%",
                  100.0 * (lifo.makespan - lpt.makespan) / lifo.makespan);
    table.AddRow({std::to_string(sigma), bench::Seconds(lifo.makespan),
                  bench::Seconds(fifo.makespan), bench::Seconds(lpt.makespan),
                  gain});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "shape check: the LPT gain grows with duration skew; all orders obey "
      "the same w/P + L bound (the ordering is a constant-factor lever, "
      "not an asymptotic one).\n");
  return 0;
}
