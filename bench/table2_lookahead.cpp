// Reproduces Table II: total makespan of the LogicBlox scheduler versus
// LevelBased and LBL(k) for k ∈ {5, 10, 15, 20} on job traces #1–#5, eight
// processors, sequential tasks.
//
// Shape targets (the substrate differs, so absolute seconds will not match;
// see EXPERIMENTS.md):
//  * LevelBased is the slowest (level-by-level draining on deep DAGs);
//  * LBL(k) closes the gap monotonically in k;
//  * by k ≈ 15–20 it approaches the LogicBlox makespan.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "trace/table_traces.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsched;
  util::FlagSet flags("table2_lookahead");
  const auto scale = flags.Double("scale", 1.0, "trace size multiplier (0,1]");
  const auto procs = flags.Int("procs", 8, "simulated processors");
  const auto seed = flags.Int("seed", 20200518, "generator seed");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  // Paper's Table II rows, for side-by-side printing.
  struct PaperRow {
    double logicblox, levelbased, lbl5, lbl10, lbl15, lbl20;
  };
  const std::vector<PaperRow> paper = {
      {26.5, 57.74, 36.72, 33.09, 31.25, 30.99},
      {9736, 20979.3, 11906.9, 9846.16, 9866.64, 9860.42},
      {187, 448.40, 299.34, 285.91, 230.22, 229.34},
      {303, 866.66, 576.49, 490.15, 444.67, 426.22},
      {23, 29.32, 24.52, 24.52, 24.52, 24.52},
  };

  util::TextTable table(
      "Table II — total makespan, LBL(k) sweep vs LogicBlox (paper / ours)");
  table.SetHeader({"Job trace", "LogicBlox", "LevelBased", "LBL(k=5)",
                   "LBL(k=10)", "LBL(k=15)", "LBL(k=20)"});

  const std::vector<std::string> specs = {"logicblox", "levelbased", "lbl:5",
                                          "lbl:10", "lbl:15", "lbl:20"};
  for (int index = 1; index <= 5; ++index) {
    const trace::JobTrace jt = trace::MakeTableTrace(
        index, *scale, static_cast<std::uint64_t>(*seed));
    std::vector<std::string> row{"#" + std::to_string(index)};
    const PaperRow& p = paper[static_cast<std::size_t>(index - 1)];
    const double paper_cells[] = {p.logicblox, p.levelbased, p.lbl5,
                                  p.lbl10,     p.lbl15,      p.lbl20};
    for (std::size_t s = 0; s < specs.size(); ++s) {
      const sim::SimResult result = bench::RunSpec(
          jt, specs[s], static_cast<std::size_t>(*procs));
      row.push_back(bench::Seconds(paper_cells[s]) + " / " +
                    bench::Seconds(result.TotalSeconds()));
    }
    table.AddRow(row);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "shape check: LevelBased slowest, LBL(k) monotone toward LogicBlox "
      "with growing k (all schedulers incur negligible overhead here, as "
      "the paper notes).\n");
  return 0;
}
