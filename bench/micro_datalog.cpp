// Micro-benchmarks of the Datalog substrate: materialization and
// incremental maintenance throughput.
#include <benchmark/benchmark.h>

#include "datalog/database.hpp"
#include "util/rng.hpp"

namespace {

using dsched::datalog::Database;
using dsched::datalog::Tuple;
using dsched::datalog::Value;

constexpr const char* kTransitiveClosure = R"(
  tc(X, Y) :- edge(X, Y).
  tc(X, Z) :- tc(X, Y), edge(Y, Z).
)";

void BM_MaterializeChainTC(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Database db(kTransitiveClosure);
    for (int i = 0; i + 1 < n; ++i) {
      db.Insert("edge", {Value::Int(i), Value::Int(i + 1)});
    }
    const auto stats = db.Materialize();
    benchmark::DoNotOptimize(stats.tuples_inserted);
  }
  state.SetItemsProcessed(state.iterations() * n * (n - 1) / 2);
}
BENCHMARK(BM_MaterializeChainTC)->Arg(50)->Arg(150)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_MaterializeRandomTC(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  dsched::util::Rng rng(5);
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && rng.NextBool(2.0 / n)) {
        edges.emplace_back(i, j);
      }
    }
  }
  for (auto _ : state) {
    Database db(kTransitiveClosure);
    for (const auto& [i, j] : edges) {
      db.Insert("edge", {Value::Int(i), Value::Int(j)});
    }
    const auto stats = db.Materialize();
    benchmark::DoNotOptimize(stats.tuples_inserted);
  }
}
BENCHMARK(BM_MaterializeRandomTC)->Arg(100)->Arg(300)
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalInsertOneEdge(benchmark::State& state) {
  // Cost of maintaining a chain TC when one edge is appended at the end —
  // the incremental win the whole paper is about (contrast with
  // BM_MaterializeChainTC at the same size).
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Database db(kTransitiveClosure);
    for (int i = 0; i + 2 < n; ++i) {
      db.Insert("edge", {Value::Int(i), Value::Int(i + 1)});
    }
    db.Materialize();
    auto update = db.MakeUpdate();
    update.Insert("edge", {Value::Int(n - 2), Value::Int(n - 1)});
    state.ResumeTiming();
    const auto result = db.Apply(update);
    benchmark::DoNotOptimize(result.total_inserted);
  }
}
BENCHMARK(BM_IncrementalInsertOneEdge)->Arg(150)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalDeleteWithRederive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Database db(kTransitiveClosure);
    for (int i = 0; i + 1 < n; ++i) {
      db.Insert("edge", {Value::Int(i), Value::Int(i + 1)});
      // Parallel redundant edges keep everything rederivable.
      db.Insert("edge", {Value::Int(i), Value::Int(i + 1)});
    }
    db.Insert("edge", {Value::Int(0), Value::Int(n / 2)});
    db.Materialize();
    auto update = db.MakeUpdate();
    update.Delete("edge", {Value::Int(n / 2 - 1), Value::Int(n / 2)});
    state.ResumeTiming();
    const auto result = db.Apply(update);
    benchmark::DoNotOptimize(result.total_deleted);
  }
}
BENCHMARK(BM_IncrementalDeleteWithRederive)->Arg(100)->Arg(250)
    ->Unit(benchmark::kMillisecond);

}  // namespace
