// Reproduces Table III: (total makespan, scheduling overhead) for the
// LogicBlox, LevelBased and Hybrid schedulers on job traces #6–#11.
//
// Shape targets:
//  * the hybrid's makespan tracks the better of its two parents;
//  * the hybrid's scheduling overhead is below the LogicBlox scheduler's
//    on every trace, dramatically so on the shallow DAGs #6 and #11 where
//    LogicBlox burns time scanning a huge active queue (the paper reports
//    a ~50% overhead cut there; ours lands in the same range);
//  * on #6 plain LevelBased crushes LogicBlox outright.
//
// The shallow traces #6/#11 have ~130k active tasks; the LogicBlox
// scheduler's scan cost grows quadratically in that, so those two rows are
// run at --shallow_scale (default 0.1) for bounded runtimes.  Use
// --shallow_scale=1 to reproduce at full size (minutes of wall time, all
// of it LogicBlox scheduling overhead — which is rather the point).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "service/engine_host.hpp"
#include "service/session.hpp"
#include "trace/table_traces.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

// --- multi-session service smoke (--sessions=N) --------------------------
//
// Exercises the full service stack — EngineHost, per-session apply threads,
// the shared TaskRouter — under ASan/TSan in CI: N concurrent sessions each
// submit a deterministic batch stream, then each is replayed into a fresh
// "serial"-scheduler session and the stores must match tuple-for-tuple.

constexpr const char* kSmokeProgram = R"(
  tc(X, Y) :- e(X, Y).
  tc(X, Z) :- tc(X, Y), e(Y, Z).
  rev(Y, X) :- e(X, Y).
  hasout(X) :- e(X, _).
  deadend(X) :- n(X), !hasout(X).
)";
constexpr const char* kSmokePredicates[] = {"n",   "e",      "tc",
                                            "rev", "hasout", "deadend"};

void SeedSmokeSession(dsched::service::Session& session, std::uint64_t seed,
                      int nodes) {
  using dsched::datalog::Value;
  dsched::util::Rng rng(seed);
  for (int i = 0; i < nodes; ++i) {
    session.Insert("n", {Value::Int(i)});
  }
  for (int i = 0; i < nodes; ++i) {
    for (int j = 0; j < nodes; ++j) {
      if (i != j && rng.NextBool(0.15)) {
        session.Insert("e", {Value::Int(i), Value::Int(j)});
      }
    }
  }
  (void)session.Materialize();
}

dsched::datalog::UpdateRequest SmokeBatch(dsched::service::Session& session,
                                          dsched::util::Rng& rng, int nodes) {
  using dsched::datalog::Value;
  auto update = session.MakeUpdate();
  for (int tries = 0; tries < 6; ++tries) {
    const int i =
        static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(nodes)));
    const int j =
        static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(nodes)));
    if (i == j) {
      continue;
    }
    if (rng.NextBool(0.5)) {
      update.Insert("e", {Value::Int(i), Value::Int(j)});
    } else {
      update.Delete("e", {Value::Int(i), Value::Int(j)});
    }
  }
  return update.Request();
}

int RunSessionsSmoke(int n_sessions) {
  using namespace dsched;
  constexpr int kNodes = 10;
  constexpr int kBatches = 8;
  const char* specs[] = {"hybrid", "levelbased", "signal", "logicblox"};

  service::EngineHost host({.workers = 4});
  std::vector<std::shared_ptr<service::Session>> live;
  live.reserve(static_cast<std::size_t>(n_sessions));
  for (int s = 0; s < n_sessions; ++s) {
    service::SessionOptions options;
    options.name = "smoke" + std::to_string(s);
    options.scheduler_spec = specs[static_cast<std::size_t>(s) % 4];
    auto session = host.OpenSession(kSmokeProgram, options);
    SeedSmokeSession(*session, 100 + static_cast<std::uint64_t>(s), kNodes);
    live.push_back(std::move(session));
  }

  std::vector<std::thread> clients;
  clients.reserve(live.size());
  for (int s = 0; s < n_sessions; ++s) {
    clients.emplace_back([&live, s] {
      util::Rng rng(500 + static_cast<std::uint64_t>(s));
      for (int b = 0; b < kBatches; ++b) {
        (void)live[static_cast<std::size_t>(s)]->Submit(
            SmokeBatch(*live[static_cast<std::size_t>(s)], rng, kNodes));
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (auto& session : live) {
    session->Drain();
  }

  bool pass = true;
  for (int s = 0; s < n_sessions; ++s) {
    service::SessionOptions options;
    options.name = "replay" + std::to_string(s);
    options.scheduler_spec = "serial";
    auto replay = host.OpenSession(kSmokeProgram, options);
    SeedSmokeSession(*replay, 100 + static_cast<std::uint64_t>(s), kNodes);
    util::Rng rng(500 + static_cast<std::uint64_t>(s));
    for (int b = 0; b < kBatches; ++b) {
      (void)replay->Submit(SmokeBatch(*replay, rng, kNodes));
    }
    replay->Drain();
    for (const char* predicate : kSmokePredicates) {
      auto got = live[static_cast<std::size_t>(s)]->Query(predicate);
      auto want = replay->Query(predicate);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      if (got != want) {
        pass = false;
        std::fprintf(stderr,
                     "session %d predicate %s: %zu tuples vs %zu in replay\n",
                     s, predicate, got.size(), want.size());
      }
    }
    replay->Close();
  }
  for (auto& session : live) {
    session->Close();
  }

  host.ExportMetrics();
  dsched::bench::PrintMetrics(host.Metrics());
  std::printf("multi-session smoke (%d sessions x %d batches): %s\n",
              n_sessions, kBatches, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsched;
  util::FlagSet flags("table3_hybrid");
  const auto scale = flags.Double("scale", 1.0, "deep-trace size multiplier");
  const auto shallow_scale =
      flags.Double("shallow_scale", 0.1, "size multiplier for traces #6/#11");
  const auto procs = flags.Int("procs", 8, "simulated processors");
  const auto seed = flags.Int("seed", 20200518, "generator seed");
  const auto trace_path = flags.String(
      "trace", "", "write a Chrome trace_event JSON of all runs to this path");
  const auto sessions = flags.Int(
      "sessions", 0,
      "instead of Table III, run an N-session service-layer smoke "
      "(concurrent submits vs serial replay) and exit 0 on store equality");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }
  if (*sessions > 0) {
    return RunSessionsSmoke(static_cast<int>(*sessions));
  }

  const auto session = bench::MaybeStartTrace(*trace_path);
  obs::MetricsRegistry metrics;

  struct PaperRow {
    double lx_make, lx_over, lb_make, lb_over, hy_make, hy_over;
  };
  // (makespan, overhead) rows of Table III; LevelBased overheads in the
  // paper are sub-millisecond except on #6/#11.
  const std::vector<PaperRow> paper = {
      {33.24, 21.69, 0.49, 0.027, 21.93, 10.89},
      {155.77, 0.109, 348.35, 0.000038, 187.08, 0.077},
      {28.69, 0.022, 28.29, 0.000009, 25.52, 0.020},
      {0.048, 0.0107, 0.037, 0.000013, 0.041, 0.009},
      {9893.29, 0.327, 20897.9, 0.000159, 10123.74, 0.289},
      {688.38, 21.03, 694.24, 0.042, 630.01, 7.47},
  };

  util::TextTable table(
      "Table III — (total makespan, scheduling overhead), paper / ours");
  table.SetHeader({"Job trace", "LogicBlox", "LevelBased", "Hybrid"});
  const std::vector<std::string> specs = {"logicblox", "levelbased", "hybrid"};
  std::vector<double> traced_overhead_ns(specs.size(), 0.0);

  for (int index = 6; index <= 11; ++index) {
    const bool shallow = index == 6 || index == 11;
    const double row_scale = shallow ? *shallow_scale : *scale;
    const trace::JobTrace jt = trace::MakeTableTrace(
        index, row_scale, static_cast<std::uint64_t>(*seed));
    const PaperRow& p = paper[static_cast<std::size_t>(index - 6)];
    const double paper_cells[][2] = {
        {p.lx_make, p.lx_over}, {p.lb_make, p.lb_over}, {p.hy_make, p.hy_over}};
    std::vector<std::string> row{"#" + std::to_string(index) +
                                 (shallow ? " (x" + std::to_string(row_scale) +
                                                ")"
                                          : "")};
    for (std::size_t s = 0; s < specs.size(); ++s) {
      if (session != nullptr) {
        session->Marker("table3 #" + std::to_string(index) + " " + specs[s]);
      }
      const obs::AccumSnapshot before =
          session != nullptr ? session->Snapshot() : obs::AccumSnapshot{};
      const sim::SimResult result = bench::RunSpec(
          jt, specs[s], static_cast<std::size_t>(*procs));
      if (session != nullptr) {
        // Isolate this run's decision cost: the top-level pop category's
        // delta charges nested children to their parent exactly once.
        const obs::AccumSnapshot delta =
            obs::SnapshotDelta(before, session->Snapshot());
        const double overhead_ns = session->DurationNs(
            obs::TotalsOf(delta, bench::SchedPopCategory(specs[s])).ticks);
        traced_overhead_ns[s] += overhead_ns;
        metrics.Set("table3.t" + std::to_string(index) + "." + specs[s] +
                        ".trace_sched_overhead_ns",
                    static_cast<std::uint64_t>(overhead_ns));
      }
      result.ExportMetrics(metrics, "table3.t" + std::to_string(index) + "." +
                                        specs[s] + ".");
      row.push_back("(" + bench::Seconds(paper_cells[s][0]) + ", " +
                    bench::Seconds(paper_cells[s][1]) + ") / " +
                    bench::MakespanOverhead(result));
    }
    table.AddRow(row);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "shape check: hybrid overhead < LogicBlox overhead on every row; on "
      "the shallow traces (#6, #11) the LevelBased fast path serves most "
      "pops so the hybrid pays roughly half the quadratic scan cost — the "
      "same ~50%% overhead cut the paper reports.\n");
  if (session != nullptr) {
    // The acceptance check made from the trace itself rather than the
    // simulator's stopwatch: summed pop-scope time per policy.
    const double lx_ns = traced_overhead_ns[0];
    const double hy_ns = traced_overhead_ns[2];
    std::printf("traced scheduler overhead: logicblox=%s levelbased=%s "
                "hybrid=%s — hybrid <= logicblox %s\n",
                bench::Seconds(lx_ns / 1e9).c_str(),
                bench::Seconds(traced_overhead_ns[1] / 1e9).c_str(),
                bench::Seconds(hy_ns / 1e9).c_str(),
                hy_ns <= lx_ns ? "HOLDS" : "VIOLATED");
  }
  bench::PrintMetrics(metrics);
  bench::FinishTrace(session.get(), *trace_path);
  return 0;
}
