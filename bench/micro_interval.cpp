// Micro-benchmarks of the interval-list transitive-closure index.
#include <benchmark/benchmark.h>

#include "graph/digraph_builder.hpp"
#include "interval/interval_index.hpp"
#include "interval/interval_set.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace {

using dsched::graph::Dag;
using dsched::graph::DigraphBuilder;
using dsched::interval::IntervalIndex;
using dsched::interval::IntervalSet;
using dsched::util::Rng;
using dsched::util::TaskId;

Dag RandomLayeredDag(std::size_t nodes, Rng& rng) {
  // Layered random DAG: realistic for the index (long paths, bounded fan).
  dsched::trace::LayeredDagSpec spec;
  spec.level_widths =
      dsched::trace::MakeLevelWidths(nodes, 20, nodes / 10, rng);
  spec.extra_edges = nodes / 2;
  spec.target_active = 0;
  spec.seed = rng.NextU64();
  DigraphBuilder builder(0);
  const auto trace = dsched::trace::GenerateLayered(spec);
  // Copy the DAG out (JobTrace owns it).
  DigraphBuilder copy(trace.NumNodes());
  for (std::size_t u = 0; u < trace.NumNodes(); ++u) {
    for (const TaskId v : trace.Graph().OutNeighbors(static_cast<TaskId>(u))) {
      copy.AddEdge(static_cast<TaskId>(u), v);
    }
  }
  return std::move(copy).Build();
}

void BM_IntervalSetInsert(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    IntervalSet set;
    for (int i = 0; i < state.range(0); ++i) {
      const auto lo = static_cast<std::uint32_t>(rng.NextBelow(100000));
      set.Insert(lo, lo + static_cast<std::uint32_t>(rng.NextBelow(8)));
    }
    benchmark::DoNotOptimize(set.Size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IntervalSetInsert)->Arg(100)->Arg(1000)->Arg(10000);

void BM_IntervalSetContains(benchmark::State& state) {
  Rng rng(2);
  IntervalSet set;
  for (int i = 0; i < state.range(0); ++i) {
    const auto lo = static_cast<std::uint32_t>(rng.NextBelow(1000000));
    set.Insert(lo, lo + 3);
  }
  std::uint32_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.Contains(probe));
    probe = (probe + 7919) % 1000000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntervalSetContains)->Arg(100)->Arg(10000);

void BM_IndexBuildLayered(benchmark::State& state) {
  Rng rng(3);
  const Dag dag = RandomLayeredDag(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    const IntervalIndex index(dag);
    benchmark::DoNotOptimize(index.TotalIntervals());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dag.NumNodes()));
}
BENCHMARK(BM_IndexBuildLayered)->Arg(2000)->Arg(20000);

void BM_IndexBuildStaircase(benchmark::State& state) {
  const auto trace = dsched::trace::MakeIntervalAdversarial(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const IntervalIndex index(trace.Graph());
    benchmark::DoNotOptimize(index.TotalIntervals());
  }
}
BENCHMARK(BM_IndexBuildStaircase)->Arg(128)->Arg(512);

void BM_IndexQuery(benchmark::State& state) {
  Rng rng(4);
  const Dag dag = RandomLayeredDag(20000, rng);
  const IntervalIndex index(dag);
  const auto n = static_cast<TaskId>(dag.NumNodes());
  TaskId u = 0;
  TaskId v = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Reaches(u, v));
    u = (u + 313) % n;
    v = (v + 71) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexQuery);

}  // namespace
