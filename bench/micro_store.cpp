// Sharded-store write-path benchmark: contended inserts, probes, and erases
// against the hash-sharded Relation, sweeping shard counts and writer
// counts.  Compares the lock-free publication protocol (ShardedWriteBuffer:
// stage per shard, one atomic append per chunk, absorb-assisting flush)
// against a global-mutex write path — the discipline the engine used before
// shards existed.  Emits BENCH_store.json so future PRs can track the
// trajectory.
//
// Workloads (arity-2 tuples, multiplicative key scatter):
//   serial_insert_pP    — one thread, direct Insert() into P shards.
//   publish_insert_pP_wW— W writer threads, disjoint keyspaces, each staging
//                         into its own ShardedWriteBuffer and flushing; the
//                         tentpole's hot path.
//   locked_insert_wW    — W writer threads sharing one std::mutex around
//                         direct Insert(); the pre-shard baseline.
//   probe_pP            — one thread, Contains() over a populated store,
//                         alternating hits and misses.
//   mixed_erase_pP      — one thread, insert then erase every other tuple.
//
// Every insert variant must converge to the same relation contents: the
// harness cross-checks an order-independent checksum across shard counts
// and write paths, so the bench doubles as a stress test.
//
// NOTE on scaling numbers: writer threads only overlap when the host has
// cores to run them on.  On a single-core container, publish_insert_p16_w8
// measures protocol overhead under timeslicing, not parallel speedup — the
// `scale_p16_vs_p1_w8` summary ratio is machine-dependent by design and the
// CI gate ignores it (see tools/check_bench.py invocation in ci.yml).
//
// Usage: micro_store [--out=BENCH_store.json] [--scale=1.0] [--trace=out.json]
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "datalog/delta_buffer.hpp"
#include "datalog/relation.hpp"
#include "util/timer.hpp"

namespace dsched::bench {

using datalog::Relation;
using datalog::RowView;
using datalog::ShardedWriteBuffer;
using datalog::Tuple;
using datalog::Value;

// Odd-constant multiply (a bijection mod 2^64) so keys land in arbitrary
// shards and slots; sequential keys would serialize on one shard.
std::uint64_t Scatter(std::uint64_t i) { return i * 0x9e3779b97f4a7c15ULL; }

Tuple MakeTuple(std::uint64_t i) {
  const std::uint64_t k = Scatter(i);
  return {Value::Int(static_cast<std::int64_t>(k & 0x7fffffffULL)),
          Value::Int(static_cast<std::int64_t>(i))};
}

/// Order-independent content fingerprint (shard-major iteration order
/// differs across shard counts; addition does not care).
std::uint64_t Checksum(const Relation& r) {
  std::uint64_t sum = 0;
  r.ForEachRow([&sum](std::uint32_t, RowView row) {
    sum += row[0].Bits() * 3 + row[1].Bits();
  });
  return sum;
}

struct Row {
  std::string workload;
  std::uint64_t rows = 0;      ///< tuples touched per rep
  std::uint64_t checksum = 0;  ///< content fingerprint after the last rep
  double seconds = 0.0;

  [[nodiscard]] double Mops(std::size_t reps) const {
    return seconds > 0.0
               ? static_cast<double>(rows) * static_cast<double>(reps) /
                     seconds / 1e6
               : 0.0;
  }
};

void Report(const Row& r, std::size_t reps) {
  std::printf("%-24s %10llu rows  %10s  %7.2f Mop/s\n", r.workload.c_str(),
              static_cast<unsigned long long>(r.rows),
              util::FormatSeconds(r.seconds).c_str(), r.Mops(reps));
}

}  // namespace dsched::bench

int main(int argc, char** argv) {
  using namespace dsched;
  using namespace dsched::bench;
  MicroBenchArgs args;
  args.out = "BENCH_store.json";
  if (!ParseMicroBenchArgs(argc, argv, &args)) {
    return 2;
  }
  const std::string& out_path = args.out;
  const std::string& trace_path = args.trace;
  const double scale = args.scale;
  const auto session = MaybeStartTrace(trace_path);

  const auto n_rows = static_cast<std::uint64_t>(200000.0 * scale);
  const std::size_t reps = 3;
  const std::size_t shard_counts[] = {1, 4, 16};
  const std::size_t writer_counts[] = {1, 8};
  std::vector<Row> rows;
  std::uint64_t expected_checksum = 0;  // filled by the first insert variant

  const auto check = [&expected_checksum](const Row& row) {
    if (expected_checksum == 0) {
      expected_checksum = row.checksum;
    } else if (row.checksum != expected_checksum) {
      std::fprintf(stderr, "%s checksum mismatch: %llu != %llu\n",
                   row.workload.c_str(),
                   static_cast<unsigned long long>(row.checksum),
                   static_cast<unsigned long long>(expected_checksum));
      std::exit(1);
    }
  };

  // --- serial_insert_pP: one thread, direct mutators.
  for (const std::size_t p : shard_counts) {
    Row row;
    row.workload = "serial_insert_p" + std::to_string(p);
    row.rows = n_rows;
    util::WallTimer timer;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Relation r(2, p);
      r.Reserve(n_rows);
      for (std::uint64_t i = 0; i < n_rows; ++i) {
        r.Insert(MakeTuple(i));
      }
      row.checksum = Checksum(r);
    }
    row.seconds = timer.ElapsedSeconds();
    check(row);
    Report(row, reps);
    rows.push_back(row);
  }

  // --- publish_insert_pP_wW: staged writes, lock-free publication.
  for (const std::size_t p : shard_counts) {
    for (const std::size_t w : writer_counts) {
      Row row;
      row.workload =
          "publish_insert_p" + std::to_string(p) + "_w" + std::to_string(w);
      row.rows = n_rows;
      const std::uint64_t per_writer = n_rows / w;
      util::WallTimer timer;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        Relation r(2, p);
        r.Reserve(n_rows);
        std::vector<std::thread> writers;
        writers.reserve(w);
        for (std::size_t t = 0; t < w; ++t) {
          writers.emplace_back([&r, t, per_writer] {
            ShardedWriteBuffer buffer(r);
            const std::uint64_t base = static_cast<std::uint64_t>(t) *
                                       per_writer;
            for (std::uint64_t i = 0; i < per_writer; ++i) {
              buffer.StageInsert(MakeTuple(base + i));
            }
            buffer.Flush();
          });
        }
        for (std::thread& writer : writers) {
          writer.join();
        }
        r.Quiesce();
        row.checksum = Checksum(r);
      }
      row.seconds = timer.ElapsedSeconds();
      if (w == 1) {
        // Disjoint-keyspace splits only cover the full range when w divides
        // n_rows; w=1 always does, so only it cross-checks contents.
        check(row);
      }
      Report(row, reps);
      rows.push_back(row);
    }
  }

  // --- locked_insert_wW: the pre-shard discipline, one mutex for the
  // whole relation (default shard count; the mutex is the bottleneck).
  for (const std::size_t w : writer_counts) {
    Row row;
    row.workload = "locked_insert_w" + std::to_string(w);
    row.rows = n_rows;
    const std::uint64_t per_writer = n_rows / w;
    util::WallTimer timer;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Relation r(2);
      r.Reserve(n_rows);
      std::mutex write_mutex;
      std::vector<std::thread> writers;
      writers.reserve(w);
      for (std::size_t t = 0; t < w; ++t) {
        writers.emplace_back([&r, &write_mutex, t, per_writer] {
          const std::uint64_t base = static_cast<std::uint64_t>(t) *
                                     per_writer;
          for (std::uint64_t i = 0; i < per_writer; ++i) {
            const Tuple tuple = MakeTuple(base + i);
            const std::scoped_lock lock(write_mutex);
            r.Insert(tuple);
          }
        });
      }
      for (std::thread& writer : writers) {
        writer.join();
      }
      row.checksum = Checksum(r);
    }
    row.seconds = timer.ElapsedSeconds();
    if (w == 1) {
      check(row);
    }
    Report(row, reps);
    rows.push_back(row);
  }

  // --- probe_pP: membership checks, alternating hits and misses.
  for (const std::size_t p : {std::size_t{1}, std::size_t{16}}) {
    Relation r(2, p);
    r.Reserve(n_rows);
    for (std::uint64_t i = 0; i < n_rows; ++i) {
      r.Insert(MakeTuple(i));
    }
    Row row;
    row.workload = "probe_p" + std::to_string(p);
    row.rows = n_rows;
    std::uint64_t hits = 0;
    util::WallTimer timer;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      for (std::uint64_t i = 0; i < n_rows; ++i) {
        // Odd offsets miss: MakeTuple is injective in i, so i + n_rows
        // never collides with an inserted tuple.
        hits += r.Contains(MakeTuple(i % 2 == 0 ? i : i + n_rows)) ? 1u : 0u;
      }
    }
    row.seconds = timer.ElapsedSeconds();
    row.checksum = hits;
    if (hits != reps * ((n_rows + 1) / 2)) {
      std::fprintf(stderr, "%s hit-count mismatch: %llu\n",
                   row.workload.c_str(),
                   static_cast<unsigned long long>(hits));
      return 1;
    }
    Report(row, reps);
    rows.push_back(row);
  }

  // --- mixed_erase_pP: insert everything, erase every other tuple.
  for (const std::size_t p : {std::size_t{1}, std::size_t{16}}) {
    Row row;
    row.workload = "mixed_erase_p" + std::to_string(p);
    row.rows = n_rows + n_rows / 2;
    util::WallTimer timer;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Relation r(2, p);
      r.Reserve(n_rows);
      for (std::uint64_t i = 0; i < n_rows; ++i) {
        r.Insert(MakeTuple(i));
      }
      for (std::uint64_t i = 0; i < n_rows; i += 2) {
        r.Erase(MakeTuple(i));
      }
      row.checksum = r.Size();
    }
    row.seconds = timer.ElapsedSeconds();
    if (row.checksum != n_rows / 2) {
      std::fprintf(stderr, "%s size mismatch\n", row.workload.c_str());
      return 1;
    }
    Report(row, reps);
    rows.push_back(row);
  }

  // --- Summary ratios.
  const auto seconds_of = [&rows](const std::string& workload) {
    for (const Row& r : rows) {
      if (r.workload == workload) {
        return r.seconds;
      }
    }
    return 0.0;
  };
  const double p1_w8 = seconds_of("publish_insert_p1_w8");
  const double p16_w8 = seconds_of("publish_insert_p16_w8");
  const double locked_w8 = seconds_of("locked_insert_w8");
  const double scale_p16_vs_p1_w8 = p16_w8 > 0.0 ? p1_w8 / p16_w8 : 0.0;
  const double staged_vs_locked_w8 =
      p16_w8 > 0.0 ? locked_w8 / p16_w8 : 0.0;
  std::printf("scale_p16_vs_p1_w8   %5.2fx\n", scale_p16_vs_p1_w8);
  std::printf("staged_vs_locked_w8  %5.2fx\n", staged_vs_locked_w8);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"micro_store\",\n  \"scale\": %f,\n",
               scale);
  std::fprintf(out, "  \"summary\": {\n");
  std::fprintf(out, "    \"scale_p16_vs_p1_w8\": %.2f,\n",
               scale_p16_vs_p1_w8);
  std::fprintf(out, "    \"staged_vs_locked_w8\": %.2f\n  },\n",
               staged_vs_locked_w8);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"workload\": \"%s\", \"rows\": %llu, "
                 "\"checksum\": %llu, \"seconds\": %.6f, \"mops\": %.2f}%s\n",
                 r.workload.c_str(), static_cast<unsigned long long>(r.rows),
                 static_cast<unsigned long long>(r.checksum), r.seconds,
                 r.Mops(reps), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  obs::MetricsRegistry metrics;
  for (const Row& r : rows) {
    const std::string key = "micro_store." + r.workload + ".";
    metrics.Set(key + "rows", r.rows);
    metrics.Set(key + "checksum", r.checksum);
    metrics.Set(key + "seconds_ns",
                static_cast<std::uint64_t>(r.seconds * 1e9));
    metrics.Set(key + "mops_x100",
                static_cast<std::uint64_t>(r.Mops(reps) * 100.0));
  }
  metrics.Set("micro_store.scale_p16_vs_p1_w8_x100",
              static_cast<std::uint64_t>(scale_p16_vs_p1_w8 * 100.0));
  metrics.Set("micro_store.staged_vs_locked_w8_x100",
              static_cast<std::uint64_t>(staged_vs_locked_w8 * 100.0));
  PrintMetrics(metrics);
  FinishTrace(session.get(), trace_path);
  return 0;
}
