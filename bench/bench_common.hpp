// Shared helpers for the table/figure reproduction harnesses: running
// factory-spec schedulers, the canonical wall-time formatting every bench
// and example prints (util::FormatSeconds — do not hand-roll units), and
// the observability hooks (--trace capture, the `METRICS {...}` line).
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "trace/job_trace.hpp"
#include "util/strings.hpp"

namespace dsched::bench {

/// Runs a factory-spec scheduler over a trace; P defaults to the paper's 8.
inline sim::SimResult RunSpec(const trace::JobTrace& trace,
                              const std::string& spec, std::size_t processors = 8,
                              sim::ExecutionModel model =
                                  sim::ExecutionModel::kSequential) {
  auto scheduler = sched::CreateScheduler(spec);
  sim::SimConfig config;
  config.processors = processors;
  config.model = model;
  return sim::Simulate(trace, *scheduler, config);
}

/// Formats a paper value next to our measured one: "26.5 s | 43.9 s".
inline std::string Seconds(double value) {
  return util::FormatSeconds(value);
}

/// A "(makespan, overhead)" cell as Table III prints them.
inline std::string MakespanOverhead(const sim::SimResult& r) {
  return "(" + util::FormatSeconds(r.TotalSeconds()) + ", " +
         util::FormatSeconds(r.sched_wall_seconds) + ")";
}

/// The observability category a factory spec's top-level PopReady records
/// under.  Summing only this category charges nested children (the
/// hybrid's two parents, LBL's LevelBased fallback) to their parent
/// exactly once.
inline obs::Category SchedPopCategory(const std::string& spec) {
  const std::string head = spec.substr(0, spec.find(':'));
  if (head == "logicblox" || head == "lx") {
    return obs::Category::kSchedPopLogicBlox;
  }
  if (head == "lbl" || head == "lookahead") {
    return obs::Category::kSchedPopLookahead;
  }
  if (head == "signal" || head == "signalpropagation") {
    return obs::Category::kSchedPopSignal;
  }
  if (head == "oracle") {
    return obs::Category::kSchedPopOracle;
  }
  if (head == "hybrid") {
    return obs::Category::kSchedPopHybrid;
  }
  return obs::Category::kSchedPopLevelBased;
}

/// Starts (and installs) a trace session when `path` is non-empty; the
/// standard implementation of a bench's `--trace out.json` flag.
inline std::unique_ptr<obs::TraceSession> MaybeStartTrace(
    const std::string& path) {
  if (path.empty()) {
    return nullptr;
  }
  auto session = std::make_unique<obs::TraceSession>();
  session->Install();
  return session;
}

/// Uninstalls `session`, writes the Chrome trace_event JSON to `path` and
/// prints the per-category summary.  No-op when `session` is null.
inline void FinishTrace(obs::TraceSession* session, const std::string& path) {
  if (session == nullptr) {
    return;
  }
  session->Uninstall();
  if (!session->WriteChromeJson(path)) {
    std::fprintf(stderr, "failed to write trace to %s\n", path.c_str());
    return;
  }
  std::printf("\ntrace written to %s (load in chrome://tracing or "
              "https://ui.perfetto.dev)\n%s",
              path.c_str(), session->SummaryText().c_str());
}

/// The machine-readable metrics block: a single `METRICS {...}` stdout
/// line, sorted keys, greppable and JSON-parseable.
inline void PrintMetrics(const obs::MetricsRegistry& registry) {
  std::printf("METRICS %s\n", registry.ToJson().c_str());
}

/// The standard micro-bench command line, shared by micro_executor /
/// micro_store / micro_join: `--out=<path> --trace=<path> --scale=<f>`.
/// Unknown flags are ignored (benches with extra flags peel theirs off
/// first, exactly as before the dedup).
struct MicroBenchArgs {
  std::string out;  ///< preset the bench's default BENCH_*.json before parsing
  std::string trace;
  double scale = 1.0;
};

/// Parses argv into `args`.  Returns false after printing the standard
/// diagnostic when --scale is malformed or non-positive; callers exit 2.
inline bool ParseMicroBenchArgs(int argc, char** argv, MicroBenchArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      args->out = arg.substr(6);
    } else if (arg.rfind("--trace=", 0) == 0) {
      args->trace = arg.substr(8);
    } else if (arg.rfind("--scale=", 0) == 0) {
      try {
        args->scale = std::stod(arg.substr(8));
      } catch (const std::exception&) {
        args->scale = 0.0;
      }
      if (args->scale <= 0.0) {
        std::fprintf(stderr,
                     "bad --scale value: %s (want a positive number)\n",
                     arg.c_str());
        return false;
      }
    }
  }
  return true;
}

/// Writes a fully-rendered BENCH_*.json string to `path`; the standard
/// emission tail.  Returns false (with the standard diagnostic) on failure;
/// callers exit 1.
inline bool WriteBenchFile(const std::string& path,
                           const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace dsched::bench
