// Shared helpers for the table/figure reproduction harnesses: running
// factory-spec schedulers, the canonical wall-time formatting every bench
// and example prints (util::FormatSeconds — do not hand-roll units), and
// the observability hooks (--trace capture, the `METRICS {...}` line).
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "trace/job_trace.hpp"
#include "util/strings.hpp"

namespace dsched::bench {

/// Runs a factory-spec scheduler over a trace; P defaults to the paper's 8.
inline sim::SimResult RunSpec(const trace::JobTrace& trace,
                              const std::string& spec, std::size_t processors = 8,
                              sim::ExecutionModel model =
                                  sim::ExecutionModel::kSequential) {
  auto scheduler = sched::CreateScheduler(spec);
  sim::SimConfig config;
  config.processors = processors;
  config.model = model;
  return sim::Simulate(trace, *scheduler, config);
}

/// Formats a paper value next to our measured one: "26.5 s | 43.9 s".
inline std::string Seconds(double value) {
  return util::FormatSeconds(value);
}

/// A "(makespan, overhead)" cell as Table III prints them.
inline std::string MakespanOverhead(const sim::SimResult& r) {
  return "(" + util::FormatSeconds(r.TotalSeconds()) + ", " +
         util::FormatSeconds(r.sched_wall_seconds) + ")";
}

/// The observability category a factory spec's top-level PopReady records
/// under.  Summing only this category charges nested children (the
/// hybrid's two parents, LBL's LevelBased fallback) to their parent
/// exactly once.
inline obs::Category SchedPopCategory(const std::string& spec) {
  const std::string head = spec.substr(0, spec.find(':'));
  if (head == "logicblox" || head == "lx") {
    return obs::Category::kSchedPopLogicBlox;
  }
  if (head == "lbl" || head == "lookahead") {
    return obs::Category::kSchedPopLookahead;
  }
  if (head == "signal" || head == "signalpropagation") {
    return obs::Category::kSchedPopSignal;
  }
  if (head == "oracle") {
    return obs::Category::kSchedPopOracle;
  }
  if (head == "hybrid") {
    return obs::Category::kSchedPopHybrid;
  }
  return obs::Category::kSchedPopLevelBased;
}

/// Starts (and installs) a trace session when `path` is non-empty; the
/// standard implementation of a bench's `--trace out.json` flag.
inline std::unique_ptr<obs::TraceSession> MaybeStartTrace(
    const std::string& path) {
  if (path.empty()) {
    return nullptr;
  }
  auto session = std::make_unique<obs::TraceSession>();
  session->Install();
  return session;
}

/// Uninstalls `session`, writes the Chrome trace_event JSON to `path` and
/// prints the per-category summary.  No-op when `session` is null.
inline void FinishTrace(obs::TraceSession* session, const std::string& path) {
  if (session == nullptr) {
    return;
  }
  session->Uninstall();
  if (!session->WriteChromeJson(path)) {
    std::fprintf(stderr, "failed to write trace to %s\n", path.c_str());
    return;
  }
  std::printf("\ntrace written to %s (load in chrome://tracing or "
              "https://ui.perfetto.dev)\n%s",
              path.c_str(), session->SummaryText().c_str());
}

/// The machine-readable metrics block: a single `METRICS {...}` stdout
/// line, sorted keys, greppable and JSON-parseable.
inline void PrintMetrics(const obs::MetricsRegistry& registry) {
  std::printf("METRICS %s\n", registry.ToJson().c_str());
}

}  // namespace dsched::bench
