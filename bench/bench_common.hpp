// Shared helpers for the table/figure reproduction harnesses.
#pragma once

#include <cstdio>
#include <string>

#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "trace/job_trace.hpp"
#include "util/strings.hpp"

namespace dsched::bench {

/// Runs a factory-spec scheduler over a trace; P defaults to the paper's 8.
inline sim::SimResult RunSpec(const trace::JobTrace& trace,
                              const std::string& spec, std::size_t processors = 8,
                              sim::ExecutionModel model =
                                  sim::ExecutionModel::kSequential) {
  auto scheduler = sched::CreateScheduler(spec);
  sim::SimConfig config;
  config.processors = processors;
  config.model = model;
  return sim::Simulate(trace, *scheduler, config);
}

/// Formats a paper value next to our measured one: "26.5 s | 43.9 s".
inline std::string Seconds(double value) {
  return util::FormatSeconds(value);
}

/// A "(makespan, overhead)" cell as Table III prints them.
inline std::string MakespanOverhead(const sim::SimResult& r) {
  return "(" + util::FormatSeconds(r.TotalSeconds()) + ", " +
         util::FormatSeconds(r.sched_wall_seconds) + ")";
}

}  // namespace dsched::bench
