// Join-kernel throughput benchmark: the flat-arena store + planned join
// against a faithful copy of the PRE-CHANGE kernel (std::vector<Tuple>
// rows, one heap allocation per tuple, std::unordered_map column indexes
// keyed by gathered key tuples, body-order nested-loop join) kept below
// under namespace legacy.  Emits BENCH_datalog.json so future PRs can
// track the trajectory.
//
// Workloads:
//   wide_fanout — path2(X,Z) :- edge(X,Y), edge(Y,Z) over a regular
//                 digraph; every probe fans out to `fan` rows (the
//                 bulk-join case the arena layout targets).
//   point_join  — hit(X,Y) :- probe(X), fact(X,Y) with unique-X facts;
//                 every probe yields at most one row, so per-probe
//                 overhead (key gather, hash, allocation) dominates.
//   delta_join  — dtc(X,Z) :- sg(X,Y), edge(Y,Z) with sg restricted to a
//                 small delta slice per round, the semi-naive hot path.
//
// Usage: micro_join [--out=BENCH_datalog.json] [--scale=1.0]
//                   [--trace=out.json]
#include <array>
#include <cstdio>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "datalog/eval.hpp"
#include "datalog/parser.hpp"
#include "datalog/relation.hpp"
#include "util/timer.hpp"

namespace dsched::bench {

using datalog::DeltaRestriction;
using datalog::EvalStats;
using datalog::Program;
using datalog::RelationStore;
using datalog::Tuple;
using datalog::Value;

namespace legacy {

// --- The pre-change storage: one heap vector per tuple, std-combine hash.
struct TupleHash {
  std::size_t operator()(const Tuple& t) const {
    std::size_t h = t.size();
    for (const Value v : t) {
      h ^= std::hash<std::uint64_t>{}(v.Bits()) + 0x9e3779b9 + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

struct Relation {
  std::vector<Tuple> rows;
  // Column index: gathered key tuple -> row ids, built once per (columns).
  using Index = std::unordered_map<Tuple, std::vector<std::uint32_t>, TupleHash>;
  std::unordered_map<std::uint64_t, Index> indexes;

  void Insert(Tuple t) { rows.push_back(std::move(t)); }

  const Index& IndexOn(const std::vector<std::size_t>& columns) {
    std::uint64_t mask = 0;
    for (const std::size_t c : columns) {
      mask |= std::uint64_t{1} << c;
    }
    Index& index = indexes[mask];
    if (index.empty() && !rows.empty()) {
      for (std::uint32_t r = 0; r < rows.size(); ++r) {
        Tuple key;
        key.reserve(columns.size());
        for (const std::size_t c : columns) {
          key.push_back(rows[r][c]);
        }
        index[std::move(key)].push_back(r);
      }
    }
    return index;
  }
};

/// The pre-change kernel ran every join through a generic binding
/// environment: dynamically checked bound flags, an undo stack, and an
/// emission callback behind std::function.  The loops below keep exactly
/// those costs (they are, if anything, leaner: fixed arrays instead of
/// per-rule heap vectors, and no planner or stats).
struct Env {
  std::array<Value, 4> vals{};
  std::array<char, 4> bound{};
  std::array<std::uint32_t, 4> undo{};
  std::size_t undo_n = 0;

  bool Bind(std::uint32_t var, Value v) {
    if (bound[var] != 0) {
      return vals[var] == v;
    }
    bound[var] = 1;
    vals[var] = v;
    undo[undo_n++] = var;
    return true;
  }
  void UnwindTo(std::size_t mark) {
    while (undo_n > mark) {
      bound[undo[--undo_n]] = 0;
    }
  }
};

/// Body-order two-literal join: scan `outer` (binding its columns to vars
/// 0..arity-1), probe `inner` on column `inner_col` = the binding of var
/// `outer_col`, bind the inner non-key column, and emit
/// (vals[emit0], vals[inner's var]).  Gathers a fresh key tuple per probe
/// and a fresh head tuple per result, exactly as the pre-change kernel
/// did.  Inner literals are (key, payload) pairs: key at column 0.
std::uint64_t JoinScanProbe(Relation& outer, Relation& inner,
                            std::size_t outer_col, std::size_t inner_col,
                            std::size_t emit0, std::size_t emit1) {
  std::uint64_t checksum = 0;
  const std::function<void(const Tuple&)> emit = [&checksum](const Tuple& t) {
    checksum += t[0].Bits() ^ t[1].Bits();
  };
  const Relation::Index& index = inner.IndexOn({inner_col});
  const auto inner_var =
      static_cast<std::uint32_t>(outer.rows.front().size());
  Env env;
  for (const Tuple& row : outer.rows) {
    const std::size_t mark = env.undo_n;
    bool ok = true;
    for (std::uint32_t c = 0; c < row.size(); ++c) {
      ok = ok && env.Bind(c, row[c]);
    }
    if (ok) {
      const Tuple key{env.vals[outer_col]};
      const auto hit = index.find(key);
      if (hit != index.end()) {
        for (const std::uint32_t r : hit->second) {
          const std::size_t inner_mark = env.undo_n;
          if (env.Bind(inner_var, inner.rows[r][emit1])) {
            Tuple head{env.vals[emit0], env.vals[inner_var]};
            emit(head);
          }
          env.UnwindTo(inner_mark);
        }
      }
    }
    env.UnwindTo(mark);
  }
  return checksum;
}

/// Same join, outer side replaced by an explicit delta slice.
std::uint64_t JoinDeltaProbe(const std::vector<Tuple>& delta, Relation& inner,
                             std::size_t outer_col, std::size_t inner_col,
                             std::size_t emit0, std::size_t emit1) {
  std::uint64_t checksum = 0;
  const std::function<void(const Tuple&)> emit = [&checksum](const Tuple& t) {
    checksum += t[0].Bits() ^ t[1].Bits();
  };
  const Relation::Index& index = inner.IndexOn({inner_col});
  const auto inner_var = static_cast<std::uint32_t>(delta.front().size());
  Env env;
  for (const Tuple& row : delta) {
    const std::size_t mark = env.undo_n;
    bool ok = true;
    for (std::uint32_t c = 0; c < row.size(); ++c) {
      ok = ok && env.Bind(c, row[c]);
    }
    if (ok) {
      const Tuple key{env.vals[outer_col]};
      const auto hit = index.find(key);
      if (hit != index.end()) {
        for (const std::uint32_t r : hit->second) {
          const std::size_t inner_mark = env.undo_n;
          if (env.Bind(inner_var, inner.rows[r][emit1])) {
            Tuple head{env.vals[emit0], env.vals[inner_var]};
            emit(head);
          }
          env.UnwindTo(inner_mark);
        }
      }
    }
    env.UnwindTo(mark);
  }
  return checksum;
}

}  // namespace legacy

struct Row {
  std::string workload;
  std::uint64_t rows_emitted = 0;
  double legacy_seconds = 0.0;
  double kernel_seconds = 0.0;

  [[nodiscard]] double Speedup() const {
    return kernel_seconds > 0.0 ? legacy_seconds / kernel_seconds : 0.0;
  }
};

void Report(const Row& r) {
  std::printf("%-12s %10llu rows  legacy %10s  kernel %10s  %5.2fx\n",
              r.workload.c_str(),
              static_cast<unsigned long long>(r.rows_emitted),
              util::FormatSeconds(r.legacy_seconds).c_str(),
              util::FormatSeconds(r.kernel_seconds).c_str(), r.Speedup());
}

/// Times `reps` runs of the planned kernel over `rule_text`'s single rule.
double TimeKernel(const Program& program, const RelationStore& store,
                  const DeltaRestriction& restriction, std::size_t reps,
                  std::uint64_t& checksum, std::uint64_t& emitted) {
  EvalStats stats;
  const std::function<void(const Tuple&)> emit =
      [&checksum, &emitted](const Tuple& t) {
        checksum += t[0].Bits() ^ t[1].Bits();
        ++emitted;
      };
  // Warm the index cache once outside the window (the legacy side's
  // IndexOn is likewise pre-built by its first timed run's warmup below).
  EvalStats warm_stats;
  std::uint64_t sink = 0;
  const std::function<void(const Tuple&)> warm =
      [&sink](const Tuple& t) { sink += t[0].Bits(); };
  ApplyRule(program, store, program.rules[0], restriction, warm_stats, warm);

  checksum = 0;
  emitted = 0;
  util::WallTimer timer;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    ApplyRule(program, store, program.rules[0], restriction, stats, emit);
  }
  return timer.ElapsedSeconds();
}

}  // namespace dsched::bench

int main(int argc, char** argv) {
  using namespace dsched;
  using namespace dsched::bench;
  MicroBenchArgs args;
  args.out = "BENCH_datalog.json";
  if (!ParseMicroBenchArgs(argc, argv, &args)) {
    return 2;
  }
  const std::string& out_path = args.out;
  const std::string& trace_path = args.trace;
  const double scale = args.scale;
  const auto scaled = [scale](std::size_t n) {
    return static_cast<std::size_t>(static_cast<double>(n) * scale);
  };
  const auto session = MaybeStartTrace(trace_path);
  std::vector<Row> rows;

  // --- wide_fanout: regular digraph, every node -> `fan` successors.
  {
    const std::size_t nodes = scaled(1200);
    const std::size_t fan = 16;
    const std::size_t reps = scaled(20);
    const Program program =
        datalog::ParseProgram("path2(X, Z) :- edge(X, Y), edge(Y, Z).");
    RelationStore store(program);
    const auto edge = program.PredicateId("edge");
    legacy::Relation legacy_edge;
    store.Of(edge).Reserve(nodes * fan);
    for (std::size_t u = 0; u < nodes; ++u) {
      for (std::size_t k = 0; k < fan; ++k) {
        const auto v = (u * 31 + k * 17 + 1) % nodes;
        const Tuple t{Value::Int(static_cast<std::int64_t>(u)),
                      Value::Int(static_cast<std::int64_t>(v))};
        if (store.Of(edge).Insert(t)) {
          legacy_edge.Insert(t);
        }
      }
    }

    Row row;
    row.workload = "wide_fanout";
    std::uint64_t legacy_sum = 0;
    legacy::JoinScanProbe(legacy_edge, legacy_edge, 1, 0, 0, 1);  // warmup
    util::WallTimer timer;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      legacy_sum = legacy::JoinScanProbe(legacy_edge, legacy_edge, 1, 0, 0, 1);
    }
    row.legacy_seconds = timer.ElapsedSeconds();

    std::uint64_t kernel_sum = 0;
    std::uint64_t emitted = 0;
    row.kernel_seconds = TimeKernel(program, store, DeltaRestriction{}, reps,
                                    kernel_sum, emitted);
    row.rows_emitted = emitted / reps;
    if (legacy_sum != kernel_sum / reps) {
      std::fprintf(stderr, "wide_fanout checksum mismatch\n");
      return 1;
    }
    Report(row);
    rows.push_back(row);
  }

  // --- point_join: unique-X facts, every probe yields at most one row.
  {
    const std::size_t facts = scaled(100000);
    const std::size_t reps = scaled(20);
    const Program program =
        datalog::ParseProgram("hit(X, Y) :- probe(X), fact(X, Y).");
    RelationStore store(program);
    const auto fact = program.PredicateId("fact");
    const auto probe = program.PredicateId("probe");
    legacy::Relation legacy_fact;
    legacy::Relation legacy_probe;
    store.Of(fact).Reserve(facts);
    store.Of(probe).Reserve(facts);
    // Keys are scattered (odd-constant multiply, a bijection mod 2^32) so
    // point probes hit arbitrary buckets — sequential keys would hand an
    // identity-hash map artificial locality no real workload has.
    const auto scatter = [](std::size_t i) {
      return static_cast<std::int64_t>(
          (i * 2654435761ULL) & 0xffffffffULL);
    };
    for (std::size_t i = 0; i < facts; ++i) {
      const Tuple f{Value::Int(scatter(i) * 2),
                    Value::Int(static_cast<std::int64_t>(i % 97))};
      store.Of(fact).Insert(f);
      legacy_fact.Insert(f);
      // Every other probe misses (odd keys never occur in fact).
      const Tuple p{Value::Int(scatter(i) * 2 +
                               ((i % 2 == 0) ? 0 : 1))};
      store.Of(probe).Insert(p);
      legacy_probe.Insert(p);
    }

    Row row;
    row.workload = "point_join";
    std::uint64_t legacy_sum = 0;
    legacy::JoinScanProbe(legacy_probe, legacy_fact, 0, 0, 0, 1);  // warmup
    util::WallTimer timer;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      legacy_sum = legacy::JoinScanProbe(legacy_probe, legacy_fact, 0, 0, 0, 1);
    }
    row.legacy_seconds = timer.ElapsedSeconds();

    std::uint64_t kernel_sum = 0;
    std::uint64_t emitted = 0;
    row.kernel_seconds = TimeKernel(program, store, DeltaRestriction{}, reps,
                                    kernel_sum, emitted);
    row.rows_emitted = emitted / reps;
    if (legacy_sum != kernel_sum / reps) {
      std::fprintf(stderr, "point_join checksum mismatch\n");
      return 1;
    }
    Report(row);
    rows.push_back(row);
  }

  // --- delta_join: small delta slices against a large indexed relation.
  {
    const std::size_t edges = scaled(200000);
    const std::size_t delta_rows = 1024;
    const std::size_t reps = scaled(100);
    const Program program =
        datalog::ParseProgram("dtc(X, Z) :- sg(X, Y), edge(Y, Z).");
    RelationStore store(program);
    const auto edge = program.PredicateId("edge");
    legacy::Relation legacy_edge;
    store.Of(edge).Reserve(edges);
    const std::size_t keys = edges / 4;  // fan-out ~4 per key
    for (std::size_t i = 0; i < edges; ++i) {
      const Tuple t{Value::Int(static_cast<std::int64_t>(i % keys)),
                    Value::Int(static_cast<std::int64_t>(i))};
      store.Of(edge).Insert(t);
      legacy_edge.Insert(t);
    }
    std::vector<Tuple> delta;
    delta.reserve(delta_rows);
    for (std::size_t i = 0; i < delta_rows; ++i) {
      delta.push_back({Value::Int(static_cast<std::int64_t>(i)),
                       Value::Int(static_cast<std::int64_t>((i * 131) % keys))});
    }
    DeltaRestriction restriction;
    restriction.body_index = 0;
    restriction.rows = delta;

    Row row;
    row.workload = "delta_join";
    std::uint64_t legacy_sum = 0;
    legacy::JoinDeltaProbe(delta, legacy_edge, 1, 0, 0, 1);  // warmup
    util::WallTimer timer;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      legacy_sum = legacy::JoinDeltaProbe(delta, legacy_edge, 1, 0, 0, 1);
    }
    row.legacy_seconds = timer.ElapsedSeconds();

    std::uint64_t kernel_sum = 0;
    std::uint64_t emitted = 0;
    row.kernel_seconds =
        TimeKernel(program, store, restriction, reps, kernel_sum, emitted);
    row.rows_emitted = emitted / reps;
    if (legacy_sum != kernel_sum / reps) {
      std::fprintf(stderr, "delta_join checksum mismatch\n");
      return 1;
    }
    Report(row);
    rows.push_back(row);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"micro_join\",\n  \"scale\": %f,\n",
               scale);
  std::fprintf(out, "  \"summary\": {\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out, "    \"%s_speedup\": %.2f%s\n", rows[i].workload.c_str(),
                 rows[i].Speedup(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  },\n  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"workload\": \"%s\", \"rows_emitted\": %llu, "
                 "\"legacy_seconds\": %.6f, \"kernel_seconds\": %.6f, "
                 "\"speedup\": %.2f}%s\n",
                 r.workload.c_str(),
                 static_cast<unsigned long long>(r.rows_emitted),
                 r.legacy_seconds, r.kernel_seconds, r.Speedup(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  obs::MetricsRegistry metrics;
  for (const Row& r : rows) {
    const std::string key = "micro_join." + r.workload + ".";
    metrics.Set(key + "rows_emitted", r.rows_emitted);
    metrics.Set(key + "legacy_ns",
                static_cast<std::uint64_t>(r.legacy_seconds * 1e9));
    metrics.Set(key + "kernel_ns",
                static_cast<std::uint64_t>(r.kernel_seconds * 1e9));
    metrics.Set(key + "speedup_x100",
                static_cast<std::uint64_t>(r.Speedup() * 100.0));
  }
  PrintMetrics(metrics);
  FinishTrace(session.get(), trace_path);
  return 0;
}
