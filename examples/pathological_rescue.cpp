// The rescue story, staged (paper Sections V and VI):
//
//  Act 1 — a scan-adversarial workload makes the LogicBlox scheduler burn
//          its time hunting for ready work (Θ(n²·L) ancestor queries).
//  Act 2 — the hybrid runs the same heuristic with the LevelBased fast
//          path on a shared queue: identical schedule, overhead gone.
//  Act 3 — an interval-list space adversary would also blow the memory
//          budget; the Theorem-10 meta scheduler aborts the heuristic at
//          ζ/2 and finishes on LevelBased with all processors.
#include <cstdio>
#include <memory>

#include "sched/factory.hpp"
#include "sched/logicblox.hpp"
#include "sim/engine.hpp"
#include "sim/meta.hpp"
#include "trace/generators.hpp"
#include "util/memory_meter.hpp"
#include "util/strings.hpp"

int main() {
  using namespace dsched;

  // --- Act 1: the pathological instance.
  const trace::JobTrace scan_trap = trace::MakePathologicalScan(
      /*chain_length=*/300, /*fanout=*/1200);
  std::printf("Act 1 — '%s': %zu tasks, all active\n",
              scan_trap.Name().c_str(), scan_trap.NumNodes());

  const auto run = [&](const trace::JobTrace& jt, const char* spec) {
    auto scheduler = sched::CreateScheduler(spec);
    sim::SimConfig config;
    config.processors = 8;
    return sim::Simulate(jt, *scheduler, config);
  };

  const auto lx = run(scan_trap, "logicblox");
  std::printf(
      "  LogicBlox:  makespan %s + %s scheduling overhead "
      "(%llu ancestor queries)\n",
      util::FormatSeconds(lx.makespan).c_str(),
      util::FormatSeconds(lx.sched_wall_seconds).c_str(),
      static_cast<unsigned long long>(lx.ops.ancestor_queries));

  // --- Act 2: same workload, hybrid.
  const auto hybrid = run(scan_trap, "hybrid");
  std::printf(
      "Act 2 — Hybrid: makespan %s + %s scheduling overhead "
      "(%llu ancestor queries)\n",
      util::FormatSeconds(hybrid.makespan).c_str(),
      util::FormatSeconds(hybrid.sched_wall_seconds).c_str(),
      static_cast<unsigned long long>(hybrid.ops.ancestor_queries));
  std::printf("  same makespan (%s), overhead cut %.0fx\n",
              lx.makespan == hybrid.makespan ? "yes" : "NO!",
              lx.sched_wall_seconds /
                  std::max(hybrid.sched_wall_seconds, 1e-9));

  // --- Act 3: the meta scheduler under a memory budget.
  const trace::JobTrace staircase = trace::MakeIntervalAdversarial(1024);
  sim::MetaConfig meta_config;
  meta_config.processors = 8;
  meta_config.memory_budget_bytes = std::size_t{2} << 20;  // ζ = 2 MiB
  const sim::MetaResult meta = sim::RunMeta(
      staircase,
      [] {
        return std::unique_ptr<sched::Scheduler>(
            std::make_unique<sched::LogicBloxScheduler>());
      },
      meta_config);
  {
    // How much would the heuristic have wanted?
    sched::LogicBloxScheduler probe;
    probe.Prepare({&staircase, 8});
    std::printf(
        "Act 3 — staircase adversary '%s': interval index wants %s, budget "
        "ζ/2 = %s\n",
        staircase.Name().c_str(), util::FormatBytes(probe.MemoryBytes()).c_str(),
        util::FormatBytes(meta_config.memory_budget_bytes / 2).c_str());
  }
  std::printf(
      "  meta scheduler: heuristic %s; winner %s; makespan %s "
      "(Theorem 10: memory stays O(ζ), makespan <= 2*T_LevelBased)\n",
      meta.heuristic_aborted ? "ABORTED over budget" : "finished",
      meta.winner.c_str(), util::FormatSeconds(meta.makespan).c_str());
  return 0;
}
