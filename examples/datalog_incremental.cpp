// End-to-end pipeline on a retail-flavoured Datalog program — the workload
// class the paper's LogicBlox traces come from:
//
//   program text ──parse/stratify──► materialized database
//        update ──DRed/semi-naive──► per-component activation + timings
//                 ──schedule bridge──► JobTrace (the paper's DAG model)
//                 ──schedulers──────► makespans + scheduling overhead
//                 ──real executor───► re-runs component closures on threads
//
// The program maintains a product hierarchy with rolled-up stock levels,
// promotion eligibility, and restock alerts; the update ships one delivery
// and retires one promotion, and we watch the change cascade.
//
// Usage: datalog_incremental [--strategy=dred|counting|bf]
// The flag picks the maintenance strategy the update cascades run under
// (datalog/maintenance.hpp); the run also prints a DRed-vs-counting
// maintenance-op comparison for the delivery batch regardless.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "datalog/database.hpp"
#include "datalog/maintenance.hpp"
#include "datalog/schedule_bridge.hpp"
#include "runtime/executor.hpp"
#include "sched/factory.hpp"
#include "service/engine_host.hpp"
#include "service/session.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "trace/cascade.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

constexpr const char* kRetailProgram = R"(
    % category hierarchy: subcat(child, parent)
    ancestorcat(C, P) :- subcat(C, P).
    ancestorcat(C, A) :- ancestorcat(C, P), subcat(P, A).

    % a product belongs to every category above its own
    incat(Prod, Cat) :- product(Prod, Cat).
    incat(Prod, Anc) :- product(Prod, Cat), ancestorcat(Cat, Anc).

    % stock per product, alerts when below the threshold
    low(Prod) :- stock(Prod, Units), threshold(Prod, Min), Units < Min.
    alert(Cat) :- low(Prod), incat(Prod, Cat).

    % rolled-up inventory per category (stratified aggregation)
    totalstock(Cat; sum(Units)) :- incat(Prod, Cat), stock(Prod, Units).
    range(Cat; count()) :- incat(Prod, Cat).

    % promotions apply to whole categories, unless blocked
    promoted(Prod) :- promo(Cat), incat(Prod, Cat), !blocked(Prod).
    pushdeal(Prod) :- promoted(Prod), low(Prod).
  )";

/// Base data: electronics > computers > laptops; groceries.  Works on both
/// a bare Database and a service Session — same bootstrap surface.
template <typename Db>
void SeedRetail(Db& db) {
  using dsched::datalog::Value;
  db.Insert("subcat", {db.Sym("laptops"), db.Sym("computers")});
  db.Insert("subcat", {db.Sym("computers"), db.Sym("electronics")});
  db.Insert("subcat", {db.Sym("phones"), db.Sym("electronics")});
  db.Insert("product", {db.Sym("zenbook"), db.Sym("laptops")});
  db.Insert("product", {db.Sym("thinkpad"), db.Sym("laptops")});
  db.Insert("product", {db.Sym("pixel"), db.Sym("phones")});
  db.Insert("stock", {db.Sym("zenbook"), Value::Int(3)});
  db.Insert("stock", {db.Sym("thinkpad"), Value::Int(40)});
  db.Insert("stock", {db.Sym("pixel"), Value::Int(2)});
  db.Insert("threshold", {db.Sym("zenbook"), Value::Int(5)});
  db.Insert("threshold", {db.Sym("thinkpad"), Value::Int(5)});
  db.Insert("threshold", {db.Sym("pixel"), Value::Int(5)});
  db.Insert("promo", {db.Sym("electronics")});
  db.Insert("blocked", {db.Sym("thinkpad")});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsched;
  using datalog::Value;

  std::string strategy_name = "dred";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--strategy=", 11) == 0) {
      strategy_name = argv[i] + 11;
    }
  }
  datalog::MaintenanceStrategy strategy;
  try {
    strategy = datalog::ParseMaintenanceStrategy(strategy_name);
  } catch (const util::Error& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 2;
  }

  datalog::Database db(kRetailProgram);
  db.SetDefaultStrategy(strategy);
  SeedRetail(db);

  const auto stats = db.Materialize();
  std::printf("materialized: %llu tuples derived (%llu rule applications)\n",
              static_cast<unsigned long long>(stats.tuples_inserted),
              static_cast<unsigned long long>(stats.rule_applications));
  std::printf("alerts: %zu, deals to push: %zu\n", db.Query("alert").size(),
              db.Query("pushdeal").size());
  for (const auto& row : db.Query("totalstock")) {
    std::printf("  totalstock%s\n",
                datalog::TupleToString(row, db.GetProgram().symbols).c_str());
  }

  // --- The update: a delivery restocks the zenbook; the thinkpad block is
  // lifted.  Note what this does NOT touch: the category hierarchy.
  auto update = db.MakeUpdate();
  update.Delete("stock", {db.Sym("zenbook"), Value::Int(3)});
  update.Insert("stock", {db.Sym("zenbook"), Value::Int(25)});
  update.Delete("blocked", {db.Sym("thinkpad")});
  datalog::UpdateRequest request;  // mirror for the bridge
  const auto& program = db.GetProgram();
  request.deletions.emplace_back(
      program.PredicateId("stock"),
      datalog::Tuple{db.Sym("zenbook"), Value::Int(3)});
  request.insertions.emplace_back(
      program.PredicateId("stock"),
      datalog::Tuple{db.Sym("zenbook"), Value::Int(25)});
  request.deletions.emplace_back(program.PredicateId("blocked"),
                                 datalog::Tuple{db.Sym("thinkpad")});

  const datalog::UpdateResult result = db.Apply(update);
  std::printf(
      "\nincremental update (%s + recompute-diff aggregates):\n%s",
      datalog::MaintenanceStrategyName(strategy),
      result.ToString(program, db.GetStratification()).c_str());
  std::printf("alerts now: %zu, deals now: %zu\n", db.Query("alert").size(),
              db.Query("pushdeal").size());
  for (const auto& row : db.Query("totalstock")) {
    std::printf("  totalstock%s\n",
                datalog::TupleToString(row, db.GetProgram().symbols).c_str());
  }

  // --- Strategy shoot-out on that same delivery.  alert(electronics) has
  // redundant support (two low products under electronics): DRed
  // overdeletes it and rederives it, counting just moves a derivation
  // count, backward/forward proves it alive with one probe.
  std::printf("\nmaintenance-op comparison for the delivery batch:\n");
  std::size_t dred_ops = 0;
  for (const char* name : {"dred", "counting", "bf"}) {
    datalog::Database replay(kRetailProgram);
    replay.SetDefaultStrategy(datalog::ParseMaintenanceStrategy(name));
    SeedRetail(replay);
    (void)replay.Materialize();
    const datalog::UpdateResult r = replay.ApplyRequest(request);
    if (dred_ops == 0) {
      dred_ops = r.total_maint_ops;
    }
    std::printf("  %-9s %3zu maintenance ops (%.1fx vs dred)\n", name,
                r.total_maint_ops,
                r.total_maint_ops > 0
                    ? static_cast<double>(dred_ops) /
                          static_cast<double>(r.total_maint_ops)
                    : 0.0);
  }


  // --- Extract the scheduling trace of that update.
  const datalog::UpdateTrace bridge = datalog::BuildUpdateTrace(
      program, db.GetStratification(), request, result, "retail-update");
  const trace::Cascade cascade = trace::ComputeCascade(bridge.trace);
  std::printf(
      "\nscheduling DAG: %zu nodes (%zu rule components + %zu predicate "
      "collectors), %zu dirtied, %zu activated\n",
      bridge.trace.NumNodes(),
      bridge.trace.NumNodes() - program.NumPredicates(),
      program.NumPredicates(), bridge.trace.InitialDirty().size(),
      cascade.NumActive());

  // --- Compare schedulers on the extracted trace.
  for (const char* spec : {"levelbased", "logicblox", "hybrid"}) {
    auto scheduler = sched::CreateScheduler(spec);
    sim::SimConfig config;
    config.processors = 4;
    config.record_schedule = true;
    const sim::SimResult sim_result =
        sim::Simulate(bridge.trace, *scheduler, config);
    const bool valid = sim::AuditSchedule(bridge.trace, sim_result).valid;
    std::printf(
        "  %-28s makespan %s, overhead %s, ops %6llu, audit %s\n",
        sim_result.scheduler_name.c_str(),
        util::FormatSeconds(sim_result.makespan).c_str(),
        util::FormatSeconds(sim_result.sched_wall_seconds).c_str(),
        static_cast<unsigned long long>(sim_result.ops.Total()),
        valid ? "ok" : "FAILED");
  }

  // --- The OTHER update kind the paper names: rule definitions change.
  // Add a rush-order rule incrementally, then retire it again.
  db.AddRules("rush(Prod) :- low(Prod), promoted(Prod).");
  std::printf("\nadded rule 'rush': %zu rush orders derived incrementally\n",
              db.Query("rush").size());
  db.RemoveRule("rush(Prod) :- low(Prod), promoted(Prod).");
  std::printf("removed rule 'rush': %zu rush orders remain\n",
              db.Query("rush").size());

  // --- And the real thing: hand the same program to the service layer.
  // The EngineHost owns ONE shared worker pool; a session owns the
  // program, its store, its scheduler, and a serialized update queue, and
  // its DRed cascades run on the host's workers (src/service/).
  service::EngineHost host({.workers = 4});
  service::SessionOptions session_options;
  session_options.name = "retail";
  session_options.scheduler_spec = "hybrid";
  session_options.maintenance_strategy = strategy_name;
  auto session = host.OpenSession(kRetailProgram, session_options);
  SeedRetail(*session);
  (void)session->Materialize();
  // Catch the session's store up to the live database: replay the delivery
  // batch serially, then submit the NEXT update through the queue.
  (void)session->Submit(request).get();

  auto restock = session->MakeUpdate();
  restock.Delete("stock", {session->Sym("pixel"), Value::Int(2)});
  restock.Insert("stock", {session->Sym("pixel"), Value::Int(30)});
  const service::UpdateOutcome outcome = session->Submit(restock).get();
  std::printf(
      "\nservice update (epoch %llu, hybrid scheduler on %zu shared "
      "workers): +%zu -%zu tuples, %llu cascade tasks; alerts now: %zu\n",
      static_cast<unsigned long long>(outcome.epoch), host.NumWorkers(),
      outcome.update.total_inserted, outcome.update.total_deleted,
      static_cast<unsigned long long>(outcome.run.executed),
      session->Query("alert").size());
  return 0;
}
