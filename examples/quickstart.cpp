// Quickstart: the five-minute tour of the library.
//
//  1. Describe an incremental-maintenance workload as a JobTrace: a DAG of
//     tasks, per-task processing times, which tasks the update dirtied, and
//     whether each task's output changes when re-run.
//  2. Pick a scheduler (here: the paper's hybrid of LevelBased and the
//     interval-list LogicBlox policy).
//  3. Simulate on P processors, audit the schedule, inspect the metrics.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "graph/digraph_builder.hpp"
#include "sched/factory.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "trace/cascade.hpp"
#include "trace/job_trace.hpp"

int main() {
  using namespace dsched;

  // --- 1. A little computation DAG.
  //
  //        0 (base data)          Tasks 0..2 are re-run because the update
  //       / \                     changed their inputs; task 1's output
  //      1   2                    turns out NOT to change, so the cascade
  //     /|   |                    never reaches task 3 — the "active graph
  //    3 |   |                    H is revealed at runtime" effect from
  //      \   |                    Section II of the paper.
  //       \  |
  //        \ |
  //          4
  graph::DigraphBuilder builder(5);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 3);
  builder.AddEdge(1, 4);
  builder.AddEdge(2, 4);

  std::vector<trace::TaskInfo> tasks(5);
  for (auto& t : tasks) {
    t.work = 1.0;   // one processor-second each
    t.span = 1.0;   // no internal parallelism
  }
  tasks[1].output_changes = false;  // re-runs, but its output is identical

  const trace::JobTrace trace("quickstart", std::move(builder).Build(),
                              std::move(tasks), /*initial_dirty=*/{0});

  // What must re-run?  (Normally the scheduler discovers this dynamically;
  // the offline cascade is ground truth for audits and statistics.)
  const trace::Cascade cascade = trace::ComputeCascade(trace);
  std::printf("active tasks: %zu of %zu (task 3 stays clean)\n",
              cascade.NumActive(), trace.NumNodes());

  // --- 2. A scheduler.  Specs: levelbased, lbl:<k>, logicblox, signal,
  // hybrid, oracle.
  auto scheduler = sched::CreateScheduler("hybrid");

  // --- 3. Simulate and audit.
  sim::SimConfig config;
  config.processors = 2;
  config.model = sim::ExecutionModel::kSequential;
  config.record_schedule = true;
  const sim::SimResult result = sim::Simulate(trace, *scheduler, config);

  std::printf("scheduler: %s\n", result.scheduler_name.c_str());
  std::printf("makespan: %.2f virtual seconds on %zu processors\n",
              result.makespan, config.processors);
  std::printf("tasks executed: %zu, activations: %zu\n",
              result.tasks_executed, result.activations);
  std::printf("scheduling overhead: %.6f real seconds (%llu modelled ops)\n",
              result.sched_wall_seconds,
              static_cast<unsigned long long>(result.ops.Total()));
  for (const sim::TaskRecord& record : result.schedule) {
    std::printf("  task %u ran [%.2f, %.2f)\n", record.id, record.start,
                record.end);
  }

  const sim::AuditResult audit = sim::AuditSchedule(trace, result);
  std::printf("schedule audit: %s\n", audit.valid ? "VALID" : "INVALID");
  return audit.valid ? 0 : 1;
}
