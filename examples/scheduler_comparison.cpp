// Command-line scheduler bake-off on any workload the library can produce.
//
//   scheduler_comparison --trace=2                # paper trace #2
//   scheduler_comparison --trace=6 --scale=0.05   # scaled-down shallow one
//   scheduler_comparison --nodes=5000 --levels=40 # synthetic layered DAG
//   scheduler_comparison --trace_file=data/diamond.trace   # from disk
//   scheduler_comparison --save=my.trace ...      # persist the workload
//   scheduler_comparison --schedulers=levelbased,lbl:15,hybrid --procs=16
//   scheduler_comparison --trace=3 --trace_out=run.json    # Chrome trace
#include <cstdio>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace_session.hpp"
#include "sched/factory.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "trace/cascade.hpp"
#include "trace/generators.hpp"
#include "trace/table_traces.hpp"
#include "trace/trace_io.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/memory_meter.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsched;
  util::FlagSet flags("scheduler_comparison");
  const auto trace_index =
      flags.Int("trace", 0, "paper trace 1-11 (0: generate synthetically)");
  const auto trace_file =
      flags.String("trace_file", "", "load the workload from a trace file");
  const auto save_path =
      flags.String("save", "", "write the workload to a trace file and exit");
  const auto scale = flags.Double("scale", 1.0, "paper-trace scale");
  const auto nodes = flags.Int("nodes", 4000, "synthetic: node count");
  const auto levels = flags.Int("levels", 30, "synthetic: level count");
  const auto dirty = flags.Int("dirty", 8, "synthetic: initially dirty tasks");
  const auto active = flags.Int("active", 400, "synthetic: activation target");
  const auto seed = flags.Int("seed", 1, "generator seed");
  const auto procs = flags.Int("procs", 8, "simulated processors");
  const auto specs_flag = flags.String(
      "schedulers", "levelbased,lbl:10,logicblox,hybrid,signal",
      "comma-separated scheduler specs");
  const auto audit = flags.Bool("audit", false, "audit every schedule");
  const auto trace_out = flags.String(
      "trace_out", "",
      "write a Chrome trace_event JSON of all runs to this path "
      "(--trace already names the paper workload here)");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  std::unique_ptr<obs::TraceSession> session;
  if (!trace_out->empty()) {
    session = std::make_unique<obs::TraceSession>();
    session->Install();
  }
  obs::MetricsRegistry metrics;

  trace::JobTrace jt;
  if (!trace_file->empty()) {
    jt = trace::ReadTraceFile(*trace_file);
  } else if (*trace_index >= 1) {
    jt = trace::MakeTableTrace(static_cast<int>(*trace_index), *scale,
                               static_cast<std::uint64_t>(*seed));
  } else {
    util::Rng rng(static_cast<std::uint64_t>(*seed));
    trace::LayeredDagSpec spec;
    spec.name = "synthetic";
    spec.level_widths = trace::MakeLevelWidths(
        static_cast<std::size_t>(*nodes), static_cast<std::size_t>(*levels),
        std::max<std::size_t>(static_cast<std::size_t>(*dirty),
                              static_cast<std::size_t>(*nodes) / 10),
        rng);
    spec.extra_edges = static_cast<std::size_t>(*nodes) / 2;
    spec.initial_dirty = static_cast<std::size_t>(*dirty);
    spec.target_active = static_cast<std::size_t>(*active);
    spec.durations.median_seconds = 0.05;
    spec.seed = static_cast<std::uint64_t>(*seed);
    jt = trace::GenerateLayered(spec);
  }

  if (!save_path->empty()) {
    trace::WriteTraceFile(*save_path, jt);
    std::printf("wrote '%s' (%zu nodes, %zu edges)\n", save_path->c_str(),
                jt.NumNodes(), jt.NumEdges());
    return 0;
  }

  const trace::Cascade cascade = trace::ComputeCascade(jt);
  std::printf(
      "workload '%s': %zu nodes, %zu edges, %zu dirty, %zu active, "
      "total active work %s\n\n",
      jt.Name().c_str(), jt.NumNodes(), jt.NumEdges(),
      jt.InitialDirty().size(), cascade.NumActive(),
      util::FormatSeconds(cascade.total_active_work).c_str());

  util::TextTable table("scheduler comparison, P = " + std::to_string(*procs));
  table.SetHeader({"scheduler", "makespan", "sched overhead", "prepare",
                   "modelled ops", "memory", "audit"});
  for (const auto spec_view : util::Split(*specs_flag, ',')) {
    const std::string spec(util::Trim(spec_view));
    if (spec.empty()) {
      continue;
    }
    auto scheduler = sched::CreateScheduler(spec);
    sim::SimConfig config;
    config.processors = static_cast<std::size_t>(*procs);
    config.record_schedule = *audit;
    if (session != nullptr) {
      session->Marker("run " + spec);
    }
    const sim::SimResult result = sim::Simulate(jt, *scheduler, config);
    result.ExportMetrics(metrics, "sim." + spec + ".");
    std::string audit_cell = "-";
    if (*audit) {
      audit_cell = sim::AuditSchedule(jt, result).valid ? "ok" : "FAILED";
    }
    table.AddRow({result.scheduler_name,
                  util::FormatSeconds(result.makespan),
                  util::FormatSeconds(result.sched_wall_seconds),
                  util::FormatSeconds(result.prepare_wall_seconds),
                  std::to_string(result.ops.Total()),
                  util::FormatBytes(result.scheduler_memory_bytes),
                  audit_cell});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("METRICS %s\n", metrics.ToJson().c_str());
  if (session != nullptr) {
    session->Uninstall();
    if (session->WriteChromeJson(*trace_out)) {
      std::printf("\ntrace written to %s (load in chrome://tracing or "
                  "https://ui.perfetto.dev)\n%s",
                  trace_out->c_str(), session->SummaryText().c_str());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_out->c_str());
      return 1;
    }
  }
  return 0;
}
