// Command-line scheduler bake-off on any workload the library can produce.
//
//   scheduler_comparison --trace=2                # paper trace #2
//   scheduler_comparison --trace=6 --scale=0.05   # scaled-down shallow one
//   scheduler_comparison --nodes=5000 --levels=40 # synthetic layered DAG
//   scheduler_comparison --trace_file=data/diamond.trace   # from disk
//   scheduler_comparison --save=my.trace ...      # persist the workload
//   scheduler_comparison --schedulers=levelbased,lbl:15,hybrid --procs=16
#include <cstdio>
#include <string>

#include "sched/factory.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "trace/cascade.hpp"
#include "trace/generators.hpp"
#include "trace/table_traces.hpp"
#include "trace/trace_io.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/memory_meter.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsched;
  util::FlagSet flags("scheduler_comparison");
  const auto trace_index =
      flags.Int("trace", 0, "paper trace 1-11 (0: generate synthetically)");
  const auto trace_file =
      flags.String("trace_file", "", "load the workload from a trace file");
  const auto save_path =
      flags.String("save", "", "write the workload to a trace file and exit");
  const auto scale = flags.Double("scale", 1.0, "paper-trace scale");
  const auto nodes = flags.Int("nodes", 4000, "synthetic: node count");
  const auto levels = flags.Int("levels", 30, "synthetic: level count");
  const auto dirty = flags.Int("dirty", 8, "synthetic: initially dirty tasks");
  const auto active = flags.Int("active", 400, "synthetic: activation target");
  const auto seed = flags.Int("seed", 1, "generator seed");
  const auto procs = flags.Int("procs", 8, "simulated processors");
  const auto specs_flag = flags.String(
      "schedulers", "levelbased,lbl:10,logicblox,hybrid,signal",
      "comma-separated scheduler specs");
  const auto audit = flags.Bool("audit", false, "audit every schedule");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }

  trace::JobTrace jt;
  if (!trace_file->empty()) {
    jt = trace::ReadTraceFile(*trace_file);
  } else if (*trace_index >= 1) {
    jt = trace::MakeTableTrace(static_cast<int>(*trace_index), *scale,
                               static_cast<std::uint64_t>(*seed));
  } else {
    util::Rng rng(static_cast<std::uint64_t>(*seed));
    trace::LayeredDagSpec spec;
    spec.name = "synthetic";
    spec.level_widths = trace::MakeLevelWidths(
        static_cast<std::size_t>(*nodes), static_cast<std::size_t>(*levels),
        std::max<std::size_t>(static_cast<std::size_t>(*dirty),
                              static_cast<std::size_t>(*nodes) / 10),
        rng);
    spec.extra_edges = static_cast<std::size_t>(*nodes) / 2;
    spec.initial_dirty = static_cast<std::size_t>(*dirty);
    spec.target_active = static_cast<std::size_t>(*active);
    spec.durations.median_seconds = 0.05;
    spec.seed = static_cast<std::uint64_t>(*seed);
    jt = trace::GenerateLayered(spec);
  }

  if (!save_path->empty()) {
    trace::WriteTraceFile(*save_path, jt);
    std::printf("wrote '%s' (%zu nodes, %zu edges)\n", save_path->c_str(),
                jt.NumNodes(), jt.NumEdges());
    return 0;
  }

  const trace::Cascade cascade = trace::ComputeCascade(jt);
  std::printf(
      "workload '%s': %zu nodes, %zu edges, %zu dirty, %zu active, "
      "total active work %.2fs\n\n",
      jt.Name().c_str(), jt.NumNodes(), jt.NumEdges(),
      jt.InitialDirty().size(), cascade.NumActive(),
      cascade.total_active_work);

  util::TextTable table("scheduler comparison, P = " + std::to_string(*procs));
  table.SetHeader({"scheduler", "makespan", "sched overhead", "prepare",
                   "modelled ops", "memory", "audit"});
  for (const auto spec_view : util::Split(*specs_flag, ',')) {
    const std::string spec(util::Trim(spec_view));
    if (spec.empty()) {
      continue;
    }
    auto scheduler = sched::CreateScheduler(spec);
    sim::SimConfig config;
    config.processors = static_cast<std::size_t>(*procs);
    config.record_schedule = *audit;
    const sim::SimResult result = sim::Simulate(jt, *scheduler, config);
    std::string audit_cell = "-";
    if (*audit) {
      audit_cell = sim::AuditSchedule(jt, result).valid ? "ok" : "FAILED";
    }
    table.AddRow({result.scheduler_name,
                  util::FormatSeconds(result.makespan),
                  util::FormatSeconds(result.sched_wall_seconds),
                  util::FormatSeconds(result.prepare_wall_seconds),
                  std::to_string(result.ops.Total()),
                  util::FormatBytes(result.scheduler_memory_bytes),
                  audit_cell});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
