// Social-network analytics under a live update stream — the "data mining"
// workload family the paper's introduction motivates, at a scale where the
// incremental-vs-recompute gap is measurable.
//
// The program maintains friend-of-friend suggestions, mutual-follow pairs,
// follower counts (aggregation), and celebrity detection over a randomly
// evolving follow graph.  Each round applies a small batch of
// follow/unfollow events twice: incrementally (DRed) against the live
// database, and from scratch against a fresh one — printing both times.
// The final batch runs through the parallel engine on worker threads.
#include <cstdio>
#include <memory>
#include <set>

#include "datalog/database.hpp"
#include "service/engine_host.hpp"
#include "service/session.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

constexpr const char* kProgram = R"(
  mutual(A, B) :- follows(A, B), follows(B, A).
  fof(A, C) :- follows(A, B), follows(B, C), A != C.
  suggest(A, C) :- fof(A, C), !follows(A, C).
  followers(U; count()) :- follows(_, U).
  celebrity(U) :- followers(U, N), N >= 25.
  fanclub(U; count()) :- mutual(U, _).
  reachsum(; sum(N)) :- followers(_, N).
)";

constexpr int kUsers = 250;
constexpr int kInitialFollows = 3000;
constexpr int kRounds = 5;
constexpr int kBatch = 16;

}  // namespace

int main() {
  using namespace dsched;
  using datalog::Database;
  using datalog::Tuple;
  using datalog::Value;

  util::Rng rng(2026);
  std::set<std::pair<int, int>> edges;
  while (edges.size() < kInitialFollows) {
    // Preferential-ish attachment: low ids are popular.
    const int a = static_cast<int>(rng.NextBelow(kUsers));
    const int b = static_cast<int>(
        rng.NextBelow(rng.NextBool(0.3) ? 40 : kUsers));
    if (a != b) {
      edges.emplace(a, b);
    }
  }

  Database live(kProgram);
  for (const auto& [a, b] : edges) {
    live.Insert("follows", {Value::Int(a), Value::Int(b)});
  }
  {
    util::WallTimer timer;
    live.Materialize();
    std::printf(
        "materialized %d users / %zu follows in %s — %zu suggestions, "
        "%zu celebrities\n",
        kUsers, edges.size(),
        util::FormatSeconds(timer.ElapsedSeconds()).c_str(),
        live.Query("suggest").size(), live.Query("celebrity").size());
  }

  util::TextTable table("incremental vs from-scratch per update batch");
  table.SetHeader({"round", "batch", "incremental", "from scratch", "speedup",
                   "suggestions"});

  for (int round = 1; round <= kRounds; ++round) {
    // Build one batch of follow/unfollow events.
    auto update = live.MakeUpdate();
    int follows = 0;
    int unfollows = 0;
    for (int i = 0; i < kBatch; ++i) {
      if (!edges.empty() && rng.NextBool(0.4)) {
        auto it = edges.begin();
        std::advance(it, static_cast<long>(rng.NextBelow(edges.size())));
        update.Delete("follows", {Value::Int(it->first), Value::Int(it->second)});
        edges.erase(it);
        ++unfollows;
      } else {
        const int a = static_cast<int>(rng.NextBelow(kUsers));
        const int b = static_cast<int>(rng.NextBelow(kUsers));
        if (a != b && edges.emplace(a, b).second) {
          update.Insert("follows", {Value::Int(a), Value::Int(b)});
          ++follows;
        }
      }
    }

    util::WallTimer incremental_timer;
    live.Apply(update);
    const double incremental_seconds = incremental_timer.ElapsedSeconds();

    // From-scratch reference over the same base.
    util::WallTimer scratch_timer;
    Database fresh(kProgram);
    for (const auto& [a, b] : edges) {
      fresh.Insert("follows", {Value::Int(a), Value::Int(b)});
    }
    fresh.Materialize();
    const double scratch_seconds = scratch_timer.ElapsedSeconds();

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  scratch_seconds / incremental_seconds);
    table.AddRow({std::to_string(round),
                  "+" + std::to_string(follows) + "/-" +
                      std::to_string(unfollows),
                  util::FormatSeconds(incremental_seconds),
                  util::FormatSeconds(scratch_seconds), speedup,
                  std::to_string(live.Query("suggest").size())});

    // Sanity: the live store matches the fresh one.
    if (live.Query("suggest").size() != fresh.Query("suggest").size()) {
      std::printf("MISMATCH against from-scratch reference!\n");
      return 1;
    }
  }
  std::printf("%s", table.ToString().c_str());

  // Final batch through the service layer: the host owns the shared worker
  // pool, the session owns this program's store + scheduler + serialized
  // update queue, and the cascade runs on the host's workers under the
  // hybrid scheduler (src/service/).
  service::EngineHost host({.workers = 4});
  service::SessionOptions session_options;
  session_options.name = "social";
  session_options.scheduler_spec = "hybrid";
  auto session = host.OpenSession(kProgram, session_options);
  for (const auto& [a, b] : edges) {
    session->Insert("follows", {Value::Int(a), Value::Int(b)});
  }
  (void)session->Materialize();

  auto update = session->MakeUpdate();
  for (int i = 0; i < kBatch; ++i) {
    const int a = static_cast<int>(rng.NextBelow(kUsers));
    const int b = static_cast<int>(rng.NextBelow(kUsers));
    if (a != b && edges.emplace(a, b).second) {
      update.Insert("follows", {Value::Int(a), Value::Int(b)});
    }
  }
  util::WallTimer parallel_timer;
  const service::UpdateOutcome outcome = session->Submit(update).get();
  const double parallel_seconds = parallel_timer.ElapsedSeconds();
  // The live (serial) database replays the same batch as a cross-check.
  (void)live.ApplyRequest(update.Request());
  std::printf(
      "service batch (epoch %llu, hybrid on %zu shared workers): +%zu -%zu "
      "derived tuples, %llu cascade tasks in %s\n",
      static_cast<unsigned long long>(outcome.epoch), host.NumWorkers(),
      outcome.update.total_inserted, outcome.update.total_deleted,
      static_cast<unsigned long long>(outcome.run.executed),
      util::FormatSeconds(parallel_seconds).c_str());
  if (session->Query("suggest").size() != live.Query("suggest").size()) {
    std::printf("MISMATCH against the serial replay!\n");
    return 1;
  }
  return 0;
}
