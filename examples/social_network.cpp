// Social-network analytics under a live update stream — the "data mining"
// workload family the paper's introduction motivates, at a scale where the
// incremental-vs-recompute gap is measurable.
//
// The program maintains friend-of-friend suggestions, mutual-follow pairs,
// follower counts (aggregation), and celebrity detection over a randomly
// evolving follow graph.  Each round applies a small batch of
// follow/unfollow events twice: incrementally (DRed) against the live
// database, and from scratch against a fresh one — printing both times.
// The final batch runs through the parallel engine on worker threads.
#include <cstdio>
#include <set>

#include "datalog/database.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

constexpr const char* kProgram = R"(
  mutual(A, B) :- follows(A, B), follows(B, A).
  fof(A, C) :- follows(A, B), follows(B, C), A != C.
  suggest(A, C) :- fof(A, C), !follows(A, C).
  followers(U; count()) :- follows(_, U).
  celebrity(U) :- followers(U, N), N >= 25.
  fanclub(U; count()) :- mutual(U, _).
  reachsum(; sum(N)) :- followers(_, N).
)";

constexpr int kUsers = 250;
constexpr int kInitialFollows = 3000;
constexpr int kRounds = 5;
constexpr int kBatch = 16;

}  // namespace

int main() {
  using namespace dsched;
  using datalog::Database;
  using datalog::Tuple;
  using datalog::Value;

  util::Rng rng(2026);
  std::set<std::pair<int, int>> edges;
  while (edges.size() < kInitialFollows) {
    // Preferential-ish attachment: low ids are popular.
    const int a = static_cast<int>(rng.NextBelow(kUsers));
    const int b = static_cast<int>(
        rng.NextBelow(rng.NextBool(0.3) ? 40 : kUsers));
    if (a != b) {
      edges.emplace(a, b);
    }
  }

  Database live(kProgram);
  for (const auto& [a, b] : edges) {
    live.Insert("follows", {Value::Int(a), Value::Int(b)});
  }
  {
    util::WallTimer timer;
    live.Materialize();
    std::printf(
        "materialized %d users / %zu follows in %s — %zu suggestions, "
        "%zu celebrities\n",
        kUsers, edges.size(),
        util::FormatSeconds(timer.ElapsedSeconds()).c_str(),
        live.Query("suggest").size(), live.Query("celebrity").size());
  }

  util::TextTable table("incremental vs from-scratch per update batch");
  table.SetHeader({"round", "batch", "incremental", "from scratch", "speedup",
                   "suggestions"});

  for (int round = 1; round <= kRounds; ++round) {
    // Build one batch of follow/unfollow events.
    auto update = live.MakeUpdate();
    int follows = 0;
    int unfollows = 0;
    for (int i = 0; i < kBatch; ++i) {
      if (!edges.empty() && rng.NextBool(0.4)) {
        auto it = edges.begin();
        std::advance(it, static_cast<long>(rng.NextBelow(edges.size())));
        update.Delete("follows", {Value::Int(it->first), Value::Int(it->second)});
        edges.erase(it);
        ++unfollows;
      } else {
        const int a = static_cast<int>(rng.NextBelow(kUsers));
        const int b = static_cast<int>(rng.NextBelow(kUsers));
        if (a != b && edges.emplace(a, b).second) {
          update.Insert("follows", {Value::Int(a), Value::Int(b)});
          ++follows;
        }
      }
    }

    util::WallTimer incremental_timer;
    live.Apply(update);
    const double incremental_seconds = incremental_timer.ElapsedSeconds();

    // From-scratch reference over the same base.
    util::WallTimer scratch_timer;
    Database fresh(kProgram);
    for (const auto& [a, b] : edges) {
      fresh.Insert("follows", {Value::Int(a), Value::Int(b)});
    }
    fresh.Materialize();
    const double scratch_seconds = scratch_timer.ElapsedSeconds();

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  scratch_seconds / incremental_seconds);
    table.AddRow({std::to_string(round),
                  "+" + std::to_string(follows) + "/-" +
                      std::to_string(unfollows),
                  util::FormatSeconds(incremental_seconds),
                  util::FormatSeconds(scratch_seconds), speedup,
                  std::to_string(live.Query("suggest").size())});

    // Sanity: the live store matches the fresh one.
    if (live.Query("suggest").size() != fresh.Query("suggest").size()) {
      std::printf("MISMATCH against from-scratch reference!\n");
      return 1;
    }
  }
  std::printf("%s", table.ToString().c_str());

  // Final batch through the parallel engine.
  auto update = live.MakeUpdate();
  for (int i = 0; i < kBatch; ++i) {
    const int a = static_cast<int>(rng.NextBelow(kUsers));
    const int b = static_cast<int>(rng.NextBelow(kUsers));
    if (a != b && edges.emplace(a, b).second) {
      update.Insert("follows", {Value::Int(a), Value::Int(b)});
    }
  }
  util::WallTimer parallel_timer;
  const auto result =
      live.ApplyParallel(update, {.scheduler_spec = "hybrid", .workers = 4});
  std::printf(
      "parallel batch (4 workers, hybrid): +%zu -%zu derived tuples in "
      "%s\n",
      result.total_inserted, result.total_deleted,
      util::FormatSeconds(parallel_timer.ElapsedSeconds()).c_str());
  return 0;
}
