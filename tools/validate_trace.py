#!/usr/bin/env python3
"""Validate a --trace export against docs/trace_event.schema.json.

Pure stdlib: interprets the JSON Schema subset the checked-in schema uses
(type, required, properties, items, enum, minItems) instead of depending
on the `jsonschema` package.  Beyond the schema it enforces the semantic
invariants the exporter promises: per-phase required fields (X events
carry ts/dur, i events carry ts and scope "g", M events name a thread)
and non-negative durations.

Usage:
    tools/validate_trace.py trace.json [more.json ...]

Exits non-zero, printing every violation, if any file fails.
"""

import json
import os
import sys

SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "docs",
    "trace_event.schema.json")

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}

# Fields each phase must carry beyond the schema's common set.
PHASE_REQUIREMENTS = {
    "X": ("ts", "dur", "cat"),
    "C": ("ts", "cat", "args"),
    "i": ("ts", "s"),
    "M": ("args",),
}


def check_schema(value, schema, path, errors):
    """Recursively validate `value` against the supported schema subset."""
    expected_type = schema.get("type")
    if expected_type is not None:
        check = TYPE_CHECKS.get(expected_type)
        if check is None:
            errors.append(f"{path}: schema uses unsupported type "
                          f"'{expected_type}' — extend validate_trace.py")
            return
        if not check(value):
            errors.append(f"{path}: expected {expected_type}, "
                          f"got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required field '{key}'")
        for key, subschema in schema.get("properties", {}).items():
            if key in value:
                check_schema(value[key], subschema, f"{path}.{key}", errors)
    if isinstance(value, list):
        min_items = schema.get("minItems")
        if min_items is not None and len(value) < min_items:
            errors.append(f"{path}: {len(value)} items < minItems {min_items}")
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(value):
                check_schema(item, items, f"{path}[{i}]", errors)


def check_semantics(trace, errors):
    """Exporter invariants the schema's flat property list cannot express."""
    for i, event in enumerate(trace.get("traceEvents", [])):
        if not isinstance(event, dict):
            continue
        path = f"$.traceEvents[{i}]"
        phase = event.get("ph")
        for field in PHASE_REQUIREMENTS.get(phase, ()):
            if field not in event:
                errors.append(f"{path}: ph '{phase}' event missing '{field}'")
        if "dur" in event and isinstance(event["dur"], (int, float)) \
                and event["dur"] < 0:
            errors.append(f"{path}: negative duration {event['dur']}")
        if phase == "i" and event.get("s") != "g":
            errors.append(f"{path}: instant marker scope is "
                          f"{event.get('s')!r}, expected 'g' (global)")
        if phase == "M" and event.get("name") != "thread_name":
            errors.append(f"{path}: metadata event named "
                          f"{event.get('name')!r}, expected 'thread_name'")


def validate_file(path, schema):
    try:
        with open(path, encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"$: cannot parse: {exc}"]
    errors = []
    check_schema(trace, schema, "$", errors)
    check_semantics(trace, errors)
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(SCHEMA_PATH, encoding="utf-8") as f:
        schema = json.load(f)
    failed = False
    for path in argv[1:]:
        errors = validate_file(path, schema)
        if errors:
            failed = True
            print(f"{path}: INVALID")
            for error in errors[:50]:
                print(f"  {error}")
            if len(errors) > 50:
                print(f"  ... and {len(errors) - 50} more")
        else:
            with open(path, encoding="utf-8") as f:
                count = len(json.load(f)["traceEvents"])
            print(f"{path}: OK ({count} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
