#!/usr/bin/env python3
"""Compare a fresh bench JSON against its checked-in BENCH_* baseline.

Both files are flattened to dot-keys (rows of a "results" list are keyed by
their identifying fields: workload, scheduler, engine, ...).  Every key is
then classified, first match wins:

  ignored — machine-dependent measurements (wall times, throughput,
            contention counters).  Default regex matches `seconds`, `_ns`,
            `mops`, `per_sec`, `_share`, scheduler sleep/steal counters.
  exact   — structural facts that must not drift at all: row counts,
            checksums, task counts, plus every string and boolean.
  banded  — everything else numeric (speedups, ratios): the fresh value
            must lie within --tolerance (relative) of the baseline.

The gate fails (exit 1) on any exact mismatch, out-of-band value, or key
present in the baseline but missing from the fresh run.  Keys only present
in the fresh run are reported but do not fail — benches grow new rows.

Usage:
  check_bench.py BASELINE FRESH [--tolerance 0.15]
                 [--ignore REGEX ...] [--exact REGEX ...] [--verbose]

CI gates all nine checked-in baselines (see .github/workflows/ci.yml
perf-gate for the per-bench flags):
  BENCH_datalog.json   — micro_join: rows/checksums exact
  BENCH_store.json     — micro_store: rows/checksums exact, w8 scaling
                         ratios ungated (runner-core-count dependent)
  BENCH_executor.json  — micro_executor: task counts exact; speedups and
                         hw_concurrency ungated
  BENCH_sched.json     — micro_sched trace mode: pops/ops_total exact
                         (the simulated schedule is deterministic),
                         makespan_us ungated
  BENCH_maint.json     — micro_maint: checksums and maint-op counts exact
                         (maintenance work is deterministic per strategy),
                         cross-strategy ratios banded
  BENCH_pipeline.json  — micro_pipeline: per-cell checksums/rows exact at
                         EVERY pipeline depth K (order independence of the
                         epoch overlap); K-scaling ratios, stall counts and
                         hw_concurrency ungated (runner-core-count
                         dependent — the binary self-gates the >=1.5x bar
                         only on >=4-core hosts)
  BENCH_service.json   — micro_service: per-cell rows/checksums exact (the
                         wire read-back must equal the serial replay for
                         every mode x connection-count cell); latency
                         percentiles (p50_us/p99_us/p999_us), throughput
                         and backpressure_stalls ungated (load-dependent)
  BENCH_meta.json      — micro_meta: sim cells (Theorem-10 meta scheduler)
                         are fully deterministic — makespans, bound ratios,
                         abort flags and peak-memory figures all gated;
                         live cells gate kills/checksums/rows exact while
                         the accounted-memory counters (mem_peak_bytes,
                         mem_deferred, mem_budget_stalls, mem_forced) are
                         dispatch-timing artifacts and stay ungated (the
                         binary itself hard-fails a budget violation)
  BENCH_evolve.json    — micro_evolve: rule-set evolution is deterministic,
                         so evolve/rebuild op counts, cone sizes, program
                         versions and checksums are all exact; the
                         rebuild-vs-evolve ratios are derived figures and
                         ignored (the binary self-gates the small-cone
                         >= 2x bar)

stdlib only; runs anywhere python3 does.
"""

import argparse
import json
import re
import sys

# Fields that identify a row within a "results" list, in identity order.
ID_FIELDS = ("bench", "workload", "scheduler", "engine", "body", "strategy",
             "workers", "mode", "name", "k", "batch", "connections", "rate",
             "zeta", "budget", "kind", "cone")

# `window` covers the executor's adaptive dispatch-window controller
# columns (window_adjusts/final_window) — the controller is fed by wall
# timers, so its decisions are machine-dependent.
DEFAULT_IGNORE = (r"(seconds|_ns\b|_ns$|mops|per_sec|_share|sleeps|wakeups"
                  r"|steals|drains|batch|window)")
DEFAULT_EXACT = r"(rows|checksum|tasks|emitted|count|\bscale\b|bench)"


def flatten(node, prefix, out, dups):
    """Flattens dicts/lists into {dot.key: leaf} with stable row identities.

    Colliding keys are collected into `dups` rather than raised one at a
    time, so a baseline with several under-identified rows reports every
    offender in a single run.
    """
    if isinstance(node, dict):
        for key, value in node.items():
            flatten(value, f"{prefix}.{key}" if prefix else key, out, dups)
    elif isinstance(node, list):
        for i, item in enumerate(node):
            if isinstance(item, dict):
                ident = "/".join(
                    str(item[f]) for f in ID_FIELDS if f in item)
                label = ident if ident else str(i)
            else:
                label = str(i)
            flatten(item, f"{prefix}[{label}]", out, dups)
    else:
        if prefix in out:
            dups.append(prefix)
        out[prefix] = node
    return out


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            dups = []
            flat = flatten(json.load(fh), "", {}, dups)
    except (OSError, ValueError) as err:
        raise SystemExit(f"cannot load {path}: {err}") from err
    if dups:
        listing = "\n".join(f"  duplicate flattened key: {key}"
                            for key in dups)
        raise SystemExit(f"{path}: {len(dups)} duplicate flattened key(s) "
                         f"(results rows need distinguishing id fields)\n"
                         f"{listing}")
    return flat


def classify(key, ignore_res, exact_res):
    for rx in ignore_res:
        if rx.search(key):
            return "ignored"
    for rx in exact_res:
        if rx.search(key):
            return "exact"
    return "banded"


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="checked-in BENCH_*.json")
    parser.add_argument("fresh", help="JSON emitted by a fresh bench run")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="relative band for 'banded' keys (default 0.15)")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="REGEX",
                        help="extra ignore pattern (repeatable)")
    parser.add_argument("--exact", action="append", default=[],
                        metavar="REGEX",
                        help="extra exact pattern (repeatable)")
    parser.add_argument("--verbose", action="store_true",
                        help="print every key with its classification")
    args = parser.parse_args()

    ignore_res = [re.compile(p) for p in [DEFAULT_IGNORE] + args.ignore]
    exact_res = [re.compile(p) for p in [DEFAULT_EXACT] + args.exact]

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    failures = []
    counts = {"ignored": 0, "exact": 0, "banded": 0}

    for key in sorted(baseline):
        kind = classify(key, ignore_res, exact_res)
        base = baseline[key]
        # Strings and booleans are structural no matter the key name.
        if kind != "ignored" and isinstance(base, (str, bool)):
            kind = "exact"
        counts[kind] += 1
        if key not in fresh:
            failures.append(f"MISSING  {key} (baseline: {base!r})")
            continue
        new = fresh[key]
        if args.verbose:
            print(f"  [{kind:7}] {key}: {base!r} -> {new!r}")
        if kind == "ignored":
            continue
        if kind == "exact":
            if new != base:
                failures.append(f"EXACT    {key}: baseline {base!r}, "
                                f"fresh {new!r}")
            continue
        # banded
        if not isinstance(base, (int, float)) or not isinstance(
                new, (int, float)):
            if new != base:
                failures.append(f"TYPE     {key}: baseline {base!r}, "
                                f"fresh {new!r}")
            continue
        if base == 0:
            if abs(new) > args.tolerance:
                failures.append(f"BAND     {key}: baseline 0, fresh {new}")
            continue
        rel = abs(new - base) / abs(base)
        if rel > args.tolerance:
            failures.append(f"BAND     {key}: baseline {base}, fresh {new} "
                            f"({rel:+.0%} vs ±{args.tolerance:.0%})")

    extra = sorted(set(fresh) - set(baseline))
    for key in extra:
        print(f"note: fresh-only key (not gated): {key}")

    total = sum(counts.values())
    print(f"checked {total} baseline keys: {counts['exact']} exact, "
          f"{counts['banded']} banded (±{args.tolerance:.0%}), "
          f"{counts['ignored']} ignored; {len(failures)} failure(s)")
    if failures:
        for line in failures:
            print(f"FAIL {line}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
