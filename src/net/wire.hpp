// The wire protocol: length-prefixed binary frames in front of the service
// layer (docs/WIRE_PROTOCOL.md is the normative spec this file implements).
//
//   frame   = u32 length | u8 opcode | payload      (length covers opcode +
//                                                    payload, so a frame is
//                                                    4 + length bytes)
//   request = u64 request_id | ...                  (every request starts
//                                                    with a client-chosen id;
//                                                    the response echoes it)
//
// All integers are little-endian.  Strings are u32 length + raw bytes.
// Values are a u8 tag (0 = 63-bit int, 1 = symbol) + i64 or string.  The
// codec here is deliberately self-contained — no sockets, no sessions — so
// tests can round-trip and fuzz frames without a server
// (tests/net_test.cpp), and so the client and server cannot disagree on
// the byte layout: both sides call exactly these functions.
//
// Decoding is total: any truncated, oversized, or garbage payload makes
// the Decode* function return false without throwing or crashing — the
// server turns that into an ERROR frame, never into UB.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dsched::net {

/// Frame opcodes.  Requests are < 0x80, responses have the high bit set.
enum class Opcode : std::uint8_t {
  // client -> server
  kOpenSession = 0x01,
  kSubmit = 0x02,
  kQuery = 0x03,
  kCloseSession = 0x04,
  kPing = 0x05,
  kAddRules = 0x06,
  kRemoveRule = 0x07,
  // server -> client
  kSessionOpened = 0x81,
  kSubmitResult = 0x82,
  kQueryResult = 0x83,
  kSessionClosed = 0x84,
  kPong = 0x85,
  kRulesChanged = 0x86,
  kError = 0xFF,
};

/// ERROR frame codes (docs/WIRE_PROTOCOL.md, "Error codes").
enum class ErrorCode : std::uint16_t {
  kBadFrame = 1,     ///< malformed payload for the opcode
  kBadOpcode = 2,    ///< unknown opcode (connection is closed after this)
  kNoSession = 3,    ///< unknown, closed, or closing session id
  kBadProgram = 4,   ///< OpenSession: parse/validation/stratification error
  kBadRequest = 5,   ///< unknown predicate, arity mismatch, value overflow
  kShutdown = 6,     ///< server is stopping
  kUpdateFailed = 7, ///< the cascade threw; the session itself stays live
  kBadRules = 8,     ///< AddRules/RemoveRule rejected; program unchanged
  kIdleTimeout = 9,  ///< connection reaped after the idle deadline
};

/// Hard ceiling on `length`; a frame declaring more is a protocol error
/// (kBadFrame) — the peer is garbage or hostile, not merely chatty.
inline constexpr std::size_t kMaxFrameLength = 1u << 24;  // 16 MiB

/// One wire value: a 63-bit integer or a symbol by name (symbols travel as
/// text because interned ids are private to each session's SymbolTable).
struct WireValue {
  bool is_symbol = false;
  std::int64_t int_value = 0;
  std::string symbol;

  static WireValue Int(std::int64_t v) { return {false, v, {}}; }
  static WireValue Sym(std::string name) {
    return {true, 0, std::move(name)};
  }
  friend bool operator==(const WireValue& a, const WireValue& b) {
    return a.is_symbol == b.is_symbol && a.int_value == b.int_value &&
           a.symbol == b.symbol;
  }
};

using WireTuple = std::vector<WireValue>;

/// One base-fact change inside a SUBMIT frame.
struct WireOp {
  bool is_delete = false;
  std::string predicate;
  WireTuple tuple;
};

// --- request messages (client -> server) ---------------------------------

struct OpenSessionRequest {
  std::uint64_t request_id = 0;
  std::string program;         ///< Datalog source text
  std::string name;            ///< metrics name; empty -> host default
  std::string scheduler_spec;  ///< empty -> host default
  std::string strategy;        ///< empty -> host default
  std::uint32_t queue_capacity = 0;   ///< 0 -> host default
  std::uint32_t pipeline_depth = 0;   ///< 0 -> host default
};

struct SubmitRequest {
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  std::vector<WireOp> ops;
};

struct QueryRequest {
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  std::string predicate;
};

struct CloseSessionRequest {
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
};

struct PingRequest {
  std::uint64_t request_id = 0;
};

/// ADD_RULES: `text` is Datalog source appended to the live program.
struct AddRulesRequest {
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  std::string text;
};

/// REMOVE_RULE: `text` is one clause matched (up to variable renaming)
/// against the live program's rules.
struct RemoveRuleRequest {
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  std::string text;
};

// --- response messages (server -> client) --------------------------------

struct SessionOpenedResponse {
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
};

struct SubmitResultResponse {
  std::uint64_t request_id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t inserted = 0;
  std::uint64_t deleted = 0;
};

struct QueryResultResponse {
  std::uint64_t request_id = 0;
  std::uint16_t arity = 0;
  std::vector<WireTuple> rows;
};

struct SessionClosedResponse {
  std::uint64_t request_id = 0;
};

struct PongResponse {
  std::uint64_t request_id = 0;
};

/// Success response to ADD_RULES / REMOVE_RULE: which epoch the change
/// became, the program version now live, and the cascade's delta totals.
struct RulesChangedResponse {
  std::uint64_t request_id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t program_version = 0;
  std::uint64_t inserted = 0;
  std::uint64_t deleted = 0;
};

struct ErrorResponse {
  std::uint64_t request_id = 0;  ///< 0 when the offending frame had none
  ErrorCode code = ErrorCode::kBadFrame;
  std::string message;
};

// --- primitive writer/reader ---------------------------------------------

/// Append-only little-endian byte builder for one payload.
class WireWriter {
 public:
  void U8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void Str(std::string_view s);
  void Value(const WireValue& v);
  void Tuple(const WireTuple& t);

  [[nodiscard]] const std::string& Bytes() const { return bytes_; }
  [[nodiscard]] std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Bounds-checked cursor over one payload.  Every read past the end (or a
/// string/tuple whose declared size exceeds the remaining bytes) sets the
/// failed flag and returns a zero value — no read ever throws, allocates
/// unbounded memory, or touches out-of-range bytes.
class WireReader {
 public:
  explicit WireReader(std::string_view payload) : data_(payload) {}

  std::uint8_t U8();
  std::uint16_t U16();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  std::string Str();
  WireValue Value();
  WireTuple Tuple();

  [[nodiscard]] bool Failed() const { return failed_; }
  [[nodiscard]] std::size_t Remaining() const { return data_.size() - pos_; }
  /// True iff nothing failed and every payload byte was consumed — the
  /// strictness every Decode* function enforces (trailing bytes reject).
  [[nodiscard]] bool Complete() const { return !failed_ && Remaining() == 0; }

 private:
  bool Need(std::size_t n);
  std::string_view data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// --- frame assembly -------------------------------------------------------

/// Renders a complete frame: u32 length + u8 opcode + payload.
[[nodiscard]] std::string EncodeFrame(Opcode opcode, std::string_view payload);

/// One frame sliced out of a receive buffer (payload points into it).
struct Frame {
  Opcode opcode = Opcode::kPing;
  std::string_view payload;
  std::size_t frame_size = 0;  ///< total bytes to consume from the buffer
};

enum class FrameStatus {
  kNeedMore,  ///< buffer holds a partial frame; read more bytes
  kFrame,     ///< *out holds the next frame
  kError,     ///< unrecoverable framing error (zero/oversized length)
};

/// Extracts the next frame from `buffer` without copying.  `max_length`
/// guards against hostile length prefixes.  kError means the byte stream
/// itself is broken — the connection cannot be resynchronized and must be
/// closed (the opcode inside a well-framed message is NOT validated here).
[[nodiscard]] FrameStatus ExtractFrame(std::string_view buffer, Frame* out,
                                       std::size_t max_length =
                                           kMaxFrameLength);

// --- per-message encode/decode -------------------------------------------
// Encode* renders the complete frame (header included).  Decode* parses a
// payload (frame header already stripped) and returns false on any
// malformed input, leaving *out in an unspecified but valid state.

[[nodiscard]] std::string EncodeOpenSession(const OpenSessionRequest& m);
[[nodiscard]] std::string EncodeSubmit(const SubmitRequest& m);
[[nodiscard]] std::string EncodeQuery(const QueryRequest& m);
[[nodiscard]] std::string EncodeCloseSession(const CloseSessionRequest& m);
[[nodiscard]] std::string EncodePing(const PingRequest& m);
[[nodiscard]] std::string EncodeAddRules(const AddRulesRequest& m);
[[nodiscard]] std::string EncodeRemoveRule(const RemoveRuleRequest& m);
[[nodiscard]] std::string EncodeSessionOpened(const SessionOpenedResponse& m);
[[nodiscard]] std::string EncodeSubmitResult(const SubmitResultResponse& m);
[[nodiscard]] std::string EncodeQueryResult(const QueryResultResponse& m);
[[nodiscard]] std::string EncodeSessionClosed(const SessionClosedResponse& m);
[[nodiscard]] std::string EncodePong(const PongResponse& m);
[[nodiscard]] std::string EncodeRulesChanged(const RulesChangedResponse& m);
[[nodiscard]] std::string EncodeError(const ErrorResponse& m);

[[nodiscard]] bool DecodeOpenSession(std::string_view payload,
                                     OpenSessionRequest* out);
[[nodiscard]] bool DecodeSubmit(std::string_view payload, SubmitRequest* out);
[[nodiscard]] bool DecodeQuery(std::string_view payload, QueryRequest* out);
[[nodiscard]] bool DecodeCloseSession(std::string_view payload,
                                      CloseSessionRequest* out);
[[nodiscard]] bool DecodePing(std::string_view payload, PingRequest* out);
[[nodiscard]] bool DecodeAddRules(std::string_view payload,
                                  AddRulesRequest* out);
[[nodiscard]] bool DecodeRemoveRule(std::string_view payload,
                                    RemoveRuleRequest* out);
[[nodiscard]] bool DecodeSessionOpened(std::string_view payload,
                                       SessionOpenedResponse* out);
[[nodiscard]] bool DecodeSubmitResult(std::string_view payload,
                                      SubmitResultResponse* out);
[[nodiscard]] bool DecodeQueryResult(std::string_view payload,
                                     QueryResultResponse* out);
[[nodiscard]] bool DecodeSessionClosed(std::string_view payload,
                                       SessionClosedResponse* out);
[[nodiscard]] bool DecodePong(std::string_view payload, PongResponse* out);
[[nodiscard]] bool DecodeRulesChanged(std::string_view payload,
                                      RulesChangedResponse* out);
[[nodiscard]] bool DecodeError(std::string_view payload, ErrorResponse* out);

/// Human-readable opcode name for diagnostics ("OPEN_SESSION", ...).
[[nodiscard]] const char* OpcodeName(Opcode opcode);

}  // namespace dsched::net
