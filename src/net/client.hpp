// Blocking client for the wire protocol (docs/WIRE_PROTOCOL.md): a thin
// framing layer over one TCP connection.  Send* methods write a complete
// frame; ReadResponse blocks (with optional timeout) for the next response
// frame, whatever it is — pipelining is the caller's protocol: keep your
// own request-id table and match responses as they arrive.
//
// The Sync helpers are for callers with nothing else in flight: they send,
// then read exactly one response and insist it answers them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/wire.hpp"

namespace dsched::net {

class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient() { Close(); }

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ServiceClient(ServiceClient&& other) noexcept
      : fd_(other.fd_), inbuf_(std::move(other.inbuf_)) {
    other.fd_ = -1;
  }
  ServiceClient& operator=(ServiceClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      inbuf_ = std::move(other.inbuf_);
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connects (blocking) to host:port.  Throws util::Error on failure.
  void Connect(const std::string& host, std::uint16_t port);
  /// Idempotent; further reads return false, further sends throw.
  void Close();
  [[nodiscard]] bool Connected() const { return fd_ >= 0; }

  // --- pipelined sends (blocking full-frame writes) ---------------------
  void SendOpenSession(const OpenSessionRequest& req);
  void SendSubmit(const SubmitRequest& req);
  void SendQuery(const QueryRequest& req);
  void SendCloseSession(const CloseSessionRequest& req);
  void SendPing(const PingRequest& req);
  void SendAddRules(const AddRulesRequest& req);
  void SendRemoveRule(const RemoveRuleRequest& req);
  /// Raw bytes on the wire — tests use this to inject garbage frames.
  void SendRaw(std::string_view bytes);

  /// One decoded response frame; `opcode` selects which member is set.
  struct Response {
    Opcode opcode = Opcode::kError;
    SessionOpenedResponse session_opened;
    SubmitResultResponse submit_result;
    QueryResultResponse query_result;
    SessionClosedResponse session_closed;
    PongResponse pong;
    RulesChangedResponse rules_changed;
    ErrorResponse error;

    /// The echoed request id, whichever member carries it.
    [[nodiscard]] std::uint64_t RequestId() const;
  };

  /// Blocks up to `timeout_ms` (-1 = forever) for the next response frame.
  /// Returns false on timeout or when the server closed the connection.
  /// Throws util::Error on a malformed response (a server bug, not a
  /// recoverable condition).
  bool ReadResponse(Response* out, int timeout_ms = -1);

  // --- sync conveniences (require nothing else in flight) ---------------
  /// OpenSession round trip; returns the new session id.  Throws
  /// util::Error when the server answers ERROR (bad program / options).
  std::uint64_t OpenSessionSync(const OpenSessionRequest& req);
  /// Submit round trip; throws on ERROR.
  SubmitResultResponse SubmitSync(const SubmitRequest& req);
  /// Query round trip; throws on ERROR.
  QueryResultResponse QuerySync(const QueryRequest& req);
  /// CloseSession round trip; throws on ERROR.
  void CloseSessionSync(const CloseSessionRequest& req);
  /// Ping round trip (liveness probe); throws on ERROR or disconnect.
  void PingSync(std::uint64_t request_id);
  /// AddRules round trip; throws on ERROR (kBadRules: program unchanged).
  RulesChangedResponse AddRulesSync(const AddRulesRequest& req);
  /// RemoveRule round trip; throws on ERROR.
  RulesChangedResponse RemoveRuleSync(const RemoveRuleRequest& req);

 private:
  Response AwaitResponse(std::uint64_t request_id, Opcode expect);

  int fd_ = -1;
  std::string inbuf_;
};

}  // namespace dsched::net
