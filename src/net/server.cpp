#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace dsched::net {

namespace {

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Per-round read cap: stay fair across connections under a flood; the
/// kernel keeps the rest and POLLIN fires again next round.
constexpr std::size_t kMaxReadPerRound = 256 * 1024;

}  // namespace

ServiceServer::ServiceServer(service::EngineHost& host, ServerOptions options)
    : host_(host),
      options_(std::move(options)),
      frames_in_(host.Metrics().Get("net.frames_in")),
      frames_out_(host.Metrics().Get("net.frames_out")),
      bytes_in_(host.Metrics().Get("net.bytes_in")),
      bytes_out_(host.Metrics().Get("net.bytes_out")),
      conns_opened_(host.Metrics().Get("net.connections_opened")),
      conns_closed_(host.Metrics().Get("net.connections_closed")),
      backpressure_stalls_(host.Metrics().Get("net.backpressure_stalls")),
      write_stalls_(host.Metrics().Get("net.write_stalls")),
      protocol_errors_(host.Metrics().Get("net.protocol_errors")),
      net_sessions_opened_(host.Metrics().Get("net.sessions_opened")),
      net_sessions_closed_(host.Metrics().Get("net.sessions_closed")),
      idle_reaped_(host.Metrics().Get("net.idle_reaped")) {}

ServiceServer::~ServiceServer() { Stop(); }

void ServiceServer::Start() {
  DSCHED_CHECK_MSG(!started_, "ServiceServer::Start called twice");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw util::Error(Errno("socket"));
  }
  const auto fail = [this](const char* what) {
    const std::string message = Errno(what);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw util::Error(message);
  };
  int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    fail("inet_pton");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    fail("bind");
  }
  if (::listen(listen_fd_, 128) != 0) {
    fail("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  SetNonBlocking(listen_fd_);
  if (::pipe(wake_pipe_) != 0) {
    fail("pipe");
  }
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);
  started_ = true;
  poll_thread_ = std::thread([this] { PollLoop(); });
}

void ServiceServer::Stop() {
  if (!started_ || stopped_) {
    return;
  }
  stopped_ = true;
  stop_.store(true, std::memory_order_release);
  Wake();
  poll_thread_.join();
  // Poll thread is gone: conns_ is ours now.  Say goodbye before hanging
  // up: every live connection gets a best-effort SHUTDOWN error frame, so
  // clients can tell an orderly stop from a dropped peer instead of a
  // bare EOF.  In-flight requests those clients are still waiting on are
  // covered by the same frame (request_id 0 = connection-scoped).
  const std::string goodbye = EncodeError(
      ErrorResponse{0, ErrorCode::kShutdown, "server stopping"});
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0 && !conn.dead) {
      SendFrame(conn, goodbye);
      CloseConnection(conn);  // flushes anything the eager send left over
    } else if (conn.fd >= 0) {
      ::close(conn.fd);
    }
  }
  conns_.clear();
  // Let every pump finish its queued jobs (futures resolve because the
  // sessions are still live), then close the sessions themselves.
  std::vector<SessionEntry*> entries;
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    entries.reserve(sessions_.size());
    for (auto& [id, entry] : sessions_) {
      entries.push_back(entry.get());
    }
  }
  for (SessionEntry* entry : entries) {
    {
      const std::lock_guard<std::mutex> lock(entry->jobs_mutex);
      entry->stop = true;
    }
    entry->jobs_cv.notify_all();
  }
  for (SessionEntry* entry : entries) {
    if (entry->pump.joinable()) {
      entry->pump.join();
    }
  }
  for (SessionEntry* entry : entries) {
    entry->session->Close();
  }
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.clear();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void ServiceServer::Wake() {
  const char byte = 1;
  (void)!::write(wake_pipe_[1], &byte, 1);
}

void ServiceServer::PollLoop() {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> ids;
  while (!stop_.load(std::memory_order_acquire)) {
    DrainDeliveries();
    for (auto it = conns_.begin(); it != conns_.end();) {
      it = it->second.dead ? conns_.erase(it) : std::next(it);
    }
    fds.clear();
    ids.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    const bool accepting = conns_.size() < options_.max_connections;
    fds.push_back(
        pollfd{listen_fd_, static_cast<short>(accepting ? POLLIN : 0), 0});
    bool any_parked = false;
    for (auto& [id, conn] : conns_) {
      int events = 0;
      const bool stalled = conn.outbuf.size() > options_.write_buffer_limit;
      if (!conn.parked && !stalled && !conn.eof) {
        events |= POLLIN;
      }
      if (!conn.outbuf.empty()) {
        events |= POLLOUT;
      }
      any_parked = any_parked || conn.parked.has_value();
      fds.push_back(pollfd{conn.fd, static_cast<short>(events), 0});
      ids.push_back(id);
    }
    // Parked requests have no fd event to wait on — poll with a short
    // timeout and retry them until the session queue admits them.  Idle
    // reaping (when enabled) bounds the timeout too, so a silent fd set
    // still wakes the sweep by the earliest deadline.
    int timeout_ms = -1;
    if (any_parked) {
      timeout_ms = 1;
    } else if (options_.idle_timeout_ms > 0 && !conns_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      std::int64_t next_ms = static_cast<std::int64_t>(
          options_.idle_timeout_ms);
      for (const auto& [id, conn] : conns_) {
        const std::int64_t remaining =
            static_cast<std::int64_t>(options_.idle_timeout_ms) -
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - conn.last_activity)
                .count();
        next_ms = std::min(next_ms, remaining);
      }
      timeout_ms = static_cast<int>(std::max<std::int64_t>(next_ms, 1));
    }
    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                             timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      char sink[256];
      while (::read(wake_pipe_[0], sink, sizeof(sink)) > 0) {
      }
    }
    if ((fds[1].revents & POLLIN) != 0) {
      AcceptReady();
    }
    for (std::size_t i = 2; i < fds.size(); ++i) {
      auto it = conns_.find(ids[i - 2]);
      if (it == conns_.end() || it->second.dead) {
        continue;
      }
      Connection& conn = it->second;
      if ((fds[i].revents & POLLOUT) != 0) {
        WriteReady(conn);
      }
      if (!conn.dead && (fds[i].revents & POLLIN) != 0) {
        ReadReady(conn);
      } else if (!conn.dead &&
                 (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        CloseConnection(conn);
      }
    }
    for (auto& [id, conn] : conns_) {
      if (!conn.dead && conn.parked) {
        RetryParked(conn);
      }
    }
    if (options_.idle_timeout_ms > 0) {
      ReapIdle(std::chrono::steady_clock::now());
    }
  }
}

void ServiceServer::ReapIdle(std::chrono::steady_clock::time_point now) {
  const auto deadline = std::chrono::milliseconds(options_.idle_timeout_ms);
  for (auto& [id, conn] : conns_) {
    // Idle means NOTHING is happening on the connection: no byte traffic
    // since the deadline, no parked request waiting for queue space, no
    // dispatched response still in flight, nothing left to flush.  A slow
    // cascade the client is legitimately waiting on keeps inflight > 0,
    // so it never trips this.
    if (conn.dead || conn.parked || conn.inflight > 0 ||
        !conn.outbuf.empty() || now - conn.last_activity < deadline) {
      continue;
    }
    idle_reaped_.fetch_add(1, std::memory_order_relaxed);
    OBS_COUNTER(Category::kNetIdleReap, 1);
    SendError(conn, 0, ErrorCode::kIdleTimeout,
              "connection idle past " +
                  std::to_string(options_.idle_timeout_ms) + "ms");
    CloseConnection(conn);
  }
}

void ServiceServer::AcceptReady() {
  while (conns_.size() < options_.max_connections) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      break;  // EAGAIN (drained) or transient error; poll again next round
    }
    SetNonBlocking(fd);
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t id = next_conn_id_++;
    Connection& conn = conns_[id];
    conn.fd = fd;
    conn.id = id;
    conn.last_activity = std::chrono::steady_clock::now();
    conns_opened_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServiceServer::ReadReady(Connection& conn) {
  OBS_SCOPE(Category::kNetRead);
  char buf[65536];
  std::size_t read_this_round = 0;
  while (read_this_round < kMaxReadPerRound) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.inbuf.append(buf, static_cast<std::size_t>(n));
      conn.last_activity = std::chrono::steady_clock::now();
      bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
      read_this_round += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      conn.eof = true;  // half-close: finish the buffered frames first
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    conn.eof = true;  // ECONNRESET and friends
    break;
  }
  ProcessInbuf(conn);
}

void ServiceServer::ProcessInbuf(Connection& conn) {
  while (!conn.dead && !conn.parked) {
    Frame frame;
    const FrameStatus status =
        ExtractFrame(conn.inbuf, &frame, options_.max_frame_length);
    if (status == FrameStatus::kNeedMore) {
      break;
    }
    if (status == FrameStatus::kError) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, 0, ErrorCode::kBadFrame,
                "unrecoverable framing error (zero or oversized length)");
      CloseConnection(conn);
      return;
    }
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    OBS_COUNTER(Category::kNetFrameIn, 1);
    const std::size_t consumed = frame.frame_size;
    DispatchFrame(conn, frame);  // frame.payload aliases inbuf: use, then
    conn.inbuf.erase(0, consumed);  // erase
  }
  if (conn.eof && !conn.dead && !conn.parked) {
    CloseConnection(conn);  // any trailing partial frame dies with the peer
  }
}

void ServiceServer::DispatchFrame(Connection& conn, const Frame& frame) {
  switch (frame.opcode) {
    case Opcode::kPing: {
      // Answered inline on the poll thread: a PONG legitimately overtakes
      // any in-flight SUBMIT_RESULT (the pipelining the protocol promises).
      PingRequest req;
      if (!DecodePing(frame.payload, &req)) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, 0, ErrorCode::kBadFrame, "malformed PING payload");
        return;
      }
      SendFrame(conn, EncodePong(PongResponse{req.request_id}));
      return;
    }
    case Opcode::kOpenSession:
      HandleOpenSession(conn, frame.payload);
      return;
    case Opcode::kSubmit:
      HandleSubmit(conn, frame.payload);
      return;
    case Opcode::kQuery:
      HandleQuery(conn, frame.payload);
      return;
    case Opcode::kCloseSession:
      HandleCloseSession(conn, frame.payload);
      return;
    case Opcode::kAddRules:
      HandleEvolve(conn, frame.payload,
                   service::UpdateQueue::Kind::kAddRules);
      return;
    case Opcode::kRemoveRule:
      HandleEvolve(conn, frame.payload,
                   service::UpdateQueue::Kind::kRemoveRule);
      return;
    default:
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, 0, ErrorCode::kBadOpcode,
                "unknown opcode; closing connection");
      CloseConnection(conn);
      return;
  }
}

void ServiceServer::HandleOpenSession(Connection& conn,
                                      std::string_view payload) {
  OpenSessionRequest req;
  if (!DecodeOpenSession(payload, &req)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, 0, ErrorCode::kBadFrame, "malformed OPEN_SESSION payload");
    return;
  }
  service::SessionOptions opts;
  opts.name = req.name;
  opts.scheduler_spec = req.scheduler_spec;
  opts.maintenance_strategy = req.strategy;
  opts.queue_capacity = req.queue_capacity;
  opts.pipeline_depth = req.pipeline_depth;
  std::shared_ptr<service::Session> session;
  try {
    session = host_.OpenSession(req.program, opts);
  } catch (const util::Error& e) {
    SendError(conn, req.request_id, ErrorCode::kBadProgram, e.what());
    return;
  }
  // Wire sessions start from an empty base (base facts arrive via SUBMIT);
  // materializing the empty fixpoint arms Submit.
  session->Materialize();
  const std::uint64_t session_id = session->Id();
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto& slot = sessions_[session_id];
    slot = std::make_unique<SessionEntry>();
    slot->session = std::move(session);
    SessionEntry* raw = slot.get();
    raw->pump = std::thread([this, raw] { PumpLoop(*raw); });
  }
  net_sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  SendFrame(conn, EncodeSessionOpened(SessionOpenedResponse{
                      req.request_id, session_id}));
}

ServiceServer::SessionEntry* ServiceServer::RouteSession(
    std::uint64_t session_id) {
  // FindSession is the liveness gate: a closed (or closing, or foreign)
  // id misses and the caller answers NO_SESSION.
  std::shared_ptr<service::Session> session = host_.FindSession(session_id);
  if (session == nullptr) {
    return nullptr;
  }
  const std::lock_guard<std::mutex> lock(sessions_mutex_);
  auto& slot = sessions_[session_id];
  if (slot == nullptr) {
    // Live session the server has not routed to before (opened in-process
    // by the embedding application): adopt it with its own pump.
    slot = std::make_unique<SessionEntry>();
    slot->session = std::move(session);
    SessionEntry* raw = slot.get();
    raw->pump = std::thread([this, raw] { PumpLoop(*raw); });
  }
  return slot.get();
}

datalog::UpdateRequest ServiceServer::TranslateOps(
    SessionEntry& entry, const std::vector<WireOp>& ops) {
  // ONE snapshot acquire per dispatch: a concurrent ADD_RULES can swap the
  // compiled program between any two statements here, so every read below
  // goes through this pin (predicate and symbol ids are stable across
  // versions, so a batch translated against version V applies unchanged
  // under V+1).
  const std::shared_ptr<const datalog::CompiledProgram> snap =
      entry.session->Db().Snapshot();
  const datalog::Program& program = snap->program;
  datalog::UpdateRequest update;
  for (const WireOp& op : ops) {
    const std::uint32_t pred = program.PredicateId(op.predicate);
    if (program.predicate_arities[pred] != op.tuple.size()) {
      throw util::InvalidArgument(
          "arity mismatch for '" + op.predicate + "': got " +
          std::to_string(op.tuple.size()) + ", declared " +
          std::to_string(program.predicate_arities[pred]));
    }
    datalog::Tuple tuple;
    tuple.reserve(op.tuple.size());
    for (const WireValue& v : op.tuple) {
      if (v.is_symbol) {
        const std::lock_guard<std::mutex> lock(entry.sym_mutex);
        tuple.push_back(entry.session->Sym(v.symbol));
      } else {
        tuple.push_back(datalog::Value::Int(v.int_value));
      }
    }
    auto& side = op.is_delete ? update.deletions : update.insertions;
    side.emplace_back(pred, std::move(tuple));
  }
  return update;
}

void ServiceServer::HandleSubmit(Connection& conn, std::string_view payload) {
  SubmitRequest req;
  if (!DecodeSubmit(payload, &req)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, 0, ErrorCode::kBadFrame, "malformed SUBMIT payload");
    return;
  }
  SessionEntry* entry = RouteSession(req.session_id);
  if (entry == nullptr) {
    SendError(conn, req.request_id, ErrorCode::kNoSession,
              "no live session " + std::to_string(req.session_id));
    return;
  }
  datalog::UpdateRequest update;
  try {
    update = TranslateOps(*entry, req.ops);
  } catch (const util::Error& e) {
    SendError(conn, req.request_id, ErrorCode::kBadRequest, e.what());
    return;
  }
  std::future<service::UpdateOutcome> future;
  bool admitted = false;
  try {
    // TrySubmit consumes its argument either way; keep the original so a
    // declined submit can be parked and retried.
    datalog::UpdateRequest attempt = update;
    admitted = entry->session->TrySubmit(std::move(attempt), &future);
  } catch (const util::Error&) {
    SendError(conn, req.request_id, ErrorCode::kNoSession,
              "session is closed");
    return;
  }
  if (!admitted) {
    // UpdateQueue is at its bound: park the translated batch on this
    // connection and stop reading it — kernel TCP backpressure reaches the
    // client, composing the wire bound with the session bound.
    ParkedRequest parked;
    parked.kind = service::UpdateQueue::Kind::kUpdate;
    parked.request_id = req.request_id;
    parked.session_id = req.session_id;
    parked.request = std::move(update);
    conn.parked = std::move(parked);
    backpressure_stalls_.fetch_add(1, std::memory_order_relaxed);
    OBS_COUNTER(Category::kNetBackpressure, 1);
    return;
  }
  PumpJob job;
  job.kind = PumpJob::Kind::kSubmit;
  job.conn_id = conn.id;
  job.request_id = req.request_id;
  job.future = std::move(future);
  EnqueueJob(conn, *entry, std::move(job));
}

void ServiceServer::HandleEvolve(Connection& conn, std::string_view payload,
                                 service::UpdateQueue::Kind kind) {
  const bool add = kind == service::UpdateQueue::Kind::kAddRules;
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  std::string text;
  if (add) {
    AddRulesRequest req;
    if (!DecodeAddRules(payload, &req)) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, 0, ErrorCode::kBadFrame, "malformed ADD_RULES payload");
      return;
    }
    request_id = req.request_id;
    session_id = req.session_id;
    text = std::move(req.text);
  } else {
    RemoveRuleRequest req;
    if (!DecodeRemoveRule(payload, &req)) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, 0, ErrorCode::kBadFrame,
                "malformed REMOVE_RULE payload");
      return;
    }
    request_id = req.request_id;
    session_id = req.session_id;
    text = std::move(req.text);
  }
  SessionEntry* entry = RouteSession(session_id);
  if (entry == nullptr) {
    SendError(conn, request_id, ErrorCode::kNoSession,
              "no live session " + std::to_string(session_id));
    return;
  }
  std::future<service::UpdateOutcome> future;
  bool admitted = false;
  try {
    admitted = add ? entry->session->TryEvolveAddRules(text, &future)
                   : entry->session->TryEvolveRemoveRule(text, &future);
  } catch (const util::Error&) {
    SendError(conn, request_id, ErrorCode::kNoSession, "session is closed");
    return;
  }
  if (!admitted) {
    // Same backpressure as SUBMIT: park the evolve and stop reading until
    // the session queue admits it.
    ParkedRequest parked;
    parked.kind = kind;
    parked.request_id = request_id;
    parked.session_id = session_id;
    parked.text = std::move(text);
    conn.parked = std::move(parked);
    backpressure_stalls_.fetch_add(1, std::memory_order_relaxed);
    OBS_COUNTER(Category::kNetBackpressure, 1);
    return;
  }
  PumpJob job;
  job.kind = PumpJob::Kind::kEvolve;
  job.conn_id = conn.id;
  job.request_id = request_id;
  job.future = std::move(future);
  EnqueueJob(conn, *entry, std::move(job));
}

void ServiceServer::RetryParked(Connection& conn) {
  ParkedRequest& parked = *conn.parked;
  const bool is_update = parked.kind == service::UpdateQueue::Kind::kUpdate;
  SessionEntry* entry = RouteSession(parked.session_id);
  if (entry == nullptr) {
    SendError(conn, parked.request_id, ErrorCode::kNoSession,
              "session closed while request was parked");
    conn.parked.reset();
    ProcessInbuf(conn);
    return;
  }
  std::future<service::UpdateOutcome> future;
  bool admitted = false;
  try {
    if (is_update) {
      datalog::UpdateRequest attempt = parked.request;
      admitted = entry->session->TrySubmit(std::move(attempt), &future);
    } else if (parked.kind == service::UpdateQueue::Kind::kAddRules) {
      admitted = entry->session->TryEvolveAddRules(parked.text, &future);
    } else {
      admitted = entry->session->TryEvolveRemoveRule(parked.text, &future);
    }
  } catch (const util::Error&) {
    SendError(conn, parked.request_id, ErrorCode::kNoSession,
              "session closed while request was parked");
    conn.parked.reset();
    ProcessInbuf(conn);
    return;
  }
  if (!admitted) {
    return;  // still full; next poll round retries
  }
  PumpJob job;
  job.kind = is_update ? PumpJob::Kind::kSubmit : PumpJob::Kind::kEvolve;
  job.conn_id = conn.id;
  job.request_id = parked.request_id;
  job.future = std::move(future);
  conn.parked.reset();
  EnqueueJob(conn, *entry, std::move(job));
  ProcessInbuf(conn);  // resume the frames queued up behind the stall
}

void ServiceServer::HandleQuery(Connection& conn, std::string_view payload) {
  QueryRequest req;
  if (!DecodeQuery(payload, &req)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, 0, ErrorCode::kBadFrame, "malformed QUERY payload");
    return;
  }
  SessionEntry* entry = RouteSession(req.session_id);
  if (entry == nullptr) {
    SendError(conn, req.request_id, ErrorCode::kNoSession,
              "no live session " + std::to_string(req.session_id));
    return;
  }
  PumpJob job;
  job.kind = PumpJob::Kind::kQuery;
  job.conn_id = conn.id;
  job.request_id = req.request_id;
  job.predicate = std::move(req.predicate);
  EnqueueJob(conn, *entry, std::move(job));
}

void ServiceServer::HandleCloseSession(Connection& conn,
                                       std::string_view payload) {
  CloseSessionRequest req;
  if (!DecodeCloseSession(payload, &req)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, 0, ErrorCode::kBadFrame,
              "malformed CLOSE_SESSION payload");
    return;
  }
  SessionEntry* entry = RouteSession(req.session_id);
  if (entry == nullptr) {
    SendError(conn, req.request_id, ErrorCode::kNoSession,
              "no live session " + std::to_string(req.session_id));
    return;
  }
  PumpJob job;
  job.kind = PumpJob::Kind::kClose;
  job.conn_id = conn.id;
  job.request_id = req.request_id;
  EnqueueJob(conn, *entry, std::move(job));
}

void ServiceServer::EnqueueJob(Connection& conn, SessionEntry& entry,
                               PumpJob job) {
  // Every pump job produces exactly one delivery frame; the inflight count
  // (decremented in DrainDeliveries) keeps the idle reaper off connections
  // that are merely waiting on a slow cascade.
  ++conn.inflight;
  {
    const std::lock_guard<std::mutex> lock(entry.jobs_mutex);
    entry.jobs.push_back(std::move(job));
  }
  entry.jobs_cv.notify_one();
}

void ServiceServer::PumpLoop(SessionEntry& entry) {
  while (true) {
    PumpJob job;
    {
      std::unique_lock<std::mutex> lock(entry.jobs_mutex);
      entry.jobs_cv.wait(
          lock, [&entry] { return entry.stop || !entry.jobs.empty(); });
      if (entry.jobs.empty()) {
        return;  // stop && drained
      }
      job = std::move(entry.jobs.front());
      entry.jobs.pop_front();
    }
    switch (job.kind) {
      case PumpJob::Kind::kSubmit: {
        // FIFO get() is safe: the poll thread enqueues submits in the
        // order it called TrySubmit, so epochs — and future resolution,
        // which is dense per DESIGN.md §12 — arrive in exactly this order.
        try {
          const service::UpdateOutcome outcome = job.future.get();
          DeliverFromPump(
              job.conn_id,
              EncodeSubmitResult(SubmitResultResponse{
                  job.request_id, outcome.epoch,
                  static_cast<std::uint64_t>(outcome.update.total_inserted),
                  static_cast<std::uint64_t>(outcome.update.total_deleted)}));
        } catch (const std::exception& e) {
          DeliverFromPump(job.conn_id,
                          EncodeError(ErrorResponse{
                              job.request_id, ErrorCode::kUpdateFailed,
                              e.what()}));
        }
        break;
      }
      case PumpJob::Kind::kQuery: {
        try {
          const std::vector<datalog::Tuple> rows =
              entry.session->Query(job.predicate);
          // Pin the program once for the whole render: an evolve swap on a
          // session apply thread would otherwise free the compiled program
          // out from under these reads.
          const std::shared_ptr<const datalog::CompiledProgram> snap =
              entry.session->Db().Snapshot();
          const datalog::Program& program = snap->program;
          QueryResultResponse resp;
          resp.request_id = job.request_id;
          resp.arity = static_cast<std::uint16_t>(
              program.predicate_arities[program.PredicateId(job.predicate)]);
          resp.rows.reserve(rows.size());
          {
            // Symbol names render under the session's net-side symbol
            // lock: a concurrent SUBMIT on the poll thread may intern,
            // which can reallocate the table's storage.
            const std::lock_guard<std::mutex> lock(entry.sym_mutex);
            for (const datalog::Tuple& row : rows) {
              WireTuple out;
              out.reserve(row.size());
              for (const datalog::Value v : row) {
                if (v.IsSymbol()) {
                  out.push_back(
                      WireValue::Sym(program.symbols.NameOf(v.AsSymbol())));
                } else {
                  out.push_back(WireValue::Int(v.AsInt()));
                }
              }
              resp.rows.push_back(std::move(out));
            }
          }
          DeliverFromPump(job.conn_id, EncodeQueryResult(resp));
        } catch (const util::Error& e) {
          DeliverFromPump(job.conn_id,
                          EncodeError(ErrorResponse{
                              job.request_id, ErrorCode::kBadRequest,
                              e.what()}));
        }
        break;
      }
      case PumpJob::Kind::kEvolve: {
        // Same dense-resolution argument as kSubmit: evolve epochs ride
        // the session's FIFO, so get() here never reorders responses.
        try {
          const service::UpdateOutcome outcome = job.future.get();
          DeliverFromPump(
              job.conn_id,
              EncodeRulesChanged(RulesChangedResponse{
                  job.request_id, outcome.epoch, outcome.program_version,
                  static_cast<std::uint64_t>(outcome.update.total_inserted),
                  static_cast<std::uint64_t>(outcome.update.total_deleted)}));
        } catch (const std::exception& e) {
          // A rejected change left the program untouched — tell the client
          // which rule text the engine refused.
          DeliverFromPump(job.conn_id,
                          EncodeError(ErrorResponse{
                              job.request_id, ErrorCode::kBadRules,
                              e.what()}));
        }
        break;
      }
      case PumpJob::Kind::kClose: {
        entry.session->Close();  // unregisters first: routes now miss
        net_sessions_closed_.fetch_add(1, std::memory_order_relaxed);
        DeliverFromPump(job.conn_id, EncodeSessionClosed(SessionClosedResponse{
                                         job.request_id}));
        break;
      }
    }
  }
}

void ServiceServer::DeliverFromPump(std::uint64_t conn_id, std::string frame) {
  {
    const std::lock_guard<std::mutex> lock(delivery_mutex_);
    deliveries_.emplace_back(conn_id, std::move(frame));
  }
  Wake();
}

void ServiceServer::DrainDeliveries() {
  std::vector<std::pair<std::uint64_t, std::string>> batch;
  {
    const std::lock_guard<std::mutex> lock(delivery_mutex_);
    batch.swap(deliveries_);
  }
  for (auto& [conn_id, frame] : batch) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) {
      continue;  // client vanished mid-flight; its session drained anyway
    }
    if (it->second.inflight > 0) {
      --it->second.inflight;
    }
    if (it->second.dead) {
      continue;
    }
    SendFrame(it->second, std::move(frame));
  }
}

void ServiceServer::SendFrame(Connection& conn, std::string frame) {
  if (conn.dead) {
    return;
  }
  const bool was_stalled = conn.outbuf.size() > options_.write_buffer_limit;
  conn.outbuf += frame;
  conn.last_activity = std::chrono::steady_clock::now();
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  OBS_COUNTER(Category::kNetFrameOut, 1);
  WriteReady(conn);  // eager flush; leftovers wait for POLLOUT
  if (!conn.dead && !was_stalled &&
      conn.outbuf.size() > options_.write_buffer_limit) {
    write_stalls_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServiceServer::SendError(Connection& conn, std::uint64_t request_id,
                              ErrorCode code, std::string message) {
  // protocol_errors_ is charged at the decode sites, not here — ERRORs
  // like kNoSession/kBadRequest are well-formed protocol traffic.
  SendFrame(conn, EncodeError(ErrorResponse{request_id, code,
                                            std::move(message)}));
}

void ServiceServer::WriteReady(Connection& conn) {
  OBS_SCOPE(Category::kNetWrite);
  while (!conn.outbuf.empty()) {
    const ssize_t n = ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                           std::memory_order_relaxed);
      conn.outbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    CloseConnection(conn);
    return;
  }
}

void ServiceServer::CloseConnection(Connection& conn) {
  if (conn.dead) {
    return;
  }
  conn.dead = true;
  if (!conn.outbuf.empty()) {
    // One best-effort goodbye (the final ERROR frame, usually); anything
    // the kernel declines is gone.
    (void)!::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(),
                  MSG_NOSIGNAL);
  }
  ::close(conn.fd);
  conn.fd = -1;
  conn.outbuf.clear();
  conn.inbuf.clear();
  conns_closed_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace dsched::net
