#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace dsched::net {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

void ServiceClient::Connect(const std::string& host, std::uint16_t port) {
  DSCHED_CHECK_MSG(fd_ < 0, "already connected");
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw util::Error(Errno("socket"));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    throw util::Error("bad address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message = Errno("connect");
    Close();
    throw util::Error(message);
  }
  int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void ServiceClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

void ServiceClient::SendRaw(std::string_view bytes) {
  DSCHED_CHECK_MSG(fd_ >= 0, "not connected");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw util::Error(Errno("send"));
    }
    sent += static_cast<std::size_t>(n);
  }
}

void ServiceClient::SendOpenSession(const OpenSessionRequest& req) {
  SendRaw(EncodeOpenSession(req));
}
void ServiceClient::SendSubmit(const SubmitRequest& req) {
  SendRaw(EncodeSubmit(req));
}
void ServiceClient::SendQuery(const QueryRequest& req) {
  SendRaw(EncodeQuery(req));
}
void ServiceClient::SendCloseSession(const CloseSessionRequest& req) {
  SendRaw(EncodeCloseSession(req));
}
void ServiceClient::SendPing(const PingRequest& req) {
  SendRaw(EncodePing(req));
}
void ServiceClient::SendAddRules(const AddRulesRequest& req) {
  SendRaw(EncodeAddRules(req));
}
void ServiceClient::SendRemoveRule(const RemoveRuleRequest& req) {
  SendRaw(EncodeRemoveRule(req));
}

std::uint64_t ServiceClient::Response::RequestId() const {
  switch (opcode) {
    case Opcode::kSessionOpened:
      return session_opened.request_id;
    case Opcode::kSubmitResult:
      return submit_result.request_id;
    case Opcode::kQueryResult:
      return query_result.request_id;
    case Opcode::kSessionClosed:
      return session_closed.request_id;
    case Opcode::kPong:
      return pong.request_id;
    case Opcode::kRulesChanged:
      return rules_changed.request_id;
    case Opcode::kError:
      return error.request_id;
    default:
      return 0;
  }
}

bool ServiceClient::ReadResponse(Response* out, int timeout_ms) {
  while (true) {
    Frame frame;
    const FrameStatus status = ExtractFrame(inbuf_, &frame);
    if (status == FrameStatus::kError) {
      throw util::Error("malformed response frame from server");
    }
    if (status == FrameStatus::kFrame) {
      bool ok = false;
      switch (frame.opcode) {
        case Opcode::kSessionOpened:
          ok = DecodeSessionOpened(frame.payload, &out->session_opened);
          break;
        case Opcode::kSubmitResult:
          ok = DecodeSubmitResult(frame.payload, &out->submit_result);
          break;
        case Opcode::kQueryResult:
          ok = DecodeQueryResult(frame.payload, &out->query_result);
          break;
        case Opcode::kSessionClosed:
          ok = DecodeSessionClosed(frame.payload, &out->session_closed);
          break;
        case Opcode::kPong:
          ok = DecodePong(frame.payload, &out->pong);
          break;
        case Opcode::kRulesChanged:
          ok = DecodeRulesChanged(frame.payload, &out->rules_changed);
          break;
        case Opcode::kError:
          ok = DecodeError(frame.payload, &out->error);
          break;
        default:
          ok = false;
          break;
      }
      if (!ok) {
        throw util::Error(std::string("malformed ") +
                          OpcodeName(frame.opcode) + " response payload");
      }
      out->opcode = frame.opcode;
      inbuf_.erase(0, frame.frame_size);
      return true;
    }
    // kNeedMore: wait for bytes.
    if (fd_ < 0) {
      return false;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      return false;  // timeout
    }
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw util::Error(Errno("poll"));
    }
    char buf[65536];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n == 0) {
      return false;  // server closed the connection
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw util::Error(Errno("read"));
    }
    inbuf_.append(buf, static_cast<std::size_t>(n));
  }
}

ServiceClient::Response ServiceClient::AwaitResponse(std::uint64_t request_id,
                                                     Opcode expect) {
  Response resp;
  if (!ReadResponse(&resp)) {
    throw util::Error("connection closed while awaiting response");
  }
  if (resp.opcode == Opcode::kError) {
    throw util::Error(std::string("server error (") +
                      std::to_string(static_cast<int>(resp.error.code)) +
                      "): " + resp.error.message);
  }
  DSCHED_CHECK_MSG(resp.opcode == expect && resp.RequestId() == request_id,
                   "out-of-order response to a sync call — requests were "
                   "still in flight");
  return resp;
}

std::uint64_t ServiceClient::OpenSessionSync(const OpenSessionRequest& req) {
  SendOpenSession(req);
  return AwaitResponse(req.request_id, Opcode::kSessionOpened)
      .session_opened.session_id;
}

SubmitResultResponse ServiceClient::SubmitSync(const SubmitRequest& req) {
  SendSubmit(req);
  return AwaitResponse(req.request_id, Opcode::kSubmitResult).submit_result;
}

QueryResultResponse ServiceClient::QuerySync(const QueryRequest& req) {
  SendQuery(req);
  return AwaitResponse(req.request_id, Opcode::kQueryResult).query_result;
}

void ServiceClient::CloseSessionSync(const CloseSessionRequest& req) {
  SendCloseSession(req);
  (void)AwaitResponse(req.request_id, Opcode::kSessionClosed);
}

void ServiceClient::PingSync(std::uint64_t request_id) {
  SendPing(PingRequest{request_id});
  (void)AwaitResponse(request_id, Opcode::kPong);
}

RulesChangedResponse ServiceClient::AddRulesSync(const AddRulesRequest& req) {
  SendAddRules(req);
  return AwaitResponse(req.request_id, Opcode::kRulesChanged).rules_changed;
}

RulesChangedResponse ServiceClient::RemoveRuleSync(
    const RemoveRuleRequest& req) {
  SendRemoveRule(req);
  return AwaitResponse(req.request_id, Opcode::kRulesChanged).rules_changed;
}

}  // namespace dsched::net
