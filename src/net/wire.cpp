#include "net/wire.hpp"

namespace dsched::net {

// --- writer ---------------------------------------------------------------

void WireWriter::U16(std::uint16_t v) {
  U8(static_cast<std::uint8_t>(v & 0xFF));
  U8(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::U32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    U8(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void WireWriter::U64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    U8(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void WireWriter::Str(std::string_view s) {
  U32(static_cast<std::uint32_t>(s.size()));
  bytes_.append(s);
}

void WireWriter::Value(const WireValue& v) {
  if (v.is_symbol) {
    U8(1);
    Str(v.symbol);
  } else {
    U8(0);
    I64(v.int_value);
  }
}

void WireWriter::Tuple(const WireTuple& t) {
  U16(static_cast<std::uint16_t>(t.size()));
  for (const WireValue& v : t) {
    Value(v);
  }
}

// --- reader ---------------------------------------------------------------

bool WireReader::Need(std::size_t n) {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::uint8_t WireReader::U8() {
  if (!Need(1)) {
    return 0;
  }
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t WireReader::U16() {
  if (!Need(2)) {
    return 0;
  }
  std::uint16_t v = 0;
  for (int shift = 0; shift < 16; shift += 8) {
    v = static_cast<std::uint16_t>(
        v | static_cast<std::uint16_t>(
                static_cast<std::uint8_t>(data_[pos_++]))
                << shift);
  }
  return v;
}

std::uint32_t WireReader::U32() {
  if (!Need(4)) {
    return 0;
  }
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_++]))
         << shift;
  }
  return v;
}

std::uint64_t WireReader::U64() {
  if (!Need(8)) {
    return 0;
  }
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_++]))
         << shift;
  }
  return v;
}

std::string WireReader::Str() {
  const std::uint32_t len = U32();
  // Checking against Remaining() BEFORE allocating means a hostile length
  // prefix cannot drive an allocation larger than the frame itself.
  if (!Need(len)) {
    return {};
  }
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

WireValue WireReader::Value() {
  WireValue v;
  const std::uint8_t tag = U8();
  if (tag == 0) {
    v.int_value = I64();
  } else if (tag == 1) {
    v.is_symbol = true;
    v.symbol = Str();
  } else {
    failed_ = true;
  }
  return v;
}

WireTuple WireReader::Tuple() {
  WireTuple t;
  const std::uint16_t arity = U16();
  // Every value is at least 2 bytes (tag + something), so an arity the
  // remaining bytes cannot hold fails fast instead of looping.
  if (!Need(arity * 2u)) {
    return t;
  }
  t.reserve(arity);
  for (std::uint16_t i = 0; i < arity && !failed_; ++i) {
    t.push_back(Value());
  }
  return t;
}

// --- frame assembly -------------------------------------------------------

std::string EncodeFrame(Opcode opcode, std::string_view payload) {
  WireWriter header;
  header.U32(static_cast<std::uint32_t>(payload.size() + 1));
  header.U8(static_cast<std::uint8_t>(opcode));
  std::string frame = header.Take();
  frame.append(payload);
  return frame;
}

FrameStatus ExtractFrame(std::string_view buffer, Frame* out,
                         std::size_t max_length) {
  if (buffer.size() < 4) {
    return FrameStatus::kNeedMore;
  }
  std::uint32_t length = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    length |= static_cast<std::uint32_t>(
                  static_cast<std::uint8_t>(buffer[static_cast<std::size_t>(
                      shift / 8)]))
              << shift;
  }
  if (length == 0 || length > max_length) {
    return FrameStatus::kError;  // no opcode byte / hostile length prefix
  }
  if (buffer.size() < 4u + length) {
    return FrameStatus::kNeedMore;
  }
  out->opcode = static_cast<Opcode>(static_cast<std::uint8_t>(buffer[4]));
  out->payload = buffer.substr(5, length - 1);
  out->frame_size = 4u + length;
  return FrameStatus::kFrame;
}

// --- per-message encode ---------------------------------------------------

std::string EncodeOpenSession(const OpenSessionRequest& m) {
  WireWriter w;
  w.U64(m.request_id);
  w.Str(m.program);
  w.Str(m.name);
  w.Str(m.scheduler_spec);
  w.Str(m.strategy);
  w.U32(m.queue_capacity);
  w.U32(m.pipeline_depth);
  return EncodeFrame(Opcode::kOpenSession, w.Bytes());
}

std::string EncodeSubmit(const SubmitRequest& m) {
  WireWriter w;
  w.U64(m.request_id);
  w.U64(m.session_id);
  w.U32(static_cast<std::uint32_t>(m.ops.size()));
  for (const WireOp& op : m.ops) {
    w.U8(op.is_delete ? 1 : 0);
    w.Str(op.predicate);
    w.Tuple(op.tuple);
  }
  return EncodeFrame(Opcode::kSubmit, w.Bytes());
}

std::string EncodeQuery(const QueryRequest& m) {
  WireWriter w;
  w.U64(m.request_id);
  w.U64(m.session_id);
  w.Str(m.predicate);
  return EncodeFrame(Opcode::kQuery, w.Bytes());
}

std::string EncodeCloseSession(const CloseSessionRequest& m) {
  WireWriter w;
  w.U64(m.request_id);
  w.U64(m.session_id);
  return EncodeFrame(Opcode::kCloseSession, w.Bytes());
}

std::string EncodePing(const PingRequest& m) {
  WireWriter w;
  w.U64(m.request_id);
  return EncodeFrame(Opcode::kPing, w.Bytes());
}

std::string EncodeAddRules(const AddRulesRequest& m) {
  WireWriter w;
  w.U64(m.request_id);
  w.U64(m.session_id);
  w.Str(m.text);
  return EncodeFrame(Opcode::kAddRules, w.Bytes());
}

std::string EncodeRemoveRule(const RemoveRuleRequest& m) {
  WireWriter w;
  w.U64(m.request_id);
  w.U64(m.session_id);
  w.Str(m.text);
  return EncodeFrame(Opcode::kRemoveRule, w.Bytes());
}

std::string EncodeSessionOpened(const SessionOpenedResponse& m) {
  WireWriter w;
  w.U64(m.request_id);
  w.U64(m.session_id);
  return EncodeFrame(Opcode::kSessionOpened, w.Bytes());
}

std::string EncodeSubmitResult(const SubmitResultResponse& m) {
  WireWriter w;
  w.U64(m.request_id);
  w.U64(m.epoch);
  w.U64(m.inserted);
  w.U64(m.deleted);
  return EncodeFrame(Opcode::kSubmitResult, w.Bytes());
}

std::string EncodeQueryResult(const QueryResultResponse& m) {
  WireWriter w;
  w.U64(m.request_id);
  w.U16(m.arity);
  w.U32(static_cast<std::uint32_t>(m.rows.size()));
  for (const WireTuple& row : m.rows) {
    for (const WireValue& v : row) {
      w.Value(v);
    }
  }
  return EncodeFrame(Opcode::kQueryResult, w.Bytes());
}

std::string EncodeSessionClosed(const SessionClosedResponse& m) {
  WireWriter w;
  w.U64(m.request_id);
  return EncodeFrame(Opcode::kSessionClosed, w.Bytes());
}

std::string EncodePong(const PongResponse& m) {
  WireWriter w;
  w.U64(m.request_id);
  return EncodeFrame(Opcode::kPong, w.Bytes());
}

std::string EncodeRulesChanged(const RulesChangedResponse& m) {
  WireWriter w;
  w.U64(m.request_id);
  w.U64(m.epoch);
  w.U64(m.program_version);
  w.U64(m.inserted);
  w.U64(m.deleted);
  return EncodeFrame(Opcode::kRulesChanged, w.Bytes());
}

std::string EncodeError(const ErrorResponse& m) {
  WireWriter w;
  w.U64(m.request_id);
  w.U16(static_cast<std::uint16_t>(m.code));
  w.Str(m.message);
  return EncodeFrame(Opcode::kError, w.Bytes());
}

// --- per-message decode ---------------------------------------------------

bool DecodeOpenSession(std::string_view payload, OpenSessionRequest* out) {
  WireReader r(payload);
  out->request_id = r.U64();
  out->program = r.Str();
  out->name = r.Str();
  out->scheduler_spec = r.Str();
  out->strategy = r.Str();
  out->queue_capacity = r.U32();
  out->pipeline_depth = r.U32();
  return r.Complete();
}

bool DecodeSubmit(std::string_view payload, SubmitRequest* out) {
  WireReader r(payload);
  out->request_id = r.U64();
  out->session_id = r.U64();
  const std::uint32_t num_ops = r.U32();
  // Each op is at least 1 (flag) + 4 (name length) + 2 (arity) bytes; a
  // count the remaining payload cannot hold is rejected before reserving.
  if (r.Remaining() / 7 < num_ops) {
    return false;
  }
  out->ops.clear();
  out->ops.reserve(num_ops);
  for (std::uint32_t i = 0; i < num_ops && !r.Failed(); ++i) {
    WireOp op;
    const std::uint8_t flags = r.U8();
    if (flags > 1) {
      return false;
    }
    op.is_delete = flags == 1;
    op.predicate = r.Str();
    op.tuple = r.Tuple();
    out->ops.push_back(std::move(op));
  }
  return r.Complete();
}

bool DecodeQuery(std::string_view payload, QueryRequest* out) {
  WireReader r(payload);
  out->request_id = r.U64();
  out->session_id = r.U64();
  out->predicate = r.Str();
  return r.Complete();
}

bool DecodeCloseSession(std::string_view payload, CloseSessionRequest* out) {
  WireReader r(payload);
  out->request_id = r.U64();
  out->session_id = r.U64();
  return r.Complete();
}

bool DecodePing(std::string_view payload, PingRequest* out) {
  WireReader r(payload);
  out->request_id = r.U64();
  return r.Complete();
}

bool DecodeAddRules(std::string_view payload, AddRulesRequest* out) {
  WireReader r(payload);
  out->request_id = r.U64();
  out->session_id = r.U64();
  out->text = r.Str();
  return r.Complete();
}

bool DecodeRemoveRule(std::string_view payload, RemoveRuleRequest* out) {
  WireReader r(payload);
  out->request_id = r.U64();
  out->session_id = r.U64();
  out->text = r.Str();
  return r.Complete();
}

bool DecodeSessionOpened(std::string_view payload,
                         SessionOpenedResponse* out) {
  WireReader r(payload);
  out->request_id = r.U64();
  out->session_id = r.U64();
  return r.Complete();
}

bool DecodeSubmitResult(std::string_view payload, SubmitResultResponse* out) {
  WireReader r(payload);
  out->request_id = r.U64();
  out->epoch = r.U64();
  out->inserted = r.U64();
  out->deleted = r.U64();
  return r.Complete();
}

bool DecodeQueryResult(std::string_view payload, QueryResultResponse* out) {
  WireReader r(payload);
  out->request_id = r.U64();
  out->arity = r.U16();
  const std::uint32_t num_rows = r.U32();
  if (num_rows != 0 && r.Remaining() / (2u * out->arity + (out->arity == 0)) <
                           num_rows) {
    return false;
  }
  out->rows.clear();
  out->rows.reserve(num_rows);
  for (std::uint32_t i = 0; i < num_rows && !r.Failed(); ++i) {
    WireTuple row;
    row.reserve(out->arity);
    for (std::uint16_t c = 0; c < out->arity && !r.Failed(); ++c) {
      row.push_back(r.Value());
    }
    out->rows.push_back(std::move(row));
  }
  return r.Complete();
}

bool DecodeSessionClosed(std::string_view payload,
                         SessionClosedResponse* out) {
  WireReader r(payload);
  out->request_id = r.U64();
  return r.Complete();
}

bool DecodePong(std::string_view payload, PongResponse* out) {
  WireReader r(payload);
  out->request_id = r.U64();
  return r.Complete();
}

bool DecodeRulesChanged(std::string_view payload, RulesChangedResponse* out) {
  WireReader r(payload);
  out->request_id = r.U64();
  out->epoch = r.U64();
  out->program_version = r.U64();
  out->inserted = r.U64();
  out->deleted = r.U64();
  return r.Complete();
}

bool DecodeError(std::string_view payload, ErrorResponse* out) {
  WireReader r(payload);
  out->request_id = r.U64();
  const std::uint16_t code = r.U16();
  if (code < 1 || code > 9) {
    return false;
  }
  out->code = static_cast<ErrorCode>(code);
  out->message = r.Str();
  return r.Complete();
}

const char* OpcodeName(Opcode opcode) {
  switch (opcode) {
    case Opcode::kOpenSession:
      return "OPEN_SESSION";
    case Opcode::kSubmit:
      return "SUBMIT";
    case Opcode::kQuery:
      return "QUERY";
    case Opcode::kCloseSession:
      return "CLOSE_SESSION";
    case Opcode::kPing:
      return "PING";
    case Opcode::kAddRules:
      return "ADD_RULES";
    case Opcode::kRemoveRule:
      return "REMOVE_RULE";
    case Opcode::kSessionOpened:
      return "SESSION_OPENED";
    case Opcode::kSubmitResult:
      return "SUBMIT_RESULT";
    case Opcode::kQueryResult:
      return "QUERY_RESULT";
    case Opcode::kSessionClosed:
      return "SESSION_CLOSED";
    case Opcode::kPong:
      return "PONG";
    case Opcode::kRulesChanged:
      return "RULES_CHANGED";
    case Opcode::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace dsched::net
