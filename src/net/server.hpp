// The networked frontend: a poll(2)-based server multiplexing many client
// connections onto EngineHost sessions (DESIGN.md §13, docs/WIRE_PROTOCOL.md).
//
// Threading shape:
//
//     poll thread (1)  ── owns every Connection + the fd set
//         accept / read / decode / dispatch / write-flush
//         OpenSession + Ping answered inline; Submit translated + TrySubmit'd
//     pump thread (1 per session) ── resolves responses in epoch order
//         Submit futures get() in FIFO (== epoch) order, Query quiesces,
//         CloseSession drains; finished frames are handed back to the poll
//         thread via DeliverFromPump + the wake pipe
//
// Pipelining: a client may have any number of request frames in flight on
// one connection.  Frames are DISPATCHED in arrival order, but responses
// come back as they complete — a PONG overtakes a heavy SUBMIT_RESULT, and
// that is the point.  Per session, SUBMIT_RESULTs always arrive in epoch
// order (the pump is FIFO over futures that resolve densely).
//
// Backpressure composes end to end:
//   * UpdateQueue full → the submit is PARKED on its connection and the
//     connection stops reading (kernel TCP backpressure reaches the
//     client); retried every poll round until TrySubmit admits it.
//   * outbuf over write_buffer_limit → the connection also stops reading
//     until the client drains responses (net.write_stalls).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "datalog/database.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "service/engine_host.hpp"
#include "service/session.hpp"
#include "service/update_queue.hpp"

namespace dsched::net {

struct ServerOptions {
  /// Listen address; tests and benches use the loopback default.
  std::string bind_address = "127.0.0.1";
  /// 0 → ephemeral: the kernel picks; read the result from Port().
  std::uint16_t port = 0;
  /// Accept stops (connections queue in the kernel backlog) at this many
  /// concurrent connections.
  std::size_t max_connections = 1024;
  /// Per-connection outbuf bytes above which the server stops reading the
  /// connection until the client drains responses.
  std::size_t write_buffer_limit = 1u << 20;
  /// Frames declaring a longer payload are a framing error (kBadFrame +
  /// connection close).
  std::size_t max_frame_length = kMaxFrameLength;
  /// Connections with no byte traffic, no parked request, and no response
  /// in flight for this long are reaped: sent an IDLE_TIMEOUT error frame
  /// and closed (net.idle_reaped).  0 disables reaping (the default —
  /// long-lived quiet clients are legitimate).
  std::uint64_t idle_timeout_ms = 0;
};

/// One server in front of one EngineHost.  Start() spawns the poll thread;
/// Stop() (or destruction) joins it, closes every connection, drains every
/// pump, and closes every session the server routed to.
class ServiceServer {
 public:
  explicit ServiceServer(service::EngineHost& host,
                         ServerOptions options = {});
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds + listens + spawns the poll thread.  Throws util::Error when the
  /// socket cannot be bound.  Call once.
  void Start();

  /// Idempotent.  Every live connection is sent a best-effort SHUTDOWN
  /// error frame (request_id 0) before its socket closes, so clients can
  /// tell an orderly stop from a dropped peer.  After return: no thread
  /// is running, every fd is closed, every session opened through this
  /// server is Close()d (drained).
  void Stop();

  /// The bound port (resolves option port 0 to the kernel's pick).  Only
  /// valid after Start().
  [[nodiscard]] std::uint16_t Port() const { return port_; }

  [[nodiscard]] service::EngineHost& Host() { return host_; }

 private:
  /// A request admitted by the wire but not yet by the session's queue —
  /// a SUBMIT batch or an ADD_RULES / REMOVE_RULE evolve, distinguished by
  /// `kind` (kUpdate carries `request`; the evolve kinds carry `text`).
  struct ParkedRequest {
    service::UpdateQueue::Kind kind = service::UpdateQueue::Kind::kUpdate;
    std::uint64_t request_id = 0;
    std::uint64_t session_id = 0;
    datalog::UpdateRequest request;
    std::string text;
  };

  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::string inbuf;
    std::string outbuf;
    std::optional<ParkedRequest> parked;
    /// Pump jobs dispatched for this connection whose response frame has
    /// not come back yet; a connection with responses in flight is never
    /// idle-reaped.
    std::size_t inflight = 0;
    /// Last time bytes moved on this connection (either direction) — the
    /// idle-reaping clock.
    std::chrono::steady_clock::time_point last_activity;
    /// Peer sent EOF; buffered frames (and a parked request) still finish
    /// before the connection is torn down — disconnect never drops work
    /// the wire already accepted.
    bool eof = false;
    bool dead = false;
  };

  struct PumpJob {
    enum class Kind { kSubmit, kQuery, kClose, kEvolve } kind = Kind::kSubmit;
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    std::future<service::UpdateOutcome> future;  // kSubmit / kEvolve
    std::string predicate;                       // kQuery
  };

  /// Per-session server state: the pump thread and the symbol-table lock.
  /// The session's SymbolTable is not thread-safe; every net-side
  /// Intern (poll thread translating a SUBMIT) and NameOf (pump thread
  /// rendering a QUERY_RESULT) happens under sym_mutex.  The maintenance
  /// cascade itself never interns after Materialize, so this lock is
  /// net-internal.
  struct SessionEntry {
    std::shared_ptr<service::Session> session;
    std::mutex sym_mutex;
    std::mutex jobs_mutex;
    std::condition_variable jobs_cv;
    std::deque<PumpJob> jobs;
    bool stop = false;
    std::thread pump;
  };

  void PollLoop();
  void AcceptReady();
  void ReadReady(Connection& conn);
  /// Extracts + dispatches every complete frame in the inbuf; stops at a
  /// parked submit (per-connection order) and closes on drained EOF.
  void ProcessInbuf(Connection& conn);
  void WriteReady(Connection& conn);
  void DispatchFrame(Connection& conn, const Frame& frame);
  void HandleOpenSession(Connection& conn, std::string_view payload);
  void HandleSubmit(Connection& conn, std::string_view payload);
  void HandleQuery(Connection& conn, std::string_view payload);
  void HandleCloseSession(Connection& conn, std::string_view payload);
  /// Shared ADD_RULES / REMOVE_RULE path (they differ only in decode and
  /// queue kind).
  void HandleEvolve(Connection& conn, std::string_view payload,
                    service::UpdateQueue::Kind kind);
  void RetryParked(Connection& conn);
  /// Closes every connection idle past options_.idle_timeout_ms (no byte
  /// traffic, nothing parked, no response in flight) with an IDLE_TIMEOUT
  /// error frame.
  void ReapIdle(std::chrono::steady_clock::time_point now);
  /// Translates wire ops into a typed UpdateRequest; throws util::Error on
  /// unknown predicate / arity mismatch / int overflow.
  datalog::UpdateRequest TranslateOps(SessionEntry& entry,
                                      const std::vector<WireOp>& ops);
  /// Finds (or adopts) the pump entry for a live session id; null when
  /// FindSession misses (unknown / closed / closing).
  SessionEntry* RouteSession(std::uint64_t session_id);
  void EnqueueJob(Connection& conn, SessionEntry& entry, PumpJob job);
  void PumpLoop(SessionEntry& entry);
  /// Pump threads hand completed frames back to the poll thread.
  void DeliverFromPump(std::uint64_t conn_id, std::string frame);
  void DrainDeliveries();
  void SendFrame(Connection& conn, std::string frame);
  void SendError(Connection& conn, std::uint64_t request_id, ErrorCode code,
                 std::string message);
  void CloseConnection(Connection& conn);
  void Wake();

  service::EngineHost& host_;
  const ServerOptions options_;
  std::uint16_t port_ = 0;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool stopped_ = false;
  std::thread poll_thread_;

  // Poll-thread-owned state (no lock: only PollLoop and the helpers it
  // calls touch these after Start).
  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, Connection> conns_;

  /// Session entries live until Stop (a closed session's entry stays,
  /// inert, so late jobs drain instead of dangling).  Guarded by
  /// sessions_mutex_ because pump threads are enumerated during Stop.
  std::mutex sessions_mutex_;
  std::map<std::uint64_t, std::unique_ptr<SessionEntry>> sessions_;

  /// Pump → poll handoff.
  std::mutex delivery_mutex_;
  std::vector<std::pair<std::uint64_t, std::string>> deliveries_;

  // Cached counter refs (registry guarantees lifetime).
  obs::MetricsRegistry::Counter& frames_in_;
  obs::MetricsRegistry::Counter& frames_out_;
  obs::MetricsRegistry::Counter& bytes_in_;
  obs::MetricsRegistry::Counter& bytes_out_;
  obs::MetricsRegistry::Counter& conns_opened_;
  obs::MetricsRegistry::Counter& conns_closed_;
  obs::MetricsRegistry::Counter& backpressure_stalls_;
  obs::MetricsRegistry::Counter& write_stalls_;
  obs::MetricsRegistry::Counter& protocol_errors_;
  obs::MetricsRegistry::Counter& net_sessions_opened_;
  obs::MetricsRegistry::Counter& net_sessions_closed_;
  obs::MetricsRegistry::Counter& idle_reaped_;
};

}  // namespace dsched::net
