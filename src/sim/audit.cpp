#include "sim/audit.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "graph/topo.hpp"
#include "trace/cascade.hpp"

namespace dsched::sim {

AuditResult AuditSchedule(const trace::JobTrace& trace,
                          const SimResult& result) {
  constexpr double kEps = 1e-7;
  AuditResult audit;
  const graph::Dag& dag = trace.Graph();
  const std::size_t n = dag.NumNodes();
  const trace::Cascade cascade = trace::ComputeCascade(trace);

  const auto note = [&audit](const std::string& msg) {
    if (audit.violations.size() < 32) {  // don't flood on systemic failures
      audit.violations.push_back(msg);
    }
  };

  // --- Exactly-once execution of exactly the active set.
  std::vector<std::size_t> times_run(n, 0);
  std::vector<double> start(n, 0.0);
  std::vector<double> end(n, 0.0);
  for (const TaskRecord& rec : result.schedule) {
    if (rec.id >= n) {
      note("record for out-of-range task " + std::to_string(rec.id));
      continue;
    }
    ++times_run[rec.id];
    start[rec.id] = rec.start;
    end[rec.id] = rec.end;
    if (rec.end < rec.start - kEps) {
      note("task " + std::to_string(rec.id) + " ends before it starts");
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (cascade.active[v] && times_run[v] != 1) {
      note("active task " + std::to_string(v) + " ran " +
           std::to_string(times_run[v]) + " times (want exactly 1)");
    }
    if (!cascade.active[v] && times_run[v] != 0) {
      note("inactive task " + std::to_string(v) + " ran " +
           std::to_string(times_run[v]) + " times (want 0)");
    }
  }

  // --- Precedence: one topological sweep computes, per node, the latest
  // completion among its activated ancestors.
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> latest_anc(n, kNegInf);
  for (const TaskId u : graph::TopologicalOrder(dag)) {
    for (const TaskId v : dag.OutNeighbors(u)) {
      double through = latest_anc[u];
      if (cascade.active[u] && times_run[u] == 1) {
        through = std::max(through, end[u]);
      }
      latest_anc[v] = std::max(latest_anc[v], through);
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (cascade.active[v] && times_run[v] == 1 &&
        start[v] + kEps < latest_anc[v]) {
      std::ostringstream oss;
      oss << "task " << v << " started at " << start[v]
          << " before its last activated ancestor completed at "
          << latest_anc[v];
      note(oss.str());
    }
  }

  audit.valid = audit.violations.empty();
  return audit;
}

}  // namespace dsched::sim
