// Discrete-event scheduling simulator.
//
// Mirrors the paper's evaluation methodology (Section VI-A): reconstruct
// the DAG from a job trace, attach per-task processing times, run a
// scheduler over it, and report the makespan.  The simulator owns the
// dynamic model: it reveals the active graph H edge by edge as tasks
// complete, so schedulers only learn what the paper says they may learn.
//
// Task execution models (Section IV's analysis cases):
//  * kUnitLength        — every task takes one time unit on one processor.
//  * kSequential        — a task occupies one processor for `work` seconds.
//  * kFullyParallel     — malleable: a task may absorb any number of
//                         processors (Lemma 5's model).
//  * kMoldable          — a task's parallelism is capped at work/span, so a
//                         task alone finishes in max(span, work/P) (Brent);
//                         this is the arbitrary-DAG model of Lemma 7 and
//                         the tight example of Theorem 9.
// Progress is rate-based: at every event the running tasks' capped fair
// shares of the P processors are recomputed (water-filling), remaining work
// drains linearly between events.
//
// Scheduling overhead is measured two ways, both reported: wall-clock
// seconds spent inside scheduler calls (what Table III charges) and the
// scheduler's machine-independent operation counts.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sched/scheduler.hpp"
#include "trace/job_trace.hpp"
#include "util/types.hpp"

namespace dsched::sim {

using util::SimTime;
using util::TaskId;

/// How tasks consume processors; see file comment.
enum class ExecutionModel { kUnitLength, kSequential, kFullyParallel, kMoldable };

/// Renders the model name.
[[nodiscard]] const char* ExecutionModelName(ExecutionModel model);

/// Simulation parameters.
struct SimConfig {
  std::size_t processors = 8;
  ExecutionModel model = ExecutionModel::kSequential;
  /// Keep per-task (start, end) records (needed by the auditor).
  bool record_schedule = false;
  /// Abort the run once the modelled footprint — the scheduler's
  /// MemoryBytes() plus the resource_utility of every currently running
  /// task — exceeds this (0 = no budget).  Used by the Theorem-10 meta
  /// scheduler, whose ζ/2 kill rule charges A for both its index and the
  /// live state of the tasks it admitted.
  std::size_t memory_budget_bytes = 0;
  /// How often (in scheduling rounds) the footprint is polled; 1 = every
  /// round.  Raise to amortize expensive MemoryBytes() on huge runs at the
  /// cost of coarser peak_memory_bytes and later aborts.
  std::size_t memory_poll_stride = 1;
};

/// One executed task instance.
struct TaskRecord {
  TaskId id = util::kInvalidTask;
  SimTime start = 0.0;
  SimTime end = 0.0;
};

/// Everything a run produces.
struct SimResult {
  std::string scheduler_name;
  SimTime makespan = 0.0;              ///< virtual seconds until last completion
  double prepare_wall_seconds = 0.0;   ///< real time in Prepare()
  double sched_wall_seconds = 0.0;     ///< real time in runtime decisions
  sched::SchedulerOpCounts ops;        ///< modelled overhead counters
  std::size_t scheduler_memory_bytes = 0;  ///< final MemoryBytes()
  /// High-water of MemoryBytes() + Σ resource_utility over running tasks,
  /// sampled at every memory poll (the simulated analogue of the live
  /// executor's mem.peak_bytes).
  std::size_t peak_memory_bytes = 0;
  std::size_t tasks_executed = 0;
  std::size_t activations = 0;
  util::Work total_work = 0.0;         ///< work of executed tasks
  double busy_processor_seconds = 0.0; ///< Σ rate·dt actually consumed
  bool aborted_on_memory = false;      ///< memory budget exceeded
  SimTime abort_time = 0.0;
  std::vector<TaskRecord> schedule;    ///< iff record_schedule

  /// makespan + runtime scheduling overhead — the paper's "total makespan
  /// (which includes the scheduling overhead)".
  [[nodiscard]] double TotalSeconds() const {
    return makespan + sched_wall_seconds;
  }

  /// Publishes the run into `registry` under `prefix` (e.g.
  /// "sim.hybrid.").  Virtual times are recorded in microseconds, real
  /// times in nanoseconds.
  void ExportMetrics(obs::MetricsRegistry& registry,
                     const std::string& prefix) const;
};

/// Runs `scheduler` over `trace`.  The scheduler must be freshly
/// constructed; Simulate calls Prepare itself.  Throws util::LogicError on
/// scheduler deadlock (active work pending but nothing runnable — a policy
/// bug, not a workload property).
[[nodiscard]] SimResult Simulate(const trace::JobTrace& trace,
                                 sched::Scheduler& scheduler,
                                 const SimConfig& config);

}  // namespace dsched::sim
