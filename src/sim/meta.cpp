#include "sim/meta.hpp"

#include <algorithm>

#include "sched/level_based.hpp"
#include "util/error.hpp"

namespace dsched::sim {

MetaResult RunMeta(
    const trace::JobTrace& trace,
    const std::function<std::unique_ptr<sched::Scheduler>()>& make_heuristic,
    const MetaConfig& config) {
  DSCHED_CHECK_MSG(config.processors >= 2,
                   "meta scheduler needs at least two processors to split");
  MetaResult meta;
  const std::size_t half = config.processors / 2;

  // --- Half 1: the heuristic A on P/2 processors under a ζ/2 budget.
  {
    auto heuristic = make_heuristic();
    SimConfig sim_config;
    sim_config.processors = half;
    sim_config.model = config.model;
    sim_config.memory_budget_bytes = config.memory_budget_bytes / 2;
    meta.heuristic_half = Simulate(trace, *heuristic, sim_config);
    meta.heuristic_aborted = meta.heuristic_half.aborted_on_memory;
  }

  // --- Half 2: LevelBased.  If A was aborted it hands over its processors
  // ("continues with LevelBased, using all of the processors"); since the
  // abort can only help LevelBased, simulating the full run at the larger
  // width is the faithful upper bound.
  {
    sched::LevelBasedScheduler level_based;
    SimConfig sim_config;
    sim_config.processors =
        meta.heuristic_aborted ? config.processors : config.processors - half;
    sim_config.model = config.model;
    meta.level_based_half = Simulate(trace, level_based, sim_config);
  }

  meta.peak_memory_bytes = meta.heuristic_half.peak_memory_bytes +
                           meta.level_based_half.peak_memory_bytes;
  if (!meta.heuristic_aborted &&
      meta.heuristic_half.makespan <= meta.level_based_half.makespan) {
    meta.makespan = meta.heuristic_half.makespan;
    meta.winner = meta.heuristic_half.scheduler_name;
  } else {
    meta.makespan = meta.level_based_half.makespan;
    meta.winner = meta.level_based_half.scheduler_name;
  }
  return meta;
}

}  // namespace dsched::sim
