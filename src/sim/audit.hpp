// Independent validity auditor for simulated schedules.
//
// A schedule is valid (paper Section II-A) iff:
//  * exactly the activation cascade's active set executed, each task once;
//  * no task started before every *activated ancestor* in G had completed.
// The auditor recomputes the cascade offline and verifies both properties
// in O(V + E) using a "latest active-ancestor completion" sweep, entirely
// independent of any scheduler's bookkeeping — schedulers are the system
// under test here, so they get no say in their own verification.
#pragma once

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "trace/job_trace.hpp"

namespace dsched::sim {

/// Outcome of auditing one schedule.
struct AuditResult {
  bool valid = false;
  /// Human-readable findings; empty when valid.
  std::vector<std::string> violations;
};

/// Audits `result.schedule` (Simulate must have run with record_schedule).
[[nodiscard]] AuditResult AuditSchedule(const trace::JobTrace& trace,
                                        const SimResult& result);

}  // namespace dsched::sim
