#include "sim/engine.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace dsched::sim {

namespace {

constexpr double kEps = 1e-9;

struct Running {
  TaskId id = util::kInvalidTask;
  double remaining = 0.0;
  double cap = 1.0;
  double rate = 0.0;
  SimTime start = 0.0;
};

/// Capped fair-share (water-filling) allocation of P processors.
/// Precondition: before the last admitted task, Σ caps < P, so every task
/// ends up with a strictly positive rate.
void WaterFill(std::vector<Running>& running, double processors) {
  std::sort(running.begin(), running.end(), [](const Running& a, const Running& b) {
    if (a.cap != b.cap) {
      return a.cap < b.cap;
    }
    return a.id < b.id;
  });
  double remaining = processors;
  std::size_t left = running.size();
  for (Running& r : running) {
    const double share = remaining / static_cast<double>(left);
    r.rate = std::min(r.cap, share);
    remaining -= r.rate;
    --left;
  }
}

}  // namespace

const char* ExecutionModelName(ExecutionModel model) {
  switch (model) {
    case ExecutionModel::kUnitLength:
      return "unit-length";
    case ExecutionModel::kSequential:
      return "sequential";
    case ExecutionModel::kFullyParallel:
      return "fully-parallel";
    case ExecutionModel::kMoldable:
      return "moldable";
  }
  return "?";
}

SimResult Simulate(const trace::JobTrace& trace, sched::Scheduler& scheduler,
                   const SimConfig& config) {
  DSCHED_CHECK_MSG(config.processors >= 1, "need at least one processor");
  const graph::Dag& dag = trace.Graph();
  const auto processors = static_cast<double>(config.processors);

  SimResult result;
  result.scheduler_name = std::string(scheduler.Name());

  {
    util::WallTimer prep_timer;
    scheduler.Prepare({&trace, config.processors});
    result.prepare_wall_seconds = prep_timer.ElapsedSeconds();
  }
  result.peak_memory_bytes = scheduler.MemoryBytes();
  if (config.memory_budget_bytes != 0 &&
      result.peak_memory_bytes > config.memory_budget_bytes) {
    // Precomputation alone blew the budget.
    result.aborted_on_memory = true;
    result.abort_time = 0.0;
    result.scheduler_memory_bytes = scheduler.MemoryBytes();
    return result;
  }

  util::Stopwatch sched_watch;
  std::vector<bool> activated(dag.NumNodes(), false);
  std::size_t activated_count = 0;
  std::size_t completed_count = 0;
  SimTime clock = 0.0;

  const auto effective_work = [&](TaskId t) -> double {
    if (config.model == ExecutionModel::kUnitLength) {
      return 1.0;
    }
    return trace.Info(t).work;
  };
  const auto cap_of = [&](TaskId t) -> double {
    switch (config.model) {
      case ExecutionModel::kUnitLength:
      case ExecutionModel::kSequential:
        return 1.0;
      case ExecutionModel::kFullyParallel:
        return processors;
      case ExecutionModel::kMoldable: {
        const trace::TaskInfo& info = trace.Info(t);
        if (info.span <= 0.0) {
          return processors;
        }
        return std::clamp(info.work / info.span, 1.0, processors);
      }
    }
    return 1.0;
  };

  const auto activate = [&](TaskId t) {
    if (!activated[t]) {
      activated[t] = true;
      ++activated_count;
      const util::StopwatchGuard guard(sched_watch);
      scheduler.OnActivated(t);
    }
  };

  const auto complete_task = [&](TaskId t, SimTime start, SimTime end) {
    ++result.tasks_executed;
    ++completed_count;
    result.total_work += effective_work(t);
    if (config.record_schedule) {
      result.schedule.push_back({t, start, end});
    }
    const bool changed = trace.Info(t).output_changes;
    if (changed) {
      // Contract: children activate before the completion callback.
      for (const TaskId child : dag.OutNeighbors(t)) {
        activate(child);
      }
    }
    const util::StopwatchGuard guard(sched_watch);
    scheduler.OnCompleted(t, changed);
  };

  for (const TaskId t : trace.InitialDirty()) {
    activate(t);
  }

  std::vector<Running> running;
  /// Σ resource_utility of the tasks currently in `running` — the live
  /// state the executor's accounting plane would hold for them.
  std::uint64_t running_utility_bytes = 0;
  std::size_t rounds = 0;
  for (;;) {
    // --- Admission: pull ready work while processor capacity remains.
    double used_cap = 0.0;
    for (const Running& r : running) {
      used_cap += r.cap;
    }
    while (used_cap < processors - kEps) {
      TaskId t = util::kInvalidTask;
      {
        const util::StopwatchGuard guard(sched_watch);
        t = scheduler.PopReady();
      }
      if (t == util::kInvalidTask) {
        break;
      }
      {
        const util::StopwatchGuard guard(sched_watch);
        scheduler.OnStarted(t);
      }
      const double work = effective_work(t);
      if (work <= kEps) {
        // Collector predicates and other zero-work nodes run instantly; the
        // admission loop keeps going, so same-instant cascades settle here.
        complete_task(t, clock, clock);
        continue;
      }
      const double cap = cap_of(t);
      running.push_back({t, work, cap, 0.0, clock});
      running_utility_bytes += trace.Info(t).resource_utility;
      used_cap += cap;
    }

    // Poll the modelled footprint right after admission, where the running
    // set (and so its live state) is at its round maximum.
    if (++rounds % std::max<std::size_t>(config.memory_poll_stride, 1) == 0) {
      const std::size_t footprint =
          scheduler.MemoryBytes() +
          static_cast<std::size_t>(running_utility_bytes);
      result.peak_memory_bytes = std::max(result.peak_memory_bytes, footprint);
      if (config.memory_budget_bytes != 0 &&
          footprint > config.memory_budget_bytes) {
        result.aborted_on_memory = true;
        result.abort_time = clock;
        break;
      }
    }

    if (running.empty()) {
      if (completed_count < activated_count) {
        throw util::LogicError(
            "scheduler deadlock: " + std::string(scheduler.Name()) + " has " +
            std::to_string(activated_count - completed_count) +
            " incomplete active tasks but offers no ready work");
      }
      break;  // all active work drained
    }

    // --- Advance virtual time to the next completion.
    WaterFill(running, processors);
    double dt = util::kTimeInfinity;
    for (const Running& r : running) {
      dt = std::min(dt, r.remaining / r.rate);
    }
    dt = std::max(dt, 0.0);
    clock += dt;
    std::vector<Running> finished;
    std::size_t keep = 0;
    for (Running& r : running) {
      r.remaining -= r.rate * dt;
      result.busy_processor_seconds += r.rate * dt;
      if (r.remaining <= kEps) {
        finished.push_back(r);
      } else {
        running[keep++] = r;
      }
    }
    running.resize(keep);
    // Deterministic completion order at equal instants.
    std::sort(finished.begin(), finished.end(),
              [](const Running& a, const Running& b) { return a.id < b.id; });
    for (const Running& r : finished) {
      running_utility_bytes -= trace.Info(r.id).resource_utility;
      complete_task(r.id, r.start, clock);
    }
  }

  result.makespan = clock;
  result.sched_wall_seconds = sched_watch.TotalSeconds();
  result.ops = scheduler.OpCounts();
  result.scheduler_memory_bytes = scheduler.MemoryBytes();
  result.peak_memory_bytes =
      std::max(result.peak_memory_bytes, result.scheduler_memory_bytes);
  result.activations = activated_count;
  return result;
}

namespace {

std::uint64_t SecondsTo(double seconds, double scale) {
  return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * scale);
}

}  // namespace

void SimResult::ExportMetrics(obs::MetricsRegistry& registry,
                              const std::string& prefix) const {
  registry.Set(prefix + "makespan_us", SecondsTo(makespan, 1e6));
  registry.Set(prefix + "total_us", SecondsTo(TotalSeconds(), 1e6));
  registry.Set(prefix + "prepare_ns", SecondsTo(prepare_wall_seconds, 1e9));
  registry.Set(prefix + "sched_overhead_ns",
               SecondsTo(sched_wall_seconds, 1e9));
  registry.Set(prefix + "tasks_executed", tasks_executed);
  registry.Set(prefix + "activations", activations);
  registry.Set(prefix + "scheduler_memory_bytes", scheduler_memory_bytes);
  registry.Set(prefix + "peak_memory_bytes", peak_memory_bytes);
  registry.Set(prefix + "ops.ancestor_queries", ops.ancestor_queries);
  registry.Set(prefix + "ops.interval_probes", ops.interval_probes);
  registry.Set(prefix + "ops.queue_scans", ops.queue_scans);
  registry.Set(prefix + "ops.scanned_candidates", ops.scanned_candidates);
  registry.Set(prefix + "ops.messages", ops.messages);
  registry.Set(prefix + "ops.level_advances", ops.level_advances);
  registry.Set(prefix + "ops.lookahead_visits", ops.lookahead_visits);
  registry.Set(prefix + "ops.pops", ops.pops);
  registry.Set(prefix + "ops.total", ops.Total());
}

}  // namespace dsched::sim
