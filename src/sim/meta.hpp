// The meta scheduler A′ of Theorem 10 / Corollary 11.
//
// Given any heuristic scheduler A and a total memory budget ζ = Ω(V):
//  * split the processors P/2 + P/2 between A and LevelBased, run both
//    independently (tasks may execute twice);
//  * if A's memory consumption reaches ζ/2, abort A and continue with
//    LevelBased alone;
//  * finish when either sub-schedule finishes.
// Guarantees: memory O(ζ); makespan ≤ 2·min(T_A, T_LB) when A stays within
// budget, ≤ 2·T_LB otherwise.
//
// The simulator realizes this exactly: the two halves are independent runs
// over the same trace (duplicated execution is the theorem's own device),
// A's half carries a ζ/2 memory budget, and the reported makespan is the
// earlier finisher.
#pragma once

#include <functional>
#include <memory>

#include "sim/engine.hpp"

namespace dsched::sim {

/// Configuration of a meta run.
struct MetaConfig {
  std::size_t processors = 8;
  ExecutionModel model = ExecutionModel::kSequential;
  /// ζ: total memory budget in bytes.  Must comfortably exceed the O(V)
  /// LevelBased footprint (the theorem needs ζ = Ω(V)).
  std::size_t memory_budget_bytes = 0;
};

/// Outcome of a meta run.
struct MetaResult {
  SimTime makespan = 0.0;      ///< the earlier of the two halves
  bool heuristic_aborted = false;  ///< A blew its ζ/2 budget
  std::string winner;          ///< name of the finishing sub-scheduler
  /// Joint footprint bound for the construction: the sum of the halves'
  /// peak_memory_bytes (both halves run concurrently until one finishes or
  /// A is aborted).  The O(ζ) guarantee of Corollary 11 is about this
  /// number.
  std::size_t peak_memory_bytes = 0;
  SimResult heuristic_half;    ///< A on P/2 processors (may be aborted)
  SimResult level_based_half;  ///< LevelBased on its processors
};

/// Runs the Theorem-10 construction: `make_heuristic` builds a fresh A.
[[nodiscard]] MetaResult RunMeta(
    const trace::JobTrace& trace,
    const std::function<std::unique_ptr<sched::Scheduler>()>& make_heuristic,
    const MetaConfig& config);

}  // namespace dsched::sim
