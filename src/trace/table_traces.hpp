// The eleven workload traces of the paper's Table I, re-synthesized.
//
// The originals (#1–#10) are proprietary LogicBlox production traces; #11
// was synthetic but never released.  We regenerate each from every statistic
// the paper publishes: node count, edge count, initially-dirty task count,
// activation-cascade size, and level count (Table I), plus a work-scale hint
// derived from the published makespans (Tables II/III) so simulated times
// land in the same regime.  The full-size traces are large; `scale` shrinks
// node/edge/activation counts proportionally (levels are preserved — they
// drive the LevelBased behaviour) for quick runs.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/job_trace.hpp"

namespace dsched::trace {

/// One row of Table I plus the published timing context.
struct TableTraceSpec {
  int index = 0;                 ///< Job trace number, 1-based as in the paper.
  std::size_t nodes = 0;         ///< "No. nodes".
  std::size_t edges = 0;         ///< "No. edges".
  std::size_t initial_tasks = 0; ///< "No. initial tasks" (dirtied by the update).
  std::size_t active_jobs = 0;   ///< "No. active jobs" (activated descendants).
  std::size_t levels = 0;        ///< "No. levels".
  /// Work-scale hint in seconds: a published makespan that is close to w/P
  /// (LogicBlox for #1–#5/#7–#10 where it is work-dominated; LevelBased for
  /// #6 where LogicBlox is overhead-dominated).
  double work_hint_seconds = 0.0;
  /// Processor count all published numbers used.
  static constexpr std::size_t kProcessors = 8;
};

/// The published Table I rows (verbatim constants from the paper).
[[nodiscard]] const std::vector<TableTraceSpec>& PaperTable1();

/// Looks up one row; `index` in [1, 11].
[[nodiscard]] const TableTraceSpec& PaperTrace(int index);

/// Synthesizes job trace `index` at the given scale (0 < scale <= 1); counts
/// in the spec are multiplied by `scale` before generation and the
/// activation cascade is re-calibrated to the scaled target.
[[nodiscard]] JobTrace MakeTableTrace(int index, double scale = 1.0,
                                      std::uint64_t seed = 20200518);

/// The Table I row that `MakeTableTrace(index, scale, seed)` actually
/// achieves, for printing next to the paper targets.
struct AchievedRow {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t initial_tasks = 0;
  std::size_t active_jobs = 0;
  std::size_t levels = 0;
};
[[nodiscard]] AchievedRow MeasureRow(const JobTrace& trace);

}  // namespace dsched::trace
