// Offline computation of the activation cascade — the active graph H.
//
// Given a trace's deterministic output-change bits, the full active set W
// and active edge set F (paper Section II-A) are fixed before any scheduling
// happens; only the *schedulers* must discover them dynamically.  Computing
// the cascade offline gives (a) the ground truth the schedule auditor checks
// against, (b) the Table I "active jobs" statistic, and (c) the work totals
// w that the makespan bounds w/P + L refer to.
#pragma once

#include <vector>

#include "trace/job_trace.hpp"
#include "util/types.hpp"

namespace dsched::trace {

/// The resolved activation cascade of one trace.
struct Cascade {
  /// active[v] — v ∈ W: its input changes at some point, so it must re-run.
  std::vector<bool> active;
  /// The active nodes, ascending.
  std::vector<TaskId> active_nodes;
  /// |F|: edges (u, v) where u re-runs and sends a *changed* output to v.
  std::size_t active_edges = 0;
  /// Activated nodes that are not initially dirty (any kind) — the "active
  /// jobs" column of Table I (Figure 1: "activation of 532 descendants").
  std::size_t activated_descendants = 0;
  /// The subset of activated_descendants with kind == kTask.
  std::size_t activated_task_descendants = 0;
  /// All distinct descendants of the initially dirty set (Figure 1's "1680
  /// total descendants"), regardless of activation.
  std::size_t total_descendants = 0;
  /// Total work of all activated nodes (the paper's w).
  util::Work total_active_work = 0.0;

  [[nodiscard]] std::size_t NumActive() const { return active_nodes.size(); }
};

/// Resolves the cascade in O(V + E).
[[nodiscard]] Cascade ComputeCascade(const JobTrace& trace);

}  // namespace dsched::trace
