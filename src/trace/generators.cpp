#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/digraph_builder.hpp"
#include "graph/reachability.hpp"
#include "graph/topo.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace dsched::trace {

namespace {

/// Cascade size (activated non-dirty nodes) on raw trace parts; mirrors
/// ComputeCascade but avoids building a JobTrace per calibration iteration.
std::size_t CascadeSize(const graph::Dag& dag,
                        const std::vector<TaskInfo>& infos,
                        const std::vector<TaskId>& dirty) {
  std::vector<bool> active(dag.NumNodes(), false);
  std::vector<bool> is_dirty(dag.NumNodes(), false);
  for (const TaskId id : dirty) {
    active[id] = true;
    is_dirty[id] = true;
  }
  std::size_t activated = 0;
  for (const TaskId u : graph::TopologicalOrder(dag)) {
    if (!active[u]) {
      continue;
    }
    if (!is_dirty[u]) {
      ++activated;
    }
    if (infos[u].output_changes) {
      for (const TaskId v : dag.OutNeighbors(u)) {
        active[v] = true;
      }
    }
  }
  return activated;
}

/// Packs an edge for duplicate detection.
std::uint64_t PackEdge(util::TaskId u, util::TaskId v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

std::pair<double, double> DurationModel::Draw(util::Rng& rng) const {
  const double mu = std::log(median_seconds);
  double work = rng.NextLogNormal(mu, sigma);
  work = std::clamp(work, min_seconds, max_seconds);
  double span = work;
  if (!rng.NextBool(sequential_fraction)) {
    span = std::max(min_seconds, work * parallel_span_factor);
    span = std::min(span, work);
  }
  return {work, span};
}

std::vector<std::size_t> MakeLevelWidths(std::size_t nodes, std::size_t levels,
                                         std::size_t source_width,
                                         util::Rng& rng) {
  DSCHED_CHECK_MSG(levels >= 1, "need at least one level");
  DSCHED_CHECK_MSG(source_width >= 1 && source_width <= nodes,
                   "source width out of range");
  DSCHED_CHECK_MSG(nodes - source_width >= levels - 1,
                   "not enough nodes to populate every level");
  std::vector<std::size_t> widths(levels, 0);
  widths[0] = source_width;
  if (levels == 1) {
    DSCHED_CHECK_MSG(source_width == nodes, "single-level graph must be all sources");
    return widths;
  }
  // Give each deeper level one node, then spread the remainder with random
  // weights — smooth but not uniform, like the production shapes.
  std::size_t remaining = nodes - source_width - (levels - 1);
  std::vector<double> weights(levels - 1);
  double weight_sum = 0.0;
  for (auto& w : weights) {
    w = 0.25 + rng.NextDouble();
    weight_sum += w;
  }
  std::size_t distributed = 0;
  for (std::size_t l = 1; l < levels; ++l) {
    const auto share = static_cast<std::size_t>(
        static_cast<double>(remaining) * weights[l - 1] / weight_sum);
    widths[l] = 1 + share;
    distributed += share;
  }
  // Rounding residue goes to the widest deeper level.
  std::size_t residue = remaining - distributed;
  if (residue > 0) {
    auto widest = std::max_element(widths.begin() + 1, widths.end());
    *widest += residue;
  }
  return widths;
}

JobTrace GenerateLayered(const LayeredDagSpec& spec) {
  DSCHED_CHECK_MSG(!spec.level_widths.empty(), "level_widths must be set");
  for (const std::size_t w : spec.level_widths) {
    DSCHED_CHECK_MSG(w > 0, "every level width must be positive");
  }
  const std::size_t levels = spec.level_widths.size();
  std::size_t num_nodes = 0;
  std::vector<std::size_t> offsets(levels + 1, 0);
  for (std::size_t l = 0; l < levels; ++l) {
    num_nodes += spec.level_widths[l];
    offsets[l + 1] = num_nodes;
  }
  DSCHED_CHECK_MSG(spec.initial_dirty <= spec.level_widths[0],
                   "cannot dirty more sources than exist");

  util::Rng master(spec.seed);
  util::Rng kind_rng = master.Fork();
  util::Rng duration_rng = master.Fork();
  util::Rng calib_rng = master.Fork();

  // --- Kinds and durations, independent of the edge wiring so that locality
  // retries don't perturb them.
  std::vector<TaskInfo> infos(num_nodes);
  for (std::size_t v = 0; v < num_nodes; ++v) {
    const bool is_source = v < offsets[1];
    TaskInfo& info = infos[v];
    if (!is_source && kind_rng.NextBool(spec.collector_fraction)) {
      info.kind = NodeKind::kCollector;
      info.work = 0.0;
      info.span = 0.0;
    } else {
      info.kind = NodeKind::kTask;
      const auto [work, span] = spec.durations.Draw(duration_rng);
      info.work = work;
      info.span = span;
    }
    info.output_changes = true;
  }

  // --- Dirty set: evenly spread over the sources, so the activation cones
  // are (mostly) disjoint as in Figure 1.
  std::vector<util::TaskId> dirty;
  dirty.reserve(spec.initial_dirty);
  for (std::size_t i = 0; i < spec.initial_dirty; ++i) {
    const std::size_t idx =
        (i * spec.level_widths[0]) / std::max<std::size_t>(spec.initial_dirty, 1);
    dirty.push_back(static_cast<util::TaskId>(idx));
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());

  // --- Edge wiring, retried with adaptive locality: widen (double sigma)
  // until the dirty set reaches enough descendants to support the
  // activation target, then bisect back down so the cone is not grossly
  // larger than needed — production cascades touch a sliver of the graph
  // (Figure 1: 1,680 descendants out of 64,910 nodes).
  double sigma = spec.locality_sigma;
  double sigma_lo = 0.0;   // widest known-too-narrow sigma
  double sigma_hi = -1.0;  // narrowest known-wide-enough sigma (<0: none yet)
  graph::Dag dag;
  graph::Dag best_dag;
  bool have_best = false;
  const double need = 1.15 * static_cast<double>(spec.target_active);
  const double plenty = 5.0 * static_cast<double>(spec.target_active);
  for (int attempt = 0; attempt < 16; ++attempt) {
    util::Rng edge_rng = master.Fork();
    graph::DigraphBuilder builder(num_nodes);
    std::unordered_set<std::uint64_t> seen;
    seen.reserve((num_nodes - spec.level_widths[0]) + spec.extra_edges);

    // Picks a parent for a node at (level, index): a node in parent_level at
    // roughly the same relative position, jittered by sigma spacing units.
    const auto local_parent = [&](std::size_t level, std::size_t index,
                                  std::size_t parent_level) -> util::TaskId {
      const std::size_t child_width = spec.level_widths[level];
      const std::size_t parent_width = spec.level_widths[parent_level];
      const double rel = (static_cast<double>(index) + 0.5) /
                         static_cast<double>(child_width);
      const double jitter = edge_rng.NextGaussian() * sigma;
      double target = rel * static_cast<double>(parent_width) - 0.5 + jitter;
      target = std::clamp(target, 0.0,
                          static_cast<double>(parent_width - 1));
      return static_cast<util::TaskId>(
          offsets[parent_level] +
          static_cast<std::size_t>(std::llround(target)));
    };

    // Spine: exactly one parent in the previous level pins every node's
    // level to its layer index.
    for (std::size_t l = 1; l < levels; ++l) {
      for (std::size_t i = 0; i < spec.level_widths[l]; ++i) {
        const auto child = static_cast<util::TaskId>(offsets[l] + i);
        const util::TaskId parent = local_parent(l, i, l - 1);
        builder.AddEdge(parent, child);
        seen.insert(PackEdge(parent, child));
      }
    }

    // Extra cross edges: child in any level >= 1; parent in a lower level,
    // usually the previous one, local unless a long-range draw.
    std::size_t added = 0;
    std::size_t attempts_left = spec.extra_edges * 20 + 100;
    const std::size_t deep_nodes = num_nodes - offsets[1];
    while (added < spec.extra_edges && attempts_left-- > 0 && deep_nodes > 0) {
      const std::size_t pick = static_cast<std::size_t>(
          edge_rng.NextBelow(deep_nodes));
      const std::size_t child_global = offsets[1] + pick;
      // Locate the child's level by binary search over offsets.
      const std::size_t l = static_cast<std::size_t>(
          std::upper_bound(offsets.begin(), offsets.end(), child_global) -
          offsets.begin()) - 1;
      const std::size_t i = child_global - offsets[l];
      std::size_t parent_level;
      if (l == 1 || edge_rng.NextBool(0.7)) {
        parent_level = l - 1;
      } else {
        parent_level = 1 + static_cast<std::size_t>(
                               edge_rng.NextBelow(l - 1));
        parent_level -= 1;  // uniform in [0, l-2]
      }
      util::TaskId parent;
      if (edge_rng.NextBool(spec.long_range_prob)) {
        parent = static_cast<util::TaskId>(
            offsets[parent_level] +
            edge_rng.NextBelow(spec.level_widths[parent_level]));
      } else {
        parent = local_parent(l, i, parent_level);
      }
      const auto child = static_cast<util::TaskId>(child_global);
      if (seen.insert(PackEdge(parent, child)).second) {
        builder.AddEdge(parent, child);
        ++added;
      }
    }
    if (added < spec.extra_edges) {
      DSCHED_LOG(Warning) << spec.name << ": only placed " << added << " of "
                          << spec.extra_edges << " extra edges";
    }
    dag = std::move(builder).Build();

    if (spec.target_active == 0) {
      break;
    }
    // Reachability check: can the dirty set activate enough descendants —
    // without the cone flooding far past the target?
    const auto reachable =
        static_cast<double>(graph::DescendantsOfSet(dag, dirty).size());
    if (reachable >= need) {
      if (!have_best || sigma_hi < 0.0 || sigma < sigma_hi) {
        best_dag = dag;
        have_best = true;
      }
      if (reachable <= plenty) {
        break;  // in the sweet spot
      }
      sigma_hi = sigma;
    } else {
      sigma_lo = sigma;
      DSCHED_LOG(Info) << spec.name << ": dirty cone too narrow ("
                       << reachable << " < " << need << ") at sigma=" << sigma;
    }
    sigma = (sigma_hi < 0.0) ? sigma * 2.0 : 0.5 * (sigma_lo + sigma_hi);
  }
  if (have_best) {
    dag = std::move(best_dag);
  }

  if (spec.target_active > 0) {
    CalibrateActivation(dag, infos, dirty, spec.target_active, calib_rng);
  }
  return JobTrace(spec.name, std::move(dag), std::move(infos),
                  std::move(dirty));
}

std::size_t CalibrateActivation(const graph::Dag& dag,
                                std::vector<TaskInfo>& infos,
                                const std::vector<TaskId>& dirty,
                                std::size_t target_active, util::Rng& rng) {
  // Deterministic cascade carving.  A probability search over change bits
  // behaves like a percolation threshold on these narrow-cone DAGs — the
  // cascade jumps from "dies instantly" to "floods everything" across a
  // tiny probability window — so instead we *construct* the cascade: BFS
  // from the dirty set, letting each processed node's output "change"
  // (which activates all of its children) until the activated-descendant
  // budget is spent; every later node keeps a quiet output.  Overshoot is
  // bounded by the out-degree of the last expanded node.
  for (TaskInfo& info : infos) {
    info.output_changes = false;
  }
  std::vector<bool> active(dag.NumNodes(), false);
  std::vector<bool> is_dirty(dag.NumNodes(), false);
  std::vector<TaskId> queue;
  std::vector<TaskId> seeds = dirty;
  rng.Shuffle(seeds);  // vary which cones grow when the budget is tight
  for (const TaskId t : seeds) {
    if (!active[t]) {
      active[t] = true;
      is_dirty[t] = true;
      queue.push_back(t);
    }
  }
  std::size_t activated = 0;
  std::size_t head = 0;
  while (head < queue.size()) {
    const TaskId u = queue[head++];
    if (activated >= target_active) {
      break;  // remaining queue entries keep output_changes == false
    }
    infos[u].output_changes = true;
    for (const TaskId v : dag.OutNeighbors(u)) {
      if (!active[v]) {
        active[v] = true;
        if (!is_dirty[v]) {
          ++activated;
        }
        queue.push_back(v);
      }
    }
  }
  // Sanity: the constructed bits must reproduce the count via the real
  // cascade computation used everywhere else.
  DSCHED_CHECK(CascadeSize(dag, infos, dirty) == activated);
  return activated;
}

JobTrace MakeTightExample(std::size_t levels) {
  DSCHED_CHECK_MSG(levels >= 2, "tight example needs at least two levels");
  const std::size_t l = levels;
  // Ids: j_1..j_L are 0..L-1; k_2..k_L are L..2L-2.
  graph::DigraphBuilder builder(2 * l - 1);
  std::vector<TaskInfo> infos(2 * l - 1);
  for (std::size_t i = 0; i < l; ++i) {
    infos[i] = TaskInfo{NodeKind::kTask, 1.0, 1.0, true};
    if (i + 1 < l) {
      builder.AddEdge(static_cast<TaskId>(i), static_cast<TaskId>(i + 1));
    }
  }
  for (std::size_t i = 2; i <= l; ++i) {
    const auto k = static_cast<TaskId>(l + i - 2);
    const auto weight = static_cast<double>(l - i + 1);
    infos[k] = TaskInfo{NodeKind::kTask, weight, weight, true};
    builder.AddEdge(static_cast<TaskId>(i - 2), k);  // parent j_{i-1}
  }
  return JobTrace("tight-example-L" + std::to_string(l),
                  std::move(builder).Build(), std::move(infos), {0});
}

JobTrace MakePathologicalScan(std::size_t chain_length, std::size_t fanout,
                              double task_seconds) {
  DSCHED_CHECK_MSG(chain_length >= 1 && fanout >= 1,
                   "pathological instance needs a chain and leaves");
  const std::size_t n = 1 + chain_length + fanout;
  graph::DigraphBuilder builder(n);
  std::vector<TaskInfo> infos(
      n, TaskInfo{NodeKind::kTask, task_seconds, task_seconds, true});
  // 0 = source; 1..chain_length = chain; rest = leaves.
  builder.AddEdge(0, 1);
  for (std::size_t c = 1; c < chain_length; ++c) {
    builder.AddEdge(static_cast<TaskId>(c), static_cast<TaskId>(c + 1));
  }
  const auto tail = static_cast<TaskId>(chain_length);
  for (std::size_t f = 0; f < fanout; ++f) {
    const auto leaf = static_cast<TaskId>(1 + chain_length + f);
    builder.AddEdge(0, leaf);
    builder.AddEdge(tail, leaf);
  }
  return JobTrace("pathological-scan-c" + std::to_string(chain_length) + "-f" +
                      std::to_string(fanout),
                  std::move(builder).Build(), std::move(infos), {0});
}

JobTrace MakeIntervalAdversarial(std::size_t m) {
  // Staircase bipartite graph: sources x_0..x_{m-1} (ids 0..m-1) and sinks
  // z_0..z_{m-1} (ids m..2m-1) with an edge x_i -> z_j iff j <= i.  The
  // index's DFS (sources ascending, children ascending) interleaves sink and
  // source postorder numbers — z_j gets post 2j, x_i gets post 2i+1 — so the
  // descendant set of x_i fragments into i+1 singleton intervals and the
  // whole index holds Θ(m²) intervals, realizing the O(V²) worst case of
  // Section II-C.
  DSCHED_CHECK_MSG(m >= 1, "need at least one stair");
  graph::DigraphBuilder builder(2 * m);
  std::vector<TaskInfo> infos(2 * m,
                              TaskInfo{NodeKind::kTask, 1e-5, 1e-5, true});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      builder.AddEdge(static_cast<TaskId>(i), static_cast<TaskId>(m + j));
    }
  }
  std::vector<TaskId> dirty;
  for (std::size_t i = 0; i < m; ++i) {
    dirty.push_back(static_cast<TaskId>(i));
  }
  return JobTrace("interval-adversarial-m" + std::to_string(m),
                  std::move(builder).Build(), std::move(infos),
                  std::move(dirty));
}

JobTrace MakeRandomDag(std::size_t nodes, double edge_prob, double dirty_prob,
                       double change_prob, util::Rng& rng,
                       const DurationModel& durations) {
  graph::DigraphBuilder builder(nodes);
  for (std::size_t u = 0; u < nodes; ++u) {
    for (std::size_t v = u + 1; v < nodes; ++v) {
      if (rng.NextBool(edge_prob)) {
        builder.AddEdge(static_cast<TaskId>(u), static_cast<TaskId>(v));
      }
    }
  }
  std::vector<TaskInfo> infos(nodes);
  std::vector<TaskId> dirty;
  for (std::size_t v = 0; v < nodes; ++v) {
    const auto [work, span] = durations.Draw(rng);
    infos[v] = TaskInfo{NodeKind::kTask, work, span,
                        rng.NextBool(change_prob)};
    if (rng.NextBool(dirty_prob)) {
      dirty.push_back(static_cast<TaskId>(v));
    }
  }
  return JobTrace("random-dag", std::move(builder).Build(), std::move(infos),
                  std::move(dirty));
}

JobTrace MakeChain(std::size_t length) {
  DSCHED_CHECK_MSG(length >= 1, "chain needs at least one node");
  graph::DigraphBuilder builder(length);
  std::vector<TaskInfo> infos(length,
                              TaskInfo{NodeKind::kTask, 1.0, 1.0, true});
  for (std::size_t i = 0; i + 1 < length; ++i) {
    builder.AddEdge(static_cast<TaskId>(i), static_cast<TaskId>(i + 1));
  }
  return JobTrace("chain-" + std::to_string(length), std::move(builder).Build(),
                  std::move(infos), {0});
}

JobTrace MakeFork(std::size_t leaves) {
  DSCHED_CHECK_MSG(leaves >= 1, "fork needs at least one leaf");
  graph::DigraphBuilder builder(leaves + 1);
  std::vector<TaskInfo> infos(leaves + 1,
                              TaskInfo{NodeKind::kTask, 1.0, 1.0, true});
  for (std::size_t i = 0; i < leaves; ++i) {
    builder.AddEdge(0, static_cast<TaskId>(i + 1));
  }
  return JobTrace("fork-" + std::to_string(leaves), std::move(builder).Build(),
                  std::move(infos), {0});
}

}  // namespace dsched::trace
