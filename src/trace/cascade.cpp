#include "trace/cascade.hpp"

#include <algorithm>

#include "graph/reachability.hpp"
#include "graph/topo.hpp"

namespace dsched::trace {

Cascade ComputeCascade(const JobTrace& trace) {
  const graph::Dag& dag = trace.Graph();
  const std::size_t n = dag.NumNodes();

  Cascade cascade;
  cascade.active.assign(n, false);
  for (const TaskId id : trace.InitialDirty()) {
    cascade.active[id] = true;
  }

  // One topological pass: a node is active iff initially dirty or some
  // active parent's output changes.  An edge is active iff its source is
  // active and changes output.
  for (const TaskId u : graph::TopologicalOrder(dag)) {
    if (!cascade.active[u]) {
      continue;
    }
    if (trace.Info(u).output_changes) {
      for (const TaskId v : dag.OutNeighbors(u)) {
        if (!cascade.active[v]) {
          cascade.active[v] = true;
        }
        ++cascade.active_edges;
      }
    }
  }

  std::vector<bool> dirty(n, false);
  for (const TaskId id : trace.InitialDirty()) {
    dirty[id] = true;
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (!cascade.active[v]) {
      continue;
    }
    const auto id = static_cast<TaskId>(v);
    cascade.active_nodes.push_back(id);
    cascade.total_active_work += trace.Info(id).work;
    if (!dirty[v]) {
      ++cascade.activated_descendants;
      if (trace.Info(id).kind == NodeKind::kTask) {
        ++cascade.activated_task_descendants;
      }
    }
  }

  cascade.total_descendants =
      graph::DescendantsOfSet(dag, trace.InitialDirty()).size();
  return cascade;
}

}  // namespace dsched::trace
