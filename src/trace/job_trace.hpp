// The job-trace model: a computation DAG plus everything the paper's traces
// carry (Section VI-A): per-task processing time, which tasks the database
// update initially dirties, and — revealed only when a task is re-executed —
// whether its output actually changes.
//
// Table I distinguishes *tasks that can be activated* from *predicate nodes
// used to collect inputs and outputs*; we keep both as DAG nodes and tag the
// kind.  Collector nodes carry zero work and always forward changes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dag.hpp"
#include "util/types.hpp"

namespace dsched::trace {

using util::TaskId;
using util::Work;

/// Node kind: a schedulable task or a zero-work collector predicate node.
enum class NodeKind : std::uint8_t { kTask = 0, kCollector = 1 };

/// Static per-node metadata carried by a trace.
struct TaskInfo {
  NodeKind kind = NodeKind::kTask;
  /// Total work in processor-seconds.
  Work work = 1.0;
  /// Critical path inside the task (paper's "task span" S^T); span <= work.
  /// span == work means the task is purely sequential; the ratio work/span
  /// bounds its useful parallelism.
  Work span = 1.0;
  /// Revealed at execution: does re-running this task change its output?
  /// Drives the dynamic activation cascade (the active graph H).
  bool output_changes = true;
  /// Estimated bytes of live state the task holds while running (paper
  /// Section V's memory parameter; for Datalog components this is
  /// predicate arity x estimated delta cardinality x sizeof(Value)).
  /// The executor's accounting plane acquires this on dispatch and
  /// releases it on completion; 0 = unaccounted (collectors, untraced
  /// workloads).
  std::uint64_t resource_utility = 0;
};

/// One workload: the DAG, per-node info, and the initially dirtied tasks.
class JobTrace {
 public:
  JobTrace() = default;
  JobTrace(std::string name, graph::Dag dag, std::vector<TaskInfo> tasks,
           std::vector<TaskId> initial_dirty);

  [[nodiscard]] const std::string& Name() const { return name_; }
  [[nodiscard]] const graph::Dag& Graph() const { return dag_; }
  [[nodiscard]] std::size_t NumNodes() const { return dag_.NumNodes(); }
  [[nodiscard]] std::size_t NumEdges() const { return dag_.NumEdges(); }
  [[nodiscard]] const TaskInfo& Info(TaskId id) const;
  [[nodiscard]] const std::vector<TaskInfo>& Tasks() const { return tasks_; }

  /// The tasks whose inputs the database update dirtied; active at time 0.
  [[nodiscard]] const std::vector<TaskId>& InitialDirty() const {
    return initial_dirty_;
  }

  /// Number of nodes with kind == kTask.
  [[nodiscard]] std::size_t NumTaskNodes() const { return num_task_nodes_; }

  /// Sum of work over a set of nodes.
  [[nodiscard]] Work TotalWork(const std::vector<TaskId>& nodes) const;

 private:
  std::string name_;
  graph::Dag dag_;
  std::vector<TaskInfo> tasks_;
  std::vector<TaskId> initial_dirty_;
  std::size_t num_task_nodes_ = 0;
};

}  // namespace dsched::trace
