#include "trace/table_traces.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "graph/levels.hpp"
#include "trace/cascade.hpp"
#include "trace/generators.hpp"
#include "util/error.hpp"

namespace dsched::trace {

const std::vector<TableTraceSpec>& PaperTable1() {
  // Verbatim rows of Table I; work hints from Tables II/III (see header).
  static const std::vector<TableTraceSpec> kRows = {
      {1, 64910, 101327, 5, 532, 171, 26.5},
      {2, 64903, 101319, 16, 1936, 171, 9736.0},
      {3, 29185, 41506, 76, 560, 149, 187.0},
      {4, 64507, 100779, 26, 1342, 171, 303.0},
      {5, 1719, 2430, 6, 296, 39, 23.0},
      {6, 379500, 557702, 125544, 126979, 11, 0.49},
      {7, 35283, 50511, 76, 645, 198, 155.77},
      {8, 35283, 50511, 9, 177, 198, 28.29},
      {9, 65541, 102219, 10, 111, 171, 0.037},
      {10, 65541, 102219, 16, 1936, 171, 9893.29},
      {11, 465127, 465158, 131104, 132162, 5, 630.01},
  };
  return kRows;
}

const TableTraceSpec& PaperTrace(int index) {
  DSCHED_CHECK_MSG(index >= 1 && index <= 11,
                   "job trace index must be in [1, 11]");
  return PaperTable1()[static_cast<std::size_t>(index - 1)];
}

JobTrace MakeTableTrace(int index, double scale, std::uint64_t seed) {
  DSCHED_CHECK_MSG(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  const TableTraceSpec& spec = PaperTrace(index);

  const auto scaled = [scale](std::size_t value) -> std::size_t {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(static_cast<double>(value) * scale)));
  };
  const std::size_t levels = spec.levels;  // levels drive LevelBased; keep.
  std::size_t nodes = scaled(spec.nodes);
  const std::size_t edges = scaled(spec.edges);
  const std::size_t initial = scaled(spec.initial_tasks);
  const std::size_t active = scaled(spec.active_jobs);

  // Source width: at least the dirty set, at least a twelfth of the graph,
  // and small enough to leave one node for every deeper level.
  std::size_t source_width = std::max(initial, nodes / 12);
  if (nodes < source_width + levels - 1) {
    nodes = source_width + levels - 1 + 1;
  }

  util::Rng rng(seed + static_cast<std::uint64_t>(index) * 7919);

  LayeredDagSpec layered;
  layered.name = "jobtrace-" + std::to_string(index);
  layered.level_widths = MakeLevelWidths(nodes, levels, source_width, rng);
  const std::size_t spine_edges = nodes - source_width;
  layered.extra_edges = edges > spine_edges ? edges - spine_edges : 0;
  layered.locality_sigma = 0.05;
  layered.long_range_prob = 0.002;
  layered.collector_fraction = 0.75;
  layered.initial_dirty = initial;
  layered.target_active = active;

  // Work scale: published makespans ran on 8 processors and, where work
  // dominated, sit near w/P.  Executed nodes with nonzero work are the dirty
  // sources (all tasks) plus the task-kind share of the cascade.
  const double executed_tasks =
      static_cast<double>(initial) +
      (1.0 - layered.collector_fraction) * static_cast<double>(active);
  const double total_work =
      spec.work_hint_seconds * static_cast<double>(TableTraceSpec::kProcessors);
  const double mean_seconds = std::max(1e-6, total_work / executed_tasks);
  layered.durations.sigma = 1.2;
  // Log-normal: mean = median * exp(sigma^2 / 2).
  layered.durations.median_seconds =
      mean_seconds / std::exp(0.5 * layered.durations.sigma *
                              layered.durations.sigma);
  layered.durations.min_seconds = 1e-6;
  layered.durations.max_seconds = std::max(1.0, 50.0 * mean_seconds);
  layered.seed = rng.NextU64();

  return GenerateLayered(layered);
}

AchievedRow MeasureRow(const JobTrace& trace) {
  AchievedRow row;
  row.nodes = trace.NumNodes();
  row.edges = trace.NumEdges();
  row.initial_tasks = trace.InitialDirty().size();
  const Cascade cascade = ComputeCascade(trace);
  row.active_jobs = cascade.activated_descendants;
  const graph::LevelMap level_map(trace.Graph());
  row.levels = level_map.NumLevels();
  return row;
}

}  // namespace dsched::trace
