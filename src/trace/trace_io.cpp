#include "trace/trace_io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "graph/digraph_builder.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dsched::trace {

namespace {
constexpr const char* kMagic = "dsched-trace";
constexpr const char* kVersion = "v1";

bool IsDefault(const TaskInfo& info) {
  return info.kind == NodeKind::kTask && info.work == 1.0 &&
         info.span == 1.0 && info.output_changes;
}
}  // namespace

void WriteTrace(std::ostream& out, const JobTrace& trace) {
  out << kMagic << " " << kVersion << "\n";
  if (!trace.Name().empty()) {
    out << "name " << trace.Name() << "\n";
  }
  out << "nodes " << trace.NumNodes() << "\n";
  out.precision(17);
  for (std::size_t v = 0; v < trace.NumNodes(); ++v) {
    const TaskInfo& info = trace.Info(static_cast<TaskId>(v));
    if (IsDefault(info)) {
      continue;
    }
    out << "node " << v << " "
        << (info.kind == NodeKind::kTask ? 'T' : 'C') << " " << info.work
        << " " << info.span << " " << (info.output_changes ? 1 : 0) << "\n";
  }
  const graph::Dag& dag = trace.Graph();
  for (std::size_t u = 0; u < dag.NumNodes(); ++u) {
    for (const TaskId v : dag.OutNeighbors(static_cast<TaskId>(u))) {
      out << "edge " << u << " " << v << "\n";
    }
  }
  if (!trace.InitialDirty().empty()) {
    out << "dirty";
    for (const TaskId id : trace.InitialDirty()) {
      out << " " << id;
    }
    out << "\n";
  }
}

void WriteTraceFile(const std::string& path, const JobTrace& trace) {
  std::ofstream out(path);
  if (!out) {
    throw util::Error("cannot open trace file for writing: " + path);
  }
  WriteTrace(out, trace);
  if (!out) {
    throw util::Error("error while writing trace file: " + path);
  }
}

JobTrace ReadTrace(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& what) -> util::ParseError {
    return util::ParseError("trace line " + std::to_string(line_no) + ": " +
                            what);
  };

  // Header.
  if (!std::getline(in, line)) {
    throw util::ParseError("empty trace stream");
  }
  ++line_no;
  {
    const auto fields = util::SplitWhitespace(line);
    if (fields.size() != 2 || fields[0] != kMagic || fields[1] != kVersion) {
      throw fail("expected header '" + std::string(kMagic) + " " + kVersion +
                 "'");
    }
  }

  std::string name;
  std::size_t num_nodes = 0;
  bool saw_nodes = false;
  std::vector<TaskInfo> infos;
  std::vector<std::pair<TaskId, TaskId>> edges;
  std::vector<TaskId> dirty;

  const auto parse_id = [&](std::string_view token) -> TaskId {
    const auto value = util::ParseU64(token, "node id");
    if (!saw_nodes || value >= num_nodes) {
      throw fail("node id " + std::string(token) +
                 " out of range (nodes not declared or too small)");
    }
    return static_cast<TaskId>(value);
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') {
      continue;
    }
    const auto fields = util::SplitWhitespace(trimmed);
    const std::string_view keyword = fields[0];
    if (keyword == "name") {
      if (fields.size() != 2) {
        throw fail("'name' expects one token");
      }
      name = std::string(fields[1]);
    } else if (keyword == "nodes") {
      if (fields.size() != 2) {
        throw fail("'nodes' expects one count");
      }
      num_nodes = util::ParseU64(fields[1], "node count");
      saw_nodes = true;
      infos.assign(num_nodes, TaskInfo{});
    } else if (keyword == "node") {
      if (fields.size() != 6) {
        throw fail("'node' expects: id kind work span changes");
      }
      const TaskId id = parse_id(fields[1]);
      TaskInfo info;
      if (fields[2] == "T") {
        info.kind = NodeKind::kTask;
      } else if (fields[2] == "C") {
        info.kind = NodeKind::kCollector;
      } else {
        throw fail("node kind must be T or C");
      }
      info.work = util::ParseDouble(fields[3], "node work");
      info.span = util::ParseDouble(fields[4], "node span");
      const auto changes = util::ParseU64(fields[5], "node changes");
      if (changes > 1) {
        throw fail("node changes must be 0 or 1");
      }
      info.output_changes = changes == 1;
      infos[id] = info;
    } else if (keyword == "edge") {
      if (fields.size() != 3) {
        throw fail("'edge' expects: u v");
      }
      edges.emplace_back(parse_id(fields[1]), parse_id(fields[2]));
    } else if (keyword == "dirty") {
      for (std::size_t i = 1; i < fields.size(); ++i) {
        dirty.push_back(parse_id(fields[i]));
      }
    } else {
      throw fail("unknown keyword '" + std::string(keyword) + "'");
    }
  }
  if (!saw_nodes) {
    throw util::ParseError("trace missing 'nodes' declaration");
  }

  graph::DigraphBuilder builder(num_nodes);
  for (const auto& [u, v] : edges) {
    builder.AddEdge(u, v);
  }
  return JobTrace(name, std::move(builder).Build(), std::move(infos),
                  std::move(dirty));
}

JobTrace ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw util::Error("cannot open trace file for reading: " + path);
  }
  return ReadTrace(in);
}

}  // namespace dsched::trace
