#include "trace/job_trace.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dsched::trace {

JobTrace::JobTrace(std::string name, graph::Dag dag,
                   std::vector<TaskInfo> tasks,
                   std::vector<TaskId> initial_dirty)
    : name_(std::move(name)),
      dag_(std::move(dag)),
      tasks_(std::move(tasks)),
      initial_dirty_(std::move(initial_dirty)) {
  DSCHED_CHECK_MSG(tasks_.size() == dag_.NumNodes(),
                   "one TaskInfo per DAG node required");
  std::sort(initial_dirty_.begin(), initial_dirty_.end());
  initial_dirty_.erase(
      std::unique(initial_dirty_.begin(), initial_dirty_.end()),
      initial_dirty_.end());
  for (const TaskId id : initial_dirty_) {
    DSCHED_CHECK_MSG(id < dag_.NumNodes(), "dirty task id out of range");
  }
  for (const TaskInfo& info : tasks_) {
    DSCHED_CHECK_MSG(info.work >= 0.0, "task work must be non-negative");
    DSCHED_CHECK_MSG(info.span >= 0.0 && info.span <= info.work + 1e-12,
                     "task span must lie in [0, work]");
    if (info.kind == NodeKind::kTask) {
      ++num_task_nodes_;
    }
  }
}

const TaskInfo& JobTrace::Info(TaskId id) const {
  DSCHED_CHECK_MSG(id < tasks_.size(), "task id out of range");
  return tasks_[id];
}

Work JobTrace::TotalWork(const std::vector<TaskId>& nodes) const {
  Work total = 0.0;
  for (const TaskId id : nodes) {
    total += Info(id).work;
  }
  return total;
}

}  // namespace dsched::trace
