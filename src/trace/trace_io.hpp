// Text serialization of job traces.
//
// Format (line oriented, '#' comments, whitespace separated):
//
//   dsched-trace v1
//   name <token>
//   nodes <N>
//   node <id> <T|C> <work> <span> <0|1>    # optional; defaults T 1 1 1
//   edge <u> <v>
//   dirty <id> [<id> ...]
//
// Node lines may be omitted for nodes with default info, which keeps the
// large generated traces compact on disk.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/job_trace.hpp"

namespace dsched::trace {

/// Writes `trace` in the v1 text format.
void WriteTrace(std::ostream& out, const JobTrace& trace);

/// Writes to a file; throws util::Error if the file cannot be opened.
void WriteTraceFile(const std::string& path, const JobTrace& trace);

/// Parses the v1 text format; throws util::ParseError on malformed input.
[[nodiscard]] JobTrace ReadTrace(std::istream& in);

/// Reads from a file; throws util::Error if the file cannot be opened.
[[nodiscard]] JobTrace ReadTraceFile(const std::string& path);

}  // namespace dsched::trace
