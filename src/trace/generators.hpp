// Synthetic trace generators.
//
// The paper evaluates on proprietary LogicBlox retail traces (Table I).  We
// cannot have those, so this module synthesizes traces matching every
// *published* characteristic of each one — node count, edge count, number of
// initially dirty tasks, size of the activation cascade, and level count —
// plus the structural families the theory section needs: the Figure-2 tight
// example, scan-pathological instances for the LogicBlox scheduler, and
// interval-list space adversaries.  See DESIGN.md §2 for the substitution
// argument.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/job_trace.hpp"
#include "util/rng.hpp"

namespace dsched::trace {

/// How task processing times are drawn.
struct DurationModel {
  /// Median processing time of a task node in seconds (log-normal median).
  double median_seconds = 0.1;
  /// Log-normal shape parameter; ~1.2 gives the heavy tail typical of rule
  /// re-evaluation times.
  double sigma = 1.2;
  /// Clamp bounds applied after the draw.
  double min_seconds = 1e-5;
  double max_seconds = 3600.0;
  /// Fraction of task nodes with no internal parallelism (span == work).
  /// The remainder get span = parallel_span_factor * work.
  double sequential_fraction = 1.0;
  double parallel_span_factor = 0.1;

  /// Draws (work, span) for one task node.
  [[nodiscard]] std::pair<double, double> Draw(util::Rng& rng) const;
};

/// Parameters of the layered (level-structured) DAG family that models the
/// production traces: level 0 holds the database predicates (sources), every
/// deeper node gets one "spine" parent in the previous level (pinning its
/// level exactly) plus extra cross-level edges.  Spine and extra edges are
/// *local* in a per-level circular position space, which keeps activation
/// cascades narrow the way Figure 1 shows (5 dirty tasks reach only 1,680 of
/// 64,910 nodes).
struct LayeredDagSpec {
  std::string name = "layered";
  /// Nodes per level; level_widths[0] is the source count.  Every width must
  /// be positive.
  std::vector<std::size_t> level_widths;
  /// Edges beyond the one spine edge per non-source node.  Total edge count
  /// of the result is exactly (nodes - level_widths[0]) + extra_edges.
  std::size_t extra_edges = 0;
  /// Standard deviation of parent-position jitter, measured in units of the
  /// parent level's node spacing.  Small values give narrow descendant
  /// cones.
  double locality_sigma = 2.5;
  /// Probability that an extra edge ignores locality entirely.
  double long_range_prob = 0.02;
  /// Fraction of non-source nodes that are zero-work collector predicates.
  double collector_fraction = 0.65;
  /// How many sources the update dirties.
  std::size_t initial_dirty = 1;
  /// Target size of the activation cascade (activated non-initial nodes).
  /// The generator binary-searches the per-node output-change probability to
  /// approach this, and widens locality_sigma if the dirty set cannot reach
  /// enough descendants.  0 disables calibration (all outputs change).
  std::size_t target_active = 0;
  DurationModel durations;
  std::uint64_t seed = 1;
};

/// Generates a layered trace per the spec.
[[nodiscard]] JobTrace GenerateLayered(const LayeredDagSpec& spec);

/// Convenience: splits `nodes` into `levels` positive widths, the first
/// being exactly `source_width`; the rest vary smoothly (deterministic given
/// rng state).
[[nodiscard]] std::vector<std::size_t> MakeLevelWidths(std::size_t nodes,
                                                       std::size_t levels,
                                                       std::size_t source_width,
                                                       util::Rng& rng);

/// The tight example of Theorem 9 / Figure 2: a chain j_1 .. j_L of unit
/// sequential tasks; for i = 2..L a task k_i (child of j_{i-1}) with
/// work = span = L - i + 1.  Every output changes and j_1 is dirty, so
/// everything activates.  LevelBased achieves Θ(L²) makespan while an
/// optimal order finishes in Θ(L).
[[nodiscard]] JobTrace MakeTightExample(std::size_t levels);

/// A scan-pathological instance for the LogicBlox scheduler: a dirty source
/// fans out to `fanout` leaves AND to a sequential chain of `chain_length`
/// nodes whose tail also feeds every leaf.  All leaves activate immediately
/// but stay unready until the whole chain finishes, so every completion
/// triggers a full rescan of the ~`fanout`-sized active queue with ancestor
/// queries — Θ(fanout² · chain_length) modelled probes, the O(n³)-flavoured
/// blow-up of Section II-C.  LevelBased handles it in O(n + L).
[[nodiscard]] JobTrace MakePathologicalScan(std::size_t chain_length,
                                            std::size_t fanout,
                                            double task_seconds = 1e-4);

/// Interval-list space adversary: a staircase bipartite graph with `m`
/// sources and `m` sinks (edge x_i -> z_j iff j <= i).  The DFS postorder
/// interleaves sources and sinks, so each source's descendant set fragments
/// into singleton intervals — Θ(m²) intervals total, the O(V²) worst case
/// the paper cites for the LogicBlox ancestor store.
[[nodiscard]] JobTrace MakeIntervalAdversarial(std::size_t m);

/// Uniform random DAG for property tests: each pair (u < v) is an edge with
/// probability `edge_prob`; every node is dirty with `dirty_prob` and
/// changes output with `change_prob`.
[[nodiscard]] JobTrace MakeRandomDag(std::size_t nodes, double edge_prob,
                                     double dirty_prob, double change_prob,
                                     util::Rng& rng,
                                     const DurationModel& durations = {});

/// A single chain of `length` unit tasks, head dirty, all changing.
[[nodiscard]] JobTrace MakeChain(std::size_t length);

/// A star: one dirty root feeding `leaves` unit tasks, all changing.
[[nodiscard]] JobTrace MakeFork(std::size_t leaves);

/// Calibration helper (exposed for tests): carves an activation cascade by
/// BFS from the dirty set, setting output-change bits so that the number of
/// activated non-dirty nodes hits `target_active` (overshoot bounded by one
/// node's out-degree; undershoot only when the dirty set cannot reach that
/// many descendants).  Returns the achieved count.
std::size_t CalibrateActivation(const graph::Dag& dag,
                                std::vector<TaskInfo>& infos,
                                const std::vector<TaskId>& dirty,
                                std::size_t target_active, util::Rng& rng);

}  // namespace dsched::trace
