// The service entry point: one long-lived host serving many concurrently
// maintained Datalog programs on one shared runtime.
//
// Ownership shape (DESIGN.md §10):
//
//     EngineHost ──────────────► HostCore (shared)
//                                 ├─ TaskRouter ── ThreadPool (N workers)
//                                 ├─ MetricsRegistry (host.* / session.*)
//                                 └─ defaults (scheduler, queue bound)
//     Session "a" ─► program+strat / RelationStore / scheduler spec
//                    UpdateQueue ─► apply thread ─► router channel
//     Session "b" ─► ... (same pool, own everything else)
//
// Every Session owns its parsed+stratified program, its sharded store, and
// a serialized-per-session apply loop; the ONLY shared mutable state is the
// worker pool (via TaskRouter channels) and the metrics registry — both
// multi-tenant by construction.  Sessions hold the HostCore via
// shared_ptr, so a Session outliving its EngineHost stays valid (the pool
// joins when the last holder drops).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/task_router.hpp"

namespace dsched::service {

class Session;

/// Host-level configuration, fixed for the host's lifetime.
struct HostOptions {
  /// Workers in the one shared pool all sessions' cascades run on.
  std::size_t workers = 4;
  /// Router channel slots == max cascades in flight at once across all
  /// sessions (each session uses at most one at a time).
  std::size_t max_concurrent_updates = 256;
  /// Scheduler spec for sessions that don't pick their own.
  std::string default_scheduler = "hybrid";
  /// Maintenance strategy ("dred", "counting", "bf") for sessions that
  /// don't pick their own (datalog/maintenance.hpp).
  std::string default_strategy = "dred";
  /// Queue bound for sessions that don't pick their own.
  std::size_t default_queue_capacity = 64;
  /// Epoch-pipeline depth K for sessions that don't pick their own: how
  /// many update cascades one session may have in flight at once
  /// (DESIGN.md §12).  1 = the classic serialized-per-session apply loop.
  std::size_t default_pipeline_depth = 1;
};

/// Per-session configuration; zero/empty fields inherit host defaults.
struct SessionOptions {
  /// Metrics prefix ("session.<name>.*"); auto-named "s<id>" when empty.
  std::string name;
  /// Scheduler factory spec ("hybrid", "levelbased", "lbl:<k>",
  /// "logicblox", "signal"), or "serial" for the single-threaded
  /// serial engine (no pool involvement).  Empty → host default.
  /// Unknown specs are rejected at OpenSession with an error listing the
  /// valid values.
  std::string scheduler_spec;
  /// Maintenance strategy spec ("dred", "counting", "bf"); empty → host
  /// default.  Unknown names are rejected at OpenSession with an error
  /// listing the valid values.
  std::string maintenance_strategy;
  /// Max queued-but-unapplied batches before Submit blocks.  0 → host
  /// default.
  std::size_t queue_capacity = 0;
  /// Epoch-pipeline depth K: up to K cascades of this session overlap on
  /// the shared pool, fenced per dependency level by a StratumFrontier
  /// (runtime/pipeline.hpp).  0 → host default.  Clamped to [1, 64];
  /// forced to 1 for the "serial" engine and for strategies that are not
  /// pipeline-eligible (datalog::StrategyPipelineEligible — counting).
  /// Futures still resolve in dense epoch order regardless of depth.
  std::size_t pipeline_depth = 0;
  /// Hard per-session memory ceiling, in accounted bytes: every cascade
  /// of this session (all K in-flight epochs together) meters its tasks'
  /// resource_utility against ONE shared runtime::ResourceAccount, and
  /// the executor defers dispatch of any task that would push the live
  /// total over this bound.  Exhaustion therefore surfaces as slower
  /// cascades — and ultimately as Submit blocking on the bounded queue —
  /// never as a failed update.  0 = no ceiling (accounting only).
  /// Ignored by the "serial" engine, which runs no accounted cascade.
  std::uint64_t memory_budget = 0;
};

namespace detail {

/// The state sessions share with (and may outlive) the host handle.
struct HostCore {
  explicit HostCore(const HostOptions& opts)
      : options(opts),
        router({.workers = opts.workers,
                .max_channels = opts.max_concurrent_updates}) {}

  const HostOptions options;
  runtime::TaskRouter router;
  obs::MetricsRegistry metrics;
  std::atomic<std::size_t> active_sessions{0};
  std::atomic<std::uint64_t> sessions_opened{0};

  /// Live-session registry for FindSession: id -> weak ref.  Sessions
  /// register at open (EngineHost::OpenSession) and unregister inside
  /// Close(), so a hit is always a session that has not finished closing.
  /// weak_ptr (not raw) is the TSan-clean lifetime story: a lookup that
  /// races the owner dropping its shared_ptr either locks a still-live
  /// control block or observes expiry — never a dangling pointer.
  std::mutex registry_mutex;
  std::map<std::uint64_t, std::weak_ptr<Session>> session_registry;

  void Register(std::uint64_t id, const std::shared_ptr<Session>& session) {
    const std::lock_guard<std::mutex> lock(registry_mutex);
    session_registry[id] = session;
  }
  void Unregister(std::uint64_t id) {
    const std::lock_guard<std::mutex> lock(registry_mutex);
    session_registry.erase(id);
  }
};

}  // namespace detail

/// Factory/owner of the shared runtime.  Thread-safe: sessions may be
/// opened from any thread.
class EngineHost {
 public:
  explicit EngineHost(const HostOptions& options = {});
  ~EngineHost() = default;

  EngineHost(const EngineHost&) = delete;
  EngineHost& operator=(const EngineHost&) = delete;

  /// Parses, validates, and stratifies `program_text` into a new session.
  /// Throws util::ParseError / util::InvalidArgument on bad programs or a
  /// bad scheduler spec ("oracle" is rejected — it cannot drive live
  /// updates).  The session is independent: drop it whenever, in any
  /// order relative to the host.  Shared ownership so concurrent routing
  /// paths (FindSession) can hold the session across its owner's drop.
  [[nodiscard]] std::shared_ptr<Session> OpenSession(
      std::string_view program_text, const SessionOptions& options = {});

  /// Looks up a live session by its numeric id (Session::Id()).  Returns
  /// null when the id was never assigned, the session was destroyed, or
  /// Close() has completed — lookup-after-close is a miss by contract.
  /// Thread-safe against concurrent opens, closes, and drops; the returned
  /// shared_ptr keeps the session alive for the caller regardless of what
  /// the opener does with its own handle.
  [[nodiscard]] std::shared_ptr<Session> FindSession(std::uint64_t id);

  /// Ids of every currently registered (open, not yet closed) session, in
  /// ascending order.
  [[nodiscard]] std::vector<std::uint64_t> ActiveSessionIds();

  [[nodiscard]] std::size_t NumWorkers() const {
    return core_->router.NumWorkers();
  }
  [[nodiscard]] std::size_t ActiveSessions() const {
    return core_->active_sessions.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const HostOptions& Options() const { return core_->options; }

  /// The host-wide registry sessions publish `session.<name>.*` into.
  [[nodiscard]] obs::MetricsRegistry& Metrics() { return core_->metrics; }

  /// Direct router access for advanced callers (benches wiring their own
  /// cascades onto the shared pool).
  [[nodiscard]] runtime::TaskRouter& Router() { return core_->router; }

  /// Publishes `host.*` gauges (workers, active_sessions, sessions_opened,
  /// pool.* counters) into Metrics().
  void ExportMetrics();

 private:
  std::shared_ptr<detail::HostCore> core_;
};

}  // namespace dsched::service
