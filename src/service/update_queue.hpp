// The per-session update pipeline: a bounded MPMC queue of update batches
// with epoch numbering and promise-based result delivery.
//
// Producers are client threads calling Session::Submit; consumers are the
// session's K apply threads (K = pipeline_depth; K = 1 recovers the
// classic single-consumer loop).  The bound is the backpressure mechanism:
// a full queue makes Push block (or TryPush decline) instead of letting a
// fast producer build an unbounded backlog of unapplied batches.  Epochs
// are assigned under the queue lock, so they are dense, start at 1, and
// order exactly like application order — epoch N's result reflects every
// batch up to and including N.
//
// Multi-consumer contract: the queue is FIFO, so epochs POP in dense order
// even when different threads do the popping; what the queue does NOT
// order is what happens after the pop.  The session's admission gate
// (session.hpp) makes cascades start densely, and its sequencer resolves
// futures densely.  After Close(), each consumer fully processes any job
// it already holds before Pop() returns false — close drains, it never
// abandons a promise.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <deque>
#include <string>

#include "datalog/compiled_program.hpp"
#include "datalog/incremental.hpp"
#include "runtime/executor.hpp"

namespace dsched::service {

/// What a fulfilled Submit future carries: which epoch the batch became,
/// the engine-level result, and (for parallel sessions) the executor run.
struct UpdateOutcome {
  /// 1-based position of this batch in the session's apply order.
  std::uint64_t epoch = 0;
  datalog::UpdateResult update;
  /// Executor stats of the cascade; default-initialized for sessions on
  /// the serial engine.
  runtime::Executor::RunStats run;
  /// Rule-evolution outcomes (EvolveAddRules / EvolveRemoveRule epochs
  /// only; plain Submit batches leave all three at their defaults).
  bool rules_changed = false;
  std::uint64_t program_version = 0;
  datalog::EvolveStats evolve;
};

/// Bounded multi-producer multi-consumer queue of pending update batches.
/// Thread-safe.
class UpdateQueue {
 public:
  /// What a popped job asks the apply thread to do.  Evolve jobs ride the
  /// same epoch sequence as update batches, so "epoch N resolved" keeps
  /// meaning "every batch AND every rule change up to N is visible".
  enum class Kind : std::uint8_t {
    kUpdate = 0,
    kAddRules = 1,
    kRemoveRule = 2,
  };

  struct Job {
    std::uint64_t epoch = 0;
    Kind kind = Kind::kUpdate;
    datalog::UpdateRequest request;  ///< kUpdate only
    std::string rules_text;          ///< kAddRules / kRemoveRule only
    std::promise<UpdateOutcome> promise;
  };

  explicit UpdateQueue(std::size_t capacity);

  /// Enqueues a batch, BLOCKING while the queue is at capacity (this is
  /// the backpressure bound).  Returns the assigned epoch.  Throws
  /// util::LogicError if the queue is closed (also when closed mid-wait).
  std::uint64_t Push(datalog::UpdateRequest request,
                     std::promise<UpdateOutcome> promise);

  /// Non-blocking variant: returns 0 when the queue is full instead of
  /// waiting (epochs are 1-based, so 0 is unambiguous).  Throws when
  /// closed.
  std::uint64_t TryPush(datalog::UpdateRequest request,
                        std::promise<UpdateOutcome> promise);

  /// Enqueues a rule-evolution job (kAddRules / kRemoveRule) with Push's
  /// blocking backpressure contract.
  std::uint64_t PushEvolve(Kind kind, std::string rules_text,
                           std::promise<UpdateOutcome> promise);

  /// Non-blocking evolve enqueue; 0 when full, throws when closed.
  std::uint64_t TryPushEvolve(Kind kind, std::string rules_text,
                              std::promise<UpdateOutcome> promise);

  /// Consumer side: blocks until a job is available or the queue is closed
  /// AND drained; false only in the latter case (the consumer's exit
  /// signal).
  bool Pop(Job& out);

  /// Stops accepting pushes.  Already-queued jobs remain poppable — close
  /// drains, it does not discard.  Idempotent.
  void Close();

  [[nodiscard]] bool Closed() const;
  [[nodiscard]] std::size_t Capacity() const { return capacity_; }
  [[nodiscard]] std::size_t Depth() const;
  /// Deepest the queue has ever been.
  [[nodiscard]] std::size_t HighWater() const;
  /// Pushes that had to wait (or TryPushes declined) because the queue was
  /// at capacity — the "backpressure engaged" counter.
  [[nodiscard]] std::uint64_t BlockedPushes() const;
  /// Epochs assigned so far (== total accepted batches).
  [[nodiscard]] std::uint64_t LastEpoch() const;

 private:
  std::uint64_t PushJob(Job job, bool blocking);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Job> jobs_;
  std::uint64_t next_epoch_ = 1;
  std::size_t high_water_ = 0;
  std::uint64_t blocked_pushes_ = 0;
  bool closed_ = false;
};

}  // namespace dsched::service
