#include "service/engine_host.hpp"

#include "service/session.hpp"

namespace dsched::service {

EngineHost::EngineHost(const HostOptions& options)
    : core_(std::make_shared<detail::HostCore>(options)) {}

std::shared_ptr<Session> EngineHost::OpenSession(std::string_view program_text,
                                                 const SessionOptions& options) {
  auto session = std::make_shared<Session>(core_, program_text, options);
  core_->Register(session->Id(), session);
  return session;
}

std::shared_ptr<Session> EngineHost::FindSession(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(core_->registry_mutex);
  auto it = core_->session_registry.find(id);
  if (it == core_->session_registry.end()) {
    return nullptr;
  }
  // lock() can still miss: the owner dropped its shared_ptr and the
  // destructor (which runs Close -> Unregister) has not erased us yet.
  return it->second.lock();
}

std::vector<std::uint64_t> EngineHost::ActiveSessionIds() {
  const std::lock_guard<std::mutex> lock(core_->registry_mutex);
  std::vector<std::uint64_t> ids;
  ids.reserve(core_->session_registry.size());
  for (const auto& [id, weak] : core_->session_registry) {
    if (!weak.expired()) {
      ids.push_back(id);
    }
  }
  return ids;
}

void EngineHost::ExportMetrics() {
  obs::MetricsRegistry& metrics = core_->metrics;
  metrics.Set("host.workers", core_->router.NumWorkers());
  metrics.Set("host.active_sessions",
              core_->active_sessions.load(std::memory_order_relaxed));
  metrics.Set("host.sessions_opened",
              core_->sessions_opened.load(std::memory_order_relaxed));
  const runtime::ThreadPoolStats pool = core_->router.PoolStats();
  metrics.Set("host.pool.submitted", pool.submitted);
  metrics.Set("host.pool.executed", pool.executed);
  metrics.Set("host.pool.steals", pool.steals);
  metrics.Set("host.pool.sleeps", pool.sleeps);
  metrics.Set("host.pool.wakeups", pool.wakeups);
}

}  // namespace dsched::service
