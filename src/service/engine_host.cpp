#include "service/engine_host.hpp"

#include "service/session.hpp"

namespace dsched::service {

EngineHost::EngineHost(const HostOptions& options)
    : core_(std::make_shared<detail::HostCore>(options)) {}

std::unique_ptr<Session> EngineHost::OpenSession(std::string_view program_text,
                                                 const SessionOptions& options) {
  return std::make_unique<Session>(core_, program_text, options);
}

void EngineHost::ExportMetrics() {
  obs::MetricsRegistry& metrics = core_->metrics;
  metrics.Set("host.workers", core_->router.NumWorkers());
  metrics.Set("host.active_sessions",
              core_->active_sessions.load(std::memory_order_relaxed));
  metrics.Set("host.sessions_opened",
              core_->sessions_opened.load(std::memory_order_relaxed));
  const runtime::ThreadPoolStats pool = core_->router.PoolStats();
  metrics.Set("host.pool.submitted", pool.submitted);
  metrics.Set("host.pool.executed", pool.executed);
  metrics.Set("host.pool.steals", pool.steals);
  metrics.Set("host.pool.sleeps", pool.sleeps);
  metrics.Set("host.pool.wakeups", pool.wakeups);
}

}  // namespace dsched::service
