#include "service/session.hpp"

#include <algorithm>
#include <utility>

#include "sched/factory.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace dsched::service {

namespace {

std::string ResolveName(std::uint64_t id, const SessionOptions& options) {
  if (!options.name.empty()) {
    return options.name;
  }
  std::string name = "s";
  name += std::to_string(id);
  return name;
}

std::string ResolveSpec(const detail::HostCore& core,
                        const SessionOptions& options) {
  const std::string& spec =
      options.scheduler_spec.empty() ? core.options.default_scheduler
                                     : options.scheduler_spec;
  if (spec != "serial") {
    if (spec.find("oracle") != std::string::npos) {
      throw util::InvalidArgument(
          "sessions cannot use the clairvoyant oracle scheduler — it needs "
          "each update's outcome in advance");
    }
    // Fail at open, not at first Submit: instantiate once to validate,
    // and name every accepted spec in the rejection.
    try {
      (void)sched::CreateScheduler(spec);
    } catch (const util::Error&) {
      std::string message = "unknown scheduler spec '" + spec +
                            "'; valid values: serial";
      for (const std::string& known : sched::KnownSchedulerSpecs()) {
        message += " " + known;
      }
      throw util::InvalidArgument(message);
    }
  }
  return spec;
}

datalog::MaintenanceStrategy ResolveStrategy(const detail::HostCore& core,
                                             const SessionOptions& options) {
  const std::string& name = options.maintenance_strategy.empty()
                                ? core.options.default_strategy
                                : options.maintenance_strategy;
  // ParseMaintenanceStrategy's error already lists the valid values.
  return datalog::ParseMaintenanceStrategy(name);
}

std::size_t ResolveDepth(const detail::HostCore& core,
                         const SessionOptions& options, const std::string& spec,
                         datalog::MaintenanceStrategy strategy) {
  std::size_t depth = options.pipeline_depth > 0
                          ? options.pipeline_depth
                          : core.options.default_pipeline_depth;
  depth = std::clamp<std::size_t>(depth, 1, 64);
  // The serial engine has no cascade to fence, and counting's state
  // bracket (EnsureCountingState/SealCountingState) spans the whole update
  // against shared derivation counts — neither can overlap epochs.
  if (spec == "serial" || !datalog::StrategyPipelineEligible(strategy)) {
    depth = 1;
  }
  return depth;
}

}  // namespace

Session::Session(std::shared_ptr<detail::HostCore> core,
                 std::string_view program_text, const SessionOptions& options)
    : core_(std::move(core)),
      id_(core_->sessions_opened.fetch_add(1, std::memory_order_relaxed) + 1),
      name_(ResolveName(id_, options)),
      spec_(ResolveSpec(*core_, options)),
      strategy_(ResolveStrategy(*core_, options)),
      depth_(ResolveDepth(*core_, options, spec_, strategy_)),
      memory_budget_(options.memory_budget),
      metrics_prefix_("session." + name_ + "."),
      db_(program_text),
      queue_(options.queue_capacity > 0
                 ? options.queue_capacity
                 : core_->options.default_queue_capacity) {
  db_.SetDefaultStrategy(strategy_);
  core_->active_sessions.fetch_add(1, std::memory_order_relaxed);
  apply_threads_.reserve(depth_);
  for (std::size_t i = 0; i < depth_; ++i) {
    apply_threads_.emplace_back([this] { ApplyLoop(); });
  }
}

Session::~Session() { Close(); }

std::future<UpdateOutcome> Session::Submit(datalog::UpdateRequest request) {
  DSCHED_CHECK_MSG(db_.Materialized(), "Materialize() before Submit()");
  std::promise<UpdateOutcome> promise;
  std::future<UpdateOutcome> future = promise.get_future();
  queue_.Push(std::move(request), std::move(promise));
  core_->metrics.Add(metrics_prefix_ + "submit", 1);
  return future;
}

bool Session::TrySubmit(datalog::UpdateRequest request,
                        std::future<UpdateOutcome>* out) {
  DSCHED_CHECK_MSG(db_.Materialized(), "Materialize() before Submit()");
  std::promise<UpdateOutcome> promise;
  std::future<UpdateOutcome> future = promise.get_future();
  if (queue_.TryPush(std::move(request), std::move(promise)) == 0) {
    return false;
  }
  core_->metrics.Add(metrics_prefix_ + "submit", 1);
  if (out != nullptr) {
    *out = std::move(future);
  }
  return true;
}

std::future<UpdateOutcome> Session::SubmitEvolve(UpdateQueue::Kind kind,
                                                std::string_view text) {
  DSCHED_CHECK_MSG(db_.Materialized(), "Materialize() before changing rules");
  std::promise<UpdateOutcome> promise;
  std::future<UpdateOutcome> future = promise.get_future();
  queue_.PushEvolve(kind, std::string(text), std::move(promise));
  core_->metrics.Add(metrics_prefix_ + "evolve.submit", 1);
  return future;
}

bool Session::TrySubmitEvolve(UpdateQueue::Kind kind, std::string_view text,
                              std::future<UpdateOutcome>* out) {
  DSCHED_CHECK_MSG(db_.Materialized(), "Materialize() before changing rules");
  std::promise<UpdateOutcome> promise;
  std::future<UpdateOutcome> future = promise.get_future();
  if (queue_.TryPushEvolve(kind, std::string(text), std::move(promise)) == 0) {
    return false;
  }
  core_->metrics.Add(metrics_prefix_ + "evolve.submit", 1);
  if (out != nullptr) {
    *out = std::move(future);
  }
  return true;
}

std::future<UpdateOutcome> Session::EvolveAddRules(std::string_view rules_text) {
  return SubmitEvolve(UpdateQueue::Kind::kAddRules, rules_text);
}

std::future<UpdateOutcome> Session::EvolveRemoveRule(
    std::string_view clause_text) {
  return SubmitEvolve(UpdateQueue::Kind::kRemoveRule, clause_text);
}

bool Session::TryEvolveAddRules(std::string_view rules_text,
                                std::future<UpdateOutcome>* out) {
  return TrySubmitEvolve(UpdateQueue::Kind::kAddRules, rules_text, out);
}

bool Session::TryEvolveRemoveRule(std::string_view clause_text,
                                  std::future<UpdateOutcome>* out) {
  return TrySubmitEvolve(UpdateQueue::Kind::kRemoveRule, clause_text, out);
}

void Session::Drain() {
  const std::uint64_t target = queue_.LastEpoch();
  std::unique_lock<std::mutex> lock(pipe_mutex_);
  pipe_cv_.wait(lock, [this, target] { return applied_seq_ >= target; });
}

void Session::Close() {
  std::call_once(close_once_, [this] {
    // Drop out of FindSession first: a session that has started closing is
    // not routable (lookups return null from here on, even while draining).
    core_->Unregister(id_);
    queue_.Close();  // stop accepting; already-queued batches still apply.
    // Every apply thread fully finishes (and resolves the future of) any
    // job it already popped before Pop() returns false, so joining drains
    // every admitted epoch — no promise is ever abandoned.
    for (std::thread& t : apply_threads_) {
      if (t.joinable()) {
        t.join();
      }
    }
    PublishMetrics();
    db_.Store().ExportMetrics(core_->metrics, metrics_prefix_ + "store.");
    core_->active_sessions.fetch_sub(1, std::memory_order_relaxed);
  });
}

std::vector<datalog::Tuple> Session::Query(std::string_view predicate) const {
  // Quiesce: hold off NEW admissions (queries_waiting_) and wait for every
  // in-flight epoch to resolve; concurrent queries then read in parallel.
  std::unique_lock<std::mutex> lock(pipe_mutex_);
  ++queries_waiting_;
  pipe_cv_.wait(lock, [this] { return admitted_epoch_ == applied_seq_; });
  lock.unlock();
  std::vector<datalog::Tuple> rows;
  try {
    rows = db_.Query(predicate);
  } catch (...) {
    lock.lock();
    --queries_waiting_;
    lock.unlock();
    pipe_cv_.notify_all();
    throw;
  }
  lock.lock();
  --queries_waiting_;
  lock.unlock();
  pipe_cv_.notify_all();
  return rows;
}

bool Session::Contains(std::string_view predicate,
                       const datalog::Tuple& tuple) const {
  std::unique_lock<std::mutex> lock(pipe_mutex_);
  ++queries_waiting_;
  pipe_cv_.wait(lock, [this] { return admitted_epoch_ == applied_seq_; });
  lock.unlock();
  bool found = false;
  try {
    found = db_.Contains(predicate, tuple);
  } catch (...) {
    lock.lock();
    --queries_waiting_;
    lock.unlock();
    pipe_cv_.notify_all();
    throw;
  }
  lock.lock();
  --queries_waiting_;
  lock.unlock();
  pipe_cv_.notify_all();
  return found;
}

void Session::ApplyLoop() {
  UpdateQueue::Job job;
  // The queue is FIFO, so epochs pop in dense order even across K
  // consumer threads; the admission gate below then makes cascades START
  // in that order too, at most depth_ in flight.
  while (queue_.Pop(job)) {
    if (job.kind == UpdateQueue::Kind::kUpdate) {
      ApplyOne(job);
    } else {
      ApplyEvolve(job);
    }
  }
}

void Session::ApplyOne(UpdateQueue::Job& job) {
  // --- admission: dense start order, bounded overlap, reader priority.
  {
    std::unique_lock<std::mutex> lock(pipe_mutex_);
    pipe_cv_.wait(lock, [this, &job] {
      return admitted_epoch_ + 1 == job.epoch && !evolving_ &&
             admitted_epoch_ - applied_seq_ < depth_ && queries_waiting_ == 0;
    });
    if (admitted_epoch_ == applied_seq_) {
      busy_since_ = std::chrono::steady_clock::now();
    }
    admitted_epoch_ = job.epoch;
    inflight_high_water_ =
        std::max(inflight_high_water_, admitted_epoch_ - applied_seq_);
  }
  pipe_cv_.notify_all();  // the thread holding epoch+1 waits on admitted.

  // --- the cascade itself, outside every session lock.
  UpdateOutcome outcome;
  outcome.epoch = job.epoch;
  std::exception_ptr error;
  util::WallTimer cascade_timer;
  try {
    if (spec_ == "serial") {
      outcome.update = db_.ApplyRequest(job.request, strategy_);
    } else {
      datalog::ParallelUpdateResult result = db_.ApplyRequestParallel(
          job.request, {.scheduler_spec = spec_,
                        .workers = 0,  // ignored: the router decides
                        .router = &core_->router,
                        .strategy = strategy_,
                        .frontier = depth_ > 1 ? &frontier_ : nullptr,
                        .epoch = job.epoch,
                        .memory_budget = memory_budget_,
                        .account = &account_});
      outcome.update = std::move(result.update);
      outcome.run = result.run;
    }
  } catch (...) {
    error = std::current_exception();
  }
  if (depth_ > 1) {
    // Safety net: on success RunCascade already finalized every level; on
    // a thrown cascade this keeps successor epochs from wedging on a
    // frontier entry that would never advance.
    frontier_.FinalizeAll(job.epoch);
  }
  const double seconds = cascade_timer.ElapsedSeconds();

  // --- sequencer: resolve futures in dense epoch order.
  {
    std::unique_lock<std::mutex> lock(pipe_mutex_);
    pipe_cv_.wait(lock, [this, &job] { return applied_seq_ + 1 == job.epoch; });
    if (error == nullptr) {
      inserted_total_ += outcome.update.total_inserted;
      deleted_total_ += outcome.update.total_deleted;
      maint_ops_total_ += outcome.update.total_maint_ops;
      for (const datalog::ComponentUpdateStats& c :
           outcome.update.components) {
        maint_recounts_total_ += c.maint_recounts;
        maint_probes_total_ += c.maint_backward_probes;
        maint_avoided_total_ += c.maint_avoided;
      }
      frontier_stalls_ += outcome.run.frontier_stalls;
      frontier_stall_seconds_ += outcome.run.frontier_stall_seconds;
      mem_acquired_total_ += outcome.run.mem_acquired_bytes;
      mem_deferred_total_ += outcome.run.mem_deferred;
      mem_budget_stalls_total_ += outcome.run.mem_budget_stalls;
      mem_forced_total_ += outcome.run.mem_forced;
      job.promise.set_value(std::move(outcome));
    } else {
      // A failed batch (bad arity, engine invariant trip) fails ITS
      // future; the session stays live for subsequent batches.
      job.promise.set_exception(error);
    }
    cascade_seconds_ += seconds;
    applied_seq_ = job.epoch;
    applied_epoch_.store(job.epoch, std::memory_order_release);
    if (admitted_epoch_ == applied_seq_) {
      busy_seconds_ += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - busy_since_)
                           .count();
    }
  }
  pipe_cv_.notify_all();
  PublishMetrics();
}

void Session::ApplyEvolve(UpdateQueue::Job& job) {
  // --- admission: exclusive.  An evolve epoch starts only with the
  // pipeline fully drained (admitted == applied — every in-flight cascade
  // has resolved against the OLD program), and evolving_ keeps successor
  // epochs out until the swap + cone cascade land.  This is the evolution
  // fence that lets rule changes compose with pipeline_depth K > 1.
  {
    std::unique_lock<std::mutex> lock(pipe_mutex_);
    pipe_cv_.wait(lock, [this, &job] {
      return admitted_epoch_ + 1 == job.epoch &&
             admitted_epoch_ == applied_seq_ && queries_waiting_ == 0;
    });
    busy_since_ = std::chrono::steady_clock::now();
    admitted_epoch_ = job.epoch;
    evolving_ = true;
    inflight_high_water_ = std::max<std::uint64_t>(inflight_high_water_, 1);
  }
  pipe_cv_.notify_all();

  // --- recompile + swap + affected-cone cascade, outside session locks.
  UpdateOutcome outcome;
  outcome.epoch = job.epoch;
  std::exception_ptr error;
  util::WallTimer cascade_timer;
  try {
    const datalog::Database::EvolveResult result =
        job.kind == UpdateQueue::Kind::kAddRules
            ? db_.EvolveAddRules(job.rules_text)
            : db_.EvolveRemoveRule(job.rules_text);
    outcome.update = result.update;
    outcome.rules_changed = true;
    outcome.program_version = result.program_version;
    outcome.evolve = result.stats;
  } catch (...) {
    // A rejected change throws before the snapshot swap, so the program
    // (and store) are untouched; fail this future, stay live.
    error = std::current_exception();
  }
  if (depth_ > 1) {
    // Successor epochs' cascades gate on this epoch's frontier entry; the
    // evolve cascade ran serially, so publish it finalized wholesale.
    frontier_.FinalizeAll(job.epoch);
  }
  const double seconds = cascade_timer.ElapsedSeconds();

  // --- sequencer: trivially dense (this is the only in-flight epoch).
  {
    std::unique_lock<std::mutex> lock(pipe_mutex_);
    if (error == nullptr) {
      inserted_total_ += outcome.update.total_inserted;
      deleted_total_ += outcome.update.total_deleted;
      maint_ops_total_ += outcome.update.total_maint_ops;
      for (const datalog::ComponentUpdateStats& c :
           outcome.update.components) {
        maint_recounts_total_ += c.maint_recounts;
        maint_probes_total_ += c.maint_backward_probes;
        maint_avoided_total_ += c.maint_avoided;
      }
      ++evolve_count_;
      evolve_cone_preds_total_ += outcome.evolve.cone_predicates;
      evolve_reused_comps_total_ += outcome.evolve.reused_components;
      program_version_seen_ = outcome.program_version;
      job.promise.set_value(std::move(outcome));
    } else {
      job.promise.set_exception(error);
    }
    cascade_seconds_ += seconds;
    applied_seq_ = job.epoch;
    applied_epoch_.store(job.epoch, std::memory_order_release);
    evolving_ = false;
    busy_seconds_ += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - busy_since_)
                         .count();
  }
  pipe_cv_.notify_all();
  PublishMetrics();
}

void Session::PublishMetrics() {
  // Totals are written under pipe_mutex_ by K apply threads; snapshot
  // under the same lock, publish outside it.
  std::uint64_t applied = 0;
  std::uint64_t inserted = 0;
  std::uint64_t deleted = 0;
  std::uint64_t ops = 0;
  std::uint64_t recounts = 0;
  std::uint64_t probes = 0;
  std::uint64_t avoided = 0;
  std::uint64_t inflight_hw = 0;
  std::uint64_t stalls = 0;
  std::uint64_t mem_acquired = 0;
  std::uint64_t mem_deferred = 0;
  std::uint64_t mem_stalls = 0;
  std::uint64_t mem_forced = 0;
  std::uint64_t evolves = 0;
  std::uint64_t evolve_cone = 0;
  std::uint64_t evolve_reused = 0;
  std::uint64_t program_version = 1;
  double stall_seconds = 0.0;
  double cascade_seconds = 0.0;
  double busy_seconds = 0.0;
  {
    const std::lock_guard<std::mutex> lock(pipe_mutex_);
    applied = applied_seq_;
    evolves = evolve_count_;
    evolve_cone = evolve_cone_preds_total_;
    evolve_reused = evolve_reused_comps_total_;
    program_version = program_version_seen_;
    inserted = inserted_total_;
    deleted = deleted_total_;
    ops = maint_ops_total_;
    recounts = maint_recounts_total_;
    probes = maint_probes_total_;
    avoided = maint_avoided_total_;
    inflight_hw = inflight_high_water_;
    stalls = frontier_stalls_;
    mem_acquired = mem_acquired_total_;
    mem_deferred = mem_deferred_total_;
    mem_stalls = mem_budget_stalls_total_;
    mem_forced = mem_forced_total_;
    stall_seconds = frontier_stall_seconds_;
    cascade_seconds = cascade_seconds_;
    busy_seconds = busy_seconds_;
  }
  obs::MetricsRegistry& metrics = core_->metrics;
  metrics.Set(metrics_prefix_ + "applied", applied);
  metrics.Max(metrics_prefix_ + "queue_depth", queue_.HighWater());
  metrics.Set(metrics_prefix_ + "blocked_submits", queue_.BlockedPushes());
  metrics.Set(metrics_prefix_ + "inserted", inserted);
  metrics.Set(metrics_prefix_ + "deleted", deleted);
  metrics.Set(metrics_prefix_ + "maint.ops", ops);
  metrics.Set(metrics_prefix_ + "maint.recounts", recounts);
  metrics.Set(metrics_prefix_ + "maint.backward_probes", probes);
  metrics.Set(metrics_prefix_ + "maint.overdeletes_avoided", avoided);
  metrics.Set(metrics_prefix_ + "pipeline.depth", depth_);
  metrics.Max(metrics_prefix_ + "pipeline.inflight_high_water", inflight_hw);
  metrics.Set(metrics_prefix_ + "pipeline.stalls", stalls);
  metrics.Set(metrics_prefix_ + "pipeline.stall_ns",
              static_cast<std::uint64_t>(stall_seconds * 1e9));
  metrics.Set(metrics_prefix_ + "pipeline.cascade_ns",
              static_cast<std::uint64_t>(cascade_seconds * 1e9));
  metrics.Set(metrics_prefix_ + "pipeline.busy_ns",
              static_cast<std::uint64_t>(busy_seconds * 1e9));
  metrics.Set(metrics_prefix_ + "pipeline.finalizations",
              frontier_.Finalizations());
  metrics.Set(metrics_prefix_ + "mem.budget_bytes", memory_budget_);
  metrics.Set(metrics_prefix_ + "mem.live_bytes",
              account_.live.load(std::memory_order_relaxed));
  metrics.Max(metrics_prefix_ + "mem.peak_bytes",
              account_.peak.load(std::memory_order_relaxed));
  metrics.Set(metrics_prefix_ + "mem.acquired_bytes", mem_acquired);
  metrics.Set(metrics_prefix_ + "mem.deferred", mem_deferred);
  metrics.Set(metrics_prefix_ + "mem.budget_stalls", mem_stalls);
  metrics.Set(metrics_prefix_ + "mem.forced", mem_forced);
  metrics.Set(metrics_prefix_ + "evolve.count", evolves);
  metrics.Set(metrics_prefix_ + "evolve.cone_predicates", evolve_cone);
  metrics.Set(metrics_prefix_ + "evolve.reused_components", evolve_reused);
  metrics.Set(metrics_prefix_ + "evolve.version", program_version);
}

}  // namespace dsched::service
