#include "service/session.hpp"

#include <utility>

#include "sched/factory.hpp"
#include "util/error.hpp"

namespace dsched::service {

namespace {

std::string ResolveName(detail::HostCore& core, const SessionOptions& options) {
  const std::uint64_t id =
      core.sessions_opened.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!options.name.empty()) {
    return options.name;
  }
  return "s" + std::to_string(id);
}

std::string ResolveSpec(const detail::HostCore& core,
                        const SessionOptions& options) {
  const std::string& spec =
      options.scheduler_spec.empty() ? core.options.default_scheduler
                                     : options.scheduler_spec;
  if (spec != "serial") {
    if (spec.find("oracle") != std::string::npos) {
      throw util::InvalidArgument(
          "sessions cannot use the clairvoyant oracle scheduler — it needs "
          "each update's outcome in advance");
    }
    // Fail at open, not at first Submit: instantiate once to validate,
    // and name every accepted spec in the rejection.
    try {
      (void)sched::CreateScheduler(spec);
    } catch (const util::Error&) {
      std::string message = "unknown scheduler spec '" + spec +
                            "'; valid values: serial";
      for (const std::string& known : sched::KnownSchedulerSpecs()) {
        message += " " + known;
      }
      throw util::InvalidArgument(message);
    }
  }
  return spec;
}

datalog::MaintenanceStrategy ResolveStrategy(const detail::HostCore& core,
                                             const SessionOptions& options) {
  const std::string& name = options.maintenance_strategy.empty()
                                ? core.options.default_strategy
                                : options.maintenance_strategy;
  // ParseMaintenanceStrategy's error already lists the valid values.
  return datalog::ParseMaintenanceStrategy(name);
}

}  // namespace

Session::Session(std::shared_ptr<detail::HostCore> core,
                 std::string_view program_text, const SessionOptions& options)
    : core_(std::move(core)),
      name_(ResolveName(*core_, options)),
      spec_(ResolveSpec(*core_, options)),
      strategy_(ResolveStrategy(*core_, options)),
      metrics_prefix_("session." + name_ + "."),
      db_(program_text),
      queue_(options.queue_capacity > 0
                 ? options.queue_capacity
                 : core_->options.default_queue_capacity) {
  db_.SetDefaultStrategy(strategy_);
  core_->active_sessions.fetch_add(1, std::memory_order_relaxed);
  apply_thread_ = std::thread([this] { ApplyLoop(); });
}

Session::~Session() { Close(); }

std::future<UpdateOutcome> Session::Submit(datalog::UpdateRequest request) {
  DSCHED_CHECK_MSG(db_.Materialized(), "Materialize() before Submit()");
  std::promise<UpdateOutcome> promise;
  std::future<UpdateOutcome> future = promise.get_future();
  queue_.Push(std::move(request), std::move(promise));
  core_->metrics.Add(metrics_prefix_ + "submit", 1);
  return future;
}

bool Session::TrySubmit(datalog::UpdateRequest request,
                        std::future<UpdateOutcome>* out) {
  DSCHED_CHECK_MSG(db_.Materialized(), "Materialize() before Submit()");
  std::promise<UpdateOutcome> promise;
  std::future<UpdateOutcome> future = promise.get_future();
  if (queue_.TryPush(std::move(request), std::move(promise)) == 0) {
    return false;
  }
  core_->metrics.Add(metrics_prefix_ + "submit", 1);
  if (out != nullptr) {
    *out = std::move(future);
  }
  return true;
}

void Session::Drain() {
  const std::uint64_t target = queue_.LastEpoch();
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [this, target] {
    return applied_epoch_.load(std::memory_order_acquire) >= target;
  });
}

void Session::Close() {
  std::call_once(close_once_, [this] {
    queue_.Close();  // stop accepting; already-queued batches still apply
    if (apply_thread_.joinable()) {
      apply_thread_.join();
    }
    PublishMetrics();
    db_.Store().ExportMetrics(core_->metrics, metrics_prefix_ + "store.");
    core_->active_sessions.fetch_sub(1, std::memory_order_relaxed);
  });
}

std::vector<datalog::Tuple> Session::Query(std::string_view predicate) const {
  const std::lock_guard<std::mutex> lock(db_mutex_);
  return db_.Query(predicate);
}

bool Session::Contains(std::string_view predicate,
                       const datalog::Tuple& tuple) const {
  const std::lock_guard<std::mutex> lock(db_mutex_);
  return db_.Contains(predicate, tuple);
}

void Session::ApplyLoop() {
  UpdateQueue::Job job;
  while (queue_.Pop(job)) {
    ApplyOne(job);
  }
}

void Session::ApplyOne(UpdateQueue::Job& job) {
  UpdateOutcome outcome;
  outcome.epoch = job.epoch;
  try {
    const std::lock_guard<std::mutex> lock(db_mutex_);
    if (spec_ == "serial") {
      outcome.update = db_.ApplyRequest(job.request, strategy_);
    } else {
      datalog::ParallelUpdateResult result = db_.ApplyRequestParallel(
          job.request, {.scheduler_spec = spec_,
                        .workers = 0,  // ignored: the router decides
                        .router = &core_->router,
                        .strategy = strategy_});
      outcome.update = std::move(result.update);
      outcome.run = result.run;
    }
    inserted_total_ += outcome.update.total_inserted;
    deleted_total_ += outcome.update.total_deleted;
    maint_ops_total_ += outcome.update.total_maint_ops;
    for (const datalog::ComponentUpdateStats& c : outcome.update.components) {
      maint_recounts_total_ += c.maint_recounts;
      maint_probes_total_ += c.maint_backward_probes;
      maint_avoided_total_ += c.maint_avoided;
    }
    job.promise.set_value(std::move(outcome));
  } catch (...) {
    // A failed batch (bad arity, engine invariant trip) fails ITS future;
    // the session stays live for subsequent batches.
    job.promise.set_exception(std::current_exception());
  }
  {
    const std::lock_guard<std::mutex> lock(drain_mutex_);
    applied_epoch_.store(job.epoch, std::memory_order_release);
  }
  drain_cv_.notify_all();
  PublishMetrics();
}

void Session::PublishMetrics() {
  obs::MetricsRegistry& metrics = core_->metrics;
  metrics.Set(metrics_prefix_ + "applied",
              applied_epoch_.load(std::memory_order_relaxed));
  metrics.Max(metrics_prefix_ + "queue_depth", queue_.HighWater());
  metrics.Set(metrics_prefix_ + "blocked_submits", queue_.BlockedPushes());
  metrics.Set(metrics_prefix_ + "inserted", inserted_total_);
  metrics.Set(metrics_prefix_ + "deleted", deleted_total_);
  metrics.Set(metrics_prefix_ + "maint.ops", maint_ops_total_);
  metrics.Set(metrics_prefix_ + "maint.recounts", maint_recounts_total_);
  metrics.Set(metrics_prefix_ + "maint.backward_probes", maint_probes_total_);
  metrics.Set(metrics_prefix_ + "maint.overdeletes_avoided",
              maint_avoided_total_);
}

}  // namespace dsched::service
