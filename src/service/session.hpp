// One maintained Datalog program inside an EngineHost.
//
// A session owns everything program-scoped — the parsed+stratified program,
// its sharded RelationStore, its scheduler choice, and a bounded queue of
// pending update batches — and borrows only the host's shared worker pool.
// Batches are applied strictly in submission order by ONE apply thread per
// session (serialized-per-session), while different sessions' apply threads
// run concurrently and interleave their cascades on the shared pool
// (concurrent-across-sessions).
//
// Epoch lifecycle: Submit assigns the batch a dense 1-based epoch and
// returns a future; the apply thread pops batches in epoch order, runs the
// incremental maintenance, and fulfils the future with the epoch, the
// engine result, and the executor run stats.  After the future for epoch N
// resolves, Query() reflects every batch up to N (and possibly later ones —
// queries see the newest applied state).
//
// Lifecycle: bootstrap (Insert base facts, Materialize) → live (Submit /
// Query) → Close (stop accepting, drain the queue, join).  Close is
// idempotent and implied by destruction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "datalog/database.hpp"
#include "service/engine_host.hpp"
#include "service/update_queue.hpp"

namespace dsched::service {

/// Handle to one maintained program.  Bootstrap calls (Insert/Materialize)
/// are single-threaded by contract; Submit/Query/Close may be called from
/// any thread once materialized.
class Session {
 public:
  /// Use EngineHost::OpenSession.
  Session(std::shared_ptr<detail::HostCore> core, std::string_view program_text,
          const SessionOptions& options);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Closes (drains + joins) if still open.
  ~Session();

  // --- bootstrap -------------------------------------------------------
  [[nodiscard]] datalog::Value Sym(std::string_view name) {
    return db_.Sym(name);
  }
  void Insert(std::string_view predicate, datalog::Tuple tuple) {
    db_.Insert(predicate, std::move(tuple));
  }
  /// From-scratch evaluation to fixpoint; required before the first Submit.
  datalog::EvalStats Materialize() { return db_.Materialize(); }

  // --- live updates ----------------------------------------------------
  /// Starts a name-based batch builder bound to this session's program.
  [[nodiscard]] datalog::Database::Update MakeUpdate() {
    return db_.MakeUpdate();
  }

  /// Enqueues a batch for in-order application.  BLOCKS while the session
  /// queue is at its bound (backpressure).  Throws util::LogicError once
  /// the session is closed or closing.
  std::future<UpdateOutcome> Submit(datalog::UpdateRequest request);
  std::future<UpdateOutcome> Submit(const datalog::Database::Update& update) {
    return Submit(update.Request());
  }

  /// Non-blocking Submit: false (and no enqueue) when the queue is full.
  bool TrySubmit(datalog::UpdateRequest request,
                 std::future<UpdateOutcome>* out);

  /// Blocks until every batch accepted so far has been applied.
  void Drain();

  /// Stops accepting new batches, applies everything already queued, joins
  /// the apply thread, and publishes final session metrics.  Idempotent.
  void Close();

  // --- queries (any thread; serialized against applies) ---------------
  [[nodiscard]] std::vector<datalog::Tuple> Query(
      std::string_view predicate) const;
  [[nodiscard]] bool Contains(std::string_view predicate,
                              const datalog::Tuple& tuple) const;

  // --- introspection ---------------------------------------------------
  [[nodiscard]] const std::string& Name() const { return name_; }
  [[nodiscard]] const std::string& SchedulerSpec() const { return spec_; }
  /// The maintenance strategy every batch of this session applies with.
  [[nodiscard]] datalog::MaintenanceStrategy Strategy() const {
    return strategy_;
  }
  /// Last applied epoch (0 before any batch lands).
  [[nodiscard]] std::uint64_t AppliedEpoch() const {
    return applied_epoch_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t QueueDepth() const { return queue_.Depth(); }
  [[nodiscard]] std::size_t QueueCapacity() const {
    return queue_.Capacity();
  }
  /// The underlying store — shard-stable tuple access for equality checks.
  [[nodiscard]] const datalog::RelationStore& Store() const {
    return db_.Store();
  }
  [[nodiscard]] const datalog::Database& Db() const { return db_; }

 private:
  void ApplyLoop();
  void ApplyOne(UpdateQueue::Job& job);
  /// Publishes session.<name>.* counters into the host registry.
  void PublishMetrics();

  std::shared_ptr<detail::HostCore> core_;
  std::string name_;
  std::string spec_;
  datalog::MaintenanceStrategy strategy_;
  std::string metrics_prefix_;
  datalog::Database db_;
  UpdateQueue queue_;

  /// Serializes applies against Query/Contains.  The apply thread holds it
  /// only while mutating the store, not while blocked on the queue.
  mutable std::mutex db_mutex_;

  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::atomic<std::uint64_t> applied_epoch_{0};
  std::uint64_t inserted_total_ = 0;  ///< apply thread only
  std::uint64_t deleted_total_ = 0;   ///< apply thread only
  std::uint64_t maint_ops_total_ = 0;       ///< apply thread only
  std::uint64_t maint_recounts_total_ = 0;  ///< apply thread only
  std::uint64_t maint_probes_total_ = 0;    ///< apply thread only
  std::uint64_t maint_avoided_total_ = 0;   ///< apply thread only

  std::once_flag close_once_;
  /// Joined by Close() (which the destructor runs) before any member is
  /// destroyed.
  std::thread apply_thread_;
};

}  // namespace dsched::service
