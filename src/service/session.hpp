// One maintained Datalog program inside an EngineHost.
//
// A session owns everything program-scoped — the parsed+stratified program,
// its sharded RelationStore, its scheduler choice, and a bounded queue of
// pending update batches — and borrows only the host's shared worker pool.
//
// Epoch pipelining (DESIGN.md §12): a session runs up to K = pipeline_depth
// update cascades in flight at once.  K apply threads pop batches from the
// queue (pops are dense: the queue is FIFO, so epoch N is always popped
// before N+1, just possibly by different threads).  An ADMISSION gate lets
// epoch e start only when
//   * epoch e-1 has been admitted (cascades START in dense order),
//   * fewer than K epochs are between admitted and applied, and
//   * no query is waiting (queries see a quiesced pipeline).
// Once admitted, the cascade runs on the shared pool with the session's
// StratumFrontier as its pipeline gate: each component phase of epoch e
// holds until epoch e-1 has finalized every dependency level the phase
// could race with, so overlapping epochs interleave safely along the
// program's level structure instead of serializing whole batches.
// A SEQUENCER then resolves futures strictly in dense epoch order — the
// externally visible contract is unchanged from the K=1 loop: after the
// future for epoch N resolves, Query() reflects every batch up to N.
//
// K=1 degenerates to the classic serialized-per-session apply loop (no
// frontier, no overlap); the "serial" engine and non-pipeline-eligible
// strategies (counting) are clamped to K=1 at open.
//
// Lifecycle: bootstrap (Insert base facts, Materialize) → live (Submit /
// Query) → Close (stop accepting, drain the queue, join).  Close is
// idempotent and implied by destruction; every admitted epoch finishes and
// its future resolves before Close returns.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "datalog/database.hpp"
#include "runtime/pipeline.hpp"
#include "service/engine_host.hpp"
#include "service/update_queue.hpp"

namespace dsched::service {

/// Handle to one maintained program.  Bootstrap calls (Insert/Materialize)
/// are single-threaded by contract; Submit/Query/Close may be called from
/// any thread once materialized.
class Session {
 public:
  /// Use EngineHost::OpenSession.
  Session(std::shared_ptr<detail::HostCore> core, std::string_view program_text,
          const SessionOptions& options);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Closes (drains + joins) if still open.
  ~Session();

  // --- bootstrap -------------------------------------------------------
  [[nodiscard]] datalog::Value Sym(std::string_view name) {
    return db_.Sym(name);
  }
  void Insert(std::string_view predicate, datalog::Tuple tuple) {
    db_.Insert(predicate, std::move(tuple));
  }
  /// From-scratch evaluation to fixpoint; required before the first Submit.
  datalog::EvalStats Materialize() { return db_.Materialize(); }

  // --- live updates ----------------------------------------------------
  /// Starts a name-based batch builder bound to this session's program.
  [[nodiscard]] datalog::Database::Update MakeUpdate() {
    return db_.MakeUpdate();
  }

  /// Enqueues a batch for in-order application.  BLOCKS while the session
  /// queue is at its bound (backpressure).  Throws util::LogicError once
  /// the session is closed or closing.
  std::future<UpdateOutcome> Submit(datalog::UpdateRequest request);
  std::future<UpdateOutcome> Submit(const datalog::Database::Update& update) {
    return Submit(update.Request());
  }

  /// Non-blocking Submit: false (and no enqueue) when the queue is full.
  bool TrySubmit(datalog::UpdateRequest request,
                 std::future<UpdateOutcome>* out);

  // --- live rule evolution ---------------------------------------------
  /// Enqueues a rule-set change as an epoch of its own: the job rides the
  /// same FIFO as Submit batches, so "epoch N resolved" still means every
  /// batch AND rule change up to N is visible.  An evolve epoch is
  /// EXCLUSIVE — admission waits until every in-flight epoch has resolved
  /// (the pipeline drains past the evolution fence) and blocks successor
  /// admissions until its own cascade lands, so it composes with
  /// pipeline_depth K > 1 without fencing individual levels.  The future
  /// carries rules_changed/program_version/evolve stats on top of the
  /// usual update result.  A rejected change (parse error, unstratifiable
  /// program, unknown rule) fails ITS future; the program is untouched and
  /// the session stays live.  Blocking/backpressure contract matches
  /// Submit.
  std::future<UpdateOutcome> EvolveAddRules(std::string_view rules_text);
  std::future<UpdateOutcome> EvolveRemoveRule(std::string_view clause_text);

  /// Non-blocking variants: false (and no enqueue) when the queue is full.
  bool TryEvolveAddRules(std::string_view rules_text,
                         std::future<UpdateOutcome>* out);
  bool TryEvolveRemoveRule(std::string_view clause_text,
                           std::future<UpdateOutcome>* out);

  /// Blocks until every batch accepted so far has been applied.
  void Drain();

  /// Stops accepting new batches, applies everything already queued (every
  /// admitted epoch finishes and its future resolves), joins the apply
  /// threads, and publishes final session metrics.  Idempotent.
  void Close();

  // --- queries (any thread; quiesce the pipeline first) ----------------
  [[nodiscard]] std::vector<datalog::Tuple> Query(
      std::string_view predicate) const;
  [[nodiscard]] bool Contains(std::string_view predicate,
                              const datalog::Tuple& tuple) const;

  // --- introspection ---------------------------------------------------
  /// Host-unique numeric id (1-based, in open order).  This is the id the
  /// wire protocol routes by and EngineHost::FindSession looks up.
  [[nodiscard]] std::uint64_t Id() const { return id_; }
  [[nodiscard]] const std::string& Name() const { return name_; }
  [[nodiscard]] const std::string& SchedulerSpec() const { return spec_; }
  /// The maintenance strategy every batch of this session applies with.
  [[nodiscard]] datalog::MaintenanceStrategy Strategy() const {
    return strategy_;
  }
  /// The resolved epoch-pipeline depth K (after eligibility clamping).
  [[nodiscard]] std::size_t PipelineDepth() const { return depth_; }
  /// The session's accounted-memory ceiling (0 = none) and its live
  /// account, shared by every in-flight epoch cascade.
  [[nodiscard]] std::uint64_t MemoryBudget() const { return memory_budget_; }
  [[nodiscard]] const runtime::ResourceAccount& Account() const {
    return account_;
  }
  /// Last applied epoch (0 before any batch lands).  Monotone; epoch N
  /// applied implies all earlier epochs applied (dense resolution order).
  [[nodiscard]] std::uint64_t AppliedEpoch() const {
    return applied_epoch_.load(std::memory_order_acquire);
  }
  /// Current program version (1 at open, +1 per applied rule change).
  [[nodiscard]] std::uint64_t ProgramVersion() const {
    return db_.ProgramVersion();
  }
  [[nodiscard]] std::size_t QueueDepth() const { return queue_.Depth(); }
  [[nodiscard]] std::size_t QueueCapacity() const {
    return queue_.Capacity();
  }
  /// The underlying store — shard-stable tuple access for equality checks.
  [[nodiscard]] const datalog::RelationStore& Store() const {
    return db_.Store();
  }
  [[nodiscard]] const datalog::Database& Db() const { return db_; }

 private:
  void ApplyLoop();
  void ApplyOne(UpdateQueue::Job& job);
  void ApplyEvolve(UpdateQueue::Job& job);
  std::future<UpdateOutcome> SubmitEvolve(UpdateQueue::Kind kind,
                                          std::string_view text);
  bool TrySubmitEvolve(UpdateQueue::Kind kind, std::string_view text,
                       std::future<UpdateOutcome>* out);
  /// Publishes session.<name>.* counters into the host registry.
  void PublishMetrics();

  std::shared_ptr<detail::HostCore> core_;
  std::uint64_t id_;
  std::string name_;
  std::string spec_;
  datalog::MaintenanceStrategy strategy_;
  std::size_t depth_;
  std::uint64_t memory_budget_;
  std::string metrics_prefix_;
  datalog::Database db_;
  UpdateQueue queue_;

  /// One live-resource account for the whole session: all K in-flight
  /// epoch cascades acquire into it, so memory_budget_ bounds their joint
  /// accounted footprint (runtime/executor.hpp).
  runtime::ResourceAccount account_;

  /// The session's epoch frontier: cascades publish per-level finalization
  /// into it and successors gate on it (runtime/pipeline.hpp).  Only
  /// consulted when depth_ > 1.
  runtime::StratumFrontier frontier_;

  /// One mutex guards ALL pipeline state below (admission, sequencing,
  /// query quiescence, totals).  Apply threads hold it only around state
  /// transitions, never while a cascade runs.
  mutable std::mutex pipe_mutex_;
  mutable std::condition_variable pipe_cv_;
  /// Highest epoch whose cascade has been admitted (started).
  std::uint64_t admitted_epoch_ = 0;
  /// Highest epoch whose future has resolved; dense, so in-flight count is
  /// admitted_epoch_ - applied_seq_.
  std::uint64_t applied_seq_ = 0;
  /// Queries blocked waiting for the pipeline to quiesce; > 0 holds off
  /// new admissions so readers are not starved by a busy pipeline.
  mutable std::size_t queries_waiting_ = 0;
  /// True while an evolve epoch's cascade is between admission and
  /// resolution.  Evolve admission drains the pipeline (admitted ==
  /// applied) and this flag keeps successors out until the swap + cone
  /// cascade have landed — the evolution fence.
  bool evolving_ = false;
  std::uint64_t inflight_high_water_ = 0;
  /// Wall time with >= 1 epoch in flight (for the overlap ratio vs the sum
  /// of per-cascade times).
  double busy_seconds_ = 0.0;
  std::chrono::steady_clock::time_point busy_since_{};
  double cascade_seconds_ = 0.0;
  std::uint64_t frontier_stalls_ = 0;
  double frontier_stall_seconds_ = 0.0;
  std::uint64_t mem_acquired_total_ = 0;
  std::uint64_t mem_deferred_total_ = 0;
  std::uint64_t mem_budget_stalls_total_ = 0;
  std::uint64_t mem_forced_total_ = 0;
  std::uint64_t inserted_total_ = 0;
  std::uint64_t deleted_total_ = 0;
  std::uint64_t maint_ops_total_ = 0;
  std::uint64_t maint_recounts_total_ = 0;
  std::uint64_t maint_probes_total_ = 0;
  std::uint64_t maint_avoided_total_ = 0;
  std::uint64_t evolve_count_ = 0;
  std::uint64_t evolve_cone_preds_total_ = 0;
  std::uint64_t evolve_reused_comps_total_ = 0;
  std::uint64_t program_version_seen_ = 1;

  /// Lock-free mirror of applied_seq_ for AppliedEpoch().
  std::atomic<std::uint64_t> applied_epoch_{0};

  std::once_flag close_once_;
  /// K apply threads; joined by Close() (which the destructor runs) before
  /// any member is destroyed.
  std::vector<std::thread> apply_threads_;
};

}  // namespace dsched::service
