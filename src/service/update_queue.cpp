#include "service/update_queue.hpp"

#include <utility>

#include "util/error.hpp"

namespace dsched::service {

UpdateQueue::UpdateQueue(std::size_t capacity) : capacity_(capacity) {
  DSCHED_CHECK_MSG(capacity_ >= 1, "update queue needs capacity >= 1");
}

std::uint64_t UpdateQueue::PushJob(Job job, bool blocking) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (blocking) {
    if (!closed_ && jobs_.size() >= capacity_) {
      ++blocked_pushes_;
      not_full_.wait(lock,
                     [this] { return closed_ || jobs_.size() < capacity_; });
    }
    if (closed_) {
      throw util::LogicError("Submit on a closed session");
    }
  } else {
    if (closed_) {
      throw util::LogicError("Submit on a closed session");
    }
    if (jobs_.size() >= capacity_) {
      ++blocked_pushes_;
      return 0;
    }
  }
  const std::uint64_t epoch = next_epoch_++;
  job.epoch = epoch;
  jobs_.push_back(std::move(job));
  high_water_ = std::max(high_water_, jobs_.size());
  lock.unlock();
  not_empty_.notify_one();
  return epoch;
}

std::uint64_t UpdateQueue::Push(datalog::UpdateRequest request,
                                std::promise<UpdateOutcome> promise) {
  Job job;
  job.kind = Kind::kUpdate;
  job.request = std::move(request);
  job.promise = std::move(promise);
  return PushJob(std::move(job), /*blocking=*/true);
}

std::uint64_t UpdateQueue::TryPush(datalog::UpdateRequest request,
                                   std::promise<UpdateOutcome> promise) {
  Job job;
  job.kind = Kind::kUpdate;
  job.request = std::move(request);
  job.promise = std::move(promise);
  return PushJob(std::move(job), /*blocking=*/false);
}

std::uint64_t UpdateQueue::PushEvolve(Kind kind, std::string rules_text,
                                      std::promise<UpdateOutcome> promise) {
  DSCHED_CHECK_MSG(kind != Kind::kUpdate, "PushEvolve needs an evolve kind");
  Job job;
  job.kind = kind;
  job.rules_text = std::move(rules_text);
  job.promise = std::move(promise);
  return PushJob(std::move(job), /*blocking=*/true);
}

std::uint64_t UpdateQueue::TryPushEvolve(Kind kind, std::string rules_text,
                                         std::promise<UpdateOutcome> promise) {
  DSCHED_CHECK_MSG(kind != Kind::kUpdate, "PushEvolve needs an evolve kind");
  Job job;
  job.kind = kind;
  job.rules_text = std::move(rules_text);
  job.promise = std::move(promise);
  return PushJob(std::move(job), /*blocking=*/false);
}

bool UpdateQueue::Pop(Job& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) {
    return false;  // closed and drained
  }
  out = std::move(jobs_.front());
  jobs_.pop_front();
  lock.unlock();
  // A slot freed: unblock one waiting producer (or, once closed, let a
  // mid-wait producer observe the close and throw).
  not_full_.notify_one();
  return true;
}

void UpdateQueue::Close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  // Wake everyone: blocked producers must throw, the consumer must drain.
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool UpdateQueue::Closed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t UpdateQueue::Depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

std::size_t UpdateQueue::HighWater() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

std::uint64_t UpdateQueue::BlockedPushes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return blocked_pushes_;
}

std::uint64_t UpdateQueue::LastEpoch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_epoch_ - 1;
}

}  // namespace dsched::service
