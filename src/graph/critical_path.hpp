// Weighted critical path of a Dag.
//
// The paper's arbitrary-job bound is O(w/P + C) where C is the critical path
// of G (Section II-B).  This helper computes C given per-node weights (task
// spans), and the unweighted longest path as a special case.
#pragma once

#include <span>
#include <vector>

#include "graph/dag.hpp"
#include "util/types.hpp"

namespace dsched::graph {

/// Maximum, over all paths, of the sum of node weights on the path.
/// `weights` must have one entry per node.
[[nodiscard]] double CriticalPathWeight(const Dag& dag,
                                        std::span<const double> weights);

/// The node ids on one maximum-weight path, source to sink.
[[nodiscard]] std::vector<TaskId> CriticalPathNodes(
    const Dag& dag, std::span<const double> weights);

}  // namespace dsched::graph
