#include "graph/digraph_builder.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace dsched::graph {

DigraphBuilder::DigraphBuilder(std::size_t num_nodes)
    : num_nodes_(num_nodes) {}

TaskId DigraphBuilder::AddNode() {
  return AddNodes(1);
}

TaskId DigraphBuilder::AddNodes(std::size_t count) {
  const auto first = static_cast<TaskId>(num_nodes_);
  num_nodes_ += count;
  DSCHED_CHECK_MSG(num_nodes_ < util::kInvalidTask, "node id space exhausted");
  return first;
}

void DigraphBuilder::AddEdge(TaskId u, TaskId v) {
  DSCHED_CHECK_MSG(u < num_nodes_ && v < num_nodes_,
                   "edge endpoint out of range");
  if (u == v) {
    throw util::InvalidArgument("self-loop on node " + std::to_string(u) +
                                " — computation DAGs must be acyclic");
  }
  edges_.emplace_back(u, v);
}

Dag DigraphBuilder::Build() && {
  // Deduplicate parallel edges: a predicate consuming the same output twice
  // is still a single dependency.
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  const std::size_t n = num_nodes_;
  Dag dag;
  dag.out_offsets_.assign(n + 1, 0);
  dag.in_offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++dag.out_offsets_[u + 1];
    ++dag.in_offsets_[v + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    dag.out_offsets_[i + 1] += dag.out_offsets_[i];
    dag.in_offsets_[i + 1] += dag.in_offsets_[i];
  }
  dag.out_targets_.resize(edges_.size());
  dag.in_targets_.resize(edges_.size());
  {
    std::vector<std::size_t> out_cursor(dag.out_offsets_.begin(),
                                        dag.out_offsets_.end() - 1);
    std::vector<std::size_t> in_cursor(dag.in_offsets_.begin(),
                                       dag.in_offsets_.end() - 1);
    for (const auto& [u, v] : edges_) {
      dag.out_targets_[out_cursor[u]++] = v;
      dag.in_targets_[in_cursor[v]++] = u;
    }
  }

  // Kahn's algorithm both verifies acyclicity and lets us report an offending
  // node if a cycle exists.
  std::vector<std::size_t> indeg(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    indeg[v] = dag.in_offsets_[v + 1] - dag.in_offsets_[v];
  }
  std::vector<TaskId> queue;
  queue.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) {
      queue.push_back(static_cast<TaskId>(v));
    }
  }
  std::size_t processed = 0;
  while (processed < queue.size()) {
    const TaskId u = queue[processed++];
    for (const TaskId v : dag.OutNeighbors(u)) {
      if (--indeg[v] == 0) {
        queue.push_back(v);
      }
    }
  }
  if (processed != n) {
    // Find some node still carrying in-degree: it lies on or behind a cycle.
    TaskId witness = util::kInvalidTask;
    for (std::size_t v = 0; v < n; ++v) {
      if (indeg[v] > 0) {
        witness = static_cast<TaskId>(v);
        break;
      }
    }
    throw util::InvalidArgument(
        "graph contains a cycle (node " + std::to_string(witness) +
        " is on or downstream of it); computation DAGs must be acyclic");
  }

  for (std::size_t v = 0; v < n; ++v) {
    if (dag.in_offsets_[v + 1] == dag.in_offsets_[v]) {
      dag.sources_.push_back(static_cast<TaskId>(v));
    }
    if (dag.out_offsets_[v + 1] == dag.out_offsets_[v]) {
      dag.sinks_.push_back(static_cast<TaskId>(v));
    }
  }
  return dag;
}

}  // namespace dsched::graph
