// Reachability queries on a Dag.
//
// Two tools:
//  * On-demand BFS (`IsReachable`, `Descendants`, `Ancestors`) — O(V + E)
//    per query, no precomputation.  This is the "ground truth" oracle the
//    interval-list index is tested against, and it powers the LBL(k)
//    bounded ancestor search.
//  * `ReachabilityMatrix` — a bitset transitive closure for small graphs
//    (tests, Figure-1 style descendant accounting).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dag.hpp"
#include "util/types.hpp"

namespace dsched::graph {

/// True iff there is a directed path from `from` to `to` (from == to counts
/// as reachable).
[[nodiscard]] bool IsReachable(const Dag& dag, TaskId from, TaskId to);

/// All nodes reachable from `u` by directed paths, excluding `u` itself.
[[nodiscard]] std::vector<TaskId> Descendants(const Dag& dag, TaskId u);

/// All nodes that reach `u` by directed paths, excluding `u` itself.
[[nodiscard]] std::vector<TaskId> Ancestors(const Dag& dag, TaskId u);

/// All nodes reachable from any node of `seeds`, excluding the seeds
/// themselves unless also reachable from another seed.
[[nodiscard]] std::vector<TaskId> DescendantsOfSet(
    const Dag& dag, const std::vector<TaskId>& seeds);

/// Dense transitive closure held as one bit per (u, v) pair.  Memory is
/// V^2 / 8 bytes — suitable for test graphs, not for the production-sized
/// traces.
class ReachabilityMatrix {
 public:
  explicit ReachabilityMatrix(const Dag& dag);

  /// True iff v is reachable from u (u == v included).
  [[nodiscard]] bool Reaches(TaskId u, TaskId v) const;

  /// Number of descendants of u (excluding u).
  [[nodiscard]] std::size_t DescendantCount(TaskId u) const;

 private:
  std::size_t n_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace dsched::graph
