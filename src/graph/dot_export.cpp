#include "graph/dot_export.hpp"

#include <sstream>
#include <unordered_set>

namespace dsched::graph {

void WriteDot(std::ostream& out, const Dag& dag, const DotOptions& options) {
  const std::size_t limit =
      options.max_nodes == 0 ? dag.NumNodes()
                             : std::min(options.max_nodes, dag.NumNodes());
  const std::unordered_set<TaskId> highlighted(options.highlighted.begin(),
                                               options.highlighted.end());
  const std::unordered_set<TaskId> emphasized(options.emphasized.begin(),
                                              options.emphasized.end());

  out << "digraph " << options.graph_name << " {\n";
  out << "  rankdir=TB;\n  node [shape=ellipse, fontsize=10];\n";
  for (std::size_t v = 0; v < limit; ++v) {
    const auto id = static_cast<TaskId>(v);
    out << "  n" << v;
    out << " [";
    if (v < options.labels.size() && !options.labels[v].empty()) {
      out << "label=\"" << options.labels[v] << "\"";
    } else {
      out << "label=\"" << v << "\"";
    }
    if (highlighted.contains(id)) {
      out << ", style=filled, fillcolor=" << options.highlight_color;
    }
    if (emphasized.contains(id)) {
      out << ", peripheries=2";
    }
    out << "];\n";
  }
  for (std::size_t u = 0; u < limit; ++u) {
    for (const TaskId v : dag.OutNeighbors(static_cast<TaskId>(u))) {
      if (v < limit) {
        out << "  n" << u << " -> n" << v << ";\n";
      }
    }
  }
  out << "}\n";
}

std::string ToDot(const Dag& dag, const DotOptions& options) {
  std::ostringstream oss;
  WriteDot(oss, dag, options);
  return oss.str();
}

}  // namespace dsched::graph
