#include "graph/stats.hpp"

#include <sstream>

#include "graph/levels.hpp"

namespace dsched::graph {

GraphStats ComputeGraphStats(const Dag& dag) {
  GraphStats stats;
  stats.nodes = dag.NumNodes();
  stats.edges = dag.NumEdges();
  stats.sources = dag.Sources().size();
  stats.sinks = dag.Sinks().size();
  for (std::size_t v = 0; v < dag.NumNodes(); ++v) {
    stats.out_degree.Add(static_cast<double>(dag.OutDegree(static_cast<TaskId>(v))));
    stats.in_degree.Add(static_cast<double>(dag.InDegree(static_cast<TaskId>(v))));
  }
  if (dag.NumNodes() > 0) {
    const LevelMap levels(dag);
    stats.levels = levels.NumLevels();
    for (Level l = 0; l < levels.NumLevels(); ++l) {
      stats.max_level_width =
          std::max(stats.max_level_width, levels.LevelWidth(l));
    }
    stats.avg_level_width = static_cast<double>(stats.nodes) /
                            static_cast<double>(stats.levels);
  }
  return stats;
}

std::string GraphStats::ToString() const {
  std::ostringstream oss;
  oss << "nodes=" << nodes << " edges=" << edges << " sources=" << sources
      << " sinks=" << sinks << " levels=" << levels
      << " max_level_width=" << max_level_width
      << " avg_level_width=" << avg_level_width << "\n"
      << "  out-degree: " << out_degree.ToString() << "\n"
      << "  in-degree:  " << in_degree.ToString();
  return oss.str();
}

}  // namespace dsched::graph
