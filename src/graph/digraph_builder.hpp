// Mutable staging area for constructing a Dag.
//
// Usage:
//   DigraphBuilder b(num_nodes);
//   b.AddEdge(u, v);  ...
//   Dag dag = std::move(b).Build();   // throws InvalidArgument on a cycle
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/dag.hpp"
#include "util/types.hpp"

namespace dsched::graph {

/// Accumulates nodes and edges, then freezes them into a CSR Dag.
class DigraphBuilder {
 public:
  /// Starts with `num_nodes` isolated nodes (ids 0..num_nodes-1).
  explicit DigraphBuilder(std::size_t num_nodes = 0);

  /// Appends one node; returns its id.
  TaskId AddNode();

  /// Appends `count` nodes; returns the id of the first.
  TaskId AddNodes(std::size_t count);

  /// Records the directed edge u -> v.  Self-loops are rejected immediately;
  /// duplicate edges are deduplicated during Build().
  void AddEdge(TaskId u, TaskId v);

  [[nodiscard]] std::size_t NumNodes() const { return num_nodes_; }
  [[nodiscard]] std::size_t NumStagedEdges() const { return edges_.size(); }

  /// Freezes into an immutable Dag.  Verifies acyclicity (throws
  /// util::InvalidArgument naming a node on a cycle otherwise) and
  /// deduplicates parallel edges.
  [[nodiscard]] Dag Build() &&;

 private:
  std::size_t num_nodes_;
  std::vector<std::pair<TaskId, TaskId>> edges_;
};

}  // namespace dsched::graph
