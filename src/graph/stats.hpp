// Descriptive statistics of a Dag — the columns of the paper's Table I and
// the anatomy narration of Figure 1.
#pragma once

#include <string>

#include "graph/dag.hpp"
#include "util/stats.hpp"

namespace dsched::graph {

/// Shape summary of one DAG.
struct GraphStats {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t sources = 0;
  std::size_t sinks = 0;
  std::size_t levels = 0;         ///< L: number of distinct levels.
  std::size_t max_level_width = 0;  ///< widest level (nodes on it).
  double avg_level_width = 0.0;
  util::Summary out_degree;
  util::Summary in_degree;

  /// Multi-line human-readable rendering.
  [[nodiscard]] std::string ToString() const;
};

/// Computes the summary in O(V + E).
[[nodiscard]] GraphStats ComputeGraphStats(const Dag& dag);

}  // namespace dsched::graph
