// Level computation — the precomputation step of the LevelBased scheduler.
//
// The paper (Section II-B): "each node has a level, which is the maximum
// length (number of nodes minus one) of any path from any source node to
// that node.  Source nodes are defined to have level 0."  Levels strictly
// increase along edges, which is exactly the property Lemma 1 exploits: the
// lowest-level active task can have no active ancestor.
//
// Cost: O(V + E) time and O(V) space (Theorem 2's precomputation bounds).
#pragma once

#include <vector>

#include "graph/dag.hpp"
#include "util/types.hpp"

namespace dsched::graph {

using util::Level;

/// Per-node levels plus a grouped-by-level index of the nodes.
class LevelMap {
 public:
  /// Computes levels for every node of `dag`.
  explicit LevelMap(const Dag& dag);

  /// Level of one node.
  [[nodiscard]] Level LevelOf(TaskId u) const { return levels_[u]; }

  /// All per-node levels (index = node id).
  [[nodiscard]] const std::vector<Level>& Levels() const { return levels_; }

  /// Number of distinct levels L (max level + 1); 0 for an empty graph.
  [[nodiscard]] std::size_t NumLevels() const { return num_levels_; }

  /// The nodes at a given level, ascending by id.
  [[nodiscard]] std::span<const TaskId> NodesAtLevel(Level level) const;

  /// Width of a level (number of nodes on it).
  [[nodiscard]] std::size_t LevelWidth(Level level) const {
    return NodesAtLevel(level).size();
  }

  /// Bytes held: the single number per node the paper highlights as the
  /// scheduler's entire precomputed state, plus the grouped index.
  [[nodiscard]] std::size_t MemoryBytes() const;

 private:
  std::vector<Level> levels_;
  std::size_t num_levels_ = 0;
  // CSR-style grouping: level_offsets_[l] .. level_offsets_[l+1] indexes
  // level_nodes_.
  std::vector<std::size_t> level_offsets_;
  std::vector<TaskId> level_nodes_;
};

/// Standalone level computation when the grouped index is not needed.
[[nodiscard]] std::vector<Level> ComputeLevels(const Dag& dag);

}  // namespace dsched::graph
