// Immutable directed-acyclic-graph in compressed-sparse-row form.
//
// The computation DAGs of the paper reach hundreds of thousands of nodes
// (Table I: up to 465,127 nodes / 557,702 edges), so the representation is a
// flat CSR with both forward (out-neighbour) and reverse (in-neighbour)
// adjacency.  Construction goes through DigraphBuilder, which verifies
// acyclicity; a Dag instance is therefore acyclic by construction.
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace dsched::graph {

using util::TaskId;

/// An immutable DAG over dense node ids [0, NumNodes()).
class Dag {
 public:
  /// Empty graph.
  Dag() = default;

  /// Number of vertices.
  [[nodiscard]] std::size_t NumNodes() const { return out_offsets_.empty() ? 0 : out_offsets_.size() - 1; }

  /// Number of directed edges.
  [[nodiscard]] std::size_t NumEdges() const { return out_targets_.size(); }

  /// Children of `u` (targets of out-edges).
  [[nodiscard]] std::span<const TaskId> OutNeighbors(TaskId u) const;

  /// Parents of `u` (sources of in-edges).
  [[nodiscard]] std::span<const TaskId> InNeighbors(TaskId u) const;

  [[nodiscard]] std::size_t OutDegree(TaskId u) const {
    return OutNeighbors(u).size();
  }
  [[nodiscard]] std::size_t InDegree(TaskId u) const {
    return InNeighbors(u).size();
  }

  /// Nodes with in-degree 0 — the "source nodes" of the paper, representing
  /// base data of the database.
  [[nodiscard]] const std::vector<TaskId>& Sources() const { return sources_; }

  /// Nodes with out-degree 0.
  [[nodiscard]] const std::vector<TaskId>& Sinks() const { return sinks_; }

  /// Approximate resident bytes of the adjacency structure.
  [[nodiscard]] std::size_t MemoryBytes() const;

 private:
  friend class DigraphBuilder;

  std::vector<std::size_t> out_offsets_;
  std::vector<TaskId> out_targets_;
  std::vector<std::size_t> in_offsets_;
  std::vector<TaskId> in_targets_;
  std::vector<TaskId> sources_;
  std::vector<TaskId> sinks_;
};

}  // namespace dsched::graph
