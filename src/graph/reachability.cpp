#include "graph/reachability.hpp"

#include <algorithm>
#include <bit>

#include "graph/topo.hpp"
#include "util/error.hpp"

namespace dsched::graph {

namespace {

/// Generic BFS from a seed set along a neighbour accessor.
template <typename NeighborFn>
std::vector<TaskId> Sweep(const Dag& dag, const std::vector<TaskId>& seeds,
                          NeighborFn&& neighbors) {
  std::vector<bool> seen(dag.NumNodes(), false);
  std::vector<TaskId> frontier;
  for (const TaskId s : seeds) {
    DSCHED_CHECK_MSG(s < dag.NumNodes(), "seed out of range");
    if (!seen[s]) {
      seen[s] = true;
      frontier.push_back(s);
    }
  }
  std::vector<TaskId> out;
  std::size_t head = 0;
  while (head < frontier.size()) {
    const TaskId u = frontier[head++];
    for (const TaskId v : neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        frontier.push_back(v);
        out.push_back(v);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

bool IsReachable(const Dag& dag, TaskId from, TaskId to) {
  DSCHED_CHECK_MSG(from < dag.NumNodes() && to < dag.NumNodes(),
                   "node id out of range");
  if (from == to) {
    return true;
  }
  std::vector<bool> seen(dag.NumNodes(), false);
  std::vector<TaskId> stack{from};
  seen[from] = true;
  while (!stack.empty()) {
    const TaskId u = stack.back();
    stack.pop_back();
    for (const TaskId v : dag.OutNeighbors(u)) {
      if (v == to) {
        return true;
      }
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  return false;
}

std::vector<TaskId> Descendants(const Dag& dag, TaskId u) {
  return Sweep(dag, {u}, [&](TaskId x) { return dag.OutNeighbors(x); });
}

std::vector<TaskId> Ancestors(const Dag& dag, TaskId u) {
  return Sweep(dag, {u}, [&](TaskId x) { return dag.InNeighbors(x); });
}

std::vector<TaskId> DescendantsOfSet(const Dag& dag,
                                     const std::vector<TaskId>& seeds) {
  return Sweep(dag, seeds, [&](TaskId x) { return dag.OutNeighbors(x); });
}

ReachabilityMatrix::ReachabilityMatrix(const Dag& dag)
    : n_(dag.NumNodes()), words_per_row_((n_ + 63) / 64) {
  bits_.assign(n_ * words_per_row_, 0);
  const auto set_bit = [&](std::size_t row, std::size_t col) {
    bits_[row * words_per_row_ + col / 64] |= (1ULL << (col % 64));
  };
  // Reverse topological order: a node's row is the union of its children's
  // rows plus the children themselves plus itself.
  const auto order = TopologicalOrder(dag);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId u = *it;
    set_bit(u, u);
    for (const TaskId v : dag.OutNeighbors(u)) {
      const std::size_t dst = static_cast<std::size_t>(u) * words_per_row_;
      const std::size_t src = static_cast<std::size_t>(v) * words_per_row_;
      for (std::size_t w = 0; w < words_per_row_; ++w) {
        bits_[dst + w] |= bits_[src + w];
      }
    }
  }
}

bool ReachabilityMatrix::Reaches(TaskId u, TaskId v) const {
  DSCHED_CHECK_MSG(u < n_ && v < n_, "node id out of range");
  return (bits_[static_cast<std::size_t>(u) * words_per_row_ + v / 64] >>
          (v % 64)) &
         1ULL;
}

std::size_t ReachabilityMatrix::DescendantCount(TaskId u) const {
  DSCHED_CHECK_MSG(u < n_, "node id out of range");
  std::size_t count = 0;
  const std::size_t base = static_cast<std::size_t>(u) * words_per_row_;
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    count += static_cast<std::size_t>(std::popcount(bits_[base + w]));
  }
  return count - 1;  // exclude u itself
}

}  // namespace dsched::graph
