#include "graph/levels.hpp"

#include <algorithm>

#include "graph/topo.hpp"
#include "util/error.hpp"

namespace dsched::graph {

std::vector<Level> ComputeLevels(const Dag& dag) {
  const std::size_t n = dag.NumNodes();
  std::vector<Level> levels(n, 0);
  // Longest path from any source: one relaxation pass in topological order.
  for (const TaskId u : TopologicalOrder(dag)) {
    const Level next = levels[u] + 1;
    for (const TaskId v : dag.OutNeighbors(u)) {
      levels[v] = std::max(levels[v], next);
    }
  }
  return levels;
}

LevelMap::LevelMap(const Dag& dag) : levels_(ComputeLevels(dag)) {
  const std::size_t n = dag.NumNodes();
  if (n == 0) {
    level_offsets_.assign(1, 0);
    return;
  }
  Level max_level = 0;
  for (const Level l : levels_) {
    max_level = std::max(max_level, l);
  }
  num_levels_ = static_cast<std::size_t>(max_level) + 1;

  level_offsets_.assign(num_levels_ + 1, 0);
  for (const Level l : levels_) {
    ++level_offsets_[l + 1];
  }
  for (std::size_t l = 0; l < num_levels_; ++l) {
    level_offsets_[l + 1] += level_offsets_[l];
  }
  level_nodes_.resize(n);
  std::vector<std::size_t> cursor(level_offsets_.begin(),
                                  level_offsets_.end() - 1);
  for (std::size_t v = 0; v < n; ++v) {
    level_nodes_[cursor[levels_[v]]++] = static_cast<TaskId>(v);
  }
}

std::span<const TaskId> LevelMap::NodesAtLevel(Level level) const {
  DSCHED_CHECK_MSG(static_cast<std::size_t>(level) < num_levels_,
                   "level out of range");
  return {level_nodes_.data() + level_offsets_[level],
          level_offsets_[level + 1] - level_offsets_[level]};
}

std::size_t LevelMap::MemoryBytes() const {
  return levels_.capacity() * sizeof(Level) +
         level_offsets_.capacity() * sizeof(std::size_t) +
         level_nodes_.capacity() * sizeof(TaskId);
}

}  // namespace dsched::graph
