// Graphviz DOT export, used by the Figure 1 anatomy bench and the examples
// to visualize activation cascades (active nodes highlighted).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "graph/dag.hpp"
#include "util/types.hpp"

namespace dsched::graph {

/// Rendering options for WriteDot.
struct DotOptions {
  std::string graph_name = "dag";
  /// Nodes to fill (e.g. the active set); everything else is plain.
  std::vector<TaskId> highlighted;
  std::string highlight_color = "orange";
  /// Nodes to double-circle (e.g. initially dirty sources).
  std::vector<TaskId> emphasized;
  /// Optional per-node labels; empty → numeric ids.
  std::vector<std::string> labels;
  /// If non-zero, only nodes with id < max_nodes are emitted (excerpting a
  /// huge DAG the way Figure 1 excerpts dataset #1).
  std::size_t max_nodes = 0;
};

/// Writes `dag` in DOT syntax to `out`.
void WriteDot(std::ostream& out, const Dag& dag, const DotOptions& options = {});

/// Convenience: render to a string.
[[nodiscard]] std::string ToDot(const Dag& dag, const DotOptions& options = {});

}  // namespace dsched::graph
