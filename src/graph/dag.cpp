#include "graph/dag.hpp"

#include "util/error.hpp"

namespace dsched::graph {

std::span<const TaskId> Dag::OutNeighbors(TaskId u) const {
  DSCHED_CHECK_MSG(u < NumNodes(), "node id out of range");
  return {out_targets_.data() + out_offsets_[u],
          out_offsets_[u + 1] - out_offsets_[u]};
}

std::span<const TaskId> Dag::InNeighbors(TaskId u) const {
  DSCHED_CHECK_MSG(u < NumNodes(), "node id out of range");
  return {in_targets_.data() + in_offsets_[u],
          in_offsets_[u + 1] - in_offsets_[u]};
}

std::size_t Dag::MemoryBytes() const {
  return out_offsets_.capacity() * sizeof(std::size_t) +
         out_targets_.capacity() * sizeof(TaskId) +
         in_offsets_.capacity() * sizeof(std::size_t) +
         in_targets_.capacity() * sizeof(TaskId) +
         sources_.capacity() * sizeof(TaskId) +
         sinks_.capacity() * sizeof(TaskId);
}

}  // namespace dsched::graph
