#include "graph/topo.hpp"

#include <queue>

#include "util/error.hpp"

namespace dsched::graph {

std::vector<TaskId> TopologicalOrder(const Dag& dag) {
  const std::size_t n = dag.NumNodes();
  std::vector<std::size_t> indeg(n);
  // Min-heap on node id gives a canonical order for tests and golden files.
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (std::size_t v = 0; v < n; ++v) {
    indeg[v] = dag.InDegree(static_cast<TaskId>(v));
    if (indeg[v] == 0) {
      ready.push(static_cast<TaskId>(v));
    }
  }
  std::vector<TaskId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const TaskId u = ready.top();
    ready.pop();
    order.push_back(u);
    for (const TaskId v : dag.OutNeighbors(u)) {
      if (--indeg[v] == 0) {
        ready.push(v);
      }
    }
  }
  DSCHED_CHECK_MSG(order.size() == n, "Dag invariant violated: cycle found");
  return order;
}

std::vector<std::size_t> TopologicalRank(const Dag& dag) {
  const auto order = TopologicalOrder(dag);
  std::vector<std::size_t> rank(dag.NumNodes());
  for (std::size_t i = 0; i < order.size(); ++i) {
    rank[order[i]] = i;
  }
  return rank;
}

}  // namespace dsched::graph
