#include "graph/critical_path.hpp"

#include <algorithm>

#include "graph/topo.hpp"
#include "util/error.hpp"

namespace dsched::graph {

namespace {

/// Computes, for every node, the max weight of a path ending at it, plus the
/// predecessor on that path (kInvalidTask for path starts).
std::pair<std::vector<double>, std::vector<TaskId>> LongestTo(
    const Dag& dag, std::span<const double> weights) {
  DSCHED_CHECK_MSG(weights.size() == dag.NumNodes(),
                   "one weight per node required");
  std::vector<double> best(dag.NumNodes());
  std::vector<TaskId> pred(dag.NumNodes(), util::kInvalidTask);
  for (const TaskId u : TopologicalOrder(dag)) {
    best[u] += weights[u];
    for (const TaskId v : dag.OutNeighbors(u)) {
      if (best[u] > best[v]) {
        best[v] = best[u];
        pred[v] = u;
      }
    }
  }
  return {std::move(best), std::move(pred)};
}

}  // namespace

double CriticalPathWeight(const Dag& dag, std::span<const double> weights) {
  if (dag.NumNodes() == 0) {
    return 0.0;
  }
  const auto [best, pred] = LongestTo(dag, weights);
  return *std::max_element(best.begin(), best.end());
}

std::vector<TaskId> CriticalPathNodes(const Dag& dag,
                                      std::span<const double> weights) {
  if (dag.NumNodes() == 0) {
    return {};
  }
  const auto [best, pred] = LongestTo(dag, weights);
  const auto it = std::max_element(best.begin(), best.end());
  auto u = static_cast<TaskId>(it - best.begin());
  std::vector<TaskId> path;
  while (u != util::kInvalidTask) {
    path.push_back(u);
    u = pred[u];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace dsched::graph
