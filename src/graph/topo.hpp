// Topological ordering of a Dag.
#pragma once

#include <vector>

#include "graph/dag.hpp"
#include "util/types.hpp"

namespace dsched::graph {

/// Returns the nodes in a topological order (Kahn's algorithm; sources first,
/// ties broken by ascending node id, which makes the order deterministic).
[[nodiscard]] std::vector<TaskId> TopologicalOrder(const Dag& dag);

/// Returns position-of-node in the order produced by TopologicalOrder:
/// rank[u] < rank[v] whenever there is an edge u -> v.
[[nodiscard]] std::vector<std::size_t> TopologicalRank(const Dag& dag);

}  // namespace dsched::graph
