#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>
#include <mutex>

namespace dsched::obs {

MetricsRegistry::Counter& MetricsRegistry::Get(const std::string& name) {
  {
    const std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) {
      return *it->second;
    }
  }
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>(0);
  }
  return *slot;
}

void MetricsRegistry::Max(const std::string& name, std::uint64_t value) {
  Counter& counter = Get(name);
  std::uint64_t current = counter.load(std::memory_order_relaxed);
  while (current < value && !counter.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t MetricsRegistry::Value(const std::string& name) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end()
             ? 0
             : it->second->load(std::memory_order_relaxed);
}

std::vector<MetricsRegistry::Metric> MetricsRegistry::Snapshot() const {
  std::vector<Metric> out;
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, counter->load(std::memory_order_relaxed)});
  }
  return out;
}

std::string MetricsRegistry::ToText() const {
  std::string out;
  char line[192];
  for (const Metric& metric : Snapshot()) {
    std::snprintf(line, sizeof(line), "%-44s %16" PRIu64 "\n",
                  metric.name.c_str(), metric.value);
    out += line;
  }
  return out;
}

std::string MetricsRegistry::ToJson(int indent) const {
  const std::vector<Metric> metrics = Snapshot();
  const std::string pad(indent > 0 ? static_cast<std::size_t>(indent) : 0,
                        ' ');
  const char* sep = indent > 0 ? ",\n" : ", ";
  std::string out = "{";
  if (indent > 0 && !metrics.empty()) {
    out += "\n";
  }
  char buf[192];
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %" PRIu64,
                  pad.c_str(), metrics[i].name.c_str(), metrics[i].value);
    out += buf;
    if (i + 1 < metrics.size()) {
      out += sep;
    }
  }
  if (indent > 0 && !metrics.empty()) {
    out += "\n";
  }
  out += "}";
  return out;
}

}  // namespace dsched::obs
