// The event taxonomy: one category per instrumented hot path.
//
// Categories are a closed enum rather than interned strings so that the
// record path indexes a flat per-thread accumulator array (no hashing, no
// allocation) and the disabled path stays a branch.  Adding a category is
// a two-line change here; docs/OBSERVABILITY.md documents what each one
// measures and how it maps onto the paper's quantities.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dsched::obs {

enum class Category : std::uint8_t {
  // Scheduler decision paths, one per policy so a trace decomposes the
  // paper's "scheduling overhead" by who burned it.  Each scope wraps the
  // policy's PopReady / PopReadyBatch entry point; nested policies (the
  // hybrid's children, LBL's LevelBased fallback) record their own
  // category inside the parent's scope, so the parent's total is the
  // policy's whole decision cost and children attribute its parts.
  kSchedPopLevelBased,
  kSchedPopLookahead,
  kSchedPopLogicBlox,
  kSchedScanLogicBlox,  ///< the O(n^2) active-queue scan, nested in pops
  kSchedPopSignal,
  kSchedPopOracle,
  kSchedPopHybrid,
  kSchedPopMeta,

  // Executor coordinator path (runtime/executor.cpp).
  kExecDispatch,  ///< PopReadyBatch + SubmitBatch loop, per batch round
  kExecDrain,     ///< completion-buffer swap + per-completion bookkeeping
  kExecIdle,      ///< coordinator blocked waiting for a completion

  // Work-stealing pool transitions (runtime/thread_pool.cpp).
  kPoolSteal,  ///< counter: items moved off another worker's deque
  kPoolSleep,  ///< scope: worker asleep with no claimable work

  // Datalog join kernel (datalog/eval.cpp), per rule application.
  kJoinPlan,   ///< RuleJoin construction: ordering, slot + index planning
  kJoinProbe,  ///< the nested-loop join itself
  kJoinEmit,   ///< counter: head tuples emitted by the application

  // Sharded relation store (datalog/relation.cpp).
  kStorePublish,  ///< counter: staged rows published to shard delta lists
  kStoreAbsorb,   ///< scope: draining a shard's pending chunks

  // Incremental maintenance strategies (datalog/maintenance.cpp).
  kMaintPhase,            ///< scope: one component's maintenance phase body
  kMaintOverdelete,       ///< counter: tuples overdeleted (DRed step 1)
  kMaintOverdeleteAvoided,///< counter: deletions skipped vs DRed's closure
  kMaintRecount,          ///< counter: affected heads recounted (counting)
  kMaintBackwardProbe,    ///< counter: B/F "still derivable?" probes

  // Epoch pipelining (runtime/pipeline.hpp, runtime/executor.cpp).
  kPipelineStall,     ///< scope: coordinator blocked on epoch-1's frontier
  kPipelineFinalize,  ///< counter: frontier level-prefix publications

  // Per-task resource accounting plane (runtime/executor.cpp).
  kMemAcquire,   ///< counter: resource_utility bytes acquired on dispatch
  kMemRelease,   ///< counter: resource_utility bytes released on completion
  kMemDeferred,  ///< counter: dispatches deferred by the memory budget gate

  // Memory-bounded meta-scheduler (sched/meta.cpp).
  kMetaKill,     ///< counter: zeta/2 kill-rule firings (heuristic torn down)

  // Networked frontend (net/server.cpp) — the poll thread's two halves.
  kNetRead,          ///< scope: drain readable sockets + decode/dispatch
  kNetWrite,         ///< scope: flush pending outbufs to writable sockets
  kNetFrameIn,       ///< counter: well-formed frames decoded off the wire
  kNetFrameOut,      ///< counter: response frames queued for send
  kNetBackpressure,  ///< counter: submits parked on a full UpdateQueue
  kNetIdleReap,      ///< counter: connections reaped past the idle deadline

  // Live rule-set evolution (datalog/database.cpp).
  kEvolveRecompile,       ///< scope: copy + parse + cone re-stratify + swap
  kEvolveMaintain,        ///< scope: the affected-cone maintenance cascade
  kEvolveConePred,        ///< counter: predicates in the affected cone
  kEvolveReusedComponent, ///< counter: SCCs reused verbatim across versions

  kCategoryCount
};

inline constexpr std::size_t kNumCategories =
    static_cast<std::size_t>(Category::kCategoryCount);

/// Stable dotted name, e.g. "sched.pop.levelbased" — these are the `name`
/// strings in exported Chrome traces and the keys of category summaries.
[[nodiscard]] const char* CategoryName(Category category);

/// Coarse group ("sched", "exec", "pool", "join") — the Chrome `cat`
/// field, so Perfetto can filter whole subsystems.
[[nodiscard]] const char* CategoryGroup(Category category);

/// True for categories recorded as counters (value deltas), false for
/// duration scopes.
[[nodiscard]] bool IsCounterCategory(Category category);

}  // namespace dsched::obs
