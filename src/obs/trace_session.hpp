// TraceSession: the always-compiled, near-zero-cost tracing hub.
//
// Design (the scheduling-overhead claim, turned on itself): instrumented
// code wraps hot paths in OBS_SCOPE(category) from obs/obs.hpp.  When no
// session is installed that macro costs one relaxed atomic load and a
// predicted-not-taken branch — cheap enough to leave compiled into the
// scheduler pop paths, the executor dispatch loop and the join kernel
// permanently.  When a session IS installed, each scope records
//
//   * an exact per-thread, per-category accumulator bump (count + ticks +
//     value) — these never overflow, so category summaries are exact even
//     for multi-minute runs, and
//   * one Event in the thread's keep-newest ring — the material for the
//     Chrome trace_event JSON export.
//
// Threads register lazily on first record (one mutex acquisition per
// thread per session); afterwards the record path is lock-free and
// allocation-free.  Draining (Summary / ToChromeJson) is post-run by
// contract: call it after worker threads have quiesced — in this repo the
// executor's pool is joined before Run() returns, and the simulator is
// single-threaded, so "after the run call returned" is always safe.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/category.hpp"
#include "obs/clock.hpp"
#include "obs/event_ring.hpp"

namespace dsched::obs {

/// Exact per-category totals; single-writer relaxed atomics so concurrent
/// summary polling is data-race-free.
struct CategoryAccum {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> ticks{0};
  std::atomic<std::uint64_t> value{0};
};

/// Plain-value snapshot of one category's totals.
struct CategoryTotals {
  std::uint64_t count = 0;
  std::uint64_t ticks = 0;
  std::uint64_t value = 0;
};

/// Everything one thread records: its ring plus exact accumulators.
struct ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t tid_arg, std::size_t ring_capacity)
      : tid(tid_arg), ring(ring_capacity) {}

  std::uint32_t tid;
  EventRing ring;
  std::array<CategoryAccum, kNumCategories> accum{};
};

/// Per-category totals summed across threads; index by Category.
using AccumSnapshot = std::array<CategoryTotals, kNumCategories>;

class TraceSession {
 public:
  struct Options {
    /// Per-thread ring capacity (events; rounded up to a power of two).
    std::size_t ring_capacity = std::size_t{1} << 15;
  };

  TraceSession();
  explicit TraceSession(Options options);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Makes this the process-wide recording target.  One session at a time;
  /// installing over another session replaces it (the replaced session
  /// keeps its recorded data).
  void Install();

  /// Stops recording into this session (no-op if not installed).
  void Uninstall();

  /// The installed session, or nullptr — the macro fast-path check.
  static TraceSession* Current() {
    return current_.load(std::memory_order_acquire);
  }

  /// Record paths, called by ScopeGuard / OBS_COUNTER via Current().
  void RecordScope(Category category, std::uint64_t begin_ticks,
                   std::uint64_t end_ticks);
  void RecordCount(Category category, std::uint64_t delta);

  /// Drops a labelled instant event (a run boundary, a phase name) into
  /// the calling thread's stream.  Mutex-protected: markers are rare.
  void Marker(const std::string& label);

  /// Exact per-category totals summed over all registered threads.
  /// Safe to call while recording (totals are monotonic); exact once the
  /// recording threads have quiesced.  Snapshot deltas (After - Before)
  /// isolate one run inside a longer session.
  [[nodiscard]] AccumSnapshot Snapshot() const;

  /// Tick-duration -> nanoseconds under this session's calibration.
  [[nodiscard]] double DurationNs(std::uint64_t ticks) const {
    return calibration_.DurationNs(ticks);
  }

  /// Events dropped to ring overflow, summed over threads.
  [[nodiscard]] std::uint64_t DroppedEvents() const;

  /// Flat human-readable per-category summary (count, total, mean, value),
  /// one aligned line per non-empty category.  Post-quiesce.
  [[nodiscard]] std::string SummaryText() const;

  /// Chrome trace_event JSON (load in chrome://tracing or
  /// https://ui.perfetto.dev): complete ("X") events for scopes, counter
  /// ("C") events, instant ("i") markers, thread-name metadata.
  /// Post-quiesce.
  [[nodiscard]] std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path`; returns false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

 private:
  friend struct ThreadBufferResolver;
  ThreadBuffer& BufferForThisThread();

  Options options_;
  ClockCalibration calibration_;
  /// Unique per session object; lets threads detect that their cached
  /// buffer belongs to a different (possibly dead) session.
  std::uint64_t generation_;

  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;

  struct MarkerEvent {
    std::uint64_t ticks;
    std::uint32_t tid;
    std::string label;
  };
  mutable std::mutex marker_mutex_;
  std::vector<MarkerEvent> markers_;

  static std::atomic<TraceSession*> current_;
};

/// Sums the scope durations of `snapshot` over the scheduler pop
/// categories nested-safely: only top-level policy entry points count, so
/// a hybrid run is not double-charged for its children.  Pass the policy's
/// own entry category.
[[nodiscard]] inline CategoryTotals TotalsOf(const AccumSnapshot& snapshot,
                                             Category category) {
  return snapshot[static_cast<std::size_t>(category)];
}

/// Element-wise `after - before`, for isolating one run's totals.
[[nodiscard]] AccumSnapshot SnapshotDelta(const AccumSnapshot& before,
                                          const AccumSnapshot& after);

}  // namespace dsched::obs
