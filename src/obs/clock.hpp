// Timestamp source for the observability layer.
//
// Scope events are stamped with the TSC on x86-64 (one `rdtsc`, ~6ns,
// no syscall, monotonic on every post-2008 part via constant_tsc) and with
// steady_clock ticks elsewhere.  Raw ticks are meaningless across
// machines, so a TraceSession calibrates ticks-per-nanosecond once at
// construction against steady_clock and every export converts through
// that ratio — recording stays branch-plus-store cheap, unit conversion
// is paid only when a trace is drained.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace dsched::obs {

/// Raw timestamp in clock ticks (TSC counts on x86-64, steady_clock ticks
/// otherwise).  Only differences against a same-session epoch are
/// meaningful.
inline std::uint64_t NowTicks() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Tick-to-nanosecond conversion, measured once per session.
struct ClockCalibration {
  std::uint64_t epoch_ticks = 0;  ///< session start, subtracted on export
  double ns_per_tick = 1.0;

  /// Samples steady_clock and the tick source across a short spin window
  /// and fits the ratio.  Costs ~200us, paid once per TraceSession.
  static ClockCalibration Measure() {
    ClockCalibration calib;
    const auto wall_begin = std::chrono::steady_clock::now();
    const std::uint64_t ticks_begin = NowTicks();
    // Spin long enough that clock-read granularity is noise.
    for (;;) {
      const auto wall_now = std::chrono::steady_clock::now();
      if (wall_now - wall_begin >= std::chrono::microseconds(200)) {
        const std::uint64_t ticks_now = NowTicks();
        const double elapsed_ns =
            std::chrono::duration<double, std::nano>(wall_now - wall_begin)
                .count();
        const auto elapsed_ticks =
            static_cast<double>(ticks_now - ticks_begin);
        calib.ns_per_tick =
            elapsed_ticks > 0.0 ? elapsed_ns / elapsed_ticks : 1.0;
        break;
      }
    }
    calib.epoch_ticks = NowTicks();
    return calib;
  }

  /// Nanoseconds since the session epoch for an absolute tick stamp.
  [[nodiscard]] double SinceEpochNs(std::uint64_t ticks) const {
    return ticks >= epoch_ticks
               ? static_cast<double>(ticks - epoch_ticks) * ns_per_tick
               : 0.0;
  }

  /// Converts a tick *duration* to nanoseconds.
  [[nodiscard]] double DurationNs(std::uint64_t ticks) const {
    return static_cast<double>(ticks) * ns_per_tick;
  }
};

}  // namespace dsched::obs
