// A structured metrics registry — the machine-readable successor to the
// ad-hoc RunStats printf blocks.
//
// Producers (executor, simulator, eval engine, benches) export their
// counters under dotted names ("executor.sched_overhead_ns",
// "datalog.index_probes"); consumers get one sorted, diffable view:
// ToText() for humans, ToJson() for BENCH_*.json embedding and the
// `METRICS {...}` stdout line the bench harnesses print.
//
// Counters are atomics behind a shared_mutex-guarded name map: lookups by
// handle are wait-free, concurrent Add/Set/Max from worker threads are
// data-race-free (the TSan-checked contract tests/obs_test.cpp pins), and
// the map itself only locks exclusively on first use of a name.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

namespace dsched::obs {

class MetricsRegistry {
 public:
  /// A registered counter; valid for the registry's lifetime.
  using Counter = std::atomic<std::uint64_t>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it at zero.
  Counter& Get(const std::string& name);

  /// Atomically adds `delta` to `name`.
  void Add(const std::string& name, std::uint64_t delta) {
    Get(name).fetch_add(delta, std::memory_order_relaxed);
  }

  /// Overwrites `name` with `value`.
  void Set(const std::string& name, std::uint64_t value) {
    Get(name).store(value, std::memory_order_relaxed);
  }

  /// Raises `name` to at least `value` (high-water marks).
  void Max(const std::string& name, std::uint64_t value);

  /// Current value of `name` (0 if never touched).
  [[nodiscard]] std::uint64_t Value(const std::string& name) const;

  struct Metric {
    std::string name;
    std::uint64_t value = 0;
  };

  /// All metrics, sorted by name — the stable order both renderers use.
  [[nodiscard]] std::vector<Metric> Snapshot() const;

  /// One aligned "name  value" line per metric.
  [[nodiscard]] std::string ToText() const;

  /// A single JSON object, keys sorted: {"a.b": 1, "a.c": 2}.  `indent`
  /// spaces per line when > 0, single-line otherwise.
  [[nodiscard]] std::string ToJson(int indent = 0) const;

 private:
  mutable std::shared_mutex mutex_;
  /// std::map: sorted iteration gives deterministic, diffable output.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
};

}  // namespace dsched::obs
