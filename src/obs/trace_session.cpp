#include "obs/trace_session.hpp"

#include <algorithm>
#include <cstdio>
#include <cinttypes>

namespace dsched::obs {

namespace {

/// Global generation counter: every session object gets a unique value, so
/// a thread's cached buffer pointer can never be mistaken for another
/// session's.
std::atomic<std::uint64_t> g_generation{0};

struct ThreadCache {
  std::uint64_t generation = 0;
  ThreadBuffer* buffer = nullptr;
};

thread_local ThreadCache t_cache;

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Human units for a nanosecond figure: "1.234 s" / "5.678 ms" / "910 ns".
std::string FormatNs(double ns) {
  char buf[48];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3f s", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  }
  return buf;
}

}  // namespace

const char* CategoryName(Category category) {
  switch (category) {
    case Category::kSchedPopLevelBased:
      return "sched.pop.levelbased";
    case Category::kSchedPopLookahead:
      return "sched.pop.lbl";
    case Category::kSchedPopLogicBlox:
      return "sched.pop.logicblox";
    case Category::kSchedScanLogicBlox:
      return "sched.scan.logicblox";
    case Category::kSchedPopSignal:
      return "sched.pop.signal";
    case Category::kSchedPopOracle:
      return "sched.pop.oracle";
    case Category::kSchedPopHybrid:
      return "sched.pop.hybrid";
    case Category::kSchedPopMeta:
      return "sched.pop.meta";
    case Category::kExecDispatch:
      return "exec.dispatch";
    case Category::kExecDrain:
      return "exec.drain";
    case Category::kExecIdle:
      return "exec.idle";
    case Category::kPoolSteal:
      return "pool.steal";
    case Category::kPoolSleep:
      return "pool.sleep";
    case Category::kJoinPlan:
      return "join.plan";
    case Category::kJoinProbe:
      return "join.probe";
    case Category::kJoinEmit:
      return "join.emit";
    case Category::kStorePublish:
      return "store.publish";
    case Category::kStoreAbsorb:
      return "store.absorb";
    case Category::kMaintPhase:
      return "maint.phase";
    case Category::kMaintOverdelete:
      return "maint.overdelete";
    case Category::kMaintOverdeleteAvoided:
      return "maint.overdelete_avoided";
    case Category::kMaintRecount:
      return "maint.recount";
    case Category::kMaintBackwardProbe:
      return "maint.backward_probe";
    case Category::kPipelineStall:
      return "pipeline.stall";
    case Category::kPipelineFinalize:
      return "pipeline.finalize";
    case Category::kMemAcquire:
      return "mem.acquire";
    case Category::kMemRelease:
      return "mem.release";
    case Category::kMemDeferred:
      return "mem.deferred";
    case Category::kMetaKill:
      return "meta.kill";
    case Category::kNetRead:
      return "net.read";
    case Category::kNetWrite:
      return "net.write";
    case Category::kNetFrameIn:
      return "net.frame_in";
    case Category::kNetFrameOut:
      return "net.frame_out";
    case Category::kNetBackpressure:
      return "net.backpressure";
    case Category::kNetIdleReap:
      return "net.idle_reap";
    case Category::kEvolveRecompile:
      return "evolve.recompile";
    case Category::kEvolveMaintain:
      return "evolve.maintain";
    case Category::kEvolveConePred:
      return "evolve.cone_preds";
    case Category::kEvolveReusedComponent:
      return "evolve.reused_components";
    case Category::kCategoryCount:
      break;
  }
  return "?";
}

const char* CategoryGroup(Category category) {
  switch (category) {
    case Category::kSchedPopLevelBased:
    case Category::kSchedPopLookahead:
    case Category::kSchedPopLogicBlox:
    case Category::kSchedScanLogicBlox:
    case Category::kSchedPopSignal:
    case Category::kSchedPopOracle:
    case Category::kSchedPopHybrid:
    case Category::kSchedPopMeta:
      return "sched";
    case Category::kExecDispatch:
    case Category::kExecDrain:
    case Category::kExecIdle:
      return "exec";
    case Category::kPoolSteal:
    case Category::kPoolSleep:
      return "pool";
    case Category::kJoinPlan:
    case Category::kJoinProbe:
    case Category::kJoinEmit:
      return "join";
    case Category::kStorePublish:
    case Category::kStoreAbsorb:
      return "store";
    case Category::kMaintPhase:
    case Category::kMaintOverdelete:
    case Category::kMaintOverdeleteAvoided:
    case Category::kMaintRecount:
    case Category::kMaintBackwardProbe:
      return "maint";
    case Category::kPipelineStall:
    case Category::kPipelineFinalize:
      return "pipeline";
    case Category::kMemAcquire:
    case Category::kMemRelease:
    case Category::kMemDeferred:
      return "mem";
    case Category::kMetaKill:
      return "meta";
    case Category::kNetRead:
    case Category::kNetWrite:
    case Category::kNetFrameIn:
    case Category::kNetFrameOut:
    case Category::kNetBackpressure:
    case Category::kNetIdleReap:
      return "net";
    case Category::kEvolveRecompile:
    case Category::kEvolveMaintain:
    case Category::kEvolveConePred:
    case Category::kEvolveReusedComponent:
      return "evolve";
    case Category::kCategoryCount:
      break;
  }
  return "?";
}

bool IsCounterCategory(Category category) {
  return category == Category::kPoolSteal ||
         category == Category::kJoinEmit ||
         category == Category::kStorePublish ||
         category == Category::kMaintOverdelete ||
         category == Category::kMaintOverdeleteAvoided ||
         category == Category::kMaintRecount ||
         category == Category::kMaintBackwardProbe ||
         category == Category::kPipelineFinalize ||
         category == Category::kMemAcquire ||
         category == Category::kMemRelease ||
         category == Category::kMemDeferred ||
         category == Category::kMetaKill ||
         category == Category::kNetFrameIn ||
         category == Category::kNetFrameOut ||
         category == Category::kNetBackpressure ||
         category == Category::kNetIdleReap ||
         category == Category::kEvolveConePred ||
         category == Category::kEvolveReusedComponent;
}

std::atomic<TraceSession*> TraceSession::current_{nullptr};

TraceSession::TraceSession() : TraceSession(Options{}) {}

TraceSession::TraceSession(Options options)
    : options_(options),
      calibration_(ClockCalibration::Measure()),
      generation_(g_generation.fetch_add(1, std::memory_order_relaxed) + 1) {}

TraceSession::~TraceSession() { Uninstall(); }

void TraceSession::Install() {
  current_.store(this, std::memory_order_release);
}

void TraceSession::Uninstall() {
  TraceSession* expected = this;
  current_.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_acq_rel);
}

ThreadBuffer& TraceSession::BufferForThisThread() {
  ThreadCache& cache = t_cache;
  if (cache.generation != generation_) {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    auto buffer = std::make_unique<ThreadBuffer>(
        static_cast<std::uint32_t>(buffers_.size()), options_.ring_capacity);
    cache.buffer = buffer.get();
    cache.generation = generation_;
    buffers_.push_back(std::move(buffer));
  }
  return *cache.buffer;
}

void TraceSession::RecordScope(Category category, std::uint64_t begin_ticks,
                               std::uint64_t end_ticks) {
  ThreadBuffer& buffer = BufferForThisThread();
  CategoryAccum& accum = buffer.accum[static_cast<std::size_t>(category)];
  accum.count.fetch_add(1, std::memory_order_relaxed);
  accum.ticks.fetch_add(end_ticks > begin_ticks ? end_ticks - begin_ticks : 0,
                        std::memory_order_relaxed);
  buffer.ring.Push({begin_ticks, end_ticks, 0, category, EventKind::kScope});
}

void TraceSession::RecordCount(Category category, std::uint64_t delta) {
  ThreadBuffer& buffer = BufferForThisThread();
  CategoryAccum& accum = buffer.accum[static_cast<std::size_t>(category)];
  accum.count.fetch_add(1, std::memory_order_relaxed);
  accum.value.fetch_add(delta, std::memory_order_relaxed);
  const std::uint64_t now = NowTicks();
  buffer.ring.Push({now, now, delta, category, EventKind::kCounter});
}

void TraceSession::Marker(const std::string& label) {
  const std::uint32_t tid = BufferForThisThread().tid;
  const std::lock_guard<std::mutex> lock(marker_mutex_);
  markers_.push_back({NowTicks(), tid, label});
}

AccumSnapshot TraceSession::Snapshot() const {
  AccumSnapshot snapshot{};
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    for (std::size_t c = 0; c < kNumCategories; ++c) {
      snapshot[c].count +=
          buffer->accum[c].count.load(std::memory_order_relaxed);
      snapshot[c].ticks +=
          buffer->accum[c].ticks.load(std::memory_order_relaxed);
      snapshot[c].value +=
          buffer->accum[c].value.load(std::memory_order_relaxed);
    }
  }
  return snapshot;
}

AccumSnapshot SnapshotDelta(const AccumSnapshot& before,
                            const AccumSnapshot& after) {
  AccumSnapshot delta{};
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    delta[c].count = after[c].count - before[c].count;
    delta[c].ticks = after[c].ticks - before[c].ticks;
    delta[c].value = after[c].value - before[c].value;
  }
  return delta;
}

std::uint64_t TraceSession::DroppedEvents() const {
  std::uint64_t dropped = 0;
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    dropped += buffer->ring.Dropped();
  }
  return dropped;
}

std::string TraceSession::SummaryText() const {
  const AccumSnapshot snapshot = Snapshot();
  std::string out =
      "category                 count        total         mean        value\n";
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    const CategoryTotals& totals = snapshot[c];
    if (totals.count == 0) {
      continue;
    }
    const auto category = static_cast<Category>(c);
    const double total_ns = DurationNs(totals.ticks);
    const double mean_ns =
        total_ns / static_cast<double>(totals.count);
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-22s %8" PRIu64 " %12s %12s %12" PRIu64 "\n",
                  CategoryName(category), totals.count,
                  IsCounterCategory(category) ? "-"
                                              : FormatNs(total_ns).c_str(),
                  IsCounterCategory(category) ? "-"
                                              : FormatNs(mean_ns).c_str(),
                  totals.value);
    out += line;
  }
  const std::uint64_t dropped = DroppedEvents();
  if (dropped > 0) {
    out += "(ring overflow: " + std::to_string(dropped) +
           " oldest events not in the exported trace; totals above are "
           "exact)\n";
  }
  return out;
}

std::string TraceSession::ToChromeJson() const {
  std::string out;
  out.reserve(std::size_t{1} << 16);
  out += "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;
  const auto append_event = [&](const std::string& body) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "    " + body;
  };

  char buf[256];
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
                  "\"tid\": %u, \"args\": {\"name\": \"thread-%u\"}}",
                  buffer->tid, buffer->tid);
    append_event(buf);
    for (const Event& event : buffer->ring.Snapshot()) {
      const double ts_us = calibration_.SinceEpochNs(event.begin_ticks) / 1e3;
      if (event.kind == EventKind::kScope) {
        const double dur_us =
            calibration_.DurationNs(event.end_ticks > event.begin_ticks
                                        ? event.end_ticks - event.begin_ticks
                                        : 0) /
            1e3;
        std::snprintf(buf, sizeof(buf),
                      "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                      "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 0, \"tid\": %u}",
                      CategoryName(event.category),
                      CategoryGroup(event.category), ts_us, dur_us,
                      buffer->tid);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"C\", "
                      "\"ts\": %.3f, \"pid\": 0, \"tid\": %u, "
                      "\"args\": {\"value\": %" PRIu64 "}}",
                      CategoryName(event.category),
                      CategoryGroup(event.category), ts_us, buffer->tid,
                      event.value);
      }
      append_event(buf);
    }
  }
  {
    const std::lock_guard<std::mutex> marker_lock(marker_mutex_);
    for (const MarkerEvent& marker : markers_) {
      std::string body = "{\"name\": \"";
      AppendJsonEscaped(body, marker.label);
      std::snprintf(buf, sizeof(buf),
                    "\", \"cat\": \"marker\", \"ph\": \"i\", \"ts\": %.3f, "
                    "\"pid\": 0, \"tid\": %u, \"s\": \"g\"}",
                    calibration_.SinceEpochNs(marker.ticks) / 1e3,
                    marker.tid);
      body += buf;
      append_event(body);
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

bool TraceSession::WriteChromeJson(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  const std::string json = ToChromeJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = std::fclose(file) == 0 && written == json.size();
  return ok;
}

}  // namespace dsched::obs
