// A single-writer event ring with keep-newest overflow.
//
// Each instrumented thread owns one ring; only that thread pushes, so the
// record path is an index mask, one 32-byte store, and a release bump of
// the head — no CAS, no lock, no allocation.  When the ring fills, new
// events overwrite the oldest: for a post-run drain the *end* of a run is
// what the Chrome trace should show, and the exact per-category totals
// live in the accumulators (trace_session.hpp), which never overflow.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "obs/category.hpp"

namespace dsched::obs {

enum class EventKind : std::uint8_t {
  kScope,    ///< [begin_ticks, end_ticks) duration
  kCounter,  ///< instantaneous value delta at begin_ticks
};

struct Event {
  std::uint64_t begin_ticks = 0;
  std::uint64_t end_ticks = 0;  ///< == begin_ticks for counters
  std::uint64_t value = 0;      ///< counter delta; unused for scopes
  Category category = Category::kCategoryCount;
  EventKind kind = EventKind::kScope;
};

class EventRing {
 public:
  /// Capacity is rounded up to a power of two, minimum 8.
  explicit EventRing(std::size_t capacity)
      : events_(std::bit_ceil(capacity < 8 ? std::size_t{8} : capacity)),
        mask_(events_.size() - 1) {}

  /// Single-writer push; overwrites the oldest event when full.
  void Push(const Event& event) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    events_[head & mask_] = event;
    head_.store(head + 1, std::memory_order_release);
  }

  [[nodiscard]] std::size_t Capacity() const { return events_.size(); }

  /// Events pushed over the ring's lifetime (monotonic).
  [[nodiscard]] std::uint64_t Pushed() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Events lost to overwriting so far.
  [[nodiscard]] std::uint64_t Dropped() const {
    const std::uint64_t pushed = Pushed();
    return pushed > events_.size() ? pushed - events_.size() : 0;
  }

  /// Copies the retained events, oldest first.  Call only after the
  /// writing thread has quiesced (post-run drain contract).
  [[nodiscard]] std::vector<Event> Snapshot() const {
    const std::uint64_t head = Pushed();
    const std::uint64_t count =
        head < events_.size() ? head : static_cast<std::uint64_t>(events_.size());
    std::vector<Event> out;
    out.reserve(count);
    for (std::uint64_t i = head - count; i < head; ++i) {
      out.push_back(events_[i & mask_]);
    }
    return out;
  }

 private:
  std::vector<Event> events_;
  std::uint64_t mask_;
  /// Monotonic write position; release-published so a post-quiesce reader
  /// sees every completed store.
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace dsched::obs
