// Instrumentation macros — the only header hot-path code includes.
//
//   OBS_SCOPE(Category::kExecDispatch);       // times the enclosing block
//   OBS_COUNTER(Category::kJoinEmit, n);      // records a value delta
//
// Both compile to a relaxed load of the installed-session pointer and a
// branch when tracing is off; the timestamped record path runs only under
// an installed TraceSession.  Always compiled — no build flag, so traces
// can be captured from any binary without a rebuild.
#pragma once

#include "obs/trace_session.hpp"

namespace dsched::obs {

/// RAII scope: stamps construction/destruction and records the interval
/// into the installed session, if any.
class ScopeGuard {
 public:
  explicit ScopeGuard(Category category)
      : session_(TraceSession::Current()), category_(category) {
    if (session_ != nullptr) {
      begin_ticks_ = NowTicks();
    }
  }

  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;

  ~ScopeGuard() {
    if (session_ != nullptr) {
      session_->RecordScope(category_, begin_ticks_, NowTicks());
    }
  }

 private:
  TraceSession* session_;
  Category category_;
  std::uint64_t begin_ticks_ = 0;
};

}  // namespace dsched::obs

#define DSCHED_OBS_CONCAT_IMPL(a, b) a##b
#define DSCHED_OBS_CONCAT(a, b) DSCHED_OBS_CONCAT_IMPL(a, b)

/// Times the enclosing block under `category` (an obs::Category member).
#define OBS_SCOPE(category)                          \
  const ::dsched::obs::ScopeGuard DSCHED_OBS_CONCAT( \
      obs_scope_, __COUNTER__)(::dsched::obs::category)

/// Records a counter delta under `category`; evaluates `delta` only when a
/// session is installed.
#define OBS_COUNTER(category, delta)                                     \
  do {                                                                   \
    ::dsched::obs::TraceSession* obs_session_ =                          \
        ::dsched::obs::TraceSession::Current();                          \
    if (obs_session_ != nullptr) {                                       \
      obs_session_->RecordCount(::dsched::obs::category,                 \
                                static_cast<std::uint64_t>(delta));      \
    }                                                                    \
  } while (false)
