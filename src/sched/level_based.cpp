#include "sched/level_based.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace dsched::sched {

const char* LevelOrderName(LevelOrder order) {
  switch (order) {
    case LevelOrder::kLifo:
      return "lifo";
    case LevelOrder::kFifo:
      return "fifo";
    case LevelOrder::kLongestFirst:
      return "lpt";
  }
  return "?";
}

LevelBasedScheduler::LevelBasedScheduler(LevelOrder order)
    : order_(order),
      name_(order == LevelOrder::kLifo
                ? "LevelBased"
                : "LevelBased(" + std::string(LevelOrderName(order)) + ")") {}

void LevelBasedScheduler::Prepare(const SchedulerContext& ctx) {
  DSCHED_CHECK_MSG(ctx.trace != nullptr, "scheduler context needs a trace");
  ctx_ = ctx;
  const graph::Dag& dag = ctx.trace->Graph();
  // The paper's entire precomputation: one level number per node.
  levels_ = graph::ComputeLevels(dag);
  num_levels_ = 0;
  for (const util::Level l : levels_) {
    num_levels_ = std::max<std::size_t>(num_levels_, l + 1);
  }
  pending_by_level_.assign(num_levels_, {});
  incomplete_at_level_.assign(num_levels_, 0);
  bucket_head_.assign(num_levels_, 0);
  activated_.assign(dag.NumNodes(), false);
  started_.assign(dag.NumNodes(), false);
  completed_.assign(dag.NumNodes(), false);
  frontier_ = 0;
  pending_unstarted_ = 0;
  running_ = 0;
}

void LevelBasedScheduler::OnActivated(TaskId t) {
  DSCHED_CHECK_MSG(t < activated_.size(), "task id out of range");
  DSCHED_CHECK_MSG(!activated_[t], "task activated twice");
  activated_[t] = true;
  const util::Level level = levels_[t];
  // Lemma 1's safety hinges on activations never landing behind the
  // frontier: levels strictly increase along edges, so a changed output
  // from an incomplete task (level >= frontier) activates strictly deeper
  // children.
  DSCHED_CHECK_MSG(level >= frontier_,
                   "activation behind the frontier — model violation");
  pending_by_level_[level].push_back(t);
  ++incomplete_at_level_[level];
  ++pending_unstarted_;
}

void LevelBasedScheduler::OnStarted(TaskId t) {
  DSCHED_CHECK_MSG(activated_[t] && !started_[t],
                   "OnStarted on a task not pending");
  started_[t] = true;
  ++running_;
  DSCHED_CHECK(pending_unstarted_ > 0);
  --pending_unstarted_;
}

void LevelBasedScheduler::OnCompleted(TaskId t, bool /*output_changed*/) {
  DSCHED_CHECK_MSG(started_[t] && !completed_[t],
                   "OnCompleted on a task not running");
  completed_[t] = true;
  DSCHED_CHECK(running_ > 0);
  --running_;
  DSCHED_CHECK(incomplete_at_level_[levels_[t]] > 0);
  --incomplete_at_level_[levels_[t]];
}

TaskId LevelBasedScheduler::PopReady() {
  OBS_SCOPE(Category::kSchedPopLevelBased);
  if (pending_unstarted_ == 0) {
    return util::kInvalidTask;
  }
  // Advance the frontier past fully-completed levels.  Amortized O(L) over
  // the whole run: the frontier is monotone.
  while (frontier_ < num_levels_ && incomplete_at_level_[frontier_] == 0) {
    ++frontier_;
    ++counts_.level_advances;
  }
  if (frontier_ >= num_levels_) {
    return util::kInvalidTask;
  }
  auto& bucket = pending_by_level_[frontier_];
  std::size_t& head = bucket_head_[frontier_];
  // Lazily drop tasks a cooperating scheduler already started (entries
  // before the head cursor are already consumed).
  while (bucket.size() > head && started_[bucket.back()]) {
    bucket.pop_back();
  }
  if (bucket.size() > head) {
    ++counts_.pops;
    switch (order_) {
      case LevelOrder::kLifo:
        return bucket.back();  // engine will call OnStarted; lazy-skip later
      case LevelOrder::kFifo: {
        // Advance the head cursor past started entries; amortized O(1) per
        // pop instead of an O(n) front-erase.
        while (head < bucket.size() && started_[bucket[head]]) {
          ++head;
        }
        // The back() survivor guarantees an unstarted entry remains.
        return bucket[head];
      }
      case LevelOrder::kLongestFirst: {
        TaskId best = util::kInvalidTask;
        double best_span = -1.0;
        for (std::size_t i = head; i < bucket.size(); ++i) {
          const TaskId t = bucket[i];
          if (started_[t]) {
            continue;
          }
          const double span = ctx_.trace->Info(t).span;
          if (span > best_span) {
            best_span = span;
            best = t;
          }
        }
        return best;  // non-invalid: the back() survivor guarantees one
      }
    }
    return bucket.back();
  }
  // The frontier level still has running tasks but no pending ones; deeper
  // pending tasks must wait (a running frontier task may activate their
  // ancestors-to-be).
  bucket.clear();
  head = 0;
  return util::kInvalidTask;
}

void LevelBasedScheduler::StartNow(TaskId t) {
  started_[t] = true;
  ++running_;
  --pending_unstarted_;
  ++counts_.pops;
}

std::size_t LevelBasedScheduler::PopReadyBatch(std::vector<TaskId>& out,
                                               std::size_t max) {
  OBS_SCOPE(Category::kSchedPopLevelBased);
  std::size_t popped = 0;
  while (popped < max && pending_unstarted_ > 0) {
    while (frontier_ < num_levels_ && incomplete_at_level_[frontier_] == 0) {
      ++frontier_;
      ++counts_.level_advances;
    }
    if (frontier_ >= num_levels_) {
      break;
    }
    auto& bucket = pending_by_level_[frontier_];
    std::size_t& head = bucket_head_[frontier_];
    switch (order_) {
      case LevelOrder::kLifo:
        while (popped < max && bucket.size() > head) {
          const TaskId t = bucket.back();
          bucket.pop_back();
          if (started_[t]) {
            continue;  // claimed by a cooperating scheduler
          }
          StartNow(t);
          out.push_back(t);
          ++popped;
        }
        break;
      case LevelOrder::kFifo:
        while (popped < max && head < bucket.size()) {
          const TaskId t = bucket[head];
          ++head;
          if (started_[t]) {
            continue;
          }
          StartNow(t);
          out.push_back(t);
          ++popped;
        }
        if (head >= bucket.size()) {
          bucket.clear();
          head = 0;
        }
        break;
      case LevelOrder::kLongestFirst: {
        // Compact the bucket to unstarted entries, order longest-last, then
        // drain from the back — one O(k log k) pass replaces k O(k) scans.
        std::size_t w = 0;
        for (std::size_t i = head; i < bucket.size(); ++i) {
          if (!started_[bucket[i]]) {
            bucket[w++] = bucket[i];
          }
        }
        bucket.resize(w);
        head = 0;
        std::sort(bucket.begin(), bucket.end(), [this](TaskId a, TaskId b) {
          return ctx_.trace->Info(a).span < ctx_.trace->Info(b).span;
        });
        while (popped < max && !bucket.empty()) {
          const TaskId t = bucket.back();
          bucket.pop_back();
          StartNow(t);
          out.push_back(t);
          ++popped;
        }
        break;
      }
    }
    if (popped >= max) {
      break;
    }
    if (incomplete_at_level_[frontier_] != 0) {
      // Running (or just-started) work pins the frontier; deeper pending
      // tasks must wait for it (Lemma 1).
      break;
    }
  }
  return popped;
}

std::size_t LevelBasedScheduler::MemoryBytes() const {
  std::size_t bytes = levels_.capacity() * sizeof(util::Level) +
                      pending_by_level_.capacity() * sizeof(std::vector<TaskId>) +
                      incomplete_at_level_.capacity() * sizeof(std::size_t) +
                      bucket_head_.capacity() * sizeof(std::size_t) +
                      (activated_.capacity() + started_.capacity() +
                       completed_.capacity()) / 8;
  for (const auto& bucket : pending_by_level_) {
    bytes += bucket.capacity() * sizeof(TaskId);
  }
  return bytes;
}

}  // namespace dsched::sched
