#include "sched/lookahead.hpp"

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace dsched::sched {

LookaheadScheduler::LookaheadScheduler(std::size_t lookahead)
    : k_(lookahead), name_("LBL(k=" + std::to_string(lookahead) + ")") {
  DSCHED_CHECK_MSG(lookahead >= 1, "lookahead must be at least 1");
}

void LookaheadScheduler::Prepare(const SchedulerContext& ctx) {
  LevelBasedScheduler::Prepare(ctx);
  approved_.clear();
  approved_set_.assign(ctx.trace->NumNodes(), false);
  visit_stamp_.assign(ctx.trace->NumNodes(), 0);
  epoch_ = 0;
}

TaskId LookaheadScheduler::PopReady() {
  OBS_SCOPE(Category::kSchedPopLookahead);
  // Previously approved lookahead work first (cheapest).
  while (!approved_.empty()) {
    const TaskId t = approved_.front();
    if (IsStarted(t)) {
      approved_.pop_front();
      continue;
    }
    ++counts_.pops;
    return t;
  }
  // Then the plain LevelBased frontier.
  const TaskId base = LevelBasedScheduler::PopReady();
  if (base != util::kInvalidTask) {
    return base;
  }
  // Frontier blocked.  If nothing is running there is genuinely nothing (an
  // idle frontier with pending work always yields a pop); otherwise search
  // ahead for work that is provably safe despite the blocked frontier.
  if (Running() == 0 || k_ == 0) {
    return util::kInvalidTask;
  }
  const util::Level frontier = Frontier();
  const std::size_t last_level =
      std::min<std::size_t>(NumLevels(), frontier + k_ + 1);
  for (std::size_t level = frontier + 1; level < last_level; ++level) {
    for (const TaskId c : pending_by_level_[level]) {
      if (IsStarted(c) || approved_set_[c]) {
        continue;
      }
      if (IsSafe(c)) {
        approved_set_[c] = true;
        ++counts_.pops;
        approved_.push_back(c);  // lazy-removed once started
        return c;
      }
    }
  }
  return util::kInvalidTask;
}

bool LookaheadScheduler::IsSafe(TaskId candidate) {
  const graph::Dag& dag = Context().trace->Graph();
  const util::Level frontier = Frontier();
  ++epoch_;
  bfs_queue_.clear();
  bfs_queue_.push_back(candidate);
  visit_stamp_[candidate] = epoch_;
  std::size_t head = 0;
  while (head < bfs_queue_.size()) {
    const TaskId u = bfs_queue_[head++];
    for (const TaskId p : dag.InNeighbors(u)) {
      if (visit_stamp_[p] == epoch_) {
        continue;
      }
      visit_stamp_[p] = epoch_;
      ++counts_.lookahead_visits;
      // Everything strictly below the frontier is settled: active tasks
      // there have completed, and inactive ones can no longer activate.
      if (LevelOf(p) < frontier) {
        continue;
      }
      if (IsActivated(p)) {
        if (!IsCompleted(p)) {
          return false;  // incomplete active ancestor — candidate must wait
        }
        // Completed ancestors can never grow new incomplete active
        // ancestors above them (they could not have started otherwise), so
        // the search need not expand past them.
        continue;
      }
      // Inactive so far — but an active task above it could still activate
      // it, so keep climbing.
      bfs_queue_.push_back(p);
    }
  }
  return true;
}

}  // namespace dsched::sched
