#include "sched/signal_propagation.hpp"

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace dsched::sched {

void SignalPropagationScheduler::Prepare(const SchedulerContext& ctx) {
  DSCHED_CHECK_MSG(ctx.trace != nullptr, "scheduler context needs a trace");
  ctx_ = ctx;
  const graph::Dag& dag = ctx.trace->Graph();
  pending_signals_.resize(dag.NumNodes());
  for (std::size_t v = 0; v < dag.NumNodes(); ++v) {
    pending_signals_[v] =
        static_cast<std::uint32_t>(dag.InDegree(static_cast<TaskId>(v)));
  }
  activated_.assign(dag.NumNodes(), false);
  started_.assign(dag.NumNodes(), false);
  settled_.assign(dag.NumNodes(), false);
  sources_fired_ = false;
}

void SignalPropagationScheduler::OnActivated(TaskId t) {
  DSCHED_CHECK_MSG(t < activated_.size(), "task id out of range");
  DSCHED_CHECK_MSG(!activated_[t], "task activated twice");
  activated_[t] = true;
}

void SignalPropagationScheduler::OnStarted(TaskId t) {
  DSCHED_CHECK_MSG(activated_[t] && !started_[t],
                   "OnStarted on a task not ready");
  started_[t] = true;
}

void SignalPropagationScheduler::OnCompleted(TaskId t, bool /*changed*/) {
  // Whether the output changed is irrelevant to the *signal count*: either
  // way a message goes to every child.  Which children became active is
  // already known via OnActivated (called before us per the contract).
  DeliverFrom(t);
}

TaskId SignalPropagationScheduler::PopReady() {
  OBS_SCOPE(Category::kSchedPopSignal);
  if (!sources_fired_) {
    // Time zero: every source settles — dirty ones become ready, clean ones
    // flood "no change" downstream.
    sources_fired_ = true;
    for (const TaskId s : ctx_.trace->Graph().Sources()) {
      Settle(s);
    }
  }
  while (!ready_.empty()) {
    const TaskId t = ready_.front();
    if (started_[t]) {
      ready_.pop_front();
      continue;
    }
    ++counts_.pops;
    return t;
  }
  return util::kInvalidTask;
}

void SignalPropagationScheduler::Settle(TaskId t) {
  DSCHED_CHECK_MSG(!settled_[t], "node settled twice");
  settled_[t] = true;
  if (activated_[t]) {
    ready_.push_back(t);  // will execute; its completion delivers signals
  } else {
    DeliverFrom(t);  // inactive: forward "no change" right away, no work
  }
}

void SignalPropagationScheduler::DeliverFrom(TaskId t) {
  const graph::Dag& dag = ctx_.trace->Graph();
  cascade_stack_.push_back(t);
  while (!cascade_stack_.empty()) {
    const TaskId u = cascade_stack_.back();
    cascade_stack_.pop_back();
    for (const TaskId v : dag.OutNeighbors(u)) {
      ++counts_.messages;
      DSCHED_CHECK(pending_signals_[v] > 0);
      if (--pending_signals_[v] == 0) {
        settled_[v] = true;
        if (activated_[v]) {
          ready_.push_back(v);
        } else {
          cascade_stack_.push_back(v);  // inactive: keep flooding
        }
      }
    }
  }
}

std::size_t SignalPropagationScheduler::MemoryBytes() const {
  return pending_signals_.capacity() * sizeof(std::uint32_t) +
         (activated_.capacity() + started_.capacity() + settled_.capacity()) /
             8 +
         ready_.size() * sizeof(TaskId) +
         cascade_stack_.capacity() * sizeof(TaskId);
}

}  // namespace dsched::sched
