// Brute-force signal-propagation scheduler (paper Section II-C).
//
// No precomputation at all.  Every node waits for a signal ("changed" or
// "no change") from each of its parents; once all have arrived the node is
// either ready to run (some input changed) or is marked inactive and
// immediately forwards "no change" to its own children.  Source nodes fire
// at time zero.  Correct and simple, but the message count is Θ(V + E)
// regardless of how small the active set is — the asymptotic weakness the
// LevelBased scheduler removes.
#pragma once

#include <deque>
#include <vector>

#include "sched/scheduler.hpp"

namespace dsched::sched {

/// Message-counting brute-force baseline.
class SignalPropagationScheduler : public Scheduler {
 public:
  SignalPropagationScheduler() = default;

  [[nodiscard]] std::string_view Name() const override {
    return "SignalPropagation";
  }
  void Prepare(const SchedulerContext& ctx) override;
  void OnActivated(TaskId t) override;
  void OnStarted(TaskId t) override;
  void OnCompleted(TaskId t, bool output_changed) override;
  [[nodiscard]] TaskId PopReady() override;
  [[nodiscard]] SchedulerOpCounts OpCounts() const override { return counts_; }
  [[nodiscard]] std::size_t MemoryBytes() const override;

 private:
  /// Sends `t`'s signal to its children, cascading through nodes whose last
  /// pending signal this delivers; inactive ones forward immediately.
  void DeliverFrom(TaskId t);
  /// Classifies a node whose inputs are all settled.
  void Settle(TaskId t);

  SchedulerContext ctx_;
  SchedulerOpCounts counts_;
  std::vector<std::uint32_t> pending_signals_;
  std::vector<bool> activated_;
  std::vector<bool> started_;
  std::vector<bool> settled_;
  std::deque<TaskId> ready_;
  std::vector<TaskId> cascade_stack_;
  bool sources_fired_ = false;
};

}  // namespace dsched::sched
