#include "sched/oracle.hpp"

#include <bit>

#include "graph/topo.hpp"
#include "obs/obs.hpp"
#include "trace/cascade.hpp"
#include "util/error.hpp"

namespace dsched::sched {

void OracleScheduler::Prepare(const SchedulerContext& ctx) {
  DSCHED_CHECK_MSG(ctx.trace != nullptr, "scheduler context needs a trace");
  ctx_ = ctx;
  const graph::Dag& dag = ctx.trace->Graph();
  const std::size_t n = dag.NumNodes();

  const trace::Cascade cascade = trace::ComputeCascade(*ctx.trace);
  const std::size_t active = cascade.NumActive();
  DSCHED_CHECK_MSG(active * n <= (std::size_t{1} << 28),
                   "OracleScheduler is a test/reference policy; graph too "
                   "large for its O(W*V) precomputation");

  is_active_.assign(n, false);
  std::vector<std::uint32_t> dense(n, 0);
  for (std::size_t i = 0; i < cascade.active_nodes.size(); ++i) {
    is_active_[cascade.active_nodes[i]] = true;
    dense[cascade.active_nodes[i]] = static_cast<std::uint32_t>(i);
  }

  // anc[v] — bitset over dense active ids — the active ancestors of v.
  const std::size_t words = (active + 63) / 64;
  std::vector<std::uint64_t> anc(n * words, 0);
  const auto row = [&](TaskId v) { return anc.data() + v * words; };
  for (const TaskId u : graph::TopologicalOrder(dag)) {
    for (const TaskId v : dag.OutNeighbors(u)) {
      std::uint64_t* dst = row(v);
      const std::uint64_t* src = row(u);
      for (std::size_t w = 0; w < words; ++w) {
        dst[w] |= src[w];
      }
      if (is_active_[u]) {
        dst[dense[u] / 64] |= (1ULL << (dense[u] % 64));
      }
    }
  }

  blockers_.assign(n, 0);
  dependents_.assign(n, {});
  spans_.assign(n, 0.0);
  for (const TaskId v : cascade.active_nodes) {
    spans_[v] = ctx.trace->Info(v).span;
    const std::uint64_t* bits = row(v);
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t word = bits[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        const TaskId ancestor = cascade.active_nodes[w * 64 + bit];
        ++blockers_[v];
        dependents_[ancestor].push_back(v);
      }
    }
  }

  activated_.assign(n, false);
  started_.assign(n, false);
  queued_.assign(n, false);
  ready_ = std::priority_queue<TaskId, std::vector<TaskId>, BySpan>(
      BySpan{&spans_});
}

void OracleScheduler::MaybeReady(TaskId t) {
  if (activated_[t] && !started_[t] && !queued_[t] && blockers_[t] == 0) {
    queued_[t] = true;
    ready_.push(t);
  }
}

void OracleScheduler::OnActivated(TaskId t) {
  DSCHED_CHECK_MSG(t < activated_.size(), "task id out of range");
  DSCHED_CHECK_MSG(is_active_[t],
                   "engine activated a task the offline cascade missed");
  DSCHED_CHECK_MSG(!activated_[t], "task activated twice");
  activated_[t] = true;
  MaybeReady(t);
}

void OracleScheduler::OnStarted(TaskId t) {
  DSCHED_CHECK_MSG(activated_[t] && !started_[t],
                   "OnStarted on a task not ready");
  started_[t] = true;
}

void OracleScheduler::OnCompleted(TaskId t, bool /*output_changed*/) {
  for (const TaskId v : dependents_[t]) {
    DSCHED_CHECK(blockers_[v] > 0);
    --blockers_[v];
    MaybeReady(v);
  }
}

TaskId OracleScheduler::PopReady() {
  OBS_SCOPE(Category::kSchedPopOracle);
  while (!ready_.empty()) {
    const TaskId t = ready_.top();
    if (started_[t]) {
      ready_.pop();
      continue;
    }
    ++counts_.pops;
    return t;
  }
  return util::kInvalidTask;
}

std::size_t OracleScheduler::MemoryBytes() const {
  std::size_t bytes = blockers_.capacity() * sizeof(std::uint32_t) +
                      spans_.capacity() * sizeof(double) +
                      dependents_.capacity() * sizeof(std::vector<TaskId>);
  for (const auto& deps : dependents_) {
    bytes += deps.capacity() * sizeof(TaskId);
  }
  return bytes;
}

}  // namespace dsched::sched
