// Reimplementation of the production LogicBlox scheduler (paper Sections
// II-C and VI-B).
//
// Precomputation: every node's ancestor/descendant relation goes into an
// interval-list transitive-closure index (O(V²) space in the worst case).
// Runtime: whenever the ready queue runs dry, scan the queue of active
// tasks; a task is moved to the ready queue if no other incomplete active
// task is its ancestor (checked by interval queries).  Worst case O(n³)
// total scheduling time: O(n) scans × O(n) candidates × O(n)-ish ancestor
// checks — the blow-up our pathological traces trigger.
//
// Typical case is very good: on shallow cascades most candidates clear in
// one or two queries, which is why the paper keeps this scheduler inside
// the hybrid rather than replacing it.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "interval/interval_index.hpp"
#include "sched/scheduler.hpp"

namespace dsched::sched {

/// Interval-list, active-queue-scanning scheduler.
class LogicBloxScheduler : public Scheduler {
 public:
  LogicBloxScheduler() = default;

  [[nodiscard]] std::string_view Name() const override { return "LogicBlox"; }
  void Prepare(const SchedulerContext& ctx) override;
  void OnActivated(TaskId t) override;
  void OnStarted(TaskId t) override;
  void OnCompleted(TaskId t, bool output_changed) override;
  [[nodiscard]] TaskId PopReady() override;
  /// Native batch pop: drains the materialised ready queue (rescanning the
  /// pending queue when it runs dry) with the start transitions inline.
  std::size_t PopReadyBatch(std::vector<TaskId>& out, std::size_t max) override;
  [[nodiscard]] SchedulerOpCounts OpCounts() const override { return counts_; }
  [[nodiscard]] std::size_t MemoryBytes() const override;

  /// The ancestor index, exposed for the space ablation bench.
  [[nodiscard]] const interval::IntervalIndex& Index() const { return *index_; }

 private:
  /// One pass over the pending queue, promoting unblocked tasks to ready.
  void Scan();

  SchedulerContext ctx_;
  std::unique_ptr<interval::IntervalIndex> index_;
  SchedulerOpCounts counts_;

  /// Activated, not yet promoted to ready.
  std::vector<TaskId> pending_;
  /// Promoted, not yet started (lazily skips started tasks).
  std::deque<TaskId> ready_;
  /// Activated and not yet completed — the blocker set for readiness checks
  /// (running and ready-but-unstarted tasks still block their descendants).
  std::vector<TaskId> incomplete_active_;
  bool needs_compaction_ = false;

  std::vector<bool> activated_;
  std::vector<bool> started_;
  std::vector<bool> completed_;
  /// New activations/completions since the last scan?
  bool dirty_ = true;
};

}  // namespace dsched::sched
