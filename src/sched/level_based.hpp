// The LevelBased scheduler (paper Section III, analysed in Section IV).
//
// Precompute each node's level (O(V+E) time, O(V) space — Theorem 2).  At
// runtime keep active tasks bucketed by level and a frontier ℓ = the lowest
// level holding incomplete active work.  By Lemma 1 every active task at
// level ℓ is safe to run; the frontier only advances when all processors
// are idle and level ℓ has drained, which costs O(n + L) scheduler time
// total for n active tasks and L levels.
#pragma once

#include <string>
#include <vector>

#include "graph/levels.hpp"
#include "sched/scheduler.hpp"

namespace dsched::sched {

/// How ready tasks are picked from within the frontier level.  The paper
/// only says "removes and processes any task from level ℓ"; the choice
/// matters when a level is wider than P and task lengths vary (classic
/// list-scheduling territory — LPT trims the level's tail).
enum class LevelOrder : std::uint8_t {
  kLifo,             ///< newest first (default; cheapest)
  kFifo,             ///< activation order
  kLongestFirst,     ///< longest span first (LPT)
};

/// Renders the ordering policy name.
[[nodiscard]] const char* LevelOrderName(LevelOrder order);

/// LevelBased scheduling policy.
class LevelBasedScheduler : public Scheduler {
 public:
  explicit LevelBasedScheduler(LevelOrder order = LevelOrder::kLifo);

  [[nodiscard]] std::string_view Name() const override { return name_; }
  void Prepare(const SchedulerContext& ctx) override;
  void OnActivated(TaskId t) override;
  void OnStarted(TaskId t) override;
  void OnCompleted(TaskId t, bool output_changed) override;
  [[nodiscard]] TaskId PopReady() override;
  /// Native batch pop: drains the frontier bucket (Lemma 1 makes every
  /// pending task there safe at once) under a single virtual call,
  /// performing the start transitions inline.
  std::size_t PopReadyBatch(std::vector<TaskId>& out, std::size_t max) override;
  [[nodiscard]] SchedulerOpCounts OpCounts() const override { return counts_; }
  [[nodiscard]] std::size_t MemoryBytes() const override;

  /// Current frontier: the lowest level that still holds an incomplete
  /// active task (Lemma 1's ℓ).  Every pending task at this level is safe.
  [[nodiscard]] util::Level Frontier() const { return frontier_; }

 protected:
  // Shared with the LookAhead subclass.
  [[nodiscard]] util::Level LevelOf(TaskId t) const { return levels_[t]; }
  [[nodiscard]] bool IsActivated(TaskId t) const { return activated_[t]; }
  [[nodiscard]] bool IsStarted(TaskId t) const { return started_[t]; }
  [[nodiscard]] bool IsCompleted(TaskId t) const { return completed_[t]; }
  [[nodiscard]] std::size_t Running() const { return running_; }
  [[nodiscard]] std::size_t NumLevels() const { return num_levels_; }
  [[nodiscard]] const SchedulerContext& Context() const { return ctx_; }

  /// Per-level buckets of activated tasks (started ones lazily skipped).
  std::vector<std::vector<TaskId>> pending_by_level_;
  SchedulerOpCounts counts_;

 private:
  /// The started transition PopReadyBatch performs inline (same state moves
  /// as OnStarted, minus the redundant re-checks).
  void StartNow(TaskId t);

  LevelOrder order_;
  std::string name_;
  SchedulerContext ctx_;
  std::vector<util::Level> levels_;
  std::size_t num_levels_ = 0;
  /// Lowest level that still holds an incomplete active task.  Monotone:
  /// activations always land at or above it (levels strictly increase along
  /// edges), so the forward scan in PopReady is amortized O(L).
  util::Level frontier_ = 0;
  /// Incomplete (activated, not completed) active tasks per level.
  std::vector<std::size_t> incomplete_at_level_;
  /// FIFO mode: index of the oldest unconsumed entry per bucket — a head
  /// cursor instead of O(n) vector::erase from the front per pop.
  std::vector<std::size_t> bucket_head_;
  std::size_t pending_unstarted_ = 0;
  std::size_t running_ = 0;
  std::vector<bool> activated_;
  std::vector<bool> started_;
  std::vector<bool> completed_;
};

}  // namespace dsched::sched
