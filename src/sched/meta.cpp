#include "sched/meta.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "sched/level_based.hpp"
#include "util/error.hpp"

namespace dsched::sched {

MetaScheduler::MetaScheduler(std::unique_ptr<Scheduler> heuristic,
                             std::uint64_t zeta_bytes)
    : heuristic_(std::move(heuristic)),
      level_based_(std::make_unique<LevelBasedScheduler>()),
      zeta_(zeta_bytes) {
  DSCHED_CHECK_MSG(heuristic_ != nullptr, "meta needs a heuristic scheduler");
  name_ = "Meta(" + std::string(heuristic_->Name()) + "+LevelBased,zeta=" +
          std::to_string(zeta_) + ")";
}

void MetaScheduler::Prepare(const SchedulerContext& ctx) {
  trace_ = ctx.trace;
  processors_ = std::max<std::size_t>(1, ctx.num_processors);
  heur_cap_ = (processors_ + 1) / 2;  // ceil(P/2)
  lb_cap_ = processors_ - heur_cap_;
  lane_of_.assign(ctx.trace != nullptr ? ctx.trace->NumNodes() : 0,
                  Lane::kNone);
  heuristic_->Prepare(ctx);
  level_based_->Prepare(ctx);
  CheckKill();  // precomputation alone may already blow zeta/2
}

void MetaScheduler::OnActivated(TaskId t) {
  if (!killed_) {
    heuristic_->OnActivated(t);
  }
  level_based_->OnActivated(t);
}

void MetaScheduler::OnStarted(TaskId t) {
  // Engine echo of our own pop, or an external start by a cooperating
  // scheduler above us; children tolerate both (contract point 5).
  if (!killed_) {
    heuristic_->OnStarted(t);
  }
  level_based_->OnStarted(t);
}

void MetaScheduler::OnCompleted(TaskId t, bool output_changed) {
  if (!killed_) {
    heuristic_->OnCompleted(t, output_changed);
  }
  level_based_->OnCompleted(t, output_changed);
  if (t < lane_of_.size()) {
    const Lane lane = lane_of_[t];
    if (lane == Lane::kHeuristic) {
      --heur_running_;
      heur_running_bytes_ -= trace_->Info(t).resource_utility;
    } else if (lane == Lane::kLevelBased) {
      --lb_running_;
    }
  }
}

void MetaScheduler::NotePop(TaskId t, Lane lane) {
  if (t < lane_of_.size()) {
    lane_of_[t] = lane;
  }
  if (lane == Lane::kHeuristic) {
    ++heur_running_;
    heur_running_bytes_ += trace_->Info(t).resource_utility;
  } else {
    ++lb_running_;
  }
}

void MetaScheduler::CheckKill() {
  if (killed_) {
    return;
  }
  const std::uint64_t footprint =
      static_cast<std::uint64_t>(heuristic_->MemoryBytes()) +
      heur_running_bytes_;
  heur_high_water_ = std::max(heur_high_water_, footprint);
  if (zeta_ != 0 && footprint > zeta_ / 2) {
    Kill();
  }
}

void MetaScheduler::Kill() {
  heur_final_ops_ = heuristic_->OpCounts();
  heuristic_.reset();  // actually free the lane's memory — the O(zeta) bound
  killed_ = true;
  ++kills_;
  lb_cap_ = processors_;  // LevelBased inherits every worker
  OBS_COUNTER(Category::kMetaKill, 1);
}

TaskId MetaScheduler::PopReady() {
  OBS_SCOPE(Category::kSchedPopMeta);
  CheckKill();
  // LevelBased lane first (O(1) frontier probe), then the heuristic lane.
  // The engine echoes OnStarted back to us after a successful pop, which
  // is when the non-popping child hears about the start.
  if (lb_running_ < lb_cap_) {
    const TaskId t = level_based_->PopReady();
    if (t != util::kInvalidTask) {
      NotePop(t, Lane::kLevelBased);
      return t;
    }
  }
  if (!killed_ && heur_running_ < heur_cap_) {
    const TaskId t = heuristic_->PopReady();
    if (t != util::kInvalidTask) {
      NotePop(t, Lane::kHeuristic);
      CheckKill();
      return t;
    }
  }
  // Liveness fallback: with nothing running anywhere and neither capped
  // lane producing (e.g. P == 1 leaves LevelBased zero workers while a
  // lookahead-limited heuristic cannot prove readiness), let LevelBased
  // borrow the idle capacity rather than deadlocking the engine.
  if (heur_running_ + lb_running_ == 0) {
    const TaskId t = level_based_->PopReady();
    if (t != util::kInvalidTask) {
      NotePop(t, Lane::kLevelBased);
      return t;
    }
  }
  return util::kInvalidTask;
}

std::size_t MetaScheduler::PopReadyBatch(std::vector<TaskId>& out,
                                         std::size_t max) {
  OBS_SCOPE(Category::kSchedPopMeta);
  CheckKill();
  const std::size_t before = out.size();
  // LevelBased lane up to its free worker slots.  The popping child has
  // already transitioned its copies to started; cross-notify the other.
  if (lb_running_ < lb_cap_) {
    const std::size_t want = std::min(max, lb_cap_ - lb_running_);
    const std::size_t n = level_based_->PopReadyBatch(out, want);
    for (std::size_t i = before; i < out.size(); ++i) {
      NotePop(out[i], Lane::kLevelBased);
      if (!killed_) {
        heuristic_->OnStarted(out[i]);
      }
    }
    (void)n;
  }
  // Heuristic lane with whatever batch room is left.
  const std::size_t after_lb = out.size();
  if (!killed_ && heur_running_ < heur_cap_ && out.size() - before < max) {
    const std::size_t want =
        std::min(max - (out.size() - before), heur_cap_ - heur_running_);
    heuristic_->PopReadyBatch(out, want);
    for (std::size_t i = after_lb; i < out.size(); ++i) {
      NotePop(out[i], Lane::kHeuristic);
      level_based_->OnStarted(out[i]);
    }
    CheckKill();
  }
  // Liveness fallback (see PopReady): only from a fully idle engine.
  if (out.size() == before && heur_running_ + lb_running_ == 0) {
    level_based_->PopReadyBatch(out, max);
    for (std::size_t i = before; i < out.size(); ++i) {
      NotePop(out[i], Lane::kLevelBased);
      if (!killed_) {
        heuristic_->OnStarted(out[i]);
      }
    }
  }
  return out.size() - before;
}

SchedulerOpCounts MetaScheduler::OpCounts() const {
  SchedulerOpCounts counts = level_based_->OpCounts();
  counts.Merge(killed_ ? heur_final_ops_ : heuristic_->OpCounts());
  return counts;
}

std::size_t MetaScheduler::MemoryBytes() const {
  return level_based_->MemoryBytes() +
         (killed_ ? 0 : heuristic_->MemoryBytes()) +
         lane_of_.capacity() * sizeof(Lane);
}

}  // namespace dsched::sched
