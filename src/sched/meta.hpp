// The memory-bounded meta-scheduler A' (paper Theorem 10 / Corollary 11).
//
// An arbitrary heuristic A gets ceil(P/2) of the processors; LevelBased
// gets the rest.  Both receive every activation/start/completion event,
// but each popped task is *owned* by exactly one lane, and a lane may only
// pop while it has fewer running tasks than its worker share — the live
// realization of the paper's partitioned worker sets on one shared pool
// (tasks have side effects and may run ONCE, so the theorem's run-both-
// copies device stays in sim/meta.*; here the lanes split real work).
//
// The kill rule: the heuristic lane's resource footprint — the heuristic's
// own structures (Scheduler::MemoryBytes) plus the resource_utility of its
// running tasks — is monitored at every pop.  The moment it exceeds
// zeta/2, the heuristic is torn down (its memory actually freed) and
// LevelBased inherits all P workers.  Migration of the unfinished frontier
// is free and precedence-safe by construction: LevelBased observed every
// event from the start, so its pending set is exactly the unstarted work
// and it can never re-pop a task the heuristic lane already started.
// Corollary 11 then gives makespan <= 2*min(T_A, T_LB) with memory O(zeta).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sched/scheduler.hpp"

namespace dsched::sched {

/// Runs a heuristic and LevelBased on partitioned worker shares with the
/// zeta/2 kill rule.
class MetaScheduler : public Scheduler {
 public:
  /// `heuristic` must be freshly constructed (not yet Prepared).
  /// `zeta_bytes` is the total memory budget zeta; the heuristic lane is
  /// killed when its footprint exceeds zeta/2.  0 = never kill (the split
  /// still applies).
  MetaScheduler(std::unique_ptr<Scheduler> heuristic, std::uint64_t zeta_bytes);

  [[nodiscard]] std::string_view Name() const override { return name_; }
  void Prepare(const SchedulerContext& ctx) override;
  void OnActivated(TaskId t) override;
  void OnStarted(TaskId t) override;
  void OnCompleted(TaskId t, bool output_changed) override;
  [[nodiscard]] TaskId PopReady() override;
  /// Native batch pop: fills the LevelBased lane's free worker slots
  /// first, then the heuristic lane's, forwarding started transitions to
  /// the child that did not pop (hybrid-style cross-notify).
  std::size_t PopReadyBatch(std::vector<TaskId>& out, std::size_t max) override;
  [[nodiscard]] SchedulerOpCounts OpCounts() const override;
  [[nodiscard]] std::size_t MemoryBytes() const override;

  /// Kill-rule firings (0 or 1 — the heuristic lane dies at most once).
  [[nodiscard]] std::uint64_t Kills() const { return kills_; }
  [[nodiscard]] bool HeuristicKilled() const { return killed_; }
  /// Highest heuristic-lane footprint observed (structures + running
  /// utilities), in bytes.
  [[nodiscard]] std::uint64_t HeuristicHighWaterBytes() const {
    return heur_high_water_;
  }
  [[nodiscard]] std::uint64_t Zeta() const { return zeta_; }
  /// Worker shares after Prepare: ceil(P/2) heuristic, the rest LevelBased
  /// (all P to LevelBased once killed).
  [[nodiscard]] std::size_t HeuristicLaneCap() const { return heur_cap_; }
  [[nodiscard]] std::size_t LevelBasedLaneCap() const { return lb_cap_; }

 private:
  /// Which lane owns a popped task (completion bookkeeping).
  enum class Lane : std::uint8_t { kNone = 0, kHeuristic = 1, kLevelBased = 2 };

  void NotePop(TaskId t, Lane lane);
  /// Recomputes the heuristic lane footprint, folds the high-water mark,
  /// and fires the kill rule if it crossed zeta/2.
  void CheckKill();
  void Kill();

  std::unique_ptr<Scheduler> heuristic_;
  std::unique_ptr<Scheduler> level_based_;
  std::string name_;
  const trace::JobTrace* trace_ = nullptr;
  std::uint64_t zeta_ = 0;
  std::size_t processors_ = 1;
  std::size_t heur_cap_ = 1;
  std::size_t lb_cap_ = 0;
  std::vector<Lane> lane_of_;
  std::size_t heur_running_ = 0;
  std::size_t lb_running_ = 0;
  std::uint64_t heur_running_bytes_ = 0;
  std::uint64_t heur_high_water_ = 0;
  bool killed_ = false;
  std::uint64_t kills_ = 0;
  /// OpCounts snapshot taken when the heuristic is torn down.
  SchedulerOpCounts heur_final_ops_{};
};

}  // namespace dsched::sched
