// The scheduler interface: how the execution engine (simulator or real
// thread-pool runtime) talks to a scheduling policy.
//
// Model recap (paper Section II): activated tasks must each run exactly
// once, and may only start once every *activated ancestor* in the original
// DAG G has completed.  Which ancestors are activated is revealed only at
// runtime — discovering ready work cheaply is the whole game, and all
// schedulers here differ only in how they do that.
//
// ## Engine contract
//
//  1. `Prepare(ctx)` is called once, before anything else.  All
//     precomputation (levels, interval lists, ...) happens here and is
//     timed separately from runtime overhead.
//  2. `OnActivated(t)` is called exactly once per task that becomes active:
//     first for the initially dirty tasks, later for each task that
//     receives a changed input.
//  3. When a task completes, the engine first calls `OnActivated` for every
//     child newly activated by its changed output, then calls
//     `OnCompleted(t, output_changed)`.  (This order lets message-passing
//     schedulers classify a child the moment its last input signal
//     arrives.)
//  4. `PopReady()` returns a task that is provably safe to start now, or
//     kInvalidTask if the scheduler cannot prove any (the engine then waits
//     for a completion).  The engine immediately follows a successful pop
//     with `OnStarted(t)`.
//  5. `OnStarted(t)` is also how a scheduler learns that a *cooperating*
//     scheduler (hybrid mode) claimed a task: implementations must tolerate
//     tasks they consider pending being started externally and must never
//     return an already-started task from PopReady.
//  6. `PopReadyBatch(out, max)` is the batched form of 4+5 combined: it
//     appends up to `max` distinct ready tasks to `out` AND performs the
//     OnStarted transition for each before returning (so the engine must
//     NOT call OnStarted for batch-popped tasks).  The base-class default
//     loops PopReady+OnStarted; policies with a materialised ready set
//     override it to drain the set under one virtual call.
//
// Every decision call is wall-clock-timed by the engine; the counters in
// SchedulerOpCounts are the machine-independent "modelled" overhead.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "trace/job_trace.hpp"
#include "util/types.hpp"

namespace dsched::sched {

using util::TaskId;

/// Static context handed to Prepare().
struct SchedulerContext {
  /// The workload; outlives the scheduler run.  Schedulers may read the DAG
  /// and static task info but must NOT read output_changes bits — those are
  /// revealed only through OnActivated/OnCompleted.
  const trace::JobTrace* trace = nullptr;
  /// Number of processors the engine will run.
  std::size_t num_processors = 1;
};

/// Machine-independent operation counters (modelled scheduling overhead).
struct SchedulerOpCounts {
  std::uint64_t ancestor_queries = 0;   ///< interval-list IsAncestor calls
  std::uint64_t interval_probes = 0;    ///< binary-search comparisons inside them
  std::uint64_t queue_scans = 0;        ///< full passes over the active queue
  std::uint64_t scanned_candidates = 0; ///< candidates examined across scans
  std::uint64_t messages = 0;           ///< signal-propagation messages
  std::uint64_t level_advances = 0;     ///< LevelBased frontier increments
  std::uint64_t lookahead_visits = 0;   ///< LBL ancestor-BFS node visits
  std::uint64_t pops = 0;               ///< successful PopReady calls

  /// Merges another counter block (hybrid aggregates its children).
  void Merge(const SchedulerOpCounts& other);

  /// Sum of all counters — a single scalar modelled-overhead figure.
  [[nodiscard]] std::uint64_t Total() const;
};

/// Abstract scheduling policy.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable policy name, e.g. "LevelBased" or "LBL(k=10)".
  [[nodiscard]] virtual std::string_view Name() const = 0;

  /// One-time precomputation.  Must be called exactly once, first.
  virtual void Prepare(const SchedulerContext& ctx) = 0;

  /// Task `t`'s input changed; it joined the active set.
  virtual void OnActivated(TaskId t) = 0;

  /// Task `t` was started (by this scheduler's pop or a cooperating one).
  virtual void OnStarted(TaskId t) = 0;

  /// Task `t` finished; `output_changed` says whether it propagated.
  virtual void OnCompleted(TaskId t, bool output_changed) = 0;

  /// A task safe to start now, or util::kInvalidTask.
  [[nodiscard]] virtual TaskId PopReady() = 0;

  /// Pops up to `max` ready tasks in one call, appending them to `out`, and
  /// performs the OnStarted transition for each popped task itself (engine
  /// contract point 6).  Returns the number of tasks appended.  The default
  /// loops PopReady()+OnStarted(); overrides drain a materialised ready set
  /// without per-task virtual dispatch.
  virtual std::size_t PopReadyBatch(std::vector<TaskId>& out, std::size_t max);

  /// Modelled-overhead counters accumulated so far.
  [[nodiscard]] virtual SchedulerOpCounts OpCounts() const = 0;

  /// Current bytes held by the scheduler's long-lived structures,
  /// precomputation included.
  [[nodiscard]] virtual std::size_t MemoryBytes() const = 0;
};

}  // namespace dsched::sched
