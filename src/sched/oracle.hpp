// Clairvoyant reference scheduler.
//
// Unlike every real policy here, the oracle reads the trace's output-change
// bits up front, resolves the activation cascade offline, and precomputes
// for every active task the exact set of active ancestors it must wait for.
// At runtime readiness is a counter decrement, and ready tasks are started
// longest-span-first (LPT), which realizes the Θ(M + L) optimal order of
// the Figure-2 tight example.
//
// This is NOT a contender — it exists as (a) the near-optimal yardstick in
// the Theorem 9 bench and (b) an independent correctness reference for the
// property tests.  Precomputation is O(W·(V + E)) time and O(W²) space in
// the worst case (W = active set size), so it is gated to modest graphs.
#pragma once

#include <queue>
#include <vector>

#include "sched/scheduler.hpp"

namespace dsched::sched {

/// Offline-clairvoyant LPT list scheduler.
class OracleScheduler : public Scheduler {
 public:
  OracleScheduler() = default;

  [[nodiscard]] std::string_view Name() const override { return "Oracle"; }
  void Prepare(const SchedulerContext& ctx) override;
  void OnActivated(TaskId t) override;
  void OnStarted(TaskId t) override;
  void OnCompleted(TaskId t, bool output_changed) override;
  [[nodiscard]] TaskId PopReady() override;
  [[nodiscard]] SchedulerOpCounts OpCounts() const override { return counts_; }
  [[nodiscard]] std::size_t MemoryBytes() const override;

 private:
  void MaybeReady(TaskId t);

  SchedulerContext ctx_;
  SchedulerOpCounts counts_;
  /// Number of active ancestors not yet completed, per node (active only).
  std::vector<std::uint32_t> blockers_;
  /// dependents_[u] = active descendants of active task u.
  std::vector<std::vector<TaskId>> dependents_;
  std::vector<bool> is_active_;
  std::vector<bool> activated_;
  std::vector<bool> started_;
  std::vector<bool> queued_;

  struct BySpan {
    const std::vector<double>* spans;
    bool operator()(TaskId a, TaskId b) const {
      return (*spans)[a] < (*spans)[b];  // max-heap on span
    }
  };
  std::vector<double> spans_;
  std::priority_queue<TaskId, std::vector<TaskId>, BySpan> ready_;
};

}  // namespace dsched::sched
