// String-spec scheduler factory, used by bench binaries and examples to
// select policies from the command line.
//
// Recognized specs (case-insensitive):
//   "levelbased"              — LevelBasedScheduler
//   "lbl:<k>" / "lookahead:<k>" — LookaheadScheduler with lookahead k
//   "logicblox"               — LogicBloxScheduler
//   "signal"                  — SignalPropagationScheduler
//   "hybrid"                  — HybridScheduler(LevelBased, LogicBlox)
//   "hybrid:<heuristic>"      — HybridScheduler(LevelBased, <heuristic>)
//   "meta(<heuristic>,<zeta_bytes>)" — MetaScheduler: <heuristic> on
//                               ceil(P/2) workers, LevelBased on the rest,
//                               zeta/2 kill rule (paper Theorem 10)
//   "oracle"                  — OracleScheduler (clairvoyant reference)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace dsched::sched {

/// Instantiates a scheduler from a spec string; throws util::ParseError for
/// unknown specs.
[[nodiscard]] std::unique_ptr<Scheduler> CreateScheduler(
    const std::string& spec);

/// The specs CreateScheduler understands, for --help texts.
[[nodiscard]] std::vector<std::string> KnownSchedulerSpecs();

}  // namespace dsched::sched
