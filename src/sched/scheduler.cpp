#include "sched/scheduler.hpp"

namespace dsched::sched {

void SchedulerOpCounts::Merge(const SchedulerOpCounts& other) {
  ancestor_queries += other.ancestor_queries;
  interval_probes += other.interval_probes;
  queue_scans += other.queue_scans;
  scanned_candidates += other.scanned_candidates;
  messages += other.messages;
  level_advances += other.level_advances;
  lookahead_visits += other.lookahead_visits;
  pops += other.pops;
}

std::uint64_t SchedulerOpCounts::Total() const {
  return ancestor_queries + interval_probes + queue_scans +
         scanned_candidates + messages + level_advances + lookahead_visits +
         pops;
}

std::size_t Scheduler::PopReadyBatch(std::vector<TaskId>& out,
                                     std::size_t max) {
  std::size_t popped = 0;
  while (popped < max) {
    const TaskId t = PopReady();
    if (t == util::kInvalidTask) {
      break;
    }
    OnStarted(t);
    out.push_back(t);
    ++popped;
  }
  return popped;
}

}  // namespace dsched::sched
