// The hybrid scheduler — the paper's main practical result (Sections V and
// VI-B).
//
// Two policies run over one shared pool of work: a lightweight "fast"
// scheduler (LevelBased) and an arbitrary heuristic (the LogicBlox
// scheduler).  Both receive every activation/start/completion event; ready
// work is taken from whichever finds it first, with the O(1) fast path
// consulted before the heuristic's expensive scan.  On the heuristic's good
// instances behaviour is unchanged; on its pathological instances the fast
// path keeps the processors saturated — "adding our new scheduler only
// results in performance improvements."
#pragma once

#include <memory>
#include <string>

#include "sched/scheduler.hpp"

namespace dsched::sched {

/// Runs a fast scheduler and a heuristic cooperatively.
class HybridScheduler : public Scheduler {
 public:
  /// Both children must be freshly constructed (not yet Prepared).
  HybridScheduler(std::unique_ptr<Scheduler> fast,
                  std::unique_ptr<Scheduler> heuristic);

  [[nodiscard]] std::string_view Name() const override { return name_; }
  void Prepare(const SchedulerContext& ctx) override;
  void OnActivated(TaskId t) override;
  void OnStarted(TaskId t) override;
  void OnCompleted(TaskId t, bool output_changed) override;
  [[nodiscard]] TaskId PopReady() override;
  /// Native batch pop: drains the fast child's batch (falling back to the
  /// gated heuristic) and forwards the started transitions to the child
  /// that did not pop — one virtual call per frontier drain instead of two
  /// per task.
  std::size_t PopReadyBatch(std::vector<TaskId>& out, std::size_t max) override;
  [[nodiscard]] SchedulerOpCounts OpCounts() const override;
  [[nodiscard]] std::size_t MemoryBytes() const override;

  [[nodiscard]] const Scheduler& Fast() const { return *fast_; }
  [[nodiscard]] const Scheduler& Heuristic() const { return *heuristic_; }

 private:
  std::unique_ptr<Scheduler> fast_;
  std::unique_ptr<Scheduler> heuristic_;
  std::string name_;
  // Amortization gate on the heuristic, tuned so typical behaviour is
  // identical to always consulting while scan-pathological instances pay
  // O(log n) scans instead of O(n):
  //  * every activation grants a credit; a fast-path pop consumes one
  //    (that activation found its way to a processor without the
  //    heuristic).  Leftover credits mean work the fast path could not
  //    place — consult the heuristic immediately.
  //  * with no credits, consults are allowed after consult_threshold_
  //    completions; the threshold doubles after a fruitless consult and
  //    resets to 1 on any success, so only *runs* of useless scans (a
  //    stagnant blocked queue, the pathological pattern) are throttled.
  // This mirrors what the paper's concurrent shared-queue deployment gets
  // by never letting the slow finder block anything.
  std::uint64_t activation_credits_ = 0;
  std::uint64_t completions_since_consult_ = 1;
  std::uint64_t consult_threshold_ = 1;
  std::uint64_t consecutive_failures_ = 0;
};

}  // namespace dsched::sched
