#include "sched/logicblox.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace dsched::sched {

void LogicBloxScheduler::Prepare(const SchedulerContext& ctx) {
  DSCHED_CHECK_MSG(ctx.trace != nullptr, "scheduler context needs a trace");
  ctx_ = ctx;
  const graph::Dag& dag = ctx.trace->Graph();
  // The heavyweight precomputation the paper critiques: all ancestor
  // relationships, interval-encoded.
  index_ = std::make_unique<interval::IntervalIndex>(dag);
  activated_.assign(dag.NumNodes(), false);
  started_.assign(dag.NumNodes(), false);
  completed_.assign(dag.NumNodes(), false);
  dirty_ = true;
}

void LogicBloxScheduler::OnActivated(TaskId t) {
  DSCHED_CHECK_MSG(t < activated_.size(), "task id out of range");
  DSCHED_CHECK_MSG(!activated_[t], "task activated twice");
  activated_[t] = true;
  pending_.push_back(t);
  incomplete_active_.push_back(t);
  dirty_ = true;
}

void LogicBloxScheduler::OnStarted(TaskId t) {
  DSCHED_CHECK_MSG(activated_[t] && !started_[t],
                   "OnStarted on a task not pending");
  started_[t] = true;
}

void LogicBloxScheduler::OnCompleted(TaskId t, bool /*output_changed*/) {
  DSCHED_CHECK_MSG(started_[t] && !completed_[t],
                   "OnCompleted on a task not running");
  completed_[t] = true;
  needs_compaction_ = true;
  dirty_ = true;
}

TaskId LogicBloxScheduler::PopReady() {
  OBS_SCOPE(Category::kSchedPopLogicBlox);
  for (;;) {
    while (!ready_.empty()) {
      const TaskId t = ready_.front();
      if (started_[t]) {
        ready_.pop_front();
        continue;
      }
      ++counts_.pops;
      return t;
    }
    if (!dirty_ || pending_.empty()) {
      return util::kInvalidTask;
    }
    Scan();
  }
}

std::size_t LogicBloxScheduler::PopReadyBatch(std::vector<TaskId>& out,
                                              std::size_t max) {
  OBS_SCOPE(Category::kSchedPopLogicBlox);
  std::size_t popped = 0;
  for (;;) {
    while (popped < max && !ready_.empty()) {
      const TaskId t = ready_.front();
      ready_.pop_front();
      if (started_[t]) {
        continue;  // claimed by a cooperating scheduler
      }
      started_[t] = true;  // the OnStarted transition, inline
      ++counts_.pops;
      out.push_back(t);
      ++popped;
    }
    if (popped >= max || !dirty_ || pending_.empty()) {
      return popped;
    }
    Scan();
    if (ready_.empty()) {
      return popped;
    }
  }
}

void LogicBloxScheduler::Scan() {
  OBS_SCOPE(Category::kSchedScanLogicBlox);
  ++counts_.queue_scans;
  dirty_ = false;
  if (needs_compaction_) {
    std::erase_if(incomplete_active_,
                  [this](TaskId t) { return completed_[t]; });
    needs_compaction_ = false;
  }
  std::vector<TaskId> still_pending;
  still_pending.reserve(pending_.size());
  for (const TaskId c : pending_) {
    if (started_[c]) {
      continue;  // claimed by a cooperating scheduler
    }
    ++counts_.scanned_candidates;
    bool blocked = false;
    // "check whether any of the O(n) active nodes are its ancestors"
    for (const TaskId a : incomplete_active_) {
      if (a == c || completed_[a]) {
        continue;
      }
      ++counts_.ancestor_queries;
      if (index_->Reaches(a, c, &counts_.interval_probes)) {
        blocked = true;
        break;
      }
    }
    if (blocked) {
      still_pending.push_back(c);
    } else {
      ready_.push_back(c);
    }
  }
  pending_ = std::move(still_pending);
}

std::size_t LogicBloxScheduler::MemoryBytes() const {
  std::size_t bytes = index_ ? index_->MemoryBytes() : 0;
  bytes += pending_.capacity() * sizeof(TaskId) +
           ready_.size() * sizeof(TaskId) +
           incomplete_active_.capacity() * sizeof(TaskId) +
           (activated_.capacity() + started_.capacity() +
            completed_.capacity()) / 8;
  return bytes;
}

}  // namespace dsched::sched
