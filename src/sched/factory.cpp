#include "sched/factory.hpp"

#include <algorithm>
#include <cctype>

#include "sched/hybrid.hpp"
#include "sched/level_based.hpp"
#include "sched/logicblox.hpp"
#include "sched/lookahead.hpp"
#include "sched/meta.hpp"
#include "sched/oracle.hpp"
#include "sched/signal_propagation.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dsched::sched {

namespace {
std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}
}  // namespace

namespace {

/// Joined spec list for error texts, kept in lockstep with
/// KnownSchedulerSpecs so unknown-spec messages always name every valid
/// form.
std::string KnownSpecsText() {
  std::string text;
  for (const std::string& known : KnownSchedulerSpecs()) {
    if (!text.empty()) {
      text += ", ";
    }
    text += known;
  }
  return text;
}

}  // namespace

std::unique_ptr<Scheduler> CreateScheduler(const std::string& spec) {
  const std::string lower = Lower(spec);
  // "meta(<heuristic>,<zeta_bytes>)" carries a full nested spec, so it is
  // parsed before the colon split ("meta(lbl:4,65536)" contains one).
  if (lower.rfind("meta(", 0) == 0) {
    if (lower.back() != ')') {
      throw util::ParseError("malformed meta spec '" + spec +
                             "' (want meta(<heuristic>,<zeta_bytes>))");
    }
    const std::string inner = lower.substr(5, lower.size() - 6);
    const auto comma = inner.rfind(',');
    if (comma == std::string::npos || comma == 0 ||
        comma + 1 == inner.size()) {
      throw util::ParseError("malformed meta spec '" + spec +
                             "' (want meta(<heuristic>,<zeta_bytes>))");
    }
    const std::string heuristic_spec = inner.substr(0, comma);
    if (heuristic_spec.rfind("meta", 0) == 0) {
      throw util::ParseError("meta cannot nest another meta scheduler");
    }
    const std::uint64_t zeta =
        util::ParseU64(inner.substr(comma + 1), "meta zeta bytes");
    return std::make_unique<MetaScheduler>(CreateScheduler(heuristic_spec),
                                           zeta);
  }
  std::string head = lower;
  std::string arg;
  if (const auto colon = lower.find(':'); colon != std::string::npos) {
    head = lower.substr(0, colon);
    arg = lower.substr(colon + 1);
  }
  if (head == "levelbased" || head == "lb") {
    LevelOrder order = LevelOrder::kLifo;
    if (arg == "fifo") {
      order = LevelOrder::kFifo;
    } else if (arg == "lpt") {
      order = LevelOrder::kLongestFirst;
    } else if (!arg.empty() && arg != "lifo") {
      throw util::ParseError("unknown level order '" + arg +
                             "' (want lifo, fifo, or lpt)");
    }
    return std::make_unique<LevelBasedScheduler>(order);
  }
  if (head == "lbl" || head == "lookahead") {
    const std::size_t k =
        arg.empty() ? 10 : static_cast<std::size_t>(util::ParseU64(arg, "lookahead k"));
    return std::make_unique<LookaheadScheduler>(k);
  }
  if (head == "logicblox" || head == "lx") {
    return std::make_unique<LogicBloxScheduler>();
  }
  if (head == "signal" || head == "signalpropagation") {
    return std::make_unique<SignalPropagationScheduler>();
  }
  if (head == "oracle") {
    return std::make_unique<OracleScheduler>();
  }
  if (head == "hybrid") {
    std::unique_ptr<Scheduler> heuristic;
    if (arg.empty()) {
      heuristic = std::make_unique<LogicBloxScheduler>();
    } else {
      heuristic = CreateScheduler(arg);
    }
    return std::make_unique<HybridScheduler>(
        std::make_unique<LevelBasedScheduler>(), std::move(heuristic));
  }
  throw util::ParseError("unknown scheduler spec '" + spec + "' (known: " +
                         KnownSpecsText() + ")");
}

std::vector<std::string> KnownSchedulerSpecs() {
  return {"levelbased",
          "levelbased:<lifo|fifo|lpt>",
          "lbl:<k>",
          "logicblox",
          "signal",
          "hybrid",
          "hybrid:<heuristic>",
          "meta(<heuristic>,<zeta_bytes>)",
          "oracle"};
}

}  // namespace dsched::sched
