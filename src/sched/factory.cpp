#include "sched/factory.hpp"

#include <algorithm>
#include <cctype>

#include "sched/hybrid.hpp"
#include "sched/level_based.hpp"
#include "sched/logicblox.hpp"
#include "sched/lookahead.hpp"
#include "sched/oracle.hpp"
#include "sched/signal_propagation.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dsched::sched {

namespace {
std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}
}  // namespace

std::unique_ptr<Scheduler> CreateScheduler(const std::string& spec) {
  const std::string lower = Lower(spec);
  std::string head = lower;
  std::string arg;
  if (const auto colon = lower.find(':'); colon != std::string::npos) {
    head = lower.substr(0, colon);
    arg = lower.substr(colon + 1);
  }
  if (head == "levelbased" || head == "lb") {
    LevelOrder order = LevelOrder::kLifo;
    if (arg == "fifo") {
      order = LevelOrder::kFifo;
    } else if (arg == "lpt") {
      order = LevelOrder::kLongestFirst;
    } else if (!arg.empty() && arg != "lifo") {
      throw util::ParseError("unknown level order '" + arg +
                             "' (want lifo, fifo, or lpt)");
    }
    return std::make_unique<LevelBasedScheduler>(order);
  }
  if (head == "lbl" || head == "lookahead") {
    const std::size_t k =
        arg.empty() ? 10 : static_cast<std::size_t>(util::ParseU64(arg, "lookahead k"));
    return std::make_unique<LookaheadScheduler>(k);
  }
  if (head == "logicblox" || head == "lx") {
    return std::make_unique<LogicBloxScheduler>();
  }
  if (head == "signal" || head == "signalpropagation") {
    return std::make_unique<SignalPropagationScheduler>();
  }
  if (head == "oracle") {
    return std::make_unique<OracleScheduler>();
  }
  if (head == "hybrid") {
    std::unique_ptr<Scheduler> heuristic;
    if (arg.empty()) {
      heuristic = std::make_unique<LogicBloxScheduler>();
    } else {
      heuristic = CreateScheduler(arg);
    }
    return std::make_unique<HybridScheduler>(
        std::make_unique<LevelBasedScheduler>(), std::move(heuristic));
  }
  throw util::ParseError("unknown scheduler spec '" + spec +
                         "' (known: levelbased, lbl:<k>, logicblox, signal, "
                         "hybrid[:<heuristic>], oracle)");
}

std::vector<std::string> KnownSchedulerSpecs() {
  return {"levelbased",         "levelbased:<lifo|fifo|lpt>",
          "lbl:<k>",            "logicblox",
          "signal",             "hybrid",
          "hybrid:<heuristic>", "oracle"};
}

}  // namespace dsched::sched
