// LevelBased with LookAhead — LBL(k) (paper Sections III "Extending the
// algorithm" and VI-B).
//
// Plain LevelBased refuses to start anything past the frontier level until
// the frontier drains, which wastes processors when levels are narrow and
// tasks are sequential.  LBL(k) adds: whenever the frontier is blocked but
// work is still running, search the next k levels for an active task with
// no incomplete active ancestor, verified by a bounded reverse BFS.  A task
// proven safe stays safe (any later activation above it would require an
// incomplete active ancestor now), so approvals are cached.
//
// Worst case O(n²) scheduler time; excellent when levels hold few tasks —
// exactly the regime where plain LevelBased stalls (Table II shows LBL(15)
// matching the LogicBlox scheduler).
#pragma once

#include <deque>
#include <string>

#include "sched/level_based.hpp"

namespace dsched::sched {

/// LBL(k): LevelBased plus a k-level lookahead search.
class LookaheadScheduler : public LevelBasedScheduler {
 public:
  /// `lookahead` is the paper's parameter k — how many levels past the
  /// frontier to search.
  explicit LookaheadScheduler(std::size_t lookahead);

  [[nodiscard]] std::string_view Name() const override { return name_; }
  void Prepare(const SchedulerContext& ctx) override;
  [[nodiscard]] TaskId PopReady() override;
  /// The lookahead search lives in PopReady, so the batch form must go
  /// through it — restore the generic loop instead of inheriting
  /// LevelBased's frontier-only native drain (which would skip approvals).
  std::size_t PopReadyBatch(std::vector<TaskId>& out, std::size_t max) override {
    return Scheduler::PopReadyBatch(out, max);
  }

  [[nodiscard]] std::size_t Lookahead() const { return k_; }

 private:
  /// True iff no incomplete active task is an ancestor of `candidate`
  /// (bounded reverse BFS, pruned at the frontier and at started tasks).
  [[nodiscard]] bool IsSafe(TaskId candidate);

  std::size_t k_;
  std::string name_;
  std::deque<TaskId> approved_;
  std::vector<bool> approved_set_;
  // Epoch-stamped visited marks so each BFS starts clean in O(1).
  std::vector<std::uint32_t> visit_stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<TaskId> bfs_queue_;
};

}  // namespace dsched::sched
