#include "sched/hybrid.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace dsched::sched {

HybridScheduler::HybridScheduler(std::unique_ptr<Scheduler> fast,
                                 std::unique_ptr<Scheduler> heuristic)
    : fast_(std::move(fast)), heuristic_(std::move(heuristic)) {
  DSCHED_CHECK_MSG(fast_ != nullptr && heuristic_ != nullptr,
                   "hybrid needs both child schedulers");
  name_ = "Hybrid(" + std::string(fast_->Name()) + "+" +
          std::string(heuristic_->Name()) + ")";
}

void HybridScheduler::Prepare(const SchedulerContext& ctx) {
  fast_->Prepare(ctx);
  heuristic_->Prepare(ctx);
}

void HybridScheduler::OnActivated(TaskId t) {
  fast_->OnActivated(t);
  heuristic_->OnActivated(t);
  ++activation_credits_;
}

void HybridScheduler::OnStarted(TaskId t) {
  fast_->OnStarted(t);
  heuristic_->OnStarted(t);
}

void HybridScheduler::OnCompleted(TaskId t, bool output_changed) {
  fast_->OnCompleted(t, output_changed);
  heuristic_->OnCompleted(t, output_changed);
  ++completions_since_consult_;
}

TaskId HybridScheduler::PopReady() {
  OBS_SCOPE(Category::kSchedPopHybrid);
  // Fast path first: in the cooperative scheme this models both finders
  // feeding the shared ready queue, with the O(1) one winning the race
  // whenever it has anything — the heuristic's scan is only paid when the
  // fast path is blocked, and repeated fruitless scans back off.
  const TaskId fast = fast_->PopReady();
  if (fast != util::kInvalidTask) {
    if (activation_credits_ > 0) {
      --activation_credits_;  // this activation never needed the heuristic
    }
    return fast;
  }
  if (activation_credits_ == 0 &&
      completions_since_consult_ < consult_threshold_) {
    return util::kInvalidTask;  // let running work complete first
  }
  activation_credits_ = 0;
  const TaskId slow = heuristic_->PopReady();
  if (slow != util::kInvalidTask) {
    consecutive_failures_ = 0;
    consult_threshold_ = 1;
    completions_since_consult_ = 1;  // keep draining the heuristic's queue
  } else {
    // An isolated failure costs only the wait for the next completion
    // (nothing can become ready without one anyway); doubling kicks in from
    // the second consecutive failure, so only genuine failure *runs* — the
    // pathological pattern — get throttled.
    ++consecutive_failures_;
    consult_threshold_ =
        consecutive_failures_ <= 1
            ? 1
            : (std::uint64_t{1}
               << std::min<std::uint64_t>(consecutive_failures_ - 1, 62));
    completions_since_consult_ = 0;
  }
  return slow;
}

std::size_t HybridScheduler::PopReadyBatch(std::vector<TaskId>& out,
                                           std::size_t max) {
  OBS_SCOPE(Category::kSchedPopHybrid);
  const std::size_t before = out.size();
  // Fast path first, same rationale as PopReady.  The popping child has
  // already transitioned its copies to started; only the other child still
  // needs the OnStarted notifications.
  std::size_t n = fast_->PopReadyBatch(out, max);
  if (n > 0) {
    for (std::size_t i = before; i < out.size(); ++i) {
      heuristic_->OnStarted(out[i]);
    }
    activation_credits_ -= std::min<std::uint64_t>(activation_credits_, n);
    return n;
  }
  if (activation_credits_ == 0 &&
      completions_since_consult_ < consult_threshold_) {
    return 0;  // let running work complete first
  }
  activation_credits_ = 0;
  n = heuristic_->PopReadyBatch(out, max);
  if (n > 0) {
    for (std::size_t i = before; i < out.size(); ++i) {
      fast_->OnStarted(out[i]);
    }
    consecutive_failures_ = 0;
    consult_threshold_ = 1;
    completions_since_consult_ = 1;
  } else {
    ++consecutive_failures_;
    consult_threshold_ =
        consecutive_failures_ <= 1
            ? 1
            : (std::uint64_t{1}
               << std::min<std::uint64_t>(consecutive_failures_ - 1, 62));
    completions_since_consult_ = 0;
  }
  return n;
}

SchedulerOpCounts HybridScheduler::OpCounts() const {
  SchedulerOpCounts counts = fast_->OpCounts();
  counts.Merge(heuristic_->OpCounts());
  return counts;
}

std::size_t HybridScheduler::MemoryBytes() const {
  return fast_->MemoryBytes() + heuristic_->MemoryBytes();
}

}  // namespace dsched::sched
