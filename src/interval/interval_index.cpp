#include "interval/interval_index.hpp"

#include <algorithm>

#include "graph/topo.hpp"
#include "util/error.hpp"

namespace dsched::interval {

IntervalIndex::IntervalIndex(const graph::Dag& dag) {
  const std::size_t n = dag.NumNodes();
  post_.assign(n, 0);
  sets_.resize(n);
  if (n == 0) {
    return;
  }

  // --- Pass 1: iterative DFS from the sources builds a spanning forest and
  // assigns postorder numbers.  All numbers assigned between the push and
  // the pop of a node belong to its DFS subtree, so recording the next
  // postorder value at push time ("watermark") makes the node's tree
  // interval exactly [watermark, post[node]].
  std::vector<bool> visited(n, false);
  std::vector<std::uint32_t> tree_low(n, 0);
  std::uint32_t next_post = 0;

  struct Frame {
    TaskId node;
    std::size_t child_index;
  };
  std::vector<Frame> stack;
  for (const TaskId root : dag.Sources()) {
    if (visited[root]) {
      continue;
    }
    visited[root] = true;
    tree_low[root] = next_post;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto children = dag.OutNeighbors(frame.node);
      if (frame.child_index < children.size()) {
        const TaskId child = children[frame.child_index++];
        if (!visited[child]) {
          visited[child] = true;
          tree_low[child] = next_post;
          stack.push_back({child, 0});
        }
      } else {
        post_[frame.node] = next_post;
        ++next_post;
        stack.pop_back();
      }
    }
  }
  // Every node of a finite DAG is reachable from some source (follow parents
  // upward until in-degree 0), so the forest covers all of V.
  DSCHED_CHECK_MSG(next_post == n, "DFS failed to reach every node");

  // --- Pass 2: reverse topological sweep.  Each node's interval set is its
  // tree interval united with the interval sets of all DAG children (tree
  // and non-tree edges alike), giving exactly the descendant closure.
  const auto order = graph::TopologicalOrder(dag);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId u = *it;
    IntervalSet& set = sets_[u];
    set.Insert(tree_low[u], post_[u]);
    for (const TaskId child : dag.OutNeighbors(u)) {
      set.Merge(sets_[child]);
    }
    total_intervals_ += set.Size();
  }
}

bool IntervalIndex::Reaches(TaskId u, TaskId v, std::uint64_t* probes) const {
  DSCHED_CHECK_MSG(u < sets_.size() && v < post_.size(),
                   "node id out of range");
  return sets_[u].Contains(post_[v], probes);
}

std::size_t IntervalIndex::MemoryBytes() const {
  std::size_t bytes = post_.capacity() * sizeof(std::uint32_t) +
                      sets_.capacity() * sizeof(IntervalSet);
  for (const auto& set : sets_) {
    bytes += set.MemoryBytes();
  }
  return bytes;
}

}  // namespace dsched::interval
