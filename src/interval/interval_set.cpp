#include "interval/interval_set.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace dsched::interval {

void IntervalSet::Insert(std::uint32_t lo, std::uint32_t hi) {
  DSCHED_CHECK_MSG(lo <= hi, "interval lo must not exceed hi");
  // Find the first interval whose hi is >= lo - 1 (merge candidate).
  const auto touches_from = std::lower_bound(
      intervals_.begin(), intervals_.end(), lo,
      [](const Interval& iv, std::uint32_t key) {
        // Treat hi == key - 1 as touching (adjacency coalesces); beware of
        // unsigned wrap when key == 0.
        return key > 0 ? iv.hi < key - 1 : false;
      });
  if (touches_from == intervals_.end() || touches_from->lo > (hi == UINT32_MAX ? hi : hi + 1)) {
    // Disjoint and non-adjacent: plain insertion.
    intervals_.insert(touches_from, Interval{lo, hi});
    return;
  }
  // Merge the run of touching intervals into one.
  auto touches_to = touches_from;
  std::uint32_t new_lo = std::min(lo, touches_from->lo);
  std::uint32_t new_hi = hi;
  while (touches_to != intervals_.end() &&
         touches_to->lo <= (hi == UINT32_MAX ? hi : hi + 1)) {
    new_hi = std::max(new_hi, touches_to->hi);
    ++touches_to;
  }
  *touches_from = Interval{new_lo, new_hi};
  intervals_.erase(touches_from + 1, touches_to);
}

void IntervalSet::Merge(const IntervalSet& other) {
  if (other.Empty()) {
    return;
  }
  if (Empty()) {
    intervals_ = other.intervals_;
    return;
  }
  // Linear merge of two sorted lists, coalescing as we go.
  std::vector<Interval> merged;
  merged.reserve(intervals_.size() + other.intervals_.size());
  std::size_t i = 0;
  std::size_t j = 0;
  const auto push = [&merged](Interval iv) {
    if (!merged.empty() && iv.lo <= (merged.back().hi == UINT32_MAX
                                         ? merged.back().hi
                                         : merged.back().hi + 1)) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  };
  while (i < intervals_.size() || j < other.intervals_.size()) {
    if (j == other.intervals_.size() ||
        (i < intervals_.size() && intervals_[i].lo <= other.intervals_[j].lo)) {
      push(intervals_[i++]);
    } else {
      push(other.intervals_[j++]);
    }
  }
  intervals_ = std::move(merged);
}

bool IntervalSet::Contains(std::uint32_t x, std::uint64_t* probes) const {
  std::size_t lo = 0;
  std::size_t hi = intervals_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (probes != nullptr) {
      ++*probes;
    }
    if (intervals_[mid].hi < x) {
      lo = mid + 1;
    } else if (intervals_[mid].lo > x) {
      hi = mid;
    } else {
      return true;
    }
  }
  return false;
}

std::uint64_t IntervalSet::Cardinality() const {
  std::uint64_t total = 0;
  for (const auto& iv : intervals_) {
    total += static_cast<std::uint64_t>(iv.hi) - iv.lo + 1;
  }
  return total;
}

std::string IntervalSet::ToString() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) {
      oss << " ";
    }
    oss << "[" << intervals_[i].lo << "," << intervals_[i].hi << "]";
  }
  return oss.str();
}

}  // namespace dsched::interval
