// A sorted set of disjoint closed integer intervals.
//
// The LogicBlox scheduler's ancestor store (paper Section II-C) encodes each
// node's descendant set as a list of postorder-number intervals, following
// Agrawal, Borgida & Jagadish (SIGMOD'89) and Nuutila (1995).  "Usually but
// not always" compact: adversarial DAGs force Θ(V) intervals on Θ(V) nodes,
// which is the O(V^2) worst case the paper cites.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dsched::interval {

/// One closed interval [lo, hi] of postorder numbers.
struct Interval {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Sorted, coalesced list of disjoint intervals.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Inserts [lo, hi], merging with any overlapping or adjacent intervals.
  void Insert(std::uint32_t lo, std::uint32_t hi);

  /// Unions another set into this one.
  void Merge(const IntervalSet& other);

  /// Membership test by binary search over the interval list.  `probes`
  /// (optional) is incremented by the number of comparisons performed, which
  /// the simulator uses as the modelled query cost.
  [[nodiscard]] bool Contains(std::uint32_t x,
                              std::uint64_t* probes = nullptr) const;

  /// Number of stored intervals (the "length" of the interval list).
  [[nodiscard]] std::size_t Size() const { return intervals_.size(); }

  [[nodiscard]] bool Empty() const { return intervals_.empty(); }

  /// Total integers covered.
  [[nodiscard]] std::uint64_t Cardinality() const;

  /// Resident bytes of the interval storage.
  [[nodiscard]] std::size_t MemoryBytes() const {
    return intervals_.capacity() * sizeof(Interval);
  }

  [[nodiscard]] const std::vector<Interval>& Intervals() const {
    return intervals_;
  }

  /// "[2,5] [9,9] [12,20]".
  [[nodiscard]] std::string ToString() const;

 private:
  std::vector<Interval> intervals_;
};

}  // namespace dsched::interval
