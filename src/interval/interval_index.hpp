// Interval-list transitive-closure index — the ancestor store of the
// production LogicBlox scheduler (paper Sections II-C and VI-B).
//
// Construction (Agrawal-Borgida-Jagadish'89):
//  1. A DFS over the DAG from its sources chooses a spanning forest and
//     assigns every node a postorder number.  Each node's *tree* descendants
//     then form the contiguous interval [min-descendant-post, own-post].
//  2. A reverse-topological sweep unions each node's tree interval with the
//     interval sets of all of its (DAG, not just tree) children, so every
//     node's interval set covers the postorder numbers of exactly its
//     descendants.
//
// Queries: `ReachesQuery(u, v)` — "is v a descendant of u", equivalently
// "is u an ancestor of v" — binary-searches post[v] in u's interval set.
//
// Complexity: "usually but not always compact" — worst case Θ(V) intervals
// on Θ(V) nodes = O(V^2) space, which is the separation from the LevelBased
// scheduler's O(V) that Theorem 2 establishes.  All probe work is counted so
// the benches can report modelled scheduling overhead.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dag.hpp"
#include "interval/interval_set.hpp"
#include "util/types.hpp"

namespace dsched::interval {

using util::TaskId;

/// Immutable ancestor/descendant index over one Dag.
class IntervalIndex {
 public:
  /// Precomputes the index: O(V + E + total-intervals) time.
  explicit IntervalIndex(const graph::Dag& dag);

  /// True iff v is reachable from u (u == v counts as reachable).
  /// Thread-compatible: const and does not mutate; the probe counter is
  /// returned through the out-parameter instead of internal state.
  [[nodiscard]] bool Reaches(TaskId u, TaskId v,
                             std::uint64_t* probes = nullptr) const;

  /// True iff `ancestor` is a proper or improper ancestor of `node`.
  [[nodiscard]] bool IsAncestor(TaskId ancestor, TaskId node,
                                std::uint64_t* probes = nullptr) const {
    return Reaches(ancestor, node, probes);
  }

  /// Postorder number assigned to a node by the DFS.
  [[nodiscard]] std::uint32_t PostOrder(TaskId u) const { return post_[u]; }

  /// Interval list of one node (its descendant set, itself included).
  [[nodiscard]] const IntervalSet& IntervalsOf(TaskId u) const {
    return sets_[u];
  }

  /// Total intervals stored across all nodes — the size figure that is
  /// quadratic on adversarial DAGs.
  [[nodiscard]] std::uint64_t TotalIntervals() const { return total_intervals_; }

  /// Resident bytes of the whole index.
  [[nodiscard]] std::size_t MemoryBytes() const;

  /// Number of nodes indexed.
  [[nodiscard]] std::size_t NumNodes() const { return sets_.size(); }

 private:
  std::vector<std::uint32_t> post_;
  std::vector<IntervalSet> sets_;
  std::uint64_t total_intervals_ = 0;
};

}  // namespace dsched::interval
