#include "runtime/thread_pool.hpp"

#include "util/error.hpp"

namespace dsched::runtime {

ThreadPool::ThreadPool(std::size_t workers) {
  DSCHED_CHECK_MSG(workers >= 1, "thread pool needs at least one worker");
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    DSCHED_CHECK_MSG(!shutting_down_, "submit on a shutting-down pool");
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

}  // namespace dsched::runtime
