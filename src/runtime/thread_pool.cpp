#include "runtime/thread_pool.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace dsched::runtime {

ThreadPool::ThreadPool(std::size_t workers, TaskFn run)
    : run_(std::move(run)) {
  DSCHED_CHECK_MSG(workers >= 1, "thread pool needs at least one worker");
  DSCHED_CHECK_MSG(run_ != nullptr, "thread pool needs a task body");
  slots_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(sleep_mutex_);
    shutdown_.store(true, std::memory_order_relaxed);
  }
  work_available_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::Submit(WorkItem task) {
  DSCHED_CHECK_MSG(!shutdown_.load(std::memory_order_relaxed),
                   "submit on a shutting-down pool");
  const std::size_t slot =
      next_slot_.fetch_add(1, std::memory_order_relaxed) % slots_.size();
  // Counters first: a claimer's fetch_sub must never observe the item
  // before the increment (unclaimed_ would underflow).
  outstanding_.fetch_add(1);
  unclaimed_.fetch_add(1);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(slots_[slot]->mutex);
    slots_[slot]->deque.push_back(task);
  }
  WakeWorkers(1);
}

void ThreadPool::SubmitBatch(std::span<const WorkItem> tasks) {
  if (tasks.empty()) {
    return;
  }
  DSCHED_CHECK_MSG(!shutdown_.load(std::memory_order_relaxed),
                   "submit on a shutting-down pool");
  const std::size_t n = tasks.size();
  outstanding_.fetch_add(n);
  unclaimed_.fetch_add(n);
  submitted_.fetch_add(n, std::memory_order_relaxed);
  // Contiguous chunks, one lock acquisition per touched deque.  Stealing
  // fixes up any imbalance the chunking leaves.
  const std::size_t chunks = std::min(n, slots_.size());
  const std::size_t base = next_slot_.fetch_add(chunks, std::memory_order_relaxed);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    WorkerSlot& slot = *slots_[(base + c) % slots_.size()];
    const std::lock_guard<std::mutex> lock(slot.mutex);
    slot.deque.insert(slot.deque.end(), tasks.begin() + static_cast<std::ptrdiff_t>(begin),
                      tasks.begin() + static_cast<std::ptrdiff_t>(end));
  }
  WakeWorkers(n);
}

void ThreadPool::WakeWorkers(std::size_t count) {
  // Only touch the sleep mutex when somebody is actually asleep, and wake
  // at most one worker per new item — no thundering herd.
  const std::size_t asleep = sleepers_.load(std::memory_order_seq_cst);
  if (asleep == 0) {
    return;
  }
  const std::size_t wakes = std::min(count, asleep);
  // Lock/unlock pairs the notify with the sleeper's predicate check; a
  // sleeper registering concurrently re-checks unclaimed_ under the lock
  // before blocking, so the wakeup cannot be lost.
  const std::lock_guard<std::mutex> lock(sleep_mutex_);
  if (wakes >= slots_.size()) {
    work_available_.notify_all();
  } else {
    for (std::size_t i = 0; i < wakes; ++i) {
      work_available_.notify_one();
    }
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(done_mutex_);
  all_done_.wait(lock, [this] { return outstanding_.load() == 0; });
}

void ThreadPool::FinishOne() {
  if (outstanding_.fetch_sub(1) == 1) {
    // Pair with Wait(): taking the mutex orders this notify after any
    // in-progress predicate check.
    const std::lock_guard<std::mutex> lock(done_mutex_);
    all_done_.notify_all();
  }
}

bool ThreadPool::TryPopOwn(std::size_t self, WorkItem& out) {
  WorkerSlot& slot = *slots_[self];
  const std::lock_guard<std::mutex> lock(slot.mutex);
  if (slot.deque.empty()) {
    return false;
  }
  out = slot.deque.back();  // owner takes LIFO: newest, cache-warm
  slot.deque.pop_back();
  unclaimed_.fetch_sub(1);
  return true;
}

bool ThreadPool::TrySteal(std::size_t self, WorkItem& out) {
  const std::size_t n = slots_.size();
  WorkerSlot& own = *slots_[self];
  for (std::size_t i = 1; i < n; ++i) {
    WorkerSlot& victim = *slots_[(self + i) % n];
    std::size_t grab = 0;
    {
      std::unique_lock<std::mutex> victim_lock(victim.mutex, std::try_to_lock);
      if (!victim_lock.owns_lock() || victim.deque.empty()) {
        continue;  // contended or empty; a missed item re-checks via unclaimed_
      }
      // Thieves take FIFO from the front (oldest, least cache-affine), and
      // move up to half the victim's queue so steals stay rare.  The
      // surplus goes through the thief-private loot buffer: holding the
      // victim's lock while taking our own would let two thieves stealing
      // from each other deadlock (each holding the other's "own" slot).
      grab = (victim.deque.size() + 1) / 2;
      out = victim.deque.front();
      victim.deque.pop_front();
      own.loot.clear();
      for (std::size_t g = 1; g < grab; ++g) {
        own.loot.push_back(victim.deque.front());
        victim.deque.pop_front();
      }
    }
    // In-transit loot is still counted by unclaimed_, so no worker can
    // commit to sleeping before it lands in our deque below.
    if (!own.loot.empty()) {
      const std::lock_guard<std::mutex> own_lock(own.mutex);
      own.deque.insert(own.deque.end(), own.loot.begin(), own.loot.end());
    }
    unclaimed_.fetch_sub(1);  // the claimed item only; moved ones stay queued
    own.steals.fetch_add(grab, std::memory_order_relaxed);
    OBS_COUNTER(Category::kPoolSteal, grab);
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(std::size_t self) {
  WorkerSlot& own = *slots_[self];
  for (;;) {
    WorkItem task = 0;
    if (TryPopOwn(self, task) || TrySteal(self, task)) {
      run_(task, self);
      own.executed.fetch_add(1, std::memory_order_relaxed);
      FinishOne();
      continue;
    }
    if (shutdown_.load(std::memory_order_relaxed)) {
      return;  // shutting down and drained
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (unclaimed_.load() > 0) {
      continue;  // work appeared while we were locking; retry the scan
    }
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    own.sleeps.fetch_add(1, std::memory_order_relaxed);
    {
      OBS_SCOPE(Category::kPoolSleep);
      work_available_.wait(lock, [this] {
        return shutdown_.load(std::memory_order_relaxed) ||
               unclaimed_.load() > 0;
      });
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    own.wakeups.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadPoolStats ThreadPool::Stats() const {
  ThreadPoolStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  for (const auto& slot : slots_) {
    stats.executed += slot->executed.load(std::memory_order_relaxed);
    stats.steals += slot->steals.load(std::memory_order_relaxed);
    stats.sleeps += slot->sleeps.load(std::memory_order_relaxed);
    stats.wakeups += slot->wakeups.load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace dsched::runtime
