// A low-contention work-stealing worker pool.
//
// The previous pool was a single FIFO behind one mutex: every submit and
// every claim fought over the same lock, and every submit paid a
// condition-variable notify plus a std::function heap allocation.  At high
// worker counts the lock traffic — not the work — dominated
// `sched_wall_seconds`.  This pool removes all three costs:
//
//  * Work items are plain TaskIds; the task body is ONE callback fixed at
//    construction, so submitting allocates nothing.
//  * Each worker owns a deque behind its own (almost always uncontended)
//    mutex.  Owners push/pop at the back (LIFO, cache-warm); thieves take
//    from the front (FIFO, oldest first) and move up to half the victim's
//    queue in one steal, so rebalancing is amortised.
//  * Sleeping is predicate-guarded by an atomic count of unclaimed items:
//    submitters only touch the sleep mutex when a worker is actually
//    asleep, and wake exactly as many workers as there are new items — no
//    thundering herd.
//
// RAII join on destruction (pending work is drained first), same as the old
// pool.  Jobs must not throw; exceptions terminate.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "util/types.hpp"

namespace dsched::runtime {

/// Contention/behaviour counters, aggregated across workers by Stats().
struct ThreadPoolStats {
  std::uint64_t submitted = 0;  ///< items handed to Submit/SubmitBatch
  std::uint64_t executed = 0;   ///< items whose body finished
  std::uint64_t steals = 0;     ///< items taken from another worker's deque
  std::uint64_t sleeps = 0;     ///< times a worker went to sleep
  std::uint64_t wakeups = 0;    ///< times a sleeping worker was woken
};

/// Fixed pool of workers running one callback over submitted work items.
class ThreadPool {
 public:
  /// One unit of queued work: an opaque 64-bit word the submitter encodes
  /// and the pool's TaskFn decodes.  Single-tenant engines pass a bare
  /// TaskId in the low bits; the multi-tenant TaskRouter packs a channel
  /// tag into the high 32 bits so many cascades can share one pool.
  using WorkItem = std::uint64_t;

  /// The per-item body, fixed for the pool's lifetime (so per-item submits
  /// move an 8-byte word, not a closure).  The second argument is the index
  /// of the worker running the item (in [0, NumWorkers())), so bodies can
  /// reach worker-local state — e.g. the per-worker write buffers of the
  /// parallel Datalog engine — without thread-local lookups.
  using TaskFn = std::function<void(WorkItem, std::size_t worker)>;

  /// Spawns `workers` threads (at least 1) running `run` over items.
  ThreadPool(std::size_t workers, TaskFn run);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains pending items, then joins all workers.
  ~ThreadPool();

  /// Enqueues one item.
  void Submit(WorkItem task);

  /// Enqueues a batch, spreading contiguous chunks across worker deques
  /// under one lock acquisition per touched deque.
  void SubmitBatch(std::span<const WorkItem> tasks);

  /// Blocks until every submitted item has finished executing.
  void Wait();

  [[nodiscard]] std::size_t NumWorkers() const { return slots_.size(); }

  /// Aggregated counters; safe to call concurrently with running work
  /// (individual counters are relaxed atomics, the sum is approximate
  /// while work is in flight and exact once Wait() returned).
  [[nodiscard]] ThreadPoolStats Stats() const;

 private:
  // One cache line per worker: the deque mutex is the only lock on the
  // steady-state submit/claim path and is owner-local almost always.
  struct alignas(64) WorkerSlot {
    std::mutex mutex;
    std::deque<WorkItem> deque;
    /// Thief-private scratch for stolen surplus, touched only by this
    /// slot's own worker thread (never under any lock): TrySteal drains
    /// the victim into it, releases the victim's mutex, then appends to
    /// our deque — so no thread ever holds two slot mutexes at once.
    std::vector<WorkItem> loot;
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> sleeps{0};
    std::atomic<std::uint64_t> wakeups{0};
  };

  void WorkerLoop(std::size_t self);
  bool TryPopOwn(std::size_t self, WorkItem& out);
  bool TrySteal(std::size_t self, WorkItem& out);
  void WakeWorkers(std::size_t count);
  void FinishOne();

  TaskFn run_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  /// Queued-but-unclaimed items; the sleep predicate.  Incremented before
  /// an item becomes visible, decremented by the claimer.
  std::atomic<std::size_t> unclaimed_{0};
  /// Submitted-but-unfinished items; the Wait() predicate.
  std::atomic<std::size_t> outstanding_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<bool> shutdown_{false};
  /// Round-robin cursor for spreading external submits.
  std::atomic<std::size_t> next_slot_{0};
  std::atomic<std::size_t> sleepers_{0};

  std::mutex sleep_mutex_;
  std::condition_variable work_available_;
  std::mutex done_mutex_;
  std::condition_variable all_done_;
  std::vector<std::thread> threads_;
};

}  // namespace dsched::runtime
