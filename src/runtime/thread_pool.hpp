// A minimal fixed-size worker pool.
//
// Follows the C++ Core Guidelines concurrency rules: RAII join on
// destruction (CP.23-style), all shared state behind one mutex, condition
// variables with predicate waits.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsched::runtime {

/// Fixed pool of worker threads draining a FIFO of jobs.
class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(std::size_t workers);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains pending jobs, then joins all workers.
  ~ThreadPool();

  /// Enqueues one job.  Jobs must not throw; exceptions terminate.
  void Submit(std::function<void()> job);

  /// Blocks until every submitted job has finished executing.
  void Wait();

  [[nodiscard]] std::size_t NumWorkers() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dsched::runtime
