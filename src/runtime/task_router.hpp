// Multi-tenant routing over one shared work-stealing pool.
//
// The ThreadPool runs ONE body fixed at construction, which is exactly right
// for a single cascade but useless when many independently-scheduled
// cascades (one per service Session) must share the same worker threads.
// The TaskRouter closes that gap: it owns the process's pool and hands out
// lightweight *channels*, each carrying its own per-task body.  A submitted
// task is packed into the pool's 64-bit WorkItem as
//
//     [ channel id : high 32 bits | TaskId : low 32 bits ]
//
// so routing a task to its tenant is one shift on the worker — no map
// lookup, no per-task closure, no second queue.  Tasks from different
// channels interleave freely in the worker deques and steal from each other
// like any other items, so one stalled session cannot idle the pool.
//
// Lifecycle contract (enforced with checks, not locks, on the hot path):
//  * OpenChannel/Close are rare and take a mutex; Submit/dispatch never do
//    (beyond the pool's own deque locks).
//  * A channel's body must stay valid until Close() returns.  Close() may
//    only be called once every submitted task has *completed* (the Executor
//    guarantees this by counting completions); it then spins out the
//    sub-microsecond window where a worker has published its completion but
//    is still unwinding out of the body, so the body is never destroyed
//    under a running frame.
//  * Channel ids are recycled through a freelist after Close.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "util/types.hpp"

namespace dsched::runtime {

/// Owns the shared ThreadPool and multiplexes per-channel task bodies
/// onto it.  Thread-safe: channels may be opened, submitted to, and closed
/// concurrently from any number of coordinator threads.
class TaskRouter {
 public:
  /// Per-task body of one channel: does the work for `task`, may use
  /// `worker` (in [0, NumWorkers())) to reach worker-local state.
  using ChannelBody = std::function<void(util::TaskId task, std::size_t worker)>;

  struct Options {
    std::size_t workers = 4;
    /// Fixed channel-table capacity (slots are preallocated so dispatch
    /// never races a table resize).  One channel per in-flight cascade;
    /// sessions use one at a time, so this bounds concurrent updates.
    std::size_t max_channels = 256;
  };

  explicit TaskRouter(const Options& options);

  TaskRouter(const TaskRouter&) = delete;
  TaskRouter& operator=(const TaskRouter&) = delete;

  /// Joins the pool.  All channels must be closed first.
  ~TaskRouter();

  /// Move-only handle to one routed task stream.  Used by a single
  /// coordinator thread at a time (matching the Executor's model); the
  /// underlying router may serve many channels concurrently.
  class Channel {
   public:
    Channel() = default;
    Channel(Channel&& other) noexcept { *this = std::move(other); }
    Channel& operator=(Channel&& other) noexcept;
    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;
    ~Channel() { Close(); }

    /// Enqueues a batch onto the shared pool, tagged with this channel.
    void SubmitBatch(std::span<const util::TaskId> tasks);

    /// Detaches the body and recycles the id.  Callable only once every
    /// submitted task has completed; idempotent; called by the destructor.
    void Close();

    [[nodiscard]] bool IsOpen() const { return router_ != nullptr; }

   private:
    friend class TaskRouter;
    Channel(TaskRouter* router, std::uint32_t id) : router_(router), id_(id) {}

    TaskRouter* router_ = nullptr;
    std::uint32_t id_ = 0;
    /// Coordinator-private packing scratch, reused across batches.
    std::vector<ThreadPool::WorkItem> scratch_;
  };

  /// Claims a channel slot and installs its body.  Throws
  /// util::InvalidArgument when all Options::max_channels slots are open.
  [[nodiscard]] Channel OpenChannel(ChannelBody body);

  [[nodiscard]] std::size_t NumWorkers() const { return pool_->NumWorkers(); }

  /// Channels currently open (diagnostic; racy by nature).
  [[nodiscard]] std::size_t OpenChannels() const;

  /// Shared-pool counters, aggregated across all channels since start.
  [[nodiscard]] ThreadPoolStats PoolStats() const { return pool_->Stats(); }

 private:
  // One slot per possible channel, preallocated so workers index the table
  // without synchronizing against growth.  `active` counts workers currently
  // inside this channel's body; Close spins on it reaching zero before the
  // body is destroyed.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> active{0};
    ChannelBody body;
  };

  static ThreadPool::WorkItem Pack(std::uint32_t channel, util::TaskId task) {
    return (static_cast<ThreadPool::WorkItem>(channel) << 32) |
           static_cast<ThreadPool::WorkItem>(task);
  }

  void Dispatch(ThreadPool::WorkItem item, std::size_t worker);
  void CloseChannel(std::uint32_t id);

  std::vector<std::unique_ptr<Slot>> slots_;
  mutable std::mutex open_mutex_;
  std::vector<std::uint32_t> free_ids_;  // guarded by open_mutex_
  std::size_t open_count_ = 0;           // guarded by open_mutex_
  /// Declared last: destroyed first, so workers are joined while the slot
  /// table is still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace dsched::runtime
