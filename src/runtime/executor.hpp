// Real multithreaded execution of an activation cascade.
//
// The simulator (src/sim) charges virtual time; this executor runs *actual*
// closures on a worker pool under any Scheduler policy, proving the
// policies drive real parallel work — the examples use it to re-execute
// Datalog components.
//
// Hot-path design (the scheduling-overhead claim made real): the scheduler
// is single-threaded by contract and is touched only by the coordinator
// (caller) thread, so it needs NO lock at all.  Dispatch drains whole ready
// frontiers through PopReadyBatch and hands them to the work-stealing pool
// in one batched submit; workers publish completions into a single MPSC
// buffer the coordinator drains with one lock acquisition + vector swap per
// wakeup.  Per-task costs left on the hot path: one worker-side push under
// the completion mutex, and the task body itself — no per-task notify, no
// per-task std::function allocation, no per-task scheduler lock.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/task_router.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/scheduler.hpp"
#include "trace/job_trace.hpp"

namespace dsched::runtime {

using util::TaskId;

/// The live-resource account of the executor's per-task accounting plane:
/// bytes acquired when a task is dispatched (its TaskInfo::resource_utility
/// estimate) and released when its completion drains.  A cascade with no
/// Options::account uses a private one; a service session shares ONE
/// account across its K pipelined epoch cascades so the session ceiling
/// covers them together.  `live`/`peak` are atomics because sibling epoch
/// coordinators acquire and release concurrently; `released` lets a
/// cascade that ran completely dry under the budget gate block until a
/// sibling's drain frees bytes (the releaser taps the mutex before
/// notifying, so no wakeup is lost).
struct ResourceAccount {
  std::atomic<std::uint64_t> live{0};
  std::atomic<std::uint64_t> peak{0};
  std::mutex mutex;
  std::condition_variable released;

  /// Acquire `bytes` and fold the new level into `peak`; returns the live
  /// level after the acquisition.
  std::uint64_t Acquire(std::uint64_t bytes) {
    const std::uint64_t now =
        live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    FoldPeak(now);
    return now;
  }

  /// Budget-bounded acquire: succeeds only if the account stays at or
  /// under `budget`.  CAS-looped so concurrent sibling coordinators can
  /// never jointly overshoot the ceiling.  Returns the live level after a
  /// successful acquisition, 0 on refusal.
  std::uint64_t TryAcquire(std::uint64_t bytes, std::uint64_t budget) {
    std::uint64_t cur = live.load(std::memory_order_relaxed);
    do {
      if (cur + bytes > budget) {
        return 0;
      }
    } while (!live.compare_exchange_weak(cur, cur + bytes,
                                         std::memory_order_relaxed));
    const std::uint64_t now = cur + bytes;
    FoldPeak(now);
    return now;
  }

  /// Solo acquire for a task larger than the whole budget: only succeeds
  /// from a completely idle account (0 -> bytes), so the ceiling is never
  /// exceeded by more than one lone oversized task.
  std::uint64_t TryAcquireSolo(std::uint64_t bytes) {
    std::uint64_t expected = 0;
    if (!live.compare_exchange_strong(expected, bytes,
                                      std::memory_order_relaxed)) {
      return 0;
    }
    FoldPeak(bytes);
    return bytes;
  }

  /// Release `bytes` and wake any coordinator blocked on the budget gate.
  void Release(std::uint64_t bytes, bool notify) {
    live.fetch_sub(bytes, std::memory_order_relaxed);
    if (notify) {
      { const std::lock_guard<std::mutex> lock(mutex); }
      released.notify_all();
    }
  }

 private:
  void FoldPeak(std::uint64_t now) {
    std::uint64_t seen = peak.load(std::memory_order_relaxed);
    while (now > seen &&
           !peak.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
  }
};

/// Executes the activation cascade of a trace with real task bodies.
class Executor {
 public:
  /// A task body: does the task's work, returns true iff the task's output
  /// changed (which activates its children).  Bodies run concurrently and
  /// must not touch the scheduler.  A null body falls back to the trace's
  /// recorded output_changes bits and does no work.
  using TaskBody = std::function<bool(TaskId)>;

  /// Worker-aware task body: like TaskBody, but also receives the index of
  /// the pool worker running the task (in [0, Options::workers)).  This is
  /// how per-worker state — e.g. the parallel Datalog engine's worker-local
  /// delta buffers — reaches the body without thread-local lookups.
  using WorkerTaskBody = std::function<bool(TaskId, std::size_t)>;

  struct Options {
    std::size_t workers = 4;
    /// Max tasks per PopReadyBatch call; 0 = auto.  The dispatch loop
    /// keeps calling until the scheduler runs dry, so this bounds batch
    /// granularity, not total in-flight work.  A nonzero value pins the
    /// window (disables the adaptive controller).
    std::size_t dispatch_window = 0;
    /// With dispatch_window == 0: true (default) runs the duty-cycle
    /// controller — the window starts at max(16, 2 * workers) and is
    /// doubled/halved from the dispatch/idle stopwatch ratio every few
    /// completion drains; false keeps the fixed max(16, 2 * workers)
    /// heuristic (the pre-controller behaviour, kept for A/B runs — see
    /// bench/micro_executor --adaptive=0).
    bool adaptive_window = true;
    /// Epoch-pipelining context (runtime/pipeline.hpp).  When set, popped
    /// tasks whose fence exceeds epoch-1's finalized level are HELD at the
    /// coordinator (never blocking a pool worker) until the frontier
    /// advances, and this cascade publishes its own per-level finalization
    /// as tasks drain.  Null = unpipelined.
    const PipelineGate* gate = nullptr;
    /// Live-resource ceiling in accounted bytes (0 = account only, never
    /// gate).  A popped task whose resource_utility would push the account
    /// over the budget is DEFERRED at the coordinator (like fence-held
    /// tasks, it never blocks a pool worker) until enough bytes release.
    /// Deferral is FIFO head-blocking, so a large task cannot be starved
    /// by a stream of small ones.  Escape hatch: when the account is
    /// completely idle (live == 0) a task larger than the whole budget
    /// runs alone — the accounted ceiling is therefore
    /// max(memory_budget, largest single utility), and exhaustion
    /// manifests as a slower cascade (backpressure), never a failure.
    std::uint64_t memory_budget = 0;
    /// Account shared across cascades (a session's K pipelined epochs);
    /// null = a private per-run account.
    ResourceAccount* account = nullptr;
  };

  /// log2 buckets for the dispatch batch size histogram: bucket i counts
  /// batches of size in [2^i, 2^(i+1)).
  static constexpr std::size_t kBatchHistBuckets = 20;

  struct RunStats {
    std::size_t executed = 0;
    std::size_t activations = 0;
    double wall_seconds = 0.0;        ///< end-to-end
    double sched_wall_seconds = 0.0;  ///< inside scheduler calls
    /// Coordinator time spent on the serialized dispatch path: scheduler
    /// calls, batch submits, and completion bookkeeping — but NOT time
    /// blocked waiting for workers.  sched_wall_seconds is the
    /// scheduler-policy subcomponent; the difference is the executor's own
    /// dispatch overhead.
    double dispatch_wall_seconds = 0.0;
    /// Coordinator time blocked waiting for a completion to arrive.
    double idle_wall_seconds = 0.0;

    // --- contention observability (all counted, not asserted) ---
    std::uint64_t dispatch_batches = 0;  ///< PopReadyBatch calls that yielded work
    std::uint64_t dispatched = 0;        ///< tasks handed to the pool
    std::uint64_t max_dispatch_batch = 0;
    /// log2 histogram of non-empty dispatch batch sizes.
    std::array<std::uint64_t, kBatchHistBuckets> batch_size_hist{};
    /// Coordinator-side completion-buffer drains (one lock + swap each).
    std::uint64_t completion_drains = 0;
    /// Worker-side completion pushes (one short lock each; == executed).
    std::uint64_t completion_pushes = 0;
    /// Work-stealing pool behaviour.
    std::uint64_t pool_steals = 0;
    std::uint64_t pool_sleeps = 0;
    std::uint64_t pool_wakeups = 0;
    /// Most tasks simultaneously handed to the pool and not yet drained —
    /// the ready-queue depth high-water mark seen by the coordinator.
    std::uint64_t inflight_high_water = 0;

    // --- epoch pipelining (all zero for ungated cascades) ---
    /// Times the coordinator ran completely dry (no inflight work) with
    /// only fence-held tasks left and had to block on the previous epoch's
    /// frontier.
    std::uint64_t frontier_stalls = 0;
    /// Coordinator time blocked in those stalls.
    double frontier_stall_seconds = 0.0;
    /// Most tasks simultaneously held back by a fence.
    std::uint64_t held_high_water = 0;
    /// Frontier levels this cascade published (== plan levels + the final
    /// all-done mark when gated).
    std::uint64_t levels_finalized = 0;

    // --- resource accounting plane (all zero for utility-free traces) ---
    /// Sum of resource_utility over dispatched tasks.
    std::uint64_t mem_acquired_bytes = 0;
    /// Highest live-account level this cascade observed (includes bytes
    /// held by sibling cascades on a shared account).
    std::uint64_t mem_peak_bytes = 0;
    /// Dispatches parked by the budget gate.
    std::uint64_t mem_deferred = 0;
    /// Times the coordinator ran dry and blocked on a sibling's release.
    std::uint64_t mem_budget_stalls = 0;
    /// Over-budget solo dispatches (single task larger than the budget).
    std::uint64_t mem_forced = 0;

    // --- adaptive dispatch window ---
    /// Controller decisions that changed the window.
    std::uint64_t window_adjusts = 0;
    /// The window in effect when the cascade finished.
    std::uint64_t final_dispatch_window = 0;

    /// Mean tasks per non-empty dispatch batch.
    [[nodiscard]] double AvgDispatchBatch() const {
      return dispatch_batches == 0
                 ? 0.0
                 : static_cast<double>(dispatched) /
                       static_cast<double>(dispatch_batches);
    }

    /// Publishes the stats into `registry` under `prefix` (e.g.
    /// "exec.hybrid.").  Durations are recorded in nanoseconds.
    void ExportMetrics(obs::MetricsRegistry& registry,
                       const std::string& prefix) const;
  };

  /// Runs the cascade to completion on a private pool of Options::workers
  /// threads created for this run.  The scheduler must be fresh (Prepare is
  /// called here).  Throws util::LogicError on scheduler deadlock.
  static RunStats Run(const trace::JobTrace& trace,
                      sched::Scheduler& scheduler, const WorkerTaskBody& body,
                      const Options& options);

  /// Convenience overload for bodies that don't care which worker runs
  /// them.
  static RunStats Run(const trace::JobTrace& trace,
                      sched::Scheduler& scheduler, const TaskBody& body,
                      const Options& options);

  /// Multi-tenant variant: runs the cascade on a host-provided router's
  /// SHARED pool instead of constructing one.  Tasks are tagged with a
  /// router channel, so concurrent RunOn calls from different coordinator
  /// threads (one per service session) interleave their cascades on the
  /// same workers.  Options::workers is ignored — the scheduler is
  /// prepared with router.NumWorkers() processors, and worker indices seen
  /// by `body` span the router's pool.  RunStats pool_* counters stay zero
  /// here: steal/sleep behaviour belongs to the shared pool, not to any
  /// one cascade (see TaskRouter::PoolStats / host.pool.* metrics).
  static RunStats RunOn(TaskRouter& router, const trace::JobTrace& trace,
                        sched::Scheduler& scheduler,
                        const WorkerTaskBody& body, const Options& options);
};

}  // namespace dsched::runtime
