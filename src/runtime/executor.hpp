// Real multithreaded execution of an activation cascade.
//
// The simulator (src/sim) charges virtual time; this executor runs *actual
// closures* on a worker pool under any Scheduler policy, proving the
// policies drive real parallel work — the examples use it to re-execute
// Datalog components.  The scheduler is not thread-safe by contract, so all
// policy calls happen under the coordinator lock; task bodies run unlocked
// on the pool.
#pragma once

#include <functional>
#include <string>

#include "sched/scheduler.hpp"
#include "trace/job_trace.hpp"

namespace dsched::runtime {

using util::TaskId;

/// Executes the activation cascade of a trace with real task bodies.
class Executor {
 public:
  /// A task body: does the task's work, returns true iff the task's output
  /// changed (which activates its children).  Bodies run concurrently and
  /// must not touch the scheduler.  A null body falls back to the trace's
  /// recorded output_changes bits and does no work.
  using TaskBody = std::function<bool(TaskId)>;

  struct Options {
    std::size_t workers = 4;
  };

  struct RunStats {
    std::size_t executed = 0;
    std::size_t activations = 0;
    double wall_seconds = 0.0;        ///< end-to-end
    double sched_wall_seconds = 0.0;  ///< inside scheduler calls
  };

  /// Runs the cascade to completion.  The scheduler must be fresh (Prepare
  /// is called here).  Throws util::LogicError on scheduler deadlock.
  static RunStats Run(const trace::JobTrace& trace,
                      sched::Scheduler& scheduler, const TaskBody& body,
                      const Options& options);
};

}  // namespace dsched::runtime
