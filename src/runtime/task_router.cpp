#include "runtime/task_router.hpp"

#include <string>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace dsched::runtime {

TaskRouter::TaskRouter(const Options& options) {
  DSCHED_CHECK_MSG(options.max_channels >= 1, "router needs at least one channel slot");
  DSCHED_CHECK_MSG(options.max_channels <= (1ULL << 32),
                   "channel ids are 32-bit tags");
  slots_.reserve(options.max_channels);
  free_ids_.reserve(options.max_channels);
  for (std::size_t i = 0; i < options.max_channels; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  // Pop order is cosmetic; reverse so channel 0 is handed out first.
  for (std::size_t i = options.max_channels; i > 0; --i) {
    free_ids_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  pool_ = std::make_unique<ThreadPool>(
      options.workers, [this](ThreadPool::WorkItem item, std::size_t worker) {
        Dispatch(item, worker);
      });
}

TaskRouter::~TaskRouter() {
  pool_.reset();  // join workers before any liveness check
  const std::lock_guard<std::mutex> lock(open_mutex_);
  DSCHED_CHECK_MSG(open_count_ == 0,
                   "TaskRouter destroyed with channels still open");
}

TaskRouter::Channel TaskRouter::OpenChannel(ChannelBody body) {
  DSCHED_CHECK_MSG(body != nullptr, "channel needs a body");
  std::uint32_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(open_mutex_);
    if (free_ids_.empty()) {
      throw util::InvalidArgument("TaskRouter: all " +
                                  std::to_string(slots_.size()) +
                                  " channel slots are open");
    }
    id = free_ids_.back();
    free_ids_.pop_back();
    ++open_count_;
  }
  // No worker can hold this id (its previous owner drained before Close
  // recycled it), so installing the body needs no synchronization beyond
  // the pool-queue release when tasks are later submitted.
  slots_[id]->body = std::move(body);
  return Channel(this, id);
}

std::size_t TaskRouter::OpenChannels() const {
  const std::lock_guard<std::mutex> lock(open_mutex_);
  return open_count_;
}

void TaskRouter::Dispatch(ThreadPool::WorkItem item, std::size_t worker) {
  const auto id = static_cast<std::uint32_t>(item >> 32);
  const auto task = static_cast<util::TaskId>(item & 0xffffffffULL);
  Slot& slot = *slots_[id];
  // The acquire/release pair brackets the body call so CloseChannel's spin
  // on `active == 0` (acquire) observes everything the body did.
  slot.active.fetch_add(1, std::memory_order_acquire);
  slot.body(task, worker);
  slot.active.fetch_sub(1, std::memory_order_release);
}

void TaskRouter::CloseChannel(std::uint32_t id) {
  Slot& slot = *slots_[id];
  // Every submitted task has completed (caller contract), so no NEW worker
  // can enter the body; at most a few are still unwinding between their
  // completion publish and the fetch_sub above.  That window is tiny, so a
  // yield spin beats any sleeping primitive here.
  while (slot.active.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  slot.body = nullptr;
  const std::lock_guard<std::mutex> lock(open_mutex_);
  free_ids_.push_back(id);
  --open_count_;
}

TaskRouter::Channel& TaskRouter::Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    Close();
    router_ = std::exchange(other.router_, nullptr);
    id_ = std::exchange(other.id_, 0);
    scratch_ = std::move(other.scratch_);
  }
  return *this;
}

void TaskRouter::Channel::SubmitBatch(std::span<const util::TaskId> tasks) {
  DSCHED_CHECK_MSG(router_ != nullptr, "submit on a closed channel");
  if (tasks.empty()) {
    return;
  }
  scratch_.clear();
  scratch_.reserve(tasks.size());
  for (const util::TaskId task : tasks) {
    scratch_.push_back(Pack(id_, task));
  }
  router_->pool_->SubmitBatch(scratch_);
}

void TaskRouter::Channel::Close() {
  if (router_ == nullptr) {
    return;
  }
  router_->CloseChannel(id_);
  router_ = nullptr;
  id_ = 0;
}

}  // namespace dsched::runtime
